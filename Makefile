GO ?= go

.PHONY: build test race race-all bench bench-parallel profile vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the concurrent core: the engine's shared-context
# single-flight cache and the assistant's simulation fan-out.
race:
	$(GO) test -race ./internal/engine/... ./internal/assistant/...

# Full race-detector run, including the root determinism tests.
race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Serial versus parallel simulation strategy on the T9 join task.
bench-parallel:
	$(GO) test -bench='BenchmarkTable5SimulationT9' -benchmem -run='^$$' .
	$(GO) run ./cmd/iflex-bench -table parallel -scale 0.05 -bench-json BENCH_PARALLEL.json

# Capture CPU, heap, and execution-trace profiles from the parallel
# harness; inspect with `go tool pprof` / `go tool trace`.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/iflex-bench -table parallel -scale 0.05 \
		-cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof \
		-trace profiles/trace.out
