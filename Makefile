GO ?= go

.PHONY: build test race race-all bench bench-parallel vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the concurrent core: the engine's shared-context
# single-flight cache and the assistant's simulation fan-out.
race:
	$(GO) test -race ./internal/engine/... ./internal/assistant/...

# Full race-detector run, including the root determinism tests.
race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Serial versus parallel simulation strategy on the T9 join task.
bench-parallel:
	$(GO) test -bench='BenchmarkTable5SimulationT9' -benchmem -run='^$$' .
	$(GO) run ./cmd/iflex-bench -table parallel -scale 0.05 -bench-json BENCH_PARALLEL.json
