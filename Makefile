GO ?= go

.PHONY: build test race race-all chaos bench bench-parallel bench-hotpath bench-reuse bench-optimizer benchdiff profile vet verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the concurrent core: the engine's shared-context
# single-flight cache and the assistant's simulation fan-out.
race:
	$(GO) test -race ./internal/engine/... ./internal/assistant/...

# The pre-merge gate: vet, the race run over the concurrent core, and the
# full tier-1 suite. Bench-heavy tests honour -short, so this stays fast.
verify:
	$(GO) vet ./...
	$(GO) test -short -race ./internal/engine/... ./internal/assistant/...
	$(GO) build ./...
	$(GO) test -short ./...

# Full race-detector run, including the root determinism tests.
race-all:
	$(GO) test -race ./...

# Fault-injection suite (DESIGN.md §12): deterministic chaos runs across
# worker counts and delta on/off, under the race detector.
chaos:
	$(GO) test -run Chaos -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Serial versus parallel simulation strategy on the T9 join task.
bench-parallel:
	$(GO) test -bench='BenchmarkTable5SimulationT9' -benchmem -run='^$$' .
	$(GO) run ./cmd/iflex-bench -table parallel -scale 0.05 -bench-json BENCH_PARALLEL.json

# Serial hot-path counters and wall time on the T9 join task.
bench-hotpath:
	$(GO) run ./cmd/iflex-bench -table hotpath -scale 0.05 -bench-json /tmp/hotpath.json

# Incremental (delta) evaluation versus full recomputation on T9 sessions.
bench-reuse:
	$(GO) run ./cmd/iflex-bench -table reuse -scale 0.05 -bench-json BENCH_REUSE.json

# Cost-based optimizer versus plans as compiled, with a byte-identity
# sweep across worker counts and delta on/off (DESIGN.md §13).
bench-optimizer:
	$(GO) run ./cmd/iflex-bench -table optimizer -scale 0.05 -bench-json BENCH_OPTIMIZER.json

# Re-run the parallel and reuse benches and fail on a >10% wall-time
# regression against the committed snapshots.
benchdiff:
	$(GO) run ./cmd/iflex-bench -table parallel -scale 0.05 -workers 4 -bench-json /tmp/bench-new.json
	$(GO) run ./cmd/iflex-bench -compare BENCH_PARALLEL.json /tmp/bench-new.json
	$(GO) run ./cmd/iflex-bench -table reuse -scale 0.05 -bench-json /tmp/bench-reuse-new.json
	$(GO) run ./cmd/iflex-bench -compare BENCH_REUSE.json /tmp/bench-reuse-new.json

# Capture CPU, heap, and execution-trace profiles from the parallel
# harness; inspect with `go tool pprof` / `go tool trace`.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/iflex-bench -table parallel -scale 0.05 \
		-cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof \
		-trace profiles/trace.out
