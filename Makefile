GO ?= go

.PHONY: build test race race-all chaos crash bench bench-parallel bench-hotpath bench-reuse bench-optimizer bench-serve bench-scale bench-live serve-smoke benchdiff profile vet verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the concurrent core: the engine's shared-context
# single-flight cache, the assistant's simulation fan-out, and the
# multi-tenant server.
race:
	$(GO) test -race ./internal/engine/... ./internal/assistant/... ./internal/server/...

# The pre-merge gate: vet, the race run over the concurrent core, and the
# full tier-1 suite. Bench-heavy tests honour -short, so this stays fast.
verify:
	$(GO) vet ./...
	$(GO) test -short -race ./internal/engine/... ./internal/assistant/... ./internal/server/...
	$(GO) build ./...
	$(GO) test -short ./...

# Full race-detector run, including the root determinism tests.
race-all:
	$(GO) test -race ./...

# Fault-injection suite (DESIGN.md §12): deterministic chaos runs across
# worker counts and delta on/off, under the race detector.
chaos:
	$(GO) test -run Chaos -race ./internal/...

# Crash-injection suite (DESIGN.md §17): enumerate every kill point and
# torn-write prefix of store ingest, mutation commit, and spill writes;
# every surviving state must reopen as exactly generation G or G+1.
crash:
	$(GO) test -run Crash -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Serial versus parallel simulation strategy on the T9 join task.
bench-parallel:
	$(GO) test -bench='BenchmarkTable5SimulationT9' -benchmem -run='^$$' .
	$(GO) run ./cmd/iflex-bench -table parallel -scale 0.05 -bench-json BENCH_PARALLEL.json

# Serial hot-path counters and wall time on the T9 join task.
bench-hotpath:
	$(GO) run ./cmd/iflex-bench -table hotpath -scale 0.05 -bench-json /tmp/hotpath.json

# Incremental (delta) evaluation versus full recomputation on T9 sessions.
bench-reuse:
	$(GO) run ./cmd/iflex-bench -table reuse -scale 0.05 -bench-json BENCH_REUSE.json

# Cost-based optimizer versus plans as compiled, with a byte-identity
# sweep across worker counts and delta on/off (DESIGN.md §13).
bench-optimizer:
	$(GO) run ./cmd/iflex-bench -table optimizer -scale 0.05 -bench-json BENCH_OPTIMIZER.json

# Multi-tenant service load test: 8 concurrent tenants driving whole
# sessions over HTTP against an in-process server, with every streamed
# table checked byte-identical to the library path (DESIGN.md §14).
bench-serve:
	$(GO) run ./cmd/iflex-bench -table serve -scale 0.05 -bench-json BENCH_SERVE.json

# Corpus-scale storage bench: ingest a generated DBLife corpus into a
# sharded store, then measure index load, a budget-bounded content sweep,
# and postings-served similarity probes (DESIGN.md §15). The committed
# BENCH_SCALE.json snapshot is from -pages 100000; PAGES=3000 keeps the
# CI smoke run fast and additionally runs the byte-identity sweep.
PAGES ?= 100000
bench-scale:
	$(GO) run ./cmd/iflex-bench -table scale -pages $(PAGES) -bench-json BENCH_SCALE.json

# Live-corpus incremental bench: converge T9 over a Books store, commit a
# 1% page mutation, and compare the incremental re-evaluation against a
# from-scratch run of the same refined program — byte-identity checked
# across Workers 1/8 x optimizer on/off (DESIGN.md §16). The committed
# BENCH_LIVE.json snapshot is from the 10000-page default; LIVE_PAGES=1000
# keeps the CI smoke run fast.
LIVE_PAGES ?= 10000
bench-live:
	$(GO) run ./cmd/iflex-bench -table live -pages $(LIVE_PAGES) -bench-json BENCH_LIVE.json

# Boot iflexd, run a short serve burst against it, and check it drains
# cleanly on SIGTERM (exit 0). One shell so `wait` sees the daemon.
serve-smoke:
	$(GO) build -o /tmp/iflexd ./cmd/iflexd
	$(GO) build -o /tmp/iflex-bench ./cmd/iflex-bench
	/tmp/iflexd -addr 127.0.0.1:18080 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18080/healthz >/dev/null && break; sleep 0.1; \
	done; \
	/tmp/iflex-bench -table serve -scale 0.05 -tenants 4 -sessions-per-tenant 1 \
		-serve-addr http://127.0.0.1:18080 || exit 1; \
	kill -TERM $$pid; \
	wait $$pid || { echo "serve-smoke: drain was not clean"; exit 1; }; \
	trap - EXIT; \
	echo "serve-smoke: clean drain"

# Re-run the parallel and reuse benches and fail on a >10% wall-time
# regression against the committed snapshots.
benchdiff:
	$(GO) run ./cmd/iflex-bench -table parallel -scale 0.05 -workers 4 -bench-json /tmp/bench-new.json
	$(GO) run ./cmd/iflex-bench -compare BENCH_PARALLEL.json /tmp/bench-new.json
	$(GO) run ./cmd/iflex-bench -table reuse -scale 0.05 -bench-json /tmp/bench-reuse-new.json
	$(GO) run ./cmd/iflex-bench -compare BENCH_REUSE.json /tmp/bench-reuse-new.json

# Capture CPU, heap, and execution-trace profiles from the parallel
# harness; inspect with `go tool pprof` / `go tool trace`.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/iflex-bench -table parallel -scale 0.05 \
		-cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof \
		-trace profiles/trace.out
