// Benchmarks regenerating the paper's tables (one per table, reduced
// corpus scale) plus ablations for the design choices DESIGN.md calls out:
// reuse caching, the token-blocked similarity join, subset evaluation, and
// the compact-table representation itself.
//
// Run with: go test -bench=. -benchmem
package iflex_test

import (
	"testing"

	"iflex"
	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/compact"
	"iflex/internal/corpus"
	"iflex/internal/engine"
	"iflex/internal/experiments"
	"iflex/internal/markup"
	"iflex/internal/similarity"
)

// benchOpts is the scale used by table benches: small enough for CI,
// large enough to exercise every code path.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.05, Seed: 1, Strategy: "sim"}
}

func BenchmarkTable1CorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ProgramValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScenario runs one full assistant session per iteration. Workers
// bounds the session's worker pool (1 = serial baseline, 0 = all CPUs).
func benchScenario(b *testing.B, taskID string, records int, strategy string, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunScenario(
			experiments.Scenario{TaskID: taskID, Records: records, Workers: workers}, strategy, 1)
		if err != nil {
			b.Fatal(err)
		}
		if out.Missing != 0 {
			b.Fatalf("superset violated: %d missing", out.Missing)
		}
	}
}

// Table 3 scenarios: one representative task per domain.
func BenchmarkTable3MoviesT1(b *testing.B) { benchScenario(b, "T1", 50, "sim", 1) }
func BenchmarkTable3DBLPT5(b *testing.B)   { benchScenario(b, "T5", 50, "sim", 1) }
func BenchmarkTable3BooksT8(b *testing.B)  { benchScenario(b, "T8", 50, "sim", 1) }

// Table 4: the per-iteration soliciting experiment (T7's scenario).
func BenchmarkTable4SolicitingT7(b *testing.B) { benchScenario(b, "T7", 50, "sim", 1) }

// Table 5: both question-selection strategies on the join task T9. The
// simulation strategy is measured serial (the baseline) and with one
// worker per CPU; both produce byte-identical sessions.
func BenchmarkTable5SequentialT9(b *testing.B)         { benchScenario(b, "T9", 30, "seq", 1) }
func BenchmarkTable5SimulationT9(b *testing.B)         { benchScenario(b, "T9", 30, "sim", 1) }
func BenchmarkTable5SimulationT9Parallel(b *testing.B) { benchScenario(b, "T9", 30, "sim", 0) }

// Table 6: the DBLife panel task over a small snapshot.
func BenchmarkTable6DBLifePanel(b *testing.B) {
	task := corpus.DBLifeTasks()[0]
	for i := 0; i < b.N; i++ {
		c := task.Generate(60, 1)
		env := task.Env(c)
		prog := alog.MustParse(task.Program)
		s := assistant.NewSession(env, prog, task.Oracle(), assistant.Config{
			Strategy: assistant.Simulation{},
		})
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// figure2Setup builds the running example at a configurable size.
func figure2Setup(b *testing.B, houses int) (*alog.Program, *engine.Env) {
	b.Helper()
	c := corpus.Books(corpus.BooksConfig{Records: houses, Seed: 1})
	env := engine.NewEnv()
	env.AddDocTable("Amazon", "x", c.DocsOf("Amazon"))
	env.AddDocTable("Barnes", "y", c.DocsOf("Barnes"))
	prog := alog.MustParse(`
amT(x, <t1>) :- Amazon(x), extractA(x, t1).
bnT(y, <t2>) :- Barnes(y), extractB(y, t2).
Q(t1) :- amT(x, t1), bnT(y, t2), similar(t1, t2).
extractA(x, t) :- from(x, t), bold-font(t) = distinct-yes.
extractB(y, t) :- from(y, t), underlined(t) = distinct-yes.
`)
	return prog, env
}

// Reuse ablation: re-executing a refined program with a shared context
// (cache warm) versus a fresh context every iteration (Section 5.2).
func BenchmarkAblationReuseWarm(b *testing.B) {
	prog, env := figure2Setup(b, 120)
	plan, err := engine.Compile(prog, env)
	if err != nil {
		b.Fatal(err)
	}
	ctx := engine.NewContext(env)
	if _, err := plan.Execute(ctx); err != nil {
		b.Fatal(err)
	}
	refined := prog.Clone()
	if err := refined.AddConstraint(alog.AttrRef{Pred: "extractA", Var: "t"}, "max-tokens", "10"); err != nil {
		b.Fatal(err)
	}
	plan2, err := engine.Compile(refined, env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Shared context: the Barnes subtree and the Amazon scan are reused
		// from its warm cache.
		if _, err := plan2.Execute(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReuseCold(b *testing.B) {
	prog, env := figure2Setup(b, 120)
	refined := prog.Clone()
	if err := refined.AddConstraint(alog.AttrRef{Pred: "extractA", Var: "t"}, "max-tokens", "10"); err != nil {
		b.Fatal(err)
	}
	plan2, err := engine.Compile(refined, env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan2.Execute(engine.NewContext(env)); err != nil {
			b.Fatal(err)
		}
	}
}

// Similarity-join ablation: the token-blocked fused join versus the naive
// cross product + filter.
func BenchmarkAblationSimJoinBlocked(b *testing.B) {
	prog, env := figure2Setup(b, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(prog, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSimJoinNaive(b *testing.B) {
	prog, env := figure2Setup(b, 150)
	env.Blockable = map[string]bool{} // disable fusion: cross + filter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(prog, env); err != nil {
			b.Fatal(err)
		}
	}
}

// Subset-evaluation ablation: executing over the 10% sample versus the
// whole corpus.
func BenchmarkAblationSubsetEval(b *testing.B) {
	prog, env := figure2Setup(b, 200)
	plan, err := engine.Compile(prog, env)
	if err != nil {
		b.Fatal(err)
	}
	filter := map[string]bool{}
	n := 0
	for _, d := range env.Tables["Amazon"].Tuples {
		if n < 20 {
			filter[d.Cells[0].Assigns[0].Span.Doc().ID()] = true
		}
		n++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(env)
		ctx.DocFilter = filter
		if _, err := plan.Execute(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFullEval(b *testing.B) {
	prog, env := figure2Setup(b, 200)
	plan, err := engine.Compile(prog, env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(engine.NewContext(env)); err != nil {
			b.Fatal(err)
		}
	}
}

// Compact tables versus a-tables: the representation-size claim of
// Section 3. Reported as values-per-assignment (higher = more packing).
func BenchmarkCompactVsATable(b *testing.B) {
	c := corpus.Movies(corpus.MoviesConfig{Records: 50, Seed: 1})
	env := engine.NewEnv()
	env.AddDocTable("IMDB", "x", c.DocsOf("IMDB"))
	prog := alog.MustParse(`
Q(x, t) :- IMDB(x), ext(x, t).
ext(x, t) :- from(x, t).
`)
	var packing float64
	for i := 0; i < b.N; i++ {
		res, err := engine.Run(prog, env)
		if err != nil {
			b.Fatal(err)
		}
		at := res.ToATable()
		values := 0
		for _, tp := range at.Tuples {
			for _, cell := range tp.Cells {
				values += len(cell)
			}
		}
		packing = float64(values) / float64(res.NumAssignments())
	}
	b.ReportMetric(packing, "values/assignment")
}

// --- Microbenchmarks ------------------------------------------------------

func BenchmarkParseProgram(b *testing.B) {
	src := corpus.Tasks()[8].Program // T9, the largest
	for i := 0; i < b.N; i++ {
		if _, err := alog.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkupParse(b *testing.B) {
	src := `<title>SIGMOD 2008</title><h2>Panel</h2><ul><li><b>Alice Anderson</b>, chair</li>
<li><i>Bob Baxter</i></li></ul><p>Held in <a href="x">Vancouver</a>.</p>`
	for i := 0; i < b.N; i++ {
		if _, err := markup.Parse("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFigure2(b *testing.B) {
	env := iflex.NewEnv()
	x2, err := iflex.ParseDocument("x2", "Amazing house<br>Sqft: 4700<br>Price: 619000<br>High school: Basktall HS")
	if err != nil {
		b.Fatal(err)
	}
	y1, err := iflex.ParseDocument("y1", "<ul><li><b>Basktall</b>, Cherry Hills</li><li><b>Vanhise</b>, Champaign</li></ul>")
	if err != nil {
		b.Fatal(err)
	}
	env.AddDocTable("housePages", "x", []*iflex.Document{x2})
	env.AddDocTable("schoolPages", "y", []*iflex.Document{y1})
	prog := iflex.MustParseProgram(`
houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
schools(s)? :- schoolPages(y), extractSchools(y, s).
Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500, approxMatch(h, s).
extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h), numeric(p) = yes, numeric(a) = yes.
extractSchools(y, s) :- from(y, s), bold-font(s) = yes.
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iflex.Run(prog, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimilar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		similarity.Similar("Database Systems: A Modern Approach", "Database Systems a modern approach")
	}
}

func BenchmarkSubSpanEnumeration(b *testing.B) {
	d := markup.MustParse("bench", "one two three four five six seven eight nine ten")
	ca := compact.ContainCell(d.WholeSpan())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ca.Values(func(iflexSpan iflex.Span) bool { n++; return true })
		if n != 55 {
			b.Fatal("bad count")
		}
	}
}

// Section 6.3's anecdote: converged approximate programs run comparably to
// hand-tuned precise procedural programs. These two benches measure both
// paths over the same corpus.
func BenchmarkPreciseBaselineT7(b *testing.B) {
	base, err := corpus.TaskByID("T7")
	if err != nil {
		b.Fatal(err)
	}
	precise, err := corpus.PreciseTaskByID("T7")
	if err != nil {
		b.Fatal(err)
	}
	c := base.Generate(500, 1)
	env := precise.Env(base, c)
	prog := alog.MustParse(precise.Program)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(prog, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvergedApproximateT7(b *testing.B) {
	base, err := corpus.TaskByID("T7")
	if err != nil {
		b.Fatal(err)
	}
	c := base.Generate(500, 1)
	env := base.Env(c)
	prog := alog.MustParse(base.Program)
	oracle := base.Oracle()
	for _, attr := range prog.Attrs() {
		for f, v := range oracle.Answers[attr.String()] {
			if v == "unknown" {
				continue
			}
			if err := prog.AddConstraint(attr, f, v); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(prog, env); err != nil {
			b.Fatal(err)
		}
	}
}
