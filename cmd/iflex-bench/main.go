// Command iflex-bench regenerates the paper's evaluation tables
// (Section 6). Every table and figure-equivalent of the evaluation has a
// harness here; see DESIGN.md's per-experiment index.
//
// Usage:
//
//	iflex-bench -table 5 -scale 0.2          # Table 5 at 20% corpus sizes
//	iflex-bench -table all -scale 1 -out results.txt
//
// -scale 1 runs the paper's corpus sizes (slow: tens of minutes);
// benches and CI use small scales, which preserve the result shapes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"iflex/internal/experiments"
	"iflex/internal/prof"
)

func main() {
	var (
		table      = flag.String("table", "all", "which table to regenerate: 1, 2, 3, 4, 5, 6, conv, variance, scaling, parallel, hotpath, reuse, optimizer, or all")
		compare    = flag.Bool("compare", false, "compare two benchmark JSON files (old new); exit non-zero on a >10% wall-time regression")
		scale      = flag.Float64("scale", 0.2, "corpus size factor (1.0 = paper sizes)")
		seed       = flag.Int64("seed", 1, "corpus generation seed")
		strategy   = flag.String("strategy", "sim", "assistant strategy for Tables 3/4/conv: seq or sim")
		workers    = flag.Int("workers", 0, "worker pool size (0 = one per CPU, 1 = serial)")
		optimize   = flag.Bool("optimize", true, "run assistant sessions with the cost-based plan optimizer; -optimize=false executes plans exactly as compiled (the hotpath/reuse harnesses always pin it off for counter comparability)")
		timeout    = flag.Duration("timeout", 0, "best-effort deadline per assistant session: expired sessions report their partial result and a degradation summary (0 = none)")
		benchJSON  = flag.String("bench-json", "", "write the parallel comparison result to this JSON file")
		outPath    = flag.String("out", "", "also write output to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		tracePath  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "iflex-bench: -compare needs two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := compareBenchFiles(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "iflex-bench:", err)
			os.Exit(1)
		}
		return
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iflex-bench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "iflex-bench: profiling:", err)
		}
	}()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iflex-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	o := experiments.Options{Scale: *scale, Seed: *seed, Strategy: *strategy, Workers: *workers, Deadline: *timeout, DisableOptimizer: !*optimize, Out: out}

	run := func(name string, fn func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "iflex-bench: table %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	}
	run("1", func() error { return experiments.Table1(o) })
	run("2", func() error { return experiments.Table2(o) })
	run("3", func() error { _, err := experiments.Table3(o); return err })
	run("4", func() error { _, err := experiments.Table4(o); return err })
	run("5", func() error { _, err := experiments.Table5(o); return err })
	run("6", func() error { _, err := experiments.Table6(o); return err })
	run("conv", func() error { _, err := experiments.Convergence(o); return err })
	run("variance", func() error {
		_, err := experiments.Variance(o, []int64{1, 2, 3})
		return err
	})
	run("scaling", func() error {
		sizes := []int{100, 250, 500, 1000, 2500}
		for i := range sizes {
			sizes[i] = int(float64(sizes[i]) * *scale)
			if sizes[i] < 10 {
				sizes[i] = 10
			}
		}
		_, err := experiments.Scaling(o, "T7", sizes)
		return err
	})
	run("parallel", func() error {
		n := int(float64(5000) * *scale)
		if n < 10 {
			n = 10
		}
		res, err := experiments.ParallelCompare(o, "T9", n)
		if err != nil {
			return err
		}
		return writeJSON(*benchJSON, res)
	})
	run("hotpath", func() error {
		n := int(float64(5000) * *scale)
		if n < 10 {
			n = 10
		}
		res, err := experiments.Hotpath(o, "T9", n)
		if err != nil {
			return err
		}
		return writeJSON(*benchJSON, res)
	})
	run("reuse", func() error {
		n := int(float64(5000) * *scale)
		if n < 10 {
			n = 10
		}
		res, err := experiments.Reuse(o, "T9", n)
		if err != nil {
			return err
		}
		return writeJSON(*benchJSON, res)
	})
	run("optimizer", func() error {
		res, err := experiments.Optimizer(o)
		if err != nil {
			return err
		}
		return writeJSON(*benchJSON, res)
	})
}

// writeJSON writes v as indented JSON to path (no-op when path is empty).
func writeJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBenchFiles diffs the wall-time fields of two benchmark JSON
// files (any top-level number whose key ends in "_s") and returns an
// error when the new file regresses any of them by more than 10%.
// Two files with no comparable numeric field in common — benchmark JSON
// of disjoint table kinds — are an error (exit non-zero), not a silent
// empty comparison. Engine counters (func_calls, cache_hits,
// tuples_reused) found anywhere in both files are reported as
// informational delta lines; neither they nor other non-time fields
// ever fail the check.
func compareBenchFiles(w io.Writer, oldPath, newPath string) error {
	load := func(path string) (map[string]any, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return m, nil
	}
	oldM, err := load(oldPath)
	if err != nil {
		return err
	}
	newM, err := load(newPath)
	if err != nil {
		return err
	}
	common := 0
	for k, ov := range oldM {
		if !strings.HasSuffix(k, "_s") {
			continue // metadata like records/cpus is shared by every kind
		}
		if _, ook := ov.(float64); !ook {
			continue
		}
		if _, nok := newM[k].(float64); nok {
			common++
		}
	}
	if common == 0 {
		return fmt.Errorf("nothing to compare: %s and %s share no wall-time field — likely benchmark JSON of different table kinds\n  %s has: %s\n  %s has: %s",
			oldPath, newPath,
			oldPath, strings.Join(numericKeys(oldM), ", "),
			newPath, strings.Join(numericKeys(newM), ", "))
	}
	const tolerance = 1.10
	var regressed []string
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "benchmark comparison: %s -> %s (threshold +%.0f%%)\n", oldPath, newPath, 100*(tolerance-1))
	for _, k := range keys {
		ov, ook := oldM[k].(float64)
		nv, nok := newM[k].(float64)
		if !ook || !nok {
			continue
		}
		timing := strings.HasSuffix(k, "_s")
		delta := "n/a"
		if ov != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
		}
		mark := " "
		if timing && ov > 0 && nv > ov*tolerance {
			mark = "!"
			regressed = append(regressed, fmt.Sprintf("%s: %.3f -> %.3f (%s)", k, ov, nv, delta))
		}
		fmt.Fprintf(w, "%s %-24s %14.3f %14.3f  %s\n", mark, k, ov, nv, delta)
	}
	printCounterDeltas(w, oldM, newM)
	if len(regressed) > 0 {
		return fmt.Errorf("wall-time regression over %0.f%%:\n  %s",
			100*(tolerance-1), strings.Join(regressed, "\n  "))
	}
	fmt.Fprintln(w, "no wall-time regressions")
	return nil
}

// numericKeys lists a JSON object's top-level numeric field names.
func numericKeys(m map[string]any) []string {
	var out []string
	for k, v := range m {
		if _, ok := v.(float64); ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		out = []string{"(none)"}
	}
	return out
}

// counterNames are the engine counters -compare reports as informational
// deltas wherever they occur in the benchmark JSON (they live inside
// nested stats snapshots, not at the top level).
var counterNames = map[string]bool{
	"func_calls":    true,
	"cache_hits":    true,
	"tuples_reused": true,
}

// collectCounters walks a decoded JSON value and returns every counter
// field as dotted-path → value (arrays index numerically).
func collectCounters(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, sub := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			if n, ok := sub.(float64); ok && counterNames[k] {
				out[p] = n
				continue
			}
			collectCounters(p, sub, out)
		}
	case []any:
		for i, sub := range t {
			collectCounters(fmt.Sprintf("%s[%d]", prefix, i), sub, out)
		}
	}
}

// printCounterDeltas reports engine-counter changes between the two
// files as informational lines (never failing the comparison).
func printCounterDeltas(w io.Writer, oldM, newM map[string]any) {
	oldC, newC := map[string]float64{}, map[string]float64{}
	collectCounters("", oldM, oldC)
	collectCounters("", newM, newC)
	var keys []string
	for k := range oldC {
		if _, ok := newC[k]; ok {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "counters (informational):")
	for _, k := range keys {
		ov, nv := oldC[k], newC[k]
		delta := "n/a"
		if ov != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
		}
		fmt.Fprintf(w, "  %-40s %14.0f %14.0f  %s\n", k, ov, nv, delta)
	}
}
