// Command iflex-bench regenerates the paper's evaluation tables
// (Section 6). Every table and figure-equivalent of the evaluation has a
// harness here; see DESIGN.md's per-experiment index.
//
// Usage:
//
//	iflex-bench -table 5 -scale 0.2          # Table 5 at 20% corpus sizes
//	iflex-bench -table all -scale 1 -out results.txt
//	iflex-bench -table serve -tenants 8 -bench-json BENCH_SERVE.json
//
// -scale 1 runs the paper's corpus sizes (slow: tens of minutes);
// benches and CI use small scales, which preserve the result shapes.
// -table serve load-tests the multi-tenant service (in-process by
// default; -serve-addr points it at a running iflexd instead).
// -table scale benches the sharded document store on a generated DBLife
// corpus (-pages, default 100k): ingest throughput, index load time, a
// budget-bounded content sweep, and postings-served similarity probes
// (BENCH_SCALE.json via -bench-json).
// -table live benches live-corpus incremental evaluation: converge T9
// over a Books store (-pages, default 10k here), commit a mutation
// updating -mutate-pct% of the pages, and compare the incremental
// re-evaluation against a from-scratch run of the same refined program
// (BENCH_LIVE.json via -bench-json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"iflex/internal/experiments"
	"iflex/internal/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's body with an exit code instead of os.Exit: every failure
// path returns, so the deferred profile flush and -out file close always
// happen. (A CPU profile is only parseable after pprof.StopCPUProfile —
// calling os.Exit mid-run used to truncate it.)
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iflex-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table      = fs.String("table", "all", "which table to regenerate: 1, 2, 3, 4, 5, 6, conv, variance, scaling, parallel, hotpath, reuse, optimizer, serve, scale, live, or all")
		compare    = fs.Bool("compare", false, "compare two benchmark JSON files (old new); exit non-zero on a >10% wall-time regression")
		scale      = fs.Float64("scale", 0.2, "corpus size factor (1.0 = paper sizes)")
		seed       = fs.Int64("seed", 1, "corpus generation seed")
		strategy   = fs.String("strategy", "sim", "assistant strategy for Tables 3/4/conv: seq or sim")
		workers    = fs.Int("workers", 0, "worker pool size (0 = one per CPU, 1 = serial)")
		optimize   = fs.Bool("optimize", true, "run assistant sessions with the cost-based plan optimizer; -optimize=false executes plans exactly as compiled (the hotpath/reuse harnesses always pin it off for counter comparability)")
		timeout    = fs.Duration("timeout", 0, "best-effort deadline per assistant session: expired sessions report their partial result and a degradation summary (0 = none)")
		tenants    = fs.Int("tenants", 8, "concurrent tenants for -table serve")
		sessions   = fs.Int("sessions-per-tenant", 2, "sessions each tenant runs for -table serve")
		serveAddr  = fs.String("serve-addr", "", "load-test a running iflexd at this base URL instead of an in-process server (-table serve)")
		stepDL     = fs.Duration("step-deadline", 0, "per-step deadline for -table serve sessions (0 = none)")
		pages      = fs.Int("pages", 100000, "DBLife corpus pages for -table scale (also sizes -table live, where the unset default is 10000)")
		mutatePct  = fs.Float64("mutate-pct", 1, "percentage of pages the -table live mutation updates")
		storeDir   = fs.String("store-dir", "", "reuse/build the -table scale document store at this directory (default: a temp dir; -table live requires it empty)")
		benchJSON  = fs.String("bench-json", "", "write the parallel comparison result to this JSON file")
		outPath    = fs.String("out", "", "also write output to this file")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		tracePath  = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// -pages defaults to the scale bench's 100k; live's natural size is
	// 10k, so only an explicit -pages overrides it there.
	pagesSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "pages" {
			pagesSet = true
		}
	})

	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "iflex-bench: -compare needs two arguments: old.json new.json")
			return 2
		}
		if err := compareBenchFiles(stdout, fs.Arg(0), fs.Arg(1)); err != nil {
			fmt.Fprintln(stderr, "iflex-bench:", err)
			return 1
		}
		return 0
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *tracePath)
	if err != nil {
		fmt.Fprintln(stderr, "iflex-bench:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "iflex-bench: profiling:", err)
		}
	}()

	var out io.Writer = stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "iflex-bench:", err)
			return 1
		}
		defer f.Close()
		out = io.MultiWriter(stdout, f)
	}
	o := experiments.Options{Scale: *scale, Seed: *seed, Strategy: *strategy, Workers: *workers, Deadline: *timeout, DisableOptimizer: !*optimize, Out: out}

	scaled := func(n int) int {
		v := int(float64(n) * *scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	tables := []struct {
		name string
		fn   func() error
	}{
		{"1", func() error { return experiments.Table1(o) }},
		{"2", func() error { return experiments.Table2(o) }},
		{"3", func() error { _, err := experiments.Table3(o); return err }},
		{"4", func() error { _, err := experiments.Table4(o); return err }},
		{"5", func() error { _, err := experiments.Table5(o); return err }},
		{"6", func() error { _, err := experiments.Table6(o); return err }},
		{"conv", func() error { _, err := experiments.Convergence(o); return err }},
		{"variance", func() error {
			_, err := experiments.Variance(o, []int64{1, 2, 3})
			return err
		}},
		{"scaling", func() error {
			sizes := []int{100, 250, 500, 1000, 2500}
			for i := range sizes {
				sizes[i] = scaled(sizes[i])
			}
			_, err := experiments.Scaling(o, "T7", sizes)
			return err
		}},
		{"parallel", func() error {
			res, err := experiments.ParallelCompare(o, "T9", scaled(5000))
			if err != nil {
				return err
			}
			return writeJSON(*benchJSON, res)
		}},
		{"hotpath", func() error {
			res, err := experiments.Hotpath(o, "T9", scaled(5000))
			if err != nil {
				return err
			}
			return writeJSON(*benchJSON, res)
		}},
		{"reuse", func() error {
			res, err := experiments.Reuse(o, "T9", scaled(5000))
			if err != nil {
				return err
			}
			return writeJSON(*benchJSON, res)
		}},
		{"optimizer", func() error {
			res, err := experiments.Optimizer(o)
			if err != nil {
				return err
			}
			return writeJSON(*benchJSON, res)
		}},
		{"scale", func() error {
			res, err := experiments.Scale(o, experiments.ScaleOptions{Pages: *pages, Dir: *storeDir})
			if err != nil {
				return err
			}
			return writeJSON(*benchJSON, res)
		}},
		{"live", func() error {
			lp := 0 // Live's own default (10000) applies
			if pagesSet {
				lp = *pages
			}
			res, err := experiments.Live(o, experiments.LiveOptions{Pages: lp, MutatePct: *mutatePct, Dir: *storeDir})
			if err != nil {
				return err
			}
			return writeJSON(*benchJSON, res)
		}},
		{"serve", func() error {
			res, err := experiments.Serve(o, experiments.ServeOptions{
				Tenants:           *tenants,
				SessionsPerTenant: *sessions,
				Addr:              *serveAddr,
				StepDeadlineMS:    stepDL.Milliseconds(),
			})
			if err != nil {
				return err
			}
			return writeJSON(*benchJSON, res)
		}},
	}
	// The serve harness is a service load test, the scale harness a
	// corpus-scale storage bench, and the live harness an incremental
	// re-evaluation bench, not paper tables: they only run when named
	// explicitly.
	matched := false
	for _, tb := range tables {
		if *table == "all" && (tb.name == "serve" || tb.name == "scale" || tb.name == "live") {
			continue
		}
		if *table != "all" && *table != tb.name {
			continue
		}
		matched = true
		if err := tb.fn(); err != nil {
			fmt.Fprintf(stderr, "iflex-bench: table %s: %v\n", tb.name, err)
			return 1
		}
		fmt.Fprintln(out)
	}
	if !matched {
		fmt.Fprintf(stderr, "iflex-bench: unknown table %q\n", *table)
		return 2
	}
	return 0
}

// writeJSON writes v as indented JSON to path (no-op when path is empty).
func writeJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBenchFiles diffs the wall-time fields of two benchmark JSON
// files (any top-level number whose key ends in "_s") and returns an
// error when the new file regresses any of them by more than 10%.
// Keys ending in "_per_s" are throughputs, where more is better: a >10%
// DROP fails, a rise never does. Two files with no comparable numeric
// field in common — benchmark JSON of disjoint table kinds — are an
// error (exit non-zero), not a silent empty comparison. Engine counters
// (func_calls, cache_hits, tuples_reused) found anywhere in both files
// are reported as informational delta lines; neither they nor other
// non-time fields ever fail the check. Top-level numeric fields present
// in only one of the two files — a field added or dropped between
// revisions — are listed as informational lines rather than silently
// skipped.
func compareBenchFiles(w io.Writer, oldPath, newPath string) error {
	load := func(path string) (map[string]any, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return m, nil
	}
	oldM, err := load(oldPath)
	if err != nil {
		return err
	}
	newM, err := load(newPath)
	if err != nil {
		return err
	}
	common := 0
	for k, ov := range oldM {
		if !strings.HasSuffix(k, "_s") {
			continue // metadata like records/cpus is shared by every kind
		}
		if _, ook := ov.(float64); !ook {
			continue
		}
		if _, nok := newM[k].(float64); nok {
			common++
		}
	}
	if common == 0 {
		return fmt.Errorf("nothing to compare: %s and %s share no wall-time field — likely benchmark JSON of different table kinds\n  %s has: %s\n  %s has: %s",
			oldPath, newPath,
			oldPath, strings.Join(numericKeys(oldM), ", "),
			newPath, strings.Join(numericKeys(newM), ", "))
	}
	const tolerance = 1.10
	var regressed []string
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "benchmark comparison: %s -> %s (threshold +%.0f%%)\n", oldPath, newPath, 100*(tolerance-1))
	for _, k := range keys {
		ov, ook := oldM[k].(float64)
		nv, nok := newM[k].(float64)
		if !ook || !nok {
			continue
		}
		throughput := strings.HasSuffix(k, "_per_s") // higher is better
		timing := !throughput && strings.HasSuffix(k, "_s")
		delta := "n/a"
		if ov != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
		}
		mark := " "
		if timing && ov > 0 && nv > ov*tolerance {
			mark = "!"
			regressed = append(regressed, fmt.Sprintf("%s: %.3f -> %.3f (%s)", k, ov, nv, delta))
		}
		if throughput && ov > 0 && nv < ov/tolerance {
			mark = "!"
			regressed = append(regressed, fmt.Sprintf("%s: %.3f -> %.3f (%s, throughput drop)", k, ov, nv, delta))
		}
		fmt.Fprintf(w, "%s %-24s %14.3f %14.3f  %s\n", mark, k, ov, nv, delta)
	}
	printOneSided(w, oldPath, oldM, newM)
	printOneSided(w, newPath, newM, oldM)
	printCounterDeltas(w, oldM, newM)
	if len(regressed) > 0 {
		return fmt.Errorf("wall-time or throughput regression over %0.f%%:\n  %s",
			100*(tolerance-1), strings.Join(regressed, "\n  "))
	}
	fmt.Fprintln(w, "no wall-time regressions")
	return nil
}

// printOneSided lists m's top-level numeric fields that other lacks, as
// informational lines: a field that appears or disappears between
// benchmark revisions should be visible in the comparison, not silently
// ignored.
func printOneSided(w io.Writer, path string, m, other map[string]any) {
	var only []string
	for k, v := range m {
		n, ok := v.(float64)
		if !ok {
			continue
		}
		if _, shared := other[k].(float64); shared {
			continue
		}
		only = append(only, fmt.Sprintf("  %-40s %14.3f", k, n))
	}
	if len(only) == 0 {
		return
	}
	sort.Strings(only)
	fmt.Fprintf(w, "fields only in %s (informational):\n%s\n", path, strings.Join(only, "\n"))
}

// numericKeys lists a JSON object's top-level numeric field names.
func numericKeys(m map[string]any) []string {
	var out []string
	for k, v := range m {
		if _, ok := v.(float64); ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		out = []string{"(none)"}
	}
	return out
}

// counterNames are the engine counters -compare reports as informational
// deltas wherever they occur in the benchmark JSON (they live inside
// nested stats snapshots, not at the top level).
var counterNames = map[string]bool{
	"func_calls":    true,
	"cache_hits":    true,
	"tuples_reused": true,
}

// collectCounters walks a decoded JSON value and returns every counter
// field as dotted-path → value (arrays index numerically).
func collectCounters(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, sub := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			if n, ok := sub.(float64); ok && counterNames[k] {
				out[p] = n
				continue
			}
			collectCounters(p, sub, out)
		}
	case []any:
		for i, sub := range t {
			collectCounters(fmt.Sprintf("%s[%d]", prefix, i), sub, out)
		}
	}
}

// printCounterDeltas reports engine-counter changes between the two
// files as informational lines (never failing the comparison).
func printCounterDeltas(w io.Writer, oldM, newM map[string]any) {
	oldC, newC := map[string]float64{}, map[string]float64{}
	collectCounters("", oldM, oldC)
	collectCounters("", newM, newC)
	var keys []string
	for k := range oldC {
		if _, ok := newC[k]; ok {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "counters (informational):")
	for _, k := range keys {
		ov, nv := oldC[k], newC[k]
		delta := "n/a"
		if ov != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
		}
		fmt.Fprintf(w, "  %-40s %14.0f %14.0f  %s\n", k, ov, nv, delta)
	}
}
