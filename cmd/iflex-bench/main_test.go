package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareBenchFiles(t *testing.T) {
	old := `{"serial_s": 2.0, "parallel_s": 1.0, "func_calls": 1000, "speedup": 2.0}`
	cases := []struct {
		name    string
		newJSON string
		wantErr string
	}{
		{
			// Both timings within +10%: counters may explode, only "_s"
			// fields gate.
			name:    "within tolerance",
			newJSON: `{"serial_s": 2.1, "parallel_s": 1.05, "func_calls": 99999, "speedup": 1.9}`,
		},
		{
			name:    "improvement passes",
			newJSON: `{"serial_s": 0.5, "parallel_s": 0.4, "func_calls": 10, "speedup": 1.2}`,
		},
		{
			name:    "serial regression fails",
			newJSON: `{"serial_s": 2.3, "parallel_s": 1.0, "func_calls": 10, "speedup": 2.0}`,
			wantErr: "serial_s",
		},
		{
			name:    "parallel regression fails",
			newJSON: `{"serial_s": 2.0, "parallel_s": 1.2, "func_calls": 10, "speedup": 2.0}`,
			wantErr: "parallel_s",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			oldP := writeTemp(t, "old.json", old)
			newP := writeTemp(t, "new.json", c.newJSON)
			var sb strings.Builder
			err := compareBenchFiles(&sb, oldP, newP)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected failure: %v\n%s", err, sb.String())
				}
				if !strings.Contains(sb.String(), "no wall-time regressions") {
					t.Errorf("missing pass line:\n%s", sb.String())
				}
				return
			}
			if err == nil {
				t.Fatalf("expected regression on %s, got pass:\n%s", c.wantErr, sb.String())
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not name %s", err, c.wantErr)
			}
		})
	}
}

// TestCompareBenchFilesDisjointKinds feeds -compare benchmark JSON of
// two different table kinds: no shared wall-time field must be a clear
// error naming both files' fields, never a silent empty comparison —
// shared metadata like records/cpus must not mask the mismatch.
func TestCompareBenchFilesDisjointKinds(t *testing.T) {
	old := writeTemp(t, "old.json", `{"records": 250, "cpus": 8, "serial_s": 2.0}`)
	new_ := writeTemp(t, "new.json", `{"records": 250, "cpus": 8, "total_opt_s": 1.0}`)
	var sb strings.Builder
	err := compareBenchFiles(&sb, old, new_)
	if err == nil {
		t.Fatalf("disjoint table kinds compared without error:\n%s", sb.String())
	}
	for _, want := range []string{"nothing to compare", "serial_s", "total_opt_s"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestCompareBenchFilesCounterDeltas checks that engine counters nested
// anywhere in both files surface as informational lines without ever
// gating the comparison.
func TestCompareBenchFilesCounterDeltas(t *testing.T) {
	old := writeTemp(t, "old.json", `{"wall_s": 1.0, "stats": {"func_calls": 100, "cache_hits": 40, "tuples_reused": 7}}`)
	new_ := writeTemp(t, "new.json", `{"wall_s": 1.0, "stats": {"func_calls": 150, "cache_hits": 40, "tuples_reused": 9}}`)
	var sb strings.Builder
	if err := compareBenchFiles(&sb, old, new_); err != nil {
		t.Fatalf("counter growth must not fail the comparison: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"counters (informational):", "stats.func_calls", "+50.0%", "stats.tuples_reused"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareBenchFilesBadInput(t *testing.T) {
	good := writeTemp(t, "good.json", `{"serial_s": 1.0}`)
	bad := writeTemp(t, "bad.json", `not json`)
	var sb strings.Builder
	if err := compareBenchFiles(&sb, good, bad); err == nil {
		t.Error("malformed JSON should fail")
	}
	if err := compareBenchFiles(&sb, filepath.Join(t.TempDir(), "missing.json"), good); err == nil {
		t.Error("missing file should fail")
	}
}
