package main

import (
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareBenchFiles(t *testing.T) {
	old := `{"serial_s": 2.0, "parallel_s": 1.0, "func_calls": 1000, "speedup": 2.0}`
	cases := []struct {
		name    string
		newJSON string
		wantErr string
	}{
		{
			// Both timings within +10%: counters may explode, only "_s"
			// fields gate.
			name:    "within tolerance",
			newJSON: `{"serial_s": 2.1, "parallel_s": 1.05, "func_calls": 99999, "speedup": 1.9}`,
		},
		{
			name:    "improvement passes",
			newJSON: `{"serial_s": 0.5, "parallel_s": 0.4, "func_calls": 10, "speedup": 1.2}`,
		},
		{
			name:    "serial regression fails",
			newJSON: `{"serial_s": 2.3, "parallel_s": 1.0, "func_calls": 10, "speedup": 2.0}`,
			wantErr: "serial_s",
		},
		{
			name:    "parallel regression fails",
			newJSON: `{"serial_s": 2.0, "parallel_s": 1.2, "func_calls": 10, "speedup": 2.0}`,
			wantErr: "parallel_s",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			oldP := writeTemp(t, "old.json", old)
			newP := writeTemp(t, "new.json", c.newJSON)
			var sb strings.Builder
			err := compareBenchFiles(&sb, oldP, newP)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected failure: %v\n%s", err, sb.String())
				}
				if !strings.Contains(sb.String(), "no wall-time regressions") {
					t.Errorf("missing pass line:\n%s", sb.String())
				}
				return
			}
			if err == nil {
				t.Fatalf("expected regression on %s, got pass:\n%s", c.wantErr, sb.String())
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not name %s", err, c.wantErr)
			}
		})
	}
}

// TestCompareBenchFilesDisjointKinds feeds -compare benchmark JSON of
// two different table kinds: no shared wall-time field must be a clear
// error naming both files' fields, never a silent empty comparison —
// shared metadata like records/cpus must not mask the mismatch.
func TestCompareBenchFilesDisjointKinds(t *testing.T) {
	old := writeTemp(t, "old.json", `{"records": 250, "cpus": 8, "serial_s": 2.0}`)
	new_ := writeTemp(t, "new.json", `{"records": 250, "cpus": 8, "total_opt_s": 1.0}`)
	var sb strings.Builder
	err := compareBenchFiles(&sb, old, new_)
	if err == nil {
		t.Fatalf("disjoint table kinds compared without error:\n%s", sb.String())
	}
	for _, want := range []string{"nothing to compare", "serial_s", "total_opt_s"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestCompareBenchFilesCounterDeltas checks that engine counters nested
// anywhere in both files surface as informational lines without ever
// gating the comparison.
func TestCompareBenchFilesCounterDeltas(t *testing.T) {
	old := writeTemp(t, "old.json", `{"wall_s": 1.0, "stats": {"func_calls": 100, "cache_hits": 40, "tuples_reused": 7}}`)
	new_ := writeTemp(t, "new.json", `{"wall_s": 1.0, "stats": {"func_calls": 150, "cache_hits": 40, "tuples_reused": 9}}`)
	var sb strings.Builder
	if err := compareBenchFiles(&sb, old, new_); err != nil {
		t.Fatalf("counter growth must not fail the comparison: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"counters (informational):", "stats.func_calls", "+50.0%", "stats.tuples_reused"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// parseProfile decompresses a pprof profile (gzipped protobuf) and
// returns its payload. A profile truncated by os.Exit before
// pprof.StopCPUProfile could flush it fails right here.
func parseProfile(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("%s is not a valid gzipped profile: %v", path, err)
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("%s: corrupt profile payload: %v", path, err)
	}
	return data
}

// TestFailingRunStillFlushesProfile is the regression test for the
// exit-path bug: run used to os.Exit(1) on a table error, skipping the
// deferred profile stop and leaving an unparseable CPU profile. A run
// that fails after profiling starts must still yield a parseable profile.
func TestFailingRunStillFlushesProfile(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "cpu.prof")
	var out, errOut strings.Builder
	// -out into a nonexistent directory fails after prof.Start.
	code := run([]string{
		"-cpuprofile", prof,
		"-out", filepath.Join(dir, "no", "such", "dir", "results.txt"),
		"-table", "1", "-scale", "0.05",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if data := parseProfile(t, prof); len(data) == 0 {
		t.Error("profile payload is empty")
	}

	// An unknown table (exit 2) must flush the profile too.
	prof2 := filepath.Join(dir, "cpu2.prof")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-cpuprofile", prof2, "-table", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown table: exit code = %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "unknown table") {
		t.Errorf("stderr missing unknown-table diagnostic: %s", errOut.String())
	}
	parseProfile(t, prof2)
}

// TestRunWritesOutFile covers the happy path through run: exit 0, the
// -out copy holds the rendered table, and the profile parses.
func TestRunWritesOutFile(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "results.txt")
	prof := filepath.Join(dir, "cpu.prof")
	var out, errOut strings.Builder
	code := run([]string{"-cpuprofile", prof, "-out", outFile, "-table", "2", "-scale", "0.05"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "T1") || !strings.Contains(out.String(), "T1") {
		t.Errorf("-out copy and stdout should both carry the table; file:\n%s", data)
	}
	parseProfile(t, prof)
}

// TestRunServeTable drives -table serve end to end at tiny scale and
// checks BENCH_SERVE.json lands with the latency/throughput fields.
func TestRunServeTable(t *testing.T) {
	dir := t.TempDir()
	benchJSON := filepath.Join(dir, "BENCH_SERVE.json")
	var out, errOut strings.Builder
	code := run([]string{
		"-table", "serve", "-scale", "0.05",
		"-tenants", "2", "-sessions-per-tenant", "1",
		"-bench-json", benchJSON,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	data, err := os.ReadFile(benchJSON)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"step_p50_s", "step_p99_s", "sessions_per_sec", "wall_s"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("BENCH_SERVE.json missing %q:\n%s", want, data)
		}
	}
}

func TestCompareBenchFilesBadInput(t *testing.T) {
	good := writeTemp(t, "good.json", `{"serial_s": 1.0}`)
	bad := writeTemp(t, "bad.json", `not json`)
	var sb strings.Builder
	if err := compareBenchFiles(&sb, good, bad); err == nil {
		t.Error("malformed JSON should fail")
	}
	if err := compareBenchFiles(&sb, filepath.Join(t.TempDir(), "missing.json"), good); err == nil {
		t.Error("missing file should fail")
	}
}
