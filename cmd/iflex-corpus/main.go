// Command iflex-corpus generates the synthetic evaluation corpora and
// writes them to disk as .html pages plus a ground-truth summary, so that
// the iflex CLI (and any external tool) can run against them.
//
// Usage:
//
//	iflex-corpus -domain movies -records 100 -out ./data
//
// creates ./data/IMDB/*.html, ./data/Ebert/*.html, ./data/Prasanna/*.html
// and ./data/truth.txt.
//
// At corpus scale, -store streams pages straight into a sharded document
// store with a persistent inverted token index (internal/store) instead
// of one file per page:
//
//	iflex-corpus -domain dblife -pages 1000000 -store ./dblife.ifs
//
// The dblife generator streams: resident memory stays constant in the
// page count (pass -truth=false to keep the ground-truth accumulation
// flat too).
//
// -mutate updates an existing store in place, simulating a live corpus:
//
//	iflex-corpus -domain books -records 5000 -seed 2 -mutate pct=1 -store ./books.ifs
//
// regenerates the corpus at the given seed and commits the regenerated
// content for a deterministic pct% sample of the store's live pages as
// one mutation generation (the original ingest seed must differ for the
// content to actually change). -store refuses to overwrite a non-empty
// directory unless -force is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"iflex/internal/corpus"
	"iflex/internal/similarity"
	"iflex/internal/store"
)

func main() {
	var (
		domain   = flag.String("domain", "movies", "domain to generate: movies, dblp, books, dblife")
		records  = flag.Int("records", 100, "records per table (pages for dblife)")
		pages    = flag.Int("pages", 0, "pages to generate (overrides -records; dblife streams at any scale)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "corpus-out", "output directory for .html pages")
		storeDir = flag.String("store", "", "write a sharded document store to this directory instead of .html pages")
		truth    = flag.Bool("truth", true, "collect and write ground truth (disable for constant-memory streaming)")
		mutate   = flag.String("mutate", "", `mutate an existing store in place: "pct=N" commits regenerated content for N% of its live pages (requires -store)`)
		force    = flag.Bool("force", false, "allow -store to overwrite a directory that already holds a store")
		sync     = flag.Bool("sync", true, "fsync store writes (ingest seals and mutation commits); off is faster but a crash may lose the run")
	)
	flag.Parse()
	n := *records
	if *pages > 0 {
		n = *pages
	}
	var err error
	switch {
	case *mutate != "":
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "iflex-corpus: -mutate requires -store")
			os.Exit(2)
		}
		err = runMutate(*domain, n, *seed, *storeDir, *mutate, *sync)
	case *storeDir != "":
		// Refuse to write a store over a directory that already has
		// content: ingesting into it would shadow (not replace) the old
		// shards and index, leaving a corrupt hybrid.
		if entries, derr := os.ReadDir(*storeDir); derr == nil && len(entries) > 0 {
			if !*force {
				fmt.Fprintf(os.Stderr,
					"iflex-corpus: store directory %s already contains %d entries; refusing to overwrite an existing store (use -mutate to update it in place, or -force to overwrite)\n",
					*storeDir, len(entries))
				os.Exit(2)
			}
			if err := os.RemoveAll(*storeDir); err != nil {
				fmt.Fprintln(os.Stderr, "iflex-corpus:", err)
				os.Exit(1)
			}
		}
		err = runStore(*domain, n, *seed, *storeDir, *truth, *sync)
	default:
		err = run(*domain, n, *seed, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iflex-corpus:", err)
		os.Exit(1)
	}
}

// generatePages renders the whole corpus at a seed into an id -> raw
// page map — the content source for -mutate (page ids are positional,
// so the same id regenerates to different content under a new seed).
func generatePages(domain string, n int, seed int64) (map[string]string, error) {
	pages := map[string]string{}
	if domain == "dblife" {
		err := corpus.StreamDBLife(corpus.DBLifeConfig{Pages: n, Seed: seed}, nil,
			func(id, src string) error { pages[id] = src; return nil })
		return pages, err
	}
	var c *corpus.Corpus
	switch domain {
	case "movies":
		c = corpus.Movies(corpus.MoviesConfig{Records: n, Seed: seed})
	case "dblp":
		c = corpus.DBLP(corpus.DBLPConfig{Records: n, Seed: seed})
	case "books":
		c = corpus.Books(corpus.BooksConfig{Records: n, Seed: seed})
	default:
		return nil, fmt.Errorf("unknown domain %q (want movies, dblp, books, dblife)", domain)
	}
	for _, t := range c.Tables {
		for i, raw := range t.Raw {
			pages[t.Docs[i].ID()] = raw
		}
	}
	return pages, nil
}

// runMutate commits one mutation generation to an existing store:
// regenerated content for a deterministic pct% sample of its live pages.
func runMutate(domain string, n int, seed int64, dir, spec string, sync bool) error {
	val, ok := strings.CutPrefix(spec, "pct=")
	if !ok {
		return fmt.Errorf(`bad -mutate spec %q (want "pct=N")`, spec)
	}
	pct, err := strconv.ParseFloat(val, 64)
	if err != nil || pct <= 0 || pct > 100 {
		return fmt.Errorf("bad -mutate percentage %q (want 0 < N <= 100)", val)
	}
	pages, err := generatePages(domain, n, seed)
	if err != nil {
		return err
	}
	st, err := store.Open(dir, store.OpenOptions{NoSync: !sync})
	if err != nil {
		return err
	}
	defer st.Close()
	for _, note := range st.Recovery() {
		fmt.Fprintf(os.Stderr, "iflex-corpus: %s: recovery: %s\n", dir, note)
	}

	// Deterministic sample: order live ids by a seeded hash and take the
	// first pct%. The same seed always mutates the same pages.
	ids := make([]string, 0, st.Len())
	for _, d := range st.Docs() {
		ids = append(ids, d.ID())
	}
	sort.Slice(ids, func(i, j int) bool {
		hi, hj := mutHash(ids[i], seed), mutHash(ids[j], seed)
		if hi != hj {
			return hi < hj
		}
		return ids[i] < ids[j]
	})
	k := int(float64(len(ids))*pct/100 + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(ids) {
		k = len(ids)
	}

	m, err := st.BeginMutation()
	if err != nil {
		return err
	}
	for _, id := range ids[:k] {
		raw, ok := pages[id]
		if !ok {
			return fmt.Errorf("no regenerated page for %q — do -domain and -records match the ingested corpus?", id)
		}
		if err := m.Put(id, raw); err != nil {
			return err
		}
	}
	d, err := m.Commit()
	if err != nil {
		return err
	}
	fmt.Printf("mutated %d of %d pages (%.2f%%) in %s: generation %d (+%d ~%d -%d)\n",
		k, len(ids), 100*float64(k)/float64(len(ids)), dir, st.Generation(),
		len(d.Added), len(d.Updated), len(d.Removed))
	return nil
}

// mutHash is seeded FNV-1a over a document id.
func mutHash(s string, seed int64) uint64 {
	h := uint64(14695981039346656037) ^ (uint64(seed) * 0x9E3779B97F4A7C15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// runStore ingests the generated pages into a sharded document store.
// The dblife domain streams page by page — no page, document, or index
// posting list is retained beyond the store writer's bounded state — so
// million-page corpora build in constant resident memory. The record
// domains are small; they generate eagerly and ingest from memory.
func runStore(domain string, n int, seed int64, dir string, withTruth, sync bool) error {
	w, err := store.Create(dir, store.Options{NoSync: !sync})
	if err != nil {
		return err
	}
	if domain == "dblife" {
		var tr *corpus.DBLifeTruth
		if withTruth {
			tr = &corpus.DBLifeTruth{}
		}
		err := corpus.StreamDBLife(corpus.DBLifeConfig{Pages: n, Seed: seed}, tr,
			func(id, src string) error { return w.Add(id, src) })
		if err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		man := w.Manifest()
		fmt.Printf("wrote %d pages (%d shards, %d index tokens) to %s\n",
			man.Docs, man.Shards, man.Vocab, dir)
		if withTruth {
			f, err := os.Create(filepath.Join(dir, "truth.txt"))
			if err != nil {
				return err
			}
			defer f.Close()
			writeTruthSet(f, "Panel", tr.TruthPanel())
			writeTruthSet(f, "Project", tr.TruthProject())
			writeTruthSet(f, "Chair", tr.TruthChair())
		}
		return nil
	}
	var c *corpus.Corpus
	switch domain {
	case "movies":
		c = corpus.Movies(corpus.MoviesConfig{Records: n, Seed: seed})
	case "dblp":
		c = corpus.DBLP(corpus.DBLPConfig{Records: n, Seed: seed})
	case "books":
		c = corpus.Books(corpus.BooksConfig{Records: n, Seed: seed})
	default:
		return fmt.Errorf("unknown domain %q (want movies, dblp, books, dblife)", domain)
	}
	var tableNames []string
	for name := range c.Tables {
		tableNames = append(tableNames, name)
	}
	sort.Strings(tableNames)
	total := 0
	for _, name := range tableNames {
		t := c.Tables[name]
		for i, raw := range t.Raw {
			if err := w.Add(t.Docs[i].ID(), raw); err != nil {
				return err
			}
			total++
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d pages to %s\n", total, dir)
	return nil
}

func writeTruthSet(f *os.File, label string, set map[string]bool) {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(f, "## %s (%d)\n", label, len(keys))
	for _, k := range keys {
		fmt.Fprintln(f, k)
	}
}

func run(domain string, records int, seed int64, out string) error {
	var c *corpus.Corpus
	switch domain {
	case "movies":
		c = corpus.Movies(corpus.MoviesConfig{Records: records, Seed: seed})
	case "dblp":
		c = corpus.DBLP(corpus.DBLPConfig{Records: records, Seed: seed})
	case "books":
		c = corpus.Books(corpus.BooksConfig{Records: records, Seed: seed})
	case "dblife":
		c = corpus.DBLife(corpus.DBLifeConfig{Pages: records, Seed: seed})
	default:
		return fmt.Errorf("unknown domain %q (want movies, dblp, books, dblife)", domain)
	}

	var tableNames []string
	for name := range c.Tables {
		tableNames = append(tableNames, name)
	}
	sort.Strings(tableNames)
	for _, name := range tableNames {
		t := c.Tables[name]
		dir := filepath.Join(out, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i, raw := range t.Raw {
			path := filepath.Join(dir, fmt.Sprintf("%s-%04d.html", t.Docs[i].ID(), i))
			if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d pages to %s\n", len(t.Raw), dir)
	}

	truth, err := os.Create(filepath.Join(out, "truth.txt"))
	if err != nil {
		return err
	}
	defer truth.Close()
	writeSet := func(label string, set map[string]bool) {
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(truth, "## %s (%d)\n", label, len(keys))
		for _, k := range keys {
			fmt.Fprintln(truth, k)
		}
	}
	switch domain {
	case "movies":
		writeSet("T1", c.TruthT1())
		writeSet("T2", c.TruthT2())
		writeSet("T3", c.TruthT3(similarity.Similar))
	case "dblp":
		writeSet("T4", c.TruthT4())
		writeSet("T5", c.TruthT5())
		writeSet("T6", c.TruthT6(similarity.Similar))
	case "books":
		writeSet("T7", c.TruthT7())
		writeSet("T8", c.TruthT8())
		writeSet("T9", c.TruthT9(similarity.Similar))
	case "dblife":
		writeSet("Panel", c.DBLife.TruthPanel())
		writeSet("Project", c.DBLife.TruthProject())
		writeSet("Chair", c.DBLife.TruthChair())
	}
	fmt.Printf("wrote ground truth to %s\n", filepath.Join(out, "truth.txt"))
	return nil
}
