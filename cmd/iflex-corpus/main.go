// Command iflex-corpus generates the synthetic evaluation corpora and
// writes them to disk as .html pages plus a ground-truth summary, so that
// the iflex CLI (and any external tool) can run against them.
//
// Usage:
//
//	iflex-corpus -domain movies -records 100 -out ./data
//
// creates ./data/IMDB/*.html, ./data/Ebert/*.html, ./data/Prasanna/*.html
// and ./data/truth.txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"iflex/internal/corpus"
	"iflex/internal/similarity"
)

func main() {
	var (
		domain  = flag.String("domain", "movies", "domain to generate: movies, dblp, books, dblife")
		records = flag.Int("records", 100, "records per table (pages for dblife)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "corpus-out", "output directory")
	)
	flag.Parse()
	if err := run(*domain, *records, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "iflex-corpus:", err)
		os.Exit(1)
	}
}

func run(domain string, records int, seed int64, out string) error {
	var c *corpus.Corpus
	switch domain {
	case "movies":
		c = corpus.Movies(corpus.MoviesConfig{Records: records, Seed: seed})
	case "dblp":
		c = corpus.DBLP(corpus.DBLPConfig{Records: records, Seed: seed})
	case "books":
		c = corpus.Books(corpus.BooksConfig{Records: records, Seed: seed})
	case "dblife":
		c = corpus.DBLife(corpus.DBLifeConfig{Pages: records, Seed: seed})
	default:
		return fmt.Errorf("unknown domain %q (want movies, dblp, books, dblife)", domain)
	}

	var tableNames []string
	for name := range c.Tables {
		tableNames = append(tableNames, name)
	}
	sort.Strings(tableNames)
	for _, name := range tableNames {
		t := c.Tables[name]
		dir := filepath.Join(out, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i, raw := range t.Raw {
			path := filepath.Join(dir, fmt.Sprintf("%s-%04d.html", t.Docs[i].ID(), i))
			if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d pages to %s\n", len(t.Raw), dir)
	}

	truth, err := os.Create(filepath.Join(out, "truth.txt"))
	if err != nil {
		return err
	}
	defer truth.Close()
	writeSet := func(label string, set map[string]bool) {
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(truth, "## %s (%d)\n", label, len(keys))
		for _, k := range keys {
			fmt.Fprintln(truth, k)
		}
	}
	switch domain {
	case "movies":
		writeSet("T1", c.TruthT1())
		writeSet("T2", c.TruthT2())
		writeSet("T3", c.TruthT3(similarity.Similar))
	case "dblp":
		writeSet("T4", c.TruthT4())
		writeSet("T5", c.TruthT5())
		writeSet("T6", c.TruthT6(similarity.Similar))
	case "books":
		writeSet("T7", c.TruthT7())
		writeSet("T8", c.TruthT8())
		writeSet("T9", c.TruthT9(similarity.Similar))
	case "dblife":
		writeSet("Panel", c.DBLife.TruthPanel())
		writeSet("Project", c.DBLife.TruthProject())
		writeSet("Chair", c.DBLife.TruthChair())
	}
	fmt.Printf("wrote ground truth to %s\n", filepath.Join(out, "truth.txt"))
	return nil
}
