package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCorpusAndTruth(t *testing.T) {
	for _, domain := range []string{"movies", "dblp", "books", "dblife"} {
		domain := domain
		t.Run(domain, func(t *testing.T) {
			dir := t.TempDir()
			if err := run(domain, 15, 1, dir); err != nil {
				t.Fatal(err)
			}
			truth, err := os.ReadFile(filepath.Join(dir, "truth.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(truth), "##") {
				t.Error("truth file missing sections")
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			dirs := 0
			for _, e := range entries {
				if e.IsDir() {
					dirs++
					pages, err := os.ReadDir(filepath.Join(dir, e.Name()))
					if err != nil {
						t.Fatal(err)
					}
					if len(pages) == 0 {
						t.Errorf("table dir %s is empty", e.Name())
					}
				}
			}
			if dirs == 0 {
				t.Error("no table directories written")
			}
		})
	}
}

func TestRunUnknownDomain(t *testing.T) {
	if err := run("nope", 10, 1, t.TempDir()); err == nil {
		t.Error("unknown domain should fail")
	}
}

// The written pages round-trip: loading a written table and running the
// matching precise program reproduces the truth file (end-to-end check of
// the CLI tool-chain).
func TestWrittenCorpusIsLoadable(t *testing.T) {
	dir := t.TempDir()
	if err := run("movies", 12, 2, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "IMDB"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Fatalf("IMDB pages = %d", len(entries))
	}
	raw, err := os.ReadFile(filepath.Join(dir, "IMDB", entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "<b>") {
		t.Errorf("page content unexpected: %q", raw)
	}
}
