// Command iflex executes an Alog program over document directories and
// prints the approximate result as a compact table.
//
// Usage:
//
//	iflex -program houses.alog -table housePages=./houses -table schoolPages=./schools
//
// Each -table flag binds an extensional predicate to a directory of .html
// pages (one tuple per page). The program's query predicate (rule named Q,
// or the last non-description rule) defines the result.
//
// -store binds a predicate to a sharded document store built by
// iflex-corpus -store instead of a page directory:
//
//	iflex -program panels.alog -store docs=./dblife.ifs
//
// Store pages load lazily (bounded by -store-budget) and, when exactly
// one store is bound, token prefilters and join blocking are served from
// its persistent inverted index; results are byte-identical to -table.
//
// With -interactive, the next-effort assistant drives a refinement session
// on the terminal: it asks feature questions ("is extractHouses.p
// bold-font?"), you answer yes / distinct-yes / no / a parameter value, or
// press enter for "I do not know", and the program is refined until
// convergence.
//
// Exit status:
//
//	0  clean run
//	1  error (bad program, unreadable tables, execution failure)
//	2  usage error
//	3  completed, but degraded: a -timeout expired or documents were
//	   quarantined, so the printed table is a best-effort partial result
//	   (the degradation summary goes to stderr)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"iflex"
	"iflex/internal/engine/opt"
	"iflex/internal/prof"
)

// tableFlags collects repeated -table pred=dir bindings.
type tableFlags map[string]string

func (t tableFlags) String() string { return fmt.Sprint(map[string]string(t)) }

func (t tableFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want pred=dir, got %q", v)
	}
	t[parts[0]] = parts[1]
	return nil
}

func main() {
	degraded, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "iflex:", err)
		os.Exit(1)
	}
	if degraded {
		// Distinct from success and from failure: the table printed, but it
		// is a best-effort partial result. Scripts checking only for exit 0
		// used to treat degraded output as complete.
		os.Exit(3)
	}
}

// run executes the command and reports whether the result was degraded
// (deadline cuts or quarantined documents — exit status 3).
func run() (degraded bool, err error) {
	var (
		programPath = flag.String("program", "", "path to the Alog program (required)")
		tables      = tableFlags{}
		stores      = tableFlags{}
		storeBudget = flag.Int64("store-budget", 256<<20, "resident-memory budget in bytes for -store page content (0 = unlimited)")
		interactive = flag.Bool("interactive", false, "drive a refinement session with the next-effort assistant")
		strategy    = flag.String("strategy", "seq", "question selection strategy: seq or sim")
		workers     = flag.Int("workers", 0, "worker pool size for evaluation and simulation (0 = one per CPU, 1 = serial)")
		maxTuples   = flag.Int("max-print", 50, "print at most this many result tuples")
		explain     = flag.Bool("explain", false, "print an EXPLAIN ANALYZE tree: per-operator rows, timing, cache status, fallbacks, optimizer decisions")
		optimize    = flag.Bool("optimize", true, "run the cost-based plan optimizer (pushdown, join fusion, conjunct ordering); -optimize=false executes plans exactly as compiled")
		timeout     = flag.Duration("timeout", 0, "best-effort deadline: on expiry print the partial result plus a degradation summary (0 = none)")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		tracePath   = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Var(tables, "table", "bind an extensional predicate to a directory of .html pages (pred=dir, repeatable)")
	flag.Var(stores, "store", "bind an extensional predicate to a sharded document store built by iflex-corpus -store (pred=dir, repeatable)")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *tracePath)
	if err != nil {
		return false, err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "iflex: profiling:", err)
		}
	}()

	if *programPath == "" || len(tables)+len(stores) == 0 {
		flag.Usage()
		return false, fmt.Errorf("-program and at least one -table or -store are required")
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		return false, err
	}
	prog, err := iflex.ParseProgram(string(src))
	if err != nil {
		return false, err
	}
	env := iflex.NewEnv()
	for pred, dir := range tables {
		docs, err := iflex.LoadDocuments(dir)
		if err != nil {
			return false, err
		}
		env.AddDocTable(pred, "x", docs)
		fmt.Fprintf(os.Stderr, "loaded %d pages into %s\n", len(docs), pred)
	}
	for pred, dir := range stores {
		s, err := iflex.OpenStore(dir, *storeBudget)
		if err != nil {
			return false, err
		}
		defer s.Close()
		env.AddDocTable(pred, "x", s.Docs())
		// The engine consults one index per environment; with several
		// stores bound it falls back to query-time tokenization (results
		// are identical either way).
		if len(stores) == 1 {
			env.DocIndex = s
			env.Postings = s
		}
		fmt.Fprintf(os.Stderr, "opened store %s into %s: %d pages, %d index tokens\n",
			dir, pred, s.Len(), s.Vocab())
	}

	if !*interactive {
		plan, err := iflex.Compile(prog, env)
		if err != nil {
			return false, err
		}
		if *optimize {
			plan = opt.Optimize(plan, env, opt.NewModel(), nil)
		}
		ctx := iflex.NewContext(env)
		ctx.Workers = *workers
		if *explain {
			// Enable tracing before execution so the tree shows real
			// evaluation timings, not all-hit cache lookups.
			ctx.StartTrace()
		}
		var result *iflex.Table
		if *timeout > 0 {
			c, cancel := context.WithTimeout(context.Background(), *timeout)
			defer cancel()
			result, err = plan.ExecuteContext(c, ctx)
		} else {
			result, err = plan.Execute(ctx)
		}
		if err != nil {
			return false, err
		}
		if *explain {
			analyzed, err := plan.Explain(ctx)
			if err != nil {
				return false, err
			}
			fmt.Println(analyzed)
		}
		printDegraded(result.Degraded)
		printResult(result, *maxTuples)
		return result.Degraded != nil, nil
	}

	strat, err := iflex.StrategyByName(*strategy)
	if err != nil {
		return false, err
	}
	stdin := bufio.NewScanner(os.Stdin)
	oracle := iflex.InteractiveOracle(func(q iflex.Question) (string, bool) {
		fmt.Printf("%s (enter = I do not know): ", q)
		if !stdin.Scan() {
			return "", false
		}
		ans := strings.TrimSpace(stdin.Text())
		return ans, ans != ""
	})
	session := iflex.NewSession(env, prog, oracle, iflex.SessionConfig{
		Strategy: strat, Workers: *workers, Deadline: *timeout,
		DisableOptimizer: !*optimize,
	})
	res, err := session.Run()
	if err != nil {
		return false, err
	}
	fmt.Printf("converged=%v after %d iterations, %d questions\n",
		res.Converged, len(res.Iterations), res.QuestionsAsked)
	fmt.Println("refined program:")
	fmt.Println(session.Program())
	printDegraded(res.Degraded)
	printResult(res.Final, *maxTuples)
	return res.Degraded != nil, nil
}

// printDegraded reports a best-effort degradation (deadline cuts,
// quarantined documents) on stderr; a nil report is a clean run.
func printDegraded(d *iflex.Degraded) {
	if d == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "degraded: %s\n", d.Summary())
}

func printResult(t *iflex.Table, max int) {
	fmt.Printf("result: %d compact tuples (%d expanded)\n", len(t.Tuples), t.NumExpandedTuples())
	fmt.Printf("(%s)\n", strings.Join(t.Cols, ", "))
	for i, tp := range t.Tuples {
		if i >= max {
			fmt.Printf("... %d more\n", len(t.Tuples)-max)
			break
		}
		fmt.Println("  " + tp.String())
	}
}
