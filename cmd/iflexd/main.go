// Command iflexd serves the best-effort extraction assistant to many
// concurrent tenants over HTTP/JSON: it creates refinement sessions,
// serves next-effort questions, folds answers back into programs, and
// streams result tables with degradation reports and EXPLAIN traces.
//
// Usage:
//
//	iflexd -addr :8080 -tenant-workers 4 -tenant-cache-budget 67108864
//
// -store name=dir mounts a sharded document store (built by
// iflex-corpus -store) under a name sessions reference with the create
// request's "store" field; all sessions over the same store share one
// handle, its lazily-materialized pages (bounded by -store-budget), and
// its persistent inverted token index:
//
//	iflexd -store dblife=./dblife.ifs
//
// Mounted stores are live: POST /v1/sessions/{id}/corpus commits a page
// mutation (put/remove) to the addressed session's store, folds the
// delta into every session backed by it, and re-evaluates incrementally
// — tuples sourced from unchanged pages replay from the displaced reuse
// cache instead of recomputing (DESIGN.md §16).
//
// Endpoints (see DESIGN.md §14):
//
//	POST   /v1/sessions             create a session (task-backed or inline docs)
//	GET    /v1/sessions/{id}        lifecycle view
//	POST   /v1/sessions/{id}/step   answer questions, run one iteration
//	POST   /v1/sessions/{id}/corpus commit a store mutation, re-evaluate incrementally
//	GET    /v1/sessions/{id}/result finalize and stream the result (NDJSON)
//	DELETE /v1/sessions/{id}        drop a session
//	GET    /healthz                 "ok" or "draining"
//	GET    /v1/stats                per-tenant aggregate usage
//
// On SIGTERM/SIGINT the server drains: new requests get 503, in-flight
// steps finish, then the process exits 0. Sessions idle past -session-ttl
// are evicted by a background sweep.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"iflex/internal/prof"
	"iflex/internal/server"
	"iflex/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main's body with an exit code instead of os.Exit, so deferred
// cleanups (profile flushes, listener close) run on every path.
func run(args []string) int {
	fs := flag.NewFlagSet("iflexd", flag.ContinueOnError)
	storeFlags := map[string]string{}
	fs.Func("store", "mount a document store under a name (name=dir, repeatable)", func(v string) error {
		name, dir, ok := strings.Cut(v, "=")
		if !ok || name == "" || dir == "" {
			return fmt.Errorf("want name=dir, got %q", v)
		}
		storeFlags[name] = dir
		return nil
	})
	var (
		addr          = fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		storeBudget   = fs.Int64("store-budget", 256<<20, "resident-memory budget in bytes per mounted store's page content (0 = unlimited)")
		storeSync     = fs.Bool("store-sync", true, "fsync store mutations at commit (off trades crash durability of the freshest generations for latency)")
		maxReqBytes   = fs.Int64("max-request-bytes", 8<<20, "cap on a JSON request body; oversized bodies get 413 (negative = unlimited)")
		readHdrTO     = fs.Duration("read-header-timeout", 10*time.Second, "close connections whose request headers take longer than this")
		idleTO        = fs.Duration("idle-timeout", 2*time.Minute, "close keep-alive connections idle this long")
		maxSessions   = fs.Int("max-sessions", 64, "global live-session cap")
		tenantCap     = fs.Int("max-sessions-per-tenant", 8, "per-tenant live-session cap")
		tenantWorkers = fs.Int("tenant-workers", 0, "per-tenant worker-pool share (0 = one per CPU)")
		tenantCache   = fs.Int64("tenant-cache-budget", 0, "per-tenant reuse-cache byte pool (0 = unlimited)")
		sessionTTL    = fs.Duration("session-ttl", 15*time.Minute, "evict sessions idle this long")
		sweepEvery    = fs.Duration("sweep-interval", time.Minute, "idle-eviction scan cadence")
		defaultStep   = fs.Duration("default-step-deadline", 0, "per-step deadline when the request names none (0 = none)")
		maxStep       = fs.Duration("max-step-deadline", 30*time.Second, "clamp on requested per-step deadlines")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		cpuProfile    = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile    = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
		tracePath     = fs.String("trace", "", "write a runtime execution trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := log.New(os.Stderr, "iflexd: ", log.LstdFlags)

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *tracePath)
	if err != nil {
		logger.Print(err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			logger.Print("profiling: ", err)
		}
	}()

	stores := map[string]*store.DiskStore{}
	for name, dir := range storeFlags {
		st, err := store.Open(dir, store.OpenOptions{ResidentBudget: *storeBudget, NoSync: !*storeSync})
		if err != nil {
			logger.Print(err)
			return 1
		}
		defer st.Close()
		stores[name] = st
		for _, note := range st.Recovery() {
			logger.Printf("store %q: recovery: %s", name, note)
		}
		logger.Printf("mounted store %q from %s: %d pages, %d index tokens (generation %d)", name, dir, st.Len(), st.Vocab(), st.Generation())
	}

	srv := server.New(server.Config{
		Stores:               stores,
		MaxSessions:          *maxSessions,
		MaxSessionsPerTenant: *tenantCap,
		TenantWorkers:        *tenantWorkers,
		TenantCacheBudget:    *tenantCache,
		SessionTTL:           *sessionTTL,
		SweepInterval:        *sweepEvery,
		DefaultStepDeadline:  *defaultStep,
		MaxStepDeadline:      *maxStep,
		MaxRequestBytes:      *maxReqBytes,
		Logf:                 logger.Printf,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Print(err)
		return 1
	}
	// Header and idle timeouts bound slow-loris connections and idle
	// keep-alives; step latency is governed separately by per-step
	// deadlines, so no overall read/write timeout is set.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHdrTO,
		IdleTimeout:       *idleTO,
	}
	logger.Printf("listening on %s", ln.Addr())

	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)

	select {
	case sig := <-sigc:
		logger.Printf("%v: draining (in-flight steps finish, new requests get 503)", sig)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Print("drain incomplete: ", err)
			return 1
		}
		logger.Print("drained cleanly")
		return 0
	case err := <-served:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Print(err)
			return 1
		}
		return 0
	}
}
