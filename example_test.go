package iflex_test

import (
	"fmt"
	"log"

	"iflex"
)

// Example runs the paper's running example: an approximate program over
// house-listing pages, refined with one domain constraint.
func Example() {
	env := iflex.NewEnv()
	page, err := iflex.ParseDocument("x2",
		"Amazing house.<br>Sqft: 4700<br>Price: 619000<br>School: Basktall HS")
	if err != nil {
		log.Fatal(err)
	}
	env.AddDocTable("housePages", "x", []*iflex.Document{page})

	prog, err := iflex.ParseProgram(`
		houses(x, <p>) :- housePages(x), extractPrice(x, p).
		Q(x, p) :- houses(x, p), p > 500000.
		extractPrice(x, p) :- from(x, p), numeric(p) = yes.
	`)
	if err != nil {
		log.Fatal(err)
	}
	result, err := iflex.Run(prog, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("approximate:", result.NumExpandedTuples(), "tuple(s), price candidates:", result.Tuples[0].Cells[1].NumValues())

	if err := prog.AddConstraint(iflex.AttrRef{Pred: "extractPrice", Var: "p"},
		"preceded-by", "Price:"); err != nil {
		log.Fatal(err)
	}
	result, err = iflex.Run(prog, env)
	if err != nil {
		log.Fatal(err)
	}
	price, _ := result.Tuples[0].Cells[1].Singleton()
	fmt.Println("refined price:", price.Text())
	// Output:
	// approximate: 1 tuple(s), price candidates: 2
	// refined price: 619000
}

// ExampleNewSession shows the next-effort assistant converging with a
// fixed-answer oracle standing in for the developer.
func ExampleNewSession() {
	env := iflex.NewEnv()
	var docs []*iflex.Document
	for i, price := range []string{"120", "80", "300"} {
		d, err := iflex.ParseDocument(fmt.Sprintf("p%d", i),
			"Item<br>Price: <b>"+price+"</b>")
		if err != nil {
			log.Fatal(err)
		}
		docs = append(docs, d)
	}
	env.AddDocTable("pages", "x", docs)
	prog := iflex.MustParseProgram(`
		items(x, <p>) :- pages(x), extractPrice(x, p).
		Q(x, p) :- items(x, p), p > 100.
		extractPrice(x, p) :- from(x, p).
	`)
	oracle := iflex.AnswersOracle(map[string]map[string]string{
		"extractPrice.p": {"bold-font": "distinct-yes", "numeric": "yes"},
	})
	session := iflex.NewSession(env, prog, oracle, iflex.SessionConfig{})
	res, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("items above 100:", res.FinalTuples)
	// Output: items above 100: 2
}
