// Books: comparison shopping across two stores (task T9 of the paper —
// books that are cheaper at Amazon than at Barnes & Noble).
//
// This example uses the generated Books corpus and shows the two halves of
// best-effort IE working together: an immediate approximate answer from
// the initial program, then the assistant-refined precise answer, checked
// against the generator's ground truth.
//
// Run with: go run ./examples/books
package main

import (
	"fmt"
	"log"
	"sort"

	"iflex"
	"iflex/internal/corpus"
)

func main() {
	task, err := corpus.TaskByID("T9")
	if err != nil {
		log.Fatal(err)
	}
	c := task.Generate(40, 7)
	env := task.Env(c)
	prog, err := iflex.ParseProgram(task.Program)
	if err != nil {
		log.Fatal(err)
	}

	// Best-effort step 1: run the underspecified program immediately.
	first, err := iflex.Run(prog, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial approximate result: %d tuples (every candidate pairing)\n",
		first.NumExpandedTuples())

	// Best-effort step 2: let the assistant refine it to convergence.
	session := iflex.NewSession(env, prog, task.Oracle(), iflex.SessionConfig{
		Strategy: iflex.SimulationStrategy,
	})
	res, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d questions over %d iterations: %d tuples\n\n",
		res.QuestionsAsked, len(res.Iterations), res.FinalTuples)

	var titles []string
	for _, tp := range res.Final.Tuples {
		if v, ok := tp.Cells[0].Singleton(); ok {
			titles = append(titles, v.NormText())
		}
	}
	sort.Strings(titles)
	fmt.Println("books cheaper at Amazon:")
	for _, t := range titles {
		fmt.Println("  " + t)
	}

	truth := task.Truth(c)
	fmt.Printf("\nground truth size: %d; result covers it: %v\n",
		len(truth), covers(titles, truth))
}

func covers(titles []string, truth map[string]bool) bool {
	have := map[string]bool{}
	for _, t := range titles {
		have[t] = true
	}
	for k := range truth {
		if !have[k] {
			return false
		}
	}
	return true
}
