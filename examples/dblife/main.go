// DBLife: extraction over heterogeneous Web pages (Section 6.3 of the
// paper) using the "higher-level" features — section labels
// (prec-label-contains), lists, and titles.
//
// The program finds (panelist, conference) pairs across a mixed crawl of
// conference homepages, personal homepages, and call-for-papers noise.
//
// Run with: go run ./examples/dblife
package main

import (
	"fmt"
	"log"

	"iflex"
)

var pages = []string{
	`<title>SIGMOD 2008 - International Conference on Management of Data</title>
<h2>Panel Sessions</h2>
<ul><li>Alice Anderson</li><li>Robert Baxter</li></ul>
<h2>Organizing Committee</h2>
<ul><li>Program chair: <b>Carol Castillo</b></li></ul>`,
	`<title>VLDB 2007 - International Conference on Very Large Data Bases</title>
<h2>Panel Sessions</h2>
<ul><li>David Donovan</li></ul>
<h2>Local Information</h2><p>Held in Vienna.</p>`,
	`<title>Homepage of Elena Eastwood</title>
<p>I work on data integration.</p>
<h2>Research Projects</h2><ul><li><i>Cimple</i></li></ul>`,
	`<title>Call for Papers</title>
<p>Submissions on query optimization are welcome. Contact Frank Ferreira.</p>`,
}

// Panel task program (Table 6): both IE predicates start empty; the
// constraints below are what §6.3 shows the developer adding.
const program = `
onPanel(d, x, <y>) :- docs(d), extractPanelists(d, x), extractConference(d, y).
Q(x, y) :- onPanel(d, x, y).
extractPanelists(d, x) :- from(d, x),
                          prec_label_contains(x, "panel"),
                          prec_label_max_dist(x, 700),
                          in-list(x) = distinct-yes.
extractConference(d, y) :- from(d, y), in-title(y) = yes,
                           starts_with(y, "[A-Z][A-Z]+"),
                           ends_with(y, "19\\d\\d|20\\d\\d"),
                           max_length(y, 12).
`

func main() {
	env := iflex.NewEnv()
	var docs []*iflex.Document
	for i, src := range pages {
		d, err := iflex.ParseDocument(fmt.Sprintf("page-%d", i), src)
		if err != nil {
			log.Fatal(err)
		}
		docs = append(docs, d)
	}
	env.AddDocTable("docs", "d", docs)

	prog, err := iflex.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	result, err := iflex.Run(prog, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("(panelist, conference) pairs:")
	for _, tp := range result.Tuples {
		fmt.Println("  " + tp.String())
	}
}
