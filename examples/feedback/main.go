// Feedback: the "more types of feedback" extension of Section 5.1.1 —
// instead of answering assistant questions one by one, the developer
// marks up a sample value per attribute ("this is a price", "this is a
// school name"), and the assistant derives the feature answers itself.
//
// Run with: go run ./examples/feedback
package main

import (
	"fmt"
	"log"
	"strings"

	"iflex"
)

var pages = []string{
	"House on Maple Street.<br>Price: <i>619000</i><br>School: <b>Basktall HS</b>",
	"Brick colonial downtown.<br>Price: <i>749000</i><br>School: <b>Lincoln High</b>",
	"Starter home, needs work.<br>Price: <i>99000</i><br>School: <b>Frost Middle</b>",
	"Lake view estate.<br>Price: <i>1250000</i><br>School: <b>Vanhise High</b>",
}

const program = `
T(x, <p>, <s>) :- pages(x), ext(x, p, s), p > 500000.
ext(x, p, s) :- from(x, p), from(x, s).
`

func main() {
	env := iflex.NewEnv()
	var docs []*iflex.Document
	for i, src := range pages {
		d, err := iflex.ParseDocument(fmt.Sprintf("h%d", i), src)
		if err != nil {
			log.Fatal(err)
		}
		docs = append(docs, d)
	}
	env.AddDocTable("pages", "x", docs)

	// The developer highlights one example value of each attribute on the
	// first page — that's the entire "annotation effort".
	find := func(d *iflex.Document, sub string) iflex.Span {
		i := strings.Index(d.Text(), sub)
		if i < 0 {
			log.Fatalf("example %q not found", sub)
		}
		return d.Span(i, i+len(sub))
	}
	oracle := iflex.ExampleOracle(env, map[iflex.AttrRef][]iflex.Span{
		{Pred: "ext", Var: "p"}: {find(docs[0], "619000")},
		{Pred: "ext", Var: "s"}: {find(docs[0], "Basktall HS")},
	})

	prog := iflex.MustParseProgram(program)
	session := iflex.NewSession(env, prog, oracle, iflex.SessionConfig{
		Strategy: iflex.SimulationStrategy,
	})
	res, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v after %d questions, all answered from 2 marked examples\n\n",
		res.Converged, res.QuestionsAsked)
	fmt.Println("houses above $500,000:")
	for _, tp := range res.Final.Tuples {
		fmt.Println("  " + tp.String())
	}
	fmt.Println("\nderived program:")
	fmt.Println(session.Program())
}
