// Movies: a three-way similarity join driven by the next-effort assistant
// (task T3 of the paper — titles that appear on all three top-movie lists).
//
// The developer writes only the skeleton program; a ground-truth-backed
// oracle plays the developer answering the assistant's questions ("is
// ti.t1 bold-font?"), and the session refines the program until the
// convergence monitor fires.
//
// Run with: go run ./examples/movies
package main

import (
	"fmt"
	"log"

	"iflex"
)

// Three small top-movie lists with overlapping titles, formatted the way
// each "site" formats them: IMDB and Ebert bold their titles, Prasanna's
// page is plain text with a label.
var (
	imdb = []string{
		"<li>Rank: 1<br><b>The Godfather</b><br>Year: 1972<br>Votes: 455000</li>",
		"<li>Rank: 2<br><b>Casablanca</b><br>Year: 1942<br>Votes: 301000</li>",
		"<li>Rank: 3<br><b>Citizen Kane</b><br>Year: 1941<br>Votes: 155000</li>",
		"<li>Rank: 4<br><b>Vertigo</b><br>Year: 1958<br>Votes: 98000</li>",
	}
	ebert = []string{
		"<li><b>Casablanca</b><br>Made in: 1942</li>",
		"<li><b>The Godfather</b><br>Made in: 1972</li>",
		"<li><b>La Dolce Vita</b><br>Made in: 1960</li>",
	}
	prasanna = []string{
		"<li>Movie: The Godfather<br>Year: 1972</li>",
		"<li>Movie: Vertigo<br>Year: 1958</li>",
		"<li>Movie: Casablanca<br>Year: 1942</li>",
		"<li>Movie: Rashomon<br>Year: 1950</li>",
	}
)

const program = `
ti(x, <t1>) :- IMDB(x), extractIMDBTitle(x, t1).
te(y, <t2>) :- Ebert(y), extractEbertTitle(y, t2).
tp(z, <t3>) :- Prasanna(z), extractPrasannaTitle(z, t3).
Q(t1) :- ti(x, t1), te(y, t2), tp(z, t3), similar(t1, t2), similar(t2, t3).
extractIMDBTitle(x, t) :- from(x, t).
extractEbertTitle(y, t) :- from(y, t).
extractPrasannaTitle(z, t) :- from(z, t).
`

func main() {
	env := iflex.NewEnv()
	env.AddDocTable("IMDB", "x", docs("imdb", imdb))
	env.AddDocTable("Ebert", "y", docs("ebert", ebert))
	env.AddDocTable("Prasanna", "z", docs("prasanna", prasanna))

	prog, err := iflex.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}

	// The simulated developer: what each title looks like on each site.
	oracle := iflex.AnswersOracle(map[string]map[string]string{
		"extractIMDBTitle.t": {
			"bold-font": "distinct-yes", "in-list": "yes", "numeric": "no",
			"italic-font": "no", "underlined": "no", "hyperlinked": "no",
		},
		"extractEbertTitle.t": {
			"bold-font": "distinct-yes", "in-list": "yes", "numeric": "no",
			"italic-font": "no", "underlined": "no", "hyperlinked": "no",
		},
		"extractPrasannaTitle.t": {
			"bold-font": "no", "in-list": "yes", "numeric": "no",
			"preceded-by": "Movie:", "max-tokens": "4",
		},
	})

	session := iflex.NewSession(env, prog, oracle, iflex.SessionConfig{
		Strategy: iflex.SimulationStrategy,
	})
	res, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged=%v after %d iterations and %d questions\n",
		res.Converged, len(res.Iterations), res.QuestionsAsked)
	for _, it := range res.Iterations {
		fmt.Printf("  iteration %d (%s): %d tuples", it.N, it.Mode, it.Tuples)
		for _, qa := range it.Questions {
			ans := qa.Answer.Value
			if !qa.Answer.Known {
				ans = "I do not know"
			}
			fmt.Printf("  [%s -> %s]", qa.Question, ans)
		}
		fmt.Println()
	}
	fmt.Println("\ntitles on all three lists:")
	for _, tp := range res.Final.Tuples {
		fmt.Println("  " + tp.String())
	}
}

func docs(prefix string, pages []string) []*iflex.Document {
	var out []*iflex.Document
	for i, src := range pages {
		d, err := iflex.ParseDocument(fmt.Sprintf("%s-%d", prefix, i), src)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}
