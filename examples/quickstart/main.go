// Quickstart: the paper's running example (Example 1.1 / Figures 1-3).
//
// A developer wants houses priced above $500,000 whose high school appears
// on a top-schools list. Instead of writing precise extractors, they write
// an approximate Alog program, run it immediately, inspect the result, and
// refine it with domain constraints until it is precise enough.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"iflex"
)

var housePages = map[string]string{
	"x1": `Cozy house on quiet street.<br>
5146 Windsor Ave., Champaign<br>
Sqft: 2750<br>
Price: 351000<br>
High school: Vanhise High`,
	"x2": `Amazing house in great location.<br>
3112 Stonecreek Blvd., Cherry Hills<br>
Sqft: 4700<br>
Price: 619000<br>
High school: Basktall HS`,
	"x3": `Classic brick colonial.<br>
77 Oak Lane, Lincoln Park<br>
Sqft: 5200<br>
Price: 749000<br>
High school: Lincoln High`,
}

var schoolPages = map[string]string{
	"y1": `<title>Top High Schools (page 1)</title>
<ul><li><b>Basktall</b>, Cherry Hills</li>
<li><b>Franklin</b>, Robeson</li>
<li><b>Vanhise</b>, Champaign</li></ul>`,
	"y2": `<title>Top High Schools (page 2)</title>
<ul><li><b>Lincoln</b>, Lincoln Park</li>
<li><b>Hoover</b>, Akron</li></ul>`,
}

// The initial approximate program: Figure 2 of the paper. The description
// rules say only that price and area are numeric and schools are bold.
const program = `
houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
schools(s)? :- schoolPages(y), extractSchools(y, s).
Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                 approxMatch(h, s).
extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                             numeric(p) = yes, numeric(a) = yes.
extractSchools(y, s) :- from(y, s), bold-font(s) = yes.
`

func main() {
	env := iflex.NewEnv()
	env.AddDocTable("housePages", "x", parseAll(housePages))
	env.AddDocTable("schoolPages", "y", parseAll(schoolPages))

	prog, err := iflex.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}

	// Iteration 1: run the approximate program as-is.
	result, err := iflex.Run(prog, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== iteration 1: initial approximate program ==")
	show(result)

	// Iteration 2: the developer knows the price is labelled "Price:".
	must(prog.AddConstraint(iflex.AttrRef{Pred: "extractHouses", Var: "p"},
		"preceded-by", "Price:"))
	must(prog.AddConstraint(iflex.AttrRef{Pred: "extractHouses", Var: "a"},
		"preceded-by", "Sqft:"))
	result, err = iflex.Run(prog, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== iteration 2: price and area pinned by their labels ==")
	show(result)

	// Iteration 3: the school is labelled too.
	must(prog.AddConstraint(iflex.AttrRef{Pred: "extractHouses", Var: "h"},
		"preceded-by", "High school:"))
	result, err = iflex.Run(prog, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== iteration 3: precise enough to stop ==")
	show(result)
	fmt.Println("refined program:")
	fmt.Println(prog)
}

func parseAll(pages map[string]string) []*iflex.Document {
	var ids []string
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var docs []*iflex.Document
	for _, id := range ids {
		d, err := iflex.ParseDocument(id, pages[id])
		if err != nil {
			log.Fatal(err)
		}
		docs = append(docs, d)
	}
	return docs
}

func show(t *iflex.Table) {
	fmt.Printf("%d compact tuples (%d expanded):\n", len(t.Tuples), t.NumExpandedTuples())
	for _, tp := range t.Tuples {
		fmt.Println("  " + tp.String())
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
