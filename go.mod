module iflex

go 1.22
