// Package iflex is a best-effort information extraction system, a from-
// scratch reproduction of "Toward Best-Effort Information Extraction"
// (Shen, DeRose, McCann, Doan, Ramakrishnan — SIGMOD 2008).
//
// Instead of writing precise procedural extractors up front, a developer
// writes an *approximate* program in Alog — a Datalog variant with
// possible-worlds annotations — runs it immediately, and refines it
// iteratively:
//
//	env := iflex.NewEnv()
//	env.AddDocTable("housePages", "x", docs)
//	prog, _ := iflex.ParseProgram(`
//	    houses(x, <p>) :- housePages(x), extractPrice(x, p).
//	    Q(x, p) :- houses(x, p), p > 500000.
//	    extractPrice(x, p) :- from(x, p), numeric(p) = yes.
//	`)
//	result, _ := iflex.Run(prog, env)       // an approximate superset
//	// ... examine, then refine:
//	prog.AddConstraint(iflex.AttrRef{Pred: "extractPrice", Var: "p"},
//	    "preceded-by", "Price:")
//	result, _ = iflex.Run(prog, env)        // narrower
//
// The refinement loop can be driven automatically by the next-effort
// assistant (NewSession), which picks the most useful question to ask
// ("is price in bold font?"), applies the answer as a domain constraint,
// and detects convergence.
//
// The package is a thin facade; the implementation lives in internal
// packages: alog (language), compact (approximate data model), engine
// (approximate query processor), assistant (next-effort assistant),
// feature (Verify/Refine text features), markup (page parsing).
package iflex

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/compact"
	"iflex/internal/engine"
	"iflex/internal/feature"
	"iflex/internal/markup"
	"iflex/internal/store"
	"iflex/internal/text"
)

// Re-exported core types. See the internal packages for full method
// documentation.
type (
	// Program is a parsed Alog program.
	Program = alog.Program
	// AttrRef names an extraction attribute (description-rule head variable).
	AttrRef = alog.AttrRef
	// Env binds extensional tables, p-functions, procedures and features.
	Env = engine.Env
	// Plan is a compiled execution plan over compact tables.
	Plan = engine.Plan
	// Context carries the reuse cache and subset filter across executions.
	Context = engine.Context
	// Table is a compact table (Section 3 of the paper).
	Table = compact.Table
	// Degraded reports best-effort degradation: deadline cuts (which
	// documents went unprocessed) and per-document quarantine. Attached
	// to result tables via Table.Degraded and SessionResult.Degraded.
	Degraded = compact.Degraded
	// QuarantineRecord names one quarantined document and why.
	QuarantineRecord = compact.QuarantineRecord
	// Document is a parsed page: text plus style marks.
	Document = text.Document
	// Span is a byte range of a document.
	Span = text.Span
	// Session drives the iterate-execute-refine loop with the assistant.
	Session = assistant.Session
	// SessionConfig tunes a session (strategy, convergence window, subset,
	// Workers pool size — results are byte-identical across worker counts).
	SessionConfig = assistant.Config
	// SessionResult is the outcome of a session run.
	SessionResult = assistant.Result
	// Question is a next-effort assistant question.
	Question = assistant.Question
	// Answer is a developer answer to a question.
	Answer = assistant.Answer
	// Oracle answers assistant questions.
	Oracle = assistant.Oracle
	// Feature is a pluggable text feature with Verify/Refine procedures.
	Feature = feature.Feature
	// Strategy selects the assistant's next questions.
	Strategy = assistant.Strategy
)

// StrategyByName resolves "seq" or "sim" to a Strategy.
func StrategyByName(name string) (Strategy, error) { return assistant.ByName(name) }

// ExplicitZero marks a SessionConfig field (Alpha, SubsetFraction) as a
// literal zero rather than "use the default".
const ExplicitZero = assistant.ExplicitZero

// Strategies for the next-effort assistant (Section 5.1).
var (
	// SequentialStrategy asks questions in a predefined importance order.
	SequentialStrategy = assistant.Sequential{}
	// SimulationStrategy simulates each candidate question and asks the one
	// with the smallest expected result size.
	SimulationStrategy = assistant.Simulation{}
)

// NewEnv returns an environment with the built-in feature library and the
// default similar/approxMatch p-functions.
func NewEnv() *Env { return engine.NewEnv() }

// ParseProgram parses Alog source (see the package example and
// internal/alog for the grammar).
func ParseProgram(src string) (*Program, error) { return alog.Parse(src) }

// MustParseProgram parses Alog source and panics on error.
func MustParseProgram(src string) *Program { return alog.MustParse(src) }

// Compile validates, unfolds and compiles a program against an environment.
func Compile(prog *Program, env *Env) (*Plan, error) { return engine.Compile(prog, env) }

// Run compiles and executes a program in a fresh context, returning the
// approximate result as a compact table (superset semantics: the set of
// possible relations it represents includes every relation the program
// defines).
func Run(prog *Program, env *Env) (*Table, error) { return engine.Run(prog, env) }

// NewContext returns an execution context whose reuse cache persists
// across iterations (Section 5.2). The context is safe for concurrent
// use: its cache deduplicates in-flight evaluations, and setting Workers
// (0 = one per CPU, 1 = serial) bounds the evaluation worker pool.
func NewContext(env *Env) *Context { return engine.NewContext(env) }

// NewSession prepares an assistant-driven refinement session.
func NewSession(env *Env, prog *Program, oracle Oracle, cfg SessionConfig) *Session {
	return assistant.NewSession(env, prog, oracle, cfg)
}

// ParseDocument parses one page of markup (a small HTML subset: b, i, u,
// a, li, title, h1-h3, p, div, br) into a Document.
func ParseDocument(id, src string) (*Document, error) { return markup.Parse(id, src) }

// LoadDocuments parses every *.html file under dir (sorted by name) into
// documents whose IDs are the file names.
func LoadDocuments(dir string) ([]*Document, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("iflex: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".html") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var docs []*Document
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("iflex: reading %s: %w", name, err)
		}
		d, err := markup.Parse(name, string(raw))
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	return docs, nil
}

// DocStore is a sharded, file-backed document store with a persistent
// inverted token index, built by iflex-corpus -store (or store.Create).
type DocStore = store.DiskStore

// OpenStore opens a document store for querying. residentBudget caps the
// estimated bytes of materialized page content kept in memory (0 =
// unlimited); pages beyond it are released and re-read on next touch.
// Bind the store's pages with env.AddDocTable(pred, col, s.Docs()) and,
// to serve token prefilters and join blocking from the persistent index
// instead of tokenizing page text at query time, set env.DocIndex = s
// and env.Postings = s (results are byte-identical either way).
func OpenStore(dir string, residentBudget int64) (*DocStore, error) {
	return store.Open(dir, store.OpenOptions{ResidentBudget: residentBudget})
}

// InteractiveOracle adapts a callback (e.g. a terminal prompt) into an
// Oracle. Return ok=false for "I do not know".
type InteractiveOracle func(q Question) (value string, ok bool)

// Answer implements Oracle.
func (f InteractiveOracle) Answer(q Question) Answer {
	v, ok := f(q)
	if !ok {
		return assistant.DontKnow()
	}
	return assistant.Know(v)
}

// AnswersOracle builds a fixed-answer oracle from attribute-keyed feature
// answers: map["extractPrice.p"]["bold-font"] = "yes". Questions without
// entries are answered "I do not know".
func AnswersOracle(answers map[string]map[string]string) Oracle {
	return assistant.NewMapOracle(answers)
}

// ExampleOracle answers assistant questions from developer-marked sample
// values: instead of answering "is price bold?" question by question, the
// developer highlights one or more example values per attribute and the
// oracle derives the feature answers by verification (the "more types of
// feedback" extension of Section 5.1.1).
func ExampleOracle(env *Env, examples map[AttrRef][]Span) Oracle {
	return assistant.NewExampleOracle(env.Features, examples)
}
