package iflex_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iflex"
)

func apiEnv(t *testing.T) *iflex.Env {
	t.Helper()
	env := iflex.NewEnv()
	pages := []string{
		"Item A<br>Price: <b>120</b>",
		"Item B<br>Price: <b>80</b>",
		"Item C<br>Price: <b>300</b>",
	}
	var docs []*iflex.Document
	for i, src := range pages {
		d, err := iflex.ParseDocument(string(rune('a'+i)), src)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	env.AddDocTable("pages", "x", docs)
	return env
}

const apiProg = `
items(x, <p>) :- pages(x), extractPrice(x, p).
Q(x, p) :- items(x, p), p > 100.
extractPrice(x, p) :- from(x, p), numeric(p) = yes.
`

func TestPublicRunAndRefine(t *testing.T) {
	env := apiEnv(t)
	prog, err := iflex.ParseProgram(apiProg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := iflex.Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 { // 120 and 300 qualify
		t.Fatalf("result:\n%s", res)
	}
	// Refine: price is bold.
	if err := prog.AddConstraint(iflex.AttrRef{Pred: "extractPrice", Var: "p"}, "bold-font", "distinct-yes"); err != nil {
		t.Fatal(err)
	}
	res, err = iflex.Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res.Tuples {
		if _, ok := tp.Cells[1].Singleton(); !ok {
			t.Errorf("price not pinned after refinement: %s", tp)
		}
	}
}

func TestPublicCompileAndContext(t *testing.T) {
	env := apiEnv(t)
	prog := iflex.MustParseProgram(apiProg)
	plan, err := iflex.Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := iflex.NewContext(env)
	if _, err := plan.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	// Second execution through the same context hits the cache.
	if _, err := plan.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.CacheHits == 0 {
		t.Error("expected reuse cache hits")
	}
}

func TestPublicSessionWithAnswersOracle(t *testing.T) {
	env := apiEnv(t)
	prog := iflex.MustParseProgram(apiProg)
	oracle := iflex.AnswersOracle(map[string]map[string]string{
		"extractPrice.p": {
			"bold-font":   "distinct-yes",
			"preceded-by": "Price:",
		},
	})
	session := iflex.NewSession(env, prog, oracle, iflex.SessionConfig{
		Strategy: iflex.SimulationStrategy,
	})
	res, err := session.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTuples != 2 {
		t.Fatalf("final:\n%s", res.Final)
	}
}

func TestPublicInteractiveOracle(t *testing.T) {
	asked := 0
	oracle := iflex.InteractiveOracle(func(q iflex.Question) (string, bool) {
		asked++
		if strings.Contains(q.String(), "bold-font") {
			return "distinct-yes", true
		}
		return "", false
	})
	env := apiEnv(t)
	prog := iflex.MustParseProgram(apiProg)
	session := iflex.NewSession(env, prog, oracle, iflex.SessionConfig{})
	if _, err := session.Run(); err != nil {
		t.Fatal(err)
	}
	if asked == 0 {
		t.Error("interactive oracle never consulted")
	}
}

func TestLoadDocuments(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"b.html":    "<b>second</b>",
		"a.html":    "<b>first</b>",
		"skip.txt":  "not html",
		"also.html": "<i>third</i>",
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := iflex.LoadDocuments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("loaded %d docs", len(docs))
	}
	// Sorted by file name.
	if docs[0].ID() != "a.html" || docs[1].ID() != "also.html" || docs[2].ID() != "b.html" {
		t.Errorf("order: %s, %s, %s", docs[0].ID(), docs[1].ID(), docs[2].ID())
	}
	if _, err := iflex.LoadDocuments(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir should error")
	}
}

func TestStrategyByName(t *testing.T) {
	for _, name := range []string{"seq", "sim"} {
		if _, err := iflex.StrategyByName(name); err != nil {
			t.Errorf("StrategyByName(%s): %v", name, err)
		}
	}
	if _, err := iflex.StrategyByName("other"); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestParseErrorsSurface(t *testing.T) {
	if _, err := iflex.ParseProgram("not a program"); err == nil {
		t.Error("bad program should fail to parse")
	}
	// An unclosed *element* is tolerated (closed at EOF), but an
	// unterminated *tag* is an error.
	if _, err := iflex.ParseDocument("d", "hello <b world"); err == nil {
		t.Error("bad markup should fail to parse")
	}
}
