package alog

import (
	"strings"
	"testing"
)

// The Figure 2 program of the paper, in our ASCII syntax.
const figure2Src = `
// Skeleton rules (Figure 2.a / 2.c, with annotations).
houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
schools(s)? :- schoolPages(y), extractSchools(y, s).
Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                 approxMatch(h, s).

// Description rules (Figure 2.b).
extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                             numeric(p) = yes, numeric(a) = yes.
extractSchools(y, s) :- from(y, s), bold-font(s) = yes.
`

func figure2Schema() *Schema {
	return &Schema{
		Extensional: map[string][]string{
			"housePages":  {"x"},
			"schoolPages": {"y"},
		},
		Functions: map[string]bool{"approxMatch": true},
	}
}

func TestParseFigure2(t *testing.T) {
	p, err := Parse(figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 5 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	if p.Query != "Q" {
		t.Fatalf("query = %q", p.Query)
	}
	houses := p.Rules[0]
	if houses.Head.Pred != "houses" || len(houses.AnnAttrs) != 3 {
		t.Fatalf("houses rule = %+v", houses)
	}
	if !houses.Annotated("p") || houses.Annotated("x") {
		t.Error("attribute annotations wrong")
	}
	schools := p.Rules[1]
	if !schools.Exists {
		t.Error("schools should carry an existence annotation")
	}
	q := p.Rules[2]
	if len(q.Body) != 5 {
		t.Fatalf("Q body = %d literals", len(q.Body))
	}
	if q.Body[2].Kind != LitCompare || q.Body[2].Cmp.Op != OpGT {
		t.Errorf("literal 3 = %v", q.Body[2])
	}
	eh := p.Rules[3]
	if !eh.IsDescription(figure2Schema()) {
		t.Error("extractHouses should be a description rule")
	}
	last := eh.Body[len(eh.Body)-1]
	if last.Kind != LitConstraint || last.Cons.Feature != "numeric" || last.Cons.Value != "yes" {
		t.Errorf("constraint = %v", last)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"p(x) :- q(x)",                 // missing period
		"p(x :- q(x).",                 // bad head
		"p(x) :- .",                    // empty body literal
		"p(x) :- q(x), .",              // trailing comma
		"p(<x) :- q(x).",               // unclosed annotation
		"p(x) :- x !.",                 // bad operator
		`p(x) :- f(x) = .`,             // missing constraint value
		"p(x) :- q(x). trailing",       // garbage after rule
		`p(x) :- q("unterminated.`,     // bad string
		"p(x) :- numeric(x, y) = yes.", // constraint with 2 vars
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseComparisonOperators(t *testing.T) {
	p := MustParse(`T(x) :- r(x, a, b), a < 5, a <= 5, a > 1, a >= 1, a = b, a != NULL.`)
	ops := []CompareOp{OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE}
	for i, want := range ops {
		lit := p.Rules[0].Body[i+1]
		if lit.Kind != LitCompare || lit.Cmp.Op != want {
			t.Errorf("literal %d = %v, want op %s", i+1, lit, want)
		}
	}
	if p.Rules[0].Body[6].Cmp.R.Kind != TermNull {
		t.Error("NULL constant not parsed")
	}
}

func TestParseConstraintSugar(t *testing.T) {
	// Two-argument sugar stays an atom at parse time (only name resolution
	// can tell a feature from a predicate); SugarConstraint interprets it.
	p := MustParse(`e(d, x) :- from(d, x), preceded_by(x, "Price:"), max_length(x, 18).`)
	b := p.Rules[0].Body
	if b[1].Kind != LitAtom {
		t.Fatalf("sugar literal = %v", b[1])
	}
	cons, ok := SugarConstraint(b[1].Atom)
	if !ok || cons.Feature != "preceded-by" || cons.Attr != "x" || cons.Value != "Price:" {
		t.Errorf("sugar constraint = %v, %v", cons, ok)
	}
	cons, ok = SugarConstraint(b[2].Atom)
	if !ok || cons.Feature != "max-length" || cons.Value != "18" {
		t.Errorf("numeric sugar = %v, %v", cons, ok)
	}
	// Not sugar: wrong arity or argument shapes.
	if _, ok := SugarConstraint(Atom{Pred: "f", Args: []Term{Variable("x")}}); ok {
		t.Error("one-arg atom is not sugar")
	}
	if _, ok := SugarConstraint(Atom{Pred: "f", Args: []Term{Variable("x"), Variable("y")}}); ok {
		t.Error("two-var atom is not sugar")
	}
	// The sugar must validate and survive a whole-program check.
	prog := MustParse(`Q(d, x) :- pages(d), ext(d, x).
ext(d, x) :- from(d, x), preceded_by(x, "Price:").`)
	if err := Validate(prog, &Schema{Extensional: map[string][]string{"pages": {"d"}}}); err != nil {
		t.Errorf("sugar program should validate: %v", err)
	}
}

func TestParseNegativeNumberAndFloat(t *testing.T) {
	p := MustParse(`T(x) :- r(x, v), v > -42, v < 35.99.`)
	b := p.Rules[0].Body
	if b[1].Cmp.R.Num != -42 || b[2].Cmp.R.Num != 35.99 {
		t.Errorf("numbers = %v, %v", b[1].Cmp.R, b[2].Cmp.R)
	}
}

func TestParseComments(t *testing.T) {
	p := MustParse("// comment\n# another\nT(x) :- r(x). // trailing\n")
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
}

func TestRoundTripString(t *testing.T) {
	p := MustParse(figure2Src)
	re, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, p.String())
	}
	if re.String() != p.String() {
		t.Errorf("round-trip mismatch:\n%s\nvs\n%s", p.String(), re.String())
	}
}

func TestValidateFigure2(t *testing.T) {
	p := MustParse(figure2Src)
	if err := Validate(p, figure2Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateUnknownPredicate(t *testing.T) {
	p := MustParse(`Q(x) :- nowhere(x).`)
	err := Validate(p, &Schema{})
	if err == nil || !strings.Contains(err.Error(), "unknown predicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateUnsafeRule(t *testing.T) {
	// h never appears in the body: unsafe (Section 2.2.2).
	p := MustParse(`e(x, p, h) :- from(x, p), numeric(p) = yes.
Q(x, p, h) :- pages(x), e(x, p, h).`)
	err := Validate(p, &Schema{Extensional: map[string][]string{"pages": {"x"}}})
	if err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateUnboundComparison(t *testing.T) {
	p := MustParse(`Q(x) :- pages(x), y > 5.`)
	if err := Validate(p, &Schema{Extensional: map[string][]string{"pages": {"x"}}}); err == nil {
		t.Fatal("comparison over unbound variable should fail validation")
	}
}

func TestValidateAnnotationTarget(t *testing.T) {
	p := MustParse(`Q(<x>) :- pages(x).`)
	if err := Validate(p, &Schema{Extensional: map[string][]string{"pages": {"x"}}}); err != nil {
		t.Fatalf("valid annotation rejected: %v", err)
	}
}

func TestOrderBodyReordersJoins(t *testing.T) {
	// approxMatch(h, s) appears before schools(s) binds s; ordering must fix it.
	p := MustParse(`Q(x) :- houses(x, h), approxMatch(h, s), schools(s).
houses(x, h) :- pages(x), e(x, h).
schools(s) :- spages(y), e2(y, s).
e(x, h) :- from(x, h).
e2(y, s) :- from(y, s).`)
	schema := &Schema{
		Extensional: map[string][]string{"pages": {"x"}, "spages": {"y"}},
		Functions:   map[string]bool{"approxMatch": true},
	}
	q := p.RulesFor("Q")[0]
	ordered, err := OrderBody(p, schema, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ordered[1].Atom.Pred != "schools" {
		t.Errorf("ordered body = %v; approxMatch should come last", ordered)
	}
}

func TestUnfoldFigure2(t *testing.T) {
	p := MustParse(figure2Src)
	u, err := Unfold(p, figure2Schema())
	if err != nil {
		t.Fatal(err)
	}
	// Description rules are consumed; skeleton rules remain.
	if len(u.Rules) != 3 {
		t.Fatalf("unfolded rules = %d:\n%s", len(u.Rules), u)
	}
	houses := u.RulesFor("houses")[0]
	// Body: housePages(x), from(x,p), from(x,a), from(x,h), numeric(p)=yes, numeric(a)=yes.
	if len(houses.Body) != 6 {
		t.Fatalf("houses body = %v", houses.Body)
	}
	nFrom := 0
	for _, l := range houses.Body {
		if l.Kind == LitAtom && l.Atom.Pred == FromPred {
			nFrom++
		}
	}
	if nFrom != 3 {
		t.Errorf("from atoms = %d", nFrom)
	}
	// Annotations must survive unfolding.
	if len(houses.AnnAttrs) != 3 {
		t.Errorf("annotations lost: %v", houses.AnnAttrs)
	}
	if !u.RulesFor("schools")[0].Exists {
		t.Error("existence annotation lost")
	}
	// The unfolded program must still validate.
	if err := Validate(u, figure2Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestUnfoldMultipleDescriptionRules(t *testing.T) {
	p := MustParse(`
T(x, v) :- pages(x), ext(x, v).
ext(x, v) :- from(x, v), numeric(v) = yes.
ext(x, v) :- from(x, v), bold-font(v) = yes.
`)
	u, err := Unfold(p, &Schema{Extensional: map[string][]string{"pages": {"x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(u.RulesFor("T")); got != 2 {
		t.Fatalf("union unfolding produced %d rules, want 2", got)
	}
}

func TestUnfoldFreshVariables(t *testing.T) {
	// The description rule uses a local variable name that clashes with a
	// variable of the calling rule; unfolding must rename it.
	p := MustParse(`
T(x, v, s) :- pages(x), spans(s), ext(x, v).
ext(x, v) :- from(x, s), from(s, v).
`)
	u, err := Unfold(p, &Schema{Extensional: map[string][]string{"pages": {"x"}, "spans": {"s"}}})
	if err != nil {
		t.Fatal(err)
	}
	body := u.RulesFor("T")[0].Body
	for _, l := range body {
		if l.Kind == LitAtom && l.Atom.Pred == FromPred {
			if out := l.Atom.Args[1]; out.Kind == TermVar && out.Var == "s" {
				// from(x, s) must have been renamed: only the call-site v
				// may appear unrenamed as a from output.
				t.Fatalf("variable capture: %v", body)
			}
		}
	}
}

func TestUnfoldArityMismatch(t *testing.T) {
	p := MustParse(`
T(x, v) :- pages(x), ext(x, v).
ext(x, v, w) :- from(x, v), from(x, w).
`)
	if _, err := Unfold(p, nil); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestAttrsAndAddConstraint(t *testing.T) {
	p := MustParse(figure2Src)
	attrs := p.Attrs()
	if len(attrs) != 4 {
		t.Fatalf("attrs = %v", attrs)
	}
	ref := AttrRef{Pred: "extractHouses", Var: "p"}
	if p.HasConstraint(ref, "bold-font") {
		t.Error("constraint should not exist yet")
	}
	if err := p.AddConstraint(ref, "bold-font", "yes"); err != nil {
		t.Fatal(err)
	}
	if !p.HasConstraint(ref, "bold-font") {
		t.Error("constraint not recorded")
	}
	if err := p.AddConstraint(AttrRef{Pred: "nope", Var: "v"}, "numeric", "yes"); err == nil {
		t.Error("AddConstraint to missing rule should fail")
	}
	// The program must still parse/validate after refinement.
	if err := Validate(p, figure2Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MustParse(figure2Src)
	c := p.Clone()
	if err := c.AddConstraint(AttrRef{Pred: "extractSchools", Var: "s"}, "in-list", "yes"); err != nil {
		t.Fatal(err)
	}
	if p.HasConstraint(AttrRef{Pred: "extractSchools", Var: "s"}, "in-list") {
		t.Error("Clone leaked mutation to original")
	}
}

func TestClassify(t *testing.T) {
	p := MustParse(figure2Src)
	s := figure2Schema()
	cases := map[string]PredClass{
		"from":          ClassFrom,
		"housePages":    ClassExtensional,
		"approxMatch":   ClassFunction,
		"extractHouses": ClassIE,
		"houses":        ClassIntensional,
		"mystery":       ClassUnknown,
	}
	for pred, want := range cases {
		if got := Classify(p, s, pred); got != want {
			t.Errorf("Classify(%s) = %v, want %v", pred, got, want)
		}
	}
}
