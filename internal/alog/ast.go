// Package alog implements the Alog language of Section 2: an Xlog
// (Datalog-variant) extension for writing approximate IE programs.
//
// A program is a set of rules `head :- body.` where the body mixes
// ordinary predicates, p-predicates, comparisons (p > 500000), and domain
// constraints (numeric(p) = yes). Two annotations give rules
// possible-worlds semantics:
//
//	houses(x, <p>, <a>, <h>) :- ...   attribute annotations (Definition 2)
//	schools(s)? :- ...                existence annotation (Definition 1)
//
// Description rules "partially implement" an IE predicate: their bodies
// use the built-in from(x, s) predicate and domain constraints instead of
// procedural code. The parser is handwritten (lexer + recursive descent).
package alog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TermKind distinguishes the kinds of rule arguments.
type TermKind int

const (
	// TermVar is a variable, e.g. x or title1.
	TermVar TermKind = iota
	// TermStr is a quoted string constant.
	TermStr
	// TermNum is a numeric constant.
	TermNum
	// TermNull is the NULL constant (missing value).
	TermNull
)

// Term is one argument of an atom or one side of a comparison.
type Term struct {
	Kind TermKind
	Var  string
	Str  string
	Num  float64
}

// Variable returns a variable term.
func Variable(name string) Term { return Term{Kind: TermVar, Var: name} }

// StringConst returns a string-constant term.
func StringConst(s string) Term { return Term{Kind: TermStr, Str: s} }

// NumberConst returns a numeric-constant term.
func NumberConst(n float64) Term { return Term{Kind: TermNum, Num: n} }

// String renders the term in Alog source syntax.
func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return t.Var
	case TermStr:
		return strconv.Quote(t.Str)
	case TermNum:
		return strconv.FormatFloat(t.Num, 'g', -1, 64)
	case TermNull:
		return "NULL"
	}
	return "?"
}

// Atom is a predicate applied to terms: pred(arg1, ..., argN).
type Atom struct {
	Pred string
	Args []Term
}

// String renders the atom in Alog source syntax.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Vars returns the atom's variable names in argument order (with repeats).
func (a Atom) Vars() []string {
	var out []string
	for _, t := range a.Args {
		if t.Kind == TermVar {
			out = append(out, t.Var)
		}
	}
	return out
}

// SugarConstraint interprets a two-argument atom feature(var, const) as
// the domain constraint feature(var) = const (the sugar used by the
// paper's DBLife programs, e.g. prec_label_max_dist(x, 700)). Callers must
// first check that the predicate does not resolve to a real relation.
func SugarConstraint(a Atom) (Constraint, bool) {
	if len(a.Args) != 2 || a.Args[0].Kind != TermVar {
		return Constraint{}, false
	}
	switch a.Args[1].Kind {
	case TermStr, TermNum:
		return Constraint{
			Feature: CanonFeature(a.Pred),
			Attr:    a.Args[0].Var,
			Value:   termValueString(a.Args[1]),
		}, true
	default:
		return Constraint{}, false
	}
}

// CompareOp is a comparison operator.
type CompareOp string

// The comparison operators of the language.
const (
	OpLT CompareOp = "<"
	OpLE CompareOp = "<="
	OpGT CompareOp = ">"
	OpGE CompareOp = ">="
	OpEQ CompareOp = "="
	OpNE CompareOp = "!="
)

// Compare is a comparison literal, e.g. p > 500000, title1 = title2, or
// lastPage < firstPage + 5 (ROffset carries the additive constant on the
// right-hand side, the only arithmetic the language supports).
type Compare struct {
	Op      CompareOp
	L, R    Term
	ROffset float64
}

// String renders the comparison in source syntax.
func (c Compare) String() string {
	if c.ROffset != 0 {
		op := "+"
		off := c.ROffset
		if off < 0 {
			op = "-"
			off = -off
		}
		return fmt.Sprintf("%s %s %s %s %s", c.L, c.Op, c.R, op, strconv.FormatFloat(off, 'g', -1, 64))
	}
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// Constraint is a domain-constraint literal f(attr) = value
// (Section 2.2.2), e.g. numeric(p) = yes or preceded-by(h, "school:").
type Constraint struct {
	Feature string
	Attr    string
	Value   string
}

// String renders the constraint in source syntax.
func (c Constraint) String() string {
	return fmt.Sprintf("%s(%s) = %q", c.Feature, c.Attr, c.Value)
}

// LitKind distinguishes the three body-literal kinds.
type LitKind int

const (
	// LitAtom is a predicate atom (extensional, intensional, p-predicate,
	// IE predicate, or the built-in from).
	LitAtom LitKind = iota
	// LitCompare is a comparison.
	LitCompare
	// LitConstraint is a domain constraint.
	LitConstraint
)

// Literal is one conjunct of a rule body.
type Literal struct {
	Kind LitKind
	Atom Atom
	Cmp  Compare
	Cons Constraint
}

// String renders the literal in source syntax.
func (l Literal) String() string {
	switch l.Kind {
	case LitAtom:
		return l.Atom.String()
	case LitCompare:
		return l.Cmp.String()
	default:
		return l.Cons.String()
	}
}

// Rule is one Alog rule with its annotations: Exists is the head '?'
// (Definition 1) and AnnAttrs lists head variables written <v>
// (Definition 2).
type Rule struct {
	Head     Atom
	Exists   bool
	AnnAttrs []string
	Body     []Literal
}

// Annotated reports whether head variable v carries an attribute annotation.
func (r *Rule) Annotated(v string) bool {
	for _, a := range r.AnnAttrs {
		if a == v {
			return true
		}
	}
	return false
}

// String renders the rule in Alog source syntax (with trailing period).
func (r *Rule) String() string {
	headArgs := make([]string, len(r.Head.Args))
	for i, t := range r.Head.Args {
		s := t.String()
		if t.Kind == TermVar && r.Annotated(t.Var) {
			s = "<" + s + ">"
		}
		headArgs[i] = s
	}
	head := r.Head.Pred + "(" + strings.Join(headArgs, ", ") + ")"
	if r.Exists {
		head += "?"
	}
	body := make([]string, len(r.Body))
	for i, l := range r.Body {
		body[i] = l.String()
	}
	return head + " :- " + strings.Join(body, ", ") + "."
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	cp := &Rule{Head: cloneAtom(r.Head), Exists: r.Exists}
	cp.AnnAttrs = append([]string(nil), r.AnnAttrs...)
	cp.Body = make([]Literal, len(r.Body))
	for i, l := range r.Body {
		cp.Body[i] = cloneLiteral(l)
	}
	return cp
}

func cloneAtom(a Atom) Atom {
	return Atom{Pred: a.Pred, Args: append([]Term(nil), a.Args...)}
}

func cloneLiteral(l Literal) Literal {
	if l.Kind == LitAtom {
		l.Atom = cloneAtom(l.Atom)
	}
	return l
}

// UsesFrom reports whether the rule's body contains the built-in from
// predicate.
func (r *Rule) UsesFrom() bool {
	for _, l := range r.Body {
		if l.Kind == LitAtom && l.Atom.Pred == FromPred {
			return true
		}
	}
	return false
}

// IsDescription reports whether the rule is a predicate description rule
// (Section 2.2.2): it uses from and *requires input* — some from (or
// procedure) input variable is not produced by any other body literal, so
// the rule only defines a relation once its head inputs are bound. Rules
// produced by unfolding use from too, but their inputs are bound by
// extensional atoms (e.g. housePages(x)), so they are not description
// rules. The schema may be nil.
func (r *Rule) IsDescription(s *Schema) bool {
	return r.UsesFrom() && requiresInput(r, s)
}

// requiresInput reports whether some from/procedure input variable of the
// body is not produced within the body itself.
func requiresInput(r *Rule, s *Schema) bool {
	produced := map[string]bool{}
	for _, l := range r.Body {
		if l.Kind != LitAtom {
			continue
		}
		a := l.Atom
		switch {
		case a.Pred == FromPred:
			if len(a.Args) == 2 && a.Args[1].Kind == TermVar {
				produced[a.Args[1].Var] = true
			}
		case s != nil && s.Functions[a.Pred]:
			// boolean p-functions produce nothing
		case s != nil && s.Procedures[a.Pred]:
			for _, t := range a.Args[1:] {
				if t.Kind == TermVar {
					produced[t.Var] = true
				}
			}
		default:
			// extensional or intensional atoms bind all their variables
			for _, t := range a.Args {
				if t.Kind == TermVar {
					produced[t.Var] = true
				}
			}
		}
	}
	for _, l := range r.Body {
		if l.Kind != LitAtom {
			continue
		}
		a := l.Atom
		needsInput := a.Pred == FromPred || (s != nil && s.Procedures[a.Pred])
		if needsInput && len(a.Args) > 0 && a.Args[0].Kind == TermVar && !produced[a.Args[0].Var] {
			return true
		}
	}
	return false
}

// FromPred is the built-in predicate from(x, s) that conceptually extracts
// every sub-span s of x (Section 2.2.2).
const FromPred = "from"

// Program is a parsed Alog program. Query names the head predicate whose
// relation is the program result (defaults to "Q" or, failing that, the
// head of the last rule).
type Program struct {
	Rules []*Rule
	Query string
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	cp := &Program{Query: p.Query, Rules: make([]*Rule, len(p.Rules))}
	for i, r := range p.Rules {
		cp.Rules[i] = r.Clone()
	}
	return cp
}

// String renders the whole program, one rule per line.
func (p *Program) String() string {
	lines := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		lines[i] = r.String()
	}
	return strings.Join(lines, "\n")
}

// RulesFor returns the rules whose head predicate is pred, in order.
func (p *Program) RulesFor(pred string) []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// HeadPreds returns the set of head predicate names, sorted.
func (p *Program) HeadPreds() []string {
	seen := map[string]bool{}
	for _, r := range p.Rules {
		seen[r.Head.Pred] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DescriptionRules returns the rules that describe IE predicates, keyed by
// head predicate name. The schema may be nil.
func (p *Program) DescriptionRules(s *Schema) map[string][]*Rule {
	out := map[string][]*Rule{}
	for _, r := range p.Rules {
		if r.IsDescription(s) {
			out[r.Head.Pred] = append(out[r.Head.Pred], r)
		}
	}
	return out
}

// AttrRef identifies an extraction attribute: a head variable of a
// description rule (e.g. pred "extractHouses", var "p"). This is what the
// next-effort assistant asks questions about.
type AttrRef struct {
	Pred string
	Var  string
}

// String renders the reference as pred.var.
func (a AttrRef) String() string { return a.Pred + "." + a.Var }

// Attrs returns every extraction attribute of the program: the non-input
// head variables of each description rule (those that appear as from
// outputs or in constraints).
func (p *Program) Attrs() []AttrRef {
	var out []AttrRef
	seen := map[AttrRef]bool{}
	for _, r := range p.Rules {
		if !r.IsDescription(nil) {
			continue
		}
		// Outputs of from atoms in the body.
		outputs := map[string]bool{}
		for _, l := range r.Body {
			if l.Kind == LitAtom && l.Atom.Pred == FromPred && len(l.Atom.Args) == 2 {
				if t := l.Atom.Args[1]; t.Kind == TermVar {
					outputs[t.Var] = true
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.Kind == TermVar && outputs[t.Var] {
				ref := AttrRef{Pred: r.Head.Pred, Var: t.Var}
				if !seen[ref] {
					seen[ref] = true
					out = append(out, ref)
				}
			}
		}
	}
	return out
}

// AddConstraint appends the domain constraint f(attr.Var) = value to every
// description rule of attr.Pred that outputs attr.Var. It returns an error
// if no such rule exists. This is the refinement step the next-effort
// assistant performs when the developer answers a question (Section 5.1).
func (p *Program) AddConstraint(attr AttrRef, featureName, value string) error {
	added := false
	for _, r := range p.Rules {
		if r.Head.Pred != attr.Pred || !r.IsDescription(nil) {
			continue
		}
		hasVar := false
		for _, t := range r.Head.Args {
			if t.Kind == TermVar && t.Var == attr.Var {
				hasVar = true
				break
			}
		}
		if !hasVar {
			continue
		}
		r.Body = append(r.Body, Literal{
			Kind: LitConstraint,
			Cons: Constraint{Feature: featureName, Attr: attr.Var, Value: value},
		})
		added = true
	}
	if !added {
		return fmt.Errorf("alog: no description rule for attribute %s", attr)
	}
	return nil
}

// HasConstraint reports whether some description rule of attr.Pred already
// constrains attr.Var with the given feature.
func (p *Program) HasConstraint(attr AttrRef, featureName string) bool {
	for _, r := range p.Rules {
		if r.Head.Pred != attr.Pred {
			continue
		}
		for _, l := range r.Body {
			if l.Kind == LitConstraint && l.Cons.Attr == attr.Var && l.Cons.Feature == featureName {
				return true
			}
		}
	}
	return false
}
