package alog

import (
	"testing"
	"testing/quick"
)

// Property: Parse never panics on arbitrary input.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

// Property: successfully parsed programs round-trip through String.
func TestQuickRoundTripTaskPrograms(t *testing.T) {
	srcs := []string{
		figure2Src,
		`T5(title) :- VLDB(x), extractVLDB(x, title, fp, lp), lp < fp + 5.
extractVLDB(x, title, fp, lp) :- from(x, title), from(x, fp), from(x, lp).`,
		`Q(t) :- A(x), e(x, t), t != NULL, similar(t, t).
e(x, t) :- from(x, t), preceded_by(t, "Label:").`,
	}
	for _, src := range srcs {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", p.String(), err)
		}
		if p.String() != q.String() {
			t.Errorf("round trip changed:\n%s\nvs\n%s", p, q)
		}
	}
}
