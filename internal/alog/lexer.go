package alog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokPeriod
	tokImplies // :-
	tokQMark   // ?
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
	tokPlus
)

var tokNames = map[tokKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokNumber: "number",
	tokString: "string", tokLParen: "'('", tokRParen: "')'", tokComma: "','",
	tokPeriod: "'.'", tokImplies: "':-'", tokQMark: "'?'", tokLT: "'<'",
	tokLE: "'<='", tokGT: "'>'", tokGE: "'>='", tokEQ: "'='", tokNE: "'!='",
	tokPlus: "'+'",
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	num  float64
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokIdent || t.kind == tokNumber || t.kind == tokString {
		return fmt.Sprintf("%s %q", tokNames[t.kind], t.text)
	}
	return tokNames[t.kind]
}

// lexer tokenises Alog source. Comments run from "//" or "#" to newline.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Error is a parse or lex error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("alog: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#' || (c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/'):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	t := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		t.kind = tokEOF
		return t, nil
	}
	c := l.peek()
	switch {
	case c == '(':
		l.advance()
		t.kind = tokLParen
	case c == ')':
		l.advance()
		t.kind = tokRParen
	case c == ',':
		l.advance()
		t.kind = tokComma
	case c == '.':
		l.advance()
		t.kind = tokPeriod
	case c == '?':
		l.advance()
		t.kind = tokQMark
	case c == '+':
		l.advance()
		t.kind = tokPlus
	case c == ':':
		l.advance()
		if l.peek() != '-' {
			return t, l.errf("expected '-' after ':'")
		}
		l.advance()
		t.kind = tokImplies
	case c == '<':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			t.kind = tokLE
		} else {
			t.kind = tokLT
		}
	case c == '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			t.kind = tokGE
		} else {
			t.kind = tokGT
		}
	case c == '=':
		l.advance()
		t.kind = tokEQ
	case c == '!':
		l.advance()
		if l.peek() != '=' {
			return t, l.errf("expected '=' after '!'")
		}
		l.advance()
		t.kind = tokNE
	case c == '"':
		return l.lexString(t)
	case c == '-' || unicode.IsDigit(rune(c)):
		return l.lexNumber(t)
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.advance()
		}
		t.kind = tokIdent
		t.text = l.src[start:l.pos]
	default:
		return t, l.errf("unexpected character %q", string(c))
	}
	return t, nil
}

func (l *lexer) lexString(t token) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return t, l.errf("unterminated string")
		}
		c := l.advance()
		switch c {
		case '"':
			t.kind = tokString
			t.text = b.String()
			return t, nil
		case '\\':
			if l.pos >= len(l.src) {
				return t, l.errf("unterminated escape in string")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(e)
			default:
				return t, l.errf("unknown escape \\%s", string(e))
			}
		default:
			b.WriteByte(c)
		}
	}
}

func (l *lexer) lexNumber(t token) (token, error) {
	start := l.pos
	if l.peek() == '-' {
		l.advance()
		if !unicode.IsDigit(rune(l.peek())) {
			return t, l.errf("expected digit after '-'")
		}
	}
	dots := 0
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			// A '.' followed by a digit is a decimal point; otherwise it is
			// the rule terminator.
			if l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) && dots == 0 {
				dots++
				l.advance()
				continue
			}
			break
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.advance()
	}
	txt := l.src[start:l.pos]
	n, err := strconv.ParseFloat(txt, 64)
	if err != nil {
		return t, l.errf("bad number %q", txt)
	}
	t.kind = tokNumber
	t.text = txt
	t.num = n
	return t, nil
}
