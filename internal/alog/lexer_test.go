package alog

import (
	"testing"
)

// lexAll tokenises src fully, failing the test on error.
func lexAll(t *testing.T, src string) []token {
	t.Helper()
	lx := newLexer(src)
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func kinds(toks []token) []tokKind {
	out := make([]tokKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexerTokenKinds(t *testing.T) {
	toks := lexAll(t, `p(x, 42) :- q(x), x >= 1.5, y != "str", z < w + 3.`)
	want := []tokKind{
		tokIdent, tokLParen, tokIdent, tokComma, tokNumber, tokRParen,
		tokImplies, tokIdent, tokLParen, tokIdent, tokRParen, tokComma,
		tokIdent, tokGE, tokNumber, tokComma,
		tokIdent, tokNE, tokString, tokComma,
		tokIdent, tokLT, tokIdent, tokPlus, tokNumber, tokPeriod,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks := lexAll(t, "p(x)\n  :- q.")
	// ":-" starts at line 2, column 3.
	var implies token
	for _, tok := range toks {
		if tok.kind == tokImplies {
			implies = tok
		}
	}
	if implies.line != 2 || implies.col != 3 {
		t.Errorf(":- at %d:%d, want 2:3", implies.line, implies.col)
	}
}

func TestLexerStringsAndEscapes(t *testing.T) {
	toks := lexAll(t, `p(x) :- f(x) = "a\"b\\c\nd\te".`)
	var str token
	for _, tok := range toks {
		if tok.kind == tokString {
			str = tok
		}
	}
	if str.text != "a\"b\\c\nd\te" {
		t.Errorf("string = %q", str.text)
	}
}

func TestLexerNumbers(t *testing.T) {
	cases := map[string]float64{
		"0":      0,
		"42":     42,
		"-7":     -7,
		"3.5":    3.5,
		"500000": 500000,
	}
	for src, want := range cases {
		toks := lexAll(t, "p(x) :- x > "+src+".")
		var num token
		for _, tok := range toks {
			if tok.kind == tokNumber {
				num = tok
			}
		}
		if num.num != want {
			t.Errorf("number %q = %v", src, num.num)
		}
	}
}

// A number followed by the rule terminator must not eat the period.
func TestLexerNumberBeforePeriod(t *testing.T) {
	toks := lexAll(t, "p(x) :- x > 42.")
	last := toks[len(toks)-1]
	if last.kind != tokPeriod {
		t.Errorf("last token = %v, want period", last)
	}
}

func TestLexerHyphenatedIdent(t *testing.T) {
	toks := lexAll(t, "p(x) :- bold-font(x) = yes.")
	found := false
	for _, tok := range toks {
		if tok.kind == tokIdent && tok.text == "bold-font" {
			found = true
		}
	}
	if !found {
		t.Error("hyphenated identifier not lexed as one token")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		"p(x) :- x ! y.",     // bare !
		"p(x) : q(x).",       // : without -
		`p(x) :- f(x)="a.`,   // unterminated string
		`p(x) :- f(x)="\z".`, // bad escape
		"p(x) @ q.",          // stray char
		"p(x) :- x > -.",     // dangling minus
	} {
		lx := newLexer(src)
		var err error
		for {
			var tok token
			tok, err = lx.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lexing %q should fail", src)
		}
	}
}

func TestLexerCommentsToEOL(t *testing.T) {
	toks := lexAll(t, "# full line\np(x) :- q(x). // trailing\n# another")
	if len(toks) == 0 || toks[len(toks)-1].kind != tokPeriod {
		t.Errorf("comments not skipped: %v", toks)
	}
}

func TestErrorMessageFormat(t *testing.T) {
	_, err := Parse("p(x :- q.")
	if err == nil {
		t.Fatal("expected parse error")
	}
	var perr *Error
	if !asError(err, &perr) {
		t.Fatalf("error type = %T", err)
	}
	if perr.Line != 1 || perr.Col == 0 {
		t.Errorf("error position = %d:%d", perr.Line, perr.Col)
	}
}

// asError is errors.As without importing errors (keeps the test focused).
func asError(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
