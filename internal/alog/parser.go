package alog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses Alog source into a Program. The query predicate is "Q" if a
// rule with that head exists, otherwise the head of the last rule. Rules
// end with '.'.
func Parse(src string) (*Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("alog: empty program")
	}
	// The query is the predicate named Q when present, otherwise the head
	// of the last non-description rule (description rules only *describe*
	// IE predicates and cannot be queried directly).
	prog.Query = prog.Rules[len(prog.Rules)-1].Head.Pred
	for i := len(prog.Rules) - 1; i >= 0; i-- {
		if !prog.Rules[i].IsDescription(nil) {
			prog.Query = prog.Rules[i].Head.Pred
			break
		}
	}
	for _, r := range prog.Rules {
		if r.Head.Pred == "Q" {
			prog.Query = "Q"
			break
		}
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded
// programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %s, found %s", tokNames[k], p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// rule parses: head [?] :- body .
func (p *parser) rule() (*Rule, error) {
	r := &Rule{}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	r.Head.Pred = name.text
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for {
		// Head argument: var, <var>, or constant.
		switch p.tok.kind {
		case tokLT:
			if err := p.advance(); err != nil {
				return nil, err
			}
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokGT); err != nil {
				return nil, err
			}
			r.Head.Args = append(r.Head.Args, Variable(v.text))
			r.AnnAttrs = append(r.AnnAttrs, v.text)
		default:
			t, err := p.term()
			if err != nil {
				return nil, err
			}
			r.Head.Args = append(r.Head.Args, t)
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if p.tok.kind == tokQMark {
		r.Exists = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokImplies); err != nil {
		return nil, err
	}
	for {
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		r.Body = append(r.Body, lit)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokPeriod); err != nil {
		return nil, err
	}
	return r, nil
}

// term parses a variable or constant.
func (p *parser) term() (Term, error) {
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		if name == "NULL" {
			return Term{Kind: TermNull}, nil
		}
		return Variable(name), nil
	case tokNumber:
		n := p.tok.num
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return NumberConst(n), nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return StringConst(s), nil
	default:
		return Term{}, p.errf("expected a term, found %s", p.tok)
	}
}

// literal parses one body conjunct: an atom, a constraint, or a comparison.
func (p *parser) literal() (Literal, error) {
	// A literal starting with ident+'(' is an atom (possibly a constraint);
	// anything else starts a comparison.
	if p.tok.kind == tokIdent {
		name := p.tok
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
		if p.tok.kind == tokLParen {
			return p.atomOrConstraint(name)
		}
		// Variable on the left of a comparison.
		var lhs Term
		if name.text == "NULL" {
			lhs = Term{Kind: TermNull}
		} else {
			lhs = Variable(name.text)
		}
		return p.comparison(lhs)
	}
	lhs, err := p.term()
	if err != nil {
		return Literal{}, err
	}
	return p.comparison(lhs)
}

// comparison parses: lhs op rhs.
func (p *parser) comparison(lhs Term) (Literal, error) {
	var op CompareOp
	switch p.tok.kind {
	case tokLT:
		op = OpLT
	case tokLE:
		op = OpLE
	case tokGT:
		op = OpGT
	case tokGE:
		op = OpGE
	case tokEQ:
		op = OpEQ
	case tokNE:
		op = OpNE
	default:
		return Literal{}, p.errf("expected a comparison operator, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return Literal{}, err
	}
	rhs, err := p.term()
	if err != nil {
		return Literal{}, err
	}
	cmp := Compare{Op: op, L: lhs, R: rhs}
	// Optional additive offset on the right-hand side: `x < y + 5`.
	// Subtraction arrives as a negative number token (`y - 5` lexes as
	// ident then number -5), so a bare number after the term also counts.
	switch p.tok.kind {
	case tokPlus:
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
		n, err := p.expect(tokNumber)
		if err != nil {
			return Literal{}, err
		}
		cmp.ROffset = n.num
	case tokNumber:
		cmp.ROffset = p.tok.num
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
	}
	return Literal{Kind: LitCompare, Cmp: cmp}, nil
}

// atomOrConstraint parses pred(args...) and, if followed by '=' or written
// in the two-argument sugar pred(var, const), turns it into a constraint.
func (p *parser) atomOrConstraint(name token) (Literal, error) {
	if err := p.advance(); err != nil { // consume '('
		return Literal{}, err
	}
	var args []Term
	if p.tok.kind != tokRParen {
		for {
			t, err := p.term()
			if err != nil {
				return Literal{}, err
			}
			args = append(args, t)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return Literal{}, err
				}
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Literal{}, err
	}
	atom := Atom{Pred: name.text, Args: args}

	if p.tok.kind == tokEQ {
		// Constraint form: feature(attr) = value.
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
		if len(args) != 1 || args[0].Kind != TermVar {
			return Literal{}, &Error{Line: name.line, Col: name.col,
				Msg: fmt.Sprintf("constraint %s(...) = v needs exactly one variable argument", name.text)}
		}
		val, err := p.constraintValue()
		if err != nil {
			return Literal{}, err
		}
		return Literal{Kind: LitConstraint, Cons: Constraint{
			Feature: CanonFeature(name.text), Attr: args[0].Var, Value: val,
		}}, nil
	}

	// A two-argument atom feature(var, const) may be constraint sugar; that
	// is resolved during validation/compilation (SugarConstraint), because
	// only name resolution can tell a feature from a predicate with a
	// constant argument.
	return Literal{Kind: LitAtom, Atom: atom}, nil
}

// constraintValue parses the value of a constraint: bare ident, string, or
// number, returned as its string form.
func (p *parser) constraintValue() (string, error) {
	switch p.tok.kind {
	case tokIdent:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return "", err
		}
		return v, nil
	case tokString:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return "", err
		}
		return v, nil
	case tokNumber:
		t := p.tok
		if err := p.advance(); err != nil {
			return "", err
		}
		return t.text, nil
	default:
		return "", p.errf("expected a constraint value, found %s", p.tok)
	}
}

// termValueString renders a constant term as a constraint value string.
func termValueString(t Term) string {
	if t.Kind == TermStr {
		return t.Str
	}
	return strconv.FormatFloat(t.Num, 'g', -1, 64)
}

// CanonFeature normalises a feature name to the registry's canonical
// hyphenated form (prec_label_contains -> prec-label-contains).
func CanonFeature(name string) string {
	return strings.ReplaceAll(name, "_", "-")
}
