package alog

import (
	"fmt"
	"strconv"
)

// Unfold rewrites the program so that no rule body references an IE
// predicate described by description rules (Section 4): each such atom is
// replaced by the description rule's body with variables unified. When an
// IE predicate has several description rules, the referencing rule is
// duplicated once per description rule (union semantics). Description
// rules themselves are removed from the result; rules that never reference
// IE predicates are kept as-is.
func Unfold(p *Program, s *Schema) (*Program, error) {
	desc := p.DescriptionRules(s)
	out := &Program{Query: p.Query}
	fresh := 0
	for _, r := range p.Rules {
		if r.IsDescription(s) {
			continue // description rules are consumed by unfolding
		}
		variants, err := unfoldRule(r, desc, &fresh)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, variants...)
	}
	if len(out.Rules) == 0 {
		return nil, fmt.Errorf("alog: program has only description rules; nothing to evaluate")
	}
	return out, nil
}

// unfoldRule expands every IE-predicate atom of r, returning all variants.
func unfoldRule(r *Rule, desc map[string][]*Rule, fresh *int) ([]*Rule, error) {
	// Find the first body atom with description rules.
	idx := -1
	for i, l := range r.Body {
		if l.Kind == LitAtom && len(desc[l.Atom.Pred]) > 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		return []*Rule{r}, nil
	}
	atom := r.Body[idx].Atom
	var out []*Rule
	for _, d := range desc[atom.Pred] {
		if len(d.Head.Args) != len(atom.Args) {
			return nil, fmt.Errorf("alog: %s used with arity %d but described with arity %d",
				atom.Pred, len(atom.Args), len(d.Head.Args))
		}
		inlined, err := inline(r, idx, atom, d, fresh)
		if err != nil {
			return nil, err
		}
		// The inlined rule may reference further IE predicates.
		variants, err := unfoldRule(inlined, desc, fresh)
		if err != nil {
			return nil, err
		}
		out = append(out, variants...)
	}
	return out, nil
}

// inline replaces body literal idx of r (the atom call) with description
// rule d's body, substituting d's head variables with the call-site terms
// and renaming d's other variables fresh.
func inline(r *Rule, idx int, atom Atom, d *Rule, fresh *int) (*Rule, error) {
	subst := map[string]Term{}
	for i, ht := range d.Head.Args {
		if ht.Kind != TermVar {
			return nil, fmt.Errorf("alog: description rule for %s has a non-variable head argument %s", d.Head.Pred, ht)
		}
		if prev, ok := subst[ht.Var]; ok {
			// Repeated head variable: both call-site terms must agree; we
			// conservatively require syntactic equality.
			if prev != atom.Args[i] {
				return nil, fmt.Errorf("alog: description rule for %s repeats head variable %q with conflicting bindings", d.Head.Pred, ht.Var)
			}
			continue
		}
		subst[ht.Var] = atom.Args[i]
	}
	rename := func(v string) Term {
		if t, ok := subst[v]; ok {
			return t
		}
		*fresh++
		t := Variable(d.Head.Pred + "$" + v + "$" + strconv.Itoa(*fresh))
		subst[v] = t
		return t
	}
	substTerm := func(t Term) Term {
		if t.Kind != TermVar {
			return t
		}
		return rename(t.Var)
	}

	var newBody []Literal
	newBody = append(newBody, r.Body[:idx]...)
	for _, l := range d.Body {
		nl := cloneLiteral(l)
		switch nl.Kind {
		case LitAtom:
			for i, t := range nl.Atom.Args {
				nl.Atom.Args[i] = substTerm(t)
			}
		case LitCompare:
			nl.Cmp.L = substTerm(nl.Cmp.L)
			nl.Cmp.R = substTerm(nl.Cmp.R)
		case LitConstraint:
			nt := rename(nl.Cons.Attr)
			if nt.Kind != TermVar {
				return nil, fmt.Errorf("alog: constraint %s applies to %q which unifies with a constant", nl.Cons, nl.Cons.Attr)
			}
			nl.Cons.Attr = nt.Var
		}
		newBody = append(newBody, nl)
	}
	newBody = append(newBody, r.Body[idx+1:]...)

	nr := r.Clone()
	nr.Body = newBody
	return nr, nil
}
