package alog

import (
	"fmt"
)

// Schema describes the non-rule bindings a program runs against: the
// extensional tables provided to it, the boolean p-functions, and the
// procedural p-predicates (cleanup procedures) registered in Go.
type Schema struct {
	// Extensional maps extensional predicate names to their column names.
	Extensional map[string][]string
	// Functions names boolean p-functions such as similar / approxMatch.
	Functions map[string]bool
	// Procedures names procedural p-predicates (Section 2.2.4 cleanup
	// procedures). Their first argument is the input.
	Procedures map[string]bool
}

// PredClass classifies a predicate occurrence.
type PredClass int

// The predicate classes, in resolution priority order.
const (
	ClassUnknown PredClass = iota
	ClassFrom
	ClassExtensional
	ClassFunction
	ClassProcedure
	ClassIE          // head of a description rule
	ClassIntensional // head of a non-description rule
)

// Classify resolves the class of a predicate name within a program+schema.
func Classify(p *Program, s *Schema, pred string) PredClass {
	if pred == FromPred {
		return ClassFrom
	}
	if s != nil {
		if _, ok := s.Extensional[pred]; ok {
			return ClassExtensional
		}
		if s.Functions[pred] {
			return ClassFunction
		}
		if s.Procedures[pred] {
			return ClassProcedure
		}
	}
	isDesc, isHead := false, false
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			isHead = true
			if r.IsDescription(s) {
				isDesc = true
			}
		}
	}
	switch {
	case isDesc:
		return ClassIE
	case isHead:
		return ClassIntensional
	default:
		return ClassUnknown
	}
}

// OrderBody orders a rule body so each literal is evaluable left-to-right
// given the seed bound variables (standard sideways information passing):
// extensional/intensional atoms bind their variables; from(x, s) needs x
// and binds s; functions and comparisons need all their variables; IE
// predicates and procedures need their first argument and bind the rest.
// It returns an error naming the first literal that can never be placed.
func OrderBody(p *Program, s *Schema, r *Rule, seed map[string]bool) ([]Literal, error) {
	bound := map[string]bool{}
	for v := range seed {
		bound[v] = true
	}
	remaining := append([]Literal(nil), r.Body...)
	var out []Literal
	for len(remaining) > 0 {
		// Prefer selections (comparisons, constraints, p-functions): they
		// only ever shrink intermediate results, so placing them as soon as
		// their variables are bound keeps joins small (selection pushdown).
		pick := -1
		for i, lit := range remaining {
			if isSelection(p, s, lit) && evaluable(p, s, lit, bound) {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i, lit := range remaining {
				if evaluable(p, s, lit, bound) {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("alog: rule %q: cannot evaluate %q (unbound variables); rule is unsafe or mis-ordered",
				r.Head.Pred, remaining[0])
		}
		lit := remaining[pick]
		bindLiteral(p, s, lit, bound)
		out = append(out, lit)
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return out, nil
}

// isSelection reports whether the literal filters without binding new
// variables: comparisons, constraints, and boolean p-functions.
func isSelection(p *Program, s *Schema, lit Literal) bool {
	switch lit.Kind {
	case LitCompare, LitConstraint:
		return true
	default:
		if Classify(p, s, lit.Atom.Pred) == ClassFunction {
			return true
		}
		// Unknown two-arg atoms that look like constraint sugar are
		// selections too.
		if Classify(p, s, lit.Atom.Pred) == ClassUnknown {
			_, ok := SugarConstraint(lit.Atom)
			return ok
		}
		return false
	}
}

// evaluable reports whether the literal can run given the bound variables.
func evaluable(p *Program, s *Schema, lit Literal, bound map[string]bool) bool {
	switch lit.Kind {
	case LitCompare:
		return termBound(lit.Cmp.L, bound) && termBound(lit.Cmp.R, bound)
	case LitConstraint:
		return bound[lit.Cons.Attr]
	default:
		a := lit.Atom
		switch Classify(p, s, a.Pred) {
		case ClassFrom:
			return len(a.Args) == 2 && termBound(a.Args[0], bound)
		case ClassExtensional, ClassIntensional:
			return true
		case ClassFunction:
			for _, t := range a.Args {
				if !termBound(t, bound) {
					return false
				}
			}
			return true
		case ClassProcedure, ClassIE:
			return len(a.Args) >= 1 && termBound(a.Args[0], bound)
		default:
			if cons, ok := SugarConstraint(a); ok {
				return bound[cons.Attr]
			}
			return false
		}
	}
}

// bindLiteral adds the variables the literal binds to the bound set.
func bindLiteral(p *Program, s *Schema, lit Literal, bound map[string]bool) {
	if lit.Kind != LitAtom {
		return
	}
	a := lit.Atom
	switch Classify(p, s, a.Pred) {
	case ClassFrom:
		if len(a.Args) == 2 && a.Args[1].Kind == TermVar {
			bound[a.Args[1].Var] = true
		}
	case ClassExtensional, ClassIntensional, ClassProcedure, ClassIE:
		for _, t := range a.Args {
			if t.Kind == TermVar {
				bound[t.Var] = true
			}
		}
	}
}

func termBound(t Term, bound map[string]bool) bool {
	return t.Kind != TermVar || bound[t.Var]
}

// ruleSeed returns the input variables of a rule: for description rules,
// the head variables used as the input side of body literals (the first
// argument of from, IE, or procedure atoms). Non-description rules have no
// inputs.
func ruleSeed(p *Program, s *Schema, r *Rule) map[string]bool {
	seed := map[string]bool{}
	if !r.IsDescription(s) {
		return seed
	}
	headVars := map[string]bool{}
	for _, t := range r.Head.Args {
		if t.Kind == TermVar {
			headVars[t.Var] = true
		}
	}
	for _, l := range r.Body {
		if l.Kind != LitAtom || len(l.Atom.Args) == 0 {
			continue
		}
		if t := l.Atom.Args[0]; t.Kind == TermVar && headVars[t.Var] {
			switch Classify(p, s, l.Atom.Pred) {
			case ClassFrom, ClassIE, ClassProcedure:
				seed[t.Var] = true
			}
		}
	}
	return seed
}

// Validate checks the whole program: every body predicate resolves to a
// known class, every rule body can be ordered safely, every head variable
// is bound by the body (rule safety, Section 2.2.2), and annotations refer
// to head variables. It returns the first error found.
func Validate(p *Program, s *Schema) error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("alog: empty program")
	}
	if len(p.RulesFor(p.Query)) == 0 {
		return fmt.Errorf("alog: query predicate %q has no rules", p.Query)
	}
	for _, r := range p.Rules {
		if err := validateRule(p, s, r); err != nil {
			return err
		}
	}
	return nil
}

func validateRule(p *Program, s *Schema, r *Rule) error {
	for _, l := range r.Body {
		if l.Kind == LitAtom && Classify(p, s, l.Atom.Pred) == ClassUnknown {
			if _, ok := SugarConstraint(l.Atom); ok {
				continue // feature(var, const) constraint sugar
			}
			return fmt.Errorf("alog: rule %q: unknown predicate %q (not extensional, intensional, a p-predicate, or a p-function)",
				r.Head.Pred, l.Atom.Pred)
		}
	}
	seed := ruleSeed(p, s, r)
	ordered, err := OrderBody(p, s, r, seed)
	if err != nil {
		return err
	}
	// Safety: every head variable must be bound after evaluating the body.
	bound := map[string]bool{}
	for v := range seed {
		bound[v] = true
	}
	for _, l := range ordered {
		bindLiteral(p, s, l, bound)
	}
	for _, t := range r.Head.Args {
		if t.Kind == TermVar && !bound[t.Var] {
			return fmt.Errorf("alog: rule %q is unsafe: head variable %q is not bound by the body",
				r.Head.Pred, t.Var)
		}
	}
	// Annotations must name head variables.
	headVars := map[string]bool{}
	for _, t := range r.Head.Args {
		if t.Kind == TermVar {
			headVars[t.Var] = true
		}
	}
	for _, a := range r.AnnAttrs {
		if !headVars[a] {
			return fmt.Errorf("alog: rule %q: attribute annotation <%s> does not name a head variable", r.Head.Pred, a)
		}
	}
	return nil
}
