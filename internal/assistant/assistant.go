// Package assistant implements iFlex's next-effort assistant (Section 5):
// it selects questions of the form "what is the value of feature f for
// attribute a?", incorporates the developer's answers into the Alog
// program as domain constraints, detects convergence, and drives the
// iterate-execute-refine session loop with subset evaluation and reuse
// (Section 5.2).
package assistant

import (
	"fmt"

	"iflex/internal/alog"
	"iflex/internal/feature"
)

// Question asks for the value of one feature of one extraction attribute,
// e.g. "what is the value of bold-font for extractHouses.p?".
type Question struct {
	Attr    alog.AttrRef
	Feature string
	Kind    feature.Kind
}

// String phrases the question the way iFlex shows it to the developer.
func (q Question) String() string {
	if q.Kind == feature.KindBoolean {
		return fmt.Sprintf("is %s %s?", q.Attr, q.Feature)
	}
	return fmt.Sprintf("what is %s for %s?", q.Feature, q.Attr)
}

// key identifies a question within the asked/known bookkeeping.
func (q Question) key() string { return q.Attr.String() + "|" + q.Feature }

// Answer is the developer's reply. Known=false is "I do not know"
// (probability α in the simulation strategy); otherwise Value is a feature
// value ("yes", "no", "distinct-yes", or a parameter such as "500000").
type Answer struct {
	Value string
	Known bool
}

// DontKnow is the "I do not know" answer.
func DontKnow() Answer { return Answer{} }

// Know returns a known answer with the given value.
func Know(v string) Answer { return Answer{Value: v, Known: true} }

// Oracle answers assistant questions. Experiments use ground-truth-backed
// oracles (the simulated developer); an interactive deployment would
// prompt a human.
type Oracle interface {
	Answer(q Question) Answer
}

// CandidateProvider optionally extends an Oracle with candidate values for
// parametric features, giving the simulation strategy a finite answer set
// V to average over. Oracles that do not implement it restrict simulation
// to boolean features.
type CandidateProvider interface {
	Candidates(attr alog.AttrRef, featureName string) []string
}

// BoolValues is the answer domain V of boolean feature questions.
var BoolValues = []string{feature.Yes, feature.DistinctYes, feature.No}

// QuestionFeatures lists the features the assistant asks about, in the
// fixed order used by the sequential strategy: appearance first, then
// location, then semantics (Section 5.1.1).
var QuestionFeatures = []string{
	"bold-font", "italic-font", "underlined", "hyperlinked",
	"in-list", "in-title", "numeric", "capitalized",
	"in-first-half",
	"preceded-by", "followed-by",
	"min-value", "max-value", "max-length", "max-tokens",
}

// questionSpace enumerates the still-unknown questions for a program: all
// (attribute, feature) pairs not yet constrained and not yet answered
// "I do not know".
func questionSpace(prog *alog.Program, reg *feature.Registry, asked map[string]bool) []Question {
	var out []Question
	for _, attr := range prog.Attrs() {
		for _, fname := range QuestionFeatures {
			f, err := reg.Lookup(fname)
			if err != nil {
				continue // feature not registered in this deployment
			}
			q := Question{Attr: attr, Feature: fname, Kind: f.Kind()}
			if asked[q.key()] || prog.HasConstraint(attr, fname) {
				continue
			}
			out = append(out, q)
		}
	}
	return out
}

// negate maps a boolean answer to the constraint value recorded in the
// program. A "no" answer is itself a constraint (f(a) = no); unknown
// answers record nothing.
func constraintValue(ans Answer) (string, bool) {
	if !ans.Known {
		return "", false
	}
	return ans.Value, true
}
