package assistant

import (
	"testing"

	"iflex/internal/alog"
	"iflex/internal/engine"
	"iflex/internal/feature"
	"iflex/internal/markup"
	"iflex/internal/text"
)

// A small houses-style corpus where price is italic and school is bold,
// giving the oracle discriminating answers.
func testEnv() *engine.Env {
	env := engine.NewEnv()
	var docs []*text.Document
	pages := []struct {
		id, price, school string
	}{
		{"h1", "351000", "Vanhise High"},
		{"h2", "619000", "Basktall HS"},
		{"h3", "725000", "Lincoln High"},
		{"h4", "99000", "Frost Middle"},
	}
	for _, p := range pages {
		docs = append(docs, markup.MustParse(p.id,
			`House for sale at 4412 Maple Street.<br>Price: <i>`+p.price+`</i><br>School: <b>`+p.school+`</b>`))
	}
	env.AddDocTable("pages", "x", docs)
	return env
}

const testProg = `
T(x, <p>, <s>) :- pages(x), ext(x, p, s), p > 500000.
ext(x, p, s) :- from(x, p), from(x, s), numeric(p) = yes.
`

func testOracle() *MapOracle {
	return &MapOracle{
		Answers: map[string]map[string]string{
			"ext.p": {
				"italic-font":   feature.DistinctYes,
				"preceded-by":   "Price:",
				"min-value":     "90000",
				"capitalized":   feature.Yes, // numeric tokens count as capitalised
				"in-first-half": feature.Unknown,
			},
			"ext.s": {
				"bold-font":     feature.DistinctYes,
				"capitalized":   feature.Yes,
				"preceded-by":   "School:",
				"in-first-half": feature.Unknown,
			},
		},
		DefaultNo: map[string]bool{"ext.p": true, "ext.s": true},
	}
}

func TestQuestionSpace(t *testing.T) {
	prog := alog.MustParse(testProg)
	reg := feature.NewRegistry()
	space := questionSpace(prog, reg, map[string]bool{})
	if len(space) == 0 {
		t.Fatal("empty question space")
	}
	// numeric(p) is already constrained: no numeric question for p.
	for _, q := range space {
		if q.Attr.Var == "p" && q.Feature == "numeric" {
			t.Error("already-constrained feature should not be asked")
		}
	}
	// Marking a question asked removes it.
	q0 := space[0]
	space2 := questionSpace(prog, reg, map[string]bool{q0.key(): true})
	if len(space2) != len(space)-1 {
		t.Errorf("asked question not excluded: %d vs %d", len(space2), len(space))
	}
}

func TestQuestionString(t *testing.T) {
	q := Question{Attr: alog.AttrRef{Pred: "ext", Var: "p"}, Feature: "bold-font", Kind: feature.KindBoolean}
	if got := q.String(); got != "is ext.p bold-font?" {
		t.Errorf("String = %q", got)
	}
	q.Kind = feature.KindParametric
	q.Feature = "max-value"
	if got := q.String(); got != "what is max-value for ext.p?" {
		t.Errorf("String = %q", got)
	}
}

func TestMapOracle(t *testing.T) {
	o := testOracle()
	ans := o.Answer(Question{Attr: alog.AttrRef{Pred: "ext", Var: "p"}, Feature: "italic-font", Kind: feature.KindBoolean})
	if !ans.Known || ans.Value != feature.DistinctYes {
		t.Errorf("answer = %+v", ans)
	}
	// Unlisted boolean with DefaultNo: "no".
	ans = o.Answer(Question{Attr: alog.AttrRef{Pred: "ext", Var: "p"}, Feature: "in-list", Kind: feature.KindBoolean})
	if !ans.Known || ans.Value != feature.No {
		t.Errorf("default-no answer = %+v", ans)
	}
	// Unlisted parametric: don't know.
	ans = o.Answer(Question{Attr: alog.AttrRef{Pred: "ext", Var: "p"}, Feature: "max-length", Kind: feature.KindParametric})
	if ans.Known {
		t.Errorf("parametric unknown = %+v", ans)
	}
	// Candidates for parametric features come from the truth.
	cands := o.Candidates(alog.AttrRef{Pred: "ext", Var: "p"}, "preceded-by")
	if len(cands) != 1 || cands[0] != "Price:" {
		t.Errorf("candidates = %v", cands)
	}
}

func TestSequentialOrdering(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	s := NewSession(env, prog, testOracle(), Config{})
	space := questionSpace(s.Prog, env.Features, s.asked)
	qs, err := (Sequential{}).Next(s, space, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 4 {
		t.Fatalf("questions = %v", qs)
	}
	// p participates in the comparison p > 500000: it outranks s.
	if qs[0].Attr.Var != "p" {
		t.Errorf("first question should target p: %v", qs[0])
	}
	// Features must follow the fixed order within one attribute.
	if qs[0].Feature != "bold-font" {
		t.Errorf("first feature = %s", qs[0].Feature)
	}
}

func TestSessionConvergesSequential(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	s := NewSession(env, prog, testOracle(), Config{Strategy: Sequential{}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil {
		t.Fatal("no final result")
	}
	if res.QuestionsAsked == 0 {
		t.Error("no questions asked")
	}
	// The correct answer: h2 (619000) and h3 (725000).
	if res.FinalTuples < 2 {
		t.Errorf("final tuples = %d, want >= 2 (superset of truth)\n%s", res.FinalTuples, res.Final)
	}
	// Sizes must be non-increasing over subset iterations (refinement only
	// narrows with a fixed subset).
	var prev int
	for i, it := range res.Iterations {
		if it.Mode != "subset" {
			continue
		}
		if i > 0 && prev != 0 && it.Tuples > prev {
			t.Errorf("iteration %d grew: %d -> %d", it.N, prev, it.Tuples)
		}
		prev = it.Tuples
	}
}

func TestSessionConvergesSimulation(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	s := NewSession(env, prog, testOracle(), Config{Strategy: Simulation{}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged && len(res.Iterations) < 3 {
		t.Errorf("simulation session did not iterate: %+v", res.Iterations)
	}
	if res.FinalTuples < 2 {
		t.Errorf("final tuples = %d\n%s", res.FinalTuples, res.Final)
	}
	// The simulation strategy reuses cached subtrees heavily.
	if res.Stats.CacheHits == 0 {
		t.Error("simulation should hit the reuse cache")
	}
}

func TestSimulationPicksReducingQuestion(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	s := NewSession(env, prog, testOracle(), Config{Strategy: Simulation{}, SubsetFraction: 1.0})
	// Execute once so lastSize is meaningful.
	if _, _, err := s.execute(true); err != nil {
		t.Fatal(err)
	}
	s.sizes = append(s.sizes, 100)
	s.assigns = append(s.assigns, 100)
	space := questionSpace(s.Prog, env.Features, s.asked)
	qs, err := (Simulation{}).Next(s, space, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 {
		t.Fatalf("questions = %v", qs)
	}
	// The chosen question must target one of the two attributes with a
	// discriminating feature.
	q := qs[0]
	if q.Attr.Var != "p" && q.Attr.Var != "s" {
		t.Errorf("chosen question = %v", q)
	}
}

func TestConvergenceWindow(t *testing.T) {
	s := &Session{Config: Config{ConvergenceWindow: 3}.withDefaults()}
	s.sizes = []int{10, 5, 5, 5}
	s.assigns = []int{9, 4, 4, 4}
	if !s.converged() {
		t.Error("stable counts should converge")
	}
	s.sizes = []int{10, 5, 5, 4}
	s.assigns = []int{9, 4, 4, 4}
	if s.converged() {
		t.Error("changing counts should not converge")
	}
	s.sizes = []int{5, 5}
	s.assigns = []int{4, 4}
	if s.converged() {
		t.Error("too few iterations should not converge")
	}
}

func TestSubsetSampling(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	s := NewSession(env, prog, testOracle(), Config{SubsetFraction: 0.5})
	if len(s.subset) != 2 { // 4 docs * 0.5
		t.Errorf("subset = %v", s.subset)
	}
	// Deterministic for a fixed seed.
	s2 := NewSession(env, prog, testOracle(), Config{SubsetFraction: 0.5})
	for id := range s.subset {
		if !s2.subset[id] {
			t.Error("subset sampling not deterministic")
		}
	}
	// Different seed changes the sample (with high probability for FNV).
	s3 := NewSession(env, prog, testOracle(), Config{SubsetFraction: 0.5, SubsetSeed: 99})
	same := true
	for id := range s.subset {
		if !s3.subset[id] {
			same = false
		}
	}
	_ = same // both outcomes are legal; just ensure no panic and right size
	if len(s3.subset) != 2 {
		t.Errorf("seeded subset size = %d", len(s3.subset))
	}
}

func TestStrategyByName(t *testing.T) {
	if _, err := ByName("seq"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("sim"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestSessionDoesNotMutateCallerProgram(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	before := prog.String()
	s := NewSession(env, prog, testOracle(), Config{})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if prog.String() != before {
		t.Error("session mutated the caller's program")
	}
	if s.Program().String() == before {
		t.Error("session program should have been refined")
	}
}
