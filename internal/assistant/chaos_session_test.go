package assistant_test

// Chaos tests through the full session loop: deterministic fault
// injection during a refinement session must leave transcripts and final
// tables byte-identical across worker counts and delta on/off, with the
// quarantined documents excluded — and nothing else.

import (
	"strings"
	"testing"
	"time"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/corpus"
	"iflex/internal/engine"
	"iflex/internal/fault"
	"iflex/internal/markup"
	"iflex/internal/text"
)

// chaosSessionConfig is a session setup whose question sequence is
// data-independent: Sequential strategy, a convergence window larger
// than the iteration bound (so convergence never truncates the loop),
// and a fixed subset seed. Sessions over different corpora then ask the
// same questions and refine to the same program.
func chaosSessionConfig(workers int, delta bool) assistant.Config {
	return assistant.Config{
		Strategy:          assistant.Sequential{},
		MaxIterations:     3,
		ConvergenceWindow: 100,
		SubsetSeed:        1,
		Workers:           workers,
		DisableDeltaReuse: !delta,
		QuarantineFaults:  true,
	}
}

// TestChaosSessionDeterministic runs a full T9 session under injected
// p-function faults at Workers 1 and 8, delta reuse on and off: every
// transcript and final table must be byte-identical, the quarantine
// non-empty, and the final result equal to a fault-free session over the
// corpus minus exactly the quarantined documents.
func TestChaosSessionDeterministic(t *testing.T) {
	const records = 40
	task, err := corpus.TaskByID("T9")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(records, 1)
	prog := alog.MustParse(task.Program)
	inj := fault.New(42, fault.Rule{Site: "pfunc", Mode: fault.ModeError, Num: 1, Den: 8})

	type cfg struct {
		workers int
		delta   bool
	}
	configs := []cfg{{1, false}, {8, false}, {1, true}, {8, true}}
	var transcripts, tables []string
	var quarantines [][]string
	for _, cf := range configs {
		env := task.Env(c)
		env.FaultHook = inj.Hook()
		res, err := assistant.NewSession(env, prog, task.Oracle(), chaosSessionConfig(cf.workers, cf.delta)).Run()
		if err != nil {
			t.Fatalf("workers=%d delta=%v: %v", cf.workers, cf.delta, err)
		}
		transcripts = append(transcripts, res.Transcript())
		tables = append(tables, res.Final.String())
		if res.Degraded == nil || len(res.Degraded.Quarantined) == 0 {
			t.Fatalf("workers=%d delta=%v: no quarantine in the degradation report", cf.workers, cf.delta)
		}
		quarantines = append(quarantines, res.Degraded.QuarantinedDocs())
	}
	for i := 1; i < len(configs); i++ {
		if transcripts[i] != transcripts[0] {
			t.Errorf("config %+v transcript differs:\n%s\n---\n%s", configs[i], transcripts[i], transcripts[0])
		}
		if tables[i] != tables[0] {
			t.Errorf("config %+v final table differs", configs[i])
		}
		if strings.Join(quarantines[i], ",") != strings.Join(quarantines[0], ",") {
			t.Errorf("config %+v quarantine %v differs from %v", configs[i], quarantines[i], quarantines[0])
		}
	}

	// A fault-free session over the corpus minus the quarantined
	// documents must produce the same final table: the degraded result is
	// exactly "everything minus the quarantined documents", nothing less.
	exclude := map[string]bool{}
	for _, id := range quarantines[0] {
		exclude[id] = true
	}
	cleanEnv := task.Env(c)
	for _, name := range task.Tables {
		var keep []*text.Document
		for _, d := range c.DocsOf(name) {
			if !exclude[d.ID()] {
				keep = append(keep, d)
			}
		}
		cleanEnv.AddDocTable(name, "x", keep)
	}
	cleanRes, err := assistant.NewSession(cleanEnv, prog, task.Oracle(), chaosSessionConfig(1, true)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if cleanRes.Degraded != nil {
		t.Fatalf("clean session degraded: %s", cleanRes.Degraded.Summary())
	}
	if cleanRes.Final.String() != tables[0] {
		t.Errorf("faulted session result differs from fault-free session over corpus minus quarantined docs:\nfaulted:\n%s\nclean:\n%s",
			tables[0], cleanRes.Final.String())
	}
}

// TestChaosSessionDeadline bounds a session with a deadline it cannot
// meet (injected per-probe latency): Run must return promptly with a
// partial result and a degradation report naming the expiry.
func TestChaosSessionDeadline(t *testing.T) {
	task, err := corpus.TaskByID("T9")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(60, 1)
	prog := alog.MustParse(task.Program)
	inj := fault.New(5, fault.Rule{Site: "pfunc", Mode: fault.ModeLatency, Num: 1, Den: 1, Latency: 2 * time.Millisecond})
	env := task.Env(c)
	env.FaultHook = inj.Hook()

	cfg := chaosSessionConfig(2, true)
	cfg.Deadline = 250 * time.Millisecond
	start := time.Now()
	res, err := assistant.NewSession(env, prog, task.Oracle(), cfg).Run()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	// The loop checkpoints at operator tuple/chunk granularity; allow a
	// generous multiple for scheduling noise, still far under the
	// fault-free runtime at 2ms per probe.
	if elapsed > 4*cfg.Deadline {
		t.Errorf("session took %v with a %v deadline", elapsed, cfg.Deadline)
	}
	if res.Final == nil {
		t.Fatal("nil final table from a deadline-bounded session")
	}
	if res.Degraded == nil || !res.Degraded.DeadlineExpired {
		t.Fatalf("degradation report missing or not expired: %+v", res.Degraded)
	}
}

// TestChaosMalformedMarkup drives malformed pages through a full session
// run: pages with NUL bytes and megabyte-scale attributes must parse and
// evaluate, extraction code crashing on the poisoned content must lead
// to quarantine rather than a crash, and outright unparseable markup
// must fail cleanly at parse time.
func TestChaosMalformedMarkup(t *testing.T) {
	// Truncated mid-tag markup is the one hard parse error: it must be an
	// error, never a panic.
	if _, err := markup.Parse("bad", `Price: 12<b class="x`); err == nil {
		t.Error("markup truncated mid-tag parsed without error")
	}

	docs := []*text.Document{
		markup.MustParse("ok1", "Item one<br>Price: 100<br>"),
		markup.MustParse("ok2", "Item two<br>Price: 250<br>"),
		markup.MustParse("nul", "Item\x00three<br>Price: 350<br>"),
		markup.MustParse("big", `<b junk="`+strings.Repeat("A", 1<<20)+`">Item four</b><br>Price: 400<br>`),
		markup.MustParse("cut", "Item five<br>Price: 5"), // truncated content, valid markup
	}
	env := engine.NewEnv()
	env.AddDocTable("pages", "x", docs)
	// cleanv stands in for extraction code that chokes on malformed
	// input: it panics outright when the value's document contains a NUL.
	env.Funcs["cleanv"] = func(args []text.Span) (bool, error) {
		if strings.ContainsRune(args[0].Doc().Text(), 0) {
			panic("extractor crashed on NUL byte")
		}
		return true, nil
	}
	prog := alog.MustParse(`
Q(x, <v>) :- pages(x), extract(x, v), cleanv(v).
extract(x, v) :- from(x, v), numeric(v) = yes.
`)
	cfg := assistant.Config{
		Strategy:          assistant.Sequential{},
		MaxIterations:     2,
		ConvergenceWindow: 100,
		Workers:           4,
		QuarantineFaults:  true,
	}
	res, err := assistant.NewSession(env, prog, assistant.NewMapOracle(nil), cfg).Run()
	if err != nil {
		t.Fatalf("session over malformed corpus failed: %v", err)
	}
	if res.Degraded == nil {
		t.Fatal("no degradation report; the NUL page should have been quarantined")
	}
	q := res.Degraded.QuarantinedDocs()
	if len(q) != 1 || q[0] != "nul" {
		t.Fatalf("quarantined %v, want exactly [nul]", q)
	}
	// The surviving malformed-but-parseable pages must still contribute.
	out := res.Final.String()
	for _, want := range []string{"100", "250", "400"} {
		if !strings.Contains(out, want) {
			t.Errorf("result misses price %s from a surviving page:\n%s", want, out)
		}
	}
}
