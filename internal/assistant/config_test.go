package assistant

import (
	"runtime"
	"testing"

	"iflex/internal/alog"
)

// TestAlphaDefaults pins the α resolution rules: the zero value keeps the
// paper's 0.1 default, ExplicitZero expresses a literal α = 0 (the
// Section 5.1 formula with an always-answering oracle), and explicit
// positive values pass through.
func TestAlphaDefaults(t *testing.T) {
	if got := (Config{}).withDefaults().Alpha; got != 0.1 {
		t.Errorf("default Alpha = %v, want 0.1", got)
	}
	if got := (Config{Alpha: ExplicitZero}).withDefaults().Alpha; got != 0 {
		t.Errorf("ExplicitZero Alpha = %v, want 0", got)
	}
	if got := (Config{Alpha: 0.25}).withDefaults().Alpha; got != 0.25 {
		t.Errorf("explicit Alpha = %v, want 0.25", got)
	}
}

// TestWorkersDefaultMatchesEngine: the session default must resolve the
// same way engine.Context.workers does (GOMAXPROCS, not NumCPU), so the
// simulation fan-out cannot oversubscribe the pool under a CPU quota.
func TestWorkersDefaultMatchesEngine(t *testing.T) {
	if got, want := (Config{}).withDefaults().Workers, runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default Workers = %d, want GOMAXPROCS(0) = %d", got, want)
	}
	if got := (Config{Workers: 3}).withDefaults().Workers; got != 3 {
		t.Errorf("explicit Workers = %d, want 3", got)
	}
}

// TestSubsetFractionExplicitZero: a negative SubsetFraction selects the
// minimal subset — one document per extensional table — instead of the
// automatic 5–30% sizing, while the zero value keeps the automatic rule.
func TestSubsetFractionExplicitZero(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	minimal := NewSession(env, prog, testOracle(), Config{SubsetFraction: ExplicitZero})
	if len(minimal.subset) != 1 {
		t.Errorf("ExplicitZero subset has %d docs, want 1 (one per table): %v",
			len(minimal.subset), minimal.subset)
	}
	auto := NewSession(env, prog, testOracle(), Config{})
	// testEnv has 4 documents, under the ≤20 threshold: automatic sizing
	// keeps them all.
	if len(auto.subset) != 4 {
		t.Errorf("automatic subset has %d docs, want 4: %v", len(auto.subset), auto.subset)
	}
}

// TestExplicitZeroAlphaSessionRuns: an α = 0 simulation session must run
// to completion — the configuration the zero-value trap used to make
// inexpressible.
func TestExplicitZeroAlphaSessionRuns(t *testing.T) {
	s := NewSession(testEnv(), alog.MustParse(testProg), testOracle(), Config{
		Strategy: Simulation{},
		Alpha:    ExplicitZero,
		Workers:  2,
	})
	if s.Alpha != 0 {
		t.Fatalf("session Alpha = %v, want 0", s.Alpha)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Error("session produced no iterations")
	}
	for _, it := range res.Iterations {
		if it.Evals < 0 || it.CacheHits < 0 {
			t.Errorf("iteration %d has negative counter deltas: %+v", it.N, it)
		}
	}
	if res.Stats.NodesEvaluated == 0 {
		t.Error("session stats recorded no evaluations")
	}
}
