package assistant_test

// Delta-vs-full equivalence: for every task T1–T9, applying every answer in
// the question space must yield byte-identical tables whether the changed
// plan is evaluated incrementally (delta reuse against the previous plan
// version) or recomputed from scratch — at Workers 1 and 8, under -race.

import (
	"fmt"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/corpus"
	"iflex/internal/engine"
	"iflex/internal/feature"
)

// answerValues enumerates the answer domain V for a question: the three
// boolean values, or the oracle's candidate values for parametric features.
func answerValues(o *assistant.MapOracle, q assistant.Question) []string {
	if q.Kind == feature.KindBoolean {
		return assistant.BoolValues
	}
	return o.Candidates(q.Attr, q.Feature)
}

// TestDeltaMatchesFullEvaluation replays a whole refinement session for
// each task: it walks the question space, and at every step executes each
// candidate answer as a one-constraint trial two ways — on a shared
// delta-enabled context primed with the current base plan (the
// session/simulation path) and on a fresh context without delta reuse
// (full recomputation) — before folding the oracle's real answer into the
// base program for the next step. Every table must be byte-identical both
// ways, and across the sweep the delta path must actually replay tuples
// (TuplesReused > 0), or the test is vacuous.
func TestDeltaMatchesFullEvaluation(t *testing.T) {
	const records = 12
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var reused int64
			for _, task := range corpus.Tasks() {
				c := task.Generate(records, 1)
				env := task.Env(c)
				prog := alog.MustParse(task.Program)
				oracle := task.Oracle()

				// fullRun recomputes a program from scratch on a fresh
				// context (no delta, no warm cache).
				fullRun := func(p *alog.Program, what string) string {
					fctx := engine.NewContext(env)
					fctx.Workers = workers
					plan, err := engine.Compile(p, env)
					if err != nil {
						t.Fatalf("%s: compile %s: %v", task.ID, what, err)
					}
					tbl, err := plan.Execute(fctx)
					if err != nil {
						t.Fatalf("%s: full execute %s: %v", task.ID, what, err)
					}
					return tbl.String()
				}

				// Prime the delta context with the initial plan, like the
				// session's first iteration.
				dctx := engine.NewContext(env)
				dctx.Workers = workers
				dctx.EnableDelta()
				base, err := engine.Compile(prog, env)
				if err != nil {
					t.Fatalf("%s: compile base: %v", task.ID, err)
				}
				if _, err := base.Execute(dctx); err != nil {
					t.Fatalf("%s: execute base: %v", task.ID, err)
				}

				asked := map[string]bool{}
				steps := 0
				for {
					space := assistant.QuestionSpaceForTest(prog, env.Features, asked)
					if len(space) == 0 {
						break
					}
					q := space[0]
					asked[q.KeyForTest()] = true
					for _, v := range answerValues(oracle, q) {
						trial := prog.Clone()
						if err := trial.AddConstraint(q.Attr, q.Feature, v); err != nil {
							t.Fatalf("%s: add %s=%s to %s: %v", task.ID, q.Feature, v, q.Attr, err)
						}
						plan, err := engine.Compile(trial, env)
						if err != nil {
							t.Fatalf("%s: compile trial %s=%s: %v", task.ID, q.Feature, v, err)
						}
						dctx.RegisterDelta(base.Root, plan.Root)
						dt, err := plan.Execute(dctx)
						if err != nil {
							t.Fatalf("%s: delta execute %s=%s: %v", task.ID, q.Feature, v, err)
						}
						if got, want := dt.String(), fullRun(trial, fmt.Sprintf("trial %s=%s", q.Feature, v)); got != want {
							t.Errorf("%s: %s %s=%s: delta table differs from full recomputation\ndelta:\n%s\nfull:\n%s",
								task.ID, q.Attr, q.Feature, v, got, want)
						}
					}
					// Fold the oracle's real answer into the base program, the
					// way Session.Run applies accepted answers, and advance the
					// delta chain to the new base plan.
					if ans := oracle.Answer(q); ans.Known {
						if err := prog.AddConstraint(q.Attr, q.Feature, ans.Value); err != nil {
							t.Fatalf("%s: apply %s=%s: %v", task.ID, q.Feature, ans.Value, err)
						}
						next, err := engine.Compile(prog, env)
						if err != nil {
							t.Fatalf("%s: compile refined base: %v", task.ID, err)
						}
						dctx.RegisterDelta(base.Root, next.Root)
						dt, err := next.Execute(dctx)
						if err != nil {
							t.Fatalf("%s: delta execute refined base: %v", task.ID, err)
						}
						if got, want := dt.String(), fullRun(prog, "refined base"); got != want {
							t.Errorf("%s: refined base after %s=%s: delta table differs from full recomputation",
								task.ID, q.Feature, ans.Value)
						}
						base = next
					}
					steps++
				}
				if steps == 0 {
					t.Fatalf("%s: empty question space", task.ID)
				}
				reused += dctx.Stats.Snapshot().TuplesReused
			}
			if reused == 0 {
				t.Error("delta evaluation never replayed a tuple across all tasks: the equivalence sweep is vacuous")
			}
		})
	}
}

// TestSessionDeltaMatchesFullSession runs whole assistant sessions with
// delta reuse on (the default) and off, at Workers 1 and 8: transcripts and
// final tables must be byte-identical in all four runs.
func TestSessionDeltaMatchesFullSession(t *testing.T) {
	for _, taskID := range []string{"T3", "T9"} {
		task, err := corpus.TaskByID(taskID)
		if err != nil {
			t.Fatal(err)
		}
		run := func(workers int, disable bool) *assistant.Result {
			c := task.Generate(20, 1)
			env := task.Env(c)
			session := assistant.NewSession(env, alog.MustParse(task.Program), task.Oracle(), assistant.Config{
				Strategy:          assistant.Simulation{},
				SubsetSeed:        1,
				Workers:           workers,
				DisableDeltaReuse: disable,
			})
			res, err := session.Run()
			if err != nil {
				t.Fatalf("%s workers=%d disable=%v: %v", taskID, workers, disable, err)
			}
			return res
		}
		ref := run(1, true)
		for _, workers := range []int{1, 8} {
			got := run(workers, false)
			if got.Transcript() != ref.Transcript() {
				t.Errorf("%s: delta transcript (workers=%d) differs from full serial run\ndelta:\n%s\nfull:\n%s",
					taskID, workers, got.Transcript(), ref.Transcript())
			}
			if got.Final.String() != ref.Final.String() {
				t.Errorf("%s: delta final table (workers=%d) differs from full serial run", taskID, workers)
			}
			if got.Stats.Snapshot().TuplesReused == 0 {
				t.Errorf("%s: delta session (workers=%d) replayed no tuples", taskID, workers)
			}
		}
	}
}

// TestCacheBudgetEviction simulates a long session under a tight
// CacheBudget: the reuse cache must stay within budget, evictions must be
// counted, and the outcome must match an unbudgeted run byte for byte.
func TestCacheBudgetEviction(t *testing.T) {
	task, err := corpus.TaskByID("T9")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 64 << 10
	run := func(budget int64) *assistant.Result {
		c := task.Generate(40, 1)
		env := task.Env(c)
		// Workers=1: LRU touch order is deterministic only serially.
		session := assistant.NewSession(env, alog.MustParse(task.Program), task.Oracle(), assistant.Config{
			Strategy:    assistant.Simulation{},
			SubsetSeed:  1,
			Workers:     1,
			CacheBudget: budget,
		})
		res, err := session.Run()
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		return res
	}
	bounded := run(budget)
	snap := bounded.Stats.Snapshot()
	if snap.CacheEvictions+snap.BlockIdxEvict == 0 {
		t.Errorf("no evictions under a %d-byte budget (cache bytes: %d)", budget, snap.CacheBytes)
	}
	if snap.CacheBytes > budget {
		t.Errorf("cache ended at %d bytes, over the %d-byte budget", snap.CacheBytes, budget)
	}
	// Evictions force re-evaluations, so the Evals/CacheHits counters in the
	// transcript legitimately differ; the semantic outcome must not.
	unbounded := run(0)
	if bounded.Final.String() != unbounded.Final.String() {
		t.Error("budgeted final table differs from unbudgeted")
	}
	if len(bounded.Iterations) != len(unbounded.Iterations) {
		t.Fatalf("budgeted session took %d iterations, unbudgeted %d",
			len(bounded.Iterations), len(unbounded.Iterations))
	}
	for i, it := range bounded.Iterations {
		ref := unbounded.Iterations[i]
		if it.Tuples != ref.Tuples || it.Assignments != ref.Assignments || it.Mode != ref.Mode {
			t.Errorf("iteration %d: budgeted (%d tuples, %d assignments, %s) vs unbudgeted (%d, %d, %s)",
				it.N, it.Tuples, it.Assignments, it.Mode, ref.Tuples, ref.Assignments, ref.Mode)
		}
	}
}
