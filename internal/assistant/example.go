package assistant

import (
	"strconv"
	"strings"

	"iflex/internal/alog"
	"iflex/internal/feature"
	"iflex/internal/text"
)

// ExampleOracle implements the "more types of feedback" extension
// discussed in Section 5.1.1: instead of answering feature questions one
// by one, the developer marks up one or more sample values per attribute
// (e.g. highlights a title on a page), and the assistant derives feature
// answers by running Verify against the marked examples.
//
// Boolean questions are answered distinct-yes / yes when every example
// verifies that value, and no when every example fails both; mixed
// examples answer "I do not know" (the feature is "sometimes"). For
// preceded-by/followed-by, a label is inferred when every example shares
// the same adjacent text ending in ':' (the common label shape); other
// parametric features are derived from the examples with slack where a
// safe bound exists (max-length, max-tokens) and left unknown otherwise.
type ExampleOracle struct {
	reg      *feature.Registry
	examples map[string][]text.Span
}

// NewExampleOracle builds the oracle from marked-up examples keyed by
// attribute ("pred.var").
func NewExampleOracle(reg *feature.Registry, examples map[alog.AttrRef][]text.Span) *ExampleOracle {
	o := &ExampleOracle{reg: reg, examples: map[string][]text.Span{}}
	for ref, spans := range examples {
		o.examples[ref.String()] = append([]text.Span(nil), spans...)
	}
	return o
}

// AddExample registers one more marked-up sample value for an attribute.
func (o *ExampleOracle) AddExample(ref alog.AttrRef, s text.Span) {
	o.examples[ref.String()] = append(o.examples[ref.String()], s)
}

// Answer implements Oracle.
func (o *ExampleOracle) Answer(q Question) Answer {
	exs := o.examples[q.Attr.String()]
	if len(exs) == 0 {
		return DontKnow()
	}
	f, err := o.reg.Lookup(q.Feature)
	if err != nil {
		return DontKnow()
	}
	if q.Kind == feature.KindBoolean {
		return o.boolAnswer(f, exs)
	}
	switch q.Feature {
	case "preceded-by":
		return o.adjacentLabel(exs, true)
	case "followed-by":
		return o.adjacentLabel(exs, false)
	case "max-length":
		longest := 0
		for _, e := range exs {
			if e.Len() > longest {
				longest = e.Len()
			}
		}
		return Know(strconv.Itoa(longest*2 + 8)) // generous slack over the samples
	case "max-tokens":
		most := 0
		for _, e := range exs {
			if n := e.NumTokens(); n > most {
				most = n
			}
		}
		return Know(strconv.Itoa(most*2 + 2))
	default:
		return DontKnow()
	}
}

// boolAnswer verifies each candidate value against every example.
func (o *ExampleOracle) boolAnswer(f feature.Feature, exs []text.Span) Answer {
	allVerify := func(v string) bool {
		for _, e := range exs {
			ok, err := f.Verify(e, v)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	switch {
	case allVerify(feature.DistinctYes):
		return Know(feature.DistinctYes)
	case allVerify(feature.Yes):
		return Know(feature.Yes)
	case allVerify(feature.No):
		return Know(feature.No)
	default:
		// The examples disagree: the honest answer is "sometimes".
		return DontKnow()
	}
}

// adjacentLabel infers a shared label next to every example: the trailing
// token of the preceding text (or leading token of the following text)
// when it ends with ':' and is identical across examples.
func (o *ExampleOracle) adjacentLabel(exs []text.Span, before bool) Answer {
	label := ""
	for _, e := range exs {
		body := e.Doc().Text()
		var candidate string
		if before {
			pre := strings.Fields(lineSlice(body, e.Start(), true))
			// Labels are short: take up to the last three tokens ending ':'.
			for take := 1; take <= 3 && take <= len(pre); take++ {
				c := strings.Join(pre[len(pre)-take:], " ")
				if strings.HasSuffix(c, ":") {
					candidate = c
				}
			}
		} else {
			post := strings.Fields(lineSlice(body, e.End(), false))
			if len(post) > 0 && strings.HasSuffix(post[0], ":") {
				candidate = post[0]
			}
		}
		if candidate == "" {
			return DontKnow()
		}
		if label == "" {
			label = candidate
		} else if label != candidate {
			return DontKnow() // examples carry different labels
		}
	}
	if label == "" {
		return DontKnow()
	}
	return Know(label)
}

// lineSlice returns the text on off's line before (true) or after (false)
// the offset.
func lineSlice(body string, off int, before bool) string {
	start, end := off, off
	for start > 0 && body[start-1] != '\n' {
		start--
	}
	for end < len(body) && body[end] != '\n' {
		end++
	}
	if before {
		return body[start:off]
	}
	return body[off:end]
}

// Candidates implements CandidateProvider so the simulation strategy can
// average over the derived parametric answers.
func (o *ExampleOracle) Candidates(attr alog.AttrRef, featureName string) []string {
	f, err := o.reg.Lookup(featureName)
	if err != nil || f.Kind() != feature.KindParametric {
		return nil
	}
	ans := o.Answer(Question{Attr: attr, Feature: featureName, Kind: feature.KindParametric})
	if !ans.Known {
		return nil
	}
	return []string{ans.Value}
}
