package assistant

import (
	"strings"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/feature"
	"iflex/internal/markup"
	"iflex/internal/text"
)

// exampleDoc builds the houses-style test page and locates a substring.
func exampleSpan(t *testing.T, d *text.Document, sub string) text.Span {
	t.Helper()
	i := strings.Index(d.Text(), sub)
	if i < 0 {
		t.Fatalf("substring %q not in %q", sub, d.Text())
	}
	return d.Span(i, i+len(sub))
}

func TestExampleOracleBooleanAnswers(t *testing.T) {
	reg := feature.NewRegistry()
	d := markup.MustParse("h", "Price: <i>619000</i><br>School: <b>Basktall HS</b>")
	price := exampleSpan(t, d, "619000")
	school := exampleSpan(t, d, "Basktall HS")
	o := NewExampleOracle(reg, map[alog.AttrRef][]text.Span{
		{Pred: "ext", Var: "p"}: {price},
		{Pred: "ext", Var: "s"}: {school},
	})
	ask := func(attr, feat string, kind feature.Kind) Answer {
		return o.Answer(Question{Attr: alog.AttrRef{Pred: "ext", Var: attr}, Feature: feat, Kind: kind})
	}
	if got := ask("p", "italic-font", feature.KindBoolean); got.Value != feature.DistinctYes {
		t.Errorf("italic(p) = %+v", got)
	}
	if got := ask("p", "numeric", feature.KindBoolean); got.Value != feature.Yes && got.Value != feature.DistinctYes {
		t.Errorf("numeric(p) = %+v", got)
	}
	if got := ask("p", "bold-font", feature.KindBoolean); got.Value != feature.No {
		t.Errorf("bold(p) = %+v", got)
	}
	if got := ask("s", "bold-font", feature.KindBoolean); got.Value != feature.DistinctYes {
		t.Errorf("bold(s) = %+v", got)
	}
	// No example for this attribute: don't know.
	if got := ask("missing", "bold-font", feature.KindBoolean); got.Known {
		t.Errorf("no-example answer = %+v", got)
	}
}

func TestExampleOracleLabelInference(t *testing.T) {
	reg := feature.NewRegistry()
	d1 := markup.MustParse("h1", "Price: <i>619000</i><br>rest")
	d2 := markup.MustParse("h2", "Price: <i>351000</i><br>rest")
	o := NewExampleOracle(reg, map[alog.AttrRef][]text.Span{
		{Pred: "ext", Var: "p"}: {exampleSpan(t, d1, "619000"), exampleSpan(t, d2, "351000")},
	})
	ans := o.Answer(Question{Attr: alog.AttrRef{Pred: "ext", Var: "p"}, Feature: "preceded-by", Kind: feature.KindParametric})
	if !ans.Known || ans.Value != "Price:" {
		t.Errorf("preceded-by = %+v", ans)
	}
	// Conflicting labels across examples: don't know.
	d3 := markup.MustParse("h3", "Cost: <i>42</i>")
	o.AddExample(alog.AttrRef{Pred: "ext", Var: "p"}, exampleSpan(t, d3, "42"))
	ans = o.Answer(Question{Attr: alog.AttrRef{Pred: "ext", Var: "p"}, Feature: "preceded-by", Kind: feature.KindParametric})
	if ans.Known {
		t.Errorf("conflicting labels should be unknown, got %+v", ans)
	}
}

func TestExampleOracleMixedExamplesUnknown(t *testing.T) {
	reg := feature.NewRegistry()
	d := markup.MustParse("h", "<b>bold one</b> and plain two")
	o := NewExampleOracle(reg, map[alog.AttrRef][]text.Span{
		{Pred: "ext", Var: "v"}: {exampleSpan(t, d, "bold one"), exampleSpan(t, d, "plain two")},
	})
	ans := o.Answer(Question{Attr: alog.AttrRef{Pred: "ext", Var: "v"}, Feature: "bold-font", Kind: feature.KindBoolean})
	if ans.Known {
		t.Errorf("mixed bold examples should answer unknown, got %+v", ans)
	}
}

func TestExampleOracleBounds(t *testing.T) {
	reg := feature.NewRegistry()
	d := markup.MustParse("h", "title: Great Database Book here")
	o := NewExampleOracle(reg, map[alog.AttrRef][]text.Span{
		{Pred: "ext", Var: "t"}: {exampleSpan(t, d, "Great Database Book")},
	})
	ans := o.Answer(Question{Attr: alog.AttrRef{Pred: "ext", Var: "t"}, Feature: "max-tokens", Kind: feature.KindParametric})
	if !ans.Known || ans.Value != "8" { // 3 tokens *2 + 2
		t.Errorf("max-tokens = %+v", ans)
	}
	ans = o.Answer(Question{Attr: alog.AttrRef{Pred: "ext", Var: "t"}, Feature: "min-value", Kind: feature.KindParametric})
	if ans.Known {
		t.Errorf("min-value should be unknown, got %+v", ans)
	}
}

// A full session driven purely by marked-up examples must converge and
// keep the correct answers.
func TestSessionWithExampleOracle(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	// Mark the price and school of the first page as examples.
	var priceEx, schoolEx text.Span
	for _, tp := range env.Tables["pages"].Tuples {
		d := tp.Cells[0].Assigns[0].Span.Doc()
		if d.ID() == "h2" {
			priceEx = exampleSpan(t, d, "619000")
			schoolEx = exampleSpan(t, d, "Basktall HS")
		}
	}
	oracle := NewExampleOracle(env.Features, map[alog.AttrRef][]text.Span{
		{Pred: "ext", Var: "p"}: {priceEx},
		{Pred: "ext", Var: "s"}: {schoolEx},
	})
	s := NewSession(env, prog, oracle, Config{Strategy: Simulation{}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Truth: h2 (619000) and h3 (725000) exceed 500000.
	if res.FinalTuples < 2 {
		t.Errorf("final tuples = %d\n%s", res.FinalTuples, res.Final)
	}
	covered := 0
	for _, tp := range res.Final.Tuples {
		if tp.Cells[1].CoversTextValue("619000") || tp.Cells[1].CoversTextValue("725000") {
			covered++
		}
	}
	if covered < 2 {
		t.Errorf("correct prices lost: %s", res.Final)
	}
}
