package assistant

// QuestionSpaceForTest exposes questionSpace to the external test package
// (delta_test.go lives in assistant_test so it can import corpus, which
// itself imports assistant).
var QuestionSpaceForTest = questionSpace

// KeyForTest exposes the question's asked/known bookkeeping key.
func (q Question) KeyForTest() string { return q.key() }
