package assistant

import (
	"time"

	"iflex/internal/compact"
	"iflex/internal/engine"
)

// This file is the session surface of live-corpus incremental
// evaluation. A session normally runs over a frozen corpus; when the
// backing document store commits a mutation (store.Mutation), the owner
// folds the resulting delta in with ApplyCorpusDelta and re-runs the
// current program with Reevaluate. The engine replays every tuple
// sourced entirely from unchanged documents out of its displaced memos
// (see engine/corpus.go), so the re-run costs roughly the changed
// fraction of the corpus, not a from-scratch evaluation.

// LiveUpdate reports one full re-evaluation after a corpus delta: the
// complete result table plus this run's share of the engine's reuse
// counters (engine stats accumulate across executions; these fields are
// already differenced against the pre-run snapshot).
type LiveUpdate struct {
	// Final is the complete result over the mutated corpus, with the
	// degradation report attached when the run was cut or documents are
	// quarantined.
	Final       *compact.Table
	FinalTuples int
	// TuplesReused counts tuples replayed from memos (including the
	// displaced corpus priors); TuplesRecomputed counts tuples evaluated
	// afresh. Their ratio is the incremental win.
	TuplesReused     int64
	TuplesRecomputed int64
	// CorpusPriorHits counts displaced cache entries the run picked up.
	CorpusPriorHits int64
	WallS           float64
}

// ApplyCorpusDelta folds one committed corpus mutation into the
// session. refresh, when non-nil, runs first and must rebuild the Env's
// document tables from the mutated store (the caller knows which
// predicates bind which store views — e.g. engine.Env.AddDocTable with
// store.DiskStore.Docs after Commit). The engine context is then
// invalidated for the delta, and the question-scoring subset is redrawn
// so it tracks the live corpus (removed ids drop out, added ids become
// eligible; nothing keyed under the old subset survives the
// invalidation, so the redraw costs no extra reuse).
//
// Like stepping, this may only be called while no evaluation is in
// flight. It is legal on a finalized session: watch mode keeps folding
// deltas in and re-running Reevaluate after the refinement dialogue is
// over.
func (s *Session) ApplyCorpusDelta(d *engine.CorpusDelta, refresh func(*engine.Env)) {
	if refresh != nil {
		refresh(s.Env)
	}
	if d.Empty() {
		return
	}
	s.ctx.ApplyCorpusDelta(d)
	s.subset = s.sampleSubset()
}

// Reevaluate runs the current program over the full corpus under a
// deadline (0 = none) and reports what the run reused versus
// recomputed. After ApplyCorpusDelta this is the incremental
// re-evaluation; the result is byte-identical to what a fresh session
// over the mutated corpus would compute.
func (s *Session) Reevaluate(d time.Duration) (*LiveUpdate, error) {
	unbind := s.bindStep(d)
	defer unbind()
	base := s.ctx.Stats.Snapshot()
	start := time.Now()
	final, _, err := s.execute(false)
	if err != nil {
		return nil, err
	}
	final = s.ctx.AttachDegraded(final)
	st := s.ctx.Stats.Snapshot()
	up := &LiveUpdate{
		Final:            final,
		FinalTuples:      final.NumExpandedTuples(),
		TuplesReused:     st.TuplesReused - base.TuplesReused,
		TuplesRecomputed: st.TuplesRecomputed - base.TuplesRecomputed,
		CorpusPriorHits:  st.CorpusPriorHits - base.CorpusPriorHits,
		WallS:            time.Since(start).Seconds(),
	}
	// Advance the step-mode counter baselines past this run so a later
	// step's iteration log does not absorb the live run's work.
	s.prevEvals = s.ctx.Stats.NodesEvaluated
	s.prevHits = s.ctx.Stats.CacheHits
	s.prevReused = s.ctx.Stats.TuplesReused
	s.prevRecomp = s.ctx.Stats.TuplesRecomputed
	return up, nil
}
