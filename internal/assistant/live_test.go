package assistant_test

// Tests of the live-corpus session surface (live.go): after a store
// mutation, ApplyCorpusDelta + Reevaluate must produce a result
// byte-identical to a fresh session over the mutated corpus while
// replaying most tuples from the displaced memos.

import (
	"fmt"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/engine"
	"iflex/internal/store"
	"iflex/internal/text"
)

const liveJoinSrc = `
a(x, <s>) :- L(x), e1(x, s).
b(y, <t>) :- R(y), e2(y, t).
Q(x, s, y, t) :- a(x, s), b(y, t), similar(s, t).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
`

// buildLiveStore writes a two-group corpus (l-*/r-* ids) with bold
// titles drawn from a shared pool so several pairs join.
func buildLiveStore(t *testing.T, dir string) {
	t.Helper()
	w, err := store.Create(dir, store.Options{ShardDocs: 6})
	if err != nil {
		t.Fatal(err)
	}
	titles := []string{
		"query planning handbook", "join order primer", "index structures",
		"stream systems", "cache coherence", "log structured storage",
		"query planning handbook", "index structures", "stream systems",
		"join order primer",
	}
	for i := 0; i < 10; i++ {
		if err := w.Add(fmt.Sprintf("l-%d", i), fmt.Sprintf("<b>%s</b> left page %d", titles[i], i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := w.Add(fmt.Sprintf("r-%d", i), fmt.Sprintf("<b>%s</b> right page %d", titles[9-i], i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func setLiveTables(env *engine.Env, s *store.DiskStore) {
	var l, r []*text.Document
	for _, d := range s.Docs() {
		if d.ID()[0] == 'l' {
			l = append(l, d)
		} else {
			r = append(r, d)
		}
	}
	env.AddDocTable("L", "x", l)
	env.AddDocTable("R", "y", r)
}

func liveEnv(s *store.DiskStore) *engine.Env {
	env := engine.NewEnv()
	setLiveTables(env, s)
	env.DocIndex = s
	env.Postings = s
	return env
}

// TestSessionApplyCorpusDelta: finalize a store-backed session, mutate
// the store, fold the delta in, and re-evaluate — the live result must
// be byte-identical to a fresh session's over the mutated corpus, with
// most tuples replayed rather than recomputed.
func TestSessionApplyCorpusDelta(t *testing.T) {
	dir := t.TempDir()
	buildLiveStore(t, dir)
	s, err := store.Open(dir, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	prog := alog.MustParse(liveJoinSrc)
	sess := assistant.NewSession(liveEnv(s), prog, assistant.NewMapOracle(nil), assistant.Config{})
	defer sess.Close()
	res1, err := sess.Finalize(0)
	if err != nil {
		t.Fatal(err)
	}
	before := res1.Final.Canonical()

	m, err := s.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("l-1", "<b>cache coherence</b> left page 1 revised"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("r-5"); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("r-10", "<b>index structures</b> fresh right page"); err != nil {
		t.Fatal(err)
	}
	d, err := m.Commit()
	if err != nil {
		t.Fatal(err)
	}

	sess.ApplyCorpusDelta(
		&engine.CorpusDelta{Added: d.Added, Updated: d.Updated, Removed: d.Removed},
		func(env *engine.Env) { setLiveTables(env, s) },
	)
	up, err := sess.Reevaluate(0)
	if err != nil {
		t.Fatal(err)
	}

	fresh := assistant.NewSession(liveEnv(s), alog.MustParse(liveJoinSrc), assistant.NewMapOracle(nil), assistant.Config{})
	defer fresh.Close()
	res2, err := fresh.Finalize(0)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := up.Final.Canonical(), res2.Final.Canonical(); got != want {
		t.Fatalf("live result differs from fresh session:\n%s\nwant:\n%s", got, want)
	}
	if up.Final.Canonical() == before {
		t.Fatal("mutation did not change the result; test corpus too sparse")
	}
	if up.CorpusPriorHits == 0 {
		t.Fatal("re-evaluation picked up no displaced priors")
	}
	if up.TuplesReused == 0 {
		t.Fatal("re-evaluation replayed no tuples")
	}
	if up.TuplesReused < up.TuplesRecomputed {
		t.Fatalf("small delta recomputed more than it reused: reused=%d recomputed=%d",
			up.TuplesReused, up.TuplesRecomputed)
	}
	if up.FinalTuples != res2.FinalTuples {
		t.Fatalf("FinalTuples = %d, fresh session = %d", up.FinalTuples, res2.FinalTuples)
	}
}
