package assistant_test

// Differential suite for the cost-based plan optimizer through the full
// session loop: optimizer on versus off over the T1–T9 question space
// must leave transcripts and final tables byte-identical — at Workers 1
// and 8, delta reuse on and off, and under the fault injector (plan
// rewrites commute with quarantine).

import (
	"testing"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/corpus"
	"iflex/internal/fault"
)

// optSessionConfig mirrors chaosSessionConfig: a data-independent
// question sequence, so every arm asks the same questions.
func optSessionConfig(workers int, delta, optimize bool) assistant.Config {
	return assistant.Config{
		Strategy:          assistant.Sequential{},
		MaxIterations:     3,
		ConvergenceWindow: 100,
		SubsetSeed:        1,
		Workers:           workers,
		DisableDeltaReuse: !delta,
		DisableOptimizer:  !optimize,
	}
}

// TestOptimizerSessionDifferential runs every paper task's refinement
// session with the optimizer off (the pre-optimizer engine, Workers 1,
// delta on) as baseline, then with the optimizer on across Workers 1/8
// and delta on/off: transcripts and final tables must be byte-identical.
func TestOptimizerSessionDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full task sweep")
	}
	for _, task := range corpus.Tasks() {
		task := task
		t.Run(task.ID, func(t *testing.T) {
			t.Parallel()
			const records = 24
			c := task.Generate(records, 1)
			prog := alog.MustParse(task.Program)

			run := func(workers int, delta, optimize bool) (string, string) {
				res, err := assistant.NewSession(task.Env(c), prog, task.Oracle(),
					optSessionConfig(workers, delta, optimize)).Run()
				if err != nil {
					t.Fatalf("workers=%d delta=%v optimize=%v: %v", workers, delta, optimize, err)
				}
				return res.Transcript(), res.Final.String()
			}

			baseTrans, baseTable := run(1, true, false)
			for _, arm := range []struct {
				workers int
				delta   bool
			}{{1, true}, {8, true}, {1, false}, {8, false}} {
				trans, table := run(arm.workers, arm.delta, true)
				if trans != baseTrans {
					t.Errorf("workers=%d delta=%v: optimized transcript differs from unoptimized baseline:\n%s\n---\n%s",
						arm.workers, arm.delta, trans, baseTrans)
				}
				if table != baseTable {
					t.Errorf("workers=%d delta=%v: optimized final table differs from unoptimized baseline",
						arm.workers, arm.delta)
				}
			}
		})
	}
}

// TestOptimizerSessionFaultDifferential reruns the chaos-session
// determinism check with the optimizer enabled: under injected pfunc
// faults with quarantine, the optimized session must match the
// unoptimized faulted session byte-for-byte — surviving results are
// those of the corpus minus the quarantined documents regardless of
// plan shape. (The quarantine set itself may only shrink under
// optimization, because fused joins probe fewer pairs; on the tasks as
// written no rewrite fires, so here it must be unchanged too.)
func TestOptimizerSessionFaultDifferential(t *testing.T) {
	const records = 40
	task, err := corpus.TaskByID("T9")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(records, 1)
	prog := alog.MustParse(task.Program)
	inj := fault.New(42, fault.Rule{Site: "pfunc", Mode: fault.ModeError, Num: 1, Den: 8})

	run := func(workers int, delta, optimize bool) *assistant.Result {
		env := task.Env(c)
		env.FaultHook = inj.Hook()
		cfg := optSessionConfig(workers, delta, optimize)
		cfg.QuarantineFaults = true
		res, err := assistant.NewSession(env, prog, task.Oracle(), cfg).Run()
		if err != nil {
			t.Fatalf("workers=%d delta=%v optimize=%v: %v", workers, delta, optimize, err)
		}
		if res.Degraded == nil || len(res.Degraded.Quarantined) == 0 {
			t.Fatalf("workers=%d delta=%v optimize=%v: no quarantine", workers, delta, optimize)
		}
		return res
	}

	base := run(1, true, false)
	baseQ := base.Degraded.QuarantinedDocs()
	for _, arm := range []struct {
		workers int
		delta   bool
	}{{1, true}, {8, true}, {1, false}, {8, false}} {
		res := run(arm.workers, arm.delta, true)
		if res.Transcript() != base.Transcript() {
			t.Errorf("workers=%d delta=%v: faulted optimized transcript differs", arm.workers, arm.delta)
		}
		if res.Final.String() != base.Final.String() {
			t.Errorf("workers=%d delta=%v: faulted optimized final table differs", arm.workers, arm.delta)
		}
		q := res.Degraded.QuarantinedDocs()
		baseSet := map[string]bool{}
		for _, id := range baseQ {
			baseSet[id] = true
		}
		for _, id := range q {
			if !baseSet[id] {
				t.Errorf("workers=%d delta=%v: optimized run quarantined %s, absent from the unoptimized quarantine %v",
					arm.workers, arm.delta, id, baseQ)
			}
		}
	}
}
