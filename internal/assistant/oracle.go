package assistant

import (
	"iflex/internal/alog"
	"iflex/internal/feature"
)

// MapOracle is a ground-truth-backed oracle: the simulated developer of
// the experiments. Answers maps attribute keys ("pred.var") to feature
// answers. Boolean questions with no entry are answered "no" only when
// DefaultNo lists the attribute (the developer can see at a glance that
// the attribute is not, say, bold); otherwise, and for parametric
// questions with no entry, the answer is "I do not know".
type MapOracle struct {
	Answers map[string]map[string]string
	// DefaultNo answers unlisted boolean questions with "no" for these
	// attribute keys.
	DefaultNo map[string]bool
}

// NewMapOracle builds an oracle from a nested answers map.
func NewMapOracle(answers map[string]map[string]string) *MapOracle {
	return &MapOracle{Answers: answers}
}

// Answer implements Oracle.
func (o *MapOracle) Answer(q Question) Answer {
	key := q.Attr.String()
	if m, ok := o.Answers[key]; ok {
		if v, ok := m[q.Feature]; ok {
			if v == feature.Unknown {
				return DontKnow()
			}
			return Know(v)
		}
	}
	if q.Kind == feature.KindBoolean && o.DefaultNo[key] {
		return Know(feature.No)
	}
	return DontKnow()
}

// Candidates implements CandidateProvider: for parametric features the
// only simulated candidate is the true answer (a developer inspecting the
// data would propose values near the truth); boolean features use
// BoolValues via the strategy.
func (o *MapOracle) Candidates(attr alog.AttrRef, featureName string) []string {
	if m, ok := o.Answers[attr.String()]; ok {
		if v, ok := m[featureName]; ok && v != feature.Unknown {
			return []string{v}
		}
	}
	return nil
}
