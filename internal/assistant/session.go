package assistant

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/engine"
	"iflex/internal/engine/opt"
	"iflex/internal/store"
)

// ExplicitZero is a sentinel for Config fields whose zero value selects a
// default: setting Alpha or SubsetFraction to ExplicitZero (any negative
// value works) means a literal 0 rather than "use the default".
const ExplicitZero = -1

// Config tunes a refinement session. Zero values select the defaults
// matching the paper.
type Config struct {
	// Strategy selects questions; default Sequential.
	Strategy Strategy
	// Alpha is the probability of an "I do not know" answer assumed by the
	// simulation strategy (default 0.1). Use ExplicitZero for a literal
	// α = 0 (the oracle always answers).
	Alpha float64
	// ConvergenceWindow is k: counts stable for k iterations triggers the
	// convergence notification (paper: 3).
	ConvergenceWindow int
	// QuestionsPerIteration is how many questions are asked between
	// executions (default 2, matching the roughly 2-questions-per-iteration
	// cadence of Table 4).
	QuestionsPerIteration int
	// MaxIterations is a safety bound (default 50).
	MaxIterations int
	// SubsetFraction overrides the subset size (0 = automatic 5–30%
	// depending on corpus size, Section 5.2). Use ExplicitZero for the
	// minimal subset: a single document per extensional table.
	SubsetFraction float64
	// SubsetSeed varies the deterministic subset sample.
	SubsetSeed uint64
	// Workers bounds the worker pool that fans out question simulations
	// and engine evaluation (0 = one worker per GOMAXPROCS slot, 1 =
	// fully serial) — the same resolution rule as engine.Context, so the
	// fan-out never oversubscribes the pool under a CPU quota.
	// Transcripts and results are byte-identical across worker counts.
	Workers int
	// CacheBudget bounds the session's reuse cache in bytes (0 =
	// unlimited); see engine.Context.CacheBudget. Long sessions and wide
	// simulation fan-outs evict least-recently-used intermediate tables
	// instead of growing without limit. Results are unaffected.
	CacheBudget int64
	// SpillDir, when set with a CacheBudget, demotes evicted result
	// tables to files under this directory instead of dropping them: a
	// later request for the same table reloads it from disk rather than
	// re-evaluating (engine.Context.Spill). Results are unaffected; the
	// directory is cleaned up when the session's Close runs.
	SpillDir string
	// DisableDeltaReuse turns off incremental (delta) evaluation between
	// iterations and simulation candidates, forcing every changed operator
	// to recompute from its full inputs. Results are byte-identical either
	// way; this exists for benchmarking the delta win and as an escape
	// hatch.
	DisableDeltaReuse bool
	// DisableOptimizer turns off the cost-based plan optimizer, executing
	// plans exactly as compiled. Results are byte-identical either way
	// (every rewrite is semantics-preserving down to tuple order and
	// Maybe flags); this exists for benchmarking the optimizer win and as
	// an escape hatch.
	DisableOptimizer bool
	// Deadline bounds execution in wall-clock time (0 = no deadline).
	// Run binds it once over the whole session loop: on expiry the session
	// stops asking questions, evaluation cuts at operator tuple/chunk
	// boundaries, and Run returns its best partial result — still
	// superset-correct over the processed documents, with Result.Degraded
	// naming what was left out. The step-wise API (Step/Finalize) instead
	// re-arms it per step, so a long-lived interactive session gets a fresh
	// window for every step instead of expiring mid-conversation.
	Deadline time.Duration
	// Trace enables per-operator tracing from the first execution, so
	// Explain can render an EXPLAIN ANALYZE tree at any point of the
	// session (the service's -explain streaming uses this).
	Trace bool
	// QuarantineFaults switches the engine to per-document fault
	// isolation: a panic or error raised while processing a document
	// quarantines that document (after MaxDocRetries re-attempts for
	// transient errors) instead of failing the session. Quarantined
	// document IDs and causes surface in Result.Degraded.
	QuarantineFaults bool
	// MaxDocRetries bounds re-attempts before a faulting document is
	// quarantined (0 = one retry; negative = none; panics are never
	// retried). Only meaningful with QuarantineFaults.
	MaxDocRetries int
}

func (c Config) withDefaults() Config {
	if c.Strategy == nil {
		c.Strategy = Sequential{}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.Alpha < 0:
		c.Alpha = 0
	case c.Alpha == 0:
		c.Alpha = 0.1
	}
	if c.ConvergenceWindow == 0 {
		c.ConvergenceWindow = 3
	}
	if c.QuestionsPerIteration == 0 {
		c.QuestionsPerIteration = 2
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 50
	}
	return c
}

// QA records one question, its answer, and whether a constraint was added.
type QA struct {
	Question Question
	Answer   Answer
}

// Iteration logs one execute-refine round.
type Iteration struct {
	N           int
	Tuples      int    // expanded result size
	Assignments int    // assignment count (the convergence monitor's 2nd signal)
	Mode        string // "subset" or "full"
	Questions   []QA
	// Evals and CacheHits are the engine-counter deltas attributable to
	// this iteration (including its question simulations): how many plan
	// nodes were computed fresh versus served by the reuse cache. Both
	// are deterministic across worker counts.
	Evals     int64
	CacheHits int64
	// TuplesReused and TuplesRecomputed are the delta-evaluation counter
	// deltas for this iteration: input tuples replayed from a previous
	// plan version's memo versus computed fresh (also deterministic).
	// WallS is the iteration's wall-clock seconds (not deterministic; it
	// is reported by the reuse bench, never by Transcript).
	TuplesReused     int64
	TuplesRecomputed int64
	WallS            float64
}

// Result is the outcome of a session run.
type Result struct {
	Final          *compact.Table
	FinalTuples    int
	Iterations     []Iteration
	QuestionsAsked int
	Converged      bool
	Stats          engine.Stats
	// Degraded is non-nil when the run hit its deadline or quarantined
	// documents (also attached to Final); nil for a clean, complete run.
	Degraded *compact.Degraded
}

// Session drives the iFlex loop: execute the current approximate program,
// monitor convergence, enlist the strategy for the next questions, fold
// the oracle's answers back into the program, repeat (Sections 2.2.4, 5).
type Session struct {
	Env    *engine.Env
	Prog   *alog.Program
	Oracle Oracle
	Config Config

	Alpha float64 // resolved from Config; read by strategies

	ctx      *engine.Context
	subset   map[string]bool
	asked    map[string]bool
	sizes    []int // per-iteration expanded sizes (subset mode)
	assigns  []int
	// cuts marks iterations whose subset execution was cut short by a
	// fired deadline: their partial counts are recorded but never count as
	// evidence of convergence (a truncated size matching a previous one
	// says nothing about stability).
	cuts     []bool
	prevPlan *engine.Plan // last executed plan, the delta predecessor

	// Step-mode state (see step.go). stepRes accumulates the iteration log
	// across Step calls; pending holds the questions returned by the last
	// Step, awaiting the next call's answers; iterN counts executed subset
	// iterations; stepDone blocks further execution once the loop ended;
	// finished flips when Finalize ran. The counter baselines and iterStart
	// mirror Run's record closure.
	stepRes    *Result
	pending    []Question
	iterN      int
	stepDone   bool
	finished   bool
	prevEvals  int64
	prevHits   int64
	prevReused int64
	prevRecomp int64
	iterStart  time.Time

	// trialPrev remembers each simulated candidate's previous trial plan
	// (keyed by attr/feature/value), so re-simulating the same candidate in
	// a later iteration links to its own last incarnation: the inserted
	// constraint node then replays tuples whose constrained attribute the
	// intervening answers did not touch. Guarded by trialMu (simulations
	// fan out across goroutines).
	trialMu   sync.Mutex
	trialPrev map[string]engine.Node

	// spill owns the on-disk demotion files under Config.SpillDir; Close
	// deletes them.
	spill *store.Spill

	// costModel and canon drive the plan optimizer (nil when
	// DisableOptimizer is set): the model refines reported cost estimates
	// from the session's own execution statistics, the canon table shares
	// structurally identical subplans across the base plan and all of an
	// iteration's simulation trials (cross-trial CSE). The canon resets at
	// each iteration boundary.
	costModel *opt.Model
	canon     *engine.CanonTable
}

// NewSession prepares a session; the program is cloned so the caller's
// copy is never mutated.
func NewSession(env *engine.Env, prog *alog.Program, oracle Oracle, cfg Config) *Session {
	cfg = cfg.withDefaults()
	s := &Session{
		Env:    env,
		Prog:   prog.Clone(),
		Oracle: oracle,
		Config: cfg,
		Alpha:  cfg.Alpha,
		ctx:    engine.NewContext(env),
		asked:  map[string]bool{},
	}
	s.ctx.Workers = cfg.Workers
	s.ctx.CacheBudget = cfg.CacheBudget
	if cfg.SpillDir != "" && cfg.CacheBudget > 0 {
		// Spilling is a pure demotion path: if the directory cannot be
		// created the session just re-evaluates evicted tables, so a spill
		// setup failure degrades performance, never the session.
		if sp, err := store.NewSpill(cfg.SpillDir, env.DocResolver()); err == nil {
			s.ctx.Spill = sp
			s.spill = sp
		}
	}
	if cfg.QuarantineFaults {
		s.ctx.FaultPolicy = engine.QuarantineFaults
		s.ctx.MaxDocRetries = cfg.MaxDocRetries
	}
	if !cfg.DisableDeltaReuse {
		s.ctx.EnableDelta()
	}
	if !cfg.DisableOptimizer {
		s.costModel = opt.NewModel()
		s.canon = engine.NewCanonTable()
	}
	if cfg.Trace {
		s.ctx.StartTrace()
	}
	s.subset = s.sampleSubset()
	return s
}

// Close releases session-owned resources: tables demoted to disk under
// Config.SpillDir are deleted. Safe to call more than once; sessions
// without a spill directory need no Close.
func (s *Session) Close() error {
	if s.spill != nil {
		return s.spill.Close()
	}
	return nil
}

// optimize runs the cost-based rewrite pass over a freshly compiled plan
// (identity when the optimizer is disabled). Rewrite decisions are
// deterministic — purely structural plus static cardinalities — so the
// base plan and every trial plan of an iteration rewrite in lockstep and
// delta links between successive optimized plans line up exactly as they
// do for unoptimized ones.
func (s *Session) optimize(plan *engine.Plan) *engine.Plan {
	if s.costModel == nil {
		return plan
	}
	return opt.Optimize(plan, s.Env, s.costModel, s.canon)
}

// sampleSubset draws a deterministic sample of document IDs across all
// extensional tables: 30% for small corpora down to 5% for large ones
// (Section 5.2). Every table keeps at least one document; a negative
// SubsetFraction (ExplicitZero) therefore yields the minimal subset of
// one document per table.
func (s *Session) sampleSubset() map[string]bool {
	subset := map[string]bool{}
	for _, table := range s.Env.Tables {
		var ids []string
		seen := map[string]bool{}
		for _, tp := range table.Tuples {
			for _, c := range tp.Cells {
				for _, a := range c.Assigns {
					id := a.Span.Doc().ID()
					if !seen[id] {
						seen[id] = true
						ids = append(ids, id)
					}
				}
			}
		}
		sort.Strings(ids)
		frac := s.Config.SubsetFraction
		if frac == 0 {
			switch {
			case len(ids) <= 20:
				frac = 1.0
			case len(ids) <= 100:
				frac = 0.3
			case len(ids) <= 1000:
				frac = 0.1
			default:
				frac = 0.05
			}
		}
		want := int(float64(len(ids)) * frac)
		if want < 1 {
			want = 1
		}
		// Deterministic pseudo-random pick: hash id with the seed.
		type scored struct {
			id string
			h  uint64
		}
		ss := make([]scored, len(ids))
		for i, id := range ids {
			ss[i] = scored{id: id, h: fnvMix(id, s.Config.SubsetSeed)}
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].h < ss[j].h })
		for i := 0; i < want; i++ {
			subset[ss[i].id] = true
		}
	}
	return subset
}

// fnvMix hashes a string with a seed (FNV-1a with seeded basis).
func fnvMix(s string, seed uint64) uint64 {
	h := uint64(14695981039346656037) ^ (seed * 0x9E3779B97F4A7C15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// execute compiles and runs the current program; subset selects the
// evaluation mode. Alongside the result it returns the total assignments
// across the whole extraction plan — the convergence monitor's second
// signal (Section 5.1 tracks "the number of assignments produced by the
// extraction process", which a refinement perturbs even when the final
// projection does not change yet).
func (s *Session) execute(onSubset bool) (*compact.Table, int, error) {
	plan, err := engine.Compile(s.Prog, s.Env)
	if err != nil {
		return nil, 0, err
	}
	// Iteration boundary: drop last round's interned subplans (this
	// round's base plan and trials re-intern against a fresh table), then
	// optimize. The optimized plan is what executes, links, and becomes
	// the next predecessor.
	if s.canon != nil {
		s.canon.Reset()
	}
	plan = s.optimize(plan)
	// Link this plan version to its predecessor for delta evaluation,
	// discarding the links accumulated by the previous round's question
	// simulations (their trial plans are no longer anyone's predecessor).
	s.ctx.ResetDelta()
	if s.prevPlan != nil {
		s.ctx.RegisterDelta(s.prevPlan.Root, plan.Root)
	}
	s.prevPlan = plan
	if onSubset {
		s.ctx.SetDocFilter(s.subset)
	} else {
		s.ctx.SetDocFilter(nil)
	}
	table, err := plan.Execute(s.ctx)
	if err != nil {
		return nil, 0, err
	}
	assigns, err := engine.SumAssignments(s.ctx, plan.Root)
	if err != nil {
		return nil, 0, err
	}
	// Refine the cost model from this execution: observed per-node
	// cardinalities and per-operator timings. Adopted here — before any
	// of this iteration's trials is optimized — every trial reads one
	// frozen, scheduling-independent snapshot; and refinement only
	// touches reported estimates, never rewrite decisions.
	if s.costModel != nil {
		s.costModel.AdoptRows(s.ctx.ObservedRows())
		s.costModel.RefineFromSnapshot(s.ctx.Stats.Snapshot())
	}
	return table, assigns, nil
}

// lastSize returns the most recent subset result size (for the simulation
// strategy's "I do not know" term); 0 before the first execution.
func (s *Session) lastSize() int {
	if len(s.sizes) == 0 {
		return 0
	}
	return s.sizes[len(s.sizes)-1]
}

// useSubset switches the shared context to subset evaluation. Strategies
// must call it once before fanning simulate calls out across goroutines:
// DocFilter is a plain field on the shared context, so it may only be
// written while no evaluations are in flight.
func (s *Session) useSubset() { s.ctx.SetDocFilter(s.subset) }

// simulate returns |exec(g(P, (a, f, v)))| over the subset: the result
// size if the developer answered v (Section 5.1). It shares the session's
// reuse cache, so unchanged plan subtrees are not recomputed — and the
// cache's single-flight deduplication makes concurrent simulate calls
// safe. The caller must have selected subset mode via useSubset.
func (s *Session) simulate(q Question, v string) (int, error) {
	trial := s.Prog.Clone()
	if err := trial.AddConstraint(q.Attr, q.Feature, v); err != nil {
		return 0, err
	}
	plan, err := engine.Compile(trial, s.Env)
	if err != nil {
		return 0, err
	}
	// Optimize the trial exactly like the base plan (deterministic
	// rewrites keep the two in lockstep); interning against the shared
	// canon table makes subtrees the trials have in common — and share
	// with the base plan — pointer-identical, so binary-operator delta
	// memos and table adoption transfer across trials (cross-trial CSE).
	plan = s.optimize(plan)
	// The trial plan is one constraint away from the last executed plan:
	// link them so the changed ancestors evaluate as deltas (RegisterDelta
	// is safe under the strategy's concurrent fan-out). Then link the trial
	// to its own previous incarnation, registered second so its links win
	// for nodes both walks map — the old trial is the closer predecessor.
	if s.prevPlan != nil {
		s.ctx.RegisterDelta(s.prevPlan.Root, plan.Root)
	}
	tkey := q.Attr.String() + "\x00" + q.Feature + "\x00" + v
	s.trialMu.Lock()
	prevTrial := s.trialPrev[tkey]
	if s.trialPrev == nil {
		s.trialPrev = map[string]engine.Node{}
	}
	s.trialPrev[tkey] = plan.Root
	s.trialMu.Unlock()
	if prevTrial != nil {
		s.ctx.RegisterDelta(prevTrial, plan.Root)
	}
	res, err := plan.Execute(s.ctx)
	if err != nil {
		return 0, err
	}
	return res.NumExpandedTuples(), nil
}

// converged reports whether the last k iterations produced identical tuple
// and assignment counts (Section 5.1, "Notifying the Developer of
// Convergence"). Iterations whose execution was cut by a fired deadline
// never count: their partial sizes are not evidence of stability, so an
// expired step cannot poison the convergence monitor of later steps.
func (s *Session) converged() bool {
	k := s.Config.ConvergenceWindow
	if len(s.sizes) < k {
		return false
	}
	for i := len(s.sizes) - k; i < len(s.sizes); i++ {
		if i < len(s.cuts) && s.cuts[i] {
			return false
		}
	}
	for i := len(s.sizes) - k + 1; i < len(s.sizes); i++ {
		if s.sizes[i] != s.sizes[i-1] || s.assigns[i] != s.assigns[i-1] {
			return false
		}
	}
	return true
}

// Run executes the full session loop until convergence (or the iteration
// bound), then computes the complete result in reuse (full) mode.
func (s *Session) Run() (*Result, error) {
	res := &Result{}
	if d := s.Config.Deadline; d > 0 {
		// Best-effort mode: when the deadline fires, in-flight operator
		// loops cut at tuple/chunk granularity and return their partial
		// output instead of an error; the loop below then stops asking
		// questions and jumps straight to the final (partial) result.
		c, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		s.ctx.BindCancel(c, engine.CancelBestEffort)
		defer s.ctx.Unbind()
	}
	// record stamps the iteration with the engine-counter deltas since the
	// previous one (fresh evaluations vs reuse-cache hits, delta-replayed
	// vs recomputed tuples) plus its wall time, and appends it.
	var prevEvals, prevHits, prevReused, prevRecomp int64
	iterStart := time.Now()
	record := func(log Iteration) {
		log.Evals = s.ctx.Stats.NodesEvaluated - prevEvals
		log.CacheHits = s.ctx.Stats.CacheHits - prevHits
		log.TuplesReused = s.ctx.Stats.TuplesReused - prevReused
		log.TuplesRecomputed = s.ctx.Stats.TuplesRecomputed - prevRecomp
		prevEvals += log.Evals
		prevHits += log.CacheHits
		prevReused += log.TuplesReused
		prevRecomp += log.TuplesRecomputed
		log.WallS = time.Since(iterStart).Seconds()
		iterStart = time.Now()
		res.Iterations = append(res.Iterations, log)
	}
	for iter := 1; iter <= s.Config.MaxIterations; iter++ {
		table, assigns, err := s.execute(true)
		if err != nil {
			return nil, err
		}
		size := table.NumExpandedTuples()
		s.sizes = append(s.sizes, size)
		s.assigns = append(s.assigns, assigns)
		s.cuts = append(s.cuts, s.ctx.Cancelled())
		log := Iteration{N: iter, Tuples: size, Assignments: assigns, Mode: "subset"}

		if s.ctx.Cancelled() {
			record(log)
			break
		}
		if s.converged() {
			record(log)
			break
		}

		space := questionSpace(s.Prog, s.Env.Features, s.asked)
		if len(space) == 0 {
			record(log)
			break
		}
		questions, err := s.Config.Strategy.Next(s, space, s.Config.QuestionsPerIteration)
		if err != nil {
			return nil, err
		}
		if len(questions) == 0 {
			record(log)
			break
		}
		for _, q := range questions {
			ans := s.Oracle.Answer(q)
			s.asked[q.key()] = true
			res.QuestionsAsked++
			if v, ok := constraintValue(ans); ok {
				if err := s.Prog.AddConstraint(q.Attr, q.Feature, v); err != nil {
					return nil, fmt.Errorf("assistant: applying answer to %s: %w", q, err)
				}
			}
			log.Questions = append(log.Questions, QA{Question: q, Answer: ans})
		}
		record(log)
	}
	res.Converged = s.converged()

	// Switch to reuse mode: compute the complete result over all documents.
	final, _, err := s.execute(false)
	if err != nil {
		return nil, err
	}
	final = s.ctx.AttachDegraded(final)
	res.Final = final
	res.FinalTuples = final.NumExpandedTuples()
	res.Degraded = final.Degraded
	record(Iteration{
		N: len(res.Iterations) + 1, Tuples: res.FinalTuples,
		Assignments: final.NumAssignments(), Mode: "full",
	})
	res.Stats = s.ctx.Stats
	return res, nil
}

// Program returns the session's current (refined) program.
func (s *Session) Program() *alog.Program { return s.Prog }

// Transcript renders the session result as the paper's Table 4 row style:
// one line per iteration with counts, mode, and the questions asked.
func (r *Result) Transcript() string {
	var b strings.Builder
	for _, it := range r.Iterations {
		fmt.Fprintf(&b, "iteration %d (%s): %d tuples, %d assignments, %d evals, %d cache hits\n",
			it.N, it.Mode, it.Tuples, it.Assignments, it.Evals, it.CacheHits)
		for _, qa := range it.Questions {
			ans := qa.Answer.Value
			if !qa.Answer.Known {
				ans = "I do not know"
			}
			fmt.Fprintf(&b, "  %s -> %s\n", qa.Question, ans)
		}
	}
	fmt.Fprintf(&b, "converged=%v, %d questions, final %d tuples\n",
		r.Converged, r.QuestionsAsked, r.FinalTuples)
	return b.String()
}
