package assistant

import (
	"strings"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/feature"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Strategy == nil || c.Alpha != 0.1 || c.ConvergenceWindow != 3 ||
		c.QuestionsPerIteration != 2 || c.MaxIterations != 50 {
		t.Errorf("defaults = %+v", c)
	}
	// Explicit values survive.
	c = Config{Alpha: 0.5, ConvergenceWindow: 5, QuestionsPerIteration: 1, MaxIterations: 7}.withDefaults()
	if c.Alpha != 0.5 || c.ConvergenceWindow != 5 || c.QuestionsPerIteration != 1 || c.MaxIterations != 7 {
		t.Errorf("explicit config overridden: %+v", c)
	}
}

func TestMaxIterationsBound(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	// An oracle that never answers: counts never change, but the session
	// must still terminate within MaxIterations even with window 100.
	oracle := InteractiveOracleFunc(func(Question) Answer { return DontKnow() })
	s := NewSession(env, prog, oracle, Config{MaxIterations: 4, ConvergenceWindow: 100})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	subsetIters := 0
	for _, it := range res.Iterations {
		if it.Mode == "subset" {
			subsetIters++
		}
	}
	if subsetIters > 4 {
		t.Errorf("iterations = %d, want <= 4", subsetIters)
	}
}

// InteractiveOracleFunc adapts a function to the Oracle interface for tests.
type InteractiveOracleFunc func(Question) Answer

// Answer implements Oracle.
func (f InteractiveOracleFunc) Answer(q Question) Answer { return f(q) }

func TestQuestionSpaceExhaustionEndsSession(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	// Answer everything "don't know": the space drains at 2 questions per
	// iteration and the session ends when it is empty (or converges).
	oracle := InteractiveOracleFunc(func(Question) Answer { return DontKnow() })
	s := NewSession(env, prog, oracle, Config{ConvergenceWindow: 1000, MaxIterations: 1000})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	space := len(questionSpace(alog.MustParse(testProg), env.Features, map[string]bool{}))
	if res.QuestionsAsked != space {
		t.Errorf("asked %d questions, space holds %d", res.QuestionsAsked, space)
	}
}

func TestQuestionsPerIteration(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	s := NewSession(env, prog, testOracle(), Config{QuestionsPerIteration: 1})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iterations {
		if len(it.Questions) > 1 {
			t.Errorf("iteration %d asked %d questions", it.N, len(it.Questions))
		}
	}
}

func TestAnswersAreAppliedAsConstraints(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	s := NewSession(env, prog, testOracle(), Config{})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	refined := s.Program()
	// The italic-font answer for p must be in the refined program.
	if !refined.HasConstraint(alog.AttrRef{Pred: "ext", Var: "p"}, "italic-font") {
		t.Errorf("refined program misses italic constraint:\n%s", refined)
	}
	// "I do not know" answers must not add constraints.
	for _, r := range refined.Rules {
		for _, l := range r.Body {
			if l.Kind == alog.LitConstraint && l.Cons.Value == feature.Unknown {
				t.Errorf("unknown answer recorded as constraint: %v", l)
			}
		}
	}
}

func TestSimulationSharesReuseCache(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	s := NewSession(env, prog, testOracle(), Config{Strategy: Simulation{}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Simulations compile trial programs whose untouched subtrees must hit
	// the shared cache; without reuse the hit count would be near zero.
	if res.Stats.CacheHits < res.Stats.NodesEvaluated/4 {
		t.Errorf("reuse ineffective: %d hits vs %d evals", res.Stats.CacheHits, res.Stats.NodesEvaluated)
	}
}

func TestSequentialRanksJoinAttributesFirst(t *testing.T) {
	// In a program with a similarity join, the joined attributes must
	// outrank the merely-compared ones.
	prog := alog.MustParse(`
a(x, <t>, <v>) :- A(x), extA(x, t, v).
b(y, <u>) :- B(y), extB(y, u).
Q(t) :- a(x, t, v), b(y, u), similar(t, u), v > 10.
extA(x, t, v) :- from(x, t), from(x, v).
extB(y, u) :- from(y, u).
`)
	rank := attrImportance(prog)
	tRank := rank[alog.AttrRef{Pred: "extA", Var: "t"}]
	vRank := rank[alog.AttrRef{Pred: "extA", Var: "v"}]
	if tRank <= vRank {
		t.Errorf("join attribute t (%d) should outrank comparison attribute v (%d)", tRank, vRank)
	}
}

func TestTranscriptRendering(t *testing.T) {
	env := testEnv()
	prog := alog.MustParse(testProg)
	s := NewSession(env, prog, testOracle(), Config{})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Transcript()
	for _, want := range []string{"iteration 1 (subset)", "(full)", "converged="} {
		if !strings.Contains(tr, want) {
			t.Errorf("transcript missing %q:\n%s", want, tr)
		}
	}
}
