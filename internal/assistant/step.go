package assistant

import (
	"context"
	"fmt"
	"time"

	"iflex/internal/compact"
	"iflex/internal/engine"
)

// This file is the session's step-wise (interactive/service) API. Run
// drives the whole execute-ask-refine loop against an Oracle in one call;
// a long-lived service instead steps the loop one iteration at a time,
// shipping questions to a remote developer and folding their answers back
// in whenever they arrive. The decomposition mirrors Run exactly — same
// execution order, same counter attribution, same transcript — so a
// session stepped to completion is byte-identical to a Run with the same
// answers (pinned by TestStepMatchesRun and the server's identity test).
//
// Deadlines differ deliberately: Run binds Config.Deadline once over the
// whole loop, while Step re-arms it per call. A service session may live
// for hours between steps; binding once would leave every later step
// running against a long-expired deadline (the stale-binding bug this API
// fixes). Each Step gets a fresh window, and an expired step can poison
// neither the reuse cache (post-cut results are never cached) nor the
// convergence monitor (cut iterations are excluded — see converged).

// StepResult reports one interactive step: the iteration just executed,
// the next questions to answer, and whether the loop is over.
type StepResult struct {
	// Iteration is the subset iteration this step executed (zero-valued
	// when Done was reached without executing).
	Iteration Iteration
	// Questions are the next-effort questions to answer on the following
	// Step call (positionally). Empty when Done.
	Questions []Question
	// Converged reports the convergence monitor's current verdict.
	Converged bool
	// Done means the loop ended (convergence, question space exhausted, or
	// the iteration bound): call Finalize for the full result. A fired
	// per-step deadline does NOT end the loop — that step comes back
	// degraded with no questions, and the next step gets a fresh window.
	// Further Step calls after Done keep returning Done without executing,
	// though their answers are still folded into the program.
	Done bool
	// Degraded is non-nil when this step's deadline expired or documents
	// were quarantined during it (see compact.Degraded).
	Degraded *compact.Degraded
}

// ensureStepState lazily initialises the step-mode accumulator.
func (s *Session) ensureStepState() {
	if s.stepRes == nil {
		s.stepRes = &Result{}
		s.iterStart = time.Now()
	}
}

// recordStep stamps log with the engine-counter deltas since the previous
// iteration and appends it — the step-mode twin of Run's record closure.
func (s *Session) recordStep(log Iteration) {
	log.Evals = s.ctx.Stats.NodesEvaluated - s.prevEvals
	log.CacheHits = s.ctx.Stats.CacheHits - s.prevHits
	log.TuplesReused = s.ctx.Stats.TuplesReused - s.prevReused
	log.TuplesRecomputed = s.ctx.Stats.TuplesRecomputed - s.prevRecomp
	s.prevEvals += log.Evals
	s.prevHits += log.CacheHits
	s.prevReused += log.TuplesReused
	s.prevRecomp += log.TuplesRecomputed
	log.WallS = time.Since(s.iterStart).Seconds()
	s.iterStart = time.Now()
	s.stepRes.Iterations = append(s.stepRes.Iterations, log)
}

// bindStep re-arms the best-effort deadline for one step and returns the
// unbind function. It always binds — a never-firing background context
// when d is zero — because BindCancel is also what resets the degradation
// report: without it, a deadline that expired two steps ago would still be
// attached to every later step's (complete) result.
func (s *Session) bindStep(d time.Duration) func() {
	c, cancel := context.Background(), func() {}
	if d > 0 {
		c, cancel = context.WithTimeout(c, d)
	}
	s.ctx.BindCancel(c, engine.CancelBestEffort)
	return func() {
		s.ctx.Unbind()
		cancel()
	}
}

// applyAnswers folds the answers to the previous step's pending questions
// into the program, mirroring Run's answer loop: every pending question is
// marked asked and counted; known answers become domain constraints and
// are logged on the iteration that asked them. Fewer answers than pending
// questions treats the remainder as "I do not know"; more is an error.
func (s *Session) applyAnswers(answers []Answer) error {
	if len(answers) > len(s.pending) {
		return fmt.Errorf("assistant: %d answers for %d pending questions", len(answers), len(s.pending))
	}
	for i, q := range s.pending {
		ans := DontKnow()
		if i < len(answers) {
			ans = answers[i]
		}
		s.asked[q.key()] = true
		s.stepRes.QuestionsAsked++
		if v, ok := constraintValue(ans); ok {
			if err := s.Prog.AddConstraint(q.Attr, q.Feature, v); err != nil {
				return fmt.Errorf("assistant: applying answer to %s: %w", q, err)
			}
		}
		if n := len(s.stepRes.Iterations); n > 0 {
			it := &s.stepRes.Iterations[n-1]
			it.Questions = append(it.Questions, QA{Question: q, Answer: ans})
		}
	}
	s.pending = nil
	return nil
}

// Step advances the session one iteration under a per-step deadline of
// Config.Deadline (re-armed each call; see StepDeadline).
func (s *Session) Step(answers []Answer) (*StepResult, error) {
	return s.StepDeadline(s.Config.Deadline, answers)
}

// StepDeadline folds the answers to the previous step's questions into
// the program, executes one subset iteration, and returns the next
// questions. The deadline d (0 = none) covers this call alone: every step
// of a long-lived session gets a fresh window, and a step that expired
// degrades that step only — its partial counts are excluded from the
// convergence monitor and its post-cut results are never cached, so the
// next step starts clean.
func (s *Session) StepDeadline(d time.Duration, answers []Answer) (*StepResult, error) {
	if s.finished {
		return nil, fmt.Errorf("assistant: session already finalized")
	}
	s.ensureStepState()
	unbind := s.bindStep(d)
	defer unbind()
	if err := s.applyAnswers(answers); err != nil {
		return nil, err
	}
	if s.stepDone {
		return &StepResult{Converged: s.converged(), Done: true}, nil
	}
	s.iterN++
	if s.iterN > s.Config.MaxIterations {
		s.stepDone = true
		return &StepResult{Converged: s.converged(), Done: true}, nil
	}

	table, assigns, err := s.execute(true)
	if err != nil {
		return nil, err
	}
	size := table.NumExpandedTuples()
	s.sizes = append(s.sizes, size)
	s.assigns = append(s.assigns, assigns)
	s.cuts = append(s.cuts, s.ctx.Cancelled())
	log := Iteration{N: s.iterN, Tuples: size, Assignments: assigns, Mode: "subset"}
	res := &StepResult{Iteration: log}

	stop := func() (*StepResult, error) {
		s.stepDone = true
		s.recordStep(log)
		res.Iteration = s.stepRes.Iterations[len(s.stepRes.Iterations)-1]
		res.Converged = s.converged()
		res.Done = true
		res.Degraded = s.ctx.DegradedReport()
		return res, nil
	}
	if s.ctx.Cancelled() {
		// This step's deadline fired: its output is partial, so asking
		// questions scored on it would be noise. Unlike Run — whose one
		// deadline covers the whole loop, so expiry ends it — the step gets
		// a fresh window next call; only the iteration budget still bounds
		// the session. The cut iteration is already excluded from the
		// convergence monitor, and the engine never caches post-cut
		// results, so the next step re-executes cleanly.
		s.recordStep(log)
		res.Iteration = s.stepRes.Iterations[len(s.stepRes.Iterations)-1]
		res.Degraded = s.ctx.DegradedReport()
		return res, nil
	}
	if s.converged() {
		return stop()
	}
	space := questionSpace(s.Prog, s.Env.Features, s.asked)
	if len(space) == 0 {
		return stop()
	}
	questions, err := s.Config.Strategy.Next(s, space, s.Config.QuestionsPerIteration)
	if err != nil {
		return nil, err
	}
	if len(questions) == 0 {
		return stop()
	}
	s.recordStep(log)
	res.Iteration = s.stepRes.Iterations[len(s.stepRes.Iterations)-1]
	s.pending = questions
	res.Questions = questions
	res.Degraded = s.ctx.DegradedReport()
	return res, nil
}

// Finalize computes the complete result over all documents (reuse mode)
// and returns the accumulated session Result — the step-mode counterpart
// of Run's tail. The deadline d (0 = none) covers this call alone. The
// session stays readable afterwards (Program, StatsSnapshot, Explain) but
// cannot step again.
func (s *Session) Finalize(d time.Duration) (*Result, error) {
	if s.finished {
		return nil, fmt.Errorf("assistant: session already finalized")
	}
	s.ensureStepState()
	s.finished = true
	s.stepDone = true
	unbind := s.bindStep(d)
	defer unbind()
	res := s.stepRes
	res.Converged = s.converged()
	final, _, err := s.execute(false)
	if err != nil {
		return nil, err
	}
	final = s.ctx.AttachDegraded(final)
	res.Final = final
	res.FinalTuples = final.NumExpandedTuples()
	res.Degraded = final.Degraded
	s.recordStep(Iteration{
		N: len(res.Iterations) + 1, Tuples: res.FinalTuples,
		Assignments: final.NumAssignments(), Mode: "full",
	})
	res.Stats = s.ctx.Stats
	return res, nil
}

// Pending returns the questions awaiting answers from the next Step call.
func (s *Session) Pending() []Question { return s.pending }

// Finished reports whether Finalize has run.
func (s *Session) Finished() bool { return s.finished }

// StatsSnapshot renders the session's engine counters. Call it only while
// no step is in flight (the same quiescence contract as engine.Stats).
func (s *Session) StatsSnapshot() engine.StatsSnapshot {
	return s.ctx.Stats.Snapshot()
}

// Explain renders the EXPLAIN ANALYZE tree of the last executed plan.
// It requires Config.Trace (tracing from the first execution); without a
// plan executed yet it returns an error.
func (s *Session) Explain() (string, error) {
	if s.prevPlan == nil {
		return "", fmt.Errorf("assistant: no plan executed yet")
	}
	return s.prevPlan.Explain(s.ctx)
}
