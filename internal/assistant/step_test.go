package assistant_test

// Tests of the step-wise session API (step.go): a session stepped to
// completion must be byte-identical to Run with the same answers, the
// per-step deadline must be re-armed on every call (the stale-binding
// bug), and an expired step must poison neither later steps nor the
// final result.

import (
	"fmt"
	"testing"
	"time"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/corpus"
)

// stepToCompletion drives a session through Step until Done, answering
// pending questions with the oracle, then finalizes. Each step runs under
// deadline d (0 = none).
func stepToCompletion(t *testing.T, s *assistant.Session, o *assistant.MapOracle, d time.Duration) *assistant.Result {
	t.Helper()
	var answers []assistant.Answer
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("step loop did not terminate")
		}
		sr, err := s.StepDeadline(d, answers)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if sr.Done {
			break
		}
		answers = answers[:0]
		for _, q := range sr.Questions {
			answers = append(answers, o.Answer(q))
		}
	}
	res, err := s.Finalize(d)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return res
}

// TestStepMatchesRun pins the service-path contract: for every corpus
// task and both strategies, stepping a session to completion with the
// oracle's answers yields a transcript and final table byte-identical to
// Run on a session with the same configuration.
func TestStepMatchesRun(t *testing.T) {
	const records = 10
	for _, strat := range []struct {
		name string
		s    assistant.Strategy
	}{
		{"sequential", assistant.Sequential{}},
		{"simulation", assistant.Simulation{}},
	} {
		strat := strat
		t.Run(strat.name, func(t *testing.T) {
			for _, task := range corpus.Tasks() {
				c := task.Generate(records, 1)
				env := task.Env(c)
				cfg := assistant.Config{Strategy: strat.s, Alpha: assistant.ExplicitZero}

				run := assistant.NewSession(env, alog.MustParse(task.Program), task.Oracle(), cfg)
				want, err := run.Run()
				if err != nil {
					t.Fatalf("%s: run: %v", task.ID, err)
				}

				stepped := assistant.NewSession(env, alog.MustParse(task.Program), task.Oracle(), cfg)
				got := stepToCompletion(t, stepped, task.Oracle(), 0)

				if got.Transcript() != want.Transcript() {
					t.Errorf("%s: step transcript differs from run\nstep:\n%s\nrun:\n%s",
						task.ID, got.Transcript(), want.Transcript())
				}
				if got.Final.String() != want.Final.String() {
					t.Errorf("%s: step final table differs from run\nstep:\n%s\nrun:\n%s",
						task.ID, got.Final.String(), want.Final.String())
				}
				if got.Converged != want.Converged || got.QuestionsAsked != want.QuestionsAsked {
					t.Errorf("%s: step (converged=%v, asked=%d) vs run (converged=%v, asked=%d)",
						task.ID, got.Converged, got.QuestionsAsked, want.Converged, want.QuestionsAsked)
				}
			}
		})
	}
}

// TestStepDeadlineRearmed is the regression test for the stale-binding
// bug: Config.Deadline used to be bound once at session start, so a
// session stepped across a pause longer than the deadline had every later
// step running against a long-expired context. Each StepDeadline call
// must get a fresh window.
func TestStepDeadlineRearmed(t *testing.T) {
	task, err := corpus.TaskByID("T9")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(12, 1)
	env := task.Env(c)
	o := task.Oracle()
	s := assistant.NewSession(env, alog.MustParse(task.Program), o, assistant.Config{})

	const d = 10 * time.Second
	sr, err := s.StepDeadline(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Degraded != nil {
		t.Fatalf("first step degraded under a generous deadline: %+v", sr.Degraded)
	}
	// The user thinks for longer than the per-step deadline would allow if
	// it had been bound at session start... (the clock on the first
	// binding keeps running between steps).
	start := time.Now()
	short := 30 * time.Millisecond
	time.Sleep(2 * short)
	// ...then answers. With a re-armed binding this step gets its own
	// fresh window and completes clean; with the old once-bound deadline
	// it would start already expired.
	var answers []assistant.Answer
	for _, q := range sr.Questions {
		answers = append(answers, o.Answer(q))
	}
	sr2, err := s.StepDeadline(short, answers)
	if err != nil {
		t.Fatal(err)
	}
	if sr2.Degraded != nil && sr2.Degraded.DeadlineExpired {
		// Only meaningful if the step itself was fast enough that a fresh
		// window could not have expired on its own.
		if elapsed := time.Since(start); elapsed < 2*short+short {
			t.Errorf("second step expired despite fresh %v window (elapsed %v): deadline not re-armed", short, elapsed)
		}
	}
}

// TestExpiredStepDoesNotPoison forces a step to expire (1ns deadline) and
// asserts the blast radius is that step alone: it comes back degraded
// with no questions but does not end the loop, the next step is clean,
// and the finalized result is byte-identical to an undisturbed session.
func TestExpiredStepDoesNotPoison(t *testing.T) {
	task, err := corpus.TaskByID("T9")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(12, 1)
	env := task.Env(c)

	ref := assistant.NewSession(env, alog.MustParse(task.Program), task.Oracle(), assistant.Config{})
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	o := task.Oracle()
	s := assistant.NewSession(env, alog.MustParse(task.Program), o, assistant.Config{})
	cut, err := s.StepDeadline(time.Nanosecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Degraded == nil || !cut.Degraded.DeadlineExpired {
		t.Fatalf("1ns step not degraded: %+v", cut.Degraded)
	}
	if cut.Done {
		t.Fatal("expired step ended the loop; it must only degrade that step")
	}
	if len(cut.Questions) != 0 {
		t.Fatalf("expired step served questions scored on a partial table: %v", cut.Questions)
	}

	// The next step (fresh window, no answers pending) must be clean: no
	// stale degradation report, and from here the session must converge to
	// exactly the undisturbed result.
	first, err := s.StepDeadline(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Degraded != nil {
		t.Fatalf("step after expiry inherited degradation: %+v", first.Degraded)
	}

	answers := make([]assistant.Answer, 0, len(first.Questions))
	for _, q := range first.Questions {
		answers = append(answers, o.Answer(q))
	}
	sr := first
	for i := 0; !sr.Done; i++ {
		if i > 200 {
			t.Fatal("step loop did not terminate")
		}
		if sr, err = s.StepDeadline(0, answers); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if sr.Degraded != nil {
			t.Fatalf("step %d degraded after the cut was over: %+v", i, sr.Degraded)
		}
		answers = answers[:0]
		for _, q := range sr.Questions {
			answers = append(answers, o.Answer(q))
		}
	}
	got, err := s.Finalize(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded != nil {
		t.Errorf("finalized result carries stale degradation: %+v", got.Degraded)
	}
	if got.Final.String() != want.Final.String() {
		t.Errorf("final table after an expired step differs from undisturbed run\ngot:\n%s\nwant:\n%s",
			got.Final.String(), want.Final.String())
	}
	if !got.Converged {
		t.Error("session with one expired step failed to converge")
	}
}

// TestEveryStepExpiredStillTerminates starves every step (1ns windows):
// the loop must still end at MaxIterations, and Finalize without a
// deadline must still produce the complete, non-degraded table.
func TestEveryStepExpiredStillTerminates(t *testing.T) {
	task, err := corpus.TaskByID("T6")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(10, 1)
	env := task.Env(c)
	s := assistant.NewSession(env, alog.MustParse(task.Program), task.Oracle(), assistant.Config{MaxIterations: 3})
	steps := 0
	for {
		sr, err := s.StepDeadline(time.Nanosecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Done {
			break
		}
		steps++
		if steps > 10 {
			t.Fatal("starved session did not hit the iteration bound")
		}
	}
	if steps != 3 {
		t.Errorf("starved session ran %d steps, want MaxIterations=3", steps)
	}
	res, err := s.Finalize(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != nil {
		t.Errorf("clean finalize after starved steps still degraded: %+v", res.Degraded)
	}
	if res.Final == nil || res.FinalTuples == 0 {
		t.Error("finalize produced no result")
	}
}

// TestStepAPIErrors pins the misuse errors: answering more questions than
// pending, and stepping or finalizing a finalized session.
func TestStepAPIErrors(t *testing.T) {
	task, err := corpus.TaskByID("T1")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(6, 1)
	env := task.Env(c)
	s := assistant.NewSession(env, alog.MustParse(task.Program), task.Oracle(), assistant.Config{})
	if _, err := s.StepDeadline(0, []assistant.Answer{assistant.DontKnow()}); err == nil {
		t.Error("answers with no pending questions accepted")
	}
	if _, err := s.Finalize(0); err != nil {
		t.Fatal(err)
	}
	if !s.Finished() {
		t.Error("Finished() false after Finalize")
	}
	if _, err := s.StepDeadline(0, nil); err == nil {
		t.Error("Step after Finalize accepted")
	}
	if _, err := s.Finalize(0); err == nil {
		t.Error("double Finalize accepted")
	}
}

// TestStepExplain exercises the Trace/Explain accessors used by the
// service's -explain streaming.
func TestStepExplain(t *testing.T) {
	task, err := corpus.TaskByID("T1")
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(6, 1)
	env := task.Env(c)
	s := assistant.NewSession(env, alog.MustParse(task.Program), task.Oracle(), assistant.Config{Trace: true})
	if _, err := s.Explain(); err == nil {
		t.Error("Explain before any execution accepted")
	}
	if _, err := s.StepDeadline(0, nil); err != nil {
		t.Fatal(err)
	}
	out, err := s.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Error("empty explain output")
	}
	snap := s.StatsSnapshot()
	if snap.NodesEvaluated == 0 {
		t.Errorf("snapshot shows no evaluations: %+v", snap)
	}
	_ = fmt.Sprintf("%v", snap) // snapshot must be renderable
}
