package assistant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"iflex/internal/alog"
	"iflex/internal/feature"
)

// Strategy selects the next questions to ask (Section 5.1).
type Strategy interface {
	// Name identifies the strategy in experiment reports ("seq", "sim").
	Name() string
	// Next picks up to n questions from the open question space.
	Next(s *Session, space []Question, n int) ([]Question, error)
}

// Sequential asks questions in a predefined order: attributes ranked by
// decreasing importance (join participation, use in the query head), then
// the fixed feature order of QuestionFeatures.
type Sequential struct{}

// Name returns "seq".
func (Sequential) Name() string { return "seq" }

// Next returns the first n open questions in rank order.
func (Sequential) Next(s *Session, space []Question, n int) ([]Question, error) {
	rank := attrImportance(s.Prog)
	featPos := map[string]int{}
	for i, f := range QuestionFeatures {
		featPos[f] = i
	}
	sorted := append([]Question(nil), space...)
	sort.SliceStable(sorted, func(i, j int) bool {
		ri, rj := rank[sorted[i].Attr], rank[sorted[j].Attr]
		if ri != rj {
			return ri > rj
		}
		if sorted[i].Attr != sorted[j].Attr {
			return sorted[i].Attr.String() < sorted[j].Attr.String()
		}
		return featPos[sorted[i].Feature] < featPos[sorted[j].Feature]
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n], nil
}

// attrImportance scores attributes in a domain-independent way
// (Section 5.1): participation in p-function joins weighs most, then
// comparisons, then appearing in the query head.
func attrImportance(prog *alog.Program) map[alog.AttrRef]int {
	scores := map[alog.AttrRef]int{}
	for _, attr := range prog.Attrs() {
		score := 0
		// Find call sites of the IE predicate and the caller variable bound
		// to this attribute position.
		for _, desc := range prog.RulesFor(attr.Pred) {
			if !desc.IsDescription(nil) {
				continue
			}
			pos := -1
			for i, t := range desc.Head.Args {
				if t.Kind == alog.TermVar && t.Var == attr.Var {
					pos = i
					break
				}
			}
			if pos < 0 {
				continue
			}
			for _, r := range prog.Rules {
				if r.IsDescription(nil) {
					continue
				}
				callerVars := map[string]bool{}
				for _, l := range r.Body {
					if l.Kind == alog.LitAtom && l.Atom.Pred == attr.Pred && pos < len(l.Atom.Args) {
						if t := l.Atom.Args[pos]; t.Kind == alog.TermVar {
							callerVars[t.Var] = true
						}
					}
				}
				if len(callerVars) == 0 {
					continue
				}
				// The caller variable may flow through intermediate heads;
				// approximate by also tracking same-named variables in other
				// rules (variable names are consistent in our programs).
				for _, r2 := range prog.Rules {
					for _, l := range r2.Body {
						switch l.Kind {
						case alog.LitAtom:
							if l.Atom.Pred == attr.Pred || l.Atom.Pred == alog.FromPred {
								continue
							}
							for _, t := range l.Atom.Args {
								if t.Kind == alog.TermVar && callerVars[t.Var] {
									score += 10 // p-function / join participation
								}
							}
						case alog.LitCompare:
							for _, t := range []alog.Term{l.Cmp.L, l.Cmp.R} {
								if t.Kind == alog.TermVar && callerVars[t.Var] {
									score += 5
								}
							}
						}
					}
					for _, t := range r2.Head.Args {
						if r2.Head.Pred == prog.Query && t.Kind == alog.TermVar && callerVars[t.Var] {
							score++
						}
					}
				}
			}
		}
		scores[attr] = score
	}
	return scores
}

// Simulation selects the question with the smallest expected result size:
// for each candidate question d about feature f of attribute a, it
// simulates the program g(P, (a, f, v)) for every possible answer v and
// computes Σ_v Pr[answers v | asks d] · |exec(g(P,(a,f,v)))|, with
// Pr = (1-α)/|V| (Section 5.1). Simulations run over the session's
// document subset and share its reuse cache, which is what makes them
// affordable (Section 5.2).
type Simulation struct {
	// MaxCandidates bounds how many questions are simulated per step
	// (0 = all).
	MaxCandidates int
}

// Name returns "sim".
func (Simulation) Name() string { return "sim" }

// Next simulates candidate questions and returns the n with the lowest
// expected result size.
func (st Simulation) Next(s *Session, space []Question, n int) ([]Question, error) {
	// Rank candidates sequentially first so that a truncated simulation
	// considers the most promising attributes.
	ordered, err := (Sequential{}).Next(s, space, len(space))
	if err != nil {
		return nil, err
	}
	maxCand := st.MaxCandidates
	if maxCand == 0 {
		maxCand = 12 // keep per-iteration simulation affordable by default
	}
	if len(ordered) > maxCand {
		// Round-robin across attributes (in rank order) so every attribute
		// has a candidate simulated each step; a straight prefix would
		// starve lower-ranked attributes of their reducing questions.
		var attrs []alog.AttrRef
		byAttr := map[alog.AttrRef][]Question{}
		for _, q := range ordered {
			if _, ok := byAttr[q.Attr]; !ok {
				attrs = append(attrs, q.Attr)
			}
			byAttr[q.Attr] = append(byAttr[q.Attr], q)
		}
		var picked []Question
		for round := 0; len(picked) < maxCand; round++ {
			advanced := false
			for _, a := range attrs {
				if round < len(byAttr[a]) {
					picked = append(picked, byAttr[a][round])
					advanced = true
					if len(picked) == maxCand {
						break
					}
				}
			}
			if !advanced {
				break
			}
		}
		ordered = picked
	}
	// Collect the candidates with a non-empty answer domain; each
	// (question, answer) pair is one independent simulated execution.
	type candidate struct {
		q      Question
		values []string
	}
	var cands []candidate
	type job struct{ c, v int }
	var jobs []job
	for _, q := range ordered {
		values := st.answerDomain(s, q)
		if len(values) == 0 {
			continue
		}
		ci := len(cands)
		cands = append(cands, candidate{q: q, values: values})
		for vi := range values {
			jobs = append(jobs, job{c: ci, v: vi})
		}
	}

	// Fan the |candidates| x |V| simulations out across the session's
	// worker pool. The simulations share the session context: its
	// single-flight reuse cache deduplicates the common plan subtrees
	// across goroutines (Section 5.2). Sizes and errors land in
	// per-job slots, and the merge below walks candidates in rank order
	// and values in domain order, so scores — and therefore the picked
	// questions and the transcript — are byte-identical to a serial run.
	s.useSubset()
	sizes := make([][]int, len(cands))
	errs := make([][]error, len(cands))
	for ci, c := range cands {
		sizes[ci] = make([]int, len(c.values))
		errs[ci] = make([]error, len(c.values))
	}
	workers := s.Config.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// A fired best-effort deadline stops workers from claiming further
	// jobs: the remaining simulations would only measure partial cuts,
	// and the session loop is about to stop asking questions anyway.
	if workers <= 1 {
		for _, j := range jobs {
			if s.ctx.Cancelled() {
				break
			}
			c := cands[j.c]
			sizes[j.c][j.v], errs[j.c][j.v] = s.simulate(c.q, c.values[j.v])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) || s.ctx.Cancelled() {
						return
					}
					j := jobs[i]
					c := cands[j.c]
					sizes[j.c][j.v], errs[j.c][j.v] = s.simulate(c.q, c.values[j.v])
				}
			}()
		}
		wg.Wait()
	}

	type scored struct {
		q        Question
		expected float64
	}
	var results []scored
	var simErrs []error
	for ci, c := range cands {
		pr := (1 - s.Alpha) / float64(len(c.values))
		expected := s.Alpha * float64(s.lastSize())
		feasible := true
		for vi, v := range c.values {
			if err := errs[ci][vi]; err != nil {
				feasible = false
				simErrs = append(simErrs, fmt.Errorf("%s = %q: %w", c.q, v, err))
				break
			}
			expected += pr * float64(sizes[ci][vi])
		}
		if !feasible {
			continue
		}
		results = append(results, scored{q: c.q, expected: expected})
	}
	if len(results) == 0 {
		if len(simErrs) > 0 {
			// Every candidate failed to simulate: surface the engine
			// errors instead of silently degrading to Sequential.
			return nil, fmt.Errorf("assistant: simulation failed for all %d candidate questions: %w",
				len(cands), errors.Join(simErrs...))
		}
		// Nothing simulatable (e.g. no candidate answer values): fall
		// back to sequential.
		return (Sequential{}).Next(s, space, n)
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].expected < results[j].expected })
	if n > len(results) {
		n = len(results)
	}
	out := make([]Question, n)
	for i := 0; i < n; i++ {
		out[i] = results[i].q
	}
	return out, nil
}

// answerDomain returns the value set V simulated for a question: boolean
// features use BoolValues; parametric features use the oracle's candidate
// values when available.
func (st Simulation) answerDomain(s *Session, q Question) []string {
	if q.Kind == feature.KindBoolean {
		return BoolValues
	}
	if cp, ok := s.Oracle.(CandidateProvider); ok {
		return cp.Candidates(q.Attr, q.Feature)
	}
	return nil
}

// ByName returns the strategy with the given experiment name.
func ByName(name string) (Strategy, error) {
	switch name {
	case "seq":
		return Sequential{}, nil
	case "sim":
		return Simulation{}, nil
	default:
		return nil, fmt.Errorf("assistant: unknown strategy %q (want seq or sim)", name)
	}
}
