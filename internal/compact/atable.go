package compact

import (
	"fmt"
	"sort"
	"strings"

	"iflex/internal/text"
)

// ACell is one a-table cell: a multiset of possible value spans.
type ACell []text.Span

// ATuple is an a-tuple; Maybe marks it as a "maybe a-tuple" [19].
type ATuple struct {
	Cells []ACell
	Maybe bool
}

// ATable is the classic approximate-table representation that compact
// tables condense (Section 3). It is used by the BAnnotate algorithm and by
// the possible-worlds test oracle.
type ATable struct {
	Cols   []string
	Tuples []ATuple
}

// NewATable returns an empty a-table with the given columns.
func NewATable(cols ...string) *ATable {
	cp := make([]string, len(cols))
	copy(cp, cols)
	return &ATable{Cols: cp}
}

// ToATable converts a compact table into the equivalent a-table: expansion
// cells are expanded into separate tuples, then each cell's assignments are
// replaced by their value sets. This can be exponentially larger than the
// compact table; it is the conversion of Definition 3.
func (t *Table) ToATable() *ATable {
	out := NewATable(t.Cols...)
	for _, tp := range t.Expand().Tuples {
		at := ATuple{Maybe: tp.Maybe, Cells: make([]ACell, len(tp.Cells))}
		for i, c := range tp.Cells {
			var vals ACell
			c.Values(func(s text.Span) bool {
				vals = append(vals, s)
				return true
			})
			at.Cells[i] = vals
		}
		out.Tuples = append(out.Tuples, at)
	}
	return out
}

// ToCompact converts an a-table back to a compact table with one exact
// assignment per value (no packing). Used after BAnnotate.
func (a *ATable) ToCompact() *Table {
	out := NewTable(a.Cols...)
	for _, at := range a.Tuples {
		tp := Tuple{Maybe: at.Maybe, Cells: make([]Cell, len(at.Cells))}
		for i, vals := range at.Cells {
			as := make([]text.Assignment, len(vals))
			for j, v := range vals {
				as[j] = text.ExactOf(v)
			}
			tp.Cells[i] = Cell{Assigns: as}
		}
		out.Tuples = append(out.Tuples, tp)
	}
	return out
}

// String renders the a-table for debugging, values as quoted text.
func (a *ATable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s)\n", strings.Join(a.Cols, ", "))
	for _, tp := range a.Tuples {
		b.WriteString("  " + tp.String() + "\n")
	}
	return b.String()
}

// String renders one a-tuple.
func (t ATuple) String() string {
	parts := make([]string, len(t.Cells))
	for i, vals := range t.Cells {
		vs := make([]string, len(vals))
		for j, v := range vals {
			vs[j] = fmt.Sprintf("%q", v.NormText())
		}
		sort.Strings(vs)
		parts[i] = "{" + strings.Join(vs, ", ") + "}"
	}
	s := "(" + strings.Join(parts, ", ") + ")"
	if t.Maybe {
		s += " ?"
	}
	return s
}
