package compact

import (
	"strings"
	"testing"

	"iflex/internal/markup"
)

func TestATableStringRendering(t *testing.T) {
	d := markup.MustParse("d", "Alice 5 6")
	at := NewATable("name", "age")
	at.Tuples = append(at.Tuples, ATuple{
		Maybe: true,
		Cells: []ACell{{span(d, "Alice")}, {span(d, "5"), span(d, "6")}},
	})
	out := at.String()
	for _, want := range []string{"(name, age)", `"Alice"`, `"5"`, `"6"`, "?"} {
		if !strings.Contains(out, want) {
			t.Errorf("a-table string missing %q:\n%s", want, out)
		}
	}
}

func TestToCompactPreservesMaybe(t *testing.T) {
	d := markup.MustParse("d", "x y")
	at := NewATable("v")
	at.Tuples = append(at.Tuples,
		ATuple{Maybe: true, Cells: []ACell{{span(d, "x")}}},
		ATuple{Cells: []ACell{{span(d, "y")}}},
	)
	ct := at.ToCompact()
	if !ct.Tuples[0].Maybe || ct.Tuples[1].Maybe {
		t.Errorf("maybe flags lost:\n%s", ct)
	}
}

func TestToATableEmptyTable(t *testing.T) {
	tb := NewTable("a", "b")
	at := tb.ToATable()
	if len(at.Tuples) != 0 || len(at.Cols) != 2 {
		t.Errorf("empty conversion = %+v", at)
	}
	back := at.ToCompact()
	if len(back.Tuples) != 0 {
		t.Errorf("round trip of empty table = %+v", back)
	}
}

func TestWorldsOfEmptyTable(t *testing.T) {
	at := NewATable("v")
	worlds, err := at.Worlds(10)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one world: the empty relation.
	if len(worlds) != 1 || !worlds[World{}.Canonical()] {
		t.Errorf("worlds of empty table = %v", worlds)
	}
}

func TestWorldsTupleWithEmptyCell(t *testing.T) {
	d := markup.MustParse("d", "x")
	at := NewATable("a", "b")
	at.Tuples = append(at.Tuples, ATuple{Cells: []ACell{{span(d, "x")}, {}}})
	worlds, err := at.Worlds(10)
	if err != nil {
		t.Fatal(err)
	}
	// A non-maybe tuple with an impossible cell contributes no worlds.
	if len(worlds) != 0 {
		t.Errorf("worlds = %v", worlds)
	}
}
