package compact

import (
	"fmt"
	"strings"
)

// QuarantineRecord describes one document the engine isolated after a
// fault: the document's ID, the guard site where the fault surfaced
// ("pfunc", "feature", "proc"), and the error or recovered panic that
// caused it.
type QuarantineRecord struct {
	Doc   string `json:"doc"`
	Op    string `json:"op"`
	Cause string `json:"cause"`
}

// Degraded reports how far a best-effort evaluation fell short of the
// full corpus: documents left unprocessed when a deadline expired, and
// documents quarantined after per-document faults. A table carrying a
// report is still a correct superset over the documents that were
// processed — superset semantics are per-document, so removing documents
// removes exactly their tuples and nothing else (see DESIGN.md §12).
type Degraded struct {
	// DeadlineExpired is set when a best-effort cancellation fired and
	// operator loops were cut short.
	DeadlineExpired bool `json:"deadline_expired"`
	// UnprocessedDocs lists (sorted, deduplicated) the documents whose
	// tuples were still pending in some operator when the cut happened.
	UnprocessedDocs []string `json:"unprocessed_docs,omitempty"`
	// Quarantined lists the documents isolated by per-document fault
	// handling, sorted by document ID.
	Quarantined []QuarantineRecord `json:"quarantined,omitempty"`
}

// QuarantinedDocs returns the quarantined document IDs in record order.
func (d *Degraded) QuarantinedDocs() []string {
	ids := make([]string, len(d.Quarantined))
	for i, q := range d.Quarantined {
		ids[i] = q.Doc
	}
	return ids
}

// Summary renders the report as one human-readable line, e.g.
// "deadline expired; 12 docs unprocessed; 2 docs quarantined (d3: pfunc:
// injected error; ...)".
func (d *Degraded) Summary() string {
	var parts []string
	if d.DeadlineExpired {
		parts = append(parts, "deadline expired")
	}
	if n := len(d.UnprocessedDocs); n > 0 {
		parts = append(parts, fmt.Sprintf("%d docs unprocessed", n))
	}
	if n := len(d.Quarantined); n > 0 {
		const maxShown = 4
		var causes []string
		for i, q := range d.Quarantined {
			if i == maxShown {
				causes = append(causes, "...")
				break
			}
			causes = append(causes, fmt.Sprintf("%s: %s: %s", q.Doc, q.Op, q.Cause))
		}
		parts = append(parts, fmt.Sprintf("%d docs quarantined (%s)", n, strings.Join(causes, "; ")))
	}
	if len(parts) == 0 {
		return "complete"
	}
	return strings.Join(parts, "; ")
}
