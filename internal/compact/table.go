// Package compact implements the approximate-data representations of
// Section 3 of the paper: a-tables and compact tables.
//
// An a-table cell is a multiset of possible value spans; a compact table
// cell "packs" those values into assignments — exact(s) for a single value,
// contain(s) for all token-aligned sub-spans of s — and may be an
// *expansion cell*, which stands for one tuple per encoded value rather
// than one tuple with an uncertain value. A tuple may be a *maybe* tuple
// ('?'), meaning each possible relation may or may not include it.
package compact

import (
	"fmt"
	"sort"
	"strings"

	"iflex/internal/text"
)

// Cell is one cell of a compact tuple: a multiset of assignments,
// optionally flagged as an expansion cell.
type Cell struct {
	Assigns []text.Assignment
	Expand  bool
}

// ExactCell returns a plain cell holding exactly the given span.
func ExactCell(s text.Span) Cell {
	return Cell{Assigns: []text.Assignment{text.ExactOf(s)}}
}

// ContainCell returns a plain cell encoding all sub-spans of s.
func ContainCell(s text.Span) Cell {
	return Cell{Assigns: []text.Assignment{text.ContainOf(s)}}
}

// ExpandCell returns an expansion cell over the given assignments.
func ExpandCell(as ...text.Assignment) Cell {
	return Cell{Assigns: as, Expand: true}
}

// NumValues returns the number of values the cell encodes, counting each
// assignment's value set (duplicates across assignments are not collapsed;
// cells are multisets).
func (c Cell) NumValues() int {
	n := 0
	for _, a := range c.Assigns {
		n += a.NumValues()
	}
	return n
}

// Values enumerates every value span the cell encodes, in assignment order.
// Enumeration stops early when fn returns false.
func (c Cell) Values(fn func(text.Span) bool) {
	stop := false
	for _, a := range c.Assigns {
		if stop {
			return
		}
		a.Values(func(s text.Span) bool {
			if !fn(s) {
				stop = true
				return false
			}
			return true
		})
	}
}

// Singleton returns the cell's single value span when the cell encodes
// exactly one value, and ok=false otherwise.
func (c Cell) Singleton() (text.Span, bool) {
	if len(c.Assigns) == 1 && c.Assigns[0].Mode == text.Exact {
		return c.Assigns[0].Span, true
	}
	if c.NumValues() != 1 {
		return text.Span{}, false
	}
	var out text.Span
	c.Values(func(s text.Span) bool { out = s; return false })
	return out, true
}

// Covers reports whether the cell's value set includes v.
func (c Cell) Covers(v text.Span) bool {
	for _, a := range c.Assigns {
		if a.Covers(v) {
			return true
		}
	}
	return false
}

// CoversTextValue reports whether some value of the cell has the given
// normalised text.
func (c Cell) CoversTextValue(txt string) bool {
	found := false
	c.Values(func(s text.Span) bool {
		if s.NormText() == txt {
			found = true
			return false
		}
		return true
	})
	return found
}

// Clone returns a deep copy of the cell.
func (c Cell) Clone() Cell {
	as := make([]text.Assignment, len(c.Assigns))
	copy(as, c.Assigns)
	return Cell{Assigns: as, Expand: c.Expand}
}

// Dedup returns the cell with duplicate and subsumed assignments removed.
func (c Cell) Dedup() Cell {
	return Cell{Assigns: text.DedupAssignments(c.Assigns), Expand: c.Expand}
}

// String renders the cell canonically, prefixing expansion cells with
// "expand".
func (c Cell) String() string {
	body := text.FormatAssignments(c.Assigns)
	if c.Expand {
		return "expand(" + body + ")"
	}
	return body
}

// Tuple is a compact tuple: one cell per column, optionally maybe ('?').
type Tuple struct {
	Cells []Cell
	Maybe bool
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	cs := make([]Cell, len(t.Cells))
	for i, c := range t.Cells {
		cs[i] = c.Clone()
	}
	return Tuple{Cells: cs, Maybe: t.Maybe}
}

// Copy returns a tuple with a fresh Cells slice whose cells share the
// underlying assignment slices. The engine treats assignment slices as
// immutable (cells are only ever replaced wholesale, never edited in
// place), so Copy is the allocation-free substitute for Clone on hot
// paths; use Clone when assignments will be mutated.
func (t Tuple) Copy() Tuple {
	cs := make([]Cell, len(t.Cells))
	copy(cs, t.Cells)
	return Tuple{Cells: cs, Maybe: t.Maybe}
}

// String renders the tuple like (cell, cell, ...) with a trailing ? for
// maybe tuples.
func (t Tuple) String() string {
	parts := make([]string, len(t.Cells))
	for i, c := range t.Cells {
		parts[i] = c.String()
	}
	s := "(" + strings.Join(parts, ", ") + ")"
	if t.Maybe {
		s += " ?"
	}
	return s
}

// NumExpanded returns how many expansion-free compact tuples this tuple
// stands for: the product of value counts over its expansion cells.
func (t Tuple) NumExpanded() int {
	n := 1
	for _, c := range t.Cells {
		if c.Expand {
			n *= c.NumValues()
		}
	}
	return n
}

// ExpandCells converts the tuple into the equivalent multiset of tuples
// with no expansion cells: each expansion cell is replaced by exact(v) for
// every value v it encodes (Section 3). The result preserves Maybe.
func (t Tuple) ExpandCells() []Tuple {
	out := []Tuple{t.Clone()}
	for i := range t.Cells {
		if !t.Cells[i].Expand {
			continue
		}
		var next []Tuple
		for _, partial := range out {
			partial.Cells[i].Values(func(v text.Span) bool {
				nt := partial.Clone()
				nt.Cells[i] = ExactCell(v)
				next = append(next, nt)
				return true
			})
		}
		out = next
	}
	return out
}

// Table is a compact table: named columns plus a multiset of tuples.
type Table struct {
	Cols   []string
	Tuples []Tuple
	// Degraded, when non-nil, marks this table as a best-effort partial
	// result and reports what was skipped (deadline cuts, quarantined
	// documents). It is attached only to top-level results handed to the
	// caller, never to cached intermediates, and is ignored by the
	// structural comparisons in version.go.
	Degraded *Degraded
}

// NewTable returns an empty table with the given column names.
func NewTable(cols ...string) *Table {
	cp := make([]string, len(cols))
	copy(cp, cols)
	return &Table{Cols: cp}
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Append adds a tuple; it must have one cell per column.
func (t *Table) Append(tp Tuple) {
	if len(tp.Cells) != len(t.Cols) {
		panic(fmt.Sprintf("compact: tuple arity %d != table arity %d", len(tp.Cells), len(t.Cols)))
	}
	t.Tuples = append(t.Tuples, tp)
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := NewTable(t.Cols...)
	out.Tuples = make([]Tuple, len(t.Tuples))
	for i, tp := range t.Tuples {
		out.Tuples[i] = tp.Clone()
	}
	return out
}

// NumExpandedTuples returns the table's size after conceptually expanding
// every expansion cell — the paper's "number of tuples in the result".
func (t *Table) NumExpandedTuples() int {
	n := 0
	for _, tp := range t.Tuples {
		n += tp.NumExpanded()
	}
	return n
}

// NumAssignments returns the total number of assignments across all cells —
// the second quantity the convergence monitor tracks (Section 5.1).
func (t *Table) NumAssignments() int {
	n := 0
	for _, tp := range t.Tuples {
		for _, c := range tp.Cells {
			n += len(c.Assigns)
		}
	}
	return n
}

// Expand returns the table with every expansion cell expanded away.
func (t *Table) Expand() *Table {
	out := NewTable(t.Cols...)
	for _, tp := range t.Tuples {
		out.Tuples = append(out.Tuples, tp.ExpandCells()...)
	}
	return out
}

// String renders the table with a header row; tuples are rendered in order.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s)\n", strings.Join(t.Cols, ", "))
	for _, tp := range t.Tuples {
		b.WriteString("  " + tp.String() + "\n")
	}
	return b.String()
}

// Canonical renders the table with tuples sorted, for comparison in tests.
func (t *Table) Canonical() string {
	lines := make([]string, len(t.Tuples))
	for i, tp := range t.Tuples {
		lines[i] = tp.String()
	}
	sort.Strings(lines)
	return fmt.Sprintf("(%s)\n%s", strings.Join(t.Cols, ", "), strings.Join(lines, "\n"))
}
