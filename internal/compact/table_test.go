package compact

import (
	"strings"
	"testing"

	"iflex/internal/markup"
	"iflex/internal/text"
)

func span(d *text.Document, sub string) text.Span {
	i := strings.Index(d.Text(), sub)
	if i < 0 {
		panic("substring not found: " + sub)
	}
	return d.Span(i, i+len(sub))
}

func TestCellValuesAndCounts(t *testing.T) {
	d := markup.MustParse("d", "Cozy house on quiet street")
	c := Cell{Assigns: []text.Assignment{
		text.ExactOf(span(d, "Cozy")),
		text.ContainOf(span(d, "quiet street")),
	}}
	if got := c.NumValues(); got != 1+3 {
		t.Fatalf("NumValues = %d, want 4", got)
	}
	var vals []string
	c.Values(func(s text.Span) bool {
		vals = append(vals, s.Text())
		return true
	})
	want := []string{"Cozy", "quiet", "quiet street", "street"}
	if len(vals) != len(want) {
		t.Fatalf("values = %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("value %d = %q, want %q", i, vals[i], want[i])
		}
	}
	if !c.Covers(span(d, "street")) || c.Covers(span(d, "house")) {
		t.Error("Covers wrong")
	}
}

func TestCellSingleton(t *testing.T) {
	d := markup.MustParse("d", "one two")
	ec := ExactCell(span(d, "one"))
	if s, ok := ec.Singleton(); !ok || s.Text() != "one" {
		t.Errorf("Singleton of exact cell = %v, %v", s, ok)
	}
	// contain over a single token encodes one value.
	cc := ContainCell(span(d, "two"))
	if s, ok := cc.Singleton(); !ok || s.Text() != "two" {
		t.Errorf("Singleton of 1-token contain = %v, %v", s, ok)
	}
	multi := ContainCell(d.WholeSpan())
	if _, ok := multi.Singleton(); ok {
		t.Error("multi-value cell should not be a singleton")
	}
}

func TestTupleExpandCells(t *testing.T) {
	d := markup.MustParse("d", "Basktall Champaign Hoover Lynneville")
	s1 := span(d, "Basktall Champaign")
	s2 := span(d, "Hoover Lynneville")
	tp := Tuple{Cells: []Cell{
		ExactCell(span(d, "Basktall")),
		ExpandCell(text.ContainOf(s1), text.ContainOf(s2)),
	}}
	if got := tp.NumExpanded(); got != 6 {
		t.Fatalf("NumExpanded = %d, want 6 (3+3 sub-spans)", got)
	}
	ex := tp.ExpandCells()
	if len(ex) != 6 {
		t.Fatalf("ExpandCells returned %d tuples", len(ex))
	}
	for _, e := range ex {
		if e.Cells[1].Expand {
			t.Error("expanded tuple still has expansion cell")
		}
		if _, ok := e.Cells[1].Singleton(); !ok {
			t.Error("expanded cell should be a singleton")
		}
	}
}

func TestTupleExpandPreservesMaybe(t *testing.T) {
	d := markup.MustParse("d", "a b")
	tp := Tuple{Maybe: true, Cells: []Cell{ExpandCell(text.ContainOf(d.WholeSpan()))}}
	for _, e := range tp.ExpandCells() {
		if !e.Maybe {
			t.Error("maybe flag lost during expansion")
		}
	}
}

func TestMultipleExpansionCellsCrossProduct(t *testing.T) {
	d := markup.MustParse("d", "a b c d")
	tp := Tuple{Cells: []Cell{
		ExpandCell(text.ContainOf(span(d, "a b"))),
		ExpandCell(text.ContainOf(span(d, "c d"))),
	}}
	if got := tp.NumExpanded(); got != 9 {
		t.Fatalf("NumExpanded = %d, want 9", got)
	}
	if got := len(tp.ExpandCells()); got != 9 {
		t.Fatalf("ExpandCells = %d tuples, want 9", got)
	}
}

func TestTableBasics(t *testing.T) {
	d := markup.MustParse("d", "x y")
	tb := NewTable("a", "b")
	if tb.ColIndex("b") != 1 || tb.ColIndex("z") != -1 {
		t.Error("ColIndex wrong")
	}
	tb.Append(Tuple{Cells: []Cell{ExactCell(span(d, "x")), ExactCell(span(d, "y"))}})
	if tb.NumExpandedTuples() != 1 || tb.NumAssignments() != 2 {
		t.Errorf("counts = %d tuples, %d assigns", tb.NumExpandedTuples(), tb.NumAssignments())
	}
	cl := tb.Clone()
	cl.Tuples[0].Maybe = true
	if tb.Tuples[0].Maybe {
		t.Error("Clone not deep")
	}
}

func TestAppendArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on arity mismatch")
		}
	}()
	NewTable("a", "b").Append(Tuple{Cells: []Cell{{}}})
}

// Figure 3 of the paper: the houses compact table condenses the Figure 2.e
// a-table; converting back to an a-table must reproduce the enumerated
// possible values.
func TestFigure3RoundTrip(t *testing.T) {
	x1 := markup.MustParse("x1", "Cozy house 351000 5146 2750 Vanhise High")
	tb := NewTable("x", "p", "h")
	tb.Append(Tuple{Cells: []Cell{
		ExactCell(x1.WholeSpan()),
		{Assigns: []text.Assignment{
			text.ExactOf(span(x1, "351000")),
			text.ExactOf(span(x1, "5146")),
			text.ExactOf(span(x1, "2750")),
		}},
		ContainCell(span(x1, "Cozy house")),
	}})
	at := tb.ToATable()
	if len(at.Tuples) != 1 {
		t.Fatalf("a-table tuples = %d", len(at.Tuples))
	}
	pVals := at.Tuples[0].Cells[1]
	if len(pVals) != 3 {
		t.Fatalf("p values = %d", len(pVals))
	}
	hVals := at.Tuples[0].Cells[2]
	if len(hVals) != 3 { // "Cozy", "Cozy house", "house"
		t.Fatalf("h values = %v", at.Tuples[0].Cells[2])
	}
	back := at.ToCompact()
	if back.NumExpandedTuples() != 1 {
		t.Error("round-trip tuple count changed")
	}
}

// The schools side of Figure 3: one compact tuple with an expansion cell
// over two contain assignments stands for one tuple per bold sub-span.
func TestFigure3SchoolsExpansion(t *testing.T) {
	y := markup.MustParse("y", "Basktall Cherry Hills Hoover Lynneville")
	s1 := span(y, "Basktall Cherry Hills")
	s2 := span(y, "Hoover Lynneville")
	tb := NewTable("s")
	tb.Append(Tuple{Cells: []Cell{ExpandCell(text.ContainOf(s1), text.ContainOf(s2))}})
	// 3 tokens -> 6 sub-spans; 2 tokens -> 3 sub-spans.
	if got := tb.NumExpandedTuples(); got != 9 {
		t.Fatalf("expanded tuples = %d, want 9", got)
	}
	at := tb.ToATable()
	if len(at.Tuples) != 9 {
		t.Fatalf("a-table tuples = %d, want 9", len(at.Tuples))
	}
}

func TestWorldsEnumeration(t *testing.T) {
	d := markup.MustParse("d", "Alice Bob 5 6")
	at := NewATable("name", "age")
	at.Tuples = append(at.Tuples,
		ATuple{Cells: []ACell{{span(d, "Alice"), span(d, "Bob")}, {span(d, "5")}}},
		ATuple{Maybe: true, Cells: []ACell{{span(d, "Bob")}, {span(d, "6")}}},
	)
	worlds, err := at.Worlds(100)
	if err != nil {
		t.Fatal(err)
	}
	// 2 valuations for tuple 1 × (maybe tuple 2: in or out) = 4 worlds.
	if len(worlds) != 4 {
		t.Fatalf("worlds = %d, want 4: %v", len(worlds), worlds)
	}
}

func TestWorldsLimit(t *testing.T) {
	d := markup.MustParse("d", "a b c d e f g h")
	at := NewATable("v")
	var all ACell
	for _, tok := range d.Tokens() {
		all = append(all, d.Span(tok.Start, tok.End))
	}
	for i := 0; i < 4; i++ {
		at.Tuples = append(at.Tuples, ATuple{Cells: []ACell{all}})
	}
	if _, err := at.Worlds(10); err == nil {
		t.Fatal("expected ErrTooManyWorlds")
	}
}

func TestIsSupersetOf(t *testing.T) {
	got := map[string]bool{"a": true, "b": true}
	want := map[string]bool{"a": true}
	if !IsSupersetOf(got, want) {
		t.Error("superset check failed")
	}
	if IsSupersetOf(want, got) {
		t.Error("subset incorrectly accepted")
	}
}

func TestTableStringRendering(t *testing.T) {
	d := markup.MustParse("d", "92 bottles")
	tb := NewTable("n")
	tb.Append(Tuple{Maybe: true, Cells: []Cell{ExactCell(span(d, "92"))}})
	s := tb.String()
	if !strings.Contains(s, `exact("92")`) || !strings.Contains(s, "?") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(tb.Canonical(), "(n)") {
		t.Errorf("Canonical = %q", tb.Canonical())
	}
}

func TestCellDedup(t *testing.T) {
	d := markup.MustParse("d", "alpha beta")
	c := Cell{Assigns: []text.Assignment{
		text.ExactOf(span(d, "alpha")),
		text.ContainOf(d.WholeSpan()),
	}}
	dd := c.Dedup()
	if len(dd.Assigns) != 1 {
		t.Fatalf("Dedup = %v", dd)
	}
}
