package compact

// This file provides the structural identity primitives the engine's
// delta evaluation is built on. Across session iterations an operator's
// input table is recomputed, but most of its tuples are structurally
// unchanged — same cells, same assignments over the same document spans.
// Fingerprint gives a fast 64-bit hash of that structure and StructuralEq
// the exact verification, so an operator can recognise an input tuple it
// has already processed under a previous plan version and reuse the
// memoised outcome. MemBytes supports byte-budgeted caching of tables.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvByte folds one byte into an FNV-1a hash.
func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// fnvInt folds an int into the hash, one byte at a time.
func fnvInt(h uint64, v int) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(u))
		u >>= 8
	}
	return h
}

// fnvString folds a string into the hash.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// Fingerprint hashes the tuple's structure: the maybe flag and, per cell,
// the expansion flag and each assignment's mode and span (document ID plus
// byte range). Tuples that are StructuralEq always fingerprint equally;
// the converse holds up to 64-bit collisions, so callers confirm a
// fingerprint match with StructuralEq before trusting it.
func (t Tuple) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	if t.Maybe {
		h = fnvByte(h, 1)
	} else {
		h = fnvByte(h, 0)
	}
	h = fnvInt(h, len(t.Cells))
	for _, c := range t.Cells {
		if c.Expand {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
		h = fnvInt(h, len(c.Assigns))
		for _, a := range c.Assigns {
			h = fnvInt(h, int(a.Mode))
			if d := a.Span.Doc(); d != nil {
				h = fnvString(h, d.ID())
			}
			h = fnvInt(h, a.Span.Start())
			h = fnvInt(h, a.Span.End())
		}
	}
	return h
}

// CellsFingerprint hashes the structure of the selected cells only —
// expansion flag and each assignment's mode and span — excluding the
// maybe flag and every other cell. It is the narrowed variant of
// Fingerprint for operators whose outcome depends on a subset of the
// tuple's columns: two tuples agreeing on those cells are processed
// identically by such an operator even when the rest of the tuple (or
// its maybe flag) differs.
func (t Tuple) CellsFingerprint(idx []int) uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt(h, len(idx))
	for _, ci := range idx {
		if ci >= len(t.Cells) {
			h = fnvByte(h, 0xff)
			continue
		}
		c := t.Cells[ci]
		if c.Expand {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
		h = fnvInt(h, len(c.Assigns))
		for _, a := range c.Assigns {
			h = fnvInt(h, int(a.Mode))
			if d := a.Span.Doc(); d != nil {
				h = fnvString(h, d.ID())
			}
			h = fnvInt(h, a.Span.Start())
			h = fnvInt(h, a.Span.End())
		}
	}
	return h
}

// CellsStructuralEq reports whether the selected cells of two tuples are
// structurally identical (see StructuralEq; maybe flags and unselected
// cells are ignored). The exact check behind CellsFingerprint matches.
func (t Tuple) CellsStructuralEq(o Tuple, idx []int) bool {
	for _, ci := range idx {
		if ci >= len(t.Cells) || ci >= len(o.Cells) {
			return false
		}
		a, b := t.Cells[ci], o.Cells[ci]
		if a.Expand != b.Expand || len(a.Assigns) != len(b.Assigns) {
			return false
		}
		if len(a.Assigns) > 0 && &a.Assigns[0] == &b.Assigns[0] {
			continue
		}
		for j := range a.Assigns {
			x, y := a.Assigns[j], b.Assigns[j]
			if x.Mode != y.Mode || !x.Span.Equal(y.Span) {
				return false
			}
		}
	}
	return true
}

// ColsFingerprint hashes the content of the selected columns across the
// whole table, in tuple order (tuple count included). Binary delta
// operators use it to pin a memo to the other side's dependency columns:
// a successor table with the identical fingerprint yields identical match
// decisions, even when the remaining columns were refined in between.
func (t *Table) ColsFingerprint(idx []int) uint64 {
	h := uint64(fnvOffset64)
	h = fnvInt(h, len(t.Tuples))
	for _, tp := range t.Tuples {
		h = fnvInt(h, int(tp.CellsFingerprint(idx)))
	}
	return h
}

// StructuralEq reports whether two tuples are structurally identical:
// same maybe flag and, cell for cell, the same expansion flag and the
// same assignment sequence (mode and span, spans compared by document
// identity and byte range). Structurally equal tuples are processed
// identically by every operator, which is what makes memoised outcomes
// transferable between plan versions.
func (t Tuple) StructuralEq(o Tuple) bool {
	if t.Maybe != o.Maybe || len(t.Cells) != len(o.Cells) {
		return false
	}
	for i := range t.Cells {
		a, b := t.Cells[i], o.Cells[i]
		if a.Expand != b.Expand || len(a.Assigns) != len(b.Assigns) {
			return false
		}
		// Operators share assignment slices between input and output tuples
		// (Tuple.Copy), so cells of successive table versions usually alias
		// the very same backing array.
		if len(a.Assigns) > 0 && &a.Assigns[0] == &b.Assigns[0] {
			continue
		}
		for j := range a.Assigns {
			x, y := a.Assigns[j], b.Assigns[j]
			if x.Mode != y.Mode || !x.Span.Equal(y.Span) {
				return false
			}
		}
	}
	return true
}

// StructuralEq reports whether two tables are structurally identical:
// same columns and, position by position, structurally equal tuples.
// Operators producing a structurally identical successor of a previous
// version's table can hand out the old table itself, keeping downstream
// pointer identities (and therefore memo transferability) intact.
func (t *Table) StructuralEq(o *Table) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || len(t.Tuples) != len(o.Tuples) ||
		len(t.Cols) != len(o.Cols) {
		return false
	}
	for i := range t.Cols {
		if t.Cols[i] != o.Cols[i] {
			return false
		}
	}
	for i := range t.Tuples {
		if !t.Tuples[i].StructuralEq(o.Tuples[i]) {
			return false
		}
	}
	return true
}

// assignmentBytes approximates the in-memory size of one assignment
// (mode + span header); spans reference shared documents, which are not
// attributed to any table.
const assignmentBytes = 32

// MemBytes estimates the table's resident size in bytes: headers plus
// per-tuple cell and assignment storage. Assignment slices shared between
// tables (Tuple.Copy keeps them aliased) are attributed to every holder,
// so the estimate is an upper bound — the safe direction for a cache
// working against a byte budget.
func (t *Table) MemBytes() int64 {
	b := int64(48) // table header
	for _, c := range t.Cols {
		b += int64(len(c)) + 16
	}
	for _, tp := range t.Tuples {
		b += 32 // tuple header: cells slice + maybe flag
		for _, c := range tp.Cells {
			b += 32 + assignmentBytes*int64(len(c.Assigns))
		}
	}
	return b
}
