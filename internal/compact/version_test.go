package compact

import (
	"testing"

	"iflex/internal/markup"
	"iflex/internal/text"
)

func TestFingerprintAndStructuralEq(t *testing.T) {
	d := markup.MustParse("d", "Cozy house on quiet street")
	d2 := markup.MustParse("d2", "Cozy house on quiet street")

	base := Tuple{Cells: []Cell{
		ExactCell(span(d, "Cozy")),
		{Assigns: []text.Assignment{text.ContainOf(span(d, "quiet street"))}, Expand: true},
	}}
	same := Tuple{Cells: []Cell{
		ExactCell(span(d, "Cozy")),
		{Assigns: []text.Assignment{text.ContainOf(span(d, "quiet street"))}, Expand: true},
	}}
	if !base.StructuralEq(same) {
		t.Fatal("identical tuples not StructuralEq")
	}
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("identical tuples fingerprint differently")
	}
	// Copy shares assignment slices: the aliasing fast path must agree.
	cp := base.Copy()
	if !base.StructuralEq(cp) || base.Fingerprint() != cp.Fingerprint() {
		t.Fatal("Copy not structurally equal to original")
	}

	variants := map[string]Tuple{
		"maybe flag": {Maybe: true, Cells: same.Cells},
		"expand flag": {Cells: []Cell{
			ExactCell(span(d, "Cozy")),
			{Assigns: []text.Assignment{text.ContainOf(span(d, "quiet street"))}},
		}},
		"different span": {Cells: []Cell{
			ExactCell(span(d, "house")),
			same.Cells[1],
		}},
		"different doc": {Cells: []Cell{
			ExactCell(span(d2, "Cozy")),
			{Assigns: []text.Assignment{text.ContainOf(span(d2, "quiet street"))}, Expand: true},
		}},
		"different mode": {Cells: []Cell{
			{Assigns: []text.Assignment{text.ContainOf(span(d, "Cozy"))}},
			same.Cells[1],
		}},
		"extra cell": {Cells: append(append([]Cell(nil), same.Cells...), ExactCell(span(d, "on")))},
	}
	for name, v := range variants {
		if base.StructuralEq(v) {
			t.Errorf("%s: StructuralEq true, want false", name)
		}
		if base.Fingerprint() == v.Fingerprint() {
			t.Errorf("%s: fingerprints collide", name)
		}
	}
}

func TestTableMemBytes(t *testing.T) {
	d := markup.MustParse("d", "Cozy house on quiet street")
	tb := NewTable("x")
	if got := tb.MemBytes(); got <= 0 {
		t.Fatalf("empty table MemBytes = %d, want > 0", got)
	}
	before := tb.MemBytes()
	tb.Append(Tuple{Cells: []Cell{ExactCell(span(d, "Cozy"))}})
	after := tb.MemBytes()
	if after <= before {
		t.Fatalf("MemBytes did not grow on append: %d -> %d", before, after)
	}
	// One cell with one assignment must account for at least the
	// assignment itself.
	if after-before < assignmentBytes {
		t.Fatalf("append grew MemBytes by %d, want >= %d", after-before, assignmentBytes)
	}
}
