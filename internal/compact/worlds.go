package compact

import (
	"fmt"
	"sort"
	"strings"
)

// A World is one possible relation: a multiset of concrete tuples, each a
// slice of normalised value texts. Worlds exist for the test oracle that
// checks superset semantics on small inputs; production code never
// enumerates them.
type World [][]string

// Canonical renders the world with tuples sorted, one per line.
func (w World) Canonical() string {
	lines := make([]string, len(w))
	for i, tp := range w {
		lines[i] = strings.Join(tp, "␟") // unit separator keeps cells unambiguous
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// ErrTooManyWorlds is returned when enumeration would exceed the limit.
var ErrTooManyWorlds = fmt.Errorf("compact: possible-worlds enumeration limit exceeded")

// Worlds enumerates every possible relation the a-table represents:
// (a) choose any subset of the maybe tuples plus all non-maybe tuples,
// (b) choose one value per cell of each chosen tuple (Section 3).
// The canonical rendering of each world is added to the result set.
// Enumeration fails with ErrTooManyWorlds once more than limit worlds
// would be produced.
func (a *ATable) Worlds(limit int) (map[string]bool, error) {
	out := make(map[string]bool)

	// valuations of one tuple: all concrete tuples it can denote.
	valuations := func(t ATuple) [][]string {
		acc := [][]string{nil}
		for _, cell := range t.Cells {
			if len(cell) == 0 {
				return nil // a cell with no possible value kills the tuple
			}
			var next [][]string
			for _, prefix := range acc {
				for _, v := range cell {
					row := make([]string, len(prefix)+1)
					copy(row, prefix)
					row[len(prefix)] = v.NormText()
					next = append(next, row)
				}
			}
			acc = next
		}
		return acc
	}

	perTuple := make([][][]string, len(a.Tuples))
	for i, t := range a.Tuples {
		perTuple[i] = valuations(t)
	}

	var rec func(i int, acc [][]string) error
	rec = func(i int, acc [][]string) error {
		if i == len(a.Tuples) {
			w := World(acc).Canonical()
			out[w] = true
			if len(out) > limit {
				return ErrTooManyWorlds
			}
			return nil
		}
		t := a.Tuples[i]
		if t.Maybe {
			// Option: exclude the tuple entirely.
			if err := rec(i+1, acc); err != nil {
				return err
			}
		}
		if len(perTuple[i]) == 0 {
			if t.Maybe {
				return nil
			}
			// Non-maybe tuple with an empty cell: no world includes it;
			// treat as representing no relations through this branch.
			return nil
		}
		for _, row := range perTuple[i] {
			if err := rec(i+1, append(acc[:len(acc):len(acc)], row)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// IsSupersetOf reports whether every world in want appears in got — the
// paper's superset execution semantics: the computed set of possible
// relations must include every relation the program defines.
func IsSupersetOf(got, want map[string]bool) bool {
	for w := range want {
		if !got[w] {
			return false
		}
	}
	return true
}
