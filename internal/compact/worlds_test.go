package compact

import (
	"testing"
	"testing/quick"

	"iflex/internal/markup"
	"iflex/internal/text"
)

// Property: a compact table and its a-table conversion represent the same
// set of possible relations.
func TestQuickCompactATableEquivalence(t *testing.T) {
	f := func(wordSel []uint8, maybe bool, expand bool) bool {
		if len(wordSel) == 0 {
			wordSel = []uint8{1}
		}
		if len(wordSel) > 4 {
			wordSel = wordSel[:4]
		}
		body := ""
		for i, w := range wordSel {
			if i > 0 {
				body += " "
			}
			body += string(rune('a' + w%5))
		}
		d := markup.MustParse("q", body)
		cell := Cell{Assigns: []text.Assignment{text.ContainOf(d.WholeSpan())}, Expand: expand}
		tb := NewTable("v")
		tb.Append(Tuple{Cells: []Cell{cell}, Maybe: maybe})

		at := tb.ToATable()
		w1, err1 := at.Worlds(100000)
		w2, err2 := at.ToCompact().ToATable().Worlds(100000)
		if err1 != nil || err2 != nil {
			return false
		}
		return IsSupersetOf(w1, w2) && IsSupersetOf(w2, w1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: expansion of a tuple never changes the represented worlds.
func TestQuickExpansionPreservesWorlds(t *testing.T) {
	f := func(wordSel []uint8, maybe bool) bool {
		if len(wordSel) == 0 || len(wordSel) > 3 {
			wordSel = []uint8{0, 1}
		}
		body := ""
		for i, w := range wordSel {
			if i > 0 {
				body += " "
			}
			body += string(rune('a' + w%4))
		}
		d := markup.MustParse("q", body)
		tb := NewTable("v")
		tb.Append(Tuple{
			Cells: []Cell{{Assigns: []text.Assignment{text.ContainOf(d.WholeSpan())}, Expand: true}},
			Maybe: maybe,
		})
		w1, err1 := tb.ToATable().Worlds(100000)
		w2, err2 := tb.Expand().ToATable().Worlds(100000)
		if err1 != nil || err2 != nil {
			return false
		}
		return IsSupersetOf(w1, w2) && IsSupersetOf(w2, w1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// A maybe tuple's worlds include the empty relation.
func TestMaybeTupleAllowsAbsence(t *testing.T) {
	d := markup.MustParse("d", "only")
	tb := NewTable("v")
	tb.Append(Tuple{Cells: []Cell{ExactCell(d.WholeSpan())}, Maybe: true})
	worlds, err := tb.ToATable().Worlds(100)
	if err != nil {
		t.Fatal(err)
	}
	if !worlds[World{}.Canonical()] {
		t.Error("maybe tuple must admit the empty world")
	}
	if !worlds[World{{"only"}}.Canonical()] {
		t.Error("maybe tuple must admit the present world")
	}
	if len(worlds) != 2 {
		t.Errorf("worlds = %d, want 2", len(worlds))
	}
}

// Compactness: the paper's motivating claim — a contain assignment packs
// quadratically many values into one assignment.
func TestCompactnessRatio(t *testing.T) {
	body := "w0"
	for i := 1; i < 30; i++ {
		body += " w" + string(rune('0'+i%10))
	}
	d := markup.MustParse("d", body)
	tb := NewTable("v")
	tb.Append(Tuple{Cells: []Cell{ContainCell(d.WholeSpan())}})
	values := tb.ToATable().Tuples[0].Cells[0]
	if tb.NumAssignments() != 1 {
		t.Fatalf("assignments = %d", tb.NumAssignments())
	}
	if len(values) != 30*31/2 {
		t.Fatalf("values = %d, want %d", len(values), 30*31/2)
	}
}

// Section 3's incompleteness remark: compact tables cannot express mutual
// exclusion (t1 xor t2). The closest superset representation — two maybe
// tuples — necessarily admits four worlds, including both-present and
// both-absent.
func TestMutualExclusionNotRepresentable(t *testing.T) {
	d := markup.MustParse("d", "t1 t2")
	tb := NewTable("v")
	tb.Append(Tuple{Cells: []Cell{ExactCell(span(d, "t1"))}, Maybe: true})
	tb.Append(Tuple{Cells: []Cell{ExactCell(span(d, "t2"))}, Maybe: true})
	worlds, err := tb.ToATable().Worlds(100)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		World{}.Canonical():               true, // both absent
		World{{"t1"}}.Canonical():         true,
		World{{"t2"}}.Canonical():         true,
		World{{"t1"}, {"t2"}}.Canonical(): true, // both present
	}
	if len(worlds) != 4 || !IsSupersetOf(worlds, want) {
		t.Fatalf("worlds = %v", worlds)
	}
	// The xor set {only t1, only t2} is strictly contained: the compact
	// representation is a superset, never an exact encoding.
	xor := map[string]bool{World{{"t1"}}.Canonical(): true, World{{"t2"}}.Canonical(): true}
	if !IsSupersetOf(worlds, xor) {
		t.Error("superset encoding must cover the xor worlds")
	}
	if IsSupersetOf(xor, worlds) {
		t.Error("xor set must be strictly smaller (incompleteness)")
	}
}
