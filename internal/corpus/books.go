package corpus

import (
	"fmt"
)

// BooksConfig sizes the Books domain. AmazonRecords / BarnesRecords
// default to Records when zero (the paper's scenarios use unequal full
// sizes: 2490 Amazon vs 5000 Barnes).
type BooksConfig struct {
	Records       int
	AmazonRecords int
	BarnesRecords int
	Seed          int64
}

// Books generates the Books domain: results of a "Database" query against
// Amazon and Barnes & Noble, drawn from a shared book universe with
// overlap so task T9's title join has answers. Record layouts:
//
//	Amazon: <b>{title}</b> / List: ${lp} / New: ${np} / Used: ${up}
//	Barnes: <u>{title}</u> / Our price: ${bp}
func Books(cfg BooksConfig) *Corpus {
	if cfg.Records <= 0 {
		cfg.Records = 100
	}
	if cfg.AmazonRecords == 0 {
		cfg.AmazonRecords = cfg.Records
	}
	if cfg.BarnesRecords == 0 {
		cfg.BarnesRecords = cfg.Records
	}
	r := rng("Books", cfg.Seed)
	total := cfg.AmazonRecords + cfg.BarnesRecords

	universe := make([]Book, total)
	used := map[string]bool{}
	for i := range universe {
		title := unique(used, func() string {
			t := bookTopics[r.Intn(len(bookTopics))] + ": " +
				bookQualifiers[r.Intn(len(bookQualifiers))]
			if r.Intn(2) == 0 {
				t = titleAdjectives[r.Intn(len(titleAdjectives))] + " " + t
			}
			return t
		})
		lp := float64(20 + r.Intn(180))
		np := lp
		if r.Intn(3) > 0 { // 2/3 discounted
			np = lp - float64(1+r.Intn(15))
		}
		up := np - float64(r.Intn(12))
		if r.Intn(5) == 0 {
			up = np // used not cheaper
		}
		bp := lp + float64(r.Intn(21)) - 10 // within ±10 of list
		universe[i] = Book{Title: title, ListPrice: lp, NewPrice: np, UsedPrice: up, BNPrice: bp}
	}

	c := &Corpus{Domain: "Books", Tables: map[string]*Table{}, Books: map[string][]Book{}}
	amazon := &Table{Name: "Amazon", Description: "Amazon query on 'Database'"}
	barnes := &Table{Name: "Barnes", Description: "Barnes & Noble query on 'Database'"}

	// Amazon takes the first AmazonRecords books; Barnes takes a window
	// overlapping roughly half of Amazon's.
	for i := 0; i < cfg.AmazonRecords; i++ {
		b := universe[i]
		src := fmt.Sprintf("<li><b>%s</b><br>List: $%.2f<br>New: $%.2f<br>Used: $%.2f</li>",
			b.Title, b.ListPrice, b.NewPrice, b.UsedPrice)
		amazon.add("amazon", src)
		c.Books["Amazon"] = append(c.Books["Amazon"], b)
	}
	start := cfg.AmazonRecords / 2
	for i := 0; i < cfg.BarnesRecords; i++ {
		b := universe[start+i]
		src := fmt.Sprintf("<li><u>%s</u><br>Our price: $%.2f</li>", b.Title, b.BNPrice)
		barnes.add("barnes", src)
		c.Books["Barnes"] = append(c.Books["Barnes"], b)
	}
	amazon.Pages = pagesFor(cfg.AmazonRecords, 10)
	barnes.Pages = cfg.BarnesRecords // B&N: one page per result (Table 1)
	c.Tables["Amazon"] = amazon
	c.Tables["Barnes"] = barnes
	return c
}

// TruthT7 lists Barnes & Noble titles priced over $100.
func (c *Corpus) TruthT7() map[string]bool {
	out := map[string]bool{}
	for _, b := range c.Books["Barnes"] {
		if b.BNPrice > 100 {
			out[normKey(b.Title)] = true
		}
	}
	return out
}

// TruthT8 lists Amazon titles whose list price equals the new price and
// whose used price is below the new price.
func (c *Corpus) TruthT8() map[string]bool {
	out := map[string]bool{}
	for _, b := range c.Books["Amazon"] {
		if b.ListPrice == b.NewPrice && b.UsedPrice < b.NewPrice {
			out[normKey(b.Title)] = true
		}
	}
	return out
}

// TruthT9 lists Amazon titles that also appear at Barnes & Noble (titles
// similar) with a lower new price than the B&N price.
func (c *Corpus) TruthT9(similar func(a, b string) bool) map[string]bool {
	out := map[string]bool{}
	for _, a := range c.Books["Amazon"] {
		for _, b := range c.Books["Barnes"] {
			if a.NewPrice < b.BNPrice && similar(a.Title, b.Title) {
				out[normKey(a.Title)] = true
				break
			}
		}
	}
	return out
}
