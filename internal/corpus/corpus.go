// Package corpus generates the synthetic evaluation corpora of the paper
// (Section 6): Movies, DBLP, Books, and a DBLife-style heterogeneous
// snapshot. The real experiments used crawled Web pages we do not have;
// these generators reproduce the *structure* those experiments exercise —
// record layouts, per-attribute text features (bold titles, labelled
// numeric fields, list items, section headers), cross-table overlap for
// the similarity-join tasks — together with machine-readable ground truth
// and the feature answers a developer inspecting the pages would give.
//
// Following Section 6 ("we divided each page into a set of records and
// stored the records as tuples in a table"), each extensional table holds
// one document per record; page counts are tracked for Table 1 reporting.
package corpus

import (
	"fmt"
	"math/rand"

	"iflex/internal/markup"
	"iflex/internal/text"
)

// Table is one extensional record table of a domain (e.g. IMDB, Amazon).
type Table struct {
	Name string
	Docs []*text.Document // one document per record
	Raw  []string         // the markup source of each record document
	// Pages is the number of source pages the records conceptually come
	// from (Table 1 reporting).
	Pages int
	// Description mirrors the Table 1 "Table Descriptions" column.
	Description string
}

// add parses one record's markup and appends it (and its source) to the
// table, using the prefix and index to build the document ID.
func (t *Table) add(prefix string, src string) {
	t.Raw = append(t.Raw, src)
	t.Docs = append(t.Docs, markup.MustParse(fmt.Sprintf("%s-%04d", prefix, len(t.Docs)), src))
}

// Corpus is a generated domain: its record tables plus the ground-truth
// records the tasks compute their correct answers from.
type Corpus struct {
	Domain string
	Tables map[string]*Table

	// Ground truth, populated per domain.
	Movies []Movie
	Papers map[string][]Paper // keyed by venue table name
	Books  map[string][]Book  // keyed by store table name
	DBLife *DBLifeTruth
}

// Movie is a ground-truth movie record.
type Movie struct {
	Title string
	Year  int
	Votes int
	// Membership in each movie table.
	InIMDB, InEbert, InPrasanna bool
}

// Paper is a ground-truth publication record.
type Paper struct {
	Title     string
	Authors   []string
	FirstPage int
	LastPage  int
	Journal   string // empty for conference papers (Garcia-Molina table)
}

// Book is a ground-truth book record.
type Book struct {
	Title     string
	ListPrice float64 // Amazon
	NewPrice  float64 // Amazon
	UsedPrice float64 // Amazon
	BNPrice   float64 // Barnes & Noble
}

// DBLifeTruth is the ground truth of the DBLife snapshot.
type DBLifeTruth struct {
	Panelists []PersonAt // (person, conference)
	Chairs    []ChairAt  // (person, type, conference)
	Projects  []ProjectOf
}

// PersonAt pairs a person with a conference.
type PersonAt struct{ Person, Conference string }

// ChairAt records a chair role at a conference.
type ChairAt struct{ Person, Type, Conference string }

// ProjectOf pairs a researcher with a project.
type ProjectOf struct{ Person, Project string }

// rng returns a deterministic random source for a domain and seed.
func rng(domain string, seed int64) *rand.Rand {
	h := int64(0)
	for _, c := range domain {
		h = h*31 + int64(c)
	}
	return rand.New(rand.NewSource(seed*1000003 + h))
}

// pagesFor reports the conceptual page count for n records at perPage
// records per page.
func pagesFor(n, perPage int) int {
	if n == 0 {
		return 0
	}
	return (n + perPage - 1) / perPage
}

// unique makes a generated name distinct: it tries gen a few times, then
// falls back to a numbered variant, so generation never loops even when
// the combination space is smaller than the corpus.
func unique(used map[string]bool, gen func() string) string {
	var name string
	for try := 0; try < 8; try++ {
		name = gen()
		if !used[name] {
			used[name] = true
			return name
		}
	}
	for i := 2; ; i++ {
		v := fmt.Sprintf("%s Volume %d", name, i)
		if !used[v] {
			used[v] = true
			return v
		}
	}
}

// sampleIdx draws k distinct indices from [0, n).
func sampleIdx(r *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	return perm[:k]
}

// DocsOf returns the documents of a named table, or nil.
func (c *Corpus) DocsOf(table string) []*text.Document {
	t, ok := c.Tables[table]
	if !ok {
		return nil
	}
	return t.Docs
}

// Stats summarises a corpus for Table 1.
type Stats struct {
	Domain string
	Tables []TableStats
}

// TableStats is one Table 1 row.
type TableStats struct {
	Name        string
	Description string
	Records     int
	Pages       int
}

// Stats returns per-table record and page counts, in a stable order.
func (c *Corpus) Stats() Stats {
	s := Stats{Domain: c.Domain}
	for _, name := range tableOrder(c.Domain) {
		if t, ok := c.Tables[name]; ok {
			s.Tables = append(s.Tables, TableStats{
				Name: t.Name, Description: t.Description,
				Records: len(t.Docs), Pages: t.Pages,
			})
		}
	}
	return s
}

// tableOrder fixes Table 1's row order per domain.
func tableOrder(domain string) []string {
	switch domain {
	case "Movies":
		return []string{"Ebert", "IMDB", "Prasanna"}
	case "DBLP":
		return []string{"GarciaMolina", "SIGMOD", "ICDE", "VLDB"}
	case "Books":
		return []string{"Amazon", "Barnes"}
	case "DBLife":
		return []string{"docs"}
	default:
		return nil
	}
}
