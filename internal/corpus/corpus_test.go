package corpus

import (
	"testing"

	"iflex/internal/alog"
	"iflex/internal/engine"
	"iflex/internal/similarity"
)

func TestMoviesGeneration(t *testing.T) {
	c := Movies(MoviesConfig{Records: 50, Seed: 1})
	for _, name := range []string{"IMDB", "Ebert", "Prasanna"} {
		tb := c.Tables[name]
		if tb == nil || len(tb.Docs) != 50 {
			t.Fatalf("%s table = %+v", name, tb)
		}
		if tb.Pages != 1 {
			t.Errorf("%s pages = %d", name, tb.Pages)
		}
	}
	// Deterministic.
	c2 := Movies(MoviesConfig{Records: 50, Seed: 1})
	if c.Tables["IMDB"].Docs[0].Text() != c2.Tables["IMDB"].Docs[0].Text() {
		t.Error("generation not deterministic")
	}
	// Seed changes content.
	c3 := Movies(MoviesConfig{Records: 50, Seed: 2})
	if c.Tables["IMDB"].Docs[0].Text() == c3.Tables["IMDB"].Docs[0].Text() {
		t.Error("seed has no effect")
	}
}

func TestMoviesTruthsNonTrivial(t *testing.T) {
	c := Movies(MoviesConfig{Records: 100, Seed: 1})
	t1, t2, t3 := c.TruthT1(), c.TruthT2(), c.TruthT3(similarity.Similar)
	if len(t1) == 0 || len(t1) == 100 {
		t.Errorf("T1 truth size = %d", len(t1))
	}
	if len(t2) == 0 {
		t.Errorf("T2 truth size = %d", len(t2))
	}
	if len(t3) == 0 {
		t.Errorf("T3 truth size = %d (need 3-way overlap)", len(t3))
	}
}

func TestDBLPGeneration(t *testing.T) {
	c := DBLP(DBLPConfig{Records: 60, Seed: 1})
	for _, name := range []string{"GarciaMolina", "SIGMOD", "ICDE", "VLDB"} {
		if len(c.Tables[name].Docs) != 60 {
			t.Fatalf("%s docs = %d", name, len(c.Tables[name].Docs))
		}
	}
	if n := len(c.TruthT4()); n == 0 || n == 60 {
		t.Errorf("T4 truth = %d", n)
	}
	if n := len(c.TruthT5()); n == 0 || n == 60 {
		t.Errorf("T5 truth = %d", n)
	}
	if n := len(c.TruthT6(similarity.Similar)); n == 0 {
		t.Errorf("T6 truth = %d (need shared authors)", n)
	}
}

func TestBooksGeneration(t *testing.T) {
	c := Books(BooksConfig{Records: 80, Seed: 1})
	if len(c.Tables["Amazon"].Docs) != 80 || len(c.Tables["Barnes"].Docs) != 80 {
		t.Fatal("book table sizes wrong")
	}
	if n := len(c.TruthT7()); n == 0 {
		t.Errorf("T7 truth = %d", n)
	}
	if n := len(c.TruthT8()); n == 0 {
		t.Errorf("T8 truth = %d", n)
	}
	if n := len(c.TruthT9(similarity.Similar)); n == 0 {
		t.Errorf("T9 truth = %d (need store overlap)", n)
	}
	// Asymmetric store sizes, as in the paper's full scenario.
	c2 := Books(BooksConfig{AmazonRecords: 40, BarnesRecords: 70, Seed: 1})
	if len(c2.Tables["Amazon"].Docs) != 40 || len(c2.Tables["Barnes"].Docs) != 70 {
		t.Error("asymmetric sizes not honoured")
	}
}

func TestDBLifeGeneration(t *testing.T) {
	c := DBLife(DBLifeConfig{Pages: 100, Seed: 1})
	if len(c.Tables["docs"].Docs) != 100 {
		t.Fatal("page count wrong")
	}
	if len(c.DBLife.Panelists) == 0 || len(c.DBLife.Chairs) == 0 || len(c.DBLife.Projects) == 0 {
		t.Fatalf("DBLife truth empty: %+v", c.DBLife)
	}
	if len(c.DBLife.TruthPanel()) == 0 || len(c.DBLife.TruthChair()) == 0 || len(c.DBLife.TruthProject()) == 0 {
		t.Error("truth key sets empty")
	}
}

func TestStatsTable1Shape(t *testing.T) {
	c := Books(BooksConfig{AmazonRecords: 2490, BarnesRecords: 5000, Seed: 1})
	s := c.Stats()
	if len(s.Tables) != 2 {
		t.Fatalf("stats = %+v", s)
	}
	// Table 1: Amazon 249 pages, Barnes 500... our page model: Amazon 10
	// records/page, Barnes 1 record/page scaled to the corpus.
	if s.Tables[0].Name != "Amazon" || s.Tables[0].Pages != 249 {
		t.Errorf("Amazon pages = %+v", s.Tables[0])
	}
	if s.Tables[1].Name != "Barnes" || s.Tables[1].Pages != 5000 {
		t.Errorf("Barnes pages = %+v", s.Tables[1])
	}
}

func TestTaskRegistry(t *testing.T) {
	tasks := Tasks()
	if len(tasks) != 9 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	for i, task := range tasks {
		want := "T" + string(rune('1'+i))
		if task.ID != want {
			t.Errorf("task %d id = %s", i, task.ID)
		}
		if task.Program == "" || task.Oracle == nil || task.Truth == nil {
			t.Errorf("task %s incomplete", task.ID)
		}
	}
	if _, err := TaskByID("T5"); err != nil {
		t.Error(err)
	}
	if _, err := TaskByID("T99"); err == nil {
		t.Error("unknown task should fail")
	}
	if len(DBLifeTasks()) != 3 {
		t.Error("DBLife tasks missing")
	}
}

func TestSupersetPercent(t *testing.T) {
	if got := SupersetPercent(50, 50); got != 100 {
		t.Errorf("100%% case = %v", got)
	}
	if got := SupersetPercent(98, 61); got < 160 || got > 161 {
		t.Errorf("T3 case = %v", got)
	}
	if got := SupersetPercent(0, 0); got != 100 {
		t.Errorf("empty case = %v", got)
	}
}

func TestUncoveredTruth(t *testing.T) {
	c := Movies(MoviesConfig{Records: 30, Seed: 1})
	task, err := TaskByID("T1")
	if err != nil {
		t.Fatal(err)
	}
	env := task.Env(c)
	// The unconstrained program: whole-record contain cells must still
	// cover every truth title (superset).
	prog := alog.MustParse(task.Program)
	res, err := engine.Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if missing := UncoveredTruth(res, task.Truth(c)); len(missing) != 0 {
		t.Errorf("initial program uncovered: %v", missing)
	}
}
