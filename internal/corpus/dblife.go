package corpus

import (
	"fmt"
	"strings"
)

// DBLifeConfig sizes the DBLife snapshot.
type DBLifeConfig struct {
	Pages int // total pages (paper: 10007); default 200
	Seed  int64
}

// DBLife generates a heterogeneous snapshot in the style of the DBLife
// portal's crawled data (Section 6.3): conference homepages (with panel
// sections and organizing committees), personal homepages (with project
// lists), and DBWorld-style posts as noise. Unlike the record tables of
// the other domains, DBLife documents are whole pages in one extensional
// table docs(d).
//
// Page anatomy, chosen to exercise the "higher-level" features:
//
//	conference: <title>{CONF} {year} - International Conference on ...</title>
//	            <h2>Panel Sessions</h2><ul><li>{person}</li>...</ul>
//	            <h2>Organizing Committee</h2>
//	            <ul><li>{type} chair: <b>{person}</b></li>...</ul>
//	personal:   <title>Homepage of {person}</title>
//	            <h2>Research Projects</h2><ul><li><i>{project}</i></li>...</ul>
func DBLife(cfg DBLifeConfig) *Corpus {
	if cfg.Pages <= 0 {
		cfg.Pages = 200
	}
	c := &Corpus{Domain: "DBLife", Tables: map[string]*Table{}, DBLife: &DBLifeTruth{}}
	docs := &Table{Name: "docs", Description: "DBLife one-day crawl snapshot", Pages: cfg.Pages}
	// StreamDBLife draws from the identical rand sequence whether or not
	// pages are retained, so the eager corpus and a streamed ingest of the
	// same (Pages, Seed) are byte-identical page for page.
	_ = StreamDBLife(cfg, c.DBLife, func(id, src string) error {
		docs.add("dblife", src)
		return nil
	})
	c.Tables["docs"] = docs
	return c
}

// StreamDBLife generates the DBLife snapshot one page at a time, calling
// emit(id, src) for each page in order and retaining nothing: memory
// stays constant in the page count, which is what lets iflex-corpus
// write million-page stores. Page IDs and contents are exactly those
// DBLife produces for the same config (same rand call sequence). truth,
// when non-nil, accumulates the ground-truth records as pages are
// generated (truth grows with the corpus; pass nil to stay flat). A
// non-nil error from emit aborts generation and is returned.
func StreamDBLife(cfg DBLifeConfig, truth *DBLifeTruth, emit func(id, src string) error) error {
	if cfg.Pages <= 0 {
		cfg.Pages = 200
	}
	r := rng("DBLife", cfg.Seed)

	person := func() string {
		return firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
	}
	chairTypes := []string{"General", "Program", "Demo", "Industrial", "Publicity"}

	for i := 0; i < cfg.Pages; i++ {
		var src string
		switch r.Intn(10) {
		case 0, 1, 2: // conference homepage (30%)
			conf := fmt.Sprintf("%s %d", confNames[r.Intn(len(confNames))], 2000+r.Intn(9))
			var b strings.Builder
			fmt.Fprintf(&b, "<title>%s - International Conference on %s</title>",
				conf, confTopics[r.Intn(len(confTopics))])
			b.WriteString("<h2>Panel Sessions</h2><ul>")
			for k := 0; k < 2+r.Intn(3); k++ {
				p := person()
				fmt.Fprintf(&b, "<li>%s</li>", p)
				if truth != nil {
					truth.Panelists = append(truth.Panelists, PersonAt{Person: p, Conference: conf})
				}
			}
			b.WriteString("</ul><h2>Organizing Committee</h2><ul>")
			for k := 0; k < 2+r.Intn(3); k++ {
				p, ct := person(), chairTypes[r.Intn(len(chairTypes))]
				fmt.Fprintf(&b, "<li>%s chair: <b>%s</b></li>", ct, p)
				if truth != nil {
					truth.Chairs = append(truth.Chairs, ChairAt{Person: p, Type: ct, Conference: conf})
				}
			}
			b.WriteString("</ul><h2>Local Information</h2><p>The conference will be held in ")
			b.WriteString(cityNames[r.Intn(len(cityNames))])
			b.WriteString(".</p>")
			src = b.String()
		case 3, 4, 5: // personal homepage (30%)
			owner := person()
			var b strings.Builder
			fmt.Fprintf(&b, "<title>Homepage of %s</title>", owner)
			fmt.Fprintf(&b, "<p>I am a researcher working on data management in %s.</p>",
				cityNames[r.Intn(len(cityNames))])
			b.WriteString("<h2>Research Projects</h2><ul>")
			for k := 0; k < 1+r.Intn(3); k++ {
				proj := projectNames[r.Intn(len(projectNames))]
				fmt.Fprintf(&b, "<li><i>%s</i></li>", proj)
				if truth != nil {
					truth.Projects = append(truth.Projects, ProjectOf{Person: owner, Project: proj})
				}
			}
			b.WriteString("</ul><h2>Teaching</h2><p>Databases and distributed systems.</p>")
			src = b.String()
		default: // DBWorld-style post / noise (40%)
			var b strings.Builder
			fmt.Fprintf(&b, "<title>Call for Papers</title><p>Submissions on %s are welcome. "+
				"Deadline %d March. Contact %s for details.</p>",
				paperTopics[r.Intn(len(paperTopics))], 1+r.Intn(28), person())
			src = b.String()
		}
		if err := emit(fmt.Sprintf("dblife-%04d", i), src); err != nil {
			return err
		}
	}
	return nil
}

// TruthPanel lists (person, conference) panelist pairs as joined keys.
func (t *DBLifeTruth) TruthPanel() map[string]bool {
	out := map[string]bool{}
	for _, p := range t.Panelists {
		out[normKey(p.Person)+"|"+normKey(p.Conference)] = true
	}
	return out
}

// TruthChair lists (person, type, conference) chair triples as joined keys.
func (t *DBLifeTruth) TruthChair() map[string]bool {
	out := map[string]bool{}
	for _, ch := range t.Chairs {
		out[normKey(ch.Person)+"|"+normKey(ch.Type)+"|"+normKey(ch.Conference)] = true
	}
	return out
}

// TruthProject lists (person, project) pairs as joined keys.
func (t *DBLifeTruth) TruthProject() map[string]bool {
	out := map[string]bool{}
	for _, p := range t.Projects {
		out[normKey(p.Person)+"|"+normKey(p.Project)] = true
	}
	return out
}
