package corpus

import (
	"fmt"
	"strings"
)

// DBLPConfig sizes the DBLP domain.
type DBLPConfig struct {
	Records int // tuples per table
	Seed    int64
}

// DBLP generates the DBLP domain: the Garcia-Molina publication list and
// the SIGMOD / ICDE / VLDB proceedings tables, with an author pool shared
// between SIGMOD and ICDE so task T6's author-similarity join has answers.
// Record layouts (one field per line):
//
//	GarciaMolina: <b>{title}</b> / By <i>{authors}</i> / Journal year: {y}  (journal)
//	              <b>{title}</b> / By <i>{authors}</i> / In proceedings of {conf}
//	SIGMOD/ICDE:  <b>{title}</b> / By <i>{authors}</i>
//	VLDB:         <b>{title}</b> / By <i>{authors}</i> / Pages: {first} - {last}
func DBLP(cfg DBLPConfig) *Corpus {
	if cfg.Records <= 0 {
		cfg.Records = 100
	}
	r := rng("DBLP", cfg.Seed)
	n := cfg.Records

	// Author pool; SIGMOD and ICDE share it, giving T6 its join matches.
	pool := make([]string, 0, n/2+8)
	used := map[string]bool{}
	for len(pool) < cap(pool) {
		name := firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
		if !used[name] {
			used[name] = true
			pool = append(pool, name)
		}
	}
	authors := func(k int) []string {
		idx := sampleIdx(r, len(pool), k)
		out := make([]string, len(idx))
		for i, j := range idx {
			out[i] = pool[j]
		}
		return out
	}

	c := &Corpus{Domain: "DBLP", Tables: map[string]*Table{}, Papers: map[string][]Paper{}}
	usedTitles := map[string]bool{}
	title := func() string {
		return unique(usedTitles, func() string {
			return paperPrefixes[r.Intn(len(paperPrefixes))] + " " +
				paperTopics[r.Intn(len(paperTopics))] + " " +
				paperSuffixes[r.Intn(len(paperSuffixes))]
		})
	}

	// Garcia-Molina publications: ~40% journal.
	gm := &Table{Name: "GarciaMolina", Description: "Hector Garcia-Molina Pubs List", Pages: 1}
	for i := 0; i < n; i++ {
		p := Paper{Title: title(), Authors: authors(1 + r.Intn(3))}
		var tail string
		if r.Intn(10) < 4 {
			p.Journal = fmt.Sprintf("TODS %d", 1980+r.Intn(26))
			tail = fmt.Sprintf("Journal year: %d", 1980+r.Intn(26))
		} else {
			tail = "In proceedings of " + confNames[r.Intn(len(confNames))]
		}
		src := fmt.Sprintf("<li><b>%s</b><br>By <i>%s</i><br>%s</li>", p.Title, joinAuthors(p.Authors), tail)
		gm.add("gm", src)
		c.Papers["GarciaMolina"] = append(c.Papers["GarciaMolina"], p)
	}
	c.Tables["GarciaMolina"] = gm

	// SIGMOD and ICDE proceedings; ~25% of author lists are built to
	// overlap across the two venues.
	shared := make([][]string, n/4+1)
	for i := range shared {
		shared[i] = authors(1 + r.Intn(3))
	}
	proc := func(name, desc string, perPage int) *Table {
		t := &Table{Name: name, Description: desc}
		for i := 0; i < n; i++ {
			p := Paper{Title: title()}
			if r.Intn(4) == 0 {
				p.Authors = shared[r.Intn(len(shared))]
			} else {
				p.Authors = authors(1 + r.Intn(3))
			}
			src := fmt.Sprintf("<li><b>%s</b><br>By <i>%s</i></li>", p.Title, joinAuthors(p.Authors))
			t.add(strings.ToLower(name), src)
			c.Papers[name] = append(c.Papers[name], p)
		}
		t.Pages = pagesFor(n, perPage)
		return t
	}
	c.Tables["SIGMOD"] = proc("SIGMOD", "SIGMOD Papers '75-'05", 50)
	c.Tables["ICDE"] = proc("ICDE", "ICDE Papers '84-'05", 82)

	// VLDB papers with page ranges; ~30% short (5 or fewer pages).
	vldb := &Table{Name: "VLDB", Description: "VLDB Papers '75-'05"}
	for i := 0; i < n; i++ {
		p := Paper{Title: title(), Authors: authors(1 + r.Intn(3))}
		p.FirstPage = 1 + r.Intn(600)
		if r.Intn(10) < 3 {
			p.LastPage = p.FirstPage + r.Intn(5) // short: length <= 5 pages
		} else {
			p.LastPage = p.FirstPage + 5 + r.Intn(20)
		}
		src := fmt.Sprintf("<li><b>%s</b><br>By <i>%s</i><br>Pages: %d - %d</li>",
			p.Title, joinAuthors(p.Authors), p.FirstPage, p.LastPage)
		vldb.add("vldb", src)
		c.Papers["VLDB"] = append(c.Papers["VLDB"], p)
	}
	vldb.Pages = pagesFor(n, 69)
	c.Tables["VLDB"] = vldb
	return c
}

func joinAuthors(as []string) string { return strings.Join(as, ", ") }

// TruthT4 lists the titles of Garcia-Molina journal publications.
func (c *Corpus) TruthT4() map[string]bool {
	out := map[string]bool{}
	for _, p := range c.Papers["GarciaMolina"] {
		if p.Journal != "" {
			out[normKey(p.Title)] = true
		}
	}
	return out
}

// TruthT5 lists the titles of VLDB publications of 5 or fewer pages
// (lastPage < firstPage + 5, per the paper's initial program).
func (c *Corpus) TruthT5() map[string]bool {
	out := map[string]bool{}
	for _, p := range c.Papers["VLDB"] {
		if p.LastPage < p.FirstPage+5 {
			out[normKey(p.Title)] = true
		}
	}
	return out
}

// TruthT6 lists SIGMOD titles whose author list is similar to some ICDE
// paper's author list (token Jaccard via the default similar p-function).
func (c *Corpus) TruthT6(similar func(a, b string) bool) map[string]bool {
	out := map[string]bool{}
	for _, sp := range c.Papers["SIGMOD"] {
		for _, ip := range c.Papers["ICDE"] {
			if similar(joinAuthors(sp.Authors), joinAuthors(ip.Authors)) {
				out[normKey(sp.Title)] = true
				break
			}
		}
	}
	return out
}
