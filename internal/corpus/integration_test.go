package corpus

import (
	"testing"

	"iflex/internal/alog"
	"iflex/internal/assistant"
)

// runTask executes a full assistant session for a task at the given size.
func runTask(t *testing.T, id string, records int, strategy assistant.Strategy) (*assistant.Result, map[string]bool, *Corpus) {
	t.Helper()
	task, err := TaskByID(id)
	if err != nil {
		t.Fatal(err)
	}
	c := task.Generate(records, 1)
	env := task.Env(c)
	prog := alog.MustParse(task.Program)
	s := assistant.NewSession(env, prog, task.Oracle(), assistant.Config{Strategy: strategy})
	res, err := s.Run()
	if err != nil {
		t.Fatalf("task %s: %v", id, err)
	}
	return res, task.Truth(c), c
}

// The selection tasks must converge to exactly the ground truth under the
// simulation strategy: 100% superset, every result cell pinned, keys equal.
func TestSelectionTasksConvergeExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("full sessions are slow")
	}
	for _, id := range []string{"T1", "T2", "T4", "T5", "T7", "T8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			res, truth, _ := runTask(t, id, 50, assistant.Simulation{})
			if res.FinalTuples != len(truth) {
				t.Errorf("%s: final=%d truth=%d", id, res.FinalTuples, len(truth))
			}
			keys, exact := ResultKeys(res.Final)
			if !exact {
				t.Errorf("%s: result cells not pinned", id)
			}
			missing, extra := KeysMatch(keys, truth)
			if len(missing) != 0 || len(extra) != 0 {
				t.Errorf("%s: missing=%v extra=%v", id, missing, extra)
			}
		})
	}
}

// Join tasks must never lose a correct answer (superset semantics), and
// the simulation strategy must land reasonably close to the truth.
func TestJoinTasksSupersetAndClose(t *testing.T) {
	if testing.Short() {
		t.Skip("full sessions are slow")
	}
	for _, id := range []string{"T3", "T9"} {
		id := id
		t.Run(id, func(t *testing.T) {
			res, truth, _ := runTask(t, id, 40, assistant.Simulation{})
			keys, _ := ResultKeys(res.Final)
			missing, _ := KeysMatch(keys, truth)
			if len(missing) != 0 {
				t.Errorf("%s: superset violated, missing %v", id, missing)
			}
			if ss := SupersetPercent(res.FinalTuples, len(truth)); ss > 800 {
				t.Errorf("%s: superset too large after convergence: %.0f%%", id, ss)
			}
		})
	}
}

// The paper's Table 5 contrast: on join-heavy tasks the sequential
// strategy converges prematurely with a much larger superset than the
// simulation strategy.
func TestSequentialVsSimulationContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("full sessions are slow")
	}
	resSeq, truth, _ := runTask(t, "T9", 40, assistant.Sequential{})
	resSim, _, _ := runTask(t, "T9", 40, assistant.Simulation{})
	ssSeq := SupersetPercent(resSeq.FinalTuples, len(truth))
	ssSim := SupersetPercent(resSim.FinalTuples, len(truth))
	if ssSeq <= ssSim {
		t.Errorf("expected seq superset (%.0f%%) > sim superset (%.0f%%)", ssSeq, ssSim)
	}
	if resSeq.QuestionsAsked >= resSim.QuestionsAsked {
		t.Errorf("seq should ask fewer questions (premature convergence): %d vs %d",
			resSeq.QuestionsAsked, resSim.QuestionsAsked)
	}
}

// DBLife tasks (Table 6) must converge to exactly the ground-truth tuple
// counts under the simulation strategy.
func TestDBLifeTasksConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("full sessions are slow")
	}
	for _, task := range DBLifeTasks() {
		task := task
		t.Run(task.ID, func(t *testing.T) {
			c := task.Generate(80, 1)
			env := task.Env(c)
			prog := alog.MustParse(task.Program)
			s := assistant.NewSession(env, prog, task.Oracle(), assistant.Config{Strategy: assistant.Simulation{}})
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			truth := task.Truth(c)
			if res.FinalTuples != len(truth) {
				t.Errorf("%s: final=%d truth=%d", task.ID, res.FinalTuples, len(truth))
			}
		})
	}
}

// Subset-mode iteration sizes must never grow: refinement only narrows.
func TestIterationSizesMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("full sessions are slow")
	}
	res, _, _ := runTask(t, "T8", 50, assistant.Simulation{})
	prev := -1
	for _, it := range res.Iterations {
		if it.Mode != "subset" {
			continue
		}
		if prev >= 0 && it.Tuples > prev {
			t.Fatalf("iteration %d grew from %d to %d", it.N, prev, it.Tuples)
		}
		prev = it.Tuples
	}
}
