package corpus

import (
	"fmt"
	"strings"
)

// MoviesConfig sizes the Movies domain: records per table.
type MoviesConfig struct {
	Records int   // tuples per table (paper scenarios: 10 / 100 / 242-517)
	Seed    int64 // generator seed
}

// Movies generates the Movies domain: a shared movie universe rendered
// into the three top-movie tables (IMDB, Ebert, Prasanna) with controlled
// overlap so that task T3's three-way similarity join has a non-trivial
// answer. Record layouts (one field per line):
//
//	IMDB:     Rank: {rank} / <b>{title}</b> / Year: {year} / Votes: {votes}
//	Ebert:    <b>{title}</b> / Made in: {year}
//	Prasanna: Movie: {title} / Year: {year}
func Movies(cfg MoviesConfig) *Corpus {
	if cfg.Records <= 0 {
		cfg.Records = 100
	}
	r := rng("Movies", cfg.Seed)
	n := cfg.Records

	// Universe: 2n movies; each table draws n with ~50% pairwise overlap.
	universe := make([]Movie, 2*n)
	seen := map[string]bool{}
	for i := range universe {
		title := unique(seen, func() string {
			t := titleAdjectives[r.Intn(len(titleAdjectives))] + " " +
				titleNouns[r.Intn(len(titleNouns))]
			if r.Intn(3) == 0 {
				t += " " + titleTails[r.Intn(len(titleTails))]
			}
			return t
		})
		universe[i] = Movie{
			Title: title,
			Year:  1920 + r.Intn(86),     // 1920..2005
			Votes: 1000 + r.Intn(499000), // 1,000..500,000
		}
	}
	for _, i := range sampleIdx(r, len(universe), n) {
		universe[i].InIMDB = true
	}
	for _, i := range sampleIdx(r, len(universe), n) {
		universe[i].InEbert = true
	}
	for _, i := range sampleIdx(r, len(universe), n) {
		universe[i].InPrasanna = true
	}

	c := &Corpus{Domain: "Movies", Tables: map[string]*Table{}, Movies: universe}

	imdb := &Table{Name: "IMDB", Description: "IMDB Top Movies"}
	ebert := &Table{Name: "Ebert", Description: "Roger Ebert's Greatest Movies List"}
	prasanna := &Table{Name: "Prasanna", Description: "Prasanna's 1000 Greatest Movies"}
	rank := 0
	for _, m := range universe {
		if m.InIMDB {
			rank++
			src := fmt.Sprintf("<li>Rank: %d<br><b>%s</b><br>Year: %d<br>Votes: %d</li>",
				rank, m.Title, m.Year, m.Votes)
			imdb.add("imdb", src)
		}
		if m.InEbert {
			src := fmt.Sprintf("<li><b>%s</b><br>Made in: %d</li>", m.Title, m.Year)
			ebert.add("ebert", src)
		}
		if m.InPrasanna {
			src := fmt.Sprintf("<li>Movie: %s<br>Year: %d</li>", m.Title, m.Year)
			prasanna.add("prasanna", src)
		}
	}
	// Each movie table came from a single crawled page (Table 1).
	imdb.Pages, ebert.Pages, prasanna.Pages = 1, 1, 1
	c.Tables["IMDB"] = imdb
	c.Tables["Ebert"] = ebert
	c.Tables["Prasanna"] = prasanna
	return c
}

// TruthT1 lists the titles of IMDB movies with fewer than 25,000 votes.
func (c *Corpus) TruthT1() map[string]bool {
	out := map[string]bool{}
	for _, m := range c.Movies {
		if m.InIMDB && m.Votes < 25000 {
			out[normKey(m.Title)] = true
		}
	}
	return out
}

// TruthT2 lists the titles of Ebert movies made in [1950, 1970).
func (c *Corpus) TruthT2() map[string]bool {
	out := map[string]bool{}
	for _, m := range c.Movies {
		if m.InEbert && m.Year >= 1950 && m.Year < 1970 {
			out[normKey(m.Title)] = true
		}
	}
	return out
}

// TruthT3 lists the IMDB titles with a similar Ebert title that in turn
// has a similar Prasanna title — the precise semantics of T3's program,
// which joins with the approximate similar() p-function (like T6 and T9,
// near-identical titles can match across lists).
func (c *Corpus) TruthT3(similar func(a, b string) bool) map[string]bool {
	var imdb, ebert, prasanna []string
	for _, m := range c.Movies {
		if m.InIMDB {
			imdb = append(imdb, m.Title)
		}
		if m.InEbert {
			ebert = append(ebert, m.Title)
		}
		if m.InPrasanna {
			prasanna = append(prasanna, m.Title)
		}
	}
	out := map[string]bool{}
	for _, t1 := range imdb {
		matched := false
		for _, t2 := range ebert {
			if !similar(t1, t2) {
				continue
			}
			for _, t3 := range prasanna {
				if similar(t2, t3) {
					matched = true
					break
				}
			}
			if matched {
				break
			}
		}
		if matched {
			out[normKey(t1)] = true
		}
	}
	return out
}

// normKey canonicalises a truth key the same way result cells are compared.
func normKey(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
