package corpus

import (
	"fmt"
	"regexp"
	"strings"

	"iflex/internal/engine"
	"iflex/internal/text"
)

// PreciseTask is the Xlog baseline for one task (Section 6 "Methods"):
// the same skeleton program, but with every IE predicate implemented by a
// precise procedural extractor — the Go equivalent of the Perl modules the
// paper's developers wrote. Running it produces exactly the correct
// result, which is what the Manual/Xlog/iFlex comparison assumes and what
// TestPreciseBaselineMatchesTruth verifies.
type PreciseTask struct {
	ID      string
	Program string
	Procs   map[string]engine.Procedure
}

// Env builds the engine environment for the precise program over a corpus.
func (p *PreciseTask) Env(base *Task, c *Corpus) *engine.Env {
	env := base.Env(c)
	for name, proc := range p.Procs {
		env.Procs[name] = proc
	}
	return env
}

// markSpan returns the (token-trimmed) span of the first mark of the given
// kind in the record, or ok=false.
func markSpan(d *text.Document, kind text.MarkKind) (text.Span, bool) {
	ms := d.MarksOf(kind)
	if len(ms) == 0 {
		return text.Span{}, false
	}
	return d.Span(ms[0].Start, ms[0].End).Shrink()
}

// labeledSpan returns the span after "Label" up to end of line, trimmed.
func labeledSpan(d *text.Document, label string) (text.Span, bool) {
	body := d.Text()
	i := strings.Index(body, label)
	if i < 0 {
		return text.Span{}, false
	}
	start := i + len(label)
	end := start
	for end < len(body) && body[end] != '\n' {
		end++
	}
	return d.Span(start, end).Shrink()
}

// reSpan returns the span of the first submatch of re in the record.
func reSpan(d *text.Document, re *regexp.Regexp) (text.Span, bool) {
	loc := re.FindStringSubmatchIndex(d.Text())
	if loc == nil || len(loc) < 4 || loc[2] < 0 {
		return text.Span{}, false
	}
	return d.Span(loc[2], loc[3]).Shrink()
}

// rowProc builds a procedure that extracts a fixed list of fields from the
// record document; records where any field is missing produce no tuple
// (precise extractors reject malformed records).
func rowProc(fields ...func(d *text.Document) (text.Span, bool)) engine.Procedure {
	return engine.Procedure{
		Outputs: len(fields),
		Fn: func(in text.Span) ([][]text.Span, error) {
			d := in.Doc()
			row := make([]text.Span, len(fields))
			for i, f := range fields {
				sp, ok := f(d)
				if !ok {
					return nil, nil
				}
				row[i] = sp
			}
			return [][]text.Span{row}, nil
		},
	}
}

func byMark(kind text.MarkKind) func(*text.Document) (text.Span, bool) {
	return func(d *text.Document) (text.Span, bool) { return markSpan(d, kind) }
}

func byLabel(label string) func(*text.Document) (text.Span, bool) {
	return func(d *text.Document) (text.Span, bool) { return labeledSpan(d, label) }
}

func byRegexp(pattern string) func(*text.Document) (text.Span, bool) {
	re := regexp.MustCompile(pattern)
	return func(d *text.Document) (text.Span, bool) { return reSpan(d, re) }
}

// PreciseTaskByID returns the Xlog baseline for a task.
func PreciseTaskByID(id string) (*PreciseTask, error) {
	switch id {
	case "T1":
		return &PreciseTask{
			ID: id,
			Program: `
T1(title) :- IMDB(x), extractIMDB(x, title, votes), votes < 25000.`,
			Procs: map[string]engine.Procedure{
				"extractIMDB": rowProc(byMark(text.MarkBold), byLabel("Votes:")),
			},
		}, nil
	case "T2":
		return &PreciseTask{
			ID: id,
			Program: `
T2(title) :- Ebert(x), extractEbert(x, title, year), 1950 <= year, year < 1970.`,
			Procs: map[string]engine.Procedure{
				"extractEbert": rowProc(byMark(text.MarkBold), byLabel("Made in:")),
			},
		}, nil
	case "T3":
		return &PreciseTask{
			ID: id,
			Program: `
T3(t1) :- IMDB(x), extractIMDBTitle(x, t1),
          Ebert(y), extractEbertTitle(y, t2),
          Prasanna(z), extractPrasannaTitle(z, t3),
          similar(t1, t2), similar(t2, t3).`,
			Procs: map[string]engine.Procedure{
				"extractIMDBTitle":     rowProc(byMark(text.MarkBold)),
				"extractEbertTitle":    rowProc(byMark(text.MarkBold)),
				"extractPrasannaTitle": rowProc(byLabel("Movie:")),
			},
		}, nil
	case "T4":
		return &PreciseTask{
			ID: id,
			Program: `
T4(title) :- GarciaMolina(x), extractPublications(x, title, jy), jy != NULL.`,
			Procs: map[string]engine.Procedure{
				// Conference records have no "Journal year:" line; the
				// extractor emits an empty (NULL) span for them.
				"extractPublications": {
					Outputs: 2,
					Fn: func(in text.Span) ([][]text.Span, error) {
						d := in.Doc()
						title, ok := markSpan(d, text.MarkBold)
						if !ok {
							return nil, nil
						}
						jy, ok := labeledSpan(d, "Journal year:")
						if !ok {
							jy = d.Span(0, 0) // NULL
						}
						return [][]text.Span{{title, jy}}, nil
					},
				},
			},
		}, nil
	case "T5":
		return &PreciseTask{
			ID: id,
			Program: `
T5(title) :- VLDB(x), extractVLDB(x, title, fp, lp), lp < fp + 5.`,
			Procs: map[string]engine.Procedure{
				"extractVLDB": rowProc(
					byMark(text.MarkBold),
					byRegexp(`Pages: (\d+)`),
					byRegexp(`Pages: \d+ - (\d+)`),
				),
			},
		}, nil
	case "T6":
		return &PreciseTask{
			ID: id,
			Program: `
T6(t1) :- SIGMOD(x), extractSIGMOD(x, t1, a1),
          ICDE(y), extractICDE(y, t2, a2), similar(a1, a2).`,
			Procs: map[string]engine.Procedure{
				"extractSIGMOD": rowProc(byMark(text.MarkBold), byMark(text.MarkItalic)),
				"extractICDE":   rowProc(byMark(text.MarkBold), byMark(text.MarkItalic)),
			},
		}, nil
	case "T7":
		return &PreciseTask{
			ID: id,
			Program: `
T7(title) :- Barnes(y), extractBarnes(y, title, bp), bp > 100.`,
			Procs: map[string]engine.Procedure{
				"extractBarnes": rowProc(byMark(text.MarkUnderline), byLabel("Our price:")),
			},
		}, nil
	case "T8":
		return &PreciseTask{
			ID: id,
			Program: `
T8(t) :- Amazon(x), extractAmazon(x, t, lp, np, up), lp = np, up < np.`,
			Procs: map[string]engine.Procedure{
				"extractAmazon": rowProc(
					byMark(text.MarkBold),
					byLabel("List:"), byLabel("New:"), byLabel("Used:"),
				),
			},
		}, nil
	case "T9":
		return &PreciseTask{
			ID: id,
			Program: `
T9(t1) :- Amazon(x), extractAmazonT(x, t1, np),
          Barnes(y), extractBarnesT(y, t2, bp), similar(t1, t2), np < bp.`,
			Procs: map[string]engine.Procedure{
				"extractAmazonT": rowProc(byMark(text.MarkBold), byLabel("New:")),
				"extractBarnesT": rowProc(byMark(text.MarkUnderline), byLabel("Our price:")),
			},
		}, nil
	default:
		return nil, fmt.Errorf("corpus: no precise baseline for task %q", id)
	}
}
