package corpus

import (
	"testing"

	"iflex/internal/alog"
	"iflex/internal/engine"
)

// The Xlog baseline must produce exactly the ground truth on every task —
// that's what makes it the "precise IE" comparator of Section 6.
func TestPreciseBaselineMatchesTruth(t *testing.T) {
	for _, base := range Tasks() {
		base := base
		t.Run(base.ID, func(t *testing.T) {
			precise, err := PreciseTaskByID(base.ID)
			if err != nil {
				t.Fatal(err)
			}
			c := base.Generate(40, 3)
			env := precise.Env(base, c)
			prog, err := alog.Parse(precise.Program)
			if err != nil {
				t.Fatalf("precise program: %v", err)
			}
			res, err := engine.Run(prog, env)
			if err != nil {
				t.Fatal(err)
			}
			truth := base.Truth(c)
			keys, _ := ResultKeys(res)
			missing, extra := KeysMatch(keys, truth)
			if len(missing) != 0 || len(extra) != 0 {
				t.Errorf("%s precise: missing=%v extra=%v (result %d, truth %d)",
					base.ID, missing, extra, len(keys), len(truth))
			}
		})
	}
}

func TestPreciseTaskUnknown(t *testing.T) {
	if _, err := PreciseTaskByID("T42"); err == nil {
		t.Error("unknown task should fail")
	}
}

// Section 6.3's anecdote: the approximate processor's converged programs
// run in the same ballpark as the hand-tuned precise programs. We assert a
// loose factor rather than a benchmark here; BenchmarkPreciseVsConverged
// reports the actual numbers.
func TestPreciseAndConvergedAgree(t *testing.T) {
	base, err := TaskByID("T7")
	if err != nil {
		t.Fatal(err)
	}
	precise, err := PreciseTaskByID("T7")
	if err != nil {
		t.Fatal(err)
	}
	c := base.Generate(60, 1)
	envP := precise.Env(base, c)
	resP, err := engine.Run(alog.MustParse(precise.Program), envP)
	if err != nil {
		t.Fatal(err)
	}
	// Converged approximate program: all oracle answers applied.
	prog := alog.MustParse(base.Program)
	oracle := base.Oracle()
	for _, attr := range prog.Attrs() {
		for f, v := range oracle.Answers[attr.String()] {
			if v == "unknown" {
				continue
			}
			if err := prog.AddConstraint(attr, f, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	resA, err := engine.Run(prog, base.Env(c))
	if err != nil {
		t.Fatal(err)
	}
	keysP, _ := ResultKeys(resP)
	keysA, _ := ResultKeys(resA)
	if len(keysP) != len(keysA) {
		t.Errorf("precise (%d keys) and converged approximate (%d keys) disagree", len(keysP), len(keysA))
	}
	for k := range keysP {
		if keysA[k] == 0 {
			t.Errorf("converged program misses %q", k)
		}
	}
}
