package corpus

import (
	"reflect"
	"testing"
)

func collectStream(t *testing.T, cfg DBLifeConfig, truth *DBLifeTruth) (ids, srcs []string) {
	t.Helper()
	err := StreamDBLife(cfg, truth, func(id, src string) error {
		ids = append(ids, id)
		srcs = append(srcs, src)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids, srcs
}

// TestStreamDBLifeDeterministic: the same (pages, seed) produces
// byte-identical pages on every run, and a different seed does not.
func TestStreamDBLifeDeterministic(t *testing.T) {
	cfg := DBLifeConfig{Pages: 120, Seed: 7}
	ids1, srcs1 := collectStream(t, cfg, nil)
	ids2, srcs2 := collectStream(t, cfg, nil)
	if !reflect.DeepEqual(ids1, ids2) || !reflect.DeepEqual(srcs1, srcs2) {
		t.Fatal("same seed produced different pages")
	}
	_, srcs3 := collectStream(t, DBLifeConfig{Pages: 120, Seed: 8}, nil)
	if reflect.DeepEqual(srcs1, srcs3) {
		t.Fatal("different seeds produced identical pages")
	}
}

// TestStreamDBLifeMatchesEager: the streaming generator and the eager
// DBLife corpus emit the same page IDs, the same page bytes, and the same
// ground truth — and skipping truth collection does not perturb the pages.
func TestStreamDBLifeMatchesEager(t *testing.T) {
	cfg := DBLifeConfig{Pages: 150, Seed: 3}
	truth := &DBLifeTruth{}
	ids, srcs := collectStream(t, cfg, truth)

	c := DBLife(cfg)
	docs := c.Tables["docs"]
	if len(docs.Raw) != len(srcs) {
		t.Fatalf("page counts differ: eager %d, stream %d", len(docs.Raw), len(srcs))
	}
	for i := range srcs {
		if docs.Raw[i] != srcs[i] {
			t.Fatalf("page %d bytes differ", i)
		}
		if docs.Docs[i].ID() != ids[i] {
			t.Fatalf("page %d: id %q vs %q", i, docs.Docs[i].ID(), ids[i])
		}
	}
	if !reflect.DeepEqual(truth, c.DBLife) {
		t.Fatal("streamed truth differs from eager truth")
	}
	_, noTruthSrcs := collectStream(t, cfg, nil)
	if !reflect.DeepEqual(srcs, noTruthSrcs) {
		t.Fatal("disabling truth collection changed the generated pages")
	}
}
