package corpus

import (
	"fmt"
	"sort"

	"iflex/internal/assistant"
	"iflex/internal/compact"
	"iflex/internal/engine"
	"iflex/internal/feature"
	"iflex/internal/similarity"
	"iflex/internal/text"
)

// Task bundles everything one evaluation scenario needs: the initial Alog
// program (Table 2), the environment builder, the simulated developer
// (oracle) answering feature questions from how the generator formats the
// data, and the ground-truth result.
type Task struct {
	ID          string
	Domain      string
	Description string
	// Program is the initial Alog source (skeleton + empty-ish description
	// rules), mirroring Table 2.
	Program string
	// Tables lists the extensional tables the program reads.
	Tables []string
	// Generate builds the domain corpus at a given records-per-table size.
	Generate func(records int, seed int64) *Corpus
	// Oracle builds the simulated developer for this task.
	Oracle func() *assistant.MapOracle
	// Truth computes the correct result keys over a corpus.
	Truth func(c *Corpus) map[string]bool
}

// Env builds the engine environment binding the task's tables from a
// corpus.
func (t *Task) Env(c *Corpus) *engine.Env {
	env := engine.NewEnv()
	for _, name := range t.Tables {
		env.AddDocTable(name, "x", c.DocsOf(name))
	}
	return env
}

// boolBase fills correct answers for the boolean question features of an
// attribute: every feature in yes/distinctYes is answered accordingly,
// everything else in the boolean set is "no" except the ones listed in
// unknown. in-first-half is always unknown (record pages are tiny).
func boolBase(distinctYes, yes, unknown []string) map[string]string {
	boolFeatures := []string{
		"bold-font", "italic-font", "underlined", "hyperlinked",
		"in-list", "in-title", "numeric", "capitalized",
	}
	m := map[string]string{"in-first-half": feature.Unknown}
	for _, f := range boolFeatures {
		m[f] = feature.No
	}
	for _, f := range yes {
		m[f] = feature.Yes
	}
	for _, f := range distinctYes {
		m[f] = feature.DistinctYes
	}
	for _, f := range unknown {
		m[f] = feature.Unknown
	}
	return m
}

// with merges parametric answers into a boolean base.
func with(base map[string]string, extra map[string]string) map[string]string {
	for k, v := range extra {
		base[k] = v
	}
	return base
}

// Attribute answer profiles shared across tasks. Every profile states what
// a developer sees in the generated pages; wrong entries would break
// convergence-to-truth, which the corpus tests check end-to-end.
func boldTitleAnswers() map[string]string {
	return with(boolBase(
		[]string{"bold-font"}, []string{"in-list", "capitalized"}, nil),
		map[string]string{"max-tokens": "8", "max-length": "80"})
}

func underlinedTitleAnswers() map[string]string {
	return with(boolBase(
		[]string{"underlined"}, []string{"in-list", "capitalized"}, nil),
		map[string]string{"max-tokens": "8", "max-length": "80"})
}

// Book titles contain lower-case connectives ("From Basics to Advanced"),
// so capitalized is genuinely "sometimes" -> unknown.
func bookBoldTitleAnswers() map[string]string {
	return with(boolBase(
		[]string{"bold-font"}, []string{"in-list"}, []string{"capitalized"}),
		map[string]string{"max-tokens": "10", "max-length": "90"})
}

func bookUnderlinedTitleAnswers() map[string]string {
	return with(boolBase(
		[]string{"underlined"}, []string{"in-list"}, []string{"capitalized"}),
		map[string]string{"max-tokens": "10", "max-length": "90"})
}

// paperTitleAnswers: paper titles contain lower-case connectives, so
// capitalized is genuinely "sometimes" -> unknown.
func paperTitleAnswers() map[string]string {
	return with(boolBase(
		[]string{"bold-font"}, []string{"in-list"}, []string{"capitalized"}),
		map[string]string{"max-tokens": "10", "max-length": "90"})
}

func labeledNumberAnswers(label string, extra map[string]string) map[string]string {
	m := with(boolBase(nil, []string{"in-list", "numeric", "capitalized"}, nil),
		map[string]string{"preceded-by": label, "max-tokens": "1"})
	return with(m, extra)
}

func italicAuthorsAnswers() map[string]string {
	return with(boolBase(
		[]string{"italic-font"}, []string{"in-list", "capitalized"}, nil),
		map[string]string{"preceded-by": "By"})
}

// Tasks returns the nine Table 2 tasks, in order.
func Tasks() []*Task {
	sim := similarity.Similar
	return []*Task{
		{
			ID: "T1", Domain: "Movies",
			Description: "IMDB top movies with fewer than 25,000 votes",
			Tables:      []string{"IMDB"},
			Generate:    func(n int, seed int64) *Corpus { return Movies(MoviesConfig{Records: n, Seed: seed}) },
			Program: `
imdbRec(x, <title>, <votes>) :- IMDB(x), extractIMDB(x, title, votes).
T1(title) :- imdbRec(x, title, votes), votes < 25000.
extractIMDB(x, title, votes) :- from(x, title), from(x, votes).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractIMDB.title": boldTitleAnswers(),
					"extractIMDB.votes": labeledNumberAnswers("Votes:",
						map[string]string{"min-value": "1000", "max-value": "500000"}),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.TruthT1() },
		},
		{
			ID: "T2", Domain: "Movies",
			Description: "Ebert top movies made between 1950 and 1970",
			Tables:      []string{"Ebert"},
			Generate:    func(n int, seed int64) *Corpus { return Movies(MoviesConfig{Records: n, Seed: seed}) },
			Program: `
ebertRec(x, <title>, <year>) :- Ebert(x), extractEbert(x, title, year).
T2(title) :- ebertRec(x, title, year), 1950 <= year, year < 1970.
extractEbert(x, title, year) :- from(x, title), from(x, year).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractEbert.title": boldTitleAnswers(),
					"extractEbert.year": labeledNumberAnswers("Made in:",
						map[string]string{"min-value": "1900", "max-value": "2010"}),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.TruthT2() },
		},
		{
			ID: "T3", Domain: "Movies",
			Description: "Movie titles that occur in IMDB, Ebert, and Prasanna's top movies",
			Tables:      []string{"IMDB", "Ebert", "Prasanna"},
			Generate:    func(n int, seed int64) *Corpus { return Movies(MoviesConfig{Records: n, Seed: seed}) },
			Program: `
ti(x, <t1>) :- IMDB(x), extractIMDBTitle(x, t1).
te(y, <t2>) :- Ebert(y), extractEbertTitle(y, t2).
tp(z, <t3>) :- Prasanna(z), extractPrasannaTitle(z, t3).
T3(t1) :- ti(x, t1), te(y, t2), tp(z, t3), similar(t1, t2), similar(t2, t3).
extractIMDBTitle(x, t) :- from(x, t).
extractEbertTitle(y, t) :- from(y, t).
extractPrasannaTitle(z, t) :- from(z, t).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractIMDBTitle.t":  boldTitleAnswers(),
					"extractEbertTitle.t": boldTitleAnswers(),
					// Prasanna titles are plain text: only the label and list
					// position pin them (the paper's T3 is a >100% outlier).
					"extractPrasannaTitle.t": with(boolBase(nil, []string{"in-list", "capitalized"}, nil),
						map[string]string{"preceded-by": "Movie:", "max-tokens": "8"}),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.TruthT3(sim) },
		},
		{
			ID: "T4", Domain: "DBLP",
			Description: "Garcia-Molina journal pubs",
			Tables:      []string{"GarciaMolina"},
			Generate:    func(n int, seed int64) *Corpus { return DBLP(DBLPConfig{Records: n, Seed: seed}) },
			Program: `
gmRec(x, <title>, <jy>) :- GarciaMolina(x), extractPublications(x, title, jy).
T4(title) :- gmRec(x, title, jy), jy != NULL.
extractPublications(x, title, jy) :- from(x, title), from(x, jy).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractPublications.title": paperTitleAnswers(),
					"extractPublications.jy": labeledNumberAnswers("Journal year:",
						map[string]string{"min-value": "1900", "max-value": "2010"}),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.TruthT4() },
		},
		{
			ID: "T5", Domain: "DBLP",
			Description: "VLDB short publications of 5 or fewer pages",
			Tables:      []string{"VLDB"},
			Generate:    func(n int, seed int64) *Corpus { return DBLP(DBLPConfig{Records: n, Seed: seed}) },
			Program: `
vldbRec(x, <title>, <fp>, <lp>) :- VLDB(x), extractVLDB(x, title, fp, lp).
T5(title) :- vldbRec(x, title, fp, lp), lp < fp + 5.
extractVLDB(x, title, fp, lp) :- from(x, title), from(x, fp), from(x, lp).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractVLDB.title": paperTitleAnswers(),
					"extractVLDB.fp": labeledNumberAnswers("Pages:",
						map[string]string{"followed-by": "-", "min-value": "1"}),
					"extractVLDB.lp": labeledNumberAnswers("-",
						map[string]string{"min-value": "1"}),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.TruthT5() },
		},
		{
			ID: "T6", Domain: "DBLP",
			Description: "SIGMOD/ICDE pubs sharing authors",
			Tables:      []string{"SIGMOD", "ICDE"},
			Generate:    func(n int, seed int64) *Corpus { return DBLP(DBLPConfig{Records: n, Seed: seed}) },
			Program: `
sg(x, <t1>, <a1>) :- SIGMOD(x), extractSIGMOD(x, t1, a1).
ic(y, <t2>, <a2>) :- ICDE(y), extractICDE(y, t2, a2).
T6(t1) :- sg(x, t1, a1), ic(y, t2, a2), similar(a1, a2).
extractSIGMOD(x, t, a) :- from(x, t), from(x, a).
extractICDE(y, t, a) :- from(y, t), from(y, a).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractSIGMOD.t": paperTitleAnswers(),
					"extractSIGMOD.a": italicAuthorsAnswers(),
					"extractICDE.t":   paperTitleAnswers(),
					"extractICDE.a":   italicAuthorsAnswers(),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.TruthT6(sim) },
		},
		{
			ID: "T7", Domain: "Books",
			Description: "B&N books with price over $100",
			Tables:      []string{"Barnes"},
			Generate:    func(n int, seed int64) *Corpus { return Books(BooksConfig{Records: n, Seed: seed}) },
			Program: `
bnRec(y, <title>, <bp>) :- Barnes(y), extractBarnes(y, title, bp).
T7(title) :- bnRec(y, title, bp), bp > 100.
extractBarnes(y, title, bp) :- from(y, title), from(y, bp).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractBarnes.title": bookUnderlinedTitleAnswers(),
					"extractBarnes.bp": labeledNumberAnswers("Our price:",
						map[string]string{"min-value": "1", "max-value": "300"}),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.TruthT7() },
		},
		{
			ID: "T8", Domain: "Books",
			Description: "Amazon books whose list price equals the new price and used price is less than the new price",
			Tables:      []string{"Amazon"},
			Generate:    func(n int, seed int64) *Corpus { return Books(BooksConfig{Records: n, Seed: seed}) },
			Program: `
amRec(x, <t>, <lp>, <np>, <up>) :- Amazon(x), extractAmazon(x, t, lp, np, up).
T8(t) :- amRec(x, t, lp, np, up), lp = np, up < np.
extractAmazon(x, t, lp, np, up) :- from(x, t), from(x, lp), from(x, np), from(x, up).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractAmazon.t":  bookBoldTitleAnswers(),
					"extractAmazon.lp": labeledNumberAnswers("List:", nil),
					"extractAmazon.np": labeledNumberAnswers("New:", nil),
					"extractAmazon.up": labeledNumberAnswers("Used:", nil),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.TruthT8() },
		},
		{
			ID: "T9", Domain: "Books",
			Description: "Books that are cheaper at Amazon than at Barnes",
			Tables:      []string{"Amazon", "Barnes"},
			Generate:    func(n int, seed int64) *Corpus { return Books(BooksConfig{Records: n, Seed: seed}) },
			Program: `
amT(x, <t1>, <np>) :- Amazon(x), extractAmazonT(x, t1, np).
bnT(y, <t2>, <bp>) :- Barnes(y), extractBarnesT(y, t2, bp).
T9(t1) :- amT(x, t1, np), bnT(y, t2, bp), similar(t1, t2), np < bp.
extractAmazonT(x, t, np) :- from(x, t), from(x, np).
extractBarnesT(y, t, bp) :- from(y, t), from(y, bp).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractAmazonT.t":  bookBoldTitleAnswers(),
					"extractAmazonT.np": labeledNumberAnswers("New:", nil),
					"extractBarnesT.t":  bookUnderlinedTitleAnswers(),
					"extractBarnesT.bp": labeledNumberAnswers("Our price:", nil),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.TruthT9(sim) },
		},
	}
}

// TaskByID returns one of the nine tasks.
func TaskByID(id string) (*Task, error) {
	for _, t := range Tasks() {
		if t.ID == id {
			return t, nil
		}
	}
	return nil, fmt.Errorf("corpus: unknown task %q", id)
}

// DBLifeTasks returns the three Section 6.3 programs (Table 6).
func DBLifeTasks() []*Task {
	gen := func(pages int, seed int64) *Corpus { return DBLife(DBLifeConfig{Pages: pages, Seed: seed}) }
	confAnswers := func() map[string]string {
		return with(boolBase(nil, []string{"in-title", "capitalized"}, nil),
			map[string]string{
				"starts-with": "[A-Z][A-Z]+",
				"ends-with":   `19\d\d|20\d\d`,
				"max-length":  "12",
				"max-tokens":  "2",
			})
	}
	return []*Task{
		{
			ID: "Panel", Domain: "DBLife",
			Description: "Find (x,y) where person x is a panelist at conference y",
			Tables:      []string{"docs"},
			Generate:    gen,
			Program: `
onPanel(d, x, <y>) :- docs(d), extractPanelists(d, x), extractConference(d, y).
Panel(x, y) :- onPanel(d, x, y).
extractPanelists(d, x) :- from(d, x).
extractConference(d, y) :- from(d, y).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractPanelists.x": with(boolBase([]string{"in-list"}, []string{"capitalized"}, nil),
						map[string]string{
							"prec-label-contains": "panel",
							"prec-label-max-dist": "700",
							"max-tokens":          "2",
							"max-length":          "30",
						}),
					"extractConference.y": confAnswers(),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.DBLife.TruthPanel() },
		},
		{
			ID: "Project", Domain: "DBLife",
			Description: "Find (x,y) where person x works on project y",
			Tables:      []string{"docs"},
			Generate:    gen,
			Program: `
worksOn(d, <x>, y) :- docs(d), extractOwner(d, x), extractProjects(d, y).
Project(x, y) :- worksOn(d, x, y).
extractOwner(d, x) :- from(d, x).
extractProjects(d, y) :- from(d, y).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractOwner.x": with(boolBase(nil, []string{"in-title", "capitalized"}, nil),
						map[string]string{"preceded-by": "Homepage of", "max-tokens": "2"}),
					"extractProjects.y": with(boolBase([]string{"italic-font"}, []string{"in-list", "capitalized"}, nil),
						map[string]string{"max-tokens": "1"}),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.DBLife.TruthProject() },
		},
		{
			ID: "Chair", Domain: "DBLife",
			Description: "Find (x,y,z) where person x is a chair of type y at conference z",
			Tables:      []string{"docs"},
			Generate:    gen,
			Program: `
chairAt(d, x, <ty>, <z>) :- docs(d), extractChairs(d, x), extractType(d, ty),
                            extractConference(d, z).
Chair(x, ty, z) :- chairAt(d, x, ty, z).
extractChairs(d, x) :- from(d, x).
extractType(d, ty) :- from(d, ty).
extractConference(d, z) :- from(d, z).
`,
			Oracle: func() *assistant.MapOracle {
				return assistant.NewMapOracle(map[string]map[string]string{
					"extractChairs.x": with(boolBase([]string{"bold-font"}, []string{"in-list", "capitalized"}, nil),
						map[string]string{"prec-label-contains": "committee", "max-tokens": "2"}),
					"extractType.ty": with(boolBase(nil, []string{"in-list", "capitalized"}, nil),
						map[string]string{"followed-by": "chair:", "max-tokens": "1"}),
					"extractConference.z": confAnswers(),
				})
			},
			Truth: func(c *Corpus) map[string]bool { return c.DBLife.TruthChair() },
		},
	}
}

// ResultKeys projects the result table onto its first column and returns
// the multiset of singleton value texts; ok is false when some cell is not
// a singleton (the result has not converged to exact values).
func ResultKeys(t *compact.Table) (map[string]int, bool) {
	out := map[string]int{}
	allExact := true
	for _, tp := range t.Expand().Tuples {
		v, ok := tp.Cells[0].Singleton()
		if !ok {
			allExact = false
			continue
		}
		out[normKey(v.NormText())]++
	}
	return out, allExact
}

// UncoveredTruth returns the truth keys not covered by any result tuple's
// first-column value set — the real superset-semantics check: a correct
// answer is lost only if no tuple can still take that value.
func UncoveredTruth(t *compact.Table, truth map[string]bool) []string {
	covered := map[string]bool{}
	for _, tp := range t.Tuples {
		if len(tp.Cells) == 0 {
			continue
		}
		tp.Cells[0].Values(func(s text.Span) bool {
			k := normKey(s.NormText())
			if truth[k] {
				covered[k] = true
			}
			return true
		})
	}
	var missing []string
	for k := range truth {
		if !covered[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	return missing
}

// SupersetPercent computes the Tables 4/5 metric: result size relative to
// the correct size, in percent.
func SupersetPercent(resultTuples, correct int) float64 {
	if correct == 0 {
		if resultTuples == 0 {
			return 100
		}
		return float64(resultTuples+1) * 100
	}
	return 100 * float64(resultTuples) / float64(correct)
}

// KeysMatch reports whether the distinct result keys equal the truth set,
// and returns the sorted missing/extra keys for diagnostics.
func KeysMatch(keys map[string]int, truth map[string]bool) (missing, extra []string) {
	for k := range truth {
		if keys[k] == 0 {
			missing = append(missing, k)
		}
	}
	for k := range keys {
		if !truth[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	return missing, extra
}
