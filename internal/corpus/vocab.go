package corpus

// Word pools used by the deterministic generators. Titles avoid hyphens
// and punctuation so that token-level extraction stays well-behaved, and
// pools are large enough that generated titles rarely collide by accident.

var titleAdjectives = []string{
	"Silent", "Crimson", "Golden", "Broken", "Hidden", "Distant", "Burning",
	"Frozen", "Electric", "Midnight", "Savage", "Gentle", "Hollow", "Iron",
	"Scarlet", "Velvet", "Wicked", "Ancient", "Restless", "Shattered",
	"Lonely", "Radiant", "Stormy", "Quiet", "Brave", "Lost", "Final",
	"Endless", "Sacred", "Bitter", "Amber", "Cobalt", "Daring", "Emerald",
	"Fearless", "Glacial", "Humble", "Infinite", "Jagged", "Kindred",
	"Luminous", "Mystic", "Noble", "Obsidian", "Phantom", "Quickened",
	"Rogue", "Solemn", "Twilight", "Unbroken",
}

var titleNouns = []string{
	"River", "Empire", "Garden", "Horizon", "Shadow", "Kingdom", "Voyage",
	"Harvest", "Mirror", "Canyon", "Fortress", "Lantern", "Meadow", "Ocean",
	"Paradox", "Quartet", "Reckoning", "Sanctuary", "Tempest", "Utopia",
	"Vendetta", "Whisper", "Zephyr", "Beacon", "Cascade", "Dynasty",
	"Eclipse", "Frontier", "Gambit", "Haven", "Anthem", "Bastion",
	"Citadel", "Dominion", "Ember", "Falcon", "Glacier", "Harbinger",
	"Insignia", "Junction", "Keystone", "Labyrinth", "Monolith", "Nomad",
	"Outpost", "Pinnacle", "Quarry", "Refuge", "Summit", "Threshold",
}

var titleTails = []string{
	"Returns", "Rising", "Falls", "Awakens", "Remembered", "Unbound",
	"Reborn", "Forever", "Divided", "United", "Untold", "Revealed",
	"Ascendant", "Beginnings", "Redux", "Legacy", "Origins", "Requiem",
}

var firstNames = []string{
	"Alice", "Robert", "Carol", "David", "Elena", "Frank", "Grace", "Henry",
	"Irene", "James", "Karen", "Louis", "Maria", "Nathan", "Olga", "Peter",
	"Quinn", "Rachel", "Samuel", "Teresa", "Ulrich", "Vera", "Walter",
	"Xenia", "Yusuf", "Zelda", "Arturo", "Bianca", "Carlos", "Diana",
}

var lastNames = []string{
	"Anderson", "Baxter", "Castillo", "Donovan", "Eastwood", "Ferreira",
	"Goldberg", "Hargrove", "Ivanov", "Jennings", "Kowalski", "Lindqvist",
	"Marchetti", "Novak", "Okafor", "Petrov", "Quintana", "Rosenthal",
	"Sullivan", "Takahashi", "Underwood", "Vasquez", "Whitfield", "Xiang",
	"Yamamoto", "Zielinski", "Abernathy", "Bergstrom", "Calloway", "Delacroix",
}

var paperTopics = []string{
	"Query Optimization", "Transaction Processing", "Index Structures",
	"Stream Processing", "Data Integration", "Schema Matching",
	"Approximate Joins", "View Maintenance", "Access Control",
	"Data Cleaning", "Workload Forecasting", "Cache Management",
	"Parallel Scans", "Log Recovery", "Sampling Estimators",
	"Entity Resolution", "Graph Traversal", "Spatial Indexing",
	"Columnar Storage", "Adaptive Execution", "Crash Consistency",
	"Cost Estimation", "Write Amplification", "Skew Handling",
	"Version Management", "Memory Pooling", "Operator Fusion",
	"Predicate Pushdown", "Vectorized Filters", "Join Ordering",
	"Cardinality Bounds", "Snapshot Isolation", "Replica Placement",
	"Load Shedding", "Window Aggregation",
}

var paperPrefixes = []string{
	"Towards", "Efficient", "Scalable", "Adaptive", "Incremental",
	"Robust", "Declarative", "Distributed", "Optimal", "Practical",
	"Principled", "Unified", "Learned", "Interactive", "Approximate",
	"SelfTuning", "Bounded", "Streaming", "Hybrid", "Elastic",
	"Composable", "Transparent", "Versatile", "Nimble", "Pragmatic",
}

var paperSuffixes = []string{
	"in Relational Systems", "over Data Streams", "for Web Data",
	"at Scale", "with Uncertain Data", "in Sensor Networks",
	"for OLAP Workloads", "under Memory Constraints", "in the Cloud",
	"with Provable Guarantees", "for Federated Sources", "on Modern Hardware",
	"beyond Main Memory", "for Interactive Analytics", "in Shared Clusters",
	"across Data Centers", "with Bounded Staleness", "for Evolving Schemas",
	"under Skewed Workloads", "with Partial Replicas",
}

var bookTopics = []string{
	"Database Systems", "Query Languages", "Data Modeling",
	"Information Retrieval", "Distributed Databases", "Data Warehousing",
	"Transaction Management", "Database Tuning", "SQL Programming",
	"Data Mining", "Metadata Management", "Storage Engines",
	"Concurrency Control", "Database Security", "Temporal Databases",
	"Query Optimization", "Stream Systems", "Graph Databases",
	"Spatial Data", "Text Analytics", "Cloud Databases",
	"Replication Strategies", "Index Design", "Schema Evolution",
	"Embedded Databases",
}

var bookQualifiers = []string{
	"A Practical Guide", "Concepts and Techniques", "An Introduction",
	"The Complete Reference", "Principles and Practice", "A Modern Approach",
	"Theory and Applications", "From Basics to Advanced", "Patterns and Pitfalls",
	"Case Studies", "The Definitive Guide", "Foundations",
	"A Field Guide", "Essential Techniques", "In Depth", "Step by Step",
	"Core Concepts", "Beyond the Basics", "A Complete Tutorial",
	"For Practitioners", "Design and Implementation", "Under the Hood",
}

var confNames = []string{
	"SIGMOD", "VLDB", "ICDE", "EDBT", "CIDR", "PODS", "WEBDB", "DASFAA",
}

var confTopics = []string{
	"Management of Data", "Very Large Data Bases", "Data Engineering",
	"Database Theory", "Web Databases", "Information Systems",
}

var projectNames = []string{
	"Trio", "Orchestra", "Midas", "Cimple", "Avatar", "Hyrax", "Nautilus",
	"Pelican", "Quill", "Riverbed", "Sextant", "Tycho", "Umbra", "Vortex",
}

var cityNames = []string{
	"Madison", "Champaign", "Seattle", "Portland", "Austin", "Boulder",
	"Ithaca", "Berkeley", "Cambridge", "Princeton", "Ann Arbor", "Palo Alto",
}
