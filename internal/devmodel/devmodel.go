// Package devmodel models the human development time that Section 6
// measures with volunteer developers. We do not have humans; machine-side
// quantities (tuples per iteration, questions, convergence, execution
// time) are produced by actually running the system, and this package
// converts developer *actions* into minutes with an explicit, documented
// cost model (see DESIGN.md's substitution table):
//
//	Manual — read each record and decide by hand; join tasks require
//	         cross-checking records across tables and grow superlinearly.
//	Xlog   — write the skeleton program, then implement each IE attribute
//	         as procedural (Perl-style) code with a debug loop; nearly
//	         flat in corpus size.
//	iFlex  — write the skeleton, answer assistant questions, inspect
//	         intermediate results, optionally write a cleanup procedure.
//
// Default constants are calibrated so the model reproduces the *shape* of
// Table 3 (Manual linear and infeasible at scale, Xlog high but flat,
// iFlex far below Xlog everywhere), not its absolute values.
package devmodel

import (
	"math"

	"iflex/internal/alog"
)

// Params are the per-action costs, in minutes.
type Params struct {
	// Manual method.
	ManualBase      float64 // set-up: open pages, prepare notes
	ManualPerRecord float64 // read one record and decide
	ManualPerPair   float64 // cross-check one candidate record pair (join tasks)
	ManualCutoff    float64 // above this the method is reported DNF ("—")

	// Xlog method (precise procedural IE).
	XlogPerRule    float64 // write one skeleton rule
	XlogPerAttr    float64 // implement + debug one attribute's extractor
	XlogPerJoin    float64 // implement one approximate join predicate
	XlogDebugScale float64 // extra debugging per decade of corpus size

	// iFlex method.
	SkeletonPerRule float64 // write one skeleton/description rule
	AnswerCost      float64 // answer one assistant question (Section 5.1.1)
	InspectCost     float64 // examine one iteration's result sample
	CleanupCost     float64 // write one procedural cleanup (Section 2.2.4)
}

// DefaultParams returns the calibrated constants.
func DefaultParams() Params {
	return Params{
		ManualBase:      0.5,
		ManualPerRecord: 0.012,
		ManualPerPair:   0.0012,
		ManualCutoff:    240,

		XlogPerRule:    2.0,
		XlogPerAttr:    10.0,
		XlogPerJoin:    6.0,
		XlogDebugScale: 1.0,

		SkeletonPerRule: 0.5,
		AnswerCost:      0.25,
		InspectCost:     0.20,
		CleanupCost:     8.0,
	}
}

// Shape summarises the structural complexity of a task's program: how many
// rules a developer writes, how many attributes need extractors, and how
// many approximate joins appear.
type Shape struct {
	Rules int
	Attrs int
	Joins int
}

// ShapeOf derives the shape from an Alog program: rules (all of them — the
// developer writes skeleton and description rules alike), extraction
// attributes, and p-function join literals.
func ShapeOf(prog *alog.Program) Shape {
	s := Shape{Rules: len(prog.Rules), Attrs: len(prog.Attrs())}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.Kind == alog.LitAtom {
				switch l.Atom.Pred {
				case "similar", "approxMatch":
					s.Joins++
				}
			}
		}
	}
	return s
}

// Manual returns the modelled minutes for the Manual method over n records
// (m is the second table's size for join tasks; 0 otherwise). ok=false
// means the method exceeds the cutoff and is reported DNF.
func (p Params) Manual(shape Shape, n, m int) (minutes float64, ok bool) {
	t := p.ManualBase + p.ManualPerRecord*float64(n)
	if shape.Joins > 0 {
		pairs := float64(n) * float64(maxInt(m, 1))
		// A person does not naively cross-check all pairs; sorting and
		// skimming make the effective work ~ pairs^0.75.
		t += p.ManualPerPair * math.Pow(pairs, 0.75) * float64(shape.Joins)
	}
	if t > p.ManualCutoff {
		return t, false
	}
	return t, true
}

// Xlog returns the modelled minutes for writing a precise Xlog program
// with procedural extractors.
func (p Params) Xlog(shape Shape, n int) float64 {
	t := p.XlogPerRule*float64(shape.Rules) +
		p.XlogPerAttr*float64(shape.Attrs) +
		p.XlogPerJoin*float64(shape.Joins)
	if n > 1 {
		t += p.XlogDebugScale * math.Log10(float64(n))
	}
	return t
}

// IFlex returns the modelled minutes for an iFlex session: skeleton
// writing, question answering, per-iteration inspection, plus the measured
// machine execution time and optional cleanup coding. The cleanup portion
// is also returned separately (Table 3 reports it in parentheses).
func (p Params) IFlex(shape Shape, questions, iterations int, execSeconds float64, cleanups int) (total, cleanup float64) {
	t := p.SkeletonPerRule*float64(shape.Rules) +
		p.AnswerCost*float64(questions) +
		p.InspectCost*float64(iterations) +
		execSeconds/60
	cleanup = p.CleanupCost * float64(cleanups)
	return t + cleanup, cleanup
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
