package devmodel

import (
	"testing"

	"iflex/internal/alog"
	"iflex/internal/corpus"
)

func TestShapeOf(t *testing.T) {
	task, err := corpus.TaskByID("T9")
	if err != nil {
		t.Fatal(err)
	}
	shape := ShapeOf(alog.MustParse(task.Program))
	if shape.Rules != 5 {
		t.Errorf("rules = %d", shape.Rules)
	}
	if shape.Attrs != 4 {
		t.Errorf("attrs = %d", shape.Attrs)
	}
	if shape.Joins != 1 {
		t.Errorf("joins = %d", shape.Joins)
	}
}

func TestManualShape(t *testing.T) {
	p := DefaultParams()
	simple := Shape{Rules: 3, Attrs: 2}
	small, ok1 := p.Manual(simple, 10, 0)
	large, ok2 := p.Manual(simple, 250, 0)
	if !ok1 || !ok2 {
		t.Fatal("small scenarios must be feasible")
	}
	if large <= small {
		t.Error("Manual must grow with records")
	}
	// Join tasks become infeasible at paper-scale sizes (Table 3 "—").
	join := Shape{Rules: 5, Attrs: 4, Joins: 1}
	if _, ok := p.Manual(join, 2490, 5000); ok {
		t.Error("large join scenario should be DNF")
	}
	if _, ok := p.Manual(join, 100, 100); !ok {
		t.Error("small join scenario should be feasible")
	}
}

func TestXlogNearlyFlat(t *testing.T) {
	p := DefaultParams()
	shape := Shape{Rules: 3, Attrs: 2}
	t10 := p.Xlog(shape, 10)
	t5000 := p.Xlog(shape, 5000)
	if t5000 <= t10 {
		t.Error("Xlog should grow slightly with size")
	}
	if t5000 > t10*1.5 {
		t.Errorf("Xlog should be nearly flat: %v vs %v", t10, t5000)
	}
}

func TestIFlexBelowXlog(t *testing.T) {
	p := DefaultParams()
	shape := Shape{Rules: 3, Attrs: 2}
	xlog := p.Xlog(shape, 250)
	iflex, cleanup := p.IFlex(shape, 28, 16, 2.0, 0)
	if cleanup != 0 {
		t.Errorf("cleanup = %v", cleanup)
	}
	if iflex >= xlog {
		t.Errorf("iFlex (%v) should be below Xlog (%v) — the paper's headline", iflex, xlog)
	}
	withCleanup, cl := p.IFlex(shape, 28, 16, 2.0, 1)
	if cl != p.CleanupCost || withCleanup != iflex+cl {
		t.Errorf("cleanup accounting wrong: %v, %v", withCleanup, cl)
	}
}

func TestManualVsIFlexCrossover(t *testing.T) {
	// At tiny sizes Manual can beat everything (Table 3: 10-tuple scenarios
	// take ~1 minute manually); at larger sizes iFlex must win.
	p := DefaultParams()
	shape := Shape{Rules: 3, Attrs: 2}
	manualSmall, _ := p.Manual(shape, 10, 0)
	iflexSmall, _ := p.IFlex(shape, 4, 3, 0.5, 0)
	if manualSmall > 5 || iflexSmall > 10 {
		t.Errorf("small scenario costs implausible: manual=%v iflex=%v", manualSmall, iflexSmall)
	}
	manualLarge, ok := p.Manual(shape, 5000, 0)
	iflexLarge, _ := p.IFlex(shape, 28, 16, 30, 0)
	if ok && manualLarge < iflexLarge {
		t.Errorf("Manual should lose at scale: manual=%v iflex=%v", manualLarge, iflexLarge)
	}
}
