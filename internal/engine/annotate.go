package engine

import (
	"fmt"
	"sort"
	"strings"

	"iflex/internal/compact"
	"iflex/internal/text"
)

// annotateNode is the ψ operator of Section 4.3: it converts the set of
// possible relations produced by a rule's plan fragment according to the
// rule's annotations (exists, annotated attribute set).
type annotateNode struct {
	parent   Node
	exists   bool
	annotate []string // annotated column names
	sig      string
}

func newAnnotateNode(parent Node, exists bool, annotated []string) *annotateNode {
	ann := append([]string(nil), annotated...)
	sort.Strings(ann)
	return &annotateNode{
		parent: parent, exists: exists, annotate: ann,
		sig: fmt.Sprintf("annotate[exists=%t,attrs=%s](%s)", exists, strings.Join(ann, ","), parent.Signature()),
	}
}

func (n *annotateNode) Signature() string { return n.sig }
func (n *annotateNode) Columns() []string { return n.parent.Columns() }
func (n *annotateNode) Children() []Node  { return []Node{n.parent} }

func (n *annotateNode) eval(ctx *Context, ev *EvalTrace) (*compact.Table, error) {
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	out := in
	if len(n.annotate) > 0 {
		var fallbacks int
		out, fallbacks = cAnnotate(in, n.annotate, ctx.Env.Limits)
		ev.fallback(ctx, fallbacks)
	}
	if n.exists {
		// Existence annotation: every tuple becomes a maybe tuple.
		marked := compact.NewTable(out.Cols...)
		for _, tp := range out.Tuples {
			nt := tp.Clone()
			nt.Maybe = true
			marked.Tuples = append(marked.Tuples, nt)
		}
		out = marked
	} else if out == in {
		out = in.Clone()
	}
	return out, nil
}

// cAnnotate implements attribute annotations directly over compact tables.
// Following BAnnotate (Section 4.3), tuples are grouped by the values of
// the non-annotated attributes; each group yields one output tuple whose
// annotated cells union all the group's assignments (the full set of
// values that can be associated with the key), and whose maybe flag is
// cleared only when some non-maybe input tuple pins the key exactly.
//
// Grouping needs concrete key values. Key cells that are exact singletons
// group precisely (the common case: the key is the input document). A key
// cell with several possible values makes its tuple contribute to every
// key it may take, as a maybe member — and when a key cell is too large to
// enumerate, the tuple is passed through ungrouped as a maybe tuple, which
// keeps the superset guarantee at the cost of precision. fallbacks counts
// those ungrouped pass-throughs.
func cAnnotate(in *compact.Table, annotated []string, lim Limits) (out *compact.Table, fallbacks int) {
	isAnn := map[int]bool{}
	for _, a := range annotated {
		isAnn[colIndex(in.Cols, a)] = true
	}
	var keyIdx, annIdx []int
	for i := range in.Cols {
		if isAnn[i] {
			annIdx = append(annIdx, i)
		} else {
			keyIdx = append(keyIdx, i)
		}
	}

	type group struct {
		keySpans []text.Span
		ann      [][]text.Assignment // per annotated column
		sure     bool                // some non-maybe tuple pins this key exactly
	}
	groups := map[string]*group{}
	var order []string
	out = compact.NewTable(in.Cols...)

	for _, tp := range in.Tuples {
		// Enumerate the possible key valuations of this tuple.
		keyVals := make([][]text.Span, len(keyIdx))
		exactKey := true
		tooBig := false
		combos := 1
		for i, ki := range keyIdx {
			cell := tp.Cells[ki]
			if cell.NumValues() > lim.MaxCellValues {
				tooBig = true
				break
			}
			var vs []text.Span
			cell.Values(func(s text.Span) bool { vs = append(vs, s); return true })
			keyVals[i] = vs
			if len(vs) != 1 {
				exactKey = false
			}
			combos *= len(vs)
			if combos > lim.MaxValuations {
				tooBig = true
				break
			}
		}
		if tooBig || combos == 0 {
			// Conservative pass-through.
			if tooBig {
				fallbacks++
			}
			nt := tp.Clone()
			nt.Maybe = true
			out.Tuples = append(out.Tuples, nt)
			continue
		}
		idx := make([]int, len(keyIdx))
		for {
			keySpans := make([]text.Span, len(keyIdx))
			keyParts := make([]string, len(keyIdx))
			for i, j := range idx {
				keySpans[i] = keyVals[i][j]
				keyParts[i] = keyVals[i][j].NormText()
			}
			key := strings.Join(keyParts, "␟")
			g, ok := groups[key]
			if !ok {
				g = &group{keySpans: keySpans, ann: make([][]text.Assignment, len(annIdx))}
				groups[key] = g
				order = append(order, key)
			}
			for i, ai := range annIdx {
				g.ann[i] = append(g.ann[i], tp.Cells[ai].Assigns...)
			}
			if exactKey && !tp.Maybe {
				g.sure = true
			}
			k := len(idx) - 1
			for k >= 0 {
				idx[k]++
				if idx[k] < len(keyVals[k]) {
					break
				}
				idx[k] = 0
				k--
			}
			if k < 0 {
				break
			}
		}
	}

	for _, key := range order {
		g := groups[key]
		nt := compact.Tuple{Cells: make([]compact.Cell, len(in.Cols)), Maybe: !g.sure}
		for i, ki := range keyIdx {
			nt.Cells[ki] = compact.ExactCell(g.keySpans[i])
		}
		for i, ai := range annIdx {
			nt.Cells[ai] = compact.Cell{Assigns: text.DedupAssignments(g.ann[i])}
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out, fallbacks
}

// BAnnotate is the a-table algorithm of Section 4.3 (Figure 5): given an
// a-table and the set of annotated attribute names, it builds one index
// per annotated attribute keyed by the non-annotated value tuples, and
// emits one output a-tuple per key. Exposed for tests and as the reference
// implementation that cAnnotate is checked against.
func BAnnotate(in *compact.ATable, annotated []string) *compact.ATable {
	isAnn := map[int]bool{}
	for _, a := range annotated {
		for i, c := range in.Cols {
			if c == a {
				isAnn[i] = true
			}
		}
	}
	var keyIdx, annIdx []int
	for i := range in.Cols {
		if isAnn[i] {
			annIdx = append(annIdx, i)
		} else {
			keyIdx = append(keyIdx, i)
		}
	}
	type entry struct {
		keySpans []text.Span
		values   []map[string]text.Span // per annotated col: value text -> span
		sure     bool
	}
	index := map[string]*entry{}
	var order []string

	var rec func(t compact.ATuple, i int, keySpans []text.Span, keyParts []string, single bool)
	rec = func(t compact.ATuple, i int, keySpans []text.Span, keyParts []string, single bool) {
		if i == len(keyIdx) {
			key := strings.Join(keyParts, "␟")
			e, ok := index[key]
			if !ok {
				e = &entry{keySpans: append([]text.Span(nil), keySpans...), values: make([]map[string]text.Span, len(annIdx))}
				for j := range e.values {
					e.values[j] = map[string]text.Span{}
				}
				index[key] = e
				order = append(order, key)
			}
			for j, ai := range annIdx {
				for _, v := range t.Cells[ai] {
					if _, ok := e.values[j][v.NormText()]; !ok {
						e.values[j][v.NormText()] = v
					}
				}
			}
			if single && !t.Maybe {
				e.sure = true
			}
			return
		}
		cell := t.Cells[keyIdx[i]]
		for _, v := range cell {
			rec(t, i+1, append(keySpans, v), append(keyParts, v.NormText()), single && len(cell) == 1)
		}
	}
	for _, t := range in.Tuples {
		rec(t, 0, nil, nil, true)
	}

	out := compact.NewATable(in.Cols...)
	for _, key := range order {
		e := index[key]
		t := compact.ATuple{Cells: make([]compact.ACell, len(in.Cols)), Maybe: !e.sure}
		for i, ki := range keyIdx {
			t.Cells[ki] = compact.ACell{e.keySpans[i]}
		}
		for j, ai := range annIdx {
			texts := make([]string, 0, len(e.values[j]))
			for txt := range e.values[j] {
				texts = append(texts, txt)
			}
			sort.Strings(texts)
			var vals compact.ACell
			for _, txt := range texts {
				vals = append(vals, e.values[j][txt])
			}
			t.Cells[ai] = vals
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out
}
