package engine

import (
	"fmt"
	"sort"
	"strings"

	"iflex/internal/compact"
	"iflex/internal/text"
)

// annotateNode is the ψ operator of Section 4.3: it converts the set of
// possible relations produced by a rule's plan fragment according to the
// rule's annotations (exists, annotated attribute set).
type annotateNode struct {
	nodeSig
	parent   Node
	exists   bool
	annotate []string // annotated column names
}

func newAnnotateNode(parent Node, exists bool, annotated []string) *annotateNode {
	ann := append([]string(nil), annotated...)
	sort.Strings(ann)
	return &annotateNode{
		nodeSig: sigOf(fmt.Sprintf("annotate[exists=%t,attrs=%s](%s)", exists, strings.Join(ann, ","), parent.Signature())),
		parent:  parent, exists: exists, annotate: ann,
	}
}

func (n *annotateNode) Columns() []string { return n.parent.Columns() }
func (n *annotateNode) Children() []Node  { return []Node{n.parent} }

func (n *annotateNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	// Annotation is pure and cheap (no user code), so a best-effort cut
	// lets it run to completion over whatever the parent produced; only a
	// hard cancellation stops it here.
	if _, cerr := ctx.cutCheck(); cerr != nil {
		return nil, cerr
	}
	out := in
	if len(n.annotate) > 0 {
		out = n.annotateTable(ctx, ev, dx, in)
	}
	if n.exists {
		// Existence annotation: every tuple becomes a maybe tuple.
		marked := compact.NewTable(out.Cols...)
		for _, tp := range out.Tuples {
			nt := tp.Clone()
			nt.Maybe = true
			marked.Tuples = append(marked.Tuples, nt)
		}
		out = marked
	} else if out == in {
		out = in.Clone()
	}
	return out, nil
}

// annotateTable applies the attribute annotation with optional delta
// reuse: the per-tuple key enumeration (the expensive half of cAnnotate)
// is memoised as an annContrib, and the grouping merge replays memoised
// contributions for structurally unchanged tuples. Output is identical to
// cAnnotate.
func (n *annotateNode) annotateTable(ctx *Context, ev *EvalTrace, dx *deltaState, in *compact.Table) *compact.Table {
	lim := ctx.Env.Limits
	keyIdx, annIdx := splitAnnCols(in.Cols, n.annotate)
	// The contribution depends only on the key cells, so the memo is keyed
	// on them alone; the merge reads annotated cells and maybe flags from
	// the current tuples, so replays stay valid across refinements of the
	// annotated columns.
	prior, fps := dx.prep(in, keyIdx, nil, 0)
	contribs := make([]*annContrib, len(in.Tuples))
	var batch statBatch
	reused := 0
	for i, tp := range in.Tuples {
		if fps != nil {
			fps[i] = dx.aux.fpOf(tp)
			if old, ok := prior.lookup(fps[i], tp); ok {
				contribs[i] = old.ann
				ev.fallback(ctx, int(old.fallbacks))
				reused++
				continue
			}
		}
		batch.tuplesRecomputed++
		c := annContribOf(tp, keyIdx, annIdx, lim)
		contribs[i] = c
		if c.fallback {
			ev.fallback(ctx, 1)
		}
	}
	dx.noteReused(&batch, reused)
	ev.recompute(batch.tuplesRecomputed)
	batch.flush(ctx)
	out := annMerge(in, keyIdx, annIdx, contribs)
	dx.finish(in, func(i int) deltaOut {
		o := deltaOut{ann: contribs[i]}
		if contribs[i].fallback {
			o.fallbacks = 1
		}
		return o
	})
	return out
}

// splitAnnCols partitions column indices into key (non-annotated) and
// annotated positions.
func splitAnnCols(cols []string, annotated []string) (keyIdx, annIdx []int) {
	isAnn := map[int]bool{}
	for _, a := range annotated {
		isAnn[colIndex(cols, a)] = true
	}
	for i := range cols {
		if isAnn[i] {
			annIdx = append(annIdx, i)
		} else {
			keyIdx = append(keyIdx, i)
		}
	}
	return keyIdx, annIdx
}

// annContrib is one input tuple's contribution to the annotation grouping:
// either a conservative pass-through marker (key too large to enumerate,
// or no key valuation) or the ordered list of group keys the tuple feeds,
// with the key spans that create each group and whether the key cells are
// all pinned singletons. It depends only on the tuple's key cells — the
// merge reads the annotated cells and the maybe flag from the current
// input tuple — which is what makes it memoisable across plan versions
// under a key-columns-only memo.
type annContrib struct {
	pass     bool
	fallback bool
	exactKey bool
	keys     []string
	keySpans [][]text.Span
}

// annContribOf enumerates one tuple's key valuations (the per-tuple half
// of cAnnotate).
func annContribOf(tp compact.Tuple, keyIdx, annIdx []int, lim Limits) *annContrib {
	keyVals := make([][]text.Span, len(keyIdx))
	exactKey := true
	tooBig := false
	combos := 1
	for i, ki := range keyIdx {
		cell := tp.Cells[ki]
		if cell.NumValues() > lim.MaxCellValues {
			tooBig = true
			break
		}
		var vs []text.Span
		cell.Values(func(s text.Span) bool { vs = append(vs, s); return true })
		keyVals[i] = vs
		if len(vs) != 1 {
			exactKey = false
		}
		combos *= len(vs)
		if combos > lim.MaxValuations {
			tooBig = true
			break
		}
	}
	if tooBig || combos == 0 {
		// Conservative pass-through (the merge clones the current tuple).
		return &annContrib{pass: true, fallback: tooBig}
	}
	c := &annContrib{exactKey: exactKey}
	idx := make([]int, len(keyIdx))
	for {
		keySpans := make([]text.Span, len(keyIdx))
		keyParts := make([]string, len(keyIdx))
		for i, j := range idx {
			keySpans[i] = keyVals[i][j]
			keyParts[i] = keyVals[i][j].NormText()
		}
		c.keys = append(c.keys, strings.Join(keyParts, "␟"))
		c.keySpans = append(c.keySpans, keySpans)
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(keyVals[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return c
}

// annGroup accumulates one output group during the merge.
type annGroup struct {
	keySpans []text.Span
	ann      [][]text.Assignment // per annotated column
	sure     bool                // some non-maybe tuple pins this key exactly
}

// annMerge folds per-tuple contributions into the grouped output table,
// in input order: pass-through tuples interleave with the grouping
// exactly where cAnnotate emitted them, group creation order follows
// first key occurrence, and per-group assignment concatenation follows
// tuple order — so the output is byte-identical to the one-pass
// algorithm.
func annMerge(in *compact.Table, keyIdx, annIdx []int, contribs []*annContrib) *compact.Table {
	groups := map[string]*annGroup{}
	var order []string
	out := compact.NewTable(in.Cols...)
	for ti, c := range contribs {
		if c.pass {
			nt := in.Tuples[ti].Clone()
			nt.Maybe = true
			out.Tuples = append(out.Tuples, nt)
			continue
		}
		tp := in.Tuples[ti]
		for ki, key := range c.keys {
			g, ok := groups[key]
			if !ok {
				g = &annGroup{keySpans: c.keySpans[ki], ann: make([][]text.Assignment, len(annIdx))}
				groups[key] = g
				order = append(order, key)
			}
			for i, ai := range annIdx {
				g.ann[i] = append(g.ann[i], tp.Cells[ai].Assigns...)
			}
			if c.exactKey && !tp.Maybe {
				g.sure = true
			}
		}
	}
	for _, key := range order {
		g := groups[key]
		nt := compact.Tuple{Cells: make([]compact.Cell, len(in.Cols)), Maybe: !g.sure}
		for i, ki := range keyIdx {
			nt.Cells[ki] = compact.ExactCell(g.keySpans[i])
		}
		for i, ai := range annIdx {
			nt.Cells[ai] = compact.Cell{Assigns: text.DedupAssignments(g.ann[i])}
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out
}

// cAnnotate implements attribute annotations directly over compact tables.
// Following BAnnotate (Section 4.3), tuples are grouped by the values of
// the non-annotated attributes; each group yields one output tuple whose
// annotated cells union all the group's assignments (the full set of
// values that can be associated with the key), and whose maybe flag is
// cleared only when some non-maybe input tuple pins the key exactly.
//
// Grouping needs concrete key values. Key cells that are exact singletons
// group precisely (the common case: the key is the input document). A key
// cell with several possible values makes its tuple contribute to every
// key it may take, as a maybe member — and when a key cell is too large to
// enumerate, the tuple is passed through ungrouped as a maybe tuple, which
// keeps the superset guarantee at the cost of precision. fallbacks counts
// those ungrouped pass-throughs.
func cAnnotate(in *compact.Table, annotated []string, lim Limits) (out *compact.Table, fallbacks int) {
	keyIdx, annIdx := splitAnnCols(in.Cols, annotated)
	contribs := make([]*annContrib, len(in.Tuples))
	for i, tp := range in.Tuples {
		contribs[i] = annContribOf(tp, keyIdx, annIdx, lim)
		if contribs[i].fallback {
			fallbacks++
		}
	}
	return annMerge(in, keyIdx, annIdx, contribs), fallbacks
}

// BAnnotate is the a-table algorithm of Section 4.3 (Figure 5): given an
// a-table and the set of annotated attribute names, it builds one index
// per annotated attribute keyed by the non-annotated value tuples, and
// emits one output a-tuple per key. Exposed for tests and as the reference
// implementation that cAnnotate is checked against.
func BAnnotate(in *compact.ATable, annotated []string) *compact.ATable {
	isAnn := map[int]bool{}
	for _, a := range annotated {
		for i, c := range in.Cols {
			if c == a {
				isAnn[i] = true
			}
		}
	}
	var keyIdx, annIdx []int
	for i := range in.Cols {
		if isAnn[i] {
			annIdx = append(annIdx, i)
		} else {
			keyIdx = append(keyIdx, i)
		}
	}
	type entry struct {
		keySpans []text.Span
		values   []map[string]text.Span // per annotated col: value text -> span
		sure     bool
	}
	index := map[string]*entry{}
	var order []string

	var rec func(t compact.ATuple, i int, keySpans []text.Span, keyParts []string, single bool)
	rec = func(t compact.ATuple, i int, keySpans []text.Span, keyParts []string, single bool) {
		if i == len(keyIdx) {
			key := strings.Join(keyParts, "␟")
			e, ok := index[key]
			if !ok {
				e = &entry{keySpans: append([]text.Span(nil), keySpans...), values: make([]map[string]text.Span, len(annIdx))}
				for j := range e.values {
					e.values[j] = map[string]text.Span{}
				}
				index[key] = e
				order = append(order, key)
			}
			for j, ai := range annIdx {
				for _, v := range t.Cells[ai] {
					if _, ok := e.values[j][v.NormText()]; !ok {
						e.values[j][v.NormText()] = v
					}
				}
			}
			if single && !t.Maybe {
				e.sure = true
			}
			return
		}
		cell := t.Cells[keyIdx[i]]
		for _, v := range cell {
			rec(t, i+1, append(keySpans, v), append(keyParts, v.NormText()), single && len(cell) == 1)
		}
	}
	for _, t := range in.Tuples {
		rec(t, 0, nil, nil, true)
	}

	out := compact.NewATable(in.Cols...)
	for _, key := range order {
		e := index[key]
		t := compact.ATuple{Cells: make([]compact.ACell, len(in.Cols)), Maybe: !e.sure}
		for i, ki := range keyIdx {
			t.Cells[ki] = compact.ACell{e.keySpans[i]}
		}
		for j, ai := range annIdx {
			texts := make([]string, 0, len(e.values[j]))
			for txt := range e.values[j] {
				texts = append(texts, txt)
			}
			sort.Strings(texts)
			var vals compact.ACell
			for _, txt := range texts {
				vals = append(vals, e.values[j][txt])
			}
			t.Cells[ai] = vals
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out
}
