package engine

import (
	"iflex/internal/compact"
	"iflex/internal/similarity"
	"iflex/internal/text"
)

// Bounds summarises an approximate result as the interval the paper's
// Section 4 sketches as future execution semantics: alongside the
// superset (every tuple that may exist), the *certain* lower bound —
// tuples present in every possible relation the result represents.
type Bounds struct {
	// Certain contains the non-maybe tuples whose cells are all pinned to
	// single values: they appear in every possible world.
	Certain *compact.Table
	// Possible is the full superset result.
	Possible *compact.Table
}

// ResultBounds splits a result table into its certain core and the full
// superset. A tuple is certain when it is not maybe and every cell
// encodes exactly one value (expansion cells with one value count).
func ResultBounds(t *compact.Table) Bounds {
	certain := compact.NewTable(t.Cols...)
	for _, tp := range t.Tuples {
		if tp.Maybe {
			continue
		}
		pinned := true
		for _, c := range tp.Cells {
			if _, ok := c.Singleton(); !ok {
				pinned = false
				break
			}
		}
		if pinned {
			certain.Tuples = append(certain.Tuples, tp.Clone())
		}
	}
	return Bounds{Certain: certain, Possible: t}
}

// UseTFIDF rebinds the similar/approxMatch p-functions to TF/IDF cosine
// similarity with document statistics learned from the environment's
// extensional tables (the paper's approxMatch "e.g., TF/IDF"). The
// threshold is the cosine score at or above which spans match. The
// p-functions remain token-blockable: a non-zero cosine requires a shared
// token.
func (e *Env) UseTFIDF(threshold float64) {
	var docsSeen []string
	seen := map[string]bool{}
	for _, t := range e.Tables {
		for _, tp := range t.Tuples {
			for _, c := range tp.Cells {
				for _, a := range c.Assigns {
					id := a.Span.Doc().ID()
					if !seen[id] {
						seen[id] = true
						docsSeen = append(docsSeen, a.Span.Doc().Text())
					}
				}
			}
		}
	}
	ti := similarity.NewTFIDF(docsSeen)
	fn := func(args []text.Span) (bool, error) {
		if len(args) != 2 {
			return false, errArity{}
		}
		return ti.Cosine(args[0].NormText(), args[1].NormText()) >= threshold, nil
	}
	e.Funcs["similar"] = fn
	e.Funcs["approxMatch"] = fn
	// The token fast path implements the default Jaccard/prefix semantics,
	// not TF/IDF: disable it.
	delete(e.TokenSimilar, "similar")
	delete(e.TokenSimilar, "approxMatch")
}

type errArity struct{}

func (errArity) Error() string { return "engine: similar expects 2 arguments" }
