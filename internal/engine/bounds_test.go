package engine

import (
	"testing"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/markup"
	"iflex/internal/text"
)

func TestResultBounds(t *testing.T) {
	d := markup.MustParse("d", "alpha beta 42")
	tb := compact.NewTable("v")
	tb.Append(compact.Tuple{Cells: []compact.Cell{compact.ExactCell(d.Span(0, 5))}})               // certain
	tb.Append(compact.Tuple{Cells: []compact.Cell{compact.ExactCell(d.Span(6, 10))}, Maybe: true}) // maybe
	tb.Append(compact.Tuple{Cells: []compact.Cell{compact.ContainCell(d.WholeSpan())}})            // unpinned
	b := ResultBounds(tb)
	if len(b.Certain.Tuples) != 1 {
		t.Fatalf("certain:\n%s", b.Certain)
	}
	if v, _ := b.Certain.Tuples[0].Cells[0].Singleton(); v.Text() != "alpha" {
		t.Errorf("certain tuple = %s", b.Certain.Tuples[0])
	}
	if len(b.Possible.Tuples) != 3 {
		t.Errorf("possible = %d tuples", len(b.Possible.Tuples))
	}
}

// The certain bound of the Figure 2 run: the comparison leaves only maybe
// tuples (values uncertain), so the certain core is empty until the
// program is refined; after refinement the certain core still excludes
// the tuple because the school join remains maybe (existence annotation).
func TestBoundsOnFigure2(t *testing.T) {
	env := figure2Env()
	res, err := Run(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	b := ResultBounds(res)
	if len(b.Certain.Tuples) != 0 {
		t.Errorf("maybe-only result should have empty certain core:\n%s", b.Certain)
	}
}

func TestUseTFIDF(t *testing.T) {
	env := NewEnv()
	docs := []*text.Document{
		markup.MustParse("a", "<b>Query Processing Basics</b>"),
		markup.MustParse("b", "<b>Query Processing Basics</b>"),
		markup.MustParse("c", "<b>Transaction Recovery Methods</b>"),
	}
	env.AddDocTable("L", "x", docs[:1])
	env.AddDocTable("R", "y", docs[1:])
	env.UseTFIDF(0.9)
	prog := alog.MustParse(`
a(x, <s>) :- L(x), e1(x, s).
b(y, <t>) :- R(y), e2(y, t).
Q(s, t) :- a(x, s), b(y, t), similar(s, t).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
`)
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	// Only the identical titles match at cosine >= 0.9.
	if len(res.Tuples) != 1 {
		t.Fatalf("TF/IDF join result:\n%s", res)
	}
}
