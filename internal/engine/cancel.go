package engine

import (
	"context"
	"sort"
	"sync/atomic"

	"iflex/internal/compact"
)

// CancelMode selects what a bound cancellation does when it fires.
type CancelMode int

const (
	// CancelHard aborts evaluation with the context's error: Eval calls
	// and operator chunks fail fast and the caller gets no table.
	CancelHard CancelMode = iota
	// CancelBestEffort degrades instead of failing: operator loops stop
	// at tuple/chunk granularity, remaining documents are recorded as
	// unprocessed, and the caller gets the partial — still
	// superset-correct over the processed documents — table built so far.
	CancelBestEffort
)

// cancelState is one bound cancellation source. fired memoises the first
// observation of the done channel so later checkpoints skip the select.
type cancelState struct {
	c    context.Context
	soft bool
	// fired flips to true the first time a checkpoint observes c.Done().
	fired atomic.Bool
}

// BindCancel attaches a standard context to this engine context: every
// subsequent checkpoint (Eval entry, operator tuple/chunk loops,
// single-flight waits, simulation fan-out) observes c's cancellation in
// the given mode. It also resets the degradation report collected for
// the previous binding. Bind before starting an evaluation and Unbind
// when done; like SetDocFilter it must not race with in-flight
// evaluations.
func (ctx *Context) BindCancel(c context.Context, mode CancelMode) {
	ctx.degMu.Lock()
	ctx.degExpired = false
	ctx.degUnprocessed = nil
	ctx.degMu.Unlock()
	ctx.cancelSt.Store(&cancelState{c: c, soft: mode == CancelBestEffort})
}

// Unbind detaches the bound cancellation source. The degradation state
// collected while bound remains readable through DegradedReport until
// the next BindCancel.
func (ctx *Context) Unbind() { ctx.cancelSt.Store(nil) }

// Cancelled reports whether a cancellation bound via BindCancel has
// fired (either mode). With nothing bound it is false.
func (ctx *Context) Cancelled() bool {
	cs := ctx.cancelSt.Load()
	return cs != nil && cs.observe()
}

// observe checks the bound context without blocking, memoising a fired
// cancellation.
func (cs *cancelState) observe() bool {
	if cs.fired.Load() {
		return true
	}
	select {
	case <-cs.c.Done():
		cs.fired.Store(true)
		return true
	default:
		return false
	}
}

// cutCheck is the engine's cancellation checkpoint. With nothing bound
// (or the source not yet fired) both returns are zero. A fired hard
// cancellation returns the context's error; a fired best-effort
// cancellation returns cut=true and marks the degradation report
// expired — the caller stops its loop, records what it skipped via
// noteUnprocessed, and returns its partial output.
func (ctx *Context) cutCheck() (cut bool, err error) {
	cs := ctx.cancelSt.Load()
	if cs == nil || !cs.observe() {
		return false, nil
	}
	if !cs.soft {
		return false, context.Cause(cs.c)
	}
	ctx.degMu.Lock()
	ctx.degExpired = true
	ctx.degMu.Unlock()
	return true, nil
}

// cancelFired reports whether a bound cancellation of either mode has
// been observed; Eval uses it to keep results computed after the cut out
// of the reuse cache (a soft-cut evaluation may be partial).
func (ctx *Context) cancelFired() bool {
	cs := ctx.cancelSt.Load()
	return cs != nil && cs.fired.Load()
}

// waitInflight parks on another goroutine's in-progress evaluation of
// the same key. Under a hard cancellation the wait itself is
// cancellable, so a stuck owner cannot hang a cancelled waiter; under
// best-effort (or no) cancellation the owner is guaranteed to finish
// promptly, so a plain wait suffices.
func (ctx *Context) waitInflight(c *inflightEval) error {
	if cs := ctx.cancelSt.Load(); cs != nil && !cs.soft {
		select {
		case <-c.done:
			return nil
		case <-cs.c.Done():
			cs.fired.Store(true)
			return context.Cause(cs.c)
		}
	}
	<-c.done
	return nil
}

// noteUnprocessed records the documents feeding the given tuples as
// unprocessed: a best-effort cut skipped them, and the degradation
// report must name them rather than let them vanish silently. It also
// counts one operator-loop cut (a scheduling-dependent counter, like the
// pool stats).
func (ctx *Context) noteUnprocessed(tuples []compact.Tuple) {
	statAdd(&ctx.Stats.DeadlineCuts, 1)
	if len(tuples) == 0 {
		return
	}
	ctx.degMu.Lock()
	defer ctx.degMu.Unlock()
	if ctx.degUnprocessed == nil {
		ctx.degUnprocessed = map[string]bool{}
	}
	for _, tp := range tuples {
		for _, cell := range tp.Cells {
			for _, a := range cell.Assigns {
				ctx.degUnprocessed[a.Span.Doc().ID()] = true
			}
		}
	}
}

// DegradedReport assembles the degradation report for the work done
// since the last BindCancel: the deadline/cancel cut state, the
// documents left unprocessed by cuts, and the documents quarantined by
// per-document fault handling. It returns nil when the evaluation was
// complete and fault-free, so callers can attach it only when there is
// something to say.
func (ctx *Context) DegradedReport() *compact.Degraded {
	rep := &compact.Degraded{}
	ctx.degMu.Lock()
	rep.DeadlineExpired = ctx.degExpired
	for id := range ctx.degUnprocessed {
		rep.UnprocessedDocs = append(rep.UnprocessedDocs, id)
	}
	ctx.degMu.Unlock()
	sort.Strings(rep.UnprocessedDocs)
	if q := ctx.qstate.Load(); q != nil {
		rep.Quarantined = append(rep.Quarantined, q.records...)
		sort.Slice(rep.Quarantined, func(i, j int) bool { return rep.Quarantined[i].Doc < rep.Quarantined[j].Doc })
	}
	if !rep.DeadlineExpired && len(rep.UnprocessedDocs) == 0 && len(rep.Quarantined) == 0 {
		return nil
	}
	return rep
}

// AttachDegraded returns t with the context's degradation report
// attached, or t itself when there is nothing to report. The table is
// shallow-copied: cached intermediates are shared and must never be
// mutated.
func (ctx *Context) AttachDegraded(t *compact.Table) *compact.Table {
	rep := ctx.DegradedReport()
	if rep == nil || t == nil {
		return t
	}
	t2 := *t
	t2.Degraded = rep
	return &t2
}
