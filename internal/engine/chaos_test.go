package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"iflex/internal/alog"
	"iflex/internal/fault"
	"iflex/internal/markup"
	"iflex/internal/text"
)

// chaosSchools is the pool of school names the generated corpus draws
// from; a third of the houses name a school that exists in the school
// pages, so the approxMatch join produces real pairs.
var chaosSchools = []string{"Basktall", "Vanhise", "Franklin", "Hoover", "Ossage", "Lincoln"}

// chaosHouseDocs generates n house pages in the Figure 1.b shape with
// varied prices and square footage, deterministically from the index.
func chaosHouseDocs(n int) []*text.Document {
	docs := make([]*text.Document, 0, n)
	for i := 0; i < n; i++ {
		school := chaosSchools[i%len(chaosSchools)]
		src := fmt.Sprintf(`House number %d on a fine street.<br>
%d Maple Ave., Springfield<br>
Sqft: %d<br>
Price: %d<br>
High school: %s High`, i, 100+i, 2000+137*i, 300000+41000*i, school)
		docs = append(docs, markup.MustParse(fmt.Sprintf("h%02d", i), src))
	}
	return docs
}

// chaosSchoolDocs generates m school pages, each listing two bold school
// names from the pool.
func chaosSchoolDocs(m int) []*text.Document {
	docs := make([]*text.Document, 0, m)
	for i := 0; i < m; i++ {
		a := chaosSchools[(2*i)%len(chaosSchools)]
		b := chaosSchools[(2*i+1)%len(chaosSchools)]
		src := fmt.Sprintf(`<title>School listing %d</title>
<ul><li><b>%s</b>, Springfield</li>
<li><b>%s</b>, Shelbyville</li></ul>`, i, a, b)
		docs = append(docs, markup.MustParse(fmt.Sprintf("s%02d", i), src))
	}
	return docs
}

// chaosEnv binds a generated corpus, optionally excluding documents (the
// clean-run comparison rebuilds the env without the quarantined ones).
func chaosEnv(nHouses, nSchools int, exclude map[string]bool) *Env {
	env := NewEnv()
	keep := func(docs []*text.Document) []*text.Document {
		if len(exclude) == 0 {
			return docs
		}
		var out []*text.Document
		for _, d := range docs {
			if !exclude[d.ID()] {
				out = append(out, d)
			}
		}
		return out
	}
	env.AddDocTable("housePages", "x", keep(chaosHouseDocs(nHouses)))
	env.AddDocTable("schoolPages", "y", keep(chaosSchoolDocs(nSchools)))
	return env
}

// runChaosConfig compiles and executes figure2Src over a chaos env under
// the given configuration, returning the rendered table and the context.
func runChaosConfig(t *testing.T, env *Env, workers int, delta bool) (string, *Context) {
	t.Helper()
	prog := alog.MustParse(figure2Src)
	plan, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.Workers = workers
	if delta {
		ctx.EnableDelta()
	}
	ctx.FaultPolicy = QuarantineFaults
	tbl, err := plan.Execute(ctx)
	if err != nil {
		t.Fatalf("workers=%d delta=%v: %v", workers, delta, err)
	}
	return tbl.String(), ctx
}

// TestChaosQuarantineDeterministic is the core chaos invariant: with
// deterministic error faults injected at the feature boundary, the
// result table and the quarantined document set are byte-identical
// across worker counts and delta on/off, and the result equals a
// fault-free run over the corpus minus exactly the quarantined
// documents.
func TestChaosQuarantineDeterministic(t *testing.T) {
	inj := fault.New(42, fault.Rule{Site: "feature", Mode: fault.ModeError, Num: 1, Den: 4})

	type cfg struct {
		workers int
		delta   bool
	}
	configs := []cfg{{1, false}, {8, false}, {1, true}, {8, true}}
	var tables []string
	var quarantines [][]string
	for _, c := range configs {
		env := chaosEnv(18, 6, nil)
		env.FaultHook = inj.Hook()
		tbl, ctx := runChaosConfig(t, env, c.workers, c.delta)
		tables = append(tables, tbl)
		quarantines = append(quarantines, ctx.QuarantinedDocs())
		if ctx.Stats.QuarantinedDocs == 0 {
			t.Fatalf("workers=%d delta=%v: no documents quarantined; faults did not fire", c.workers, c.delta)
		}
		if ctx.Stats.EvalRestarts == 0 {
			t.Errorf("workers=%d delta=%v: expected at least one quarantine restart", c.workers, c.delta)
		}
	}
	for i := 1; i < len(configs); i++ {
		if tables[i] != tables[0] {
			t.Errorf("config %+v table differs from config %+v:\n%s\n---\n%s",
				configs[i], configs[0], tables[i], tables[0])
		}
		if strings.Join(quarantines[i], ",") != strings.Join(quarantines[0], ",") {
			t.Errorf("config %+v quarantine %v differs from config %+v quarantine %v",
				configs[i], quarantines[i], configs[0], quarantines[0])
		}
	}

	// Every quarantined document must be one the injector targets at the
	// feature site: single-document attribution at that boundary.
	faulty := map[string]bool{}
	for _, id := range inj.FaultyDocs("feature", allChaosIDs(18, 6)) {
		faulty[id] = true
	}
	for _, id := range quarantines[0] {
		if !faulty[id] {
			t.Errorf("doc %s quarantined but the injector never targeted it", id)
		}
	}

	// The faulted result must equal a fault-free run over the corpus
	// minus exactly the quarantined documents.
	exclude := map[string]bool{}
	for _, id := range quarantines[0] {
		exclude[id] = true
	}
	cleanEnv := chaosEnv(18, 6, exclude)
	cleanTbl, cleanCtx := runChaosConfig(t, cleanEnv, 1, false)
	if got := cleanCtx.QuarantinedDocs(); len(got) != 0 {
		t.Fatalf("clean run quarantined %v", got)
	}
	if cleanTbl != tables[0] {
		t.Errorf("faulted result differs from clean run over corpus minus quarantined docs:\nfaulted:\n%s\nclean:\n%s",
			tables[0], cleanTbl)
	}
}

func allChaosIDs(nHouses, nSchools int) []string {
	var ids []string
	for _, d := range chaosHouseDocs(nHouses) {
		ids = append(ids, d.ID())
	}
	for _, d := range chaosSchoolDocs(nSchools) {
		ids = append(ids, d.ID())
	}
	return ids
}

// TestChaosNoPoisonedCache re-executes on the same context after
// disabling the injector: every node must come back from the reuse cache
// byte-identical — no entry computed during a faulting pass may have
// been cached.
func TestChaosNoPoisonedCache(t *testing.T) {
	inj := fault.New(7, fault.Rule{Site: "pfunc", Mode: fault.ModeError, Num: 1, Den: 5})
	env := chaosEnv(18, 6, nil)
	env.FaultHook = inj.Hook()
	prog := alog.MustParse(figure2Src)
	plan, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.Workers = 4
	ctx.FaultPolicy = QuarantineFaults
	first, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.QuarantinedDocs == 0 {
		t.Fatal("no documents quarantined; faults did not fire")
	}

	inj.Disable()
	evalsBefore := ctx.Stats.NodesEvaluated
	second, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if second.String() != first.String() {
		t.Errorf("re-execution after disabling faults changed the result:\n%s\n---\n%s", second, first)
	}
	if ctx.Stats.NodesEvaluated != evalsBefore {
		t.Errorf("re-execution evaluated %d nodes fresh; all should be cache hits",
			ctx.Stats.NodesEvaluated-evalsBefore)
	}
}

// TestChaosPanicQuarantine injects panics (never retried) at the
// p-function boundary: the process must survive, the offending documents
// must be quarantined, and the run must complete.
func TestChaosPanicQuarantine(t *testing.T) {
	inj := fault.New(99, fault.Rule{Site: "pfunc", Mode: fault.ModePanic, Num: 1, Den: 6})
	env := chaosEnv(18, 6, nil)
	env.FaultHook = inj.Hook()
	tbl, ctx := runChaosConfig(t, env, 8, false)
	if tbl == "" {
		t.Fatal("empty result")
	}
	if ctx.Stats.QuarantinedDocs == 0 {
		t.Fatal("no documents quarantined by injected panics")
	}
	if ctx.Stats.QuarantineRetries != 0 {
		t.Errorf("panics were retried %d times; panics must never be retried", ctx.Stats.QuarantineRetries)
	}
	found := false
	for _, r := range ctx.DegradedReport().Quarantined {
		if strings.Contains(r.Cause, "panic") {
			found = true
		}
	}
	if !found {
		t.Error("no quarantine record names the panic")
	}
}

// TestChaosRetriesTransientErrors checks the capped-retry path: a fault
// hook that fails once per document and then succeeds must produce
// retries but no quarantine.
func TestChaosRetriesTransientErrors(t *testing.T) {
	env := chaosEnv(12, 4, nil)
	failed := struct {
		mu   chan struct{}
		seen map[string]bool
	}{mu: make(chan struct{}, 1), seen: map[string]bool{}}
	failed.mu <- struct{}{}
	env.FaultHook = func(site string, docs []string) error {
		if site != "feature" || len(docs) == 0 {
			return nil
		}
		<-failed.mu
		defer func() { failed.mu <- struct{}{} }()
		if !failed.seen[docs[0]] {
			failed.seen[docs[0]] = true
			return errors.New("transient")
		}
		return nil
	}
	tbl, ctx := runChaosConfig(t, env, 4, false)
	if ctx.Stats.QuarantineRetries == 0 {
		t.Error("transient errors produced no retries")
	}
	if ctx.Stats.QuarantinedDocs != 0 {
		t.Errorf("transient errors quarantined %d docs; retry should have recovered them",
			ctx.Stats.QuarantinedDocs)
	}

	// The retried run must match a wholly fault-free one.
	cleanEnv := chaosEnv(12, 4, nil)
	cleanTbl, _ := runChaosConfig(t, cleanEnv, 4, false)
	if tbl != cleanTbl {
		t.Error("retried run differs from fault-free run")
	}
}

// TestChaosDeadlinePartialResult is the deadline acceptance test: with
// per-unit injected latency making the full evaluation far exceed the
// deadline, ExecuteContext must return within 2x the deadline with a
// non-nil partial table, a populated degradation report, and no leaked
// goroutines.
func TestChaosDeadlinePartialResult(t *testing.T) {
	inj := fault.New(5, fault.Rule{Site: "pfunc", Mode: fault.ModeLatency, Num: 1, Den: 1, Latency: 2 * time.Millisecond})
	env := chaosEnv(30, 10, nil)
	env.FaultHook = inj.Hook()
	prog := alog.MustParse(figure2Src)
	plan, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.Workers = 2

	before := runtime.NumGoroutine()
	deadline := 250 * time.Millisecond
	c, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	tbl, err := plan.ExecuteContext(c, ctx)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= 2*deadline {
		t.Errorf("ExecuteContext took %v, over 2x the %v deadline", elapsed, deadline)
	}
	if tbl == nil {
		t.Fatal("nil table from a best-effort deadline run")
	}
	if tbl.Degraded == nil || !tbl.Degraded.DeadlineExpired {
		t.Fatalf("degradation report missing or not expired: %+v", tbl.Degraded)
	}
	if len(tbl.Degraded.UnprocessedDocs) == 0 {
		t.Error("deadline expired but no documents recorded as unprocessed")
	}
	if ctx.Stats.DeadlineCuts == 0 {
		t.Error("no operator loop recorded a deadline cut")
	}

	// Worker goroutines must drain: poll until the count settles back.
	settled := false
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+2 {
			settled = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !settled {
		t.Errorf("goroutines did not settle: before=%d now=%d", before, runtime.NumGoroutine())
	}
}

// TestChaosHardCancelReleasesWaiters checks the single-flight fix: a
// waiter parked on another goroutine's in-progress evaluation must
// unblock promptly with an error when a hard cancellation fires, even
// while the owner is still stuck.
func TestChaosHardCancelReleasesWaiters(t *testing.T) {
	ctx := NewContext(NewEnv())
	c, cancel := context.WithCancel(context.Background())
	ctx.BindCancel(c, CancelHard)
	defer ctx.Unbind()

	n := &panicNode{started: make(chan struct{}), release: make(chan struct{})}
	owner := make(chan any, 1)
	go func() {
		defer func() { owner <- recover() }()
		Eval(ctx, n)
	}()
	<-n.started

	waiter := make(chan error, 1)
	go func() {
		_, err := Eval(ctx, n)
		waiter <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park on the in-flight entry
	cancel()

	select {
	case err := <-waiter:
		if err == nil {
			t.Fatal("cancelled waiter returned nil error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still blocked after hard cancellation")
	}

	// Release the stuck owner so its goroutine exits (it panics; that is
	// panicNode's first-call behaviour, unrelated to the cancellation).
	close(n.release)
	<-owner
}
