package engine

import (
	"context"
	"fmt"
	"strconv"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/feature"
)

// Plan is a compiled Alog program: a tree of operators rooted at the query
// predicate's plan, built exactly as Section 4 describes — description
// rules unfolded, one fragment per rule with a ψ annotation operator at
// its root, fragments stitched together.
type Plan struct {
	Root    Node
	Program *alog.Program // the unfolded program the plan was built from
	// Opt carries the optimizer's report when the plan went through
	// OptimizePlan (nil for plans executed as compiled).
	Opt *OptInfo
}

// Columns returns the result column names (the query head variables).
func (p *Plan) Columns() []string { return p.Root.Columns() }

// Execute evaluates the plan in the given context. Under the
// QuarantineFaults policy a pass that hit per-document faults returns
// ErrQuarantined internally; Execute then restarts the evaluation over
// the surviving documents (the quarantine set extends the cache-key
// marker, so nothing a fault ever touched is reused) until a pass runs
// clean.
func (p *Plan) Execute(ctx *Context) (*compact.Table, error) {
	return evalRetrying(ctx, p.Root)
}

// ExecuteContext evaluates the plan best-effort under a standard
// context: when c is cancelled or its deadline expires, operator loops
// stop at tuple/chunk granularity and the partial table built so far —
// still superset-correct over the documents that were processed — is
// returned with a Degraded report attached naming the unprocessed (and
// any quarantined) documents. Results computed after the cut are never
// cached. The binding claims the engine context's single cancellation
// slot, so concurrent ExecuteContext calls on one Context must share c.
func (p *Plan) ExecuteContext(c context.Context, ctx *Context) (*compact.Table, error) {
	ctx.BindCancel(c, CancelBestEffort)
	defer ctx.Unbind()
	t, err := p.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return ctx.AttachDegraded(t), nil
}

// Explain renders the plan's EXPLAIN ANALYZE tree (see engine.Explain),
// annotated with the optimizer's decisions and cost estimates when the
// plan went through OptimizePlan.
func (p *Plan) Explain(ctx *Context) (string, error) {
	return explainTree(ctx, p.Root, p.Opt)
}

// Compile validates, unfolds, and compiles an Alog program against an
// environment.
func Compile(prog *alog.Program, env *Env) (*Plan, error) {
	schema := env.Schema()
	if err := alog.Validate(prog, schema); err != nil {
		return nil, err
	}
	unfolded, err := alog.Unfold(prog, schema)
	if err != nil {
		return nil, err
	}
	if err := alog.Validate(unfolded, schema); err != nil {
		return nil, fmt.Errorf("after unfolding: %w", err)
	}
	c := &compiler{
		prog:     unfolded,
		schema:   schema,
		env:      env,
		memo:     map[string]Node{},
		visiting: map[string]bool{},
	}
	root, err := c.pred(unfolded.Query)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, Program: unfolded}, nil
}

// Run compiles and executes a program in a fresh context; the convenience
// entry point for one-shot evaluation.
func Run(prog *alog.Program, env *Env) (*compact.Table, error) {
	plan, err := Compile(prog, env)
	if err != nil {
		return nil, err
	}
	return plan.Execute(NewContext(env))
}

type compiler struct {
	prog     *alog.Program
	schema   *alog.Schema
	env      *Env
	memo     map[string]Node
	visiting map[string]bool
	fresh    int
}

func (c *compiler) freshCol() string {
	c.fresh++
	return "·tmp" + strconv.Itoa(c.fresh)
}

// pred compiles the plan for an intensional predicate: the union of its
// rule fragments.
func (c *compiler) pred(name string) (Node, error) {
	if n, ok := c.memo[name]; ok {
		return n, nil
	}
	if c.visiting[name] {
		return nil, fmt.Errorf("engine: recursive predicate %q (Xlog does not allow recursion)", name)
	}
	c.visiting[name] = true
	defer delete(c.visiting, name)

	rules := c.prog.RulesFor(name)
	if len(rules) == 0 {
		return nil, fmt.Errorf("engine: no rules for predicate %q", name)
	}
	var parts []Node
	for _, r := range rules {
		n, err := c.rule(r)
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	var out Node
	if len(parts) == 1 {
		out = parts[0]
	} else {
		first := parts[0].Columns()
		for _, p := range parts[1:] {
			if len(p.Columns()) != len(first) {
				return nil, fmt.Errorf("engine: rules for %q disagree on arity", name)
			}
		}
		out = newUnionNode(parts)
	}
	c.memo[name] = out
	return out, nil
}

// rule compiles one rule: ordered body -> projection to the head -> ψ.
func (c *compiler) rule(r *alog.Rule) (Node, error) {
	ordered, err := alog.OrderBody(c.prog, c.schema, r, nil)
	if err != nil {
		return nil, err
	}
	var cur Node
	applied := map[string][]feature.Constraint{} // per-attribute constraints seen so far
	for _, lit := range ordered {
		cur, err = c.literal(cur, lit, applied)
		if err != nil {
			return nil, fmt.Errorf("engine: rule %q: %w", r.Head.Pred, err)
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("engine: rule %q has an empty plan", r.Head.Pred)
	}
	// Project to the head. Head arguments must be distinct variables.
	var src, out []string
	seen := map[string]bool{}
	for _, t := range r.Head.Args {
		if t.Kind != alog.TermVar {
			return nil, fmt.Errorf("engine: rule %q: non-variable head argument %s is not supported", r.Head.Pred, t)
		}
		if seen[t.Var] {
			return nil, fmt.Errorf("engine: rule %q: repeated head variable %q is not supported", r.Head.Pred, t.Var)
		}
		seen[t.Var] = true
		src = append(src, t.Var)
		out = append(out, t.Var)
	}
	var n Node = newProjectNode(cur, src, out)
	if r.Exists || len(r.AnnAttrs) > 0 {
		n = newAnnotateNode(n, r.Exists, r.AnnAttrs)
	}
	return n, nil
}

// literal extends the current plan with one body literal.
func (c *compiler) literal(cur Node, lit alog.Literal, applied map[string][]feature.Constraint) (Node, error) {
	switch lit.Kind {
	case alog.LitCompare:
		if cur == nil {
			return nil, fmt.Errorf("comparison %q cannot start a rule body", lit.Cmp)
		}
		return newCompareNode(cur, lit.Cmp), nil

	case alog.LitConstraint:
		if cur == nil {
			return nil, fmt.Errorf("constraint %q cannot start a rule body", lit.Cons)
		}
		if _, err := c.env.Features.Lookup(alog.CanonFeature(lit.Cons.Feature)); err != nil {
			return nil, err
		}
		cons := feature.Constraint{
			Feature: alog.CanonFeature(lit.Cons.Feature),
			Attr:    lit.Cons.Attr,
			Value:   lit.Cons.Value,
		}
		prior := applied[cons.Attr]
		applied[cons.Attr] = append(applied[cons.Attr], cons)
		return newConstraintNode(cur, cons, prior), nil

	default:
		return c.atom(cur, lit.Atom, applied)
	}
}

// atom extends the plan with a predicate atom.
func (c *compiler) atom(cur Node, a alog.Atom, applied map[string][]feature.Constraint) (Node, error) {
	switch alog.Classify(c.prog, c.schema, a.Pred) {
	case alog.ClassFrom:
		if len(a.Args) != 2 || a.Args[0].Kind != alog.TermVar || a.Args[1].Kind != alog.TermVar {
			return nil, fmt.Errorf("from expects two variable arguments, got %s", a)
		}
		if cur == nil {
			return nil, fmt.Errorf("from(%s, %s) cannot start a rule body", a.Args[0], a.Args[1])
		}
		if containsStr(cur.Columns(), a.Args[1].Var) {
			return nil, fmt.Errorf("from output variable %q is already bound", a.Args[1].Var)
		}
		return newFromNode(cur, a.Args[0].Var, a.Args[1].Var), nil

	case alog.ClassExtensional:
		n, err := c.adaptColumns(newScanNode(a.Pred, nil), a, true)
		if err != nil {
			return nil, err
		}
		return c.combine(cur, n), nil

	case alog.ClassIntensional:
		sub, err := c.pred(a.Pred)
		if err != nil {
			return nil, err
		}
		n, err := c.adaptColumns(sub, a, false)
		if err != nil {
			return nil, err
		}
		return c.combine(cur, n), nil

	case alog.ClassFunction:
		if cur == nil {
			return nil, fmt.Errorf("p-function %q cannot start a rule body", a.Pred)
		}
		if fused := c.tryFuseSimJoin(cur, a); fused != nil {
			return fused, nil
		}
		return newFuncNode(cur, a.Pred, a.Args), nil

	case alog.ClassProcedure:
		if cur == nil {
			return nil, fmt.Errorf("procedure %q cannot start a rule body", a.Pred)
		}
		if len(a.Args) < 1 || a.Args[0].Kind != alog.TermVar {
			return nil, fmt.Errorf("procedure %s needs a variable input as its first argument", a.Pred)
		}
		var outs []string
		for _, t := range a.Args[1:] {
			if t.Kind != alog.TermVar {
				return nil, fmt.Errorf("procedure %s: constant output arguments are not supported", a.Pred)
			}
			if containsStr(cur.Columns(), t.Var) {
				return nil, fmt.Errorf("procedure %s: output variable %q is already bound", a.Pred, t.Var)
			}
			outs = append(outs, t.Var)
		}
		return newProcNode(cur, a.Pred, a.Args[0].Var, outs), nil

	case alog.ClassIE:
		return nil, fmt.Errorf("IE predicate %q was not unfolded (missing description rule input?)", a.Pred)

	default:
		if sc, ok := alog.SugarConstraint(a); ok {
			return c.literal(cur, alog.Literal{Kind: alog.LitConstraint, Cons: alog.Constraint(sc)}, applied)
		}
		return nil, fmt.Errorf("unknown predicate %q", a.Pred)
	}
}

// adaptColumns renames a sub-plan's positional outputs to the calling
// atom's variable names and filters on constant arguments. For scans
// (fillScan), the scan node itself is rebuilt with the target column
// names.
func (c *compiler) adaptColumns(sub Node, a alog.Atom, fillScan bool) (Node, error) {
	names := make([]string, len(a.Args))
	type constFilter struct {
		col  string
		term alog.Term
	}
	var filters []constFilter
	seen := map[string]bool{}
	synthetic := map[string]bool{}
	var dups []alog.Compare
	for i, t := range a.Args {
		switch t.Kind {
		case alog.TermVar:
			if seen[t.Var] {
				// Repeated variable: bind a fresh column and add an
				// equality filter.
				fresh := c.freshCol()
				names[i] = fresh
				synthetic[fresh] = true
				dups = append(dups, alog.Compare{Op: alog.OpEQ, L: alog.Variable(t.Var), R: alog.Variable(fresh)})
			} else {
				seen[t.Var] = true
				names[i] = t.Var
			}
		default:
			fresh := c.freshCol()
			names[i] = fresh
			synthetic[fresh] = true
			filters = append(filters, constFilter{col: fresh, term: t})
		}
	}

	var n Node
	if fillScan {
		n = newScanNode(a.Pred, names)
	} else {
		if len(sub.Columns()) != len(names) {
			return nil, fmt.Errorf("predicate %q used with arity %d but defined with arity %d",
				a.Pred, len(names), len(sub.Columns()))
		}
		n = newProjectNode(sub, sub.Columns(), names)
	}
	for _, f := range filters {
		n = newCompareNode(n, alog.Compare{Op: alog.OpEQ, L: alog.Variable(f.col), R: f.term})
	}
	for _, d := range dups {
		n = newCompareNode(n, d)
	}
	// Project away the synthetic columns.
	if len(synthetic) > 0 {
		var keep []string
		for _, col := range names {
			if !synthetic[col] {
				keep = append(keep, col)
			}
		}
		n = newProjectNode(n, keep, keep)
	}
	return n, nil
}

// tryFuseSimJoin rewrites pfunc[sim](cross(L, R)) into the token-blocked
// simjoin(L, R) when the function is a blockable similarity predicate with
// one variable on each side of a shared-column-free cross product.
func (c *compiler) tryFuseSimJoin(cur Node, a alog.Atom) Node {
	if !c.env.Blockable[a.Pred] || len(a.Args) != 2 {
		return nil
	}
	cross, ok := cur.(*crossNode)
	if !ok || len(cross.shared) > 0 {
		return nil
	}
	v1, v2 := a.Args[0], a.Args[1]
	if v1.Kind != alog.TermVar || v2.Kind != alog.TermVar {
		return nil
	}
	lcols, rcols := cross.left.Columns(), cross.right.Columns()
	switch {
	case containsStr(lcols, v1.Var) && containsStr(rcols, v2.Var):
		return newSimJoinNode(cross.left, cross.right, a.Pred, v1.Var, v2.Var)
	case containsStr(lcols, v2.Var) && containsStr(rcols, v1.Var):
		return newSimJoinNode(cross.left, cross.right, a.Pred, v2.Var, v1.Var)
	}
	return nil
}

// combine crosses the new node with the current plan (natural join on
// shared columns).
func (c *compiler) combine(cur, n Node) Node {
	if cur == nil {
		return n
	}
	return newCrossNode(cur, n)
}
