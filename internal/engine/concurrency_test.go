package engine

import (
	"fmt"
	"sync"
	"testing"

	"iflex/internal/alog"
)

// TestSharedContextStress evaluates one shared Context from 16 goroutines
// at once — the access pattern of the parallel simulation strategy, where
// every simulated program variant shares the session's reuse cache. Each
// goroutine alternates between the base Figure 2 plan and a refined
// variant, so the single-flight cache sees both duplicate signatures
// (waiters) and fresh ones (evaluators). Run under -race.
func TestSharedContextStress(t *testing.T) {
	env := figure2Env()
	base := alog.MustParse(figure2Src)
	refined := base.Clone()
	if err := refined.AddConstraint(alog.AttrRef{Pred: "extractSchools", Var: "s"}, "max-tokens", "3"); err != nil {
		t.Fatal(err)
	}
	basePlan, err := Compile(base, env)
	if err != nil {
		t.Fatal(err)
	}
	refinedPlan, err := Compile(refined, env)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference results against which every concurrent run is
	// compared.
	wantBase, err := basePlan.Execute(NewContext(env))
	if err != nil {
		t.Fatal(err)
	}
	wantRefined, err := refinedPlan.Execute(NewContext(env))
	if err != nil {
		t.Fatal(err)
	}

	ctx := NewContext(env)
	const goroutines = 16
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				plan, want, name := basePlan, wantBase, "base"
				if (g+r)%2 == 1 {
					plan, want, name = refinedPlan, wantRefined, "refined"
				}
				got, err := plan.Execute(ctx)
				if err != nil {
					errs <- err
					return
				}
				if got.Canonical() != want.Canonical() {
					errs <- fmt.Errorf("goroutine %d round %d: %s plan diverged:\n got %s\nwant %s",
						g, r, name, got.Canonical(), want.Canonical())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hits := ctx.Stats.CacheHits; hits == 0 {
		t.Error("shared context recorded no cache hits across 64 concurrent executions")
	}
}

// TestParallelChunksDeterministicError checks that a parallel run reports
// the error a serial left-to-right run would hit first, regardless of
// which chunk fails fastest.
func TestParallelChunksDeterministicError(t *testing.T) {
	ctx := NewContext(NewEnv())
	ctx.Workers = 8
	for trial := 0; trial < 50; trial++ {
		err := ctx.parallelChunks(100, func(start, end int) error {
			// Every index from 10 on fails; index 10 falls in chunk 0, so
			// the lowest-chunk-wins rule must always report chunk 0's
			// error even when later chunks fail first in wall-clock time.
			for i := start; i < end; i++ {
				if i >= 10 {
					return fmt.Errorf("fail in chunk starting at %d", start)
				}
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if got := err.Error(); got != "fail in chunk starting at 0" {
			t.Fatalf("trial %d: got error from a later chunk: %q", trial, got)
		}
	}
}
