package engine

import (
	"fmt"
	"sync/atomic"

	"iflex/internal/compact"
	"iflex/internal/feature"
	"iflex/internal/text"
)

// constraintNode applies a domain constraint f(attr) = v to the attr
// column, using the feature's Verify/Refine procedures (Section 4.2):
//
//	exact(s)   -> kept iff Verify(s, f, v)
//	contain(s) -> Refine(s, f, v): assignments over the maximal verifying
//	              sub-spans
//
// Spans produced by Refine are then re-checked against every constraint
// previously applied to the same attribute (prior), because refining with
// a later constraint can produce sub-spans that violate an earlier one.
type constraintNode struct {
	nodeSig
	parent Node
	cons   feature.Constraint
	prior  []feature.Constraint
}

func newConstraintNode(parent Node, cons feature.Constraint, prior []feature.Constraint) *constraintNode {
	return &constraintNode{
		nodeSig: sigOf(fmt.Sprintf("constrain[%s](%s)", cons, parent.Signature())),
		parent:  parent, cons: cons, prior: append([]feature.Constraint(nil), prior...),
	}
}

func (n *constraintNode) Columns() []string { return n.parent.Columns() }
func (n *constraintNode) Children() []Node  { return []Node{n.parent} }

func (n *constraintNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	ci := colIndex(in.Cols, n.cons.Attr)
	all := append(append([]feature.Constraint(nil), n.prior...), n.cons)
	out := compact.NewTable(in.Cols...)
	// Tuples refine independently (features are pure, the memo is
	// concurrency-safe), so the loop is partitioned across the worker
	// pool; per-index result slots keep the output order serial-identical.
	// With a delta prior attached, tuples structurally unchanged since the
	// previous plan version replay their memoised outcome (kept-as cell or
	// dropped) without re-entering Verify/Refine at all.
	// The memo depends only on the constrained attribute's cell: a tuple
	// whose other columns were refined in between still replays, with the
	// output rebuilt from the current tuple plus the memoised refined cell.
	prior, fps := dx.prep(in, []int{ci}, nil, 0)
	rows := make([]*compact.Tuple, len(in.Tuples))
	var cells []*compact.Cell
	if fps != nil {
		cells = make([]*compact.Cell, len(in.Tuples))
	}
	var nq, ncut atomic.Int64
	err = ctx.parallelChunksSized(len(in.Tuples), minChunkConstraint, func(start, end int) error {
		var batch statBatch
		defer batch.flush(ctx)
		reused := 0
		for i := start; i < end; i++ {
			if cut, cerr := ctx.cutCheck(); cerr != nil {
				return cerr
			} else if cut {
				ctx.noteUnprocessed(in.Tuples[i:end])
				ncut.Add(1)
				break
			}
			tp := in.Tuples[i]
			if fps != nil {
				fps[i] = dx.aux.fpOf(tp)
				if old, ok := prior.lookup(fps[i], tp); ok {
					if old.cell != nil {
						nt := tp.Copy()
						nt.Cells[ci] = *old.cell
						rows[i] = &nt
						cells[i] = old.cell
					}
					reused++
					continue
				}
			}
			batch.tuplesRecomputed++
			var cell compact.Cell
			qed, err := ctx.guard(ev, "feature", func() []string { return tupleDocs(tp, []int{ci}) }, func() error {
				var ferr error
				cell, ferr = refineCell(ctx, &batch, tp.Cells[ci], n.cons, all)
				return ferr
			})
			if err != nil {
				return err
			}
			if qed {
				nq.Add(1)
				continue
			}
			if len(cell.Assigns) == 0 {
				// No possible value for the attribute survives: the tuple is
				// certainly gone (both for expansion cells — all expanded
				// tuples fail — and plain cells — no valuation exists).
				continue
			}
			nt := tp.Copy()
			nt.Cells[ci] = cell
			rows[i] = &nt
			if cells != nil {
				c := cell
				cells[i] = &c
			}
		}
		dx.noteReused(&batch, reused)
		ev.recompute(batch.tuplesRecomputed)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n := nq.Load(); n > 0 {
		return nil, quarantineErr("feature", n)
	}
	for _, nt := range rows {
		if nt != nil {
			out.Tuples = append(out.Tuples, *nt)
		}
	}
	if ncut.Load() == 0 {
		dx.finish(in, func(i int) deltaOut { return deltaOut{cell: cells[i]} })
	}
	return out, nil
}

// refineCell computes c' = ∪ A(k, m_i(s_i)) for the new constraint k, then
// iterates the full constraint set to a fixpoint (bounded) so that every
// exact span satisfies all constraints and every contain span is the
// result of refining under all of them.
func refineCell(ctx *Context, batch *statBatch, c compact.Cell, k feature.Constraint, all []feature.Constraint) (compact.Cell, error) {
	as, err := applyConstraint(ctx, batch, k, c.Assigns)
	if err != nil {
		return compact.Cell{}, err
	}
	const maxRounds = 3
	for round := 0; round < maxRounds; round++ {
		before := text.FormatAssignments(as)
		for _, kc := range all {
			as, err = applyConstraint(ctx, batch, kc, as)
			if err != nil {
				return compact.Cell{}, err
			}
		}
		if text.FormatAssignments(as) == before {
			break
		}
	}
	return compact.Cell{Assigns: text.DedupAssignments(as), Expand: c.Expand}, nil
}

// applyConstraint applies one constraint to a list of assignments: Verify
// for exact assignments, Refine for contain assignments — both through
// the Env's feature memo. VerifyCalls/RefineCalls count logical calls
// (deterministic at any worker count); the memo hit/miss split is
// recorded separately.
func applyConstraint(ctx *Context, batch *statBatch, k feature.Constraint, as []text.Assignment) ([]text.Assignment, error) {
	f, err := ctx.Env.Features.Lookup(k.Feature)
	if err != nil {
		return nil, err
	}
	memo := ctx.Env.FeatureMemo
	var out []text.Assignment
	for _, a := range as {
		if a.Mode == text.Exact {
			batch.verifyCalls++
			ok, hit, err := memo.Verify(f, a.Span, k.Value)
			if err != nil {
				return nil, err
			}
			batch.countMemo(hit)
			if ok {
				out = append(out, a)
			}
			continue
		}
		batch.refineCalls++
		refined, hit, err := memo.Refine(f, a.Span, k.Value)
		if err != nil {
			return nil, err
		}
		batch.countMemo(hit)
		out = append(out, refined...)
	}
	return out, nil
}
