package engine

import (
	"sort"
	"strings"
	"sync/atomic"

	"iflex/internal/compact"
)

// This file implements corpus-delta invalidation: the engine-level half
// of live-corpus incremental evaluation. A mutable document store
// reports which documents a committed mutation added, updated, or
// removed (store.Delta); ApplyCorpusDelta translates that into cache
// state so the next evaluation of the same program recomputes only what
// the mutation can have affected.
//
// The soundness argument is deliberately coarse. After any non-empty
// delta, NO cached result table is authoritative — not even one whose
// tuples reference only unchanged documents: an added document can
// contribute new tuples to any node, and a projection can have dropped
// the very column that carried a removed document's span, so the
// "does this table touch a changed document" test under-approximates
// staleness. ApplyCorpusDelta therefore displaces every cached result
// table (with its per-tuple memo) into corpusPrior and drops everything
// that cannot be replayed — blocking indexes, degraded tables, spilled
// tables.
//
// What keeps the re-evaluation cheap is document-handle identity:
// unchanged documents keep their *text.Document pointers across a store
// mutation, while updated documents get fresh handles. Per-tuple memos
// compare spans by document pointer (text.Span.Equal), so a memoised
// outcome replays if and only if its input tuple is sourced entirely
// from unchanged documents — exactly the invalidation granularity the
// delta calls for, enforced structurally rather than by bookkeeping.

// CorpusDelta describes one committed corpus mutation: document ids
// added to, updated in place in, and removed from the corpus. It
// mirrors store.Delta (the engine does not import the store).
type CorpusDelta struct {
	Added   []string
	Updated []string
	Removed []string
}

// Empty reports whether the delta changes nothing.
func (d *CorpusDelta) Empty() bool {
	return d == nil || len(d.Added)+len(d.Updated)+len(d.Removed) == 0
}

// Changed returns the set of every document id the delta touches.
func (d *CorpusDelta) Changed() map[string]bool {
	m := make(map[string]bool, len(d.Added)+len(d.Updated)+len(d.Removed))
	for _, ids := range [][]string{d.Added, d.Updated, d.Removed} {
		for _, id := range ids {
			m[id] = true
		}
	}
	return m
}

// corpusPriorEntry is one displaced cache entry: the stale result table
// (kept for the adoption check — a node the delta did not affect
// reproduces it exactly and hands the old pointer back out) and the
// per-tuple memo (replayed for input tuples sourced from unchanged
// documents). marker and sig verify the hashed key, exactly like the
// cache proper.
type corpusPriorEntry struct {
	marker string
	sig    string
	table  *compact.Table
	aux    *evalAux
}

// ApplyCorpusDelta invalidates the context for a committed corpus
// mutation. Every cached result table is displaced into the corpus-
// prior map for replay by the next evaluation; blocking indexes and
// degraded tables are dropped (cheap to rebuild, never replayable);
// all spilled tables are invalidated (a spill elides the provenance
// replay needs); and changed documents are released from quarantine
// (their content was superseded or removed, so the fault that barred
// them no longer describes the corpus).
//
// Like SetDocFilter, it may only be called while no evaluations are in
// flight. The caller is responsible for having the Env's document
// tables reflect the mutated corpus (store.DiskStore.Docs() after
// Commit) before the next evaluation.
func (ctx *Context) ApplyCorpusDelta(d *CorpusDelta) {
	if d.Empty() {
		return
	}
	statAdd(&ctx.Stats.CorpusDeltas, 1)
	changed := d.Changed()

	ctx.mu.Lock()
	if ctx.corpusPrior == nil {
		ctx.corpusPrior = map[entryKey]*corpusPriorEntry{}
	}
	// Priors left over from an earlier delta stay: replay is keyed by
	// document-handle identity, so a twice-displaced memo is still exactly
	// as valid for its unchanged tuples (watch mode may commit several
	// deltas between evaluations). A newer entry for the same key wins.
	for key, e := range ctx.cache {
		if e.table != nil && e.table.Degraded == nil {
			ctx.corpusPrior[key] = &corpusPriorEntry{marker: e.marker, sig: e.sig, table: e.table, aux: e.aux}
		}
	}
	ctx.cache = map[entryKey]*cacheEntry{}
	ctx.lruHead, ctx.lruTail = nil, nil
	ctx.cacheBytes = 0
	atomic.StoreInt64(&ctx.Stats.CacheBytes, 0)
	ctx.mu.Unlock()

	if ctx.Spill != nil {
		type spillWiper interface {
			InvalidateDocs(ids map[string]bool) int
			Len() int
			Close() error
		}
		if sp, ok := ctx.Spill.(spillWiper); ok {
			// Spills touching changed documents first (they would resolve
			// against superseded handles), then the remainder wholesale:
			// encoded tables elide the provenance replay would need, and an
			// added document can extend any node's output. Close drops the
			// files; the spill area stays usable for future evictions.
			n := sp.InvalidateDocs(changed)
			n += sp.Len()
			sp.Close()
			statAdd(&ctx.Stats.CorpusSpillsDropped, n)
		} else {
			// An unknown spill implementation cannot be invalidated
			// wholesale; detach it rather than risk resurrecting a stale
			// table as authoritative.
			ctx.Spill = nil
		}
	}

	ctx.releaseQuarantined(changed)
}

// releaseQuarantined removes changed documents from the quarantine set:
// an update or removal supersedes the content whose processing faulted.
// The survivor-set cache-key suffix changes with the set, so nothing
// evaluated under the old suffix remains reachable (displaced priors
// keyed under it simply never match — a reuse loss, never an error).
func (ctx *Context) releaseQuarantined(changed map[string]bool) {
	ctx.qmu.Lock()
	defer ctx.qmu.Unlock()
	old := ctx.qstate.Load()
	if old == nil {
		return
	}
	hit := false
	for id := range old.barred {
		if changed[id] {
			hit = true
			break
		}
	}
	if !hit {
		return
	}
	ns := &quarantineSet{barred: map[string]bool{}}
	for id := range old.barred {
		if !changed[id] {
			ns.barred[id] = true
		}
	}
	for _, r := range old.records {
		if !changed[r.Doc] {
			ns.records = append(ns.records, r)
		}
	}
	if len(ns.barred) == 0 {
		ctx.qstate.Store(nil)
		atomic.StoreInt64(&ctx.Stats.QuarantinedDocs, 0)
		return
	}
	ids := make([]string, 0, len(ns.barred))
	for id := range ns.barred {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ns.suffix = "|quarantine:" + strings.Join(ids, ",")
	ctx.qstate.Store(ns)
	atomic.StoreInt64(&ctx.Stats.QuarantinedDocs, int64(len(ns.barred)))
}

// corpusSimPrior returns the displaced prior a similarity join may
// reconcile against when prep declined to hand it out: same dependency
// narrowing, but a right table that was rebuilt by the corpus
// re-evaluation (so neither pointer identity nor the dependency
// fingerprint matches). The join aligns the prior's right tuples with
// the current ones itself — see simjoin.go.
func (dx *deltaState) corpusSimPrior(cols []int) *evalAux {
	if dx == nil || !dx.corpus || dx.prior == nil {
		return nil
	}
	p := dx.prior
	if p.right == nil || !eqInts(p.cols, cols) {
		return nil
	}
	return p
}
