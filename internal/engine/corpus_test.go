package engine

import (
	"fmt"
	"sync"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/store"
	"iflex/internal/text"
)

// corpusJoinSrc extracts bold titles from two document sets and joins
// them approximately — the extraction chain exercises the unary-operator
// memos and the join exercises the corpus-mode right-table
// reconciliation (extracted sub-spans cannot be postings-backed).
const corpusJoinSrc = `
a(x, <s>) :- L(x), e1(x, s).
b(y, <t>) :- R(y), e2(y, t).
Q(x, s, y, t) :- a(x, s), b(y, t), similar(s, t).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
`

// buildCorpusStore writes a two-group corpus (l-*/r-* ids) with bold
// titles drawn from a shared pool so several pairs match.
func buildCorpusStore(t *testing.T, dir string) {
	t.Helper()
	w, err := store.Create(dir, store.Options{ShardDocs: 6})
	if err != nil {
		t.Fatal(err)
	}
	titles := []string{
		"query planning handbook", "join order primer", "index structures",
		"stream systems", "cache coherence", "log structured storage",
		"query planning handbook", "index structures", "stream systems",
		"join order primer",
	}
	for i := 0; i < 10; i++ {
		if err := w.Add(fmt.Sprintf("l-%d", i), fmt.Sprintf("<b>%s</b> left page %d", titles[i], i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := w.Add(fmt.Sprintf("r-%d", i), fmt.Sprintf("<b>%s</b> right page %d", titles[9-i], i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// corpusEnv builds an Env whose L/R tables are the live l-*/r-* store
// views, indexed by the store.
func corpusEnv(s *store.DiskStore) *Env {
	env := NewEnv()
	setCorpusTables(env, s)
	env.DocIndex = s
	env.Postings = s
	return env
}

func setCorpusTables(env *Env, s *store.DiskStore) {
	var l, r []*text.Document
	for _, d := range s.Docs() {
		if d.ID()[0] == 'l' {
			l = append(l, d)
		} else {
			r = append(r, d)
		}
	}
	env.AddDocTable("L", "x", l)
	env.AddDocTable("R", "y", r)
}

// TestCorpusDeltaByteIdentity: after a store mutation (update, removal,
// addition on both join sides), applying the corpus delta and
// re-executing the same plan yields a result byte-identical to a fresh
// context over the mutated corpus — while replaying most tuples from
// the displaced memos instead of recomputing them.
func TestCorpusDeltaByteIdentity(t *testing.T) {
	prog := alog.MustParse(corpusJoinSrc)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			buildCorpusStore(t, dir)
			s, err := store.Open(dir, store.OpenOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			env := corpusEnv(s)
			plan, err := Compile(prog, env)
			if err != nil {
				t.Fatal(err)
			}
			ctx := NewContext(env)
			ctx.Workers = workers
			ctx.EnableDelta()
			res1, err := plan.Execute(ctx)
			if err != nil {
				t.Fatal(err)
			}
			before := res1.Canonical()
			base := ctx.Stats.Snapshot()

			m, err := s.BeginMutation()
			if err != nil {
				t.Fatal(err)
			}
			// Update one document on each side, remove a left one, add a
			// right one whose title matches existing left titles.
			if err := m.Put("l-1", "<b>cache coherence</b> left page 1 revised"); err != nil {
				t.Fatal(err)
			}
			if err := m.Put("r-2", "<b>query planning handbook</b> right page 2 revised"); err != nil {
				t.Fatal(err)
			}
			if err := m.Remove("l-3"); err != nil {
				t.Fatal(err)
			}
			if err := m.Put("r-10", "<b>index structures</b> fresh right page"); err != nil {
				t.Fatal(err)
			}
			d, err := m.Commit()
			if err != nil {
				t.Fatal(err)
			}

			setCorpusTables(env, s)
			ctx.ApplyCorpusDelta(&CorpusDelta{Added: d.Added, Updated: d.Updated, Removed: d.Removed})
			res2, err := plan.Execute(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got := res2.Canonical()

			env2 := corpusEnv(s)
			plan2, err := Compile(prog, env2)
			if err != nil {
				t.Fatal(err)
			}
			ctx2 := NewContext(env2)
			ctx2.Workers = workers
			res3, err := plan2.Execute(ctx2)
			if err != nil {
				t.Fatal(err)
			}
			want := res3.Canonical()

			if got != want {
				t.Fatalf("incremental result differs from scratch:\n%s\nwant:\n%s", got, want)
			}
			if got == before {
				t.Fatal("mutation did not change the result; test corpus too sparse")
			}
			st := ctx.Stats.Snapshot()
			if st.CorpusDeltas != 1 {
				t.Fatalf("CorpusDeltas = %d", st.CorpusDeltas)
			}
			if st.CorpusPriorHits == 0 {
				t.Fatal("no displaced priors were picked up")
			}
			// Counters accumulate across executions; the incremental run's
			// share is the difference from the pre-mutation snapshot.
			reused := st.TuplesReused - base.TuplesReused
			recomputed := st.TuplesRecomputed - base.TuplesRecomputed
			if reused == 0 {
				t.Fatal("no tuples replayed from displaced memos")
			}
			if reused < recomputed {
				t.Fatalf("small delta recomputed more than it reused: reused=%d recomputed=%d",
					reused, recomputed)
			}
		})
	}
}

// TestCorpusDeltaRemovalProjection: a removal-only delta must invalidate
// even tables whose tuples do not reference the removed document — the
// head projection drops the right-side columns, so the stale tuple
// "touches" nothing that changed. This pins the uniform displacement
// rule (doc-touch invalidation would silently keep the stale tuple).
func TestCorpusDeltaRemovalProjection(t *testing.T) {
	prog := alog.MustParse(`
a(x, <s>) :- L(x), e1(x, s).
b(y, <t>) :- R(y), e2(y, t).
Q(s) :- a(x, s), b(y, t), similar(s, t).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
`)
	dir := t.TempDir()
	w, err := store.Create(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// "cache coherence" matches only through r-0; removing r-0 must
	// remove the projected Q("cache coherence") tuple.
	adds := []struct{ id, src string }{
		{"l-0", "<b>cache coherence</b> left page"},
		{"l-1", "<b>stream systems</b> left page"},
		{"r-0", "<b>cache coherence</b> right page"},
		{"r-1", "<b>stream systems</b> right page"},
	}
	for _, a := range adds {
		if err := w.Add(a.id, a.src); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(dir, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	env := corpusEnv(s)
	plan, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.EnableDelta()
	res1, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := res1.Canonical(); want == "" {
		t.Fatal("empty base result")
	}

	m, err := s.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("r-0"); err != nil {
		t.Fatal(err)
	}
	d, err := m.Commit()
	if err != nil {
		t.Fatal(err)
	}
	setCorpusTables(env, s)
	ctx.ApplyCorpusDelta(&CorpusDelta{Removed: d.Removed})
	res2, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}

	env2 := corpusEnv(s)
	plan2, err := Compile(prog, env2)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := plan2.Execute(NewContext(env2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Canonical() != res3.Canonical() {
		t.Fatalf("incremental removal result differs from scratch:\n%s\nwant:\n%s",
			res2.Canonical(), res3.Canonical())
	}
	if res2.Canonical() == res1.Canonical() {
		t.Fatal("removed document's projected tuple survived")
	}
}

// TestSpillEvictResurrectRace: concurrent executions under a one-byte
// cache budget constantly evict each other's result tables to the spill
// and resurrect them back. Run with -race; the assertions check that
// resurrected results stay byte-identical and resolve spans onto the
// same document handles the environment registered (no duplicate
// handles from racing loads).
func TestSpillEvictResurrectRace(t *testing.T) {
	dir := t.TempDir()
	buildCorpusStore(t, dir)
	s, err := store.Open(dir, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	env := corpusEnv(s)
	sp, err := store.NewSpill(t.TempDir(), env.DocResolver())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	planA, err := Compile(alog.MustParse(`
Q(x, <s>) :- L(x), e1(x, s).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	planB, err := Compile(alog.MustParse(`
P(y, <t>) :- R(y), e2(y, t).
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}

	ctx := NewContext(env)
	ctx.CacheBudget = 1 // every store evicts everything else
	ctx.Spill = sp

	wantA, err := planA.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := planB.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	canonA, canonB := wantA.Canonical(), wantB.Canonical()

	handles := map[string]*text.Document{}
	for _, d := range s.Docs() {
		handles[d.ID()] = d
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	run := func(p *Plan, want string) {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			res, err := p.Execute(ctx)
			if err != nil {
				errs <- err
				return
			}
			if got := res.Canonical(); got != want {
				errs <- fmt.Errorf("iteration %d: result drifted:\n%s\nwant:\n%s", i, got, want)
				return
			}
			for _, tp := range res.Tuples {
				for _, cell := range tp.Cells {
					for _, a := range cell.Assigns {
						d := a.Span.Doc()
						if handles[d.ID()] != d {
							errs <- fmt.Errorf("iteration %d: doc %q resolved to a foreign handle", i, d.ID())
							return
						}
					}
				}
			}
		}
	}
	wg.Add(2)
	go run(planA, canonA)
	go run(planB, canonB)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ctx.Stats.SpillLoads == 0 {
		t.Fatal("race never exercised spill resurrection")
	}
}
