package engine

import (
	"sync/atomic"

	"iflex/internal/compact"
)

// This file implements incremental (delta) evaluation across plan
// versions — the engine-level half of the paper's §5 reuse story. The
// per-node cache already reuses subtrees whose signature is unchanged;
// delta evaluation goes one level further: when a refinement changes a
// subtree, the ancestors above it are re-evaluated, but each delta-capable
// operator memoises its per-input-tuple outcomes, so the re-evaluation
// recomputes only the tuples the refinement actually touched and replays
// the rest. See DESIGN.md §11 for the per-operator rules.
//
// The moving parts:
//
//   - nodeSig memoises each node's signature string and 64-bit hash
//     (computed once at construction, not per Eval).
//   - RegisterDelta declares "plan B succeeds plan A"; a lockstep walk
//     maps each changed node of B to its predecessor in A.
//   - Eval, on a cache miss of a mapped node, attaches the predecessor's
//     per-tuple memo (evalAux) to the evaluation as its delta prior.
//   - Operators consult the prior per input tuple (fingerprint + exact
//     structural check) and rebuild a fresh memo for the next version.

// fnv64 returns the FNV-1a hash of a string.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// nodeSig carries a node's canonical signature and its precomputed hash;
// every node type embeds it. Plans are immutable, so both are fixed at
// construction: Eval keys the cache by the hash (verifying the string on
// lookup, so a 2^-64 collision degrades to a cache miss, never to a wrong
// result) and the string form survives for -explain and trace output.
type nodeSig struct {
	sig  string
	hash uint64
}

func sigOf(sig string) nodeSig { return nodeSig{sig: sig, hash: fnv64(sig)} }

// Signature returns the canonical subtree rendering, the reuse key.
func (s *nodeSig) Signature() string { return s.sig }

// sigHash returns the precomputed 64-bit hash of the signature.
func (s *nodeSig) sigHash() uint64 { return s.hash }

// joinMatch is one memoised join decision: right-tuple index, whether
// every valuation of the pair satisfied the predicate, and the filtered
// join-cell replacements (simjoin only; keys 0 = left cell, 1 = right
// cell). The output row is rebuilt from the *current* left and right
// tuples on replay, so a memo stays valid when columns the join never
// reads were refined in between.
type joinMatch struct {
	j    int
	sure bool
	repl map[int]compact.Cell
}

// deltaOut is the memoised outcome of one operator for one input tuple.
// Exactly one of the payload fields is meaningful per operator family:
// cell for the constraint operator (the refined attribute cell; nil = the
// tuple was dropped), filt for selections, sim for binary per-left-tuple
// joins, ann for the annotation operator's per-tuple key contribution.
// Every payload is expressed in terms of the cells the operator actually
// reads, never the whole tuple — replay rebuilds the output from the
// current input tuple, which is what lets a memo survive refinements of
// unrelated columns. fallbacks records how many valuation-limit fallbacks
// the computation charged, replayed on reuse so LimitFallbacks totals
// stay identical to a full re-evaluation.
type deltaOut struct {
	cell      *compact.Cell
	filt      *filterOutcome
	sim       []joinMatch
	ann       *annContrib
	fallbacks int32
}

// deltaPair is one memo entry: the input tuple (kept for exact structural
// verification of fingerprint matches) and its outcome.
type deltaPair struct {
	in  compact.Tuple
	out deltaOut
}

// evalAux is the per-tuple memo one evaluation leaves behind for its
// successor. cols narrows the memo key to the input columns the operator
// reads (nil = the whole tuple including the maybe flag, for operators
// whose dependency set is unknown). For binary operators the other input
// is pinned two ways: right by pointer (the node cache guarantees pointer
// identity when the right subtree's signature is unchanged), and rightDep
// by a content fingerprint of the right table's dependency columns, which
// keeps memos transferable when the right subtree was re-evaluated but
// its join-relevant columns came out identical. memBytes is the cache
// accounting estimate.
type evalAux struct {
	right    *compact.Table
	rightDep uint64
	cols     []int
	memo     map[uint64][]deltaPair
}

// fpOf returns the memo key for one input tuple under this memo's
// dependency narrowing.
func (a *evalAux) fpOf(tp compact.Tuple) uint64 {
	if a.cols == nil {
		return tp.Fingerprint()
	}
	return tp.CellsFingerprint(a.cols)
}

// lookup finds the memoised outcome for an input tuple that is
// structurally identical on the memo's dependency columns. The
// fingerprint narrows to a bucket; the structural check makes hash
// collisions harmless.
func (a *evalAux) lookup(h uint64, tp compact.Tuple) (deltaOut, bool) {
	if a == nil {
		return deltaOut{}, false
	}
	for _, p := range a.memo[h] {
		if a.cols == nil {
			if p.in.StructuralEq(tp) {
				return p.out, true
			}
		} else if p.in.CellsStructuralEq(tp, a.cols) {
			return p.out, true
		}
	}
	return deltaOut{}, false
}

// memBytes approximates the memo's resident size for cache accounting.
func (a *evalAux) memBytes() int64 {
	if a == nil {
		return 0
	}
	var b int64
	for _, ps := range a.memo {
		b += 48 // bucket overhead
		for _, p := range ps {
			b += 96
			if p.out.cell != nil {
				b += 32 + assignmentEstimate*int64(len(p.out.cell.Assigns))
			}
			if p.out.filt != nil {
				b += 32 + 64*int64(len(p.out.filt.repl))
			}
			for _, m := range p.out.sim {
				b += 32 + 64*int64(len(m.repl))
			}
			if p.out.ann != nil {
				b += 64 + 32*int64(len(p.out.ann.keys))
			}
		}
	}
	return b
}

// assignmentEstimate mirrors compact's per-assignment size estimate for
// memoised refined cells.
const assignmentEstimate = 32

// deltaState threads delta bookkeeping through one Eval call. It is nil
// when delta evaluation is off (operators then skip all delta work); with
// delta on, Eval allocates one per evaluation and attaches the
// predecessor's memo as prior when RegisterDelta mapped the node.
type deltaState struct {
	prior *evalAux
	aux   *evalAux
	fps   []uint64
	// corpus marks a prior displaced by ApplyCorpusDelta rather than one
	// linked across plan versions: the prior's right table (for binary
	// operators) may have been rebuilt by the same corpus re-evaluation,
	// so prep's pointer/fingerprint pinning will reject it — the
	// similarity join reconciles the two right tables instead
	// (corpusSimPrior).
	corpus bool
	// reused counts tuples replayed from the prior during this evaluation,
	// for per-operator trace attribution (the deterministic Stats totals
	// are counted through statBatch instead).
	reused atomic.Int64
}

// prep arms the state for one operator pass over in: it allocates the
// memo this evaluation will leave behind and returns the usable prior
// plus the fingerprint slots the operator loop fills per input index.
// cols is the operator's input-column dependency set (nil = whole-tuple
// semantics); for binary operators, right is the other input and rightDep
// the content fingerprint of its dependency columns. The prior is only
// handed out when its narrowing matches and — for binary operators — the
// right input is either the pointer-identical table the prior was built
// against or one whose dependency columns fingerprint identically. A nil
// receiver (delta off) returns nils, making the operators' delta branches
// dead.
func (dx *deltaState) prep(in *compact.Table, cols []int, right *compact.Table, rightDep uint64) (prior *evalAux, fps []uint64) {
	if dx == nil {
		return nil, nil
	}
	dx.aux = &evalAux{right: right, rightDep: rightDep, cols: cols, memo: make(map[uint64][]deltaPair, len(in.Tuples))}
	dx.fps = make([]uint64, len(in.Tuples))
	if p := dx.prior; p != nil && eqInts(p.cols, cols) {
		if p.right == right || (rightDep != 0 && p.rightDep == rightDep) {
			prior = p
		}
	}
	return prior, dx.fps
}

// eqInts compares dependency-column sets; nil (whole-tuple semantics) and
// empty (no dependencies) are distinct.
func eqInts(a, b []int) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// finish builds the memo after the operator's (possibly parallel) loop:
// out(i) must return the outcome recorded for input tuple i — including
// replayed outcomes, so memo chains survive across many versions.
func (dx *deltaState) finish(in *compact.Table, out func(i int) deltaOut) {
	if dx == nil || dx.aux == nil {
		return
	}
	m := dx.aux.memo
	for i, tp := range in.Tuples {
		h := dx.fps[i]
		m[h] = append(m[h], deltaPair{in: tp, out: out(i)})
	}
}

// noteReused credits n replayed tuples to both the deterministic batch
// counters and this evaluation's trace attribution.
func (dx *deltaState) noteReused(batch *statBatch, n int) {
	if n == 0 {
		return
	}
	batch.tuplesReused += int64(n)
	dx.reused.Add(int64(n))
}

// deltaLink maps a node of the current plan version (keyed by its
// signature hash) to its predecessor in the previous version. The
// signature strings verify both ends of the link, so hash collisions
// degrade to a full evaluation.
type deltaLink struct {
	oldHash uint64
	oldSig  string
	newSig  string
}

// EnableDelta turns on incremental evaluation for this context: cache
// entries retain per-tuple memos and RegisterDelta links plan versions.
// Enable it before the first evaluation and leave it on; results are
// byte-identical with or without it.
func (ctx *Context) EnableDelta() { ctx.deltaOn = true }

// ResetDelta discards all plan-version links (typically called when a
// session starts a new iteration, before re-registering against the plan
// that will actually precede the next evaluations).
func (ctx *Context) ResetDelta() {
	ctx.mu.Lock()
	ctx.deltaPrev = nil
	ctx.mu.Unlock()
}

// RegisterDelta declares newRoot to be a refinement of oldRoot: a
// lockstep walk pairs each changed node of the new plan with its
// predecessor, descending through single inserted (or removed) unary
// operators — the shape AddConstraint produces. Identical subtrees are
// skipped (the node cache already reuses them wholesale); structural
// mismatches beyond one unary insertion stop the walk, leaving those
// nodes to evaluate in full. Safe to call concurrently (Simulation
// registers each trial candidate against the shared base plan).
func (ctx *Context) RegisterDelta(oldRoot, newRoot Node) {
	if !ctx.deltaOn {
		return
	}
	links := map[uint64]deltaLink{}
	correspond(oldRoot, newRoot, links)
	if len(links) == 0 {
		return
	}
	ctx.mu.Lock()
	if ctx.deltaPrev == nil {
		ctx.deltaPrev = map[uint64]deltaLink{}
	}
	for k, v := range links {
		ctx.deltaPrev[k] = v
	}
	ctx.mu.Unlock()
}

// correspond pairs old and new plan nodes position by position.
func correspond(o, n Node, links map[uint64]deltaLink) {
	if o == nil || n == nil {
		return
	}
	if o.sigHash() == n.sigHash() && o.Signature() == n.Signature() {
		// Identical subtree: the node cache reuses it; nothing to link.
		return
	}
	oc, nc := o.Children(), n.Children()
	if len(oc) == len(nc) && sameShape(o, n) {
		links[n.sigHash()] = deltaLink{oldHash: o.sigHash(), oldSig: o.Signature(), newSig: n.Signature()}
		for i := range nc {
			correspond(oc[i], nc[i], links)
		}
		return
	}
	// One inserted unary operator (the new constraint, or a selection the
	// body re-ordering moved in): align the old node with its child, and
	// symmetrically for a removal. Anything less regular stops the walk.
	if len(nc) == 1 {
		correspond(o, nc[0], links)
		return
	}
	if len(oc) == 1 {
		correspond(oc[0], n, links)
	}
}

// sameShape reports whether two nodes are the same operator with the same
// local parameters — the condition under which a per-tuple outcome from
// the old node is valid for the new one (their inputs may differ; that is
// exactly what the per-tuple memo absorbs). Parameters that change the
// function applied to a tuple must all be compared; constraint nodes in
// particular must agree on the prior constraint list, because refinement
// re-checks refined spans against it.
func sameShape(o, n Node) bool {
	switch a := o.(type) {
	case *scanNode:
		b, ok := n.(*scanNode)
		return ok && a.pred == b.pred && eqStrings(a.cols, b.cols)
	case *fromNode:
		b, ok := n.(*fromNode)
		return ok && a.inVar == b.inVar && a.outVar == b.outVar
	case *crossNode:
		b, ok := n.(*crossNode)
		return ok && eqStrings(a.shared, b.shared) && eqStrings(a.cols, b.cols)
	case *unionNode:
		b, ok := n.(*unionNode)
		return ok && len(a.parts) == len(b.parts)
	case *projectNode:
		b, ok := n.(*projectNode)
		return ok && eqStrings(a.srcCols, b.srcCols) && eqStrings(a.outCols, b.outCols)
	case *constraintNode:
		b, ok := n.(*constraintNode)
		if !ok || a.cons != b.cons || len(a.prior) != len(b.prior) {
			return false
		}
		for i := range a.prior {
			if a.prior[i] != b.prior[i] {
				return false
			}
		}
		return true
	case *compareNode:
		b, ok := n.(*compareNode)
		return ok && a.cmp == b.cmp
	case *funcNode:
		b, ok := n.(*funcNode)
		if !ok || a.fname != b.fname || len(a.args) != len(b.args) {
			return false
		}
		for i := range a.args {
			if a.args[i] != b.args[i] {
				return false
			}
		}
		return true
	case *simJoinNode:
		b, ok := n.(*simJoinNode)
		return ok && a.fname == b.fname && a.leftVar == b.leftVar && a.rightVar == b.rightVar
	case *annotateNode:
		b, ok := n.(*annotateNode)
		return ok && a.exists == b.exists && eqStrings(a.annotate, b.annotate)
	case *procNode:
		b, ok := n.(*procNode)
		return ok && a.pname == b.pname && a.inVar == b.inVar && eqStrings(a.outVars, b.outVars)
	}
	return false
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
