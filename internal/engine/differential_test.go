package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/markup"
	"iflex/internal/text"
)

// Differential test: on randomized corpora, the fused token-blocked
// similarity join must produce exactly the same table as the naive cross
// product + p-function filter.
func TestSimJoinDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	words := []string{"query", "join", "index", "stream", "cache", "log"}
	mkDocs := func(prefix string, n int) []*text.Document {
		var out []*text.Document
		for i := 0; i < n; i++ {
			k := 1 + r.Intn(3)
			var toks []string
			for j := 0; j < k; j++ {
				toks = append(toks, words[r.Intn(len(words))])
			}
			src := "<b>" + strings.Join(toks, " ") + "</b> trailer"
			out = append(out, mustDoc(fmt.Sprintf("%s%d", prefix, i), src))
		}
		return out
	}
	prog := alog.MustParse(`
a(x, <s>) :- L(x), e1(x, s).
b(y, <t>) :- R(y), e2(y, t).
Q(s, t) :- a(x, s), b(y, t), similar(s, t).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
`)
	for trial := 0; trial < 10; trial++ {
		left := mkDocs("l", 1+r.Intn(6))
		right := mkDocs("r", 1+r.Intn(6))

		envF := NewEnv()
		envF.AddDocTable("L", "x", left)
		envF.AddDocTable("R", "y", right)
		fused, err := Run(prog, envF)
		if err != nil {
			t.Fatal(err)
		}
		envN := NewEnv()
		envN.AddDocTable("L", "x", left)
		envN.AddDocTable("R", "y", right)
		envN.Blockable = map[string]bool{}
		naive, err := Run(prog, envN)
		if err != nil {
			t.Fatal(err)
		}
		if fused.Canonical() != naive.Canonical() {
			t.Fatalf("trial %d: fused != naive\nfused:\n%s\nnaive:\n%s",
				trial, fused.Canonical(), naive.Canonical())
		}
	}
}

func mustDoc(id, src string) *text.Document {
	return markup.MustParse(id, src)
}

// Concurrent use: one Env, many goroutines each with their own Context.
// Features, similarity, and the regexp cache must be race-free (run with
// go test -race to enforce).
func TestConcurrentExecution(t *testing.T) {
	env := figure2Env()
	prog := alog.MustParse(figure2Src)
	plan, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := plan.Execute(NewContext(env))
			if err != nil {
				errs <- err
				return
			}
			if len(res.Tuples) != 1 {
				errs <- fmt.Errorf("unexpected result size %d", len(res.Tuples))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
