// Package engine implements iFlex's approximate query processor
// (Section 4): it compiles an Alog program into a plan over compact
// tables and evaluates it with superset semantics — the computed set of
// possible relations always includes every relation the program defines.
//
// Plans are trees of materialising operators; every node carries a
// canonical signature, and evaluation memoises node results in the
// Context's cache. That cache is the paper's *reuse* optimisation
// (Section 5.2): refining a program changes signatures only above the
// touched operator, so unchanged subtrees are reused verbatim across
// iterations. On top of it, delta evaluation (EnableDelta/RegisterDelta,
// see delta.go) replays per-tuple outcomes inside the changed ancestors,
// so a refinement recomputes only the tuples it touched. *Subset
// evaluation* is the Context's DocFilter: scans drop documents outside
// the sampled subset.
package engine

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/feature"
	"iflex/internal/similarity"
	"iflex/internal/text"
)

// Limits bound the work done per compact tuple when enumerating possible
// values; beyond them operators fall back to conservative (superset-safe)
// behaviour: keep the tuple, mark it maybe, skip precise filtering.
type Limits struct {
	// MaxCellValues caps value enumeration per cell.
	MaxCellValues int
	// MaxValuations caps the number of value combinations per tuple.
	MaxValuations int
}

// DefaultLimits balance precision against work: cells pinned by a few
// constraints enumerate fully, while unconstrained whole-document cells
// fall back to the conservative keep-as-maybe path instead of enumerating
// quadratically many sub-span valuations.
func DefaultLimits() Limits {
	return Limits{MaxCellValues: 512, MaxValuations: 1024}
}

// Func is a boolean p-function (e.g. approxMatch, similar): it receives
// one concrete value span per argument.
type Func func(args []text.Span) (bool, error)

// Procedure is a procedural p-predicate ("cleanup procedure",
// Section 2.2.4). Its first rule argument is the input span; Outputs is
// the number of remaining (output) arguments; Fn maps an input value to
// the set of output tuples.
type Procedure struct {
	Outputs int
	Fn      func(input text.Span) ([][]text.Span, error)
}

// Env binds a program to its runtime: extensional tables, p-functions,
// procedures, and the feature registry.
type Env struct {
	Tables   map[string]*compact.Table
	Funcs    map[string]Func
	Procs    map[string]Procedure
	Features *feature.Registry
	Limits   Limits
	// FeatureMemo caches Verify/Refine results per (document, span,
	// feature, param). Documents are immutable and features are pure, so
	// entries never invalidate; sharing the Env across a session's
	// simulation fan-out shares the memo too. May be nil (no caching).
	FeatureMemo *feature.Memo
	// Blockable names p-functions that guarantee matching values share at
	// least one token, enabling the fused token-blocked similarity join.
	Blockable map[string]bool
	// TokenSimilar optionally provides a token-slice implementation of a
	// blockable p-function; the fused join uses it to compare pinned
	// (single-value) cells without re-tokenising every pair.
	TokenSimilar map[string]func(a, b []string) bool
	// FaultHook, when non-nil, is invoked before every guarded
	// per-document unit of user code (p-functions, feature constraint
	// evaluation, procedures) with the guard site name and the sorted IDs
	// of the documents involved; a returned error — or a panic — is
	// handled exactly like a fault in the user code itself. It exists for
	// deterministic fault injection (internal/fault) and must be set
	// before evaluation starts.
	FaultHook func(site string, docs []string) error
	// DocIndex, when non-nil, answers whole-document token queries from
	// an index built at ingest (the document store), so the shared-token
	// prefilter and simjoin blocking skip re-tokenising resident pages —
	// and skip paging non-resident pages in at all. Implementations must
	// return exactly what the engine would compute live: BlockTokens the
	// distinct similarity.Tokens of the page text, NormTokens the ordered
	// similarity.NormalizedTokens of the page's normalised text. A false
	// ok falls back to live tokenisation; results are byte-identical
	// either way.
	DocIndex DocIndex
	// Postings, when non-nil, provides the persistent inverted
	// blocking-token index over the same store: simjoin blocking consults
	// it directly when the join's right side is a plain document table,
	// instead of rebuilding a per-run blocking index from page text.
	Postings PostingsIndex
}

// DocIndex answers per-document token queries from a prebuilt index;
// see Env.DocIndex for the exactness contract.
type DocIndex interface {
	// BlockTokens returns the distinct blocking tokens of the document.
	BlockTokens(d *text.Document) ([]string, bool)
	// NormTokens returns the document's ordered normalized token sequence.
	NormTokens(d *text.Document) ([]string, bool)
}

// PostingsIndex is an inverted blocking-token index over an ordinal
// document space; see Env.Postings.
type PostingsIndex interface {
	// NumDocs returns the size of the ordinal space.
	NumDocs() int
	// DocOrdinal returns d's ordinal, or false if d is not indexed.
	DocOrdinal(d *text.Document) (int, bool)
	// TokenPostings returns the sorted ordinals of documents whose
	// blocking-token set contains tok. A token known to match no document
	// returns (nil, true); ok is false only when the index cannot answer
	// (callers must then treat every document as a candidate).
	TokenPostings(tok string) ([]int, bool)
}

// TableSpill persists evicted result tables so a cache-budget eviction
// demotes to disk instead of dropping; satisfied by store.Spill.
type TableSpill interface {
	Save(key string, t *compact.Table) (int64, error)
	Load(key string) (*compact.Table, bool, error)
	Drop(key string)
}

// NewEnv returns an Env with the built-in feature registry, default
// limits, and the default p-functions similar and approxMatch.
func NewEnv() *Env {
	e := &Env{
		Tables:      map[string]*compact.Table{},
		Funcs:       map[string]Func{},
		Procs:       map[string]Procedure{},
		Features:    feature.NewRegistry(),
		Limits:      DefaultLimits(),
		FeatureMemo: feature.NewMemo(),
	}
	sim := func(args []text.Span) (bool, error) {
		if len(args) != 2 {
			return false, fmt.Errorf("engine: similar expects 2 arguments, got %d", len(args))
		}
		return similarity.Similar(args[0].NormText(), args[1].NormText()), nil
	}
	e.Funcs["similar"] = sim
	e.Funcs["approxMatch"] = sim
	e.Blockable = map[string]bool{"similar": true, "approxMatch": true}
	e.TokenSimilar = map[string]func(a, b []string) bool{
		"similar":     similarity.SimilarTokens,
		"approxMatch": similarity.SimilarTokens,
	}
	return e
}

// AddDocTable registers an extensional single-column table of documents
// under the given predicate name, one tuple per document (e.g.
// housePages(x)). Cells hold exact(whole-document) assignments, per the
// conversion rule of Section 4.
func (e *Env) AddDocTable(pred, col string, docs []*text.Document) {
	t := compact.NewTable(col)
	for _, d := range docs {
		t.Append(compact.Tuple{Cells: []compact.Cell{compact.ExactCell(d.WholeSpan())}})
	}
	e.Tables[pred] = t
}

// DocResolver returns a lookup from document ID to the handle referenced
// by this environment's tables — what a table spill needs to decode
// spilled spans back onto the very documents the engine's memos key on.
// Build it after the extensional tables are registered.
func (e *Env) DocResolver() func(id string) (*text.Document, bool) {
	byID := map[string]*text.Document{}
	for _, t := range e.Tables {
		for _, tp := range t.Tuples {
			for _, c := range tp.Cells {
				for _, a := range c.Assigns {
					if d := a.Span.Doc(); d != nil {
						byID[d.ID()] = d
					}
				}
			}
		}
	}
	return func(id string) (*text.Document, bool) {
		d, ok := byID[id]
		return d, ok
	}
}

// Schema derives the alog.Schema view of this environment.
func (e *Env) Schema() *alog.Schema {
	s := &alog.Schema{
		Extensional: map[string][]string{},
		Functions:   map[string]bool{},
		Procedures:  map[string]bool{},
	}
	for name, t := range e.Tables {
		s.Extensional[name] = t.Cols
	}
	for name := range e.Funcs {
		s.Functions[name] = true
	}
	for name := range e.Procs {
		s.Procedures[name] = true
	}
	return s
}

// Context carries per-execution state: the environment, the reuse cache,
// and the optional document subset. A Context is safe for concurrent use:
// cache lookups are single-flight (one goroutine evaluates a signature
// while concurrent requesters for the same key block and share the
// result), stats counters are updated atomically, and evaluation fans
// leaf loops out across a bounded worker pool. Contexts must not be
// copied after first use.
//
// The reuse cache is internal: it memoises node results keyed by
// (subset, signature hash), holds the similarity-join blocking indexes
// and the delta-evaluation per-tuple memos, and maintains an LRU order
// so CacheBudget can bound its total size. Share one Context across
// iterations to get the paper's reuse behaviour.
type Context struct {
	Env *Env
	// DocFilter, when non-nil, restricts scans to documents whose ID it
	// maps to true (subset evaluation, Section 5.2). It must not be
	// mutated while evaluations are in flight. Prefer SetDocFilter, which
	// also memoises the subset cache-key marker; assigning the field
	// directly still works but pays a re-sort per Eval call.
	DocFilter map[string]bool
	// Workers bounds the evaluation worker pool: 0 uses every available
	// CPU, 1 evaluates fully serially. Results are byte-identical across
	// worker counts (deterministic merge order).
	Workers int
	// CacheBudget bounds the reuse cache in bytes (0 = unlimited): cached
	// tables, delta memos, and blocking indexes all count against it, and
	// least-recently-used entries are evicted when it is exceeded. An
	// evicted entry is re-evaluated on next use — results never change,
	// only how much is recomputed. Set it before the first evaluation.
	CacheBudget int64
	// FaultPolicy selects per-document fault handling: FailFast (default)
	// propagates the first error or panic; QuarantineFaults isolates the
	// offending documents and proceeds over the survivors (quarantine.go).
	FaultPolicy FaultPolicy
	// MaxDocRetries caps the retries a transient per-document error gets
	// before its documents are quarantined: 0 means the default of one
	// retry, negative means none. Panics are never retried.
	MaxDocRetries int
	// ChunkHook, when non-nil, runs at the start of every parallel-chunk
	// body (including the serial fallback) before any work; a returned
	// error fails the chunk. It exists for deterministic fault and
	// latency injection at operator-chunk boundaries (internal/fault).
	ChunkHook func(start, end int) error
	// Spill, when non-nil, demotes result tables evicted by CacheBudget
	// to disk instead of dropping them; a later request for the key
	// resurrects the table from the spill rather than re-evaluating.
	// Results are identical either way — spilling only changes how much
	// is recomputed. Set it before the first evaluation.
	Spill TableSpill
	// Stats accumulates evaluation counters (atomically).
	Stats Stats

	// mu guards cache, lru, cacheBytes, inflight, and deltaPrev.
	mu sync.Mutex
	// cache memoises node results (and blocking indexes) by hashed key;
	// entries verify the marker and signature strings on lookup, so a
	// 64-bit collision degrades to a miss, never to a wrong result.
	cache map[entryKey]*cacheEntry
	// lruHead / lruTail order entries from most to least recently used.
	lruHead, lruTail *cacheEntry
	// cacheBytes is the total estimated size of all cached entries.
	cacheBytes int64
	// inflight tracks keys currently being evaluated, for single-flight
	// deduplication across goroutines.
	inflight map[entryKey]*inflightEval
	// deltaOn enables incremental evaluation (see delta.go).
	deltaOn bool
	// deltaPrev maps current-plan node hashes to their predecessors in
	// the previous plan version (RegisterDelta).
	deltaPrev map[uint64]deltaLink
	// corpusPrior holds the result tables and per-tuple memos displaced
	// by ApplyCorpusDelta: after a corpus mutation no cached table is
	// authoritative, but every memo still replays tuples sourced from
	// unchanged documents. Eval consults it on a cache miss (after the
	// plan-delta paths) and consumes entries as they are used.
	corpusPrior map[entryKey]*corpusPriorEntry
	// obsRows records the observed output cardinality of every cleanly
	// evaluated node, keyed by signature hash — the optimizer's cost
	// model adopts a snapshot of it to refine reported estimates.
	obsRows map[uint64]RowObservation
	// extraWorkers counts pool slots handed out beyond the caller's own
	// goroutine; see parallel.go.
	extraWorkers atomic.Int64
	// trace, when set, collects one TraceRecord per Eval call; see
	// trace.go (StartTrace, TraceOps, Explain).
	trace atomic.Pointer[tracer]
	// subsetMarker / subsetHash memoise the sorted-subset cache-key prefix
	// (and its hash) for the DocFilter map identified by subsetFor, so
	// subset-mode Eval calls skip the per-call sort (SetDocFilter computes
	// them eagerly).
	subsetMarker string
	subsetHash   uint64
	subsetFor    uintptr
	// prevSubsetMarker / prevSubsetHash identify the evaluation mode the
	// context most recently switched away from (SetDocFilter); delta
	// evaluation probes it for priors when the current mode has none.
	prevSubsetMarker string
	prevSubsetHash   uint64
	// cancelSt holds the cancellation source bound via BindCancel (nil
	// when none); see cancel.go.
	cancelSt atomic.Pointer[cancelState]
	// degMu guards the degradation report state collected while a
	// best-effort cancellation is bound.
	degMu          sync.Mutex
	degExpired     bool
	degUnprocessed map[string]bool
	// qmu serialises quarantine updates; qstate is the immutable current
	// quarantine set, nil while no document is quarantined (the fault-free
	// fast path); see quarantine.go.
	qmu    sync.Mutex
	qstate atomic.Pointer[quarantineSet]
}

// fullMarker prefixes cache keys of unfiltered (whole-corpus) evaluations.
const fullMarker = "full"

var fullMarkerHash = fnv64(fullMarker)

// entryKey identifies one cache entry: the subset marker hash, the node
// signature hash, and an auxiliary discriminator ("" for the node's
// result table; the join variable for a similarity-join blocking index).
type entryKey struct {
	subset uint64
	sig    uint64
	aux    string
}

// cacheEntry is one resident cache entry. marker and sig hold the strings
// the key hashes were derived from, verified on every lookup. Exactly one
// of table (plus optional delta memo aux) or idx is set. Entries form a
// doubly-linked LRU list under Context.mu.
type cacheEntry struct {
	key    entryKey
	marker string
	sig    string
	table  *compact.Table
	aux    *evalAux
	idx    *blockIndex
	bytes  int64

	prev, next *cacheEntry
}

// inflightEval is one in-progress node evaluation; waiters block on done
// and then read table/err (written before done is closed). marker and sig
// verify the hashed key.
type inflightEval struct {
	done   chan struct{}
	table  *compact.Table
	err    error
	marker string
	sig    string
}

// Stats counts evaluation work, exposed for the experiments and benches.
// Fields are int64 so concurrent evaluation can update them atomically;
// read them only after evaluation quiesces (or via a copy).
//
// NodesEvaluated, CacheHits, TuplesBuilt, the call counters,
// LimitFallbacks, DeltaEvals, TuplesReused, and TuplesRecomputed are
// deterministic: identical totals at any worker count (the single-flight
// cache evaluates each key exactly once; every other request is a hit).
// The pool counters and OpTimeNs depend on scheduling and vary run to
// run. Snapshot renders the JSON view with derived rates.
type Stats struct {
	NodesEvaluated int64
	CacheHits      int64
	TuplesBuilt    int64
	ProcCalls      int64
	FuncCalls      int64
	VerifyCalls    int64
	RefineCalls    int64
	// LimitFallbacks counts tuples an operator kept conservatively
	// because value enumeration exceeded Limits (the superset-safe
	// fallback paths of Section 4.1).
	LimitFallbacks int64
	// PoolSlotsGranted / PoolSlotsDenied count tryAcquire outcomes: a
	// denial means the work ran inline on the requesting goroutine.
	PoolSlotsGranted int64
	PoolSlotsDenied  int64
	// PoolMaxExtra is the high-water mark of concurrently held pool slots
	// (extra workers beyond the requesting goroutine). A service hosting
	// many tenants on one process reads this per tenant context to see the
	// peak share of the machine each actually used against its Workers
	// quota. Scheduling-dependent, like the other pool counters.
	PoolMaxExtra int64
	// FeatureMemoHits / FeatureMemoMisses count Verify/Refine invocations
	// served from (or inserted into) the Env's feature memo. Concurrent
	// evaluations may race to fill the same key, so — like the pool
	// counters — these vary slightly with scheduling; VerifyCalls and
	// RefineCalls count logical calls and stay deterministic.
	FeatureMemoHits   int64
	FeatureMemoMisses int64
	// OpTimeNs accumulates evaluation wall time per operator kind,
	// indexed by OpKind (see trace.go); like the pool counters it varies
	// with scheduling.
	OpTimeNs [numOpKinds]int64
	// StatMergeNs / StatMerges measure the per-worker counter-shard
	// flushes: hot loops batch their deterministic counter deltas locally
	// and merge once per chunk, so these report how much wall time the
	// shared-counter synchronisation costs in total.
	StatMergeNs int64
	StatMerges  int64
	// DeltaEvals counts node evaluations that ran with a predecessor memo
	// attached (cache misses where RegisterDelta had mapped the node and
	// the predecessor's entry was still resident); NodesEvaluated minus
	// DeltaEvals is the full-evaluation count.
	DeltaEvals int64
	// TuplesReused / TuplesRecomputed count, across the delta-capable
	// operators (constraint, selection, cross, similarity join,
	// annotation), input tuples whose outcome was replayed from a
	// predecessor memo versus computed fresh. Recomputed is counted in
	// both modes, so delta and full runs of the same workload are directly
	// comparable; with delta off, Reused stays 0.
	TuplesReused     int64
	TuplesRecomputed int64
	// TablesAdopted counts re-evaluations whose output reproduced the
	// predecessor's table exactly, so the old table object was handed out
	// instead — preserving downstream pointer identity (and with it the
	// binary operators' memo transferability).
	TablesAdopted int64
	// CacheEvictions / BlockIdxEvictions count entries dropped to keep
	// the cache under CacheBudget, split by payload kind (result table vs
	// similarity-join blocking index). CacheBytes is a gauge: the current
	// estimated resident size of the cache.
	CacheEvictions    int64
	BlockIdxEvictions int64
	CacheBytes        int64
	// TablesSpilled / SpillLoads / SpillBytes count cache-budget
	// evictions demoted to the spill area, tables resurrected from it
	// (instead of re-evaluated), and cumulative bytes written. Like the
	// pool counters they depend on eviction order and so may vary with
	// scheduling; SpillLoads is never folded into CacheHits.
	TablesSpilled int64
	SpillLoads    int64
	SpillBytes    int64
	// BlockIdxPostings counts simjoin blocking indexes served directly
	// by the persistent inverted token index (Env.Postings) instead of
	// being rebuilt from page text; IndexTokenHits counts whole-document
	// token queries answered by Env.DocIndex. Both vary slightly with
	// scheduling (concurrent builders race benignly; delta reuse skips
	// lookups), like the feature-memo counters.
	BlockIdxPostings int64
	IndexTokenHits   int64
	// QuarantinedDocs is a gauge: the number of documents currently
	// quarantined by per-document fault isolation. QuarantineEvents
	// counts faults converted into quarantine, QuarantineRetries counts
	// transient-error retries, and EvalRestarts counts the clean
	// re-evaluations Plan.Execute ran after a pass quarantined documents.
	// All four are deterministic at any worker count: a faulting pass
	// still processes every unit, so the per-pass quarantine set is
	// schedule-independent.
	QuarantinedDocs   int64
	QuarantineEvents  int64
	QuarantineRetries int64
	EvalRestarts      int64
	// DeadlineCuts counts operator loops cut short by a fired best-effort
	// cancellation; like the pool counters it varies with scheduling.
	DeadlineCuts int64
	// CorpusDeltas counts ApplyCorpusDelta calls; CorpusPriorHits counts
	// cache-miss evaluations that picked up a displaced prior (table plus
	// per-tuple memo) from the last corpus delta, so the operator replayed
	// tuples from unchanged documents instead of recomputing them.
	// CorpusSpillsDropped counts spilled tables invalidated by corpus
	// deltas (spills elide provenance, so all of them are dropped).
	CorpusDeltas        int64
	CorpusPriorHits     int64
	CorpusSpillsDropped int64
}

// statAdd atomically bumps one stats counter; every Stats write in the
// engine goes through it because node evaluation may run on several
// goroutines at once.
func statAdd(p *int64, n int) { atomic.AddInt64(p, int64(n)) }

// statMax raises *p to v if v is larger (atomic high-water mark).
func statMax(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v <= cur || atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}

// statBatch is a worker-local shard of the deterministic call counters.
// Hot loops (filterTupleF odometers, similarity-join probes, constraint
// refinement) increment plain fields and flush once per chunk, replacing
// one atomic add per predicate call with one per counter per chunk — the
// contention fix for the parallel op-time inflation seen in PR 2's traces.
type statBatch struct {
	funcCalls        int64
	verifyCalls      int64
	refineCalls      int64
	memoHits         int64
	memoMisses       int64
	tuplesReused     int64
	tuplesRecomputed int64
}

// flush merges the shard into the shared Stats and times the merge
// (surfaced as stat_merge_seconds in snapshots). The batch is reset so a
// deferred flush composes with explicit mid-chunk flushes.
func (b *statBatch) flush(ctx *Context) {
	if *b == (statBatch{}) {
		return
	}
	start := time.Now()
	b.flushTo(&ctx.Stats)
	atomic.AddInt64(&ctx.Stats.StatMergeNs, int64(time.Since(start)))
	atomic.AddInt64(&ctx.Stats.StatMerges, 1)
}

// countMemo records one feature-memo lookup outcome.
func (b *statBatch) countMemo(hit bool) {
	if hit {
		b.memoHits++
	} else {
		b.memoMisses++
	}
}

// flushTo merges the shard into stats without merge-cost accounting (used
// by entry points that hold no Context).
func (b *statBatch) flushTo(stats *Stats) {
	if b.funcCalls != 0 {
		atomic.AddInt64(&stats.FuncCalls, b.funcCalls)
	}
	if b.verifyCalls != 0 {
		atomic.AddInt64(&stats.VerifyCalls, b.verifyCalls)
	}
	if b.refineCalls != 0 {
		atomic.AddInt64(&stats.RefineCalls, b.refineCalls)
	}
	if b.memoHits != 0 {
		atomic.AddInt64(&stats.FeatureMemoHits, b.memoHits)
	}
	if b.memoMisses != 0 {
		atomic.AddInt64(&stats.FeatureMemoMisses, b.memoMisses)
	}
	if b.tuplesReused != 0 {
		atomic.AddInt64(&stats.TuplesReused, b.tuplesReused)
	}
	if b.tuplesRecomputed != 0 {
		atomic.AddInt64(&stats.TuplesRecomputed, b.tuplesRecomputed)
	}
	*b = statBatch{}
}

// NewContext returns a fresh context with an empty reuse cache.
func NewContext(env *Env) *Context {
	return &Context{
		Env:      env,
		cache:    map[entryKey]*cacheEntry{},
		inflight: map[entryKey]*inflightEval{},
	}
}

// SetDocFilter switches the context between full evaluation (nil) and
// subset evaluation, precomputing the subset cache-key marker (and its
// hash) once instead of per Eval call. Like writing DocFilter directly,
// it may only be called while no evaluations are in flight.
func (ctx *Context) SetDocFilter(filter map[string]bool) {
	oldHash, oldMarker := ctx.subsetKey()
	ctx.DocFilter = filter
	if filter == nil {
		ctx.subsetMarker, ctx.subsetHash, ctx.subsetFor = "", 0, 0
	} else {
		ctx.subsetMarker = subsetMarkerFor(filter)
		ctx.subsetHash = fnv64(ctx.subsetMarker)
		ctx.subsetFor = reflect.ValueOf(filter).Pointer()
	}
	// Remember the mode we switched away from: delta evaluation falls back
	// to the previous mode's memos (per-tuple outcomes are subset-
	// independent), which is what lets the final full-corpus execution
	// replay the tuples the subset iterations already processed.
	if _, newMarker := ctx.subsetKey(); newMarker != oldMarker {
		ctx.prevSubsetHash, ctx.prevSubsetMarker = oldHash, oldMarker
	}
}

// subsetMarkerFor renders the sorted-ID marker that prefixes subset-mode
// cache keys, so subset and full evaluations never alias and different
// subsets never share results.
func subsetMarkerFor(filter map[string]bool) string {
	ids := make([]string, 0, len(filter))
	total := 0
	for id, ok := range filter {
		if ok {
			ids = append(ids, id)
			total += len(id) + 1
		}
	}
	sort.Strings(ids)
	var b strings.Builder
	b.Grow(len("subset") + total)
	b.WriteString("subset")
	for _, id := range ids {
		b.WriteByte(':')
		b.WriteString(id)
	}
	return b.String()
}

// subsetKey returns the current evaluation mode's marker hash and string.
// The marker is memoised by SetDocFilter; a DocFilter assigned directly
// to the field (bypassing SetDocFilter) is detected by map identity and
// re-sorted per call. Quarantined documents extend the marker, so
// evaluations over different survivor sets never share cache entries —
// a pass that saw a fault is never resident under the survivors' key.
func (ctx *Context) subsetKey() (uint64, string) {
	h, m := ctx.baseSubsetKey()
	if q := ctx.qstate.Load(); q != nil {
		return fnv64More(h, q.suffix), m + q.suffix
	}
	return h, m
}

func (ctx *Context) baseSubsetKey() (uint64, string) {
	if ctx.DocFilter == nil {
		return fullMarkerHash, fullMarker
	}
	if ctx.subsetFor == reflect.ValueOf(ctx.DocFilter).Pointer() {
		return ctx.subsetHash, ctx.subsetMarker
	}
	marker := subsetMarkerFor(ctx.DocFilter)
	return fnv64(marker), marker
}

// cacheKey renders the human-readable cache key (subset marker plus
// signature) used by trace records and Explain; the cache itself is keyed
// by the hashed entryKey.
func (ctx *Context) cacheKey(sig string) string {
	_, marker := ctx.subsetKey()
	return marker + "|" + sig
}

// lookupLocked returns the resident entry for key after verifying the
// marker and signature strings (a hash collision reads as a miss).
// Callers hold ctx.mu.
func (ctx *Context) lookupLocked(key entryKey, marker, sig string) *cacheEntry {
	e := ctx.cache[key]
	if e == nil || e.marker != marker || e.sig != sig {
		return nil
	}
	return e
}

// touchLocked moves an entry to the front of the LRU order.
func (ctx *Context) touchLocked(e *cacheEntry) {
	if ctx.lruHead == e {
		return
	}
	ctx.unlinkLocked(e)
	ctx.pushFrontLocked(e)
}

func (ctx *Context) unlinkLocked(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if ctx.lruHead == e {
		ctx.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if ctx.lruTail == e {
		ctx.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (ctx *Context) pushFrontLocked(e *cacheEntry) {
	e.next = ctx.lruHead
	if ctx.lruHead != nil {
		ctx.lruHead.prev = e
	}
	ctx.lruHead = e
	if ctx.lruTail == nil {
		ctx.lruTail = e
	}
}

// storeLocked inserts an entry (clobbering any previous occupant of the
// key, which only happens on re-store or a hash collision) and evicts
// from the LRU tail while over budget. The just-stored entry is never
// evicted by its own insertion: the cache must be able to hold the result
// it is about to return.
func (ctx *Context) storeLocked(e *cacheEntry) {
	if old := ctx.cache[e.key]; old != nil {
		ctx.unlinkLocked(old)
		ctx.cacheBytes -= old.bytes
	}
	ctx.cache[e.key] = e
	ctx.pushFrontLocked(e)
	ctx.cacheBytes += e.bytes
	if ctx.CacheBudget > 0 {
		for ctx.cacheBytes > ctx.CacheBudget && ctx.lruTail != nil && ctx.lruTail != e {
			ctx.evictLocked(ctx.lruTail)
		}
	}
	atomic.StoreInt64(&ctx.Stats.CacheBytes, ctx.cacheBytes)
}

// evictLocked removes one entry and counts the eviction by payload kind.
// With a spill attached, an evicted result table is demoted to disk
// first, so the next request for the key resurrects it instead of
// re-evaluating. The write happens under ctx.mu — eviction is rare (it
// fires only over budget) and a consistent spill ordering is worth more
// than the held lock; blocking indexes and delta memos are cheap to
// rebuild and are dropped, not spilled.
func (ctx *Context) evictLocked(e *cacheEntry) {
	ctx.unlinkLocked(e)
	delete(ctx.cache, e.key)
	ctx.cacheBytes -= e.bytes
	if e.idx != nil {
		statAdd(&ctx.Stats.BlockIdxEvictions, 1)
		return
	}
	statAdd(&ctx.Stats.CacheEvictions, 1)
	if ctx.Spill != nil && e.table != nil && e.table.Degraded == nil && e.key.aux == "" {
		if n, err := ctx.Spill.Save(e.marker+"|"+e.sig, e.table); err == nil {
			statAdd(&ctx.Stats.TablesSpilled, 1)
			statAdd(&ctx.Stats.SpillBytes, int(n))
		}
	}
}

// CacheInfo reports the cache's current estimated size and entry count
// (tables and blocking indexes combined).
func (ctx *Context) CacheInfo() (bytes int64, entries int) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	return ctx.cacheBytes, len(ctx.cache)
}

// RowObservation is one observed output cardinality: the full signature
// string guards against 64-bit hash collisions, exactly like the reuse
// cache does.
type RowObservation struct {
	Sig  string
	Rows int64
}

// ObservedRows snapshots the per-node output cardinalities observed so
// far (signature hash → observation). Sessions adopt one snapshot per
// iteration into the optimizer's cost model, so every trial plan of the
// iteration reads identical, frozen statistics regardless of worker
// scheduling.
func (ctx *Context) ObservedRows() map[uint64]RowObservation {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	out := make(map[uint64]RowObservation, len(ctx.obsRows))
	for k, v := range ctx.obsRows {
		out[k] = v
	}
	return out
}

// Node is one operator of a compiled plan. Nodes are immutable after
// construction; evaluation is memoised through the context cache.
type Node interface {
	// Signature is a canonical rendering of the subtree, the reuse key
	// (precomputed at construction; see nodeSig).
	Signature() string
	// sigHash is the precomputed 64-bit hash of Signature.
	sigHash() uint64
	// Columns names the variables bound by this node's output table.
	Columns() []string
	// Children returns the node's input operators.
	Children() []Node
	// eval computes the node's output table (uncached). ev receives
	// per-evaluation trace attribution (valuation-limit fallbacks) and
	// may be nil when tracing is off; dx carries delta-evaluation state
	// and is nil when delta evaluation is off.
	eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error)
}

// SumAssignments evaluates every node of the plan (through the cache) and
// totals the assignments across all intermediate and final tables — the
// "number of assignments produced by the extraction process" that the
// convergence monitor tracks alongside the result size (Section 5.1).
func SumAssignments(ctx *Context, root Node) (int, error) {
	total := 0
	seen := map[string]bool{}
	var walk func(n Node) error
	walk = func(n Node) error {
		if seen[n.Signature()] {
			return nil
		}
		seen[n.Signature()] = true
		for _, c := range n.Children() {
			if err := walk(c); err != nil {
				return err
			}
		}
		t, err := evalRetrying(ctx, n)
		if err != nil {
			return err
		}
		total += t.NumAssignments()
		return nil
	}
	if err := walk(root); err != nil {
		return 0, err
	}
	return total, nil
}

// Eval evaluates a node through the context's reuse cache with
// single-flight deduplication: the first goroutine to request a signature
// evaluates it; concurrent requesters for the same key block until it
// finishes and share the result (counted as cache hits). Failed
// evaluations are not cached, so a later request retries.
//
// With delta evaluation on, a cache miss of a node that RegisterDelta
// mapped to a predecessor picks up the predecessor's per-tuple memo, so
// the operator replays unchanged tuples instead of recomputing them; the
// result is byte-identical either way.
//
// If the node's evaluation panics, the in-flight entry is removed and its
// done channel closed before the panic propagates, so concurrent waiters
// unblock with an error instead of deadlocking and a later request for
// the same key evaluates afresh.
func Eval(ctx *Context, n Node) (*compact.Table, error) {
	if _, err := ctx.cutCheck(); err != nil {
		// Hard cancellation: fail fast before touching the cache. (A
		// best-effort cut falls through — operators degrade per chunk and
		// the partial result propagates up.)
		return nil, err
	}
	subsetHash, marker := ctx.subsetKey()
	key := entryKey{subset: subsetHash, sig: n.sigHash()}
	sig := n.Signature()
	trace := ctx.trace.Load()
	ctx.mu.Lock()
	if e := ctx.lookupLocked(key, marker, sig); e != nil && e.table != nil {
		ctx.touchLocked(e)
		ctx.mu.Unlock()
		statAdd(&ctx.Stats.CacheHits, 1)
		if trace != nil {
			trace.push(TraceRecord{Op: opName(n), Signature: sig, Key: marker + "|" + sig, Status: StatusHit})
		}
		return e.table, nil
	}
	if ctx.inflight == nil {
		ctx.inflight = map[entryKey]*inflightEval{}
	}
	if c, ok := ctx.inflight[key]; ok {
		if c.marker != marker || c.sig != sig {
			// A different signature hashed onto this in-flight key (2^-64):
			// evaluate directly, bypassing the cache, rather than corrupt the
			// single-flight bookkeeping.
			ctx.mu.Unlock()
			return evalUncached(ctx, n, marker, sig, trace)
		}
		ctx.mu.Unlock()
		if werr := ctx.waitInflight(c); werr != nil {
			// Hard cancellation fired while parked on the owner: give up
			// without waiting for it (the owner still cleans up its entry).
			return nil, werr
		}
		if c.err != nil {
			return nil, c.err
		}
		statAdd(&ctx.Stats.CacheHits, 1)
		if trace != nil {
			trace.push(TraceRecord{Op: opName(n), Signature: sig, Key: marker + "|" + sig, Status: StatusWait})
		}
		return c.table, nil
	}
	c := &inflightEval{done: make(chan struct{}), marker: marker, sig: sig}
	ctx.inflight[key] = c
	// Delta prior: a mapped predecessor evaluated under the same subset
	// whose entry still holds a per-tuple memo. The predecessor's output
	// table is kept for the adoption check below. When the current mode has
	// nothing, fall back to the previous evaluation mode (per-tuple memos
	// are subset-independent: operators decide per tuple, the doc filter
	// only gates which tuples the scans emit) — including the node's own
	// previous-mode entry, which covers the final full-corpus execution of
	// an unchanged plan. Cross-mode priors attach the memo only, never the
	// table: the tuple sets differ, so adoption would be wrong.
	var dx *deltaState
	var priorTable *compact.Table
	if ctx.deltaOn {
		dx = &deltaState{}
		prevMode := ctx.prevSubsetMarker != "" && ctx.prevSubsetMarker != marker
		if link, ok := ctx.deltaPrev[key.sig]; ok && link.newSig == sig {
			pk := entryKey{subset: subsetHash, sig: link.oldHash}
			if pe := ctx.lookupLocked(pk, marker, link.oldSig); pe != nil {
				dx.prior = pe.aux
				priorTable = pe.table
			} else if prevMode {
				pk = entryKey{subset: ctx.prevSubsetHash, sig: link.oldHash}
				if pe := ctx.lookupLocked(pk, ctx.prevSubsetMarker, link.oldSig); pe != nil {
					dx.prior = pe.aux
				}
			}
		}
		if dx.prior == nil && priorTable == nil && prevMode {
			pk := entryKey{subset: ctx.prevSubsetHash, sig: key.sig}
			if pe := ctx.lookupLocked(pk, ctx.prevSubsetMarker, sig); pe != nil {
				dx.prior = pe.aux
			}
		}
		// Corpus prior: ApplyCorpusDelta displaced this node's last result
		// (the plan is typically unchanged, so the plan-delta links above
		// have nothing). The displaced table is attached for the adoption
		// check and the memo for per-tuple replay; dx.corpus tells binary
		// operators the prior's right table may have been rebuilt, so they
		// reconcile it against the current one instead of trusting pointer
		// identity. Entries are consumed: each is valid for exactly one
		// re-evaluation of its node.
		if dx.prior == nil && priorTable == nil && len(ctx.corpusPrior) > 0 {
			if cp := ctx.corpusPrior[key]; cp != nil && cp.marker == marker && cp.sig == sig {
				dx.prior = cp.aux
				dx.corpus = true
				priorTable = cp.table
				delete(ctx.corpusPrior, key)
				statAdd(&ctx.Stats.CorpusPriorHits, 1)
			}
		}
	}
	ctx.mu.Unlock()

	// Spill resurrection: a previous eviction may have demoted this exact
	// key to disk. Reload it instead of re-evaluating — the spill decoder
	// resolves spans back to the same document handles, so downstream
	// memos keyed by handle identity keep working. The file is dropped on
	// load (the table is resident again; a later eviction re-spills it).
	if ctx.Spill != nil {
		if t, ok, serr := ctx.Spill.Load(marker + "|" + sig); serr == nil && ok {
			ctx.Spill.Drop(marker + "|" + sig)
			statAdd(&ctx.Stats.SpillLoads, 1)
			c.table = t
			ctx.mu.Lock()
			if !ctx.cancelFired() {
				if ctx.obsRows == nil {
					ctx.obsRows = map[uint64]RowObservation{}
				}
				ctx.obsRows[n.sigHash()] = RowObservation{Sig: sig, Rows: int64(len(t.Tuples))}
				e := &cacheEntry{key: key, marker: marker, sig: sig, table: t, bytes: t.MemBytes()}
				ctx.storeLocked(e)
			}
			delete(ctx.inflight, key)
			ctx.mu.Unlock()
			close(c.done)
			if trace != nil {
				trace.push(TraceRecord{Op: opName(n), Signature: sig, Key: marker + "|" + sig, Status: StatusHit})
			}
			return t, nil
		}
	}

	statAdd(&ctx.Stats.NodesEvaluated, 1)
	if dx != nil && (dx.prior != nil || priorTable != nil) {
		statAdd(&ctx.Stats.DeltaEvals, 1)
	}
	var ev *EvalTrace
	if trace != nil {
		ev = &EvalTrace{}
	}
	finished := false
	start := time.Now()
	defer func() {
		if finished {
			return
		}
		// n.eval panicked (or exited the goroutine): unblock waiters with
		// an error, leave the key uncached and un-poisoned, then let the
		// panic continue.
		r := recover()
		c.err = fmt.Errorf("engine: panic evaluating %s: %v", sig, r)
		ctx.mu.Lock()
		delete(ctx.inflight, key)
		ctx.mu.Unlock()
		close(c.done)
		if r != nil {
			panic(r)
		}
	}()
	t, err := n.eval(ctx, ev, dx)
	if err == nil && priorTable != nil && t.StructuralEq(priorTable) {
		// Adoption: the re-evaluation reproduced the predecessor's output
		// exactly, so hand out the old table itself. Downstream operators
		// then see a pointer-identical input, which keeps binary operators'
		// memos (pinned to their right table) transferable and lets the
		// whole unchanged region of the plan replay.
		t = priorTable
		statAdd(&ctx.Stats.TablesAdopted, 1)
	}
	finished = true
	wall := time.Since(start)
	atomic.AddInt64(&ctx.Stats.OpTimeNs[kindOf(n)], int64(wall))
	c.table, c.err = t, err

	ctx.mu.Lock()
	if err == nil {
		statAdd(&ctx.Stats.TuplesBuilt, len(t.Tuples))
		if !ctx.cancelFired() {
			// Record the observed output cardinality for the optimizer's
			// cost model (reported estimates only — never rewrite
			// decisions, so partial best-effort results are simply skipped
			// along with caching).
			if ctx.obsRows == nil {
				ctx.obsRows = map[uint64]RowObservation{}
			}
			ctx.obsRows[n.sigHash()] = RowObservation{Sig: sig, Rows: int64(len(t.Tuples))}
			// A fired cancellation means this result may be partial (a
			// best-effort cut truncates operator loops), so it is handed to
			// the caller but never cached: a later evaluation under the same
			// key must recompute in full.
			e := &cacheEntry{key: key, marker: marker, sig: sig, table: t}
			if dx != nil {
				e.aux = dx.aux
			}
			e.bytes = t.MemBytes() + e.aux.memBytes()
			ctx.storeLocked(e)
		}
	}
	delete(ctx.inflight, key)
	ctx.mu.Unlock()
	close(c.done)
	if trace != nil {
		rec := TraceRecord{
			Op: opName(n), Signature: sig, Key: marker + "|" + sig,
			Status: StatusMiss, Wall: wall, Goroutine: goid(),
			Fallbacks: ev.fallbacks.Load(), Recomputed: ev.recomputed.Load(),
			Quarantined: ev.quarantined.Load(),
		}
		if dx != nil {
			rec.Reused = dx.reused.Load()
		}
		if err == nil {
			rec.Tuples = len(t.Tuples)
			rec.Expanded = t.NumExpandedTuples()
			rec.Assignments = t.NumAssignments()
		}
		trace.push(rec)
	}
	return t, err
}

// evalUncached evaluates a node without touching the cache or the
// single-flight map — the escape hatch for a hashed-key collision.
func evalUncached(ctx *Context, n Node, marker, sig string, trace *tracer) (*compact.Table, error) {
	statAdd(&ctx.Stats.NodesEvaluated, 1)
	var ev *EvalTrace
	if trace != nil {
		ev = &EvalTrace{}
	}
	start := time.Now()
	t, err := n.eval(ctx, ev, nil)
	wall := time.Since(start)
	atomic.AddInt64(&ctx.Stats.OpTimeNs[kindOf(n)], int64(wall))
	if err == nil {
		statAdd(&ctx.Stats.TuplesBuilt, len(t.Tuples))
	}
	if trace != nil {
		rec := TraceRecord{
			Op: opName(n), Signature: sig, Key: marker + "|" + sig,
			Status: StatusMiss, Wall: wall, Goroutine: goid(),
			Fallbacks: ev.fallbacks.Load(), Recomputed: ev.recomputed.Load(),
		}
		if err == nil {
			rec.Tuples = len(t.Tuples)
			rec.Expanded = t.NumExpandedTuples()
			rec.Assignments = t.NumAssignments()
		}
		trace.push(rec)
	}
	return t, err
}

// colIndex locates a column by name or panics; internal nodes are built by
// the compiler, which guarantees the column exists.
func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("engine: internal error: column %q missing from %v", name, cols))
}
