// Package engine implements iFlex's approximate query processor
// (Section 4): it compiles an Alog program into a plan over compact
// tables and evaluates it with superset semantics — the computed set of
// possible relations always includes every relation the program defines.
//
// Plans are trees of materialising operators; every node carries a
// canonical signature, and evaluation memoises node results in the
// Context's cache. That cache is the paper's *reuse* optimisation
// (Section 5.2): refining a program changes signatures only above the
// touched operator, so unchanged subtrees are reused verbatim across
// iterations. *Subset evaluation* is the Context's DocFilter: scans drop
// documents outside the sampled subset.
package engine

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/feature"
	"iflex/internal/similarity"
	"iflex/internal/text"
)

// Limits bound the work done per compact tuple when enumerating possible
// values; beyond them operators fall back to conservative (superset-safe)
// behaviour: keep the tuple, mark it maybe, skip precise filtering.
type Limits struct {
	// MaxCellValues caps value enumeration per cell.
	MaxCellValues int
	// MaxValuations caps the number of value combinations per tuple.
	MaxValuations int
}

// DefaultLimits balance precision against work: cells pinned by a few
// constraints enumerate fully, while unconstrained whole-document cells
// fall back to the conservative keep-as-maybe path instead of enumerating
// quadratically many sub-span valuations.
func DefaultLimits() Limits {
	return Limits{MaxCellValues: 512, MaxValuations: 1024}
}

// Func is a boolean p-function (e.g. approxMatch, similar): it receives
// one concrete value span per argument.
type Func func(args []text.Span) (bool, error)

// Procedure is a procedural p-predicate ("cleanup procedure",
// Section 2.2.4). Its first rule argument is the input span; Outputs is
// the number of remaining (output) arguments; Fn maps an input value to
// the set of output tuples.
type Procedure struct {
	Outputs int
	Fn      func(input text.Span) ([][]text.Span, error)
}

// Env binds a program to its runtime: extensional tables, p-functions,
// procedures, and the feature registry.
type Env struct {
	Tables   map[string]*compact.Table
	Funcs    map[string]Func
	Procs    map[string]Procedure
	Features *feature.Registry
	Limits   Limits
	// FeatureMemo caches Verify/Refine results per (document, span,
	// feature, param). Documents are immutable and features are pure, so
	// entries never invalidate; sharing the Env across a session's
	// simulation fan-out shares the memo too. May be nil (no caching).
	FeatureMemo *feature.Memo
	// Blockable names p-functions that guarantee matching values share at
	// least one token, enabling the fused token-blocked similarity join.
	Blockable map[string]bool
	// TokenSimilar optionally provides a token-slice implementation of a
	// blockable p-function; the fused join uses it to compare pinned
	// (single-value) cells without re-tokenising every pair.
	TokenSimilar map[string]func(a, b []string) bool
}

// NewEnv returns an Env with the built-in feature registry, default
// limits, and the default p-functions similar and approxMatch.
func NewEnv() *Env {
	e := &Env{
		Tables:      map[string]*compact.Table{},
		Funcs:       map[string]Func{},
		Procs:       map[string]Procedure{},
		Features:    feature.NewRegistry(),
		Limits:      DefaultLimits(),
		FeatureMemo: feature.NewMemo(),
	}
	sim := func(args []text.Span) (bool, error) {
		if len(args) != 2 {
			return false, fmt.Errorf("engine: similar expects 2 arguments, got %d", len(args))
		}
		return similarity.Similar(args[0].NormText(), args[1].NormText()), nil
	}
	e.Funcs["similar"] = sim
	e.Funcs["approxMatch"] = sim
	e.Blockable = map[string]bool{"similar": true, "approxMatch": true}
	e.TokenSimilar = map[string]func(a, b []string) bool{
		"similar":     similarity.SimilarTokens,
		"approxMatch": similarity.SimilarTokens,
	}
	return e
}

// AddDocTable registers an extensional single-column table of documents
// under the given predicate name, one tuple per document (e.g.
// housePages(x)). Cells hold exact(whole-document) assignments, per the
// conversion rule of Section 4.
func (e *Env) AddDocTable(pred, col string, docs []*text.Document) {
	t := compact.NewTable(col)
	for _, d := range docs {
		t.Append(compact.Tuple{Cells: []compact.Cell{compact.ExactCell(d.WholeSpan())}})
	}
	e.Tables[pred] = t
}

// Schema derives the alog.Schema view of this environment.
func (e *Env) Schema() *alog.Schema {
	s := &alog.Schema{
		Extensional: map[string][]string{},
		Functions:   map[string]bool{},
		Procedures:  map[string]bool{},
	}
	for name, t := range e.Tables {
		s.Extensional[name] = t.Cols
	}
	for name := range e.Funcs {
		s.Functions[name] = true
	}
	for name := range e.Procs {
		s.Procedures[name] = true
	}
	return s
}

// Context carries per-execution state: the environment, the reuse cache,
// and the optional document subset. A Context is safe for concurrent use:
// cache lookups are single-flight (one goroutine evaluates a signature
// while concurrent requesters for the same key block and share the
// result), stats counters are updated atomically, and evaluation fans
// leaf loops out across a bounded worker pool. Contexts must not be
// copied after first use.
type Context struct {
	Env *Env
	// Cache memoises node results by signature; share one Context across
	// iterations to get the paper's reuse behaviour. Guarded by mu; treat
	// cached tables as immutable.
	Cache map[string]*compact.Table
	// DocFilter, when non-nil, restricts scans to documents whose ID it
	// maps to true (subset evaluation, Section 5.2). It must not be
	// mutated while evaluations are in flight. Prefer SetDocFilter, which
	// also memoises the subset cache-key marker; assigning the field
	// directly still works but pays a re-sort per Eval call.
	DocFilter map[string]bool
	// Workers bounds the evaluation worker pool: 0 uses every available
	// CPU, 1 evaluates fully serially. Results are byte-identical across
	// worker counts (deterministic merge order).
	Workers int
	// Stats accumulates evaluation counters (atomically).
	Stats Stats

	// mu guards Cache, inflight, and blockIdx.
	mu sync.Mutex
	// inflight tracks signatures currently being evaluated, for
	// single-flight deduplication across goroutines.
	inflight map[string]*inflightEval
	// blockIdx caches similarity-join blocking indexes per (subset, node,
	// variable); trial executions during question simulation share the
	// unchanged side's index instead of re-tokenising it.
	blockIdx map[string]*blockIndex
	// extraWorkers counts pool slots handed out beyond the caller's own
	// goroutine; see parallel.go.
	extraWorkers atomic.Int64
	// trace, when set, collects one TraceRecord per Eval call; see
	// trace.go (StartTrace, TraceOps, Explain).
	trace atomic.Pointer[tracer]
	// subsetMarker memoises the sorted-subset cache-key prefix for the
	// DocFilter map identified by subsetFor, so subset-mode Eval calls
	// skip the per-call sort (SetDocFilter computes it eagerly).
	subsetMarker string
	subsetFor    uintptr
}

// inflightEval is one in-progress node evaluation; waiters block on done
// and then read table/err (written before done is closed).
type inflightEval struct {
	done  chan struct{}
	table *compact.Table
	err   error
}

// Stats counts evaluation work, exposed for the experiments and benches.
// Fields are int64 so concurrent evaluation can update them atomically;
// read them only after evaluation quiesces (or via a copy).
//
// NodesEvaluated, CacheHits, TuplesBuilt, the call counters, and
// LimitFallbacks are deterministic: identical totals at any worker count
// (the single-flight cache evaluates each key exactly once; every other
// request is a hit). The pool counters and OpTimeNs depend on scheduling
// and vary run to run. Snapshot renders the JSON view with derived rates.
type Stats struct {
	NodesEvaluated int64
	CacheHits      int64
	TuplesBuilt    int64
	ProcCalls      int64
	FuncCalls      int64
	VerifyCalls    int64
	RefineCalls    int64
	// LimitFallbacks counts tuples an operator kept conservatively
	// because value enumeration exceeded Limits (the superset-safe
	// fallback paths of Section 4.1).
	LimitFallbacks int64
	// PoolSlotsGranted / PoolSlotsDenied count tryAcquire outcomes: a
	// denial means the work ran inline on the requesting goroutine.
	PoolSlotsGranted int64
	PoolSlotsDenied  int64
	// FeatureMemoHits / FeatureMemoMisses count Verify/Refine invocations
	// served from (or inserted into) the Env's feature memo. Concurrent
	// evaluations may race to fill the same key, so — like the pool
	// counters — these vary slightly with scheduling; VerifyCalls and
	// RefineCalls count logical calls and stay deterministic.
	FeatureMemoHits   int64
	FeatureMemoMisses int64
	// StatMergeNs / StatMerges measure the per-worker counter-shard
	// flushes: hot loops batch their deterministic counter deltas locally
	// and merge once per chunk, so these report how much wall time the
	// shared-counter synchronisation costs in total.
	StatMergeNs int64
	StatMerges  int64
	// OpTimeNs accumulates evaluation wall time per operator kind,
	// indexed by OpKind. Overlapping concurrent evaluations each count
	// their full duration, so the sum can exceed elapsed wall clock.
	OpTimeNs [numOpKinds]int64
}

// statAdd atomically bumps one stats counter; every Stats write in the
// engine goes through it because node evaluation may run on several
// goroutines at once.
func statAdd(p *int64, n int) { atomic.AddInt64(p, int64(n)) }

// statBatch is a worker-local shard of the deterministic call counters.
// Hot loops (filterTupleF odometers, similarity-join probes, constraint
// refinement) increment plain fields and flush once per chunk, replacing
// one atomic add per predicate call with one per counter per chunk — the
// contention fix for the parallel op-time inflation seen in PR 2's traces.
type statBatch struct {
	funcCalls   int64
	verifyCalls int64
	refineCalls int64
	memoHits    int64
	memoMisses  int64
}

// flush merges the shard into the shared Stats and times the merge
// (surfaced as stat_merge_seconds in snapshots). The batch is reset so a
// deferred flush composes with explicit mid-chunk flushes.
func (b *statBatch) flush(ctx *Context) {
	if *b == (statBatch{}) {
		return
	}
	start := time.Now()
	b.flushTo(&ctx.Stats)
	atomic.AddInt64(&ctx.Stats.StatMergeNs, int64(time.Since(start)))
	atomic.AddInt64(&ctx.Stats.StatMerges, 1)
}

// countMemo records one feature-memo lookup outcome.
func (b *statBatch) countMemo(hit bool) {
	if hit {
		b.memoHits++
	} else {
		b.memoMisses++
	}
}

// flushTo merges the shard into stats without merge-cost accounting (used
// by entry points that hold no Context).
func (b *statBatch) flushTo(stats *Stats) {
	if b.funcCalls != 0 {
		atomic.AddInt64(&stats.FuncCalls, b.funcCalls)
	}
	if b.verifyCalls != 0 {
		atomic.AddInt64(&stats.VerifyCalls, b.verifyCalls)
	}
	if b.refineCalls != 0 {
		atomic.AddInt64(&stats.RefineCalls, b.refineCalls)
	}
	if b.memoHits != 0 {
		atomic.AddInt64(&stats.FeatureMemoHits, b.memoHits)
	}
	if b.memoMisses != 0 {
		atomic.AddInt64(&stats.FeatureMemoMisses, b.memoMisses)
	}
	*b = statBatch{}
}

// NewContext returns a fresh context with an empty reuse cache.
func NewContext(env *Env) *Context {
	return &Context{
		Env:      env,
		Cache:    map[string]*compact.Table{},
		inflight: map[string]*inflightEval{},
		blockIdx: map[string]*blockIndex{},
	}
}

// SetDocFilter switches the context between full evaluation (nil) and
// subset evaluation, precomputing the subset cache-key marker once
// instead of per Eval call. Like writing DocFilter directly, it may only
// be called while no evaluations are in flight.
func (ctx *Context) SetDocFilter(filter map[string]bool) {
	ctx.DocFilter = filter
	if filter == nil {
		ctx.subsetMarker, ctx.subsetFor = "", 0
		return
	}
	ctx.subsetMarker = subsetMarkerFor(filter)
	ctx.subsetFor = reflect.ValueOf(filter).Pointer()
}

// subsetMarkerFor renders the sorted-ID marker that prefixes subset-mode
// cache keys, so subset and full evaluations never alias and different
// subsets never share results.
func subsetMarkerFor(filter map[string]bool) string {
	ids := make([]string, 0, len(filter))
	total := 0
	for id, ok := range filter {
		if ok {
			ids = append(ids, id)
			total += len(id) + 1
		}
	}
	sort.Strings(ids)
	var b strings.Builder
	b.Grow(len("subset") + total)
	b.WriteString("subset")
	for _, id := range ids {
		b.WriteByte(':')
		b.WriteString(id)
	}
	return b.String()
}

// cacheKey augments a node signature with the subset marker so subset and
// full evaluations never alias. The marker is memoised by SetDocFilter;
// a DocFilter assigned directly to the field (bypassing SetDocFilter) is
// detected by map identity and re-sorted per call.
func (ctx *Context) cacheKey(sig string) string {
	if ctx.DocFilter == nil {
		return "full|" + sig
	}
	marker := ctx.subsetMarker
	if ctx.subsetFor != reflect.ValueOf(ctx.DocFilter).Pointer() {
		marker = subsetMarkerFor(ctx.DocFilter)
	}
	return marker + "|" + sig
}

// Node is one operator of a compiled plan. Nodes are immutable after
// construction; evaluation is memoised through the context cache.
type Node interface {
	// Signature is a canonical rendering of the subtree, the reuse key.
	Signature() string
	// Columns names the variables bound by this node's output table.
	Columns() []string
	// Children returns the node's input operators.
	Children() []Node
	// eval computes the node's output table (uncached). ev receives
	// per-evaluation trace attribution (valuation-limit fallbacks) and
	// may be nil when tracing is off.
	eval(ctx *Context, ev *EvalTrace) (*compact.Table, error)
}

// SumAssignments evaluates every node of the plan (through the cache) and
// totals the assignments across all intermediate and final tables — the
// "number of assignments produced by the extraction process" that the
// convergence monitor tracks alongside the result size (Section 5.1).
func SumAssignments(ctx *Context, root Node) (int, error) {
	total := 0
	seen := map[string]bool{}
	var walk func(n Node) error
	walk = func(n Node) error {
		if seen[n.Signature()] {
			return nil
		}
		seen[n.Signature()] = true
		for _, c := range n.Children() {
			if err := walk(c); err != nil {
				return err
			}
		}
		t, err := Eval(ctx, n)
		if err != nil {
			return err
		}
		total += t.NumAssignments()
		return nil
	}
	if err := walk(root); err != nil {
		return 0, err
	}
	return total, nil
}

// Eval evaluates a node through the context's reuse cache with
// single-flight deduplication: the first goroutine to request a signature
// evaluates it; concurrent requesters for the same key block until it
// finishes and share the result (counted as cache hits). Failed
// evaluations are not cached, so a later request retries.
//
// If the node's evaluation panics, the in-flight entry is removed and its
// done channel closed before the panic propagates, so concurrent waiters
// unblock with an error instead of deadlocking and a later request for
// the same key evaluates afresh.
func Eval(ctx *Context, n Node) (*compact.Table, error) {
	key := ctx.cacheKey(n.Signature())
	trace := ctx.trace.Load()
	ctx.mu.Lock()
	if t, ok := ctx.Cache[key]; ok {
		ctx.mu.Unlock()
		statAdd(&ctx.Stats.CacheHits, 1)
		if trace != nil {
			trace.push(TraceRecord{Op: opName(n), Signature: n.Signature(), Key: key, Status: StatusHit})
		}
		return t, nil
	}
	if ctx.inflight == nil {
		ctx.inflight = map[string]*inflightEval{}
	}
	if c, ok := ctx.inflight[key]; ok {
		ctx.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, c.err
		}
		statAdd(&ctx.Stats.CacheHits, 1)
		if trace != nil {
			trace.push(TraceRecord{Op: opName(n), Signature: n.Signature(), Key: key, Status: StatusWait})
		}
		return c.table, nil
	}
	c := &inflightEval{done: make(chan struct{})}
	ctx.inflight[key] = c
	ctx.mu.Unlock()

	statAdd(&ctx.Stats.NodesEvaluated, 1)
	var ev *EvalTrace
	if trace != nil {
		ev = &EvalTrace{}
	}
	finished := false
	start := time.Now()
	defer func() {
		if finished {
			return
		}
		// n.eval panicked (or exited the goroutine): unblock waiters with
		// an error, leave the key uncached and un-poisoned, then let the
		// panic continue.
		r := recover()
		c.err = fmt.Errorf("engine: panic evaluating %s: %v", n.Signature(), r)
		ctx.mu.Lock()
		delete(ctx.inflight, key)
		ctx.mu.Unlock()
		close(c.done)
		if r != nil {
			panic(r)
		}
	}()
	t, err := n.eval(ctx, ev)
	finished = true
	wall := time.Since(start)
	atomic.AddInt64(&ctx.Stats.OpTimeNs[kindOf(n)], int64(wall))
	c.table, c.err = t, err

	ctx.mu.Lock()
	if err == nil {
		statAdd(&ctx.Stats.TuplesBuilt, len(t.Tuples))
		ctx.Cache[key] = t
	}
	delete(ctx.inflight, key)
	ctx.mu.Unlock()
	close(c.done)
	if trace != nil {
		rec := TraceRecord{
			Op: opName(n), Signature: n.Signature(), Key: key,
			Status: StatusMiss, Wall: wall, Goroutine: goid(),
			Fallbacks: ev.fallbacks.Load(),
		}
		if err == nil {
			rec.Tuples = len(t.Tuples)
			rec.Expanded = t.NumExpandedTuples()
			rec.Assignments = t.NumAssignments()
		}
		trace.push(rec)
	}
	return t, err
}

// colIndex locates a column by name or panics; internal nodes are built by
// the compiler, which guarantees the column exists.
func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("engine: internal error: column %q missing from %v", name, cols))
}
