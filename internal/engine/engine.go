// Package engine implements iFlex's approximate query processor
// (Section 4): it compiles an Alog program into a plan over compact
// tables and evaluates it with superset semantics — the computed set of
// possible relations always includes every relation the program defines.
//
// Plans are trees of materialising operators; every node carries a
// canonical signature, and evaluation memoises node results in the
// Context's cache. That cache is the paper's *reuse* optimisation
// (Section 5.2): refining a program changes signatures only above the
// touched operator, so unchanged subtrees are reused verbatim across
// iterations. *Subset evaluation* is the Context's DocFilter: scans drop
// documents outside the sampled subset.
package engine

import (
	"fmt"
	"sort"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/feature"
	"iflex/internal/similarity"
	"iflex/internal/text"
)

// Limits bound the work done per compact tuple when enumerating possible
// values; beyond them operators fall back to conservative (superset-safe)
// behaviour: keep the tuple, mark it maybe, skip precise filtering.
type Limits struct {
	// MaxCellValues caps value enumeration per cell.
	MaxCellValues int
	// MaxValuations caps the number of value combinations per tuple.
	MaxValuations int
}

// DefaultLimits balance precision against work: cells pinned by a few
// constraints enumerate fully, while unconstrained whole-document cells
// fall back to the conservative keep-as-maybe path instead of enumerating
// quadratically many sub-span valuations.
func DefaultLimits() Limits {
	return Limits{MaxCellValues: 512, MaxValuations: 1024}
}

// Func is a boolean p-function (e.g. approxMatch, similar): it receives
// one concrete value span per argument.
type Func func(args []text.Span) (bool, error)

// Procedure is a procedural p-predicate ("cleanup procedure",
// Section 2.2.4). Its first rule argument is the input span; Outputs is
// the number of remaining (output) arguments; Fn maps an input value to
// the set of output tuples.
type Procedure struct {
	Outputs int
	Fn      func(input text.Span) ([][]text.Span, error)
}

// Env binds a program to its runtime: extensional tables, p-functions,
// procedures, and the feature registry.
type Env struct {
	Tables   map[string]*compact.Table
	Funcs    map[string]Func
	Procs    map[string]Procedure
	Features *feature.Registry
	Limits   Limits
	// Blockable names p-functions that guarantee matching values share at
	// least one token, enabling the fused token-blocked similarity join.
	Blockable map[string]bool
	// TokenSimilar optionally provides a token-slice implementation of a
	// blockable p-function; the fused join uses it to compare pinned
	// (single-value) cells without re-tokenising every pair.
	TokenSimilar map[string]func(a, b []string) bool
}

// NewEnv returns an Env with the built-in feature registry, default
// limits, and the default p-functions similar and approxMatch.
func NewEnv() *Env {
	e := &Env{
		Tables:   map[string]*compact.Table{},
		Funcs:    map[string]Func{},
		Procs:    map[string]Procedure{},
		Features: feature.NewRegistry(),
		Limits:   DefaultLimits(),
	}
	sim := func(args []text.Span) (bool, error) {
		if len(args) != 2 {
			return false, fmt.Errorf("engine: similar expects 2 arguments, got %d", len(args))
		}
		return similarity.Similar(args[0].NormText(), args[1].NormText()), nil
	}
	e.Funcs["similar"] = sim
	e.Funcs["approxMatch"] = sim
	e.Blockable = map[string]bool{"similar": true, "approxMatch": true}
	e.TokenSimilar = map[string]func(a, b []string) bool{
		"similar":     similarity.SimilarTokens,
		"approxMatch": similarity.SimilarTokens,
	}
	return e
}

// AddDocTable registers an extensional single-column table of documents
// under the given predicate name, one tuple per document (e.g.
// housePages(x)). Cells hold exact(whole-document) assignments, per the
// conversion rule of Section 4.
func (e *Env) AddDocTable(pred, col string, docs []*text.Document) {
	t := compact.NewTable(col)
	for _, d := range docs {
		t.Append(compact.Tuple{Cells: []compact.Cell{compact.ExactCell(d.WholeSpan())}})
	}
	e.Tables[pred] = t
}

// Schema derives the alog.Schema view of this environment.
func (e *Env) Schema() *alog.Schema {
	s := &alog.Schema{
		Extensional: map[string][]string{},
		Functions:   map[string]bool{},
		Procedures:  map[string]bool{},
	}
	for name, t := range e.Tables {
		s.Extensional[name] = t.Cols
	}
	for name := range e.Funcs {
		s.Functions[name] = true
	}
	for name := range e.Procs {
		s.Procedures[name] = true
	}
	return s
}

// Context carries per-execution state: the environment, the reuse cache,
// and the optional document subset.
type Context struct {
	Env *Env
	// Cache memoises node results by signature; share one Context across
	// iterations to get the paper's reuse behaviour.
	Cache map[string]*compact.Table
	// DocFilter, when non-nil, restricts scans to documents whose ID it
	// maps to true (subset evaluation, Section 5.2).
	DocFilter map[string]bool
	// Stats accumulates evaluation counters.
	Stats Stats
	// blockIdx caches similarity-join blocking indexes per (subset, node,
	// variable); trial executions during question simulation share the
	// unchanged side's index instead of re-tokenising it.
	blockIdx map[string]*blockIndex
}

// Stats counts evaluation work, exposed for the experiments and benches.
type Stats struct {
	NodesEvaluated int
	CacheHits      int
	TuplesBuilt    int
	ProcCalls      int
	FuncCalls      int
	VerifyCalls    int
	RefineCalls    int
}

// NewContext returns a fresh context with an empty reuse cache.
func NewContext(env *Env) *Context {
	return &Context{
		Env:      env,
		Cache:    map[string]*compact.Table{},
		blockIdx: map[string]*blockIndex{},
	}
}

// cacheKey augments a node signature with the subset marker so subset and
// full evaluations never alias.
func (ctx *Context) cacheKey(sig string) string {
	if ctx.DocFilter == nil {
		return "full|" + sig
	}
	ids := make([]string, 0, len(ctx.DocFilter))
	for id, ok := range ctx.DocFilter {
		if ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	key := "subset"
	for _, id := range ids {
		key += ":" + id
	}
	return key + "|" + sig
}

// Node is one operator of a compiled plan. Nodes are immutable after
// construction; evaluation is memoised through the context cache.
type Node interface {
	// Signature is a canonical rendering of the subtree, the reuse key.
	Signature() string
	// Columns names the variables bound by this node's output table.
	Columns() []string
	// Children returns the node's input operators.
	Children() []Node
	// eval computes the node's output table (uncached).
	eval(ctx *Context) (*compact.Table, error)
}

// SumAssignments evaluates every node of the plan (through the cache) and
// totals the assignments across all intermediate and final tables — the
// "number of assignments produced by the extraction process" that the
// convergence monitor tracks alongside the result size (Section 5.1).
func SumAssignments(ctx *Context, root Node) (int, error) {
	total := 0
	seen := map[string]bool{}
	var walk func(n Node) error
	walk = func(n Node) error {
		if seen[n.Signature()] {
			return nil
		}
		seen[n.Signature()] = true
		for _, c := range n.Children() {
			if err := walk(c); err != nil {
				return err
			}
		}
		t, err := Eval(ctx, n)
		if err != nil {
			return err
		}
		total += t.NumAssignments()
		return nil
	}
	if err := walk(root); err != nil {
		return 0, err
	}
	return total, nil
}

// Eval evaluates a node through the context's reuse cache.
func Eval(ctx *Context, n Node) (*compact.Table, error) {
	key := ctx.cacheKey(n.Signature())
	if t, ok := ctx.Cache[key]; ok {
		ctx.Stats.CacheHits++
		return t, nil
	}
	ctx.Stats.NodesEvaluated++
	t, err := n.eval(ctx)
	if err != nil {
		return nil, err
	}
	ctx.Stats.TuplesBuilt += len(t.Tuples)
	ctx.Cache[key] = t
	return t, nil
}

// colIndex locates a column by name or panics; internal nodes are built by
// the compiler, which guarantees the column exists.
func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("engine: internal error: column %q missing from %v", name, cols))
}
