package engine

import (
	"strings"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/markup"
	"iflex/internal/text"
)

// Documents modelled on Figure 1.b of the paper.
func houseDocs() []*text.Document {
	x1 := markup.MustParse("x1", `Cozy house on quiet street.<br>
5146 Windsor Ave., Champaign<br>
Sqft: 2750<br>
Price: 351000<br>
High school: Vanhise High`)
	x2 := markup.MustParse("x2", `Amazing house in great location.<br>
3112 Stonecreek Blvd., Cherry Hills<br>
Sqft: 4700<br>
Price: 619000<br>
High school: Basktall HS`)
	return []*text.Document{x1, x2}
}

func schoolDocs() []*text.Document {
	y1 := markup.MustParse("y1", `<title>Top High Schools and Location (page 1)</title>
<ul><li><b>Basktall</b>, Cherry Hills</li>
<li><b>Franklin</b>, Robeson</li>
<li><b>Vanhise</b>, Champaign</li></ul>`)
	y2 := markup.MustParse("y2", `<title>Top High Schools and Location (page 2)</title>
<ul><li><b>Hoover</b>, Akron</li>
<li><b>Ossage</b>, Lynneville</li></ul>`)
	return []*text.Document{y1, y2}
}

func figure2Env() *Env {
	env := NewEnv()
	env.AddDocTable("housePages", "x", houseDocs())
	env.AddDocTable("schoolPages", "y", schoolDocs())
	return env
}

const figure2Src = `
houses(x, <p>, <a>, <h>) :- housePages(x), extractHouses(x, p, a, h).
schools(s)? :- schoolPages(y), extractSchools(y, s).
Q(x, p, a, h) :- houses(x, p, a, h), schools(s), p > 500000, a > 4500,
                 approxMatch(h, s).
extractHouses(x, p, a, h) :- from(x, p), from(x, a), from(x, h),
                             numeric(p) = yes, numeric(a) = yes.
extractSchools(y, s) :- from(y, s), bold-font(s) = yes.
`

func TestFigure2EndToEnd(t *testing.T) {
	env := figure2Env()
	prog := alog.MustParse(figure2Src)
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 4 {
		t.Fatalf("columns = %v", res.Cols)
	}
	// Only x2 has a numeric value above 500000 and one above 4500.
	if len(res.Tuples) != 1 {
		t.Fatalf("result:\n%s", res)
	}
	tp := res.Tuples[0]
	if !tp.Maybe {
		t.Error("result tuple should be maybe (uncertain values + maybe school)")
	}
	if doc, ok := tp.Cells[0].Singleton(); !ok || doc.Doc().ID() != "x2" {
		t.Errorf("x cell = %v", tp.Cells[0])
	}
	d := houseDocs()[1] // fresh doc with same content; compare by text
	_ = d
	foundPrice := false
	tp.Cells[1].Values(func(s text.Span) bool {
		if s.NormText() == "619000" {
			foundPrice = true
			return false
		}
		return true
	})
	if !foundPrice {
		t.Errorf("price cell misses 619000: %v", tp.Cells[1])
	}
}

// Refining the program with more constraints must shrink the result toward
// the precise answer (the iFlex iteration loop of Section 2.2.4).
func TestFigure2Refined(t *testing.T) {
	env := figure2Env()
	prog := alog.MustParse(figure2Src)
	if err := prog.AddConstraint(alog.AttrRef{Pred: "extractHouses", Var: "p"}, "preceded-by", "Price:"); err != nil {
		t.Fatal(err)
	}
	if err := prog.AddConstraint(alog.AttrRef{Pred: "extractHouses", Var: "a"}, "preceded-by", "Sqft:"); err != nil {
		t.Fatal(err)
	}
	if err := prog.AddConstraint(alog.AttrRef{Pred: "extractHouses", Var: "h"}, "preceded-by", "High school:"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("result:\n%s", res)
	}
	tp := res.Tuples[0]
	p, okP := tp.Cells[1].Singleton()
	a, okA := tp.Cells[2].Singleton()
	if !okP || p.NormText() != "619000" {
		t.Errorf("p = %v", tp.Cells[1])
	}
	if !okA || a.NormText() != "4700" {
		t.Errorf("a = %v", tp.Cells[2])
	}
	// preceded-by narrows h to the label-to-line-end region; contain of a
	// two-token region still encodes 3 values, all within "Basktall HS".
	hCell := tp.Cells[3]
	if !hCell.CoversTextValue("Basktall HS") || hCell.NumValues() > 3 {
		t.Errorf("h = %v", hCell)
	}
}

// The schools sub-plan alone: with bold-font(s)=yes and an existence
// annotation, the result is one expansion tuple per page over the bold
// regions, all maybe.
func TestSchoolsFragment(t *testing.T) {
	env := figure2Env()
	prog := alog.MustParse(`
schools(s)? :- schoolPages(y), extractSchools(y, s).
extractSchools(y, s) :- from(y, s), bold-font(s) = yes.
`)
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 { // one compact tuple per page
		t.Fatalf("result:\n%s", res)
	}
	total := 0
	for _, tp := range res.Tuples {
		if !tp.Maybe {
			t.Error("existence annotation must mark tuples maybe")
		}
		if !tp.Cells[0].Expand {
			t.Error("school cell should still be an expansion cell")
		}
		total += tp.NumExpanded()
	}
	// Bold regions are single tokens: Basktall, Franklin, Vanhise, Hoover, Ossage.
	if total != 5 {
		t.Errorf("expanded school tuples = %d, want 5", total)
	}
}

// Figure 5 of the paper: BAnnotate over the Alice/Bob/Carol/Dave a-table.
func TestFigure5BAnnotate(t *testing.T) {
	d := markup.MustParse("d", "Alice Bob Carol Dave 5 6 7 8 9")
	sp := func(sub string) text.Span {
		i := strings.Index(d.Text(), sub)
		return d.Span(i, i+len(sub))
	}
	in := compact.NewATable("name", "age")
	in.Tuples = []compact.ATuple{
		{Cells: []compact.ACell{{sp("Alice"), sp("Bob")}, {sp("5")}}},
		{Cells: []compact.ACell{{sp("Alice"), sp("Carol")}, {sp("6"), sp("7")}}},
		{Cells: []compact.ACell{{sp("Dave")}, {sp("8"), sp("9")}}},
	}
	out := BAnnotate(in, []string{"age"})
	if len(out.Tuples) != 4 {
		t.Fatalf("output:\n%s", out)
	}
	byName := map[string]compact.ATuple{}
	for _, tp := range out.Tuples {
		byName[tp.Cells[0][0].NormText()] = tp
	}
	check := func(name string, ages []string, maybe bool) {
		t.Helper()
		tp, ok := byName[name]
		if !ok {
			t.Fatalf("missing tuple for %s", name)
		}
		if tp.Maybe != maybe {
			t.Errorf("%s maybe = %v, want %v", name, tp.Maybe, maybe)
		}
		if len(tp.Cells[1]) != len(ages) {
			t.Errorf("%s ages = %v, want %v", name, tp.Cells[1], ages)
			return
		}
		for i, a := range ages {
			if tp.Cells[1][i].NormText() != a {
				t.Errorf("%s age %d = %s, want %s", name, i, tp.Cells[1][i].NormText(), a)
			}
		}
	}
	// Exactly the table of Figure 5.b.
	check("Alice", []string{"5", "6", "7"}, true)
	check("Bob", []string{"5"}, true)
	check("Carol", []string{"6", "7"}, true)
	check("Dave", []string{"8", "9"}, false)
}

// cAnnotate must agree with the reference BAnnotate when inputs have exact
// singleton keys.
func TestCAnnotateMatchesBAnnotate(t *testing.T) {
	env := figure2Env()
	prog := alog.MustParse(`
houses(x, <p>) :- housePages(x), extractP(x, p).
extractP(x, p) :- from(x, p), numeric(p) = yes.
`)
	plan, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Execute(NewContext(env))
	if err != nil {
		t.Fatal(err)
	}
	// Reference: run the un-annotated program and push through BAnnotate.
	prog2 := alog.MustParse(`
houses(x, p) :- housePages(x), extractP(x, p).
extractP(x, p) :- from(x, p), numeric(p) = yes.
`)
	raw, err := Run(prog2, env)
	if err != nil {
		t.Fatal(err)
	}
	want := BAnnotate(raw.ToATable(), []string{"p"})
	gotA := got.ToATable()
	if len(gotA.Tuples) != len(want.Tuples) {
		t.Fatalf("cAnnotate: %d tuples, BAnnotate: %d\ngot:\n%s\nwant:\n%s",
			len(gotA.Tuples), len(want.Tuples), gotA, want)
	}
	worldsGot, err := gotA.Worlds(100000)
	if err != nil {
		t.Fatal(err)
	}
	worldsWant, err := want.Worlds(100000)
	if err != nil {
		t.Fatal(err)
	}
	if !compact.IsSupersetOf(worldsGot, worldsWant) || !compact.IsSupersetOf(worldsWant, worldsGot) {
		t.Error("cAnnotate and BAnnotate represent different sets of relations")
	}
}

// Superset semantics: the engine's set of possible relations must include
// the precise relation set (annotated grouping, one value per doc).
func TestSupersetSemanticsAnnotated(t *testing.T) {
	env := NewEnv()
	d1 := markup.MustParse("d1", "a 10 b 20")
	d2 := markup.MustParse("d2", "c 30")
	env.AddDocTable("pages", "x", []*text.Document{d1, d2})
	prog := alog.MustParse(`
T(x, <v>) :- pages(x), ext(x, v).
ext(x, v) :- from(x, v), numeric(v) = yes.
`)
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	worlds, err := res.ToATable().Worlds(100000)
	if err != nil {
		t.Fatal(err)
	}
	// True possible relations: {(d1, v1), (d2, 30)} for v1 in {10, 20}.
	d1Text := d1.WholeSpan().NormText()
	d2Text := d2.WholeSpan().NormText()
	for _, v1 := range []string{"10", "20"} {
		w := compact.World{{d1Text, v1}, {d2Text, "30"}}.Canonical()
		if !worlds[w] {
			t.Errorf("true world missing: %q", w)
		}
	}
}

func TestComparisonOperatorsOverCells(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "values: 10 20 30")
	env.AddDocTable("pages", "x", []*text.Document{d})
	run := func(src string) *compact.Table {
		t.Helper()
		res, err := Run(alog.MustParse(src), env)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := `ext(x, v) :- from(x, v), numeric(v) = yes.
`
	// v > 25 keeps the tuple (30 qualifies) as maybe.
	res := run(`T(x, v) :- pages(x), ext(x, v), v > 25.` + "\n" + base)
	if len(res.Tuples) != 1 || !res.Tuples[0].Maybe {
		t.Fatalf("v>25: %s", res)
	}
	// v > 50 eliminates everything.
	res = run(`T(x, v) :- pages(x), ext(x, v), v > 50.` + "\n" + base)
	if len(res.Tuples) != 0 {
		t.Fatalf("v>50: %s", res)
	}
	// v >= 10 holds for every value: tuple must stay non-maybe.
	res = run(`T(x, v) :- pages(x), ext(x, v), v >= 10.` + "\n" + base)
	if len(res.Tuples) != 1 || res.Tuples[0].Maybe {
		t.Fatalf("v>=10: %s", res)
	}
}

func TestExpansionCellFiltering(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "10 enormous 20 tiny 30")
	env.AddDocTable("pages", "x", []*text.Document{d})
	// No annotation: v stays an expansion cell; the comparison must filter
	// its values down to {30}.
	prog := alog.MustParse(`
T(x, v) :- pages(x), ext(x, v), v > 25.
ext(x, v) :- from(x, v), numeric(v) = yes.
`)
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("result:\n%s", res)
	}
	cell := res.Tuples[0].Cells[1]
	if !cell.Expand {
		t.Fatal("v should remain an expansion cell")
	}
	if cell.NumValues() != 1 || !cell.CoversTextValue("30") {
		t.Fatalf("filtered cell = %v", cell)
	}
}

func TestNaturalJoinOnSharedVariable(t *testing.T) {
	env := NewEnv()
	d1 := markup.MustParse("d1", "alpha 1")
	d2 := markup.MustParse("d2", "beta 2")
	env.AddDocTable("pages", "x", []*text.Document{d1, d2})
	env.AddDocTable("rich", "x", []*text.Document{d2})
	prog := alog.MustParse(`Q(x) :- pages(x), rich(x).`)
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("natural join result:\n%s", res)
	}
	if s, _ := res.Tuples[0].Cells[0].Singleton(); s.Doc().ID() != "d2" {
		t.Errorf("joined doc = %v", s)
	}
}

func TestProcedureNode(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "names: alice bob carol")
	env.AddDocTable("pages", "x", []*text.Document{d})
	// lastToken(x, v): emits the last token of its input.
	env.Procs["lastToken"] = Procedure{
		Outputs: 1,
		Fn: func(in text.Span) ([][]text.Span, error) {
			sh, ok := in.Shrink()
			if !ok {
				return nil, nil
			}
			n := sh.NumTokens()
			return [][]text.Span{{sh.TokenSpan(n-1, n)}}, nil
		},
	}
	prog := alog.MustParse(`Q(x, v) :- pages(x), lastToken(x, v).`)
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("result:\n%s", res)
	}
	if v, ok := res.Tuples[0].Cells[1].Singleton(); !ok || v.Text() != "carol" {
		t.Errorf("v = %v", res.Tuples[0].Cells[1])
	}
	if res.Tuples[0].Maybe {
		t.Error("single-valuation procedure output must not be maybe")
	}
}

func TestReuseCacheAcrossIterations(t *testing.T) {
	env := figure2Env()
	prog := alog.MustParse(figure2Src)
	ctx := NewContext(env)
	plan1, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan1.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	evaluated := ctx.Stats.NodesEvaluated
	if ctx.Stats.CacheHits != 0 && evaluated == 0 {
		t.Fatal("first run should evaluate nodes")
	}
	// Refine only the school attribute; the houses subtree must be reused.
	prog2 := prog.Clone()
	if err := prog2.AddConstraint(alog.AttrRef{Pred: "extractSchools", Var: "s"}, "in-list", "yes"); err != nil {
		t.Fatal(err)
	}
	plan2, err := Compile(prog2, env)
	if err != nil {
		t.Fatal(err)
	}
	before := ctx.Stats.CacheHits
	if _, err := plan2.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.CacheHits <= before {
		t.Error("second iteration should reuse cached subtrees")
	}
	// The scan + houses fragment signatures are unchanged: their cached
	// results must be present under the same keys.
	if ctx.Stats.NodesEvaluated >= 2*evaluated {
		t.Errorf("reuse ineffective: %d nodes evaluated after refinement (first run: %d)",
			ctx.Stats.NodesEvaluated-evaluated, evaluated)
	}
}

func TestSubsetEvaluation(t *testing.T) {
	env := figure2Env()
	prog := alog.MustParse(`
T(x, p) :- housePages(x), extractP(x, p).
extractP(x, p) :- from(x, p), numeric(p) = yes.
`)
	plan, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.DocFilter = map[string]bool{"x1": true}
	res, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("subset result:\n%s", res)
	}
	// Full evaluation through the same context must not alias the subset
	// cache entry.
	ctx.DocFilter = nil
	res, err = plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("full result after subset:\n%s", res)
	}
}

func TestUnionOfRules(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "10 <b>bold</b> rest")
	env.AddDocTable("pages", "x", []*text.Document{d})
	prog := alog.MustParse(`
T(x, v) :- pages(x), ext(x, v).
ext(x, v) :- from(x, v), numeric(v) = yes.
ext(x, v) :- from(x, v), bold-font(v) = yes.
`)
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("union result:\n%s", res)
	}
}

func TestCompileErrors(t *testing.T) {
	env := NewEnv()
	env.AddDocTable("pages", "x", []*text.Document{markup.MustParse("d", "hi")})
	cases := []string{
		`Q(x) :- missing(x).`,                       // unknown predicate
		`Q(x, v) :- pages(x), ext(x, v).`,           // IE pred without description
		`Q(x) :- pages(x), nosuchfeature(x) = yes.`, // unknown feature
	}
	for _, src := range cases {
		if _, err := Compile(alog.MustParse(src), env); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestRecursionRejected(t *testing.T) {
	env := NewEnv()
	env.AddDocTable("pages", "x", []*text.Document{markup.MustParse("d", "hi")})
	prog := alog.MustParse(`
a(x) :- b(x).
b(x) :- a(x).
Q(x) :- pages(x), a(x).
`)
	if _, err := Compile(prog, env); err == nil {
		t.Fatal("recursive program should be rejected")
	}
}

func TestNullComparison(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "alpha beta")
	env.AddDocTable("pages", "x", []*text.Document{d})
	// A procedure that returns an empty span (NULL) for one doc.
	env.Procs["maybeNull"] = Procedure{
		Outputs: 1,
		Fn: func(in text.Span) ([][]text.Span, error) {
			return [][]text.Span{{in.Doc().Span(0, 0)}}, nil
		},
	}
	prog := alog.MustParse(`Q(x, v) :- pages(x), maybeNull(x, v), v != NULL.`)
	res, err := Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatalf("NULL values must not satisfy v != NULL:\n%s", res)
	}
	prog = alog.MustParse(`Q(x, v) :- pages(x), maybeNull(x, v), v = NULL.`)
	res, err = Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("v = NULL should match:\n%s", res)
	}
}

func TestStatsAccumulate(t *testing.T) {
	env := figure2Env()
	prog := alog.MustParse(figure2Src)
	ctx := NewContext(env)
	plan, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.RefineCalls == 0 || ctx.Stats.FuncCalls == 0 {
		t.Errorf("stats not collected: %+v", ctx.Stats)
	}
}

func TestSumAssignments(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	total, err := SumAssignments(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	final, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if total <= final.NumAssignments() {
		t.Errorf("whole-plan assignments (%d) must exceed final table's (%d)",
			total, final.NumAssignments())
	}
	// Refining the program perturbs the whole-plan total even when the
	// final projection is unchanged — the convergence monitor's signal.
	prog2 := alog.MustParse(figure2Src)
	if err := prog2.AddConstraint(alog.AttrRef{Pred: "extractSchools", Var: "s"}, "in-list", "yes"); err != nil {
		t.Fatal(err)
	}
	plan2, err := Compile(prog2, env)
	if err != nil {
		t.Fatal(err)
	}
	total2, err := SumAssignments(ctx, plan2.Root)
	if err != nil {
		t.Fatal(err)
	}
	if total2 == total {
		t.Error("refinement did not perturb the assignment total")
	}
}
