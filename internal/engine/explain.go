package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// opName returns a short operator label for plan rendering, mirroring the
// operator vocabulary of Figure 4 (σ for selections, × for joins, ψ for
// the annotation operator).
func opName(n Node) string {
	switch t := n.(type) {
	case *scanNode:
		return fmt.Sprintf("scan %s", t.pred)
	case *fromNode:
		return fmt.Sprintf("from(%s → %s)", t.inVar, t.outVar)
	case *constraintNode:
		return fmt.Sprintf("σ[%s]", t.cons)
	case *compareNode:
		return fmt.Sprintf("σ[%s]", t.cmp)
	case *funcNode:
		return fmt.Sprintf("σ[%s(...)]", t.fname)
	case *crossNode:
		if len(t.shared) > 0 {
			return fmt.Sprintf("⋈[%s]", strings.Join(t.shared, ","))
		}
		return "×"
	case *simJoinNode:
		return fmt.Sprintf("⋈~[%s(%s,%s)]", t.fname, t.leftVar, t.rightVar)
	case *unionNode:
		return "∪"
	case *projectNode:
		return fmt.Sprintf("π[%s]", strings.Join(t.outCols, ","))
	case *annotateNode:
		parts := []string{}
		if t.exists {
			parts = append(parts, "?")
		}
		for _, a := range t.annotate {
			parts = append(parts, "<"+a+">")
		}
		return fmt.Sprintf("ψ[%s]", strings.Join(parts, " "))
	case *procNode:
		return fmt.Sprintf("proc %s", t.pname)
	default:
		return n.Signature()
	}
}

// PlanString renders the plan tree with indentation, one operator per
// line — the textual equivalent of the paper's Figure 4.c execution plan.
func PlanString(root Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		fmt.Fprintf(&b, "%s%s  (%s)\n", strings.Repeat("  ", depth), opName(n), strings.Join(n.Columns(), ","))
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// String renders the whole plan (see PlanString).
func (p *Plan) String() string { return PlanString(p.Root) }

// CountNodes returns how many operators the plan tree contains (shared
// subtrees counted once per occurrence).
func CountNodes(root Node) int {
	n := 1
	for _, c := range root.Children() {
		n += CountNodes(c)
	}
	return n
}

// Explain renders an EXPLAIN ANALYZE-style tree for the plan: one line
// per operator with output sizes, evaluation wall time, reuse-cache
// status, valuation-limit fallbacks, the worker goroutine that evaluated
// it, and a prefix of the signature (the reuse key). Tracing is enabled
// on the context if it is not already on, and the plan is evaluated
// through the cache — after Execute that costs no recomputation. Nodes
// evaluated before tracing started show cache=hit with no timing.
//
// Worker ids are densified in tree order (w0, w1, ...), so runs are
// comparable even though the underlying goroutine ids differ; timing and
// worker attribution vary run to run, the counts do not.
func Explain(ctx *Context, root Node) (string, error) {
	return explainTree(ctx, root, nil)
}

// explainTree is Explain plus optimizer annotations: when opt is non-nil
// each operator line carries the cost model's estimate (est=~cost/rows)
// next to the measured actuals, lines rewritten by a rule are tagged
// with the rule name, and a footer lists every rule firing with its
// estimated cost before and after the rewrite.
func explainTree(ctx *Context, root Node, opt *OptInfo) (string, error) {
	if !ctx.Tracing() {
		ctx.StartTrace()
	}
	if _, err := Eval(ctx, root); err != nil {
		return "", err
	}
	byKey := map[string]OpStats{}
	for _, o := range ctx.TraceOps() {
		byKey[o.Key] = o
	}
	workers := map[int64]int{}
	var b strings.Builder
	var walk func(n Node, depth int) error
	walk = func(n Node, depth int) error {
		key := ctx.cacheKey(n.Signature())
		o, traced := byKey[key]
		rows, expanded, assigns := o.Tuples, o.Expanded, o.Assignments
		if !traced || o.Evals == 0 {
			// Evaluated before tracing started: sizes come from the cached
			// table itself.
			t, err := Eval(ctx, n)
			if err != nil {
				return err
			}
			rows, expanded, assigns = len(t.Tuples), t.NumExpandedTuples(), t.NumAssignments()
		}
		cache := "hit"
		wall := "-"
		worker := "-"
		if o.Evals > 0 {
			cache = "miss"
			wall = o.Wall.Round(time.Microsecond).String()
			id, ok := workers[o.Goroutine]
			if !ok {
				id = len(workers)
				workers[o.Goroutine] = id
			}
			worker = fmt.Sprintf("w%d", id)
		}
		if hits := o.Hits + o.Waits; hits > 0 {
			cache += fmt.Sprintf("+%dhit", hits)
		}
		extra := ""
		if o.Fallbacks > 0 {
			extra = fmt.Sprintf(" fallbacks=%d", o.Fallbacks)
		}
		if o.Reused > 0 {
			extra += fmt.Sprintf(" reused=%d", o.Reused)
		}
		if o.Quarantined > 0 {
			extra += fmt.Sprintf(" quarantined=%d", o.Quarantined)
		}
		if opt != nil {
			if est, ok := opt.Est[n.sigHash()]; ok {
				extra += " est=" + est.EstimateString()
			}
			for _, r := range opt.rulesFor(n.sigHash()) {
				extra += " «" + r + "»"
			}
		}
		sig := n.Signature()
		if len(sig) > 44 {
			sig = sig[:44] + "…"
		}
		fmt.Fprintf(&b, "%-36s %6d rows %8d exp %8d asg %10s  cache=%-9s %-3s%s  sig=%s\n",
			strings.Repeat("  ", depth)+opName(n), rows, expanded, assigns,
			wall, cache, worker, extra, sig)
		for _, c := range n.Children() {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 0); err != nil {
		return "", err
	}
	if opt != nil {
		fmt.Fprintf(&b, "optimizer: %s\n", opt.Summary())
		for _, f := range opt.Fired {
			fmt.Fprintf(&b, "  %s @ %s: est %s → %s — %s\n", f.Rule, f.Node,
				time.Duration(f.EstBeforeNs).Round(time.Microsecond),
				time.Duration(f.EstAfterNs).Round(time.Microsecond), f.Detail)
		}
	}
	// Hot-path footer: feature-memo effectiveness and what the batched
	// stat merging cost. Both are scheduling-dependent (unlike the counts
	// in the tree above) and meant for eyeballing, not diffing. Counters
	// are loaded atomically: Explain may run concurrently with evaluation.
	hits := atomic.LoadInt64(&ctx.Stats.FeatureMemoHits)
	misses := atomic.LoadInt64(&ctx.Stats.FeatureMemoMisses)
	if total := hits + misses; total > 0 {
		fmt.Fprintf(&b, "feature memo: %d/%d hits (%.1f%%)\n",
			hits, total, 100*float64(hits)/float64(total))
	}
	if merges := atomic.LoadInt64(&ctx.Stats.StatMerges); merges > 0 {
		fmt.Fprintf(&b, "stat merges: %d batches, %s total\n", merges,
			time.Duration(atomic.LoadInt64(&ctx.Stats.StatMergeNs)).Round(time.Microsecond))
	}
	if deltas := atomic.LoadInt64(&ctx.Stats.DeltaEvals); deltas > 0 {
		reused := atomic.LoadInt64(&ctx.Stats.TuplesReused)
		recomputed := atomic.LoadInt64(&ctx.Stats.TuplesRecomputed)
		rate := 0.0
		if total := reused + recomputed; total > 0 {
			rate = 100 * float64(reused) / float64(total)
		}
		fmt.Fprintf(&b, "delta evals: %d nodes, %d tuples reused / %d recomputed (%.1f%% reuse), %d tables adopted\n",
			deltas, reused, recomputed, rate,
			atomic.LoadInt64(&ctx.Stats.TablesAdopted))
	}
	bytes, entries := ctx.CacheInfo()
	fmt.Fprintf(&b, "reuse cache: %d entries, ~%d bytes", entries, bytes)
	if ev := atomic.LoadInt64(&ctx.Stats.CacheEvictions) + atomic.LoadInt64(&ctx.Stats.BlockIdxEvictions); ev > 0 {
		fmt.Fprintf(&b, ", %d evicted", ev)
	}
	b.WriteByte('\n')
	if q := ctx.quarantined(); q != nil {
		const maxShown = 8
		var ids []string
		for _, r := range q.records {
			if len(ids) == maxShown {
				ids = append(ids, "...")
				break
			}
			ids = append(ids, fmt.Sprintf("%s (%s: %s)", r.Doc, r.Op, r.Cause))
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "quarantine: %d docs, %d events, %d retries, %d restarts: %s\n",
			atomic.LoadInt64(&ctx.Stats.QuarantinedDocs),
			atomic.LoadInt64(&ctx.Stats.QuarantineEvents),
			atomic.LoadInt64(&ctx.Stats.QuarantineRetries),
			atomic.LoadInt64(&ctx.Stats.EvalRestarts),
			strings.Join(ids, "; "))
	}
	if rep := ctx.DegradedReport(); rep != nil && rep.DeadlineExpired {
		fmt.Fprintf(&b, "degraded: %s\n", rep.Summary())
	}
	return b.String(), nil
}

// AnalyzeString renders the plan with per-operator result sizes (tuples,
// expanded tuples, assignments) — an EXPLAIN ANALYZE for approximate
// plans. Nodes are evaluated through the context cache, so calling this
// after Execute costs no recomputation.
func AnalyzeString(ctx *Context, root Node) (string, error) {
	var b strings.Builder
	var walk func(n Node, depth int) error
	walk = func(n Node, depth int) error {
		t, err := Eval(ctx, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s%-40s %6d tuples %8d expanded %8d assigns\n",
			strings.Repeat("  ", depth), opName(n), len(t.Tuples),
			t.NumExpandedTuples(), t.NumAssignments())
		for _, c := range n.Children() {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 0); err != nil {
		return "", err
	}
	return b.String(), nil
}
