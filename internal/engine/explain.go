package engine

import (
	"fmt"
	"strings"
)

// opName returns a short operator label for plan rendering, mirroring the
// operator vocabulary of Figure 4 (σ for selections, × for joins, ψ for
// the annotation operator).
func opName(n Node) string {
	switch t := n.(type) {
	case *scanNode:
		return fmt.Sprintf("scan %s", t.pred)
	case *fromNode:
		return fmt.Sprintf("from(%s → %s)", t.inVar, t.outVar)
	case *constraintNode:
		return fmt.Sprintf("σ[%s]", t.cons)
	case *compareNode:
		return fmt.Sprintf("σ[%s]", t.cmp)
	case *funcNode:
		return fmt.Sprintf("σ[%s(...)]", t.fname)
	case *crossNode:
		if len(t.shared) > 0 {
			return fmt.Sprintf("⋈[%s]", strings.Join(t.shared, ","))
		}
		return "×"
	case *simJoinNode:
		return fmt.Sprintf("⋈~[%s(%s,%s)]", t.fname, t.leftVar, t.rightVar)
	case *unionNode:
		return "∪"
	case *projectNode:
		return fmt.Sprintf("π[%s]", strings.Join(t.outCols, ","))
	case *annotateNode:
		parts := []string{}
		if t.exists {
			parts = append(parts, "?")
		}
		for _, a := range t.annotate {
			parts = append(parts, "<"+a+">")
		}
		return fmt.Sprintf("ψ[%s]", strings.Join(parts, " "))
	case *procNode:
		return fmt.Sprintf("proc %s", t.pname)
	default:
		return n.Signature()
	}
}

// PlanString renders the plan tree with indentation, one operator per
// line — the textual equivalent of the paper's Figure 4.c execution plan.
func PlanString(root Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		fmt.Fprintf(&b, "%s%s  (%s)\n", strings.Repeat("  ", depth), opName(n), strings.Join(n.Columns(), ","))
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

// String renders the whole plan (see PlanString).
func (p *Plan) String() string { return PlanString(p.Root) }

// CountNodes returns how many operators the plan tree contains (shared
// subtrees counted once per occurrence).
func CountNodes(root Node) int {
	n := 1
	for _, c := range root.Children() {
		n += CountNodes(c)
	}
	return n
}

// AnalyzeString renders the plan with per-operator result sizes (tuples,
// expanded tuples, assignments) — an EXPLAIN ANALYZE for approximate
// plans. Nodes are evaluated through the context cache, so calling this
// after Execute costs no recomputation.
func AnalyzeString(ctx *Context, root Node) (string, error) {
	var b strings.Builder
	var walk func(n Node, depth int) error
	walk = func(n Node, depth int) error {
		t, err := Eval(ctx, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s%-40s %6d tuples %8d expanded %8d assigns\n",
			strings.Repeat("  ", depth), opName(n), len(t.Tuples),
			t.NumExpandedTuples(), t.NumAssignments())
		for _, c := range n.Children() {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 0); err != nil {
		return "", err
	}
	return b.String(), nil
}
