package engine

import (
	"strings"
	"testing"

	"iflex/internal/alog"
)

// Figure 4 of the paper: compiling the Figure 2 program must unfold the
// description rules, build one fragment per rule with the ψ annotation
// operator at its root, and stitch the fragments into one plan.
func TestFigure4CompileStructure(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	rendered := plan.String()

	// The plan reads both extensional tables...
	for _, want := range []string{"scan housePages", "scan schoolPages"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("plan missing %q:\n%s", want, rendered)
		}
	}
	// ...extracts with from and domain-constraint selections...
	if !strings.Contains(rendered, "from(") {
		t.Errorf("plan missing from operators:\n%s", rendered)
	}
	if !strings.Contains(rendered, `σ[numeric(p)="yes"]`) {
		t.Errorf("plan missing numeric constraint:\n%s", rendered)
	}
	if !strings.Contains(rendered, `σ[bold-font(s)="yes"]`) {
		t.Errorf("plan missing bold-font constraint:\n%s", rendered)
	}
	// ...applies ψ for both annotated rules (attribute + existence)...
	if !strings.Contains(rendered, "ψ[<a> <h> <p>]") {
		t.Errorf("plan missing attribute ψ:\n%s", rendered)
	}
	if !strings.Contains(rendered, "ψ[?]") {
		t.Errorf("plan missing existence ψ:\n%s", rendered)
	}
	// ...and evaluates the comparisons and the p-function join.
	if !strings.Contains(rendered, "σ[p > 500000]") || !strings.Contains(rendered, "σ[a > 4500]") {
		t.Errorf("plan missing comparisons:\n%s", rendered)
	}
	if !strings.Contains(rendered, "approxMatch") {
		t.Errorf("plan missing approxMatch:\n%s", rendered)
	}
}

// The annotation operator must sit at the root of its rule's fragment:
// above the projection to the rule head (Section 4: "append an annotation
// operator ψ to the root of h").
func TestFigure4AnnotationAtFragmentRoot(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(`
houses(x, <p>) :- housePages(x), extractP(x, p).
extractP(x, p) :- from(x, p), numeric(p) = yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	ann, ok := plan.Root.(*annotateNode)
	if !ok {
		t.Fatalf("root is %T, want *annotateNode:\n%s", plan.Root, plan)
	}
	if _, ok := ann.parent.(*projectNode); !ok {
		t.Fatalf("ψ's child is %T, want projection:\n%s", ann.parent, plan)
	}
}

// The similarity join must compile to the fused token-blocked operator.
func TestSimJoinFusion(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(`
a(x, <s>) :- housePages(x), e1(x, s).
b(y, <t>) :- schoolPages(y), e2(y, t).
Q(s, t) :- a(x, s), b(y, t), similar(s, t).
e1(x, s) :- from(x, s).
e2(y, t) :- from(y, t).
`), env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "⋈~[similar(s,t)]") {
		t.Errorf("similarity join not fused:\n%s", plan)
	}
}

// With fusion disabled (non-blockable function), the same program compiles
// to a cross product plus a p-function selection — and both plans must
// produce identical results.
func TestSimJoinEquivalentToNaive(t *testing.T) {
	src := `
a(x, <s>) :- housePages(x), e1(x, s).
b(y, <t>) :- schoolPages(y), e2(y, t).
Q(s, t) :- a(x, s), b(y, t), similar(s, t).
e1(x, s) :- from(x, s), bold-font(s) = yes.
e2(y, t) :- from(y, t), bold-font(t) = yes.
`
	envFused := figure2Env()
	fused, err := Run(alog.MustParse(src), envFused)
	if err != nil {
		t.Fatal(err)
	}
	envNaive := figure2Env()
	envNaive.Blockable = map[string]bool{}
	naive, err := Run(alog.MustParse(src), envNaive)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Canonical() != naive.Canonical() {
		t.Errorf("fused and naive similarity joins disagree:\nfused:\n%s\nnaive:\n%s",
			fused.Canonical(), naive.Canonical())
	}
}

func TestCountNodes(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountNodes(plan.Root); n < 10 {
		t.Errorf("plan suspiciously small: %d nodes", n)
	}
}

func TestAnalyzeString(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	out, err := AnalyzeString(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scan housePages", "tuples", "expanded", "assigns"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}
