package engine

import (
	"strings"
	"testing"

	"iflex/internal/compact"
	"iflex/internal/markup"
	"iflex/internal/text"
)

// Table-driven coverage of the limit-fallback contract: whenever value
// enumeration exceeds Limits, the tuple is kept conservatively (maybe),
// the outcome is flagged as a fallback, and nothing the conjuncts did
// not certainly rule out is dropped. The engine must degrade to a
// superset, never to a subset.
func TestFilterTupleLimitFallbacks(t *testing.T) {
	d := markup.MustParse("d", strings.Repeat("tok ", 40))
	small := markup.MustParse("s", "10 20 30")
	bigCell := compact.ContainCell(d.WholeSpan()) // ~800 values
	expandCell := func(doc *text.Document) compact.Cell {
		return compact.Cell{Expand: true, Assigns: []text.Assignment{text.ContainOf(doc.WholeSpan())}}
	}
	truePred := func([]text.Span) (bool, error) { return true, nil }
	falsePred := func([]text.Span) (bool, error) { return false, nil }

	cases := []struct {
		name     string
		tp       compact.Tuple
		involved []int
		fp       factoredPred
		lim      Limits
		keep     bool
		sure     bool
		fallback bool
		wantRepl bool // a filtered expansion cell must be reported
	}{
		{
			// One cell over MaxCellValues: no enumeration at all, keep as maybe.
			name:     "cell over MaxCellValues",
			tp:       compact.Tuple{Cells: []compact.Cell{bigCell}},
			involved: []int{0},
			fp:       genericPred(falsePred, 1),
			lim:      Limits{MaxCellValues: 100, MaxValuations: 1 << 20},
			keep:     true, fallback: true,
		},
		{
			// Restricted product over MaxValuations with no conjunct verdicts:
			// fully conservative, even though the predicate rejects everything.
			name: "product over MaxValuations",
			tp: compact.Tuple{Cells: []compact.Cell{
				compact.ContainCell(small.WholeSpan()),
				compact.ContainCell(small.WholeSpan()),
			}},
			involved: []int{0, 1},
			fp:       genericPred(falsePred, 2),
			lim:      Limits{MaxCellValues: 512, MaxValuations: 3},
			keep:     true, fallback: true,
		},
		{
			// MaxValuations hit after a conjunct already failed some values of
			// an expansion column: keep conservatively, but the decided
			// verdicts still filter the cell (dropping a value whose conjunct
			// failed can never drop a satisfying valuation).
			name: "conjunct filtering survives valuation cap",
			tp: compact.Tuple{Cells: []compact.Cell{
				expandCell(small),
				compact.ContainCell(small.WholeSpan()),
			}},
			involved: []int{0, 1},
			fp: factoredPred{
				cols: []colPred{func(v text.Span) (bool, error) {
					n, ok := v.Numeric()
					return ok && n >= 20, nil
				}, nil},
				prepare: func(vals [][]text.Span, batch *statBatch) (idxPred, error) {
					return func([]int) (bool, error) { return false, nil }, nil
				},
			},
			lim:  Limits{MaxCellValues: 512, MaxValuations: 3},
			keep: true, fallback: true, wantRepl: true,
		},
		{
			// Under every limit with an always-true predicate: precise sure
			// keep, no fallback (the guardrails must not fire spuriously).
			name:     "within limits stays precise",
			tp:       compact.Tuple{Cells: []compact.Cell{compact.ContainCell(small.Span(0, 5))}},
			involved: []int{0},
			fp:       genericPred(truePred, 1),
			lim:      DefaultLimits(),
			keep:     true, sure: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var batch statBatch
			res, err := filterTupleF(c.tp, c.involved, c.fp, c.lim, &batch)
			if err != nil {
				t.Fatal(err)
			}
			if res.keep != c.keep || res.sure != c.sure || res.fallback != c.fallback {
				t.Errorf("outcome = {keep:%v sure:%v fallback:%v}, want {keep:%v sure:%v fallback:%v}",
					res.keep, res.sure, res.fallback, c.keep, c.sure, c.fallback)
			}
			if c.wantRepl {
				repl, ok := res.repl[0]
				if !ok {
					t.Fatal("expected a filtered expansion cell in repl")
				}
				if repl.CoversTextValue("10") {
					t.Error("value failing its conjunct must be dropped from the expansion cell")
				}
				if !repl.CoversTextValue("20") || !repl.CoversTextValue("30") {
					t.Error("undecided values must be kept under the fallback")
				}
			} else if res.repl != nil {
				t.Errorf("unexpected repl: %v", res.repl)
			}
		})
	}
}

// A fallback at the operator level must surface in Stats.LimitFallbacks,
// and the conservatively kept tuples must carry the maybe flag.
func TestFallbackCountsAndMaybe(t *testing.T) {
	d := markup.MustParse("d", strings.Repeat("tok ", 40))
	cell := compact.ContainCell(d.WholeSpan())
	tp := compact.Tuple{Cells: []compact.Cell{cell}}
	in := compact.NewTable("x")
	in.Tuples = append(in.Tuples, tp)

	env := NewEnv()
	env.Limits = Limits{MaxCellValues: 100, MaxValuations: 100}
	ctx := NewContext(env)
	fp := genericPred(func([]text.Span) (bool, error) { return false, nil }, 1)
	out, err := applyFilter(ctx, nil, nil, in, []int{0}, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tuples) != 1 || !out.Tuples[0].Maybe {
		t.Fatalf("conservative keep missing or not maybe: %+v", out.Tuples)
	}
	if ctx.Stats.LimitFallbacks != 1 {
		t.Errorf("LimitFallbacks = %d, want 1", ctx.Stats.LimitFallbacks)
	}
}
