package engine

import (
	"fmt"
	"strings"
	"sync/atomic"

	"iflex/internal/compact"
	"iflex/internal/text"
)

// scanNode reads an extensional table, renaming its columns to the rule's
// variable names, and applies the context's document subset filter.
type scanNode struct {
	nodeSig
	pred string
	cols []string
}

func newScanNode(pred string, vars []string) *scanNode {
	return &scanNode{
		nodeSig: sigOf(fmt.Sprintf("scan(%s->%s)", pred, strings.Join(vars, ","))),
		pred:    pred, cols: vars,
	}
}

func (n *scanNode) Columns() []string { return n.cols }
func (n *scanNode) Children() []Node  { return nil }

func (n *scanNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	src, ok := ctx.Env.Tables[n.pred]
	if !ok {
		return nil, fmt.Errorf("engine: extensional table %q not bound", n.pred)
	}
	if len(src.Cols) != len(n.cols) {
		return nil, fmt.Errorf("engine: %s has %d columns, rule uses %d", n.pred, len(src.Cols), len(n.cols))
	}
	out := compact.NewTable(n.cols...)
	q := ctx.quarantined()
	for _, tp := range src.Tuples {
		if ctx.DocFilter != nil && !tupleInSubset(tp, ctx.DocFilter) {
			continue
		}
		// Quarantined documents drop out here, exactly like the subset
		// filter: after a restart the evaluation sees only the survivors.
		if q != nil && q.tupleBarred(tp) {
			continue
		}
		// Tuples are values and downstream operators copy before mutating,
		// so the scan shares the extensional table's cells directly.
		out.Tuples = append(out.Tuples, tp)
	}
	return out, nil
}

// tupleInSubset reports whether every cell of the tuple belongs to a
// document in the subset.
func tupleInSubset(tp compact.Tuple, filter map[string]bool) bool {
	for _, c := range tp.Cells {
		for _, a := range c.Assigns {
			if !filter[a.Span.Doc().ID()] {
				return false
			}
		}
	}
	return true
}

// fromNode implements the built-in from(x, s): for each tuple it appends a
// column s holding an expansion cell expand({contain(s1), ...,
// contain(sn)}) over the input cell's assignments (Section 4.2).
type fromNode struct {
	nodeSig
	parent Node
	inVar  string
	outVar string
}

func newFromNode(parent Node, inVar, outVar string) *fromNode {
	return &fromNode{
		nodeSig: sigOf(fmt.Sprintf("from[%s->%s](%s)", inVar, outVar, parent.Signature())),
		parent:  parent, inVar: inVar, outVar: outVar,
	}
}

func (n *fromNode) Children() []Node { return []Node{n.parent} }

func (n *fromNode) Columns() []string {
	return append(append([]string(nil), n.parent.Columns()...), n.outVar)
}

func (n *fromNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	idx := colIndex(in.Cols, n.inVar)
	out := compact.NewTable(n.Columns()...)
	for _, tp := range in.Tuples {
		nt := tp.Copy()
		var as []text.Assignment
		for _, a := range tp.Cells[idx].Assigns {
			// contain(s) for every possible value region of the input cell;
			// exact(s) inputs become contain(s) over that one span.
			as = append(as, text.ContainOf(a.Span))
		}
		nt.Cells = append(nt.Cells, compact.Cell{Assigns: as, Expand: true})
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// crossNode is the θ-join substrate: the Cartesian product of two inputs
// (conditions are applied by later selection nodes, Section 4.1). Columns
// shared by both sides are matched with a may-equal test and projected
// once (natural-join behaviour).
type crossNode struct {
	nodeSig
	left, right Node
	shared      []string
	cols        []string
}

func newCrossNode(left, right Node) *crossNode {
	leftCols := left.Columns()
	rightCols := right.Columns()
	n := &crossNode{left: left, right: right}
	n.cols = append(n.cols, leftCols...)
	seen := map[string]bool{}
	for _, c := range leftCols {
		seen[c] = true
	}
	for _, c := range rightCols {
		if seen[c] {
			n.shared = append(n.shared, c)
		} else {
			n.cols = append(n.cols, c)
		}
	}
	n.nodeSig = sigOf(fmt.Sprintf("cross(%s)(%s)", left.Signature(), right.Signature()))
	return n
}

func (n *crossNode) Columns() []string { return n.cols }
func (n *crossNode) Children() []Node  { return []Node{n.left, n.right} }

func (n *crossNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	lt, rt, err := evalPair(ctx, n.left, n.right)
	if err != nil {
		return nil, err
	}
	out := compact.NewTable(n.cols...)
	lim := ctx.Env.Limits
	// Partition the product over left tuples; per-index result slots keep
	// the output order identical to the serial nested loop. The delta memo
	// is per left tuple too, keyed on the left shared-column cells and
	// pinned to the right table by a content fingerprint of its shared
	// columns; replay rebuilds each output row from the current tuples.
	leftIdx := make([]int, 0, len(n.shared))
	rightIdx := make([]int, 0, len(n.shared))
	for _, sc := range n.shared {
		leftIdx = append(leftIdx, colIndex(lt.Cols, sc))
		rightIdx = append(rightIdx, colIndex(rt.Cols, sc))
	}
	var rdep uint64
	if dx != nil {
		rdep = rt.ColsFingerprint(rightIdx)
	}
	prior, fps := dx.prep(lt, leftIdx, rt, rdep)
	var fbs []int32
	var matches [][]joinMatch
	if fps != nil {
		fbs = make([]int32, len(lt.Tuples))
		matches = make([][]joinMatch, len(lt.Tuples))
	}
	rebuild := func(ltp, rtp compact.Tuple, sure bool) compact.Tuple {
		nt := ltp.Copy()
		for j, c := range rt.Cols {
			if !containsStr(n.shared, c) {
				nt.Cells = append(nt.Cells, rtp.Cells[j])
			}
		}
		nt.Maybe = ltp.Maybe || rtp.Maybe || !sure
		return nt
	}
	rows := make([][]compact.Tuple, len(lt.Tuples))
	var ncut atomic.Int64
	err = ctx.parallelChunksSized(len(lt.Tuples), minChunkCross, func(start, end int) error {
		var batch statBatch
		defer batch.flush(ctx)
		reused := 0
		for i := start; i < end; i++ {
			if cut, cerr := ctx.cutCheck(); cerr != nil {
				return cerr
			} else if cut {
				ctx.noteUnprocessed(lt.Tuples[i:end])
				ncut.Add(1)
				break
			}
			ltp := lt.Tuples[i]
			if fps != nil {
				fps[i] = dx.aux.fpOf(ltp)
				if old, ok := prior.lookup(fps[i], ltp); ok {
					for _, m := range old.sim {
						rows[i] = append(rows[i], rebuild(ltp, rt.Tuples[m.j], m.sure))
					}
					matches[i] = old.sim
					fbs[i] = old.fallbacks
					ev.fallback(ctx, int(old.fallbacks))
					reused++
					continue
				}
			}
			batch.tuplesRecomputed++
			var fb int32
			for j, rtp := range rt.Tuples {
				keep := true
				sure := true
				for _, sc := range n.shared {
					lc := ltp.Cells[colIndex(lt.Cols, sc)]
					rc := rtp.Cells[colIndex(rt.Cols, sc)]
					eq, capped := cellsMayEqual(lc, rc, lim)
					if capped {
						fb++
					}
					if eq == noValuation {
						keep = false
						break
					}
					if eq != allValuations {
						sure = false
					}
				}
				if !keep {
					continue
				}
				rows[i] = append(rows[i], rebuild(ltp, rtp, sure))
				if matches != nil {
					matches[i] = append(matches[i], joinMatch{j: j, sure: sure})
				}
			}
			if fb > 0 {
				ev.fallback(ctx, int(fb))
			}
			if fbs != nil {
				fbs[i] = fb
			}
		}
		dx.noteReused(&batch, reused)
		ev.recompute(batch.tuplesRecomputed)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		out.Tuples = append(out.Tuples, r...)
	}
	if ncut.Load() == 0 {
		dx.finish(lt, func(i int) deltaOut { return deltaOut{sim: matches[i], fallbacks: fbs[i]} })
	}
	return out, nil
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// satisfaction classifies how many valuations of a tuple satisfy a
// predicate: none, some, or all (possibly conservative).
type satisfaction int

const (
	noValuation satisfaction = iota
	someValuations
	allValuations
)

// cellsMayEqual tests value-set overlap of two cells with superset
// semantics: noValuation if the sets certainly do not intersect,
// allValuations if both are the same single value, someValuations
// otherwise. capped reports that enumeration hit the cell-value limit
// and the conservative someValuations answer was used.
func cellsMayEqual(a, b compact.Cell, lim Limits) (sat satisfaction, capped bool) {
	av, aok := a.Singleton()
	bv, bok := b.Singleton()
	if aok && bok {
		if av.NormText() == bv.NormText() {
			return allValuations, false
		}
		return noValuation, false
	}
	if a.NumValues() > lim.MaxCellValues || b.NumValues() > lim.MaxCellValues {
		return someValuations, true // conservative
	}
	texts := map[string]bool{}
	a.Values(func(s text.Span) bool {
		texts[s.NormText()] = true
		return true
	})
	found := false
	b.Values(func(s text.Span) bool {
		if texts[s.NormText()] {
			found = true
			return false
		}
		return true
	})
	if found {
		return someValuations, false
	}
	return noValuation, false
}

// unionNode concatenates the tuples of several same-schema inputs (an IE
// predicate with several rules has union semantics).
type unionNode struct {
	nodeSig
	parts []Node
}

func newUnionNode(parts []Node) *unionNode {
	sigs := make([]string, len(parts))
	for i, p := range parts {
		sigs[i] = p.Signature()
	}
	return &unionNode{
		nodeSig: sigOf("union(" + strings.Join(sigs, ";") + ")"),
		parts:   parts,
	}
}

func (n *unionNode) Columns() []string { return n.parts[0].Columns() }
func (n *unionNode) Children() []Node  { return append([]Node(nil), n.parts...) }

func (n *unionNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	tables, err := evalAll(ctx, n.parts)
	if err != nil {
		return nil, err
	}
	out := compact.NewTable(n.Columns()...)
	for _, t := range tables {
		// Cells are immutable once built; the union shares them.
		out.Tuples = append(out.Tuples, t.Tuples...)
	}
	return out, nil
}

// projectNode keeps/reorders/renames columns. Duplicate detection is
// ignored (Section 4.1).
type projectNode struct {
	nodeSig
	parent  Node
	srcCols []string
	outCols []string
}

func newProjectNode(parent Node, srcCols, outCols []string) *projectNode {
	return &projectNode{
		nodeSig: sigOf(fmt.Sprintf("project[%s->%s](%s)",
			strings.Join(srcCols, ","), strings.Join(outCols, ","), parent.Signature())),
		parent: parent, srcCols: srcCols, outCols: outCols,
	}
}

func (n *projectNode) Columns() []string { return n.outCols }
func (n *projectNode) Children() []Node  { return []Node{n.parent} }

func (n *projectNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(n.srcCols))
	for i, c := range n.srcCols {
		idx[i] = colIndex(in.Cols, c)
	}
	out := compact.NewTable(n.outCols...)
	out.Tuples = make([]compact.Tuple, len(in.Tuples))
	for ti, tp := range in.Tuples {
		nt := compact.Tuple{Maybe: tp.Maybe, Cells: make([]compact.Cell, len(idx))}
		for i, j := range idx {
			nt.Cells[i] = tp.Cells[j]
		}
		out.Tuples[ti] = nt
	}
	return out, nil
}
