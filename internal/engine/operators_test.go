package engine

import (
	"strings"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/markup"
	"iflex/internal/text"
)

func TestCompareOperandsTable(t *testing.T) {
	num := func(v float64) operand { return operand{isNum: true, num: v} }
	str := func(s string) operand { return operand{str: s} }
	null := operand{isNull: true}
	cases := []struct {
		op   alog.CompareOp
		a, b operand
		want bool
	}{
		{alog.OpLT, num(1), num(2), true},
		{alog.OpLE, num(2), num(2), true},
		{alog.OpGT, num(3), num(2), true},
		{alog.OpGE, num(2), num(3), false},
		{alog.OpEQ, num(2), num(2), true},
		{alog.OpNE, num(2), num(3), true},
		{alog.OpEQ, str("abc"), str("abc"), true},
		{alog.OpLT, str("abc"), str("abd"), true},
		{alog.OpEQ, null, null, true},
		{alog.OpNE, null, num(1), true},
		{alog.OpLT, null, num(1), false}, // NULL has no order
		{alog.OpEQ, num(1), str("1"), false},
		{alog.OpNE, num(1), str("1"), true},
	}
	for _, c := range cases {
		got, err := compareOperands(c.op, c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("compare(%v %s %v) = %v, %v; want %v", c.a, c.op, c.b, got, err, c.want)
		}
	}
}

func TestSpanOperandClassification(t *testing.T) {
	d := markup.MustParse("d", "42 hello ")
	if op := spanOperand(d.Span(0, 2)); !op.isNum || op.num != 42 {
		t.Errorf("numeric operand = %+v", op)
	}
	if op := spanOperand(d.Span(3, 8)); op.isNum || op.str != "hello" {
		t.Errorf("string operand = %+v", op)
	}
	if op := spanOperand(d.Span(9, 9)); !op.isNull {
		t.Errorf("empty span should be NULL: %+v", op)
	}
}

func TestCellsMayEqual(t *testing.T) {
	lim := DefaultLimits()
	d := markup.MustParse("d", "alpha beta alpha gamma")
	a1 := compact.ExactCell(d.Span(0, 5))   // alpha
	a2 := compact.ExactCell(d.Span(11, 16)) // alpha (different span, same text)
	b := compact.ExactCell(d.Span(6, 10))   // beta
	multi := compact.ContainCell(d.WholeSpan())
	if got, _ := cellsMayEqual(a1, a2, lim); got != allValuations {
		t.Errorf("same-text singletons = %v", got)
	}
	if got, _ := cellsMayEqual(a1, b, lim); got != noValuation {
		t.Errorf("different singletons = %v", got)
	}
	if got, _ := cellsMayEqual(a1, multi, lim); got != someValuations {
		t.Errorf("singleton vs multi = %v", got)
	}
	disjoint := compact.ContainCell(d.Span(6, 10))
	if got, _ := cellsMayEqual(disjoint, compact.ExactCell(d.Span(17, 22)), lim); got != noValuation {
		t.Errorf("disjoint sets = %v", got)
	}
}

func TestFilterTupleExpansionPartial(t *testing.T) {
	d := markup.MustParse("d", "10 20 30")
	cell := compact.Cell{Expand: true, Assigns: []text.Assignment{text.ContainOf(d.WholeSpan())}}
	tp := compact.Tuple{Cells: []compact.Cell{cell}}
	pred := func(vals []text.Span) (bool, error) {
		n, ok := vals[0].Numeric()
		return ok && n >= 20, nil
	}
	res, err := filterTuple(tp, []int{0}, pred, DefaultLimits(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.keep || res.sure {
		t.Fatalf("outcome = %+v", res)
	}
	repl := res.repl[0]
	if !repl.Expand {
		t.Error("expansion flag lost")
	}
	// Kept values: 20, 30, and multi-token sub-spans are non-numeric (fail),
	// so only the two satisfying singles survive.
	if repl.NumValues() != 2 || !repl.CoversTextValue("20") || !repl.CoversTextValue("30") {
		t.Errorf("filtered cell = %v", repl)
	}
}

func TestFilterTupleCapFallsBackConservative(t *testing.T) {
	d := markup.MustParse("d", strings.Repeat("tok ", 200))
	cell := compact.ContainCell(d.WholeSpan()) // ~20k values, over the cap
	tp := compact.Tuple{Cells: []compact.Cell{cell}}
	calls := 0
	pred := func([]text.Span) (bool, error) { calls++; return false, nil }
	res, err := filterTuple(tp, []int{0}, pred, DefaultLimits(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.keep || res.sure || calls != 0 {
		t.Errorf("conservative path not taken: %+v, calls=%d", res, calls)
	}
}

func TestFilterTupleEmptyCellDropsTuple(t *testing.T) {
	d := markup.MustParse("d", "x")
	tp := compact.Tuple{Cells: []compact.Cell{{}}} // no assignments: no value
	res, err := filterTuple(tp, []int{0}, func([]text.Span) (bool, error) { return true, nil }, DefaultLimits(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.keep {
		t.Error("tuple with an empty involved cell must be dropped")
	}
	_ = d
}

func TestScanErrors(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "x")
	env.AddDocTable("pages", "x", []*text.Document{d})
	// Arity mismatch between table and rule.
	if _, err := Run(alog.MustParse(`Q(a, b) :- pages(a, b).`), env); err == nil {
		t.Error("scan arity mismatch should fail")
	}
}

func TestProcedureErrors(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "hello world")
	env.AddDocTable("pages", "x", []*text.Document{d})
	env.Procs["boom"] = Procedure{
		Outputs: 1,
		Fn: func(text.Span) ([][]text.Span, error) {
			return nil, errBoom{}
		},
	}
	if _, err := Run(alog.MustParse(`Q(x, v) :- pages(x), boom(x, v).`), env); err == nil {
		t.Error("procedure error must propagate")
	}
	// Output arity mismatch.
	env.Procs["two"] = Procedure{
		Outputs: 2,
		Fn: func(in text.Span) ([][]text.Span, error) {
			return [][]text.Span{{in}}, nil // 1 output instead of 2
		},
	}
	if _, err := Run(alog.MustParse(`Q(x, a, b) :- pages(x), two(x, a, b).`), env); err == nil {
		t.Error("procedure arity mismatch must propagate")
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestConstantArgumentFilters(t *testing.T) {
	env := NewEnv()
	d1 := markup.MustParse("d1", "alpha")
	d2 := markup.MustParse("d2", "beta")
	env.AddDocTable("pages", "x", []*text.Document{d1, d2})
	// Constant in an extensional atom filters the scan.
	res, err := Run(alog.MustParse(`Q(v) :- pages(v), inner(v, "alpha").
inner(a, b) :- pages(a), pages(b).`), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 { // v unconstrained by the constant filter? no:
		// inner(v, "alpha") keeps only b="alpha"; v ranges over both pages.
		t.Fatalf("result:\n%s", res)
	}
}

func TestExistenceThenComparisonKeepsMaybe(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "600000")
	env.AddDocTable("pages", "x", []*text.Document{d})
	res, err := Run(alog.MustParse(`
cand(x, v)? :- pages(x), ext(x, v).
Q(x, v) :- cand(x, v), v > 500000.
ext(x, v) :- from(x, v), numeric(v) = yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || !res.Tuples[0].Maybe {
		t.Fatalf("existence maybe lost:\n%s", res)
	}
}

func TestSimJoinBlockingDropsNonCandidates(t *testing.T) {
	env := NewEnv()
	var left, right []*text.Document
	left = append(left, markup.MustParse("l0", "<b>Query Optimization</b>"))
	right = append(right,
		markup.MustParse("r0", "<b>Query Optimization</b>"),
		markup.MustParse("r1", "<b>Transaction Recovery</b>"),
	)
	env.AddDocTable("L", "x", left)
	env.AddDocTable("R", "y", right)
	ctx := NewContext(env)
	plan, err := Compile(alog.MustParse(`
a(x, <s>) :- L(x), e1(x, s).
b(y, <t>) :- R(y), e2(y, t).
Q(s, t) :- a(x, s), b(y, t), similar(s, t).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("result:\n%s", res)
	}
	// Blocking must avoid calling the predicate on the non-candidate pair.
	if ctx.Stats.FuncCalls > 1 {
		t.Errorf("blocking ineffective: %d similarity calls", ctx.Stats.FuncCalls)
	}
}

func TestAnnotateConservativeFallback(t *testing.T) {
	// A key cell too large to enumerate: cAnnotate must pass the tuple
	// through as maybe instead of grouping.
	d := markup.MustParse("d", strings.Repeat("w ", 300))
	in := compact.NewTable("k", "v")
	in.Append(compact.Tuple{Cells: []compact.Cell{
		compact.ContainCell(d.WholeSpan()), // enormous key cell
		compact.ExactCell(d.Span(0, 1)),
	}})
	out, fallbacks := cAnnotate(in, []string{"v"}, DefaultLimits())
	if len(out.Tuples) != 1 || !out.Tuples[0].Maybe || fallbacks != 1 {
		t.Fatalf("fallback wrong:\n%s", out)
	}
}

func TestProjectReordersColumns(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "alpha 42")
	env.AddDocTable("pages", "x", []*text.Document{d})
	res, err := Run(alog.MustParse(`
Q(v, x) :- pages(x), ext(x, v).
ext(x, v) :- from(x, v), numeric(v) = yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0] != "v" || res.Cols[1] != "x" {
		t.Fatalf("columns = %v", res.Cols)
	}
	if v, ok := res.Tuples[0].Cells[0].Singleton(); !ok || v.Text() != "42" {
		t.Errorf("reordered cell = %v", res.Tuples[0].Cells[0])
	}
}

func TestStringComparisonOverCells(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "alpha beta")
	env.AddDocTable("pages", "x", []*text.Document{d})
	res, err := Run(alog.MustParse(`
Q(x, v) :- pages(x), ext(x, v), v = "beta".
ext(x, v) :- from(x, v), max-tokens(v) = 1.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("result:\n%s", res)
	}
	cell := res.Tuples[0].Cells[1]
	if !cell.Expand || cell.NumValues() != 1 || !cell.CoversTextValue("beta") {
		t.Fatalf("string-filtered cell = %v", cell)
	}
}

func TestUnionArityMismatchRejected(t *testing.T) {
	env := NewEnv()
	d := markup.MustParse("d", "x")
	env.AddDocTable("pages", "x", []*text.Document{d})
	prog := alog.MustParse(`
T(x) :- pages(x).
T(x, y) :- pages(x), pages(y).
Q(x) :- T(x).
`)
	if _, err := Compile(prog, env); err == nil {
		t.Fatal("rules with mismatched arity for one predicate must be rejected")
	}
}

func TestSelfSimilarityJoinSameTable(t *testing.T) {
	// Joining a table with itself through two rule instances exercises the
	// memoised sub-plan sharing.
	env := NewEnv()
	// Distinct page texts (identical pages would be equal *values* and
	// legitimately group under the attribute annotation).
	docs := []*text.Document{
		markup.MustParse("a", "<b>Query Basics</b> first posting"),
		markup.MustParse("b", "<b>Query Basics</b> second posting"),
		markup.MustParse("c", "<b>Other Title</b> third posting"),
	}
	env.AddDocTable("P", "x", docs)
	res, err := Run(alog.MustParse(`
l(x, <s>) :- P(x), e(x, s).
r(y, <t>) :- P(y), e(y, t).
Q(s, t) :- l(x, s), r(y, t), similar(s, t).
e(x, s) :- from(x, s), bold-font(s) = distinct-yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: (a,a),(a,b),(b,a),(b,b),(c,c) = 5.
	if len(res.Tuples) != 5 {
		t.Fatalf("self-join result (%d tuples):\n%s", len(res.Tuples), res)
	}
}
