// Package opt holds the session-facing side of the cost-based plan
// optimizer: a cost model seeded from the engine's static defaults and
// refined online from the session's own execution statistics (per-node
// observed cardinalities, Stats.Snapshot per-operator timings, trace
// aggregates), plus the Optimize entry point sessions and CLIs call
// between Compile and Execute.
//
// The split matters for determinism: rewrite DECISIONS are made by the
// engine's rewrite pass from plan structure and static estimates alone;
// everything this package refines online only changes the cost numbers
// REPORTED in explain trees and benches. That is what keeps optimized
// plans byte-identical across worker counts and delta settings even
// though the model keeps learning (see DESIGN.md §13).
package opt

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"iflex/internal/engine"
)

// Model is a concurrency-safe cost model implementing engine.Coster.
// Zero value is not usable; construct with NewModel.
type Model struct {
	mu   sync.Mutex
	unit map[engine.OpKind]float64 // ns per unit of work
	sel  map[engine.OpKind]float64 // output/input row ratio
	rows map[uint64]engine.RowObservation
	// refined counts how many online refinements were folded in.
	refined int
}

// NewModel returns a model seeded from the engine's static defaults.
func NewModel() *Model {
	m := &Model{
		unit: map[engine.OpKind]float64{},
		sel:  map[engine.OpKind]float64{},
		rows: map[uint64]engine.RowObservation{},
	}
	for _, k := range engine.AllOpKinds() {
		m.unit[k] = engine.DefaultUnitCost(k)
		m.sel[k] = engine.DefaultSelectivity(k)
	}
	return m
}

// UnitCost implements engine.Coster.
func (m *Model) UnitCost(k engine.OpKind) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.unit[k]
}

// Selectivity implements engine.Coster. Selectivities stay at their
// static defaults: they feed rewrite decisions, so refining them online
// would make plan choice depend on execution history.
func (m *Model) Selectivity(k engine.OpKind) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sel[k]
}

// ObservedRows implements engine.Coster: observed output cardinality for
// a node signature, if one was adopted. The signature string is verified
// so a 64-bit hash collision degrades to "not observed".
func (m *Model) ObservedRows(sigHash uint64, sig string) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.rows[sigHash]
	if !ok || o.Sig != sig {
		return 0, false
	}
	return o.Rows, true
}

// AdoptRows folds a Context.ObservedRows snapshot into the model.
// Sessions call this once per iteration, after the base execution and
// before any trial is optimized, so all trials of the iteration see one
// frozen, scheduling-independent view.
func (m *Model) AdoptRows(obs map[uint64]engine.RowObservation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range obs {
		m.rows[k] = v
	}
}

// refineUnit nudges one kind's unit cost toward an observation with an
// exponential moving average — robust to noisy single runs.
func (m *Model) refineUnit(k engine.OpKind, nsPerUnit float64) {
	if nsPerUnit <= 0 {
		return
	}
	const alpha = 0.3
	m.unit[k] = (1-alpha)*m.unit[k] + alpha*nsPerUnit
}

// RefineFromSnapshot refines unit costs from a Stats.Snapshot: each
// operator kind's accumulated wall time is divided by the run's total
// tuple throughput. The denominator is global (the snapshot has no
// per-kind tuple counts), so this is a coarse calibration — ObserveTrace
// gives per-operator precision when a trace is available.
func (m *Model) RefineFromSnapshot(s engine.StatsSnapshot) {
	if s.TuplesBuilt <= 0 || len(s.OpTimeSeconds) == 0 {
		return
	}
	byName := map[string]engine.OpKind{}
	for _, k := range engine.AllOpKinds() {
		byName[k.String()] = k
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, secs := range s.OpTimeSeconds {
		k, ok := byName[name]
		if !ok || secs <= 0 {
			continue
		}
		m.refineUnit(k, secs*1e9/float64(s.TuplesBuilt))
	}
	m.refined++
}

// ObserveTrace refines unit costs from per-operator trace aggregates:
// ns of evaluation wall time per output tuple, aggregated per kind.
func (m *Model) ObserveTrace(ops []engine.OpStats) {
	type acc struct {
		ns     float64
		tuples float64
	}
	byOp := map[string]*acc{}
	for _, o := range ops {
		if o.Evals == 0 || o.Tuples == 0 {
			continue
		}
		a := byOp[o.Op]
		if a == nil {
			a = &acc{}
			byOp[o.Op] = a
		}
		a.ns += float64(o.Wall.Nanoseconds())
		a.tuples += float64(o.Tuples)
	}
	kinds := map[string]engine.OpKind{}
	for _, k := range engine.AllOpKinds() {
		kinds[k.String()] = k
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for op, a := range byOp {
		// Trace op labels are rendered operator names ("scan docs",
		// "σ[...]"); map them onto kinds by prefix vocabulary.
		k, ok := kindForLabel(op, kinds)
		if !ok || a.tuples == 0 {
			continue
		}
		m.refineUnit(k, a.ns/a.tuples)
	}
	m.refined++
}

// kindForLabel maps a rendered operator label to its OpKind.
func kindForLabel(label string, kinds map[string]engine.OpKind) (engine.OpKind, bool) {
	switch {
	case strings.HasPrefix(label, "scan "):
		return kinds["scan"], true
	case strings.HasPrefix(label, "from("):
		return kinds["from"], true
	case strings.HasPrefix(label, "proc "):
		return kinds["proc"], true
	case strings.HasPrefix(label, "⋈~"):
		return kinds["simjoin"], true
	case strings.HasPrefix(label, "⋈") || label == "×":
		return kinds["cross"], true
	case label == "∪":
		return kinds["union"], true
	case strings.HasPrefix(label, "π"):
		return kinds["project"], true
	case strings.HasPrefix(label, "ψ"):
		return kinds["annotate"], true
	case strings.HasPrefix(label, "σ["):
		inner := strings.TrimPrefix(label, "σ[")
		switch {
		case strings.Contains(inner, "(...)"):
			return kinds["pfunc"], true
		case strings.ContainsAny(inner, "<>=≠"):
			return kinds["compare"], true
		default:
			return kinds["constrain"], true
		}
	}
	return 0, false
}

// Report renders the model's current state for diagnostics.
func (m *Model) Report() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "cost model: %d refinements, %d observed cardinalities\n", m.refined, len(m.rows))
	kinds := engine.AllOpKinds()
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].String() < kinds[j].String() })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-10s unit=%.0fns sel=%.2f\n", k.String(), m.unit[k], m.sel[k])
	}
	return b.String()
}

// Optimize rewrites a compiled plan under the model (nil model uses the
// engine's static defaults; nil canon disables cross-plan CSE).
func Optimize(p *engine.Plan, env *engine.Env, m *Model, canon *engine.CanonTable) *engine.Plan {
	var c engine.Coster
	if m != nil {
		c = m
	}
	return engine.OptimizePlan(p, env, engine.OptOptions{Coster: c, Canon: canon})
}
