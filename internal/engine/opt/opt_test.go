package opt

import (
	"sync"
	"testing"
	"time"

	"iflex/internal/engine"
)

func TestModelSeedsFromDefaults(t *testing.T) {
	m := NewModel()
	for _, k := range engine.AllOpKinds() {
		if got, want := m.UnitCost(k), engine.DefaultUnitCost(k); got != want {
			t.Fatalf("unit cost %v: got %v want %v", k, got, want)
		}
		if got, want := m.Selectivity(k), engine.DefaultSelectivity(k); got != want {
			t.Fatalf("selectivity %v: got %v want %v", k, got, want)
		}
	}
}

func TestObservedRowsVerifiesSignature(t *testing.T) {
	m := NewModel()
	m.AdoptRows(map[uint64]engine.RowObservation{
		7: {Sig: "scan docs", Rows: 42},
	})
	if rows, ok := m.ObservedRows(7, "scan docs"); !ok || rows != 42 {
		t.Fatalf("want (42,true), got (%d,%v)", rows, ok)
	}
	// Hash collision with a different signature string: must miss.
	if _, ok := m.ObservedRows(7, "scan other"); ok {
		t.Fatal("collision should degrade to not-observed")
	}
	if _, ok := m.ObservedRows(8, "scan docs"); ok {
		t.Fatal("unknown hash should miss")
	}
}

func TestRefinementNeverChangesSelectivity(t *testing.T) {
	m := NewModel()
	before := map[engine.OpKind]float64{}
	for _, k := range engine.AllOpKinds() {
		before[k] = m.Selectivity(k)
	}
	m.RefineFromSnapshot(engine.StatsSnapshot{
		TuplesBuilt:   1000,
		OpTimeSeconds: map[string]float64{"pfunc": 0.5, "scan": 0.01},
	})
	m.ObserveTrace([]engine.OpStats{
		{Op: "scan docs", Evals: 3, Wall: time.Millisecond, Tuples: 100},
		{Op: "σ[similar(...)]", Evals: 1, Wall: time.Second, Tuples: 10},
	})
	for _, k := range engine.AllOpKinds() {
		if m.Selectivity(k) != before[k] {
			t.Fatalf("selectivity of %v changed under refinement — it feeds rewrite decisions", k)
		}
	}
}

func TestRefineFromSnapshotMovesUnitCosts(t *testing.T) {
	m := NewModel()
	kinds := map[string]engine.OpKind{}
	for _, k := range engine.AllOpKinds() {
		kinds[k.String()] = k
	}
	before := m.UnitCost(kinds["pfunc"])
	// 1s of pfunc time over 1000 tuples = 1e6 ns/tuple, far above the
	// default: the EMA must move the unit cost up.
	m.RefineFromSnapshot(engine.StatsSnapshot{
		TuplesBuilt:   1000,
		OpTimeSeconds: map[string]float64{"pfunc": 1.0},
	})
	if after := m.UnitCost(kinds["pfunc"]); after <= before {
		t.Fatalf("pfunc unit cost did not increase: %v -> %v", before, after)
	}
	// Kinds with no observations stay put.
	if m.UnitCost(kinds["scan"]) != engine.DefaultUnitCost(kinds["scan"]) {
		t.Fatal("unobserved kind moved")
	}
}

func TestModelConcurrentUse(t *testing.T) {
	m := NewModel()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.UnitCost(engine.OpKind(j % 12))
				m.AdoptRows(map[uint64]engine.RowObservation{uint64(j): {Sig: "s", Rows: int64(j)}})
				m.RefineFromSnapshot(engine.StatsSnapshot{
					TuplesBuilt:   int64(j + 1),
					OpTimeSeconds: map[string]float64{"cross": 0.001},
				})
			}
		}(i)
	}
	wg.Wait()
	if m.Report() == "" {
		t.Fatal("empty report")
	}
}
