package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"iflex/internal/alog"
)

// This file is the cost-based plan optimizer: a rewrite pass that runs
// between Compile and Eval. Every rewrite preserves the result byte for
// byte — not just set-equal: the compact tables (tuple order, cell
// replacements, Maybe flags) of an optimized plan are identical to the
// unoptimized plan's, so transcripts, convergence signals, and the
// differential suites cannot tell the two apart except by wall time.
//
// Rule catalogue (see DESIGN.md §13 for the per-rule argument):
//
//   - fuse-simjoin: a blockable similarity p-function σ~ sitting above a
//     selection chain over a shared-column-free cross product is hoisted
//     down past column-disjoint selections and fused into the
//     token-blocked simjoin. The compiler's syntactic fusion only fires
//     when σ~ is directly adjacent to the cross; this rule makes plan
//     quality independent of the order the developer listed body
//     literals in.
//   - pushdown: a unary selection is sunk below a cross/simjoin into the
//     side that binds all its columns (when disjoint from the join
//     columns), and below from/proc operators that only add columns it
//     does not read.
//   - reorder-conjuncts: adjacent selections over pairwise-disjoint
//     column sets are reordered cheapest-rank-first (comparisons before
//     constraints before opaque p-functions). Same-rank and overlapping
//     selections keep their original relative order, which keeps
//     constraint prior lists valid.
//   - cse-share: structurally identical subtrees (same signature) are
//     interned to one canonical node pointer, within a plan and — via a
//     session-owned CanonTable — across the Simulation strategy's trial
//     plans of one iteration. Interning changes no signatures, so the
//     reuse cache behaves identically; what it buys is pointer-identical
//     inputs for the binary operators' delta memos and the table
//     adoption path.
//
// Determinism contract: rewrite DECISIONS depend only on the plan
// structure and the environment's table sizes (via the static cardinality
// estimator), never on observed timings or online cardinalities. The
// Coster's observed statistics refine the cost numbers REPORTED in
// explain trees and benches; feeding them into decisions would let
// scheduling noise pick different plans at different worker counts and
// break the byte-identity guarantees above.

// Coster supplies the cost model: per-operator unit costs and default
// selectivities (used for both decisions and reporting; the defaults are
// static) plus observed output cardinalities (reporting only, refined
// online from prior executions). Implementations must be safe for
// concurrent use — trial-plan optimization fans out across goroutines.
type Coster interface {
	// UnitCost is the estimated cost in nanoseconds per unit of work
	// (input tuple, or candidate pair for joins) of one operator kind.
	UnitCost(k OpKind) float64
	// Selectivity is the default output/input row ratio of one operator
	// kind (joins: output over the candidate-pair count).
	Selectivity(k OpKind) float64
	// ObservedRows returns the observed output row count for a node
	// signature from a previous execution, if any. Used for reported
	// estimates only, never for rewrite decisions.
	ObservedRows(sigHash uint64, sig string) (int64, bool)
}

// defaultCoster is the built-in static model used when no Coster is
// supplied (and the source of the defaults opt.NewModel starts from).
type defaultCoster struct{}

// DefaultUnitCost returns the built-in per-kind unit cost (ns per unit
// of work) and DefaultSelectivity the built-in output/input ratio.
func DefaultUnitCost(k OpKind) float64 {
	switch k {
	case OpScan:
		return 50
	case OpFrom:
		return 400
	case OpCross:
		return 120
	case OpSimJoin:
		return 80
	case OpUnion:
		return 20
	case OpProject:
		return 60
	case OpAnnotate:
		return 60
	case OpConstraint:
		return 4000
	case OpCompare:
		return 150
	case OpFunc:
		return 2500
	case OpProc:
		return 5000
	}
	return 100
}

// DefaultSelectivity returns the built-in output/input row ratio per
// operator kind (joins: matches over candidate pairs).
func DefaultSelectivity(k OpKind) float64 {
	switch k {
	case OpCompare:
		return 0.4
	case OpConstraint:
		return 0.6
	case OpFunc:
		return 0.25
	case OpSimJoin:
		return 0.02
	case OpCross:
		return 0.1 // shared-column (natural join) crosses only
	case OpFrom:
		return 2.0 // fan-out, not a filter
	}
	return 1.0
}

func (defaultCoster) UnitCost(k OpKind) float64               { return DefaultUnitCost(k) }
func (defaultCoster) Selectivity(k OpKind) float64            { return DefaultSelectivity(k) }
func (defaultCoster) ObservedRows(uint64, string) (int64, bool) { return 0, false }

// AllOpKinds lists every operator kind (for cost-model tables).
func AllOpKinds() []OpKind {
	ks := make([]OpKind, numOpKinds)
	for i := range ks {
		ks[i] = OpKind(i)
	}
	return ks
}

// fuseRowThreshold gates fuse-simjoin on the statically estimated
// candidate-pair count: below it the cross product is too small for the
// blocking index to pay for itself either way, and leaving the plan
// alone keeps it maximally comparable.
const fuseRowThreshold = 64

// CanonTable interns plan subtrees by signature so structurally
// identical subplans share one node pointer — within a plan and across
// the trial plans of one session iteration (cross-trial common
// subexpression sharing). Safe for concurrent use. Reset it at each
// iteration boundary so canonical nodes never outlive the tables the
// delta machinery pins them to.
type CanonTable struct {
	mu sync.Mutex
	m  map[uint64]Node
}

// NewCanonTable returns an empty interning table.
func NewCanonTable() *CanonTable { return &CanonTable{m: map[uint64]Node{}} }

// Reset drops all interned nodes.
func (c *CanonTable) Reset() {
	c.mu.Lock()
	c.m = map[uint64]Node{}
	c.mu.Unlock()
}

// intern returns the canonical node for n's signature, registering n if
// the signature is new. A 64-bit hash collision (different signature
// strings) leaves n unshared — correctness never rests on the hash.
func (c *CanonTable) intern(n Node) Node {
	if c == nil {
		return n
	}
	h := n.sigHash()
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[h]; ok {
		if prev.Signature() == n.Signature() {
			return prev
		}
		return n
	}
	c.m[h] = n
	return n
}

// RuleFiring records one rewrite decision for explain/bench rendering.
type RuleFiring struct {
	Rule   string  `json:"rule"`   // fuse-simjoin | pushdown | reorder-conjuncts
	Node   string  `json:"node"`   // operator label of the rewritten node
	Sig    uint64  `json:"-"`      // sigHash of the node the firing attaches to
	Detail string  `json:"detail"` // human-readable what/why
	// EstBeforeNs / EstAfterNs are the cost model's estimates for the
	// affected region before and after the rewrite (reporting only).
	EstBeforeNs float64 `json:"est_before_ns"`
	EstAfterNs  float64 `json:"est_after_ns"`
}

// NodeEstimate is the cost model's per-operator estimate for one node of
// the optimized plan (rendered next to actuals in the explain tree).
type NodeEstimate struct {
	Rows   int64
	CostNs float64
}

// OptInfo reports what the optimizer did to a plan.
type OptInfo struct {
	// Fired lists every rewrite decision in deterministic plan order.
	Fired []RuleFiring
	// CSEShared counts subtrees replaced by an already-interned
	// canonical node (within-plan and cross-trial sharing combined).
	CSEShared int
	// Est holds the cost model's per-node estimates, keyed by the
	// optimized plan's node signature hashes.
	Est map[uint64]NodeEstimate
}

// rulesFor returns the rule labels attached to a node (for explain).
func (o *OptInfo) rulesFor(sig uint64) []string {
	if o == nil {
		return nil
	}
	var out []string
	for _, f := range o.Fired {
		if f.Sig == sig {
			out = append(out, f.Rule)
		}
	}
	return out
}

// Summary renders a one-line rule tally, e.g.
// "3 rewrites (fuse-simjoin=1 pushdown=2), 4 shared subplans".
func (o *OptInfo) Summary() string {
	if o == nil {
		return "off"
	}
	counts := map[string]int{}
	for _, f := range o.Fired {
		counts[f.Rule]++
	}
	var parts []string
	for _, r := range []string{"fuse-simjoin", "pushdown", "reorder-conjuncts"} {
		if counts[r] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", r, counts[r]))
		}
	}
	s := fmt.Sprintf("%d rewrites", len(o.Fired))
	if len(parts) > 0 {
		s += " (" + strings.Join(parts, " ") + ")"
	}
	if o.CSEShared > 0 {
		s += fmt.Sprintf(", %d shared subplans", o.CSEShared)
	}
	return s
}

// RuleTally returns the fired-rule labels, deduplicated, sorted.
func (o *OptInfo) RuleTally() []string {
	if o == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, f := range o.Fired {
		if !seen[f.Rule] {
			seen[f.Rule] = true
			out = append(out, f.Rule)
		}
	}
	sort.Strings(out)
	return out
}

// OptOptions configure an OptimizePlan call.
type OptOptions struct {
	// Coster supplies the cost model (nil = built-in defaults).
	Coster Coster
	// Canon, when non-nil, interns subtrees across plans (cross-trial
	// CSE). The caller owns its lifetime and must Reset it whenever the
	// delta predecessor generation rolls over (each session iteration).
	Canon *CanonTable
}

// OptimizePlan rewrites a compiled plan with the semantics-preserving
// rule catalogue above and returns a new Plan carrying the rewritten
// root and an OptInfo report. The input plan is never mutated (nodes are
// immutable); unchanged subtrees are shared by pointer, so an optimized
// plan delta-links against an unoptimized predecessor (and vice versa)
// exactly as well as the overlap of their shapes allows.
func OptimizePlan(p *Plan, env *Env, opts OptOptions) *Plan {
	c := opts.Coster
	if c == nil {
		c = defaultCoster{}
	}
	o := &optimizer{
		env:     env,
		coster:  c,
		canon:   opts.Canon,
		info:    &OptInfo{Est: map[uint64]NodeEstimate{}},
		done:    map[Node]Node{},
		rowsEst: map[Node]float64{},
		rowsObs: map[Node]float64{},
	}
	root := o.rewrite(p.Root)
	o.estimateTree(root, map[uint64]bool{})
	return &Plan{Root: root, Program: p.Program, Opt: o.info}
}

type optimizer struct {
	env    *Env
	coster Coster
	canon  *CanonTable
	info   *OptInfo
	// done maps original nodes to their rewritten (and interned)
	// versions, preserving sharing in the rewritten tree.
	done map[Node]Node
	// rowsEst memoises the static cardinality estimate (decisions);
	// rowsObs the observed-refined one (reporting).
	rowsEst map[Node]float64
	rowsObs map[Node]float64
}

// selInfo is one unary selection of a chain, carried by its original
// node plus the precomputed column set and rank.
type selInfo struct {
	node     Node
	involved []string
	rank     int
}

// isSelection reports whether n is a unary selection operator.
func isSelection(n Node) bool {
	switch n.(type) {
	case *compareNode, *funcNode, *constraintNode:
		return true
	}
	return false
}

// selParent returns a selection node's input.
func selParent(n Node) Node { return n.Children()[0] }

// selOf extracts the chain metadata of a selection node.
func selOf(n Node) selInfo {
	s := selInfo{node: n}
	switch t := n.(type) {
	case *compareNode:
		vars := 0
		for _, term := range []alog.Term{t.cmp.L, t.cmp.R} {
			if term.Kind == alog.TermVar {
				s.involved = append(s.involved, term.Var)
				vars++
			}
		}
		if vars <= 1 {
			s.rank = 0 // variable-vs-constant: cheapest
		} else {
			s.rank = 1 // variable-vs-variable odometer
		}
	case *constraintNode:
		s.involved = []string{t.cons.Attr}
		s.rank = 2 // feature Verify/Refine
	case *funcNode:
		for _, term := range t.args {
			if term.Kind == alog.TermVar {
				s.involved = append(s.involved, term.Var)
			}
		}
		s.rank = 3 // opaque p-function: most expensive
	}
	return s
}

// disjointStr reports whether two column-name sets share no element.
func disjointStr(a, b []string) bool {
	for _, x := range a {
		if containsStr(b, x) {
			return false
		}
	}
	return true
}

// subsetStr reports whether every element of a appears in b.
func subsetStr(a, b []string) bool {
	for _, x := range a {
		if !containsStr(b, x) {
			return false
		}
	}
	return true
}

// rewrite returns the optimized version of a subtree (memoised, so
// shared subtrees rewrite once and stay shared).
func (o *optimizer) rewrite(n Node) Node {
	if v, ok := o.done[n]; ok {
		return v
	}
	var out Node
	if isSelection(n) {
		out = o.rewriteChain(n)
	} else {
		out = o.rebuild(n)
	}
	out = o.intern(out)
	o.done[n] = out
	return out
}

// rebuild rewrites a non-selection node's children and reconstructs the
// node only when a child changed (pointer stability keeps signatures,
// cache entries, and delta links maximally shared).
func (o *optimizer) rebuild(n Node) Node {
	switch t := n.(type) {
	case *scanNode:
		return n
	case *fromNode:
		if p := o.rewrite(t.parent); p != t.parent {
			return newFromNode(p, t.inVar, t.outVar)
		}
	case *procNode:
		if p := o.rewrite(t.parent); p != t.parent {
			return newProcNode(p, t.pname, t.inVar, t.outVars)
		}
	case *projectNode:
		if p := o.rewrite(t.parent); p != t.parent {
			return newProjectNode(p, t.srcCols, t.outCols)
		}
	case *annotateNode:
		if p := o.rewrite(t.parent); p != t.parent {
			return newAnnotateNode(p, t.exists, t.annotate)
		}
	case *crossNode:
		l, r := o.rewrite(t.left), o.rewrite(t.right)
		if l != t.left || r != t.right {
			return newCrossNode(l, r)
		}
	case *simJoinNode:
		l, r := o.rewrite(t.left), o.rewrite(t.right)
		if l != t.left || r != t.right {
			return newSimJoinNode(l, r, t.fname, t.leftVar, t.rightVar)
		}
	case *unionNode:
		parts := make([]Node, len(t.parts))
		changed := false
		for i, p := range t.parts {
			parts[i] = o.rewrite(p)
			changed = changed || parts[i] != p
		}
		if changed {
			return newUnionNode(parts)
		}
	}
	return n
}

// rewriteChain optimizes a maximal chain of unary selections: fusion
// rescue, pushdown into the base, and conjunct reordering, in that
// order. top is the chain's uppermost selection.
func (o *optimizer) rewriteChain(top Node) Node {
	// Collect the chain top-down, then flip to bottom-up (sels[0] is the
	// selection closest to the base — the first one evaluated).
	var sels []selInfo
	cur := top
	for isSelection(cur) {
		sels = append(sels, selOf(cur))
		cur = selParent(cur)
	}
	for i, j := 0, len(sels)-1; i < j; i, j = i+1, j-1 {
		sels[i], sels[j] = sels[j], sels[i]
	}
	origBase := cur
	base := o.rewrite(origBase)
	changed := base != origBase

	// fuse-simjoin: hoist a fusible similarity selection down past
	// column-disjoint selections onto the shared-free cross and fuse.
	for i := 0; i < len(sels); {
		fn, ok := sels[i].node.(*funcNode)
		if !ok || !o.canFuse(fn, base, sels[:i]) {
			i++
			continue
		}
		cross := base.(*crossNode)
		lv, rv := orientSim(fn, cross)
		fused := newSimJoinNode(cross.left, cross.right, fn.fname, lv, rv)
		o.info.Fired = append(o.info.Fired, RuleFiring{
			Rule: "fuse-simjoin", Node: opName(fused), Sig: fused.sigHash(),
			Detail: fmt.Sprintf("%s(%s,%s) hoisted past %d selection(s) onto %s and fused",
				fn.fname, lv, rv, i, opName(cross)),
			EstBeforeNs: o.cost(cross) + o.coster.UnitCost(OpFunc)*o.rows(cross, false),
			EstAfterNs:  o.cost(fused),
		})
		base = fused
		sels = append(sels[:i], sels[i+1:]...)
		changed = true
		// Restart: removing the func may expose another fusible one
		// (the base is a simjoin now, so only deeper chains fuse more).
		i = 0
	}

	// pushdown: sink each selection into the base when every selection
	// that stays between it and the base commutes with it.
	var kept []selInfo
	for _, s := range sels {
		commutes := true
		for _, k := range kept {
			if !disjointStr(s.involved, k.involved) {
				commutes = false
				break
			}
		}
		if commutes {
			if nb, moved := o.sink(s, base); nb != nil {
				o.info.Fired = append(o.info.Fired, RuleFiring{
					Rule: "pushdown", Node: opName(moved), Sig: moved.sigHash(),
					Detail:      fmt.Sprintf("%s sunk below %s", opName(s.node), opName(base)),
					EstBeforeNs: o.cost(s.node),
					EstAfterNs:  o.cost(moved),
				})
				base = nb
				changed = true
				continue
			}
		}
		kept = append(kept, s)
	}

	// reorder-conjuncts: bubble cheaper-rank selections toward the base,
	// swapping only strictly-improving, column-disjoint adjacent pairs
	// (stable otherwise — constraint prior lists rely on the same-attr
	// relative order never changing).
	reordered := false
	for swapped := true; swapped; {
		swapped = false
		for j := 0; j+1 < len(kept); j++ {
			a, b := kept[j], kept[j+1]
			if b.rank < a.rank && disjointStr(a.involved, b.involved) {
				kept[j], kept[j+1] = b, a
				swapped, reordered, changed = true, true, true
			}
		}
	}

	if !changed {
		return top
	}
	node := base
	var beforeCost float64
	for _, s := range sels {
		beforeCost += o.cost(s.node)
	}
	for _, s := range kept {
		node = o.intern(o.rebuildSel(s, node))
	}
	if reordered {
		var afterCost float64
		for w := node; isSelection(w); w = selParent(w) {
			afterCost += o.cost(w)
		}
		o.info.Fired = append(o.info.Fired, RuleFiring{
			Rule: "reorder-conjuncts", Node: opName(node), Sig: node.sigHash(),
			Detail:      fmt.Sprintf("%d conjuncts ordered cheapest-rank-first", len(kept)),
			EstBeforeNs: beforeCost, EstAfterNs: afterCost,
		})
	}
	return node
}

// canFuse reports whether fn can legally fuse with base: base is a
// shared-free cross with one function variable bound on each side, every
// selection below fn in the chain is column-disjoint from the function's
// variables (so hoisting it down commutes byte for byte), and the
// statically estimated candidate-pair count clears the threshold.
func (o *optimizer) canFuse(fn *funcNode, base Node, below []selInfo) bool {
	if !o.env.Blockable[fn.fname] || len(fn.args) != 2 {
		return false
	}
	cross, ok := base.(*crossNode)
	if !ok || len(cross.shared) > 0 {
		return false
	}
	v1, v2 := fn.args[0], fn.args[1]
	if v1.Kind != alog.TermVar || v2.Kind != alog.TermVar {
		return false
	}
	lcols, rcols := cross.left.Columns(), cross.right.Columns()
	split := (containsStr(lcols, v1.Var) && containsStr(rcols, v2.Var)) ||
		(containsStr(lcols, v2.Var) && containsStr(rcols, v1.Var))
	if !split {
		return false
	}
	fvars := []string{v1.Var, v2.Var}
	for _, s := range below {
		if !disjointStr(s.involved, fvars) {
			return false
		}
	}
	return o.rows(cross.left, false)*o.rows(cross.right, false) >= fuseRowThreshold
}

// orientSim returns the function's variables as (leftVar, rightVar) of
// the cross product (mirrors the compiler's tryFuseSimJoin).
func orientSim(fn *funcNode, cross *crossNode) (string, string) {
	v1, v2 := fn.args[0].Var, fn.args[1].Var
	if containsStr(cross.left.Columns(), v1) {
		return v1, v2
	}
	return v2, v1
}

// sink tries to place a selection below target, descending recursively
// through joins and column-adding unary operators; it returns the
// rebuilt target plus the relocated selection node, or (nil, nil) when
// no legal position strictly below target exists. Projections, unions,
// and annotations are never crossed: in compiled plans they only occur
// at rule-fragment and predicate boundaries, and predicate sub-plans are
// shared across callers — pushing one caller's selection inside would
// change the shared intermediate (and the session's convergence signal).
func (o *optimizer) sink(s selInfo, target Node) (Node, Node) {
	switch t := target.(type) {
	case *crossNode:
		if !disjointStr(s.involved, t.shared) {
			return nil, nil
		}
		if subsetStr(s.involved, t.left.Columns()) {
			nl, sel := o.sinkOrWrap(s, t.left)
			return newCrossNode(nl, t.right), sel
		}
		if subsetStr(s.involved, t.right.Columns()) {
			nr, sel := o.sinkOrWrap(s, t.right)
			return newCrossNode(t.left, nr), sel
		}
	case *simJoinNode:
		if subsetStr(s.involved, t.left.Columns()) && !containsStr(s.involved, t.leftVar) {
			nl, sel := o.sinkOrWrap(s, t.left)
			return newSimJoinNode(nl, t.right, t.fname, t.leftVar, t.rightVar), sel
		}
		if subsetStr(s.involved, t.right.Columns()) && !containsStr(s.involved, t.rightVar) {
			nr, sel := o.sinkOrWrap(s, t.right)
			return newSimJoinNode(t.left, nr, t.fname, t.leftVar, t.rightVar), sel
		}
	case *fromNode:
		if !containsStr(s.involved, t.outVar) {
			np, sel := o.sinkOrWrap(s, t.parent)
			return newFromNode(np, t.inVar, t.outVar), sel
		}
	case *procNode:
		if disjointStr(s.involved, t.outVars) {
			np, sel := o.sinkOrWrap(s, t.parent)
			return newProcNode(np, t.pname, t.inVar, t.outVars), sel
		}
	}
	return nil, nil
}

// sinkOrWrap sinks the selection deeper when possible, otherwise places
// it directly above target.
func (o *optimizer) sinkOrWrap(s selInfo, target Node) (Node, Node) {
	if nb, sel := o.sink(s, target); nb != nil {
		return o.intern(nb), sel
	}
	sel := o.intern(o.rebuildSel(s, target))
	return sel, sel
}

// rebuildSel reconstructs a selection node over a new input, carrying
// its parameters (constraint prior lists included) verbatim.
func (o *optimizer) rebuildSel(s selInfo, parent Node) Node {
	switch t := s.node.(type) {
	case *compareNode:
		if t.parent == parent {
			return t
		}
		return newCompareNode(parent, t.cmp)
	case *funcNode:
		if t.parent == parent {
			return t
		}
		return newFuncNode(parent, t.fname, t.args)
	case *constraintNode:
		if t.parent == parent {
			return t
		}
		return newConstraintNode(parent, t.cons, t.prior)
	}
	return s.node
}

// intern canonicalizes a node through the CSE table (no-op without one).
func (o *optimizer) intern(n Node) Node {
	if o.canon == nil {
		return n
	}
	m := o.canon.intern(n)
	if m != n {
		o.info.CSEShared++
	}
	return m
}

// rows estimates a node's output row count. With useObs, observed
// cardinalities from previous executions override the static estimate
// (reporting); without, the estimate is purely structural (decisions).
func (o *optimizer) rows(n Node, useObs bool) float64 {
	memo := o.rowsEst
	if useObs {
		memo = o.rowsObs
	}
	if v, ok := memo[n]; ok {
		return v
	}
	var r float64
	if useObs {
		if obs, ok := o.coster.ObservedRows(n.sigHash(), n.Signature()); ok {
			memo[n] = float64(obs)
			return float64(obs)
		}
	}
	switch t := n.(type) {
	case *scanNode:
		if tab, ok := o.env.Tables[t.pred]; ok {
			r = float64(len(tab.Tuples))
		} else {
			r = 10
		}
	case *fromNode:
		r = o.rows(t.parent, useObs) * o.coster.Selectivity(OpFrom)
	case *procNode:
		r = o.rows(t.parent, useObs)
	case *projectNode:
		r = o.rows(t.parent, useObs)
	case *annotateNode:
		r = o.rows(t.parent, useObs)
	case *crossNode:
		r = o.rows(t.left, useObs) * o.rows(t.right, useObs)
		if len(t.shared) > 0 {
			r *= o.coster.Selectivity(OpCross)
		}
	case *simJoinNode:
		r = o.rows(t.left, useObs) * o.rows(t.right, useObs) * o.coster.Selectivity(OpSimJoin)
	case *unionNode:
		for _, p := range t.parts {
			r += o.rows(p, useObs)
		}
	case *compareNode:
		r = o.rows(t.parent, useObs) * o.coster.Selectivity(OpCompare)
	case *constraintNode:
		r = o.rows(t.parent, useObs) * o.coster.Selectivity(OpConstraint)
	case *funcNode:
		r = o.rows(t.parent, useObs) * o.coster.Selectivity(OpFunc)
	default:
		r = 10
	}
	if r < 1 {
		r = 1
	}
	memo[n] = r
	return r
}

// cost estimates a node's own evaluation cost in nanoseconds (its work
// units scaled by the unit cost; observed rows refine the inputs).
func (o *optimizer) cost(n Node) float64 {
	u := o.coster.UnitCost(kindOf(n))
	var work float64
	switch t := n.(type) {
	case *scanNode:
		work = o.rows(n, true)
	case *crossNode:
		work = o.rows(t.left, true) * o.rows(t.right, true)
	case *simJoinNode:
		l, r := o.rows(t.left, true), o.rows(t.right, true)
		work = l + r + l*r*o.coster.Selectivity(OpSimJoin)
	case *unionNode:
		for _, p := range t.parts {
			work += o.rows(p, true)
		}
	default:
		if cs := n.Children(); len(cs) == 1 {
			work = o.rows(cs[0], true)
		} else {
			work = o.rows(n, true)
		}
	}
	return u * work
}

// estimateTree fills OptInfo.Est for every node of the final plan.
func (o *optimizer) estimateTree(n Node, seen map[uint64]bool) {
	h := n.sigHash()
	if seen[h] {
		return
	}
	seen[h] = true
	o.info.Est[h] = NodeEstimate{Rows: int64(o.rows(n, true)), CostNs: o.cost(n)}
	for _, c := range n.Children() {
		o.estimateTree(c, seen)
	}
}

// EstimateString renders a node estimate compactly, e.g. "~1.2ms/340r".
func (e NodeEstimate) EstimateString() string {
	d := time.Duration(e.CostNs).Round(time.Microsecond)
	return fmt.Sprintf("~%s/%dr", d, e.Rows)
}
