package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/fault"
	"iflex/internal/text"
)

// optDocs builds a small two-sided corpus whose documents carry bold and
// italic segments (so both font constraints have matches).
func optDocs(prefix string, n int, r *rand.Rand) []docPair {
	words := []string{"query", "join", "index", "stream", "cache", "log"}
	var out []docPair
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(3)
		var toks []string
		for j := 0; j < k; j++ {
			toks = append(toks, words[r.Intn(len(words))])
		}
		src := fmt.Sprintf("<b>%s</b> <i>tag%d</i> trailer", strings.Join(toks, " "), r.Intn(4))
		out = append(out, docPair{id: fmt.Sprintf("%s%d", prefix, i), src: src})
	}
	return out
}

type docPair struct{ id, src string }

// fusionDefeatSrc lists a column-disjoint constraint between the join
// atoms and the similarity literal, so the compiler's greedy literal
// placement puts the constraint first and its adjacency-only fusion
// cannot fire: the compiled plan is σ~ over σ over a plain cross
// product. The optimizer must rescue it.
const fusionDefeatSrc = `
a(x, <s>) :- L(x), e1(x, s).
b(y, <t>, <u>) :- R(y), e2(y, t), e2u(y, u).
Q(s, t) :- a(x, s), b(y, t, u), italic-font(u) = distinct-yes, similar(s, t).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
e2u(y, u) :- from(y, u), italic-font(u) = distinct-yes.
`

// fusedSrc is the same query with the literals in the fusion-friendly
// order — the shape the compiler already handles.
const fusedSrc = `
a(x, <s>) :- L(x), e1(x, s).
b(y, <t>, <u>) :- R(y), e2(y, t), e2u(y, u).
Q(s, t) :- a(x, s), b(y, t, u), similar(s, t), italic-font(u) = distinct-yes.
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
e2u(y, u) :- from(y, u), italic-font(u) = distinct-yes.
`

func buildOptEnv(r *rand.Rand, n int) *Env {
	env := NewEnv()
	env.AddDocTable("L", "x", docsOf(optDocs("l", n, r)))
	env.AddDocTable("R", "y", docsOf(optDocs("r", n, r)))
	return env
}

func docsOf(pairs []docPair) []*text.Document {
	var out []*text.Document
	for _, p := range pairs {
		out = append(out, mustDoc(p.id, p.src))
	}
	return out
}

// TestOptimizerFusionRescue: the optimizer hoists the blockable
// similarity past the column-disjoint constraint, fuses it with the
// cross product, and sinks the constraint into the join side — and the
// result stays byte-identical to the unoptimized plan.
func TestOptimizerFusionRescue(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	env := buildOptEnv(r, 8)
	prog := alog.MustParse(fusionDefeatSrc)

	plain, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(PlanString(plain.Root), "⋈~") {
		t.Fatalf("compiled plan unexpectedly fused already:\n%s", PlanString(plain.Root))
	}
	opt := OptimizePlan(plain, env, OptOptions{})
	if !strings.Contains(PlanString(opt.Root), "⋈~") {
		t.Fatalf("optimizer did not fuse the similarity join:\n%s", PlanString(opt.Root))
	}
	var fused, pushed bool
	for _, f := range opt.Opt.Fired {
		switch f.Rule {
		case "fuse-simjoin":
			fused = true
		case "pushdown":
			pushed = true
		}
	}
	if !fused {
		t.Fatalf("expected a fuse-simjoin firing, got %+v", opt.Opt.Fired)
	}
	if !pushed {
		t.Fatalf("expected the constraint to sink below the join, got %+v\n%s",
			opt.Opt.Fired, PlanString(opt.Root))
	}

	want, err := plain.Execute(NewContext(env))
	if err != nil {
		t.Fatal(err)
	}
	got, err := opt.Execute(NewContext(env))
	if err != nil {
		t.Fatal(err)
	}
	if got.Canonical() != want.Canonical() {
		t.Fatalf("optimized result differs:\nopt:\n%s\nplain:\n%s", got.Canonical(), want.Canonical())
	}

	// The rescued plan must match the hand-ordered program's plan shape.
	ordered, err := Compile(alog.MustParse(fusedSrc), env)
	if err != nil {
		t.Fatal(err)
	}
	orderedOpt := OptimizePlan(ordered, env, OptOptions{})
	if PlanString(opt.Root) != PlanString(orderedOpt.Root) {
		t.Fatalf("rescued plan differs from fusion-friendly ordering:\nrescued:\n%s\nordered:\n%s",
			PlanString(opt.Root), PlanString(orderedOpt.Root))
	}
}

// TestOptimizerDifferentialRandom: optimized and unoptimized plans agree
// byte for byte over randomized corpora, with and without a worker pool.
func TestOptimizerDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		env := buildOptEnv(r, 2+r.Intn(8))
		for _, src := range []string{fusionDefeatSrc, fusedSrc} {
			prog := alog.MustParse(src)
			plain, err := Compile(prog, env)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.Execute(NewContext(env))
			if err != nil {
				t.Fatal(err)
			}
			opt := OptimizePlan(plain, env, OptOptions{})
			for _, workers := range []int{1, 8} {
				ctx := NewContext(env)
				ctx.Workers = workers
				got, err := opt.Execute(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if got.Canonical() != want.Canonical() {
					t.Fatalf("trial %d workers %d: optimized differs\nopt:\n%s\nplain:\n%s",
						trial, workers, got.Canonical(), want.Canonical())
				}
			}
		}
	}
}

// TestOptimizerConjunctOrder: a cheap comparison listed after an
// expensive constraint bubbles below it when their columns are disjoint.
func TestOptimizerConjunctOrder(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	env := buildOptEnv(r, 6)
	prog := alog.MustParse(`
a(x, <s>, <u>, <w>) :- L(x), e1(x, s), e3(x, u), e3(x, w).
Q(s) :- a(x, s, u, w), bold-font(s) = distinct-yes, u < w.
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e3(x, u) :- from(x, u), italic-font(u) = distinct-yes.
`)
	plain, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	opt := OptimizePlan(plain, env, OptOptions{})
	var reordered bool
	for _, f := range opt.Opt.Fired {
		if f.Rule == "reorder-conjuncts" {
			reordered = true
		}
	}
	if !reordered {
		t.Fatalf("expected reorder-conjuncts to fire:\nplain:\n%s\nopt:\n%s\nfired: %+v",
			PlanString(plain.Root), PlanString(opt.Root), opt.Opt.Fired)
	}
	// The comparison must now evaluate before the constraint — i.e. sit
	// below it, further down the rendered tree.
	ps := PlanString(opt.Root)
	cmpAt := strings.Index(ps, "σ[u < w]")
	consAt := strings.Index(ps, `σ[bold-font(s)="distinct-yes"]`)
	if cmpAt < 0 || consAt < 0 || cmpAt < consAt {
		t.Fatalf("comparison should sit below the constraint:\n%s", ps)
	}
	want, err := plain.Execute(NewContext(env))
	if err != nil {
		t.Fatal(err)
	}
	got, err := opt.Execute(NewContext(env))
	if err != nil {
		t.Fatal(err)
	}
	if got.Canonical() != want.Canonical() {
		t.Fatalf("reordered plan differs:\nopt:\n%s\nplain:\n%s", got.Canonical(), want.Canonical())
	}
}

// TestOptimizerIdempotent: optimizing an already-optimized plan is the
// identity — decisions are deterministic and reach a fixpoint in one
// pass.
func TestOptimizerIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	env := buildOptEnv(r, 8)
	for _, src := range []string{fusionDefeatSrc, fusedSrc} {
		plain, err := Compile(alog.MustParse(src), env)
		if err != nil {
			t.Fatal(err)
		}
		once := OptimizePlan(plain, env, OptOptions{})
		twice := OptimizePlan(once, env, OptOptions{})
		if len(twice.Opt.Fired) != 0 {
			t.Fatalf("second pass fired rules: %+v", twice.Opt.Fired)
		}
		if twice.Root != once.Root {
			t.Fatalf("second pass rebuilt the plan:\nonce:\n%s\ntwice:\n%s",
				PlanString(once.Root), PlanString(twice.Root))
		}
	}
}

// TestOptimizerCSE: two plans optimized against one CanonTable share
// their structurally identical subtrees by pointer.
func TestOptimizerCSE(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	env := buildOptEnv(r, 6)
	canon := NewCanonTable()
	p1, err := Compile(alog.MustParse(fusionDefeatSrc), env)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(alog.MustParse(fusionDefeatSrc), env)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Root == p2.Root {
		t.Fatal("separate compilations should build separate nodes")
	}
	o1 := OptimizePlan(p1, env, OptOptions{Canon: canon})
	o2 := OptimizePlan(p2, env, OptOptions{Canon: canon})
	if o1.Root != o2.Root {
		t.Fatalf("identical plans should intern to one canonical root")
	}
	if o2.Opt.CSEShared == 0 {
		t.Fatal("second optimization should report shared subplans")
	}
}

// TestOptimizerDeltaLockstep: two successive optimized plan versions
// (one added constraint apart) still delta-link and replay tuples.
func TestOptimizerDeltaLockstep(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	env := buildOptEnv(r, 8)
	prog := alog.MustParse(fusionDefeatSrc)
	p1, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	o1 := OptimizePlan(p1, env, OptOptions{})

	next := prog.Clone()
	if err := next.AddConstraint(alog.AttrRef{Pred: "e1", Var: "s"}, "bold-font", "distinct-yes"); err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(next, env)
	if err != nil {
		t.Fatal(err)
	}
	o2 := OptimizePlan(p2, env, OptOptions{})

	ctx := NewContext(env)
	ctx.EnableDelta()
	if _, err := o1.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	ctx.RegisterDelta(o1.Root, o2.Root)
	got, err := o2.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.TuplesReused == 0 {
		t.Fatal("optimized plan versions did not delta-link (no tuples reused)")
	}
	// Same program executed without the optimizer must agree.
	want, err := p2.Execute(NewContext(env))
	if err != nil {
		t.Fatal(err)
	}
	if got.Canonical() != want.Canonical() {
		t.Fatalf("delta-evaluated optimized plan differs:\n%s\nvs\n%s", got.Canonical(), want.Canonical())
	}
}

// TestOptimizerQuarantineCommute: per-document fault quarantine and the
// optimizer's rewrites commute. The injector dooms documents purely by
// (seed, site, doc), so which doomed documents actually quarantine
// depends on which p-function calls the plan makes: the fused join
// probes exactly the token-sharing pairs — a subset of the naive cross
// product's calls, and precisely the pairs that could ever survive the
// join. Hence the optimized run's quarantine set is a subset of the
// plain run's, the difference only ever contains documents that
// contribute nothing to the result, and the surviving results are
// byte-identical — at any worker count.
func TestOptimizerQuarantineCommute(t *testing.T) {
	exec := func(optimize bool, workers int) (string, map[string]bool) {
		rr := rand.New(rand.NewSource(71))
		env := buildOptEnv(rr, 8)
		inj := fault.New(42, fault.Rule{Site: "pfunc", Mode: fault.ModeError, Num: 1, Den: 8})
		env.FaultHook = inj.Hook()
		plan, err := Compile(alog.MustParse(fusionDefeatSrc), env)
		if err != nil {
			t.Fatal(err)
		}
		if optimize {
			plan = OptimizePlan(plan, env, OptOptions{})
		}
		ctx := NewContext(env)
		ctx.Workers = workers
		ctx.FaultPolicy = QuarantineFaults
		res, err := plan.Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		docs := map[string]bool{}
		if q := ctx.quarantined(); q != nil {
			for _, rec := range q.records {
				docs[rec.Doc] = true
			}
		}
		return res.Canonical(), docs
	}
	plainRes, plainQ := exec(false, 1)
	for _, workers := range []int{1, 8} {
		optRes, optQ := exec(true, workers)
		if plainRes != optRes {
			t.Fatalf("workers=%d: quarantined results differ:\nopt:\n%s\nplain:\n%s",
				workers, optRes, plainRes)
		}
		for d := range optQ {
			if !plainQ[d] {
				t.Fatalf("workers=%d: optimized run quarantined %s, which the plain run did not", workers, d)
			}
		}
	}
	// Determinism: the optimized plan's quarantine set is identical
	// across worker counts.
	_, q1 := exec(true, 1)
	_, q8 := exec(true, 8)
	if len(q1) != len(q8) {
		t.Fatalf("optimized quarantine sets differ across workers: %d vs %d", len(q1), len(q8))
	}
	for d := range q1 {
		if !q8[d] {
			t.Fatalf("doc %s quarantined at workers=1 but not workers=8", d)
		}
	}
}
