package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iflex/internal/alog"
	"iflex/internal/compact"
)

// panicNode panics on its first evaluation and succeeds afterwards; the
// channels let the test interleave a concurrent waiter with the panic.
type panicNode struct {
	calls   atomic.Int32
	started chan struct{}
	release chan struct{}
}

func (n *panicNode) Signature() string { return "panicNode" }
func (n *panicNode) sigHash() uint64   { return fnv64("panicNode") }
func (n *panicNode) Columns() []string { return []string{"x"} }
func (n *panicNode) Children() []Node  { return nil }

func (n *panicNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	if n.calls.Add(1) == 1 {
		close(n.started)
		<-n.release
		// Give the concurrent Eval time to park on the in-flight entry's
		// done channel before the panic tears the evaluation down.
		time.Sleep(50 * time.Millisecond)
		panic("boom")
	}
	return compact.NewTable("x"), nil
}

// TestEvalPanicUnblocksWaiters is the regression test for the in-flight
// leak: a panicking node evaluation must unblock concurrent waiters with
// an error, re-panic in the evaluating goroutine, and leave the key
// retryable rather than poisoned.
func TestEvalPanicUnblocksWaiters(t *testing.T) {
	ctx := NewContext(NewEnv())
	n := &panicNode{started: make(chan struct{}), release: make(chan struct{})}

	evalPanic := make(chan any, 1)
	go func() {
		defer func() { evalPanic <- recover() }()
		Eval(ctx, n)
	}()
	<-n.started

	waiter := make(chan error, 1)
	go func() {
		_, err := Eval(ctx, n)
		waiter <- err
	}()
	// Let the waiter reach the in-flight wait, then release the panic.
	time.Sleep(10 * time.Millisecond)
	close(n.release)

	select {
	case r := <-evalPanic:
		if r == nil {
			t.Fatal("evaluating goroutine did not re-panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evaluating goroutine never finished")
	}
	select {
	case err := <-waiter:
		if err == nil {
			t.Fatal("waiter got a nil error from a panicked evaluation")
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Errorf("waiter error %q does not mention the panic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked: in-flight entry leaked on panic")
	}

	// The key must not be poisoned: a fresh request re-evaluates.
	tbl, err := Eval(ctx, n)
	if err != nil || tbl == nil {
		t.Fatalf("retry after panic: table=%v err=%v", tbl, err)
	}
	ctx.mu.Lock()
	leaked := len(ctx.inflight)
	ctx.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d in-flight entries leaked", leaked)
	}
}

// TestChaosWorkerPanicForwarded is the regression test for panics inside
// pool worker goroutines: before forwarding, a panic raised while a
// spawned worker processed its chunk crashed the whole process instead
// of propagating to the Eval caller like a serial panic. The hook panics
// for one document that lands in a non-caller chunk of the constraint
// pass.
func TestChaosWorkerPanicForwarded(t *testing.T) {
	env := chaosEnv(18, 6, nil)
	env.FaultHook = func(site string, docs []string) error {
		if site != "feature" {
			return nil
		}
		for _, d := range docs {
			if d == "h12" {
				panic("worker chunk fault for " + d)
			}
		}
		return nil
	}
	prog := alog.MustParse(figure2Src)
	plan, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.Workers = 8

	recovered := func() (r any) {
		defer func() { r = recover() }()
		_, _ = plan.Execute(ctx)
		return nil
	}()
	if recovered == nil {
		t.Fatal("panic in a worker chunk did not propagate to the caller")
	}
	msg := fmt.Sprint(recovered)
	if !strings.Contains(msg, "worker chunk fault for h12") {
		t.Errorf("recovered %q does not name the original panic", msg)
	}
	ctx.mu.Lock()
	leaked := len(ctx.inflight)
	ctx.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d in-flight entries leaked after the worker panic", leaked)
	}

	// The same fault under quarantine must not panic: the document is
	// isolated and the run completes.
	qctx := NewContext(env)
	qctx.Workers = 8
	qctx.FaultPolicy = QuarantineFaults
	if _, err := plan.Execute(qctx); err != nil {
		t.Fatalf("quarantine run failed: %v", err)
	}
	got := qctx.QuarantinedDocs()
	if len(got) != 1 || got[0] != "h12" {
		t.Errorf("quarantined %v, want exactly [h12]", got)
	}
}
