package engine

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iflex/internal/compact"
)

// panicNode panics on its first evaluation and succeeds afterwards; the
// channels let the test interleave a concurrent waiter with the panic.
type panicNode struct {
	calls   atomic.Int32
	started chan struct{}
	release chan struct{}
}

func (n *panicNode) Signature() string { return "panicNode" }
func (n *panicNode) sigHash() uint64   { return fnv64("panicNode") }
func (n *panicNode) Columns() []string { return []string{"x"} }
func (n *panicNode) Children() []Node  { return nil }

func (n *panicNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	if n.calls.Add(1) == 1 {
		close(n.started)
		<-n.release
		// Give the concurrent Eval time to park on the in-flight entry's
		// done channel before the panic tears the evaluation down.
		time.Sleep(50 * time.Millisecond)
		panic("boom")
	}
	return compact.NewTable("x"), nil
}

// TestEvalPanicUnblocksWaiters is the regression test for the in-flight
// leak: a panicking node evaluation must unblock concurrent waiters with
// an error, re-panic in the evaluating goroutine, and leave the key
// retryable rather than poisoned.
func TestEvalPanicUnblocksWaiters(t *testing.T) {
	ctx := NewContext(NewEnv())
	n := &panicNode{started: make(chan struct{}), release: make(chan struct{})}

	evalPanic := make(chan any, 1)
	go func() {
		defer func() { evalPanic <- recover() }()
		Eval(ctx, n)
	}()
	<-n.started

	waiter := make(chan error, 1)
	go func() {
		_, err := Eval(ctx, n)
		waiter <- err
	}()
	// Let the waiter reach the in-flight wait, then release the panic.
	time.Sleep(10 * time.Millisecond)
	close(n.release)

	select {
	case r := <-evalPanic:
		if r == nil {
			t.Fatal("evaluating goroutine did not re-panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evaluating goroutine never finished")
	}
	select {
	case err := <-waiter:
		if err == nil {
			t.Fatal("waiter got a nil error from a panicked evaluation")
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Errorf("waiter error %q does not mention the panic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked: in-flight entry leaked on panic")
	}

	// The key must not be poisoned: a fresh request re-evaluates.
	tbl, err := Eval(ctx, n)
	if err != nil || tbl == nil {
		t.Fatalf("retry after panic: table=%v err=%v", tbl, err)
	}
	ctx.mu.Lock()
	leaked := len(ctx.inflight)
	ctx.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d in-flight entries leaked", leaked)
	}
}
