package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"iflex/internal/compact"
)

// This file implements the engine's bounded worker pool. Leaf loops
// (similarity-join probes, cross products, selections) and independent
// sibling subtrees run on spare pool slots; the calling goroutine always
// keeps working too, so progress never depends on slot availability and
// nested parallel regions cannot deadlock. Every construct merges results
// in input order, which makes evaluation byte-identical to a serial run
// regardless of the worker count.

// workers resolves the context's worker budget: Workers when positive,
// otherwise every available CPU.
func (ctx *Context) workers() int {
	if ctx.Workers > 0 {
		return ctx.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// tryAcquire reserves one pool slot beyond the caller's own goroutine,
// without blocking. Callers that fail to acquire run the work inline.
// Outcomes are counted in Stats (PoolSlotsGranted / PoolSlotsDenied) so
// the bench harness can report pool utilization; a denial is not a
// stall — it means the requesting goroutine did the work itself.
func (ctx *Context) tryAcquire() bool {
	limit := int64(ctx.workers() - 1)
	for {
		cur := ctx.extraWorkers.Load()
		if cur >= limit {
			statAdd(&ctx.Stats.PoolSlotsDenied, 1)
			return false
		}
		if ctx.extraWorkers.CompareAndSwap(cur, cur+1) {
			statAdd(&ctx.Stats.PoolSlotsGranted, 1)
			statMax(&ctx.Stats.PoolMaxExtra, cur+1)
			return true
		}
	}
}

// release returns a slot taken by tryAcquire.
func (ctx *Context) release() { ctx.extraWorkers.Add(-1) }

// workerPanic carries a panic recovered on a pool worker goroutine back
// to the coordinating goroutine, which re-panics with it; without this
// forwarding a panic inside a spawned worker would crash the process
// instead of propagating to the Eval caller like a serial panic does.
// The worker's stack is preserved because the re-panic happens on a
// different goroutine.
type workerPanic struct {
	val   any
	stack string
}

func (p workerPanic) String() string {
	return fmt.Sprintf("%v (recovered on a pool worker)\nworker stack:\n%s", p.val, p.stack)
}

// forward records a recovered panic value into *slot.
func forwardPanic(slot **workerPanic) {
	if r := recover(); r != nil {
		*slot = &workerPanic{val: r, stack: string(debug.Stack())}
	}
}

// rethrow re-panics the first recorded worker panic, if any.
func rethrow(pans []*workerPanic) {
	for _, p := range pans {
		if p != nil {
			panic(*p)
		}
	}
}

// Minimum items per chunk for the fan-out of each operator family,
// derived from their measured per-item cost: similarity-join probes run a
// blocking lookup plus a token odometer per item (expensive), selections
// a factored predicate (medium), cross products and constraint refinement
// sit in between. Nodes smaller than one chunk run serially and skip the
// pool bookkeeping entirely — the fix for pool_slots_denied ≈ granted on
// tiny nodes.
const (
	minChunkProbe      = 4
	minChunkFilter     = 16
	minChunkCross      = 16
	minChunkConstraint = 8
)

// parallelChunks splits [0, n) into up to workers() contiguous chunks and
// runs body on each, spawning goroutines only for the slots tryAcquire
// grants; the caller's goroutine runs the first chunk (and any chunk that
// found no free slot) itself. body must write results into per-index
// slots so the caller can merge in index order. The returned error is the
// one a serial left-to-right run would have hit first: within a chunk
// body stops at its first error, and across chunks the lowest-indexed
// chunk's error wins.
func (ctx *Context) parallelChunks(n int, body func(start, end int) error) error {
	return ctx.parallelChunksSized(n, 1, body)
}

// parallelChunksSized is parallelChunks with a per-chunk work floor: the
// fan-out is capped so every chunk covers at least minChunk items, which
// keeps cheap nodes serial instead of paying goroutine and pool-slot
// overhead for sub-microsecond chunks.
func (ctx *Context) parallelChunksSized(n, minChunk int, body func(start, end int) error) error {
	run := body
	if h := ctx.ChunkHook; h != nil {
		run = func(start, end int) error {
			if err := h(start, end); err != nil {
				return err
			}
			return body(start, end)
		}
	}
	w := ctx.workers()
	if w > n {
		w = n
	}
	if minChunk > 1 && w > 1 {
		if m := n / minChunk; m < w {
			w = m
			if w < 1 {
				w = 1
			}
		}
	}
	if w <= 1 {
		if n <= 0 {
			return nil
		}
		return run(0, n)
	}
	errs := make([]error, w)
	pans := make([]*workerPanic, w)
	var wg sync.WaitGroup
	chunk := func(i int) (start, end int) {
		return i * n / w, (i + 1) * n / w
	}
	for i := 1; i < w; i++ {
		if !ctx.tryAcquire() {
			start, end := chunk(i)
			errs[i] = run(start, end)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer ctx.release()
			defer forwardPanic(&pans[i])
			start, end := chunk(i)
			errs[i] = run(start, end)
		}(i)
	}
	start, end := chunk(0)
	errs[0] = run(start, end)
	wg.Wait()
	rethrow(pans)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evalPair evaluates two sibling nodes, concurrently when a pool slot is
// free. On a double failure the left error wins, matching serial order.
func evalPair(ctx *Context, left, right Node) (lt, rt *compact.Table, err error) {
	if !ctx.tryAcquire() {
		lt, err = Eval(ctx, left)
		if err != nil {
			return nil, nil, err
		}
		rt, err = Eval(ctx, right)
		if err != nil {
			return nil, nil, err
		}
		return lt, rt, nil
	}
	var rerr error
	var rpan *workerPanic
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer ctx.release()
		defer forwardPanic(&rpan)
		rt, rerr = Eval(ctx, right)
	}()
	lt, err = Eval(ctx, left)
	<-done
	if rpan != nil {
		panic(*rpan)
	}
	if err != nil {
		return nil, nil, err
	}
	if rerr != nil {
		return nil, nil, rerr
	}
	return lt, rt, nil
}

// evalAll evaluates sibling nodes in order, running each on a spare pool
// slot when one is free. The first (lowest-index) error wins.
func evalAll(ctx *Context, nodes []Node) ([]*compact.Table, error) {
	out := make([]*compact.Table, len(nodes))
	errs := make([]error, len(nodes))
	pans := make([]*workerPanic, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		if i < len(nodes)-1 && ctx.tryAcquire() {
			wg.Add(1)
			go func(i int, node Node) {
				defer wg.Done()
				defer ctx.release()
				defer forwardPanic(&pans[i])
				out[i], errs[i] = Eval(ctx, node)
			}(i, node)
			continue
		}
		out[i], errs[i] = Eval(ctx, node)
	}
	wg.Wait()
	rethrow(pans)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
