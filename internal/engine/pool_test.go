package engine

import (
	"sync"
	"testing"

	"iflex/internal/alog"
)

// TestStatMax exercises the atomic high-water helper under contention.
func TestStatMax(t *testing.T) {
	var hw int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := int64(1); v <= 1000; v++ {
				statMax(&hw, v*int64(g+1)%977)
			}
		}(g)
	}
	wg.Wait()
	if hw != 976 {
		t.Errorf("high-water = %d, want 976", hw)
	}
	statMax(&hw, 10)
	if hw != 976 {
		t.Errorf("high-water regressed to %d", hw)
	}
}

// TestPoolMaxExtraBounded checks the pool's high-water accounting: after
// a parallel evaluation the mark is at most Workers-1 (the requesting
// goroutine never holds a slot), and it lands in the snapshot so a
// multi-tenant host can read each tenant's peak machine share.
func TestPoolMaxExtraBounded(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ctx := NewContext(env)
		ctx.Workers = workers
		if _, err := plan.Execute(ctx); err != nil {
			t.Fatal(err)
		}
		if max := ctx.Stats.PoolMaxExtra; max > int64(workers-1) {
			t.Errorf("workers=%d: PoolMaxExtra = %d, want <= %d", workers, max, workers-1)
		}
		if snap := ctx.Stats.Snapshot(); snap.PoolMaxExtra != ctx.Stats.PoolMaxExtra {
			t.Errorf("snapshot pool_max_extra = %d, stats = %d", snap.PoolMaxExtra, ctx.Stats.PoolMaxExtra)
		}
	}
}
