package engine

import (
	"fmt"
	"strings"

	"iflex/internal/compact"
	"iflex/internal/text"
)

// procNode evaluates a procedural p-predicate over a compact table
// (Section 4.1): each compact tuple is expanded (expansion cells become
// separate tuples), the possible input values are enumerated, the
// procedure is invoked per value, and its outputs become exact cells.
// Output tuples are maybe when the input tuple represented more than one
// possible tuple or was itself maybe.
type procNode struct {
	nodeSig
	parent  Node
	pname   string
	inVar   string
	outVars []string
}

func newProcNode(parent Node, pname, inVar string, outVars []string) *procNode {
	return &procNode{
		nodeSig: sigOf(fmt.Sprintf("proc[%s(%s->%s)](%s)", pname, inVar, strings.Join(outVars, ","), parent.Signature())),
		parent:  parent, pname: pname, inVar: inVar, outVars: outVars,
	}
}

func (n *procNode) Children() []Node { return []Node{n.parent} }

func (n *procNode) Columns() []string {
	return append(append([]string(nil), n.parent.Columns()...), n.outVars...)
}

func (n *procNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	proc, ok := ctx.Env.Procs[n.pname]
	if !ok {
		return nil, fmt.Errorf("engine: procedure %q not bound", n.pname)
	}
	if proc.Outputs != len(n.outVars) {
		return nil, fmt.Errorf("engine: procedure %s produces %d outputs but rule binds %d", n.pname, proc.Outputs, len(n.outVars))
	}
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	ci := colIndex(in.Cols, n.inVar)
	lim := ctx.Env.Limits
	out := compact.NewTable(n.Columns()...)
	nq := int64(0)
	for ti := 0; ti < len(in.Tuples); ti++ {
		if cut, cerr := ctx.cutCheck(); cerr != nil {
			return nil, cerr
		} else if cut {
			ctx.noteUnprocessed(in.Tuples[ti:])
			break
		}
		tp := in.Tuples[ti]
		cell := tp.Cells[ci]
		if cell.NumValues() > lim.MaxCellValues {
			// An engine limit, not a document fault: quarantining here would
			// hide a program that needs an extra constraint, so it stays
			// fatal under every fault policy.
			return nil, fmt.Errorf("engine: procedure %s: input cell encodes %d values, over the limit %d; constrain the attribute first",
				n.pname, cell.NumValues(), lim.MaxCellValues)
		}
		// Per Section 4.1, outputs are maybe when the (expansion-free) input
		// tuple stands for more than one possible tuple: expansion cells
		// contribute separate tuples, so only plain multi-value cells count.
		multi := false
		for _, c := range tp.Cells {
			if !c.Expand && c.NumValues() > 1 {
				multi = true
				break
			}
		}
		// The tuple's whole value enumeration is one guarded unit: rows are
		// built into a local batch and committed only when every procedure
		// call succeeded, which keeps a retried attempt idempotent.
		var rowsOut []compact.Tuple
		qed, gerr := ctx.guard(ev, "proc", func() []string { return tupleDocs(tp, []int{ci}) }, func() error {
			rowsOut = rowsOut[:0]
			var evalErr error
			cell.Values(func(v text.Span) bool {
				statAdd(&ctx.Stats.ProcCalls, 1)
				rows, err := proc.Fn(v)
				if err != nil {
					evalErr = fmt.Errorf("engine: procedure %s: %w", n.pname, err)
					return false
				}
				for _, row := range rows {
					if len(row) != proc.Outputs {
						evalErr = fmt.Errorf("engine: procedure %s returned %d outputs, want %d", n.pname, len(row), proc.Outputs)
						return false
					}
					nt := tp.Clone()
					nt.Cells[ci] = compact.ExactCell(v)
					for _, o := range row {
						nt.Cells = append(nt.Cells, compact.ExactCell(o))
					}
					nt.Maybe = tp.Maybe || multi
					rowsOut = append(rowsOut, nt)
				}
				return true
			})
			return evalErr
		})
		if gerr != nil {
			return nil, gerr
		}
		if qed {
			nq++
			continue
		}
		out.Tuples = append(out.Tuples, rowsOut...)
	}
	if nq > 0 {
		return nil, quarantineErr("proc", nq)
	}
	return out, nil
}
