package engine

import (
	"fmt"
	"strings"

	"iflex/internal/compact"
	"iflex/internal/text"
)

// procNode evaluates a procedural p-predicate over a compact table
// (Section 4.1): each compact tuple is expanded (expansion cells become
// separate tuples), the possible input values are enumerated, the
// procedure is invoked per value, and its outputs become exact cells.
// Output tuples are maybe when the input tuple represented more than one
// possible tuple or was itself maybe.
type procNode struct {
	nodeSig
	parent  Node
	pname   string
	inVar   string
	outVars []string
}

func newProcNode(parent Node, pname, inVar string, outVars []string) *procNode {
	return &procNode{
		nodeSig: sigOf(fmt.Sprintf("proc[%s(%s->%s)](%s)", pname, inVar, strings.Join(outVars, ","), parent.Signature())),
		parent:  parent, pname: pname, inVar: inVar, outVars: outVars,
	}
}

func (n *procNode) Children() []Node { return []Node{n.parent} }

func (n *procNode) Columns() []string {
	return append(append([]string(nil), n.parent.Columns()...), n.outVars...)
}

func (n *procNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	proc, ok := ctx.Env.Procs[n.pname]
	if !ok {
		return nil, fmt.Errorf("engine: procedure %q not bound", n.pname)
	}
	if proc.Outputs != len(n.outVars) {
		return nil, fmt.Errorf("engine: procedure %s produces %d outputs but rule binds %d", n.pname, proc.Outputs, len(n.outVars))
	}
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	ci := colIndex(in.Cols, n.inVar)
	lim := ctx.Env.Limits
	out := compact.NewTable(n.Columns()...)
	for _, tp := range in.Tuples {
		cell := tp.Cells[ci]
		if cell.NumValues() > lim.MaxCellValues {
			return nil, fmt.Errorf("engine: procedure %s: input cell encodes %d values, over the limit %d; constrain the attribute first",
				n.pname, cell.NumValues(), lim.MaxCellValues)
		}
		// Per Section 4.1, outputs are maybe when the (expansion-free) input
		// tuple stands for more than one possible tuple: expansion cells
		// contribute separate tuples, so only plain multi-value cells count.
		multi := false
		for _, c := range tp.Cells {
			if !c.Expand && c.NumValues() > 1 {
				multi = true
				break
			}
		}
		var evalErr error
		cell.Values(func(v text.Span) bool {
			statAdd(&ctx.Stats.ProcCalls, 1)
			rows, err := proc.Fn(v)
			if err != nil {
				evalErr = fmt.Errorf("engine: procedure %s: %w", n.pname, err)
				return false
			}
			for _, row := range rows {
				if len(row) != proc.Outputs {
					evalErr = fmt.Errorf("engine: procedure %s returned %d outputs, want %d", n.pname, len(row), proc.Outputs)
					return false
				}
				nt := tp.Clone()
				nt.Cells[ci] = compact.ExactCell(v)
				for _, o := range row {
					nt.Cells = append(nt.Cells, compact.ExactCell(o))
				}
				nt.Maybe = tp.Maybe || multi
				out.Tuples = append(out.Tuples, nt)
			}
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
	}
	return out, nil
}
