package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"iflex/internal/compact"
)

// FaultPolicy selects how a per-document fault (an error or panic inside
// a p-function, feature evaluation, or procedure) is handled.
type FaultPolicy int

const (
	// FailFast propagates the first fault and aborts the evaluation —
	// the engine's historical behaviour and the default.
	FailFast FaultPolicy = iota
	// QuarantineFaults isolates the offending document(s) instead: a
	// transient error gets a capped retry, a persistent error or a panic
	// quarantines the documents involved, and the evaluation restarts
	// over the survivors (see Plan.Execute). Quarantined IDs and causes
	// surface in Stats.Snapshot, trace records, the -explain footer, and
	// the table's Degraded report.
	QuarantineFaults
)

// ErrQuarantined is the sentinel an operator pass returns (wrapped) when
// it quarantined documents: the pass's output is discarded and the
// evaluation is restarted over the surviving documents, so no table that
// ever saw a fault is cached or returned. Check with errors.Is.
var ErrQuarantined = errors.New("engine: documents quarantined during evaluation")

// maxQuarantineRestarts bounds the restart fixpoint; each restart
// quarantines at least one more document, so this is a safety net for a
// pathological corpus where a large fraction of documents fault.
const maxQuarantineRestarts = 100

// quarantineSet is the immutable current quarantine state, swapped
// atomically so the fault-free fast path is one nil check. suffix is the
// cache-key component that keeps evaluations over different survivor
// sets from aliasing.
type quarantineSet struct {
	barred  map[string]bool
	records []compact.QuarantineRecord
	suffix  string
}

// quarantined returns the current quarantine set, or nil when no
// document has been quarantined.
func (ctx *Context) quarantined() *quarantineSet { return ctx.qstate.Load() }

// tupleBarred reports whether any document feeding the tuple is
// quarantined; scans drop such tuples, exactly like the subset filter.
func (q *quarantineSet) tupleBarred(tp compact.Tuple) bool {
	for _, cell := range tp.Cells {
		for _, a := range cell.Assigns {
			if q.barred[a.Span.Doc().ID()] {
				return true
			}
		}
	}
	return false
}

// QuarantinedDocs returns the sorted IDs of all currently quarantined
// documents (empty when none).
func (ctx *Context) QuarantinedDocs() []string {
	q := ctx.qstate.Load()
	if q == nil {
		return nil
	}
	ids := make([]string, 0, len(q.barred))
	for id := range q.barred {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// quarantineDocs adds documents to the quarantine, recording one
// QuarantineRecord per newly barred document. The set is copy-on-write:
// readers hold the old pointer safely while the new one (with a rebuilt
// cache-key suffix) is swapped in.
func (ctx *Context) quarantineDocs(op, cause string, docs []string) {
	statAdd(&ctx.Stats.QuarantineEvents, 1)
	ctx.qmu.Lock()
	defer ctx.qmu.Unlock()
	old := ctx.qstate.Load()
	ns := &quarantineSet{barred: map[string]bool{}}
	if old != nil {
		for id := range old.barred {
			ns.barred[id] = true
		}
		ns.records = append(ns.records, old.records...)
	}
	added := false
	for _, d := range docs {
		if ns.barred[d] {
			continue
		}
		ns.barred[d] = true
		ns.records = append(ns.records, compact.QuarantineRecord{Doc: d, Op: op, Cause: cause})
		added = true
	}
	if !added {
		return
	}
	ids := make([]string, 0, len(ns.barred))
	for id := range ns.barred {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ns.suffix = "|quarantine:" + strings.Join(ids, ",")
	ctx.qstate.Store(ns)
	atomic.StoreInt64(&ctx.Stats.QuarantinedDocs, int64(len(ns.barred)))
}

// recoveredPanic marks an error produced by recovering a panic inside a
// guarded unit, so the retry policy can skip retries (a panic is not
// transient).
type recoveredPanic struct{ val any }

func (p recoveredPanic) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// guard runs one per-document unit of user code — a p-function
// valuation pass over a tuple, a feature constraint refinement, a
// procedure call — under the context's fault policy.
//
// Under FailFast it adds nothing: errors propagate and panics unwind as
// they always did. Under QuarantineFaults a transient error is retried
// up to MaxDocRetries times (run must therefore be idempotent: compute
// into locals, commit only after guard reports success); a persistent
// error or a panic quarantines the documents docsFn names, and the
// caller drops the unit and continues its pass. The Env's FaultHook, if
// set, is invoked first with the same documents so injected faults are
// handled exactly like faults in the user code itself.
//
// Returns quarantined=true when the unit's documents were quarantined
// (the caller skips the unit), or a non-nil err under FailFast.
func (ctx *Context) guard(ev *EvalTrace, op string, docsFn func() []string, run func() error) (quarantined bool, err error) {
	hook := ctx.Env.FaultHook
	if ctx.FaultPolicy != QuarantineFaults {
		if hook != nil {
			if err := hook(op, docsFn()); err != nil {
				return false, err
			}
		}
		return false, run()
	}
	docs := docsFn()
	attempt := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = recoveredPanic{val: r}
			}
		}()
		if hook != nil {
			if err := hook(op, docs); err != nil {
				return err
			}
		}
		return run()
	}
	ferr := attempt()
	if ferr == nil {
		return false, nil
	}
	retries := ctx.MaxDocRetries
	if retries == 0 {
		retries = 1
	} else if retries < 0 {
		retries = 0
	}
	var rp recoveredPanic
	for r := 0; r < retries && !errors.As(ferr, &rp); r++ {
		statAdd(&ctx.Stats.QuarantineRetries, 1)
		if ferr = attempt(); ferr == nil {
			return false, nil
		}
	}
	ctx.quarantineDocs(op, ferr.Error(), docs)
	ev.quarantine(1)
	return true, nil
}

// quarantineErr wraps the sentinel with the operator and count for error
// messages; errors.Is(err, ErrQuarantined) still matches.
func quarantineErr(op string, n int64) error {
	return fmt.Errorf("%s pass quarantined documents (%d units dropped): %w", op, n, ErrQuarantined)
}

// evalRetrying evaluates a node through the cache, restarting after
// quarantine: a pass that faulted returns ErrQuarantined (its output is
// never cached), the newly barred documents drop out at the scans, and
// the re-evaluation — under a cache-key marker that now names the
// survivor set — runs clean. The fixpoint terminates because every
// restart bars at least one more document.
func evalRetrying(ctx *Context, n Node) (*compact.Table, error) {
	t, err := Eval(ctx, n)
	for restarts := 0; err != nil && errors.Is(err, ErrQuarantined); restarts++ {
		if restarts >= maxQuarantineRestarts {
			return nil, fmt.Errorf("engine: evaluation kept faulting after %d quarantine restarts: %w", restarts, err)
		}
		statAdd(&ctx.Stats.EvalRestarts, 1)
		t, err = Eval(ctx, n)
	}
	return t, err
}

// tupleDocs returns the sorted, deduplicated IDs of the documents
// feeding the given cells of a tuple (nil involved = all cells) — the
// quarantine attribution set for a fault while processing the tuple.
func tupleDocs(tp compact.Tuple, involved []int) []string {
	seen := map[string]bool{}
	add := func(cell compact.Cell) {
		for _, a := range cell.Assigns {
			seen[a.Span.Doc().ID()] = true
		}
	}
	if involved == nil {
		for _, cell := range tp.Cells {
			add(cell)
		}
	} else {
		for _, ci := range involved {
			add(tp.Cells[ci])
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// fnv64More continues an FNV-1a hash over more bytes; subsetKey uses it
// to fold the quarantine suffix into the memoised subset hash.
func fnv64More(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
