package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/similarity"
	"iflex/internal/text"
)

// valuePred is a predicate over one concrete value per involved column.
type valuePred func(vals []text.Span) (bool, error)

// colPred is a single-column conjunct: it tests one value of one involved
// column in isolation.
type colPred func(v text.Span) (bool, error)

// idxPred tests one valuation, identified by the value index chosen for
// each involved column (idx[i] indexes the column's enumerated values).
type idxPred func(idx []int) (bool, error)

// factoredPred is a conjunctive tuple predicate factored by column: a
// valuation satisfies it iff every per-column conjunct accepts its value
// AND the residual (when present) accepts the combination.
//
//   - cols[i], when non-nil, is evaluated once per value of involved
//     column i — O(Σ|vals|) work instead of a factor of the cross product.
//   - prepare, when non-nil, builds the residual predicate after
//     precomputing whatever per-value state it needs (parsed operands,
//     normalised token slices); the returned idxPred then runs only over
//     combinations of values that passed their conjuncts.
//
// The residual counts its own predicate evaluations into the batch given
// to prepare (conjunct evaluations are counted by filterTupleF), so a
// residual that rejects a combination with a cheap necessary-condition
// check — the filter step of filter-and-verify — does not inflate
// FuncCalls with evaluations that never ran.
//
// A predicate with no residual never enumerates the cross product at all.
type factoredPred struct {
	cols    []colPred
	prepare func(vals [][]text.Span, batch *statBatch) (idxPred, error)
}

// genericPred lifts an opaque valuePred into a residual-only factoredPred
// (no per-column decomposition), preserving the classic full-odometer
// behaviour for callers that cannot factor their condition.
func genericPred(pred valuePred, arity int) factoredPred {
	return factoredPred{
		cols: make([]colPred, arity),
		prepare: func(vals [][]text.Span, batch *statBatch) (idxPred, error) {
			cur := make([]text.Span, len(vals))
			return func(idx []int) (bool, error) {
				for i, j := range idx {
					cur[i] = vals[i][j]
				}
				batch.funcCalls++
				return pred(cur)
			}, nil
		},
	}
}

// filterOutcome is the result of applying a predicate to one compact tuple
// with superset semantics.
type filterOutcome struct {
	keep     bool
	sure     bool                 // every valuation satisfies, precisely
	repl     map[int]compact.Cell // replacement cells for filtered expansion columns
	fallback bool                 // kept conservatively: enumeration exceeded Limits
}

// filterScratch pools the per-call working set of filterTupleF: the value
// lists, per-value conjunct verdicts, satisfied flags, and odometer
// positions. One scratch serves one call at a time (callers never hold it
// across predicate evaluations of other tuples).
type filterScratch struct {
	vals [][]text.Span
	pass [][]bool
	sat  [][]bool
	keep [][]int
	idx  []int
	cur  []int
}

var scratchPool = sync.Pool{New: func() any { return &filterScratch{} }}

// grow resizes the scratch for n involved columns, reusing inner slices.
func (sc *filterScratch) grow(n int) {
	for len(sc.vals) < n {
		sc.vals = append(sc.vals, nil)
		sc.pass = append(sc.pass, nil)
		sc.sat = append(sc.sat, nil)
		sc.keep = append(sc.keep, nil)
	}
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
		sc.cur = make([]int, n)
	}
}

// boolRow returns dst resized to n entries, all false.
func boolRow(dst []bool, n int) []bool {
	if cap(dst) < n {
		return make([]bool, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = false
	}
	return dst
}

// filterTuple evaluates an opaque predicate over every valuation of the
// involved columns — the unfactored entry point kept for predicates with
// no per-column structure (and for tests exercising the odometer).
func filterTuple(tp compact.Tuple, involved []int, pred valuePred, lim Limits, stats *Stats) (filterOutcome, error) {
	var batch statBatch
	res, err := filterTupleF(tp, involved, genericPred(pred, len(involved)), lim, &batch)
	if stats != nil {
		batch.flushTo(stats)
	}
	return res, err
}

// filterTupleF evaluates a factored predicate over one compact tuple
// (Section 4.1) with superset semantics:
//
//   - keep the tuple if any valuation satisfies; mark it maybe unless all do
//   - expansion cells stand for one tuple per value, so their values are
//     filtered down to those participating in a satisfying valuation
//   - when value enumeration exceeds the limits, fall back to keeping the
//     tuple as maybe — conservative but superset-safe; per-column conjunct
//     verdicts already decided are still applied (dropping a value whose
//     conjunct failed can never drop a satisfying valuation)
//
// The residual odometer runs only over values that passed their conjuncts
// and short-circuits once the keep/maybe verdict is decided and every
// expansion column's satisfied-set is saturated. Conjunct evaluations are
// counted into batch (FuncCalls) here; residual evaluations count
// themselves (see factoredPred).
func filterTupleF(tp compact.Tuple, involved []int, fp factoredPred, lim Limits, batch *statBatch) (filterOutcome, error) {
	sc := scratchPool.Get().(*filterScratch)
	defer scratchPool.Put(sc)
	sc.grow(len(involved))
	conservative := filterOutcome{keep: true, fallback: true}

	// Enumerate the value list of each involved cell, bailing out to the
	// fully conservative outcome when any single cell is too large.
	vals := sc.vals[:len(involved)]
	for i, ci := range involved {
		cell := tp.Cells[ci]
		if cell.NumValues() > lim.MaxCellValues {
			return conservative, nil
		}
		vs := vals[i][:0]
		cell.Values(func(s text.Span) bool {
			vs = append(vs, s)
			return true
		})
		if len(vs) == 0 {
			return filterOutcome{keep: false}, nil
		}
		vals[i] = vs
	}

	// Per-column conjunct passes: pass[i][j] records whether value j of
	// column i satisfies its conjunct; keep[i] lists the passing indices.
	// A column with no passing value kills the tuple outright (the overall
	// predicate is a conjunction).
	anyColFailed := false
	for i := range involved {
		n := len(vals[i])
		pass := boolRow(sc.pass[i], n)
		kp := sc.keep[i][:0]
		cp := fp.cols[i]
		if cp == nil {
			for j := 0; j < n; j++ {
				pass[j] = true
				kp = append(kp, j)
			}
		} else {
			for j := 0; j < n; j++ {
				batch.funcCalls++
				ok, err := cp(vals[i][j])
				if err != nil {
					return filterOutcome{}, err
				}
				pass[j] = ok
				if ok {
					kp = append(kp, j)
				} else {
					anyColFailed = true
				}
			}
			if len(kp) == 0 {
				return filterOutcome{keep: false}, nil
			}
		}
		sc.pass[i], sc.keep[i] = pass, kp
	}

	// Fully factored predicate: the conjunct verdicts decide everything —
	// a value participates in a satisfying valuation iff it passed (every
	// other column has at least one passing value).
	if fp.prepare == nil {
		if !anyColFailed {
			return filterOutcome{keep: true, sure: true}, nil
		}
		out := filterOutcome{keep: true}
		return finishRepl(out, tp, involved, sc.pass)
	}

	// Residual odometer over passing values only. The combination count is
	// checked against the restricted product, so conjuncts shrink the
	// valuation space before the limit applies.
	combos := 1
	for i := range involved {
		combos *= len(sc.keep[i])
		if combos > lim.MaxValuations {
			// Conservative keep, but per-column verdicts already decided
			// still filter the expansion cells (superset-safe: a value whose
			// conjunct failed satisfies no valuation).
			if !anyColFailed {
				return conservative, nil
			}
			out, err := finishRepl(filterOutcome{keep: true, fallback: true}, tp, involved, sc.pass)
			out.fallback = true
			return out, err
		}
	}
	res, err := fp.prepare(vals, batch)
	if err != nil {
		return filterOutcome{}, err
	}

	// satNeeded marks expansion columns: only their satisfied-sets matter
	// for output filtering, so saturation is tracked on them alone.
	satRemaining := 0
	for i, ci := range involved {
		if tp.Cells[ci].Expand {
			sc.sat[i] = boolRow(sc.sat[i], len(vals[i]))
			satRemaining += len(sc.keep[i])
		} else {
			sc.sat[i] = nil
		}
	}

	idx := sc.idx[:len(involved)]
	cur := sc.cur[:len(involved)]
	for i := range idx {
		idx[i] = 0
	}
	anySat, allSat := false, true
	for {
		for i, p := range idx {
			cur[i] = sc.keep[i][p]
		}
		ok, err := res(cur)
		if err != nil {
			return filterOutcome{}, err
		}
		if ok {
			anySat = true
			for i := range idx {
				if sc.sat[i] != nil && !sc.sat[i][cur[i]] {
					sc.sat[i][cur[i]] = true
					satRemaining--
				}
			}
		} else {
			allSat = false
		}
		// Short-circuit: once some valuation satisfies, some fails (here or
		// in a conjunct), and every expansion value's fate is decided,
		// remaining combinations cannot change the outcome.
		if anySat && (anyColFailed || !allSat) && satRemaining == 0 {
			break
		}
		// advance the odometer
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(sc.keep[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	if !anySat {
		return filterOutcome{keep: false}, nil
	}
	if allSat && !anyColFailed {
		return filterOutcome{keep: true, sure: true}, nil
	}
	// A value participates in a satisfying valuation iff the residual
	// marked it; merge that into pass[i] for expansion columns.
	for i := range involved {
		if sc.sat[i] != nil {
			sc.pass[i] = sc.sat[i]
		}
	}
	return finishRepl(filterOutcome{keep: true}, tp, involved, sc.pass)
}

// finishRepl rebuilds filtered expansion cells: values with no satisfying
// valuation (pass[i][j] == false) denote expanded tuples that certainly
// fail, so they are dropped. Non-expansion cells are left untouched.
func finishRepl(out filterOutcome, tp compact.Tuple, involved []int, pass [][]bool) (filterOutcome, error) {
	for i, ci := range involved {
		cell := tp.Cells[ci]
		if !cell.Expand {
			continue
		}
		var kept []text.Assignment
		j := 0
		changed := false
		for _, a := range cell.Assigns {
			n := a.NumValues()
			allKept, noneKept := true, true
			for v := 0; v < n; v++ {
				if pass[i][j+v] {
					noneKept = false
				} else {
					allKept = false
				}
			}
			if allKept {
				kept = append(kept, a)
			} else {
				changed = true
				if !noneKept {
					v := 0
					row := pass[i]
					base := j
					a.Values(func(s text.Span) bool {
						if row[base+v] {
							kept = append(kept, text.ExactOf(s))
						}
						v++
						return true
					})
				}
			}
			j += n
		}
		if len(kept) == 0 {
			return filterOutcome{keep: false}, nil
		}
		if changed {
			if out.repl == nil {
				out.repl = map[int]compact.Cell{}
			}
			out.repl[ci] = compact.Cell{Assigns: kept, Expand: true}
		}
	}
	return out, nil
}

// applyFilter runs filterTupleF over a whole table, producing the selected
// table with maybe flags and expansion-cell filtering applied. Tuples are
// independent, so the loop is partitioned across the context's worker
// pool; per-index result slots keep the output order serial-identical.
// The predicate must therefore be safe for concurrent calls (the built-in
// p-functions and comparison operands are pure). Stat deltas batch per
// chunk and flush once, so hot loops pay no per-call atomics. With a
// delta prior attached (dx), structurally unchanged input tuples replay
// their memoised outcome — including the valuation-cap fallback charge —
// without re-running the predicate.
func applyFilter(ctx *Context, ev *EvalTrace, dx *deltaState, in *compact.Table, involved []int, fp factoredPred) (*compact.Table, error) {
	lim := ctx.Env.Limits
	out := compact.NewTable(in.Cols...)
	// The memo is keyed on the involved columns alone and stores the
	// filter's outcome (keep/sure/replacements), not the built tuple:
	// replay rebuilds the output from the current tuple, so refinements of
	// uninvolved columns — and maybe-flag changes, reapplied here — do not
	// invalidate it.
	prior, fps := dx.prep(in, involved, nil, 0)
	var fbs []int32
	var outs []*filterOutcome
	if fps != nil {
		fbs = make([]int32, len(in.Tuples))
		outs = make([]*filterOutcome, len(in.Tuples))
	}
	rows := make([]*compact.Tuple, len(in.Tuples))
	// nq counts tuples dropped by quarantine, ncut the chunks cut short by
	// a best-effort cancellation; either way the pass's delta memo is
	// abandoned (it would have holes) and quarantine additionally discards
	// the output via the restart sentinel.
	var nq, ncut atomic.Int64
	err := ctx.parallelChunksSized(len(in.Tuples), minChunkFilter, func(start, end int) error {
		var batch statBatch
		defer batch.flush(ctx)
		reused := 0
		for i := start; i < end; i++ {
			if cut, cerr := ctx.cutCheck(); cerr != nil {
				return cerr
			} else if cut {
				ctx.noteUnprocessed(in.Tuples[i:end])
				ncut.Add(1)
				break
			}
			tp := in.Tuples[i]
			if fps != nil {
				fps[i] = dx.aux.fpOf(tp)
				if old, ok := prior.lookup(fps[i], tp); ok {
					fo := old.filt
					if fo.keep {
						nt := tp.Copy()
						for ci, cell := range fo.repl {
							nt.Cells[ci] = cell
						}
						if !fo.sure {
							nt.Maybe = true
						}
						rows[i] = &nt
					}
					outs[i] = fo
					fbs[i] = old.fallbacks
					ev.fallback(ctx, int(old.fallbacks))
					reused++
					continue
				}
			}
			batch.tuplesRecomputed++
			var res filterOutcome
			qed, err := ctx.guard(ev, "pfunc", func() []string { return tupleDocs(tp, involved) }, func() error {
				var ferr error
				res, ferr = filterTupleF(tp, involved, fp, lim, &batch)
				return ferr
			})
			if err != nil {
				return err
			}
			if qed {
				nq.Add(1)
				continue
			}
			if outs != nil {
				ro := res
				outs[i] = &ro
			}
			if res.fallback {
				ev.fallback(ctx, 1)
				if fbs != nil {
					fbs[i] = 1
				}
			}
			if !res.keep {
				continue
			}
			nt := tp.Copy()
			for ci, cell := range res.repl {
				nt.Cells[ci] = cell
			}
			if !res.sure {
				nt.Maybe = true
			}
			rows[i] = &nt
		}
		dx.noteReused(&batch, reused)
		ev.recompute(batch.tuplesRecomputed)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n := nq.Load(); n > 0 {
		return nil, quarantineErr("pfunc", n)
	}
	for _, nt := range rows {
		if nt != nil {
			out.Tuples = append(out.Tuples, *nt)
		}
	}
	if ncut.Load() == 0 {
		dx.finish(in, func(i int) deltaOut {
			o := deltaOut{filt: outs[i]}
			if fbs != nil {
				o.fallbacks = fbs[i]
			}
			return o
		})
	}
	return out, nil
}

// compareNode is a selection with a comparison condition, e.g. p > 500000.
type compareNode struct {
	nodeSig
	parent Node
	cmp    alog.Compare
}

func newCompareNode(parent Node, cmp alog.Compare) *compareNode {
	return &compareNode{
		nodeSig: sigOf(fmt.Sprintf("select[%s](%s)", cmp, parent.Signature())),
		parent:  parent, cmp: cmp,
	}
}

func (n *compareNode) Columns() []string { return n.parent.Columns() }
func (n *compareNode) Children() []Node  { return []Node{n.parent} }

// constTerm resolves a non-variable comparison term to its operand.
func constTerm(t alog.Term) operand {
	switch t.Kind {
	case alog.TermNum:
		return operand{isNum: true, num: t.Num}
	case alog.TermStr:
		return operand{str: t.Str}
	}
	return operand{isNull: true}
}

func (n *compareNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	op := n.cmp.Op
	offset := n.cmp.ROffset
	// withOffset applies the rule's numeric offset to the right operand;
	// offsets only apply to numeric right sides.
	compare := func(l, r operand) (bool, error) {
		if offset != 0 {
			if !r.isNum {
				return false, nil
			}
			r.num += offset
		}
		return compareOperands(op, l, r)
	}
	lVar, rVar := n.cmp.L.Kind == alog.TermVar, n.cmp.R.Kind == alog.TermVar
	switch {
	case lVar && rVar:
		// var ⋈ var: precompute both columns' operands once per value, then
		// run the cheap residual over the (early-terminated) cross product.
		involved := []int{colIndex(in.Cols, n.cmp.L.Var), colIndex(in.Cols, n.cmp.R.Var)}
		fp := factoredPred{
			cols: make([]colPred, 2),
			prepare: func(vals [][]text.Span, batch *statBatch) (idxPred, error) {
				lops := make([]operand, len(vals[0]))
				for j, v := range vals[0] {
					lops[j] = spanOperand(v)
				}
				rops := make([]operand, len(vals[1]))
				for j, v := range vals[1] {
					rops[j] = spanOperand(v)
				}
				return func(idx []int) (bool, error) {
					batch.funcCalls++
					return compare(lops[idx[0]], rops[idx[1]])
				}, nil
			},
		}
		return applyFilter(ctx, ev, dx, in, involved, fp)
	case lVar:
		// var ⋈ const: a pure single-column conjunct — O(|vals|) per tuple.
		involved := []int{colIndex(in.Cols, n.cmp.L.Var)}
		r := constTerm(n.cmp.R)
		fp := factoredPred{cols: []colPred{func(v text.Span) (bool, error) {
			return compare(spanOperand(v), r)
		}}}
		return applyFilter(ctx, ev, dx, in, involved, fp)
	case rVar:
		involved := []int{colIndex(in.Cols, n.cmp.R.Var)}
		l := constTerm(n.cmp.L)
		fp := factoredPred{cols: []colPred{func(v text.Span) (bool, error) {
			return compare(l, spanOperand(v))
		}}}
		return applyFilter(ctx, ev, dx, in, involved, fp)
	default:
		// const ⋈ const: one evaluation decides every tuple.
		ok, err := compare(constTerm(n.cmp.L), constTerm(n.cmp.R))
		if err != nil {
			return nil, err
		}
		out := compact.NewTable(in.Cols...)
		if ok {
			out.Tuples = append(out.Tuples, in.Tuples...)
		}
		return out, nil
	}
}

// operand is one side of a comparison at valuation time.
type operand struct {
	isNum  bool
	num    float64
	str    string
	isNull bool
}

// spanOperand converts a value span: numeric when it parses, NULL when
// empty, string otherwise.
func spanOperand(s text.Span) operand {
	if n, ok := s.Numeric(); ok {
		return operand{isNum: true, num: n}
	}
	t := s.NormText()
	if t == "" {
		return operand{isNull: true}
	}
	return operand{str: t}
}

// compareOperands implements the comparison semantics: NULL equals only
// NULL and is ordered below everything; numbers compare numerically;
// otherwise strings compare lexically.
func compareOperands(op alog.CompareOp, a, b operand) (bool, error) {
	if a.isNull || b.isNull {
		eq := a.isNull && b.isNull
		switch op {
		case alog.OpEQ:
			return eq, nil
		case alog.OpNE:
			return !eq, nil
		default:
			return false, nil // ordering with NULL never holds
		}
	}
	var c int
	if a.isNum && b.isNum {
		switch {
		case a.num < b.num:
			c = -1
		case a.num > b.num:
			c = 1
		}
	} else if !a.isNum && !b.isNum {
		c = strings.Compare(a.str, b.str)
	} else {
		// Mixed number/string never compares equal and has no order.
		if op == alog.OpNE {
			return true, nil
		}
		return false, nil
	}
	switch op {
	case alog.OpLT:
		return c < 0, nil
	case alog.OpLE:
		return c <= 0, nil
	case alog.OpGT:
		return c > 0, nil
	case alog.OpGE:
		return c >= 0, nil
	case alog.OpEQ:
		return c == 0, nil
	case alog.OpNE:
		return c != 0, nil
	}
	return false, fmt.Errorf("engine: unknown comparison operator %q", op)
}

// funcNode is a selection with a boolean p-function condition, e.g.
// approxMatch(h, s).
type funcNode struct {
	nodeSig
	parent Node
	fname  string
	args   []alog.Term
}

func newFuncNode(parent Node, fname string, args []alog.Term) *funcNode {
	strs := make([]string, len(args))
	for i, a := range args {
		strs[i] = a.String()
	}
	return &funcNode{
		nodeSig: sigOf(fmt.Sprintf("pfunc[%s(%s)](%s)", fname, strings.Join(strs, ","), parent.Signature())),
		parent:  parent, fname: fname, args: args,
	}
}

func (n *funcNode) Columns() []string { return n.parent.Columns() }
func (n *funcNode) Children() []Node  { return []Node{n.parent} }

func (n *funcNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	fn, ok := ctx.Env.Funcs[n.fname]
	if !ok {
		return nil, fmt.Errorf("engine: p-function %q not bound", n.fname)
	}
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	var involved []int
	for _, a := range n.args {
		if a.Kind != alog.TermVar {
			return nil, fmt.Errorf("engine: p-function %s: only variable arguments are supported, got %s", n.fname, a)
		}
		involved = append(involved, colIndex(in.Cols, a.Var))
	}
	// Token fast path: a binary p-function with a token-slice twin (similar,
	// approxMatch) compares pre-normalised token slices, tokenising each
	// value once per tuple instead of once per valuation.
	if tokenFn := ctx.Env.TokenSimilar[n.fname]; tokenFn != nil && len(involved) == 2 {
		fp := factoredPred{
			cols: make([]colPred, 2),
			prepare: func(vals [][]text.Span, batch *statBatch) (idxPred, error) {
				ltoks := tokenizeValues(ctx, vals[0])
				rtoks := tokenizeValues(ctx, vals[1])
				return tokenResidual(tokenFn, ltoks, rtoks, batch), nil
			},
		}
		return applyFilter(ctx, ev, dx, in, involved, fp)
	}
	fp := factoredPred{
		cols: make([]colPred, len(involved)),
		prepare: func(vals [][]text.Span, batch *statBatch) (idxPred, error) {
			args := make([]text.Span, len(vals))
			return func(idx []int) (bool, error) {
				for i, j := range idx {
					args[i] = vals[i][j]
				}
				batch.funcCalls++
				return fn(args)
			}, nil
		},
	}
	return applyFilter(ctx, ev, dx, in, involved, fp)
}

// tokenizeValues normalises and tokenises each value span once. A
// whole-document span is answered from the document index when one is
// attached — the stored sequence equals NormalizedTokens(span.NormText())
// for the whole page, so no page text is touched. (An empty stored list
// stays as-is: the shared-token residual treats empty and nil alike.)
func tokenizeValues(ctx *Context, vals []text.Span) [][]string {
	out := make([][]string, len(vals))
	di := ctx.Env.DocIndex
	for i, v := range vals {
		if di != nil {
			if d := v.Doc(); d != nil && v.Start() == 0 && v.End() == d.Len() {
				if toks, ok := di.NormTokens(d); ok && toks != nil {
					statAdd(&ctx.Stats.IndexTokenHits, 1)
					out[i] = toks
					continue
				}
			}
		}
		out[i] = similarity.NormalizedTokens(v.NormText())
	}
	return out
}

// sharesToken reports whether the two token slices have a token in
// common. Token lists are short (a handful of words per value), so the
// nested scan beats building a set.
func sharesToken(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// tokenResidual builds the residual for a token-similarity predicate
// using filter-and-verify: every built-in token similarity (normalised
// equality, token-prefix containment, Jaccard >= 0.6) requires at least
// one shared token — the same guarantee the join blocking rests on — so
// a cheap shared-token check rejects most pairs before the full
// similarity computation runs (and is counted).
func tokenResidual(tokenFn func(a, b []string) bool, ltoks, rtoks [][]string, batch *statBatch) idxPred {
	return func(idx []int) (bool, error) {
		l, r := ltoks[idx[0]], rtoks[idx[1]]
		if !sharesToken(l, r) {
			return false, nil
		}
		batch.funcCalls++
		return tokenFn(l, r), nil
	}
}
