package engine

import (
	"fmt"
	"strings"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/text"
)

// valuePred is a predicate over one concrete value per involved column.
type valuePred func(vals []text.Span) (bool, error)

// filterOutcome is the result of applying a predicate to one compact tuple
// with superset semantics.
type filterOutcome struct {
	keep     bool
	sure     bool                 // every valuation satisfies, precisely
	repl     map[int]compact.Cell // replacement cells for filtered expansion columns
	fallback bool                 // kept conservatively: enumeration exceeded Limits
}

// filterTuple evaluates pred over every possible valuation of the involved
// columns of tp (Section 4.1):
//
//   - keep the tuple if any valuation satisfies; mark it maybe unless all do
//   - expansion cells stand for one tuple per value, so their values are
//     filtered down to those participating in a satisfying valuation
//   - when value enumeration exceeds the limits, fall back to keeping the
//     tuple as maybe without filtering — conservative but superset-safe
func filterTuple(tp compact.Tuple, involved []int, pred valuePred, lim Limits, stats *Stats) (filterOutcome, error) {
	conservative := filterOutcome{keep: true, sure: false, fallback: true}
	// Enumerate the value list of each involved cell, bailing out to the
	// conservative outcome when any single cell is too large.
	vals := make([][]text.Span, len(involved))
	combos := 1
	for i, ci := range involved {
		cell := tp.Cells[ci]
		if cell.NumValues() > lim.MaxCellValues {
			return conservative, nil
		}
		var vs []text.Span
		cell.Values(func(s text.Span) bool {
			vs = append(vs, s)
			return true
		})
		if len(vs) == 0 {
			return filterOutcome{keep: false}, nil
		}
		vals[i] = vs
		combos *= len(vs)
		if combos > lim.MaxValuations {
			return conservative, nil
		}
	}

	// satisfied[i][j] records whether value j of involved cell i appears in
	// at least one satisfying valuation.
	satisfied := make([][]bool, len(involved))
	for i := range satisfied {
		satisfied[i] = make([]bool, len(vals[i]))
	}
	idx := make([]int, len(involved))
	cur := make([]text.Span, len(involved))
	anySat, allSat := false, true
	for {
		for i, j := range idx {
			cur[i] = vals[i][j]
		}
		ok, err := pred(cur)
		if err != nil {
			return filterOutcome{}, err
		}
		if stats != nil {
			statAdd(&stats.FuncCalls, 1)
		}
		if ok {
			anySat = true
			for i, j := range idx {
				satisfied[i][j] = true
			}
		} else {
			allSat = false
		}
		// advance the odometer
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(vals[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	if !anySat {
		return filterOutcome{keep: false}, nil
	}
	out := filterOutcome{keep: true, sure: allSat}
	if allSat {
		return out, nil
	}
	// Rebuild filtered expansion cells: values with no satisfying valuation
	// denote expanded tuples that certainly fail, so they are dropped.
	out.repl = map[int]compact.Cell{}
	for i, ci := range involved {
		cell := tp.Cells[ci]
		if !cell.Expand {
			continue
		}
		var kept []text.Assignment
		j := 0
		for _, a := range cell.Assigns {
			n := a.NumValues()
			allKept, noneKept := true, true
			var exacts []text.Assignment
			for v := 0; v < n; v++ {
				if satisfied[i][j+v] {
					noneKept = false
				} else {
					allKept = false
				}
			}
			if allKept {
				kept = append(kept, a)
			} else if !noneKept {
				v := 0
				a.Values(func(s text.Span) bool {
					if satisfied[i][j+v] {
						exacts = append(exacts, text.ExactOf(s))
					}
					v++
					return true
				})
				kept = append(kept, exacts...)
			}
			j += n
		}
		if len(kept) == 0 {
			return filterOutcome{keep: false}, nil
		}
		out.repl[ci] = compact.Cell{Assigns: kept, Expand: true}
	}
	return out, nil
}

// applyFilter runs filterTuple over a whole table, producing the selected
// table with maybe flags and expansion-cell filtering applied. Tuples are
// independent, so the loop is partitioned across the context's worker
// pool; per-index result slots keep the output order serial-identical.
// The predicate must therefore be safe for concurrent calls (the built-in
// p-functions and comparison operands are pure).
func applyFilter(ctx *Context, ev *EvalTrace, in *compact.Table, involved []int, pred valuePred) (*compact.Table, error) {
	lim := ctx.Env.Limits
	out := compact.NewTable(in.Cols...)
	rows := make([]*compact.Tuple, len(in.Tuples))
	err := ctx.parallelChunks(len(in.Tuples), func(start, end int) error {
		for i := start; i < end; i++ {
			tp := in.Tuples[i]
			res, err := filterTuple(tp, involved, pred, lim, &ctx.Stats)
			if err != nil {
				return err
			}
			if res.fallback {
				ev.fallback(ctx, 1)
			}
			if !res.keep {
				continue
			}
			nt := tp.Clone()
			for ci, cell := range res.repl {
				nt.Cells[ci] = cell
			}
			if !res.sure {
				nt.Maybe = true
			}
			rows[i] = &nt
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, nt := range rows {
		if nt != nil {
			out.Tuples = append(out.Tuples, *nt)
		}
	}
	return out, nil
}

// compareNode is a selection with a comparison condition, e.g. p > 500000.
type compareNode struct {
	parent Node
	cmp    alog.Compare
	sig    string
}

func newCompareNode(parent Node, cmp alog.Compare) *compareNode {
	return &compareNode{
		parent: parent, cmp: cmp,
		sig: fmt.Sprintf("select[%s](%s)", cmp, parent.Signature()),
	}
}

func (n *compareNode) Signature() string { return n.sig }
func (n *compareNode) Columns() []string { return n.parent.Columns() }
func (n *compareNode) Children() []Node  { return []Node{n.parent} }

func (n *compareNode) eval(ctx *Context, ev *EvalTrace) (*compact.Table, error) {
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	var involved []int
	var sides []func(vals []text.Span) operand // lazily resolve L and R
	addSide := func(t alog.Term) {
		switch t.Kind {
		case alog.TermVar:
			pos := len(involved)
			involved = append(involved, colIndex(in.Cols, t.Var))
			sides = append(sides, func(vals []text.Span) operand { return spanOperand(vals[pos]) })
		case alog.TermNum:
			num := t.Num
			sides = append(sides, func([]text.Span) operand { return operand{isNum: true, num: num} })
		case alog.TermStr:
			str := t.Str
			sides = append(sides, func([]text.Span) operand { return operand{str: str} })
		case alog.TermNull:
			sides = append(sides, func([]text.Span) operand { return operand{isNull: true} })
		}
	}
	addSide(n.cmp.L)
	addSide(n.cmp.R)
	op := n.cmp.Op
	offset := n.cmp.ROffset
	pred := func(vals []text.Span) (bool, error) {
		l, r := sides[0](vals), sides[1](vals)
		if offset != 0 {
			if !r.isNum {
				return false, nil // offsets only apply to numeric right sides
			}
			r.num += offset
		}
		return compareOperands(op, l, r)
	}
	return applyFilter(ctx, ev, in, involved, pred)
}

// operand is one side of a comparison at valuation time.
type operand struct {
	isNum  bool
	num    float64
	str    string
	isNull bool
}

// spanOperand converts a value span: numeric when it parses, NULL when
// empty, string otherwise.
func spanOperand(s text.Span) operand {
	if n, ok := s.Numeric(); ok {
		return operand{isNum: true, num: n}
	}
	t := s.NormText()
	if t == "" {
		return operand{isNull: true}
	}
	return operand{str: t}
}

// compareOperands implements the comparison semantics: NULL equals only
// NULL and is ordered below everything; numbers compare numerically;
// otherwise strings compare lexically.
func compareOperands(op alog.CompareOp, a, b operand) (bool, error) {
	if a.isNull || b.isNull {
		eq := a.isNull && b.isNull
		switch op {
		case alog.OpEQ:
			return eq, nil
		case alog.OpNE:
			return !eq, nil
		default:
			return false, nil // ordering with NULL never holds
		}
	}
	var c int
	if a.isNum && b.isNum {
		switch {
		case a.num < b.num:
			c = -1
		case a.num > b.num:
			c = 1
		}
	} else if !a.isNum && !b.isNum {
		c = strings.Compare(a.str, b.str)
	} else {
		// Mixed number/string never compares equal and has no order.
		if op == alog.OpNE {
			return true, nil
		}
		return false, nil
	}
	switch op {
	case alog.OpLT:
		return c < 0, nil
	case alog.OpLE:
		return c <= 0, nil
	case alog.OpGT:
		return c > 0, nil
	case alog.OpGE:
		return c >= 0, nil
	case alog.OpEQ:
		return c == 0, nil
	case alog.OpNE:
		return c != 0, nil
	}
	return false, fmt.Errorf("engine: unknown comparison operator %q", op)
}

// funcNode is a selection with a boolean p-function condition, e.g.
// approxMatch(h, s).
type funcNode struct {
	parent Node
	fname  string
	args   []alog.Term
	sig    string
}

func newFuncNode(parent Node, fname string, args []alog.Term) *funcNode {
	strs := make([]string, len(args))
	for i, a := range args {
		strs[i] = a.String()
	}
	return &funcNode{
		parent: parent, fname: fname, args: args,
		sig: fmt.Sprintf("pfunc[%s(%s)](%s)", fname, strings.Join(strs, ","), parent.Signature()),
	}
}

func (n *funcNode) Signature() string { return n.sig }
func (n *funcNode) Columns() []string { return n.parent.Columns() }
func (n *funcNode) Children() []Node  { return []Node{n.parent} }

func (n *funcNode) eval(ctx *Context, ev *EvalTrace) (*compact.Table, error) {
	fn, ok := ctx.Env.Funcs[n.fname]
	if !ok {
		return nil, fmt.Errorf("engine: p-function %q not bound", n.fname)
	}
	in, err := Eval(ctx, n.parent)
	if err != nil {
		return nil, err
	}
	var involved []int
	type argSrc struct {
		pos   int // index into valuation values, or -1
		fixed text.Span
	}
	srcs := make([]argSrc, len(n.args))
	for i, a := range n.args {
		if a.Kind != alog.TermVar {
			return nil, fmt.Errorf("engine: p-function %s: only variable arguments are supported, got %s", n.fname, a)
		}
		srcs[i] = argSrc{pos: len(involved)}
		involved = append(involved, colIndex(in.Cols, a.Var))
	}
	pred := func(vals []text.Span) (bool, error) {
		args := make([]text.Span, len(srcs))
		for i, s := range srcs {
			args[i] = vals[s.pos]
		}
		return fn(args)
	}
	return applyFilter(ctx, ev, in, involved, pred)
}
