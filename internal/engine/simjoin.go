package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"iflex/internal/compact"
	"iflex/internal/similarity"
	"iflex/internal/text"
)

// simJoinNode is the fused approximate string join: cross(left, right)
// followed by a similar/approxMatch filter, evaluated with token blocking
// instead of the full Cartesian product. The paper defers approximate
// string joins to the full technical report [20]; the blocking relies on
// the p-function's guarantee that matching values share at least one
// token, which holds for the default similar/approxMatch (normalised
// equality, token-prefix containment, Jaccard >= 0.6 all require a shared
// token). Pairs whose join cells are too large to enumerate are kept
// conservatively, exactly like crossNode + funcNode would.
type simJoinNode struct {
	nodeSig
	left, right Node
	fname       string
	leftVar     string
	rightVar    string
	cols        []string
}

func newSimJoinNode(left, right Node, fname, leftVar, rightVar string) *simJoinNode {
	n := &simJoinNode{left: left, right: right, fname: fname, leftVar: leftVar, rightVar: rightVar}
	n.cols = append(append([]string(nil), left.Columns()...), right.Columns()...)
	n.nodeSig = sigOf(fmt.Sprintf("simjoin[%s(%s,%s)](%s)(%s)", fname, leftVar, rightVar, left.Signature(), right.Signature()))
	return n
}

func (n *simJoinNode) Columns() []string { return n.cols }
func (n *simJoinNode) Children() []Node  { return []Node{n.left, n.right} }

// wholeDocExact reports whether the cell is a single exact assignment
// covering an entire document, returning that document. Those cells —
// whole pages flowing out of a scan — are the shape the persistent token
// index has precomputed answers for. The check never pages text in
// (Document.Len is metadata).
func wholeDocExact(c compact.Cell) (*text.Document, bool) {
	if len(c.Assigns) != 1 {
		return nil, false
	}
	a := c.Assigns[0]
	d := a.Span.Doc()
	if a.Mode != text.Exact || d == nil || a.Span.Start() != 0 || a.Span.End() != d.Len() {
		return nil, false
	}
	return d, true
}

// blockTokens returns the distinct lower-cased tokens over all value
// regions of a cell, or nil when the cell is too large to enumerate
// (callers treat nil as "matches anything"). With a document index
// attached, a single exact whole-document cell is answered from the
// stored token set — exactly the distinct sorted similarity.Tokens of the
// page text, so the result is identical to tokenizing live but touches no
// page content.
func blockTokens(ctx *Context, c compact.Cell) map[string]bool {
	if c.NumValues() > ctx.Env.Limits.MaxCellValues {
		return nil
	}
	if di := ctx.Env.DocIndex; di != nil {
		if d, ok := wholeDocExact(c); ok {
			if toks, ok := di.BlockTokens(d); ok {
				statAdd(&ctx.Stats.IndexTokenHits, 1)
				out := make(map[string]bool, len(toks))
				for _, tok := range toks {
					out[tok] = true
				}
				return out
			}
		}
	}
	out := map[string]bool{}
	// Tokens of each assignment's span cover the tokens of every encoded
	// value (values are sub-spans).
	for _, a := range c.Assigns {
		for _, tok := range similarity.Tokens(a.Span.Text()) {
			out[tok] = true
		}
	}
	return out
}

// blockIndex serves candidate right-tuple indices by block token for one
// evaluated side of a similarity join; always lists tuples whose cells
// were too large to enumerate. It has two backings: an explicit
// token->tuples map built by tokenizing every right cell, or — when every
// right tuple is a distinct whole document known to the persistent
// inverted index — the postings lists themselves, decoded lazily per
// probed token and translated through tupOf.
type blockIndex struct {
	byToken map[string][]int
	always  []int

	post  PostingsIndex
	tupOf []int32 // doc ordinal -> right tuple index, -1 when absent
	nTup  int

	pmu    sync.RWMutex
	pcache map[string][]int // token -> translated candidates
}

// candidates returns the right-tuple indices whose block-token set may
// contain tok. Order is unspecified; the probe loop dedups and sorts the
// merged candidate set. On the postings backing, a token the index cannot
// answer falls back to every tuple (a superset is always safe — dropping
// candidates would silently under-approximate the join).
func (idx *blockIndex) candidates(tok string) []int {
	if idx.post == nil {
		return idx.byToken[tok]
	}
	idx.pmu.RLock()
	c, ok := idx.pcache[tok]
	idx.pmu.RUnlock()
	if ok {
		return c
	}
	ords, aok := idx.post.TokenPostings(tok)
	var out []int
	if !aok {
		out = make([]int, idx.nTup)
		for i := range out {
			out[i] = i
		}
	} else {
		for _, o := range ords {
			if o >= 0 && o < len(idx.tupOf) && idx.tupOf[o] >= 0 {
				out = append(out, int(idx.tupOf[o]))
			}
		}
	}
	idx.pmu.Lock()
	if prev, ok := idx.pcache[tok]; ok {
		out = prev
	} else {
		idx.pcache[tok] = out
	}
	idx.pmu.Unlock()
	return out
}

// memBytes approximates the index's resident size for cache accounting.
// The postings translation cache grows as tokens are probed; its eventual
// size is bounded by the probed vocabulary and is not re-accounted.
func (idx *blockIndex) memBytes() int64 {
	b := int64(48)
	for tok, ids := range idx.byToken {
		b += int64(len(tok)) + 40 + 8*int64(len(ids))
	}
	b += 8 * int64(len(idx.always))
	b += 4 * int64(len(idx.tupOf))
	return b
}

// postingsBlockIndex tries to back the blocking index directly by the
// persistent inverted token index. Valid only when every right tuple's
// join cell is a single exact whole-document assignment over a document
// with a distinct ordinal in the index — the shape a scan of a stored
// corpus produces. Returns nil when any tuple doesn't qualify; the caller
// then builds the per-tuple map.
func postingsBlockIndex(pi PostingsIndex, rt *compact.Table, ri int) *blockIndex {
	if pi == nil || len(rt.Tuples) == 0 {
		return nil
	}
	tupOf := make([]int32, pi.NumDocs())
	for i := range tupOf {
		tupOf[i] = -1
	}
	for j, rtp := range rt.Tuples {
		d, ok := wholeDocExact(rtp.Cells[ri])
		if !ok {
			return nil
		}
		ord, ok := pi.DocOrdinal(d)
		if !ok || ord < 0 || ord >= len(tupOf) || tupOf[ord] != -1 {
			return nil
		}
		tupOf[ord] = int32(j)
	}
	return &blockIndex{post: pi, tupOf: tupOf, nTup: len(rt.Tuples), pcache: map[string][]int{}}
}

// cellDocs is the quarantine attribution list for a fault inside a
// single-cell operation (index build, token precompute).
func cellDocs(c compact.Cell) func() []string {
	return func() []string {
		return tupleDocs(compact.Tuple{Cells: []compact.Cell{c}}, nil)
	}
}

// rightIndex builds (or fetches from the context cache) the blocking index
// of the join's right side. The cache entry is keyed by the subset and the
// right child's signature plus the join variable, so an index is shared
// only with executions that see the identical table; it lives in the same
// LRU as the result tables and counts against CacheBudget. Concurrent
// builders may race to construct the same index; the build is
// deterministic, so whichever lands in the cache is interchangeable.
//
// When the right side is a stored corpus scan, the persistent inverted
// index backs the blocking directly (no per-run tokenization). Otherwise
// each right cell tokenizes under a quarantine guard: a page that faults
// while being indexed is quarantined and the whole pass restarts, so the
// survivors' subset gets a cleanly rebuilt index (a partial index is never
// cached).
func (n *simJoinNode) rightIndex(ctx *Context, ev *EvalTrace, rt *compact.Table, ri int) (*blockIndex, error) {
	subsetHash, marker := ctx.subsetKey()
	key := entryKey{subset: subsetHash, sig: n.right.sigHash(), aux: n.rightVar}
	sig := n.right.Signature()
	ctx.mu.Lock()
	if e := ctx.lookupLocked(key, marker, sig); e != nil && e.idx != nil {
		ctx.touchLocked(e)
		ctx.mu.Unlock()
		return e.idx, nil
	}
	ctx.mu.Unlock()
	idx := postingsBlockIndex(ctx.Env.Postings, rt, ri)
	if idx != nil {
		statAdd(&ctx.Stats.BlockIdxPostings, 1)
	} else {
		idx = &blockIndex{byToken: map[string][]int{}}
		var qn int64
		for j, rtp := range rt.Tuples {
			var toks map[string]bool
			cell := rtp.Cells[ri]
			qed, gerr := ctx.guard(ev, "blockindex", cellDocs(cell), func() error {
				toks = blockTokens(ctx, cell)
				return nil
			})
			if gerr != nil {
				return nil, gerr
			}
			if qed {
				qn++
				continue
			}
			if toks == nil {
				idx.always = append(idx.always, j)
				continue
			}
			for tok := range toks {
				idx.byToken[tok] = append(idx.byToken[tok], j)
			}
		}
		if qn > 0 {
			return nil, quarantineErr("blockindex", qn)
		}
	}
	ctx.mu.Lock()
	if e := ctx.lookupLocked(key, marker, sig); e != nil && e.idx != nil {
		idx = e.idx
		ctx.touchLocked(e)
	} else {
		ctx.storeLocked(&cacheEntry{key: key, marker: marker, sig: sig, idx: idx, bytes: idx.memBytes()})
	}
	ctx.mu.Unlock()
	return idx, nil
}

func (n *simJoinNode) eval(ctx *Context, ev *EvalTrace, dx *deltaState) (*compact.Table, error) {
	fn, ok := ctx.Env.Funcs[n.fname]
	if !ok {
		return nil, fmt.Errorf("engine: p-function %q not bound", n.fname)
	}
	lt, rt, err := evalPair(ctx, n.left, n.right)
	if err != nil {
		return nil, err
	}
	lim := ctx.Env.Limits
	li := colIndex(lt.Cols, n.leftVar)
	ri := colIndex(rt.Cols, n.rightVar)

	// Index right tuples by block token; oversized cells go on the
	// always-candidate list. The index is cached per (subset, right side).
	idx, err := n.rightIndex(ctx, ev, rt, ri)
	if err != nil {
		return nil, err
	}
	always := idx.always

	// Fast path for pinned cells: compare pre-normalised token slices when
	// the p-function has a token implementation with identical semantics.
	// A whole-document singleton is answered from the document index when
	// one is attached: the stored sequence is exactly
	// NormalizedTokens(span.NormText()) for the whole page. A stored empty
	// sequence maps to nil because live tokenization of an empty page
	// yields nil ("not pinned") — the indexed run must take the same code
	// path.
	tokenFn := ctx.Env.TokenSimilar[n.fname]
	singletonTokens := func(c compact.Cell) []string {
		if tokenFn == nil {
			return nil
		}
		if di := ctx.Env.DocIndex; di != nil {
			if d, ok := wholeDocExact(c); ok {
				if toks, ok := di.NormTokens(d); ok {
					statAdd(&ctx.Stats.IndexTokenHits, 1)
					if len(toks) == 0 {
						return nil
					}
					return toks
				}
			}
		}
		if v, ok := c.Singleton(); ok {
			return similarity.NormalizedTokens(v.NormText())
		}
		return nil
	}
	// Tokenizing a right cell can page its document in and fault; guard
	// each so a corrupt page quarantines (restarting the pass without it)
	// instead of crashing the evaluation. The guard site is "blockindex",
	// not "pfunc": a fault here is attributable to the one document being
	// tokenized, and p-function fault rules must keep injecting at pair
	// granularity exactly as before.
	rtoks := make([][]string, len(rt.Tuples))
	var rqn int64
	for j, rtp := range rt.Tuples {
		j, cell := j, rtp.Cells[ri]
		qed, gerr := ctx.guard(ev, "blockindex", cellDocs(cell), func() error {
			rtoks[j] = singletonTokens(cell)
			return nil
		})
		if gerr != nil {
			return nil, gerr
		}
		if qed {
			rqn++
		}
	}
	if rqn > 0 {
		return nil, quarantineErr("blockindex", rqn)
	}
	out := compact.NewTable(n.cols...)
	// join assembles the output tuple for one matching pair with shallow
	// cell copies (cells are immutable once built); only kept pairs
	// allocate anything at all.
	join := func(ltp, rtp compact.Tuple, maybe bool, repl map[int]compact.Cell) compact.Tuple {
		cells := make([]compact.Cell, 0, len(ltp.Cells)+len(rtp.Cells))
		cells = append(cells, ltp.Cells...)
		cells = append(cells, rtp.Cells...)
		if c, ok := repl[0]; ok {
			cells[li] = c
		}
		if c, ok := repl[1]; ok {
			cells[len(lt.Cols)+ri] = c
		}
		return compact.Tuple{Cells: cells, Maybe: maybe}
	}
	pairInvolved := []int{0, 1}
	// Partition the probe loop over left tuples; each chunk keeps its own
	// seen-generation map and writes matches into its tuples' result slots,
	// so the merged output is identical to a serial probe. Candidates are
	// probed in ascending right-tuple order (the token index enumerates a
	// map), which also makes the output order deterministic run to run.
	// The delta memo is per left tuple and depends only on the left join
	// cell; the right side is pinned by a content fingerprint of its join
	// column, so the memo survives re-evaluations of either side that leave
	// the join-relevant cells intact. Replay rebuilds each output row from
	// the *current* pair of tuples, carrying refreshed non-join cells.
	var rdep uint64
	if dx != nil {
		rdep = rt.ColsFingerprint([]int{ri})
	}
	prior, fps := dx.prep(lt, []int{li}, rt, rdep)
	// Corpus-mode reconciliation: after ApplyCorpusDelta the displaced
	// memo's right table was rebuilt by this same re-evaluation, so prep's
	// pointer/fingerprint pinning rejects it even though almost every
	// right tuple is unchanged. Align the two right tables structurally
	// (span identity — only tuples from unchanged documents can align) and
	// block the unmatched "fresh" right tuples separately: a memo-hit left
	// tuple then replays its surviving matches remapped to current indices
	// and probes only the fresh tuples, instead of the whole right side.
	var rec *simRecon
	var freshIdx *blockIndex
	if prior == nil && fps != nil {
		if cp := dx.corpusSimPrior([]int{li}); cp != nil {
			if rec = buildSimRecon(cp.right, rt); rec != nil {
				prior = cp
				freshIdx = &blockIndex{byToken: map[string][]int{}}
				var qn int64
				for _, j := range rec.fresh {
					cell := rt.Tuples[j].Cells[ri]
					var toks map[string]bool
					qed, gerr := ctx.guard(ev, "blockindex", cellDocs(cell), func() error {
						toks = blockTokens(ctx, cell)
						return nil
					})
					if gerr != nil {
						return nil, gerr
					}
					if qed {
						qn++
						continue
					}
					if toks == nil {
						freshIdx.always = append(freshIdx.always, j)
						continue
					}
					for tok := range toks {
						freshIdx.byToken[tok] = append(freshIdx.byToken[tok], j)
					}
				}
				if qn > 0 {
					return nil, quarantineErr("blockindex", qn)
				}
			}
		}
	}
	var fbs []int32
	var matches [][]joinMatch
	if fps != nil {
		fbs = make([]int32, len(lt.Tuples))
		matches = make([][]joinMatch, len(lt.Tuples))
	}
	rows := make([][]compact.Tuple, len(lt.Tuples))
	// nq counts candidate pairs dropped by quarantine (both pair documents
	// are attributed — the guard cannot tell which side faulted); ncut the
	// chunks cut short by a best-effort cancellation.
	var nq, ncut atomic.Int64
	probe := func(start, end int) error {
		var batch statBatch
		defer batch.flush(ctx)
		reused := 0
		seen := make(map[int]int) // right idx -> generation marker
		gen := 0
		// Chunk-local span-token memo: a right cell's values tokenise once
		// per chunk, not once per candidate pair it appears in.
		type spanKey struct {
			doc        *text.Document
			start, end int
		}
		tokMemo := map[spanKey][]string{}
		tokensOf := func(s text.Span) []string {
			k := spanKey{s.Doc(), s.Start(), s.End()}
			if t, ok := tokMemo[k]; ok {
				return t
			}
			var t []string
			if di := ctx.Env.DocIndex; di != nil {
				if d := s.Doc(); d != nil && s.Start() == 0 && s.End() == d.Len() {
					if toks, ok := di.NormTokens(d); ok && toks != nil {
						statAdd(&ctx.Stats.IndexTokenHits, 1)
						t = toks
					}
				}
			}
			if t == nil {
				t = similarity.NormalizedTokens(s.NormText())
			}
			if t == nil {
				t = []string{}
			}
			tokMemo[k] = t
			return t
		}
		// The pair predicate, factored for the odometer: token-slice
		// comparison when the p-function has a token twin, the opaque
		// function otherwise.
		fp := factoredPred{
			cols: make([]colPred, 2),
			prepare: func(vals [][]text.Span, batch *statBatch) (idxPred, error) {
				if tokenFn == nil {
					args := make([]text.Span, 2)
					return func(idx []int) (bool, error) {
						args[0], args[1] = vals[0][idx[0]], vals[1][idx[1]]
						batch.funcCalls++
						return fn(args)
					}, nil
				}
				ltoks := make([][]string, len(vals[0]))
				for j, v := range vals[0] {
					ltoks[j] = tokensOf(v)
				}
				rtoks := make([][]string, len(vals[1]))
				for j, v := range vals[1] {
					rtoks[j] = tokensOf(v)
				}
				return tokenResidual(tokenFn, ltoks, rtoks, batch), nil
			},
		}
		// evalPairAt decides one candidate pair for the current left tuple:
		// the pinned token fast path when both values are pinned, the
		// factored filter otherwise. qed means the pair faulted and was
		// quarantined (the caller drops it); fbp reports a charged
		// valuation-limit fallback.
		evalPairAt := func(ltp compact.Tuple, lpinned []string, j int) (m joinMatch, keep, fbp, qed bool, err error) {
			rtp := rt.Tuples[j]
			pairDocs := func() []string {
				return tupleDocs(compact.Tuple{Cells: []compact.Cell{ltp.Cells[li], rtp.Cells[ri]}}, nil)
			}
			if lpinned != nil && rtoks[j] != nil {
				matched := false
				qed, err = ctx.guard(ev, "pfunc", pairDocs, func() error {
					batch.funcCalls++
					matched = tokenFn(lpinned, rtoks[j])
					return nil
				})
				if err != nil || qed || !matched {
					return joinMatch{}, false, false, qed, err
				}
				return joinMatch{j: j, sure: true}, true, false, false, nil
			}
			// Filter over the two join cells alone — no tuple is built
			// (let alone cloned) unless the pair survives.
			pair := compact.Tuple{Cells: []compact.Cell{ltp.Cells[li], rtp.Cells[ri]}}
			var res filterOutcome
			qed, err = ctx.guard(ev, "pfunc", pairDocs, func() error {
				var ferr error
				res, ferr = filterTupleF(pair, pairInvolved, fp, lim, &batch)
				return ferr
			})
			if err != nil || qed {
				return joinMatch{}, false, false, qed, err
			}
			return joinMatch{j: j, sure: res.sure, repl: res.repl}, res.keep, res.fallback, false, nil
		}
		for i := start; i < end; i++ {
			if cut, cerr := ctx.cutCheck(); cerr != nil {
				return cerr
			} else if cut {
				ctx.noteUnprocessed(lt.Tuples[i:end])
				ncut.Add(1)
				break
			}
			ltp := lt.Tuples[i]
			if fps != nil {
				fps[i] = dx.aux.fpOf(ltp)
				if old, ok := prior.lookup(fps[i], ltp); ok {
					if rec == nil {
						for _, m := range old.sim {
							rtp := rt.Tuples[m.j]
							maybe := ltp.Maybe || rtp.Maybe || !m.sure
							rows[i] = append(rows[i], join(ltp, rtp, maybe, m.repl))
						}
						matches[i] = old.sim
						fbs[i] = old.fallbacks
						ev.fallback(ctx, int(old.fallbacks))
						reused++
						continue
					}
					// Corpus replay: remap the matches whose right tuple
					// survived the mutation, probe only the fresh right
					// tuples, and merge in ascending right-index order — the
					// order a full probe over the identical candidate set
					// would have produced, so the output is byte-identical.
					kept := make([]joinMatch, 0, len(old.sim))
					for _, m := range old.sim {
						if nj := rec.newJ[m.j]; nj >= 0 {
							kept = append(kept, joinMatch{j: nj, sure: m.sure, repl: m.repl})
						}
					}
					fb := old.fallbacks
					var ltoks map[string]bool
					var lpinned []string
					lcell := ltp.Cells[li]
					qed, gerr := ctx.guard(ev, "blockindex", cellDocs(lcell), func() error {
						ltoks = blockTokens(ctx, lcell)
						lpinned = singletonTokens(lcell)
						return nil
					})
					if gerr != nil {
						return gerr
					}
					if qed {
						nq.Add(1)
						continue
					}
					gen++
					var cands []int
					if ltoks == nil {
						// Oversized left cell: every fresh right tuple is a
						// candidate (the replayed fallback count already
						// charged the oversize from the prior evaluation).
						cands = append(cands, rec.fresh...)
					} else {
						for tok := range ltoks {
							for _, j := range freshIdx.byToken[tok] {
								if seen[j] != gen {
									seen[j] = gen
									cands = append(cands, j)
								}
							}
						}
						for _, j := range freshIdx.always {
							if seen[j] != gen {
								seen[j] = gen
								cands = append(cands, j)
							}
						}
						sort.Ints(cands)
					}
					for _, j := range cands {
						m, keep, fbp, qed, gerr := evalPairAt(ltp, lpinned, j)
						if gerr != nil {
							return gerr
						}
						if qed {
							nq.Add(1)
							continue
						}
						if fbp {
							fb++
						}
						if keep {
							kept = append(kept, m)
						}
					}
					sort.Slice(kept, func(a, b int) bool { return kept[a].j < kept[b].j })
					for _, m := range kept {
						rtp := rt.Tuples[m.j]
						maybe := ltp.Maybe || rtp.Maybe || !m.sure
						rows[i] = append(rows[i], join(ltp, rtp, maybe, m.repl))
					}
					matches[i] = kept
					fbs[i] = fb
					ev.fallback(ctx, int(fb))
					reused++
					continue
				}
			}
			batch.tuplesRecomputed++
			var fb int32
			gen++
			var cands []int
			// Tokenizing the left cell (blocking set and pinned fast path)
			// can page its document in; a load fault quarantines the tuple's
			// documents and drops it, like a faulting candidate pair. Site
			// "blockindex" (single-document attribution), never "pfunc".
			var ltoks map[string]bool
			var lpinned []string
			lcell := ltp.Cells[li]
			qed, gerr := ctx.guard(ev, "blockindex", cellDocs(lcell), func() error {
				ltoks = blockTokens(ctx, lcell)
				lpinned = singletonTokens(lcell)
				return nil
			})
			if gerr != nil {
				return gerr
			}
			if qed {
				nq.Add(1)
				continue
			}
			if ltoks == nil {
				// Oversized left cell: every right tuple is a candidate.
				// (Counted as a fallback only on the probe side — the index
				// side is built by whichever goroutine wins a benign race,
				// so counting there would vary with the worker count.)
				fb++
				cands = make([]int, len(rt.Tuples))
				for j := range rt.Tuples {
					cands[j] = j
				}
			} else {
				for tok := range ltoks {
					for _, j := range idx.candidates(tok) {
						if seen[j] != gen {
							seen[j] = gen
							cands = append(cands, j)
						}
					}
				}
				for _, j := range always {
					if seen[j] != gen {
						seen[j] = gen
						cands = append(cands, j)
					}
				}
				sort.Ints(cands)
			}
			for _, j := range cands {
				m, keep, fbp, qed, gerr := evalPairAt(ltp, lpinned, j)
				if gerr != nil {
					return gerr
				}
				if qed {
					nq.Add(1)
					continue
				}
				if fbp {
					fb++
				}
				if !keep {
					continue
				}
				rtp := rt.Tuples[j]
				maybe := ltp.Maybe || rtp.Maybe || !m.sure
				rows[i] = append(rows[i], join(ltp, rtp, maybe, m.repl))
				if matches != nil {
					matches[i] = append(matches[i], m)
				}
			}
			if fb > 0 {
				ev.fallback(ctx, int(fb))
			}
			if fbs != nil {
				fbs[i] = fb
			}
		}
		dx.noteReused(&batch, reused)
		ev.recompute(batch.tuplesRecomputed)
		return nil
	}
	if err := ctx.parallelChunksSized(len(lt.Tuples), minChunkProbe, probe); err != nil {
		return nil, err
	}
	if n := nq.Load(); n > 0 {
		return nil, quarantineErr("pfunc", n)
	}
	for _, r := range rows {
		out.Tuples = append(out.Tuples, r...)
	}
	if ncut.Load() == 0 {
		dx.finish(lt, func(i int) deltaOut {
			o := deltaOut{sim: matches[i]}
			if fbs != nil {
				o.fallbacks = fbs[i]
			}
			return o
		})
	}
	return out, nil
}

// simRecon aligns the right table a displaced memo was built against
// with the current right table after a corpus re-evaluation. Alignment
// is whole-tuple structural identity — spans compare by document
// pointer, and unchanged documents keep their handles across a store
// mutation, so exactly the tuples sourced from unchanged documents
// align (updated documents get fresh handles and read as fresh tuples).
// Both views preserve relative document order, so the mapping is
// monotonic; the probe loop still sorts merged matches for safety.
type simRecon struct {
	// newJ maps an old right index to its current one, -1 when the tuple
	// is gone (its document was updated or removed).
	newJ []int
	// fresh lists current right indices with no aligned predecessor
	// (added or updated documents), ascending.
	fresh []int
}

// buildSimRecon pairs old and new right tuples greedily in order within
// fingerprint buckets (duplicates pair first-to-first; any consistent
// pairing is valid — aligned tuples are structurally interchangeable).
// Returns nil when the tables cannot correspond.
func buildSimRecon(oldRt, newRt *compact.Table) *simRecon {
	if oldRt == nil || len(oldRt.Cols) != len(newRt.Cols) {
		return nil
	}
	rec := &simRecon{newJ: make([]int, len(oldRt.Tuples))}
	buckets := make(map[uint64][]int, len(oldRt.Tuples))
	for j, tp := range oldRt.Tuples {
		rec.newJ[j] = -1
		h := tp.Fingerprint()
		buckets[h] = append(buckets[h], j)
	}
	for j, tp := range newRt.Tuples {
		h := tp.Fingerprint()
		aligned := false
		bs := buckets[h]
		for k, oj := range bs {
			if oldRt.Tuples[oj].StructuralEq(tp) {
				rec.newJ[oj] = j
				buckets[h] = append(bs[:k:k], bs[k+1:]...)
				aligned = true
				break
			}
		}
		if !aligned {
			rec.fresh = append(rec.fresh, j)
		}
	}
	return rec
}
