package engine

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/store"
	"iflex/internal/text"
)

// docJoinSrc joins two document tables on whole-page similarity: scans
// emit exact(whole-document) cells, so the fused similarity join can be
// served entirely from a persistent token index (postings-backed blocking
// on the right, stored token sequences for the pinned fast path).
const docJoinSrc = `Q(x, y) :- L(x), R(y), similar(x, y).`

// TestStoreIndexByteIdentity: attaching a document index and postings to
// the environment changes how tokens are obtained, never what they are —
// results stay byte-identical to the index-free run across worker counts,
// delta evaluation, and the optimizer.
func TestStoreIndexByteIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ldocs := docsOf(optDocs("l", 12, r))
	rdocs := docsOf(optDocs("r", 12, r))
	all := append(append([]*text.Document{}, ldocs...), rdocs...)
	prog := alog.MustParse(docJoinSrc)

	run := func(indexed bool, workers int, delta, optimize bool) (string, StatsSnapshot) {
		env := NewEnv()
		env.AddDocTable("L", "x", ldocs)
		env.AddDocTable("R", "y", rdocs)
		if indexed {
			ms := store.NewMemStore(all)
			env.DocIndex = ms
			env.Postings = ms
		}
		plan, err := Compile(prog, env)
		if err != nil {
			t.Fatal(err)
		}
		if optimize {
			plan = OptimizePlan(plan, env, OptOptions{})
		}
		ctx := NewContext(env)
		ctx.Workers = workers
		if delta {
			ctx.EnableDelta()
		}
		res, err := plan.Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res.Canonical(), ctx.Stats.Snapshot()
	}

	want, base := run(false, 1, false, false)
	if base.IndexTokenHits != 0 || base.BlockIdxPostings != 0 {
		t.Fatalf("index counters moved without an index: %+v", base)
	}
	if !strings.Contains(want, "(") {
		t.Fatalf("join produced no tuples; test corpus too sparse:\n%s", want)
	}
	for _, workers := range []int{1, 8} {
		for _, delta := range []bool{false, true} {
			for _, optimize := range []bool{false, true} {
				got, st := run(true, workers, delta, optimize)
				if got != want {
					t.Fatalf("workers=%d delta=%t opt=%t: indexed result differs:\n%s\nwant:\n%s",
						workers, delta, optimize, got, want)
				}
				if st.IndexTokenHits == 0 {
					t.Errorf("workers=%d delta=%t opt=%t: index never consulted", workers, delta, optimize)
				}
				if st.BlockIdxPostings == 0 {
					t.Errorf("workers=%d delta=%t opt=%t: blocking did not use postings", workers, delta, optimize)
				}
			}
		}
	}
}

// TestStoreIndexPostingsFallback: a right side that is not pure
// whole-document scans (extracted sub-spans) cannot be postings-backed;
// the join must fall back to the per-tuple map and still match the
// index-free result.
func TestStoreIndexPostingsFallback(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ldocs := docsOf(optDocs("l", 8, r))
	rdocs := docsOf(optDocs("r", 8, r))
	all := append(append([]*text.Document{}, ldocs...), rdocs...)
	prog := alog.MustParse(`
a(x, <s>) :- L(x), e1(x, s).
b(y, <t>) :- R(y), e2(y, t).
Q(s, t) :- a(x, s), b(y, t), similar(s, t).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
`)
	run := func(indexed bool) (string, StatsSnapshot) {
		env := NewEnv()
		env.AddDocTable("L", "x", ldocs)
		env.AddDocTable("R", "y", rdocs)
		if indexed {
			ms := store.NewMemStore(all)
			env.DocIndex = ms
			env.Postings = ms
		}
		plan, err := Compile(prog, env)
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewContext(env)
		res, err := plan.Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res.Canonical(), ctx.Stats.Snapshot()
	}
	want, _ := run(false)
	got, st := run(true)
	if got != want {
		t.Fatalf("indexed result differs:\n%s\nwant:\n%s", got, want)
	}
	if st.BlockIdxPostings != 0 {
		t.Fatal("postings-backed blocking used for sub-span cells")
	}
}

// TestSpillDemoteResurrect: with a Spill attached and a cache budget that
// evicts everything, an evicted result table is demoted to disk and a
// later request for the same key reloads it instead of re-evaluating.
func TestSpillDemoteResurrect(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ldocs := docsOf(optDocs("l", 6, r))
	rdocs := docsOf(optDocs("r", 6, r))
	byID := map[string]*text.Document{}
	for _, d := range append(append([]*text.Document{}, ldocs...), rdocs...) {
		byID[d.ID()] = d
	}
	sp, err := store.NewSpill(t.TempDir(), func(id string) (*text.Document, bool) {
		d, ok := byID[id]
		return d, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	env := NewEnv()
	env.AddDocTable("L", "x", ldocs)
	env.AddDocTable("R", "y", rdocs)
	planA, err := Compile(alog.MustParse(`
Q(x, <s>) :- L(x), e1(x, s).
e1(x, s) :- from(x, s), bold-font(s) = distinct-yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	planB, err := Compile(alog.MustParse(`
P(y, <t>) :- R(y), e2(y, t).
e2(y, t) :- from(y, t), bold-font(t) = distinct-yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}

	ctx := NewContext(env)
	ctx.CacheBudget = 1 // every store evicts all other entries
	ctx.Spill = sp
	resA, err := planA.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := planB.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.TablesSpilled == 0 || sp.Len() == 0 {
		t.Fatalf("no tables spilled (spilled=%d, files=%d)", ctx.Stats.TablesSpilled, sp.Len())
	}
	if ctx.Stats.SpillBytes == 0 {
		t.Fatal("spill bytes not accounted")
	}
	evaluated := ctx.Stats.NodesEvaluated
	resA2, err := planA.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.SpillLoads == 0 {
		t.Fatal("no spill resurrection on re-execution")
	}
	if resA2.Canonical() != resA.Canonical() {
		t.Fatalf("resurrected result differs:\n%s\nwant:\n%s", resA2.Canonical(), resA.Canonical())
	}
	if ctx.Stats.NodesEvaluated-evaluated >= ctx.Stats.SpillLoads+evaluated {
		// Sanity only: some nodes resurrect, so fewer evaluate than a cold run.
		t.Logf("nodes evaluated on rerun: %d", ctx.Stats.NodesEvaluated-evaluated)
	}
}

// TestDiskStoreCorruptShardQuarantines: a document whose shard record was
// corrupted on disk faults at first content access inside a guarded
// operator; under QuarantineFaults the engine isolates that document and
// completes over the survivors — the PR-5 fault path, now covering
// storage-layer corruption.
func TestDiskStoreCorruptShardQuarantines(t *testing.T) {
	dir := t.TempDir()
	w, err := store.Create(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"p0", "p1", "p2", "p3"}
	raws := []string{
		"<b>alpha price</b> body text one",
		"<b>beta price</b> body text two",
		"<b>gamma price</b> body text three",
		"<b>delta price</b> body text four",
	}
	for i := range ids {
		if err := w.Add(ids[i], raws[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt p2's raw markup inside the shard file.
	shard := filepath.Join(dir, "shard-0000.ifs")
	b, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	off := bytes.Index(b, []byte(raws[2]))
	if off < 0 {
		t.Fatal("raw markup not found in shard")
	}
	for i := 0; i < 6; i++ {
		b[off+i] ^= 0xFF
	}
	if err := os.WriteFile(shard, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(dir, store.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	env := NewEnv()
	env.AddDocTable("P", "x", s.Docs())
	env.DocIndex = s
	env.Postings = s
	plan, err := Compile(alog.MustParse(`
Q(x, <v>) :- P(x), e(x, v).
e(x, v) :- from(x, v), bold-font(v) = distinct-yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.FaultPolicy = QuarantineFaults
	res, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Canonical()
	for _, want := range []string{"alpha price", "beta price", "delta price"} {
		if !strings.Contains(got, want) {
			t.Fatalf("survivor value %q missing from result:\n%s", want, got)
		}
	}
	if strings.Contains(got, "gamma") {
		t.Fatalf("corrupt document's tuples survived:\n%s", got)
	}
	q := ctx.quarantined()
	if q == nil {
		t.Fatal("nothing quarantined")
	}
	found := false
	for _, rec := range q.records {
		if rec.Doc == "p2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("quarantine records do not name p2: %+v", q.records)
	}
}
