package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"iflex/internal/alog"
	"iflex/internal/compact"
	"iflex/internal/markup"
	"iflex/internal/text"
)

// refTuple is a concrete tuple of the reference (precise) semantics.
type refTuple []string

// refEval computes the precise possible-worlds result of a restricted
// program family directly from definitions, for tiny inputs:
//
//	T(x, v) :- pages(x), ext(x, v), [v > bound].
//	ext(x, v) :- from(x, v), numeric(v) = yes.
//
// With annotation variants:
//   - none: R = all (x, v) with v a numeric token of x; worlds = {R}
//   - <v>:  group by x, one v per x: worlds = all choice combinations
//   - ?:    worlds = powerset of R (existence)
func refWorlds(docs []*text.Document, bound float64, annotate, exists bool) map[string]bool {
	type group struct {
		x  string
		vs []string
	}
	var groups []group
	for _, d := range docs {
		g := group{x: d.WholeSpan().NormText()}
		lo, hi := d.WholeSpan().TokenBounds()
		toks := d.Tokens()
		for i := lo; i < hi; i++ {
			sp := d.Span(toks[i].Start, toks[i].End)
			if n, ok := sp.Numeric(); ok && (bound == 0 || n > bound) {
				g.vs = append(g.vs, sp.NormText())
			}
		}
		groups = append(groups, g)
	}

	worlds := map[string]bool{}
	var addWorld func(rows []refTuple)
	addWorld = func(rows []refTuple) {
		if !exists {
			w := make(compact.World, len(rows))
			for i, r := range rows {
				w[i] = r
			}
			worlds[w.Canonical()] = true
			return
		}
		// Existence annotation: every subset of rows is a world.
		n := len(rows)
		if n > 12 {
			panic("refWorlds: too many rows for powerset")
		}
		for mask := 0; mask < 1<<n; mask++ {
			var w compact.World
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w = append(w, rows[i])
				}
			}
			worlds[w.Canonical()] = true
		}
	}

	if !annotate {
		var rows []refTuple
		for _, g := range groups {
			for _, v := range g.vs {
				rows = append(rows, refTuple{g.x, v})
			}
		}
		addWorld(rows)
		return worlds
	}
	// Attribute annotation: choose one v per doc (docs with no v
	// contribute nothing).
	var choose func(i int, acc []refTuple)
	choose = func(i int, acc []refTuple) {
		if i == len(groups) {
			addWorld(acc)
			return
		}
		g := groups[i]
		if len(g.vs) == 0 {
			choose(i+1, acc)
			return
		}
		for _, v := range g.vs {
			choose(i+1, append(acc[:len(acc):len(acc)], refTuple{g.x, v}))
		}
	}
	choose(0, nil)
	return worlds
}

// TestSupersetPropertyRandom generates random tiny corpora and programs
// from the restricted family and checks the engine's possible-worlds set
// is a superset of the precise definition — the core guarantee of
// Section 4.
func TestSupersetPropertyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	words := []string{"alpha", "beta", "10", "20", "30", "400", "x9"}
	for trial := 0; trial < 60; trial++ {
		// Random docs: 1-2 docs, 2-4 tokens each.
		nDocs := 1 + r.Intn(2)
		var docs []*text.Document
		for i := 0; i < nDocs; i++ {
			n := 2 + r.Intn(3)
			var toks []string
			for j := 0; j < n; j++ {
				toks = append(toks, words[r.Intn(len(words))])
			}
			docs = append(docs, markup.MustParse(fmt.Sprintf("d%d", i), strings.Join(toks, " ")))
		}
		annotate := r.Intn(2) == 1
		exists := r.Intn(2) == 1
		var bound float64
		if r.Intn(2) == 1 {
			bound = 15
		}

		head := "T(x, v)"
		if annotate {
			head = "T(x, <v>)"
		}
		if exists {
			head += "?"
		}
		cmp := ""
		if bound > 0 {
			cmp = fmt.Sprintf(", v > %g", bound)
		}
		src := fmt.Sprintf(`%s :- pages(x), ext(x, v)%s.
ext(x, v) :- from(x, v), numeric(v) = yes.`, head, cmp)

		env := NewEnv()
		env.AddDocTable("pages", "x", docs)
		res, err := Run(alog.MustParse(src), env)
		if err != nil {
			t.Fatalf("trial %d: %v\nprogram:\n%s", trial, err, src)
		}
		got, err := res.ToATable().Worlds(200000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := refWorlds(docs, bound, annotate, exists)
		for w := range want {
			if !got[w] {
				t.Fatalf("trial %d: superset violated\nprogram:\n%s\nmissing world:\n%q\nresult:\n%s",
					trial, src, w, res)
			}
		}
	}
}

// TestSupersetWithConstraintChain checks the guarantee survives stacked
// constraints (the re-checking logic of Section 4.2).
func TestSupersetWithConstraintChain(t *testing.T) {
	d := markup.MustParse("d", "Price: <b>42</b> and plain 7 plus <b>900</b>")
	env := NewEnv()
	env.AddDocTable("pages", "x", []*text.Document{d})
	res, err := Run(alog.MustParse(`
T(x, v) :- pages(x), ext(x, v).
ext(x, v) :- from(x, v), numeric(v) = yes, bold-font(v) = yes, min-value(v) = 10.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	// Precisely: bold numeric values >= 10 are {42, 900}.
	if res.NumExpandedTuples() != 2 {
		t.Fatalf("result:\n%s", res)
	}
	for _, want := range []string{"42", "900"} {
		found := false
		for _, tp := range res.Tuples {
			if tp.Cells[1].CoversTextValue(want) {
				found = true
			}
		}
		if !found {
			t.Errorf("value %s lost", want)
		}
	}
}

// The paper's cleanup-procedure scenario (Section 2.2.4): extracting
// citations and their author lists declaratively, then a procedural
// p-predicate that picks the last author.
func TestCleanupProcedureLastAuthor(t *testing.T) {
	pages := []string{
		"<li><b>Paper One</b><br>By <i>Alice Anderson, Robert Baxter</i></li>",
		"<li><b>Paper Two</b><br>By <i>Carol Castillo</i></li>",
	}
	env := NewEnv()
	var docs []*text.Document
	for i, src := range pages {
		docs = append(docs, markup.MustParse(fmt.Sprintf("p%d", i), src))
	}
	env.AddDocTable("DBLP", "x", docs)
	// The cleanup procedure: split the author list on commas and return
	// the last author (hard to express declaratively — Alog has no ordered
	// sequences).
	env.Procs["lastAuthor"] = Procedure{
		Outputs: 1,
		Fn: func(in text.Span) ([][]text.Span, error) {
			body := in.Text()
			start := in.Start()
			if i := strings.LastIndex(body, ","); i >= 0 {
				start = in.Start() + i + 1
			}
			sp, ok := in.Doc().Span(start, in.End()).Shrink()
			if !ok {
				return nil, nil
			}
			return [][]text.Span{{sp}}, nil
		},
	}
	res, err := Run(alog.MustParse(`
cites(x, <t>, <a>) :- DBLP(x), extractCite(x, t, a).
Q(t, last) :- cites(x, t, a), lastAuthor(a, last).
extractCite(x, t, a) :- from(x, t), from(x, a),
                        bold-font(t) = distinct-yes,
                        italic-font(a) = distinct-yes.
`), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("result:\n%s", res)
	}
	want := map[string]string{"Paper One": "Robert Baxter", "Paper Two": "Carol Castillo"}
	for _, tp := range res.Tuples {
		title, ok1 := tp.Cells[0].Singleton()
		last, ok2 := tp.Cells[1].Singleton()
		if !ok1 || !ok2 {
			t.Fatalf("cells not pinned: %s", tp)
		}
		if want[title.NormText()] != last.NormText() {
			t.Errorf("last author of %q = %q", title.NormText(), last.NormText())
		}
	}
}
