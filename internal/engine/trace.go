package engine

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// This file is the engine's observability layer. When tracing is enabled
// on a Context (StartTrace, or implicitly by Explain), every Eval call
// publishes one TraceRecord onto a lock-free list: records are fully
// built before a CAS push, so concurrent readers never observe partial
// writes and tracing adds no lock contention to evaluation. Snapshots
// merge the list into per-operator aggregates keyed and sorted by cache
// key; the aggregate counts (evaluations, hits, output sizes, limit
// fallbacks) are identical at any worker count — the same determinism
// guarantee the evaluator itself makes — while wall times and worker
// attribution naturally vary run to run.

// CacheStatus classifies how one Eval call was satisfied.
type CacheStatus int

const (
	// StatusMiss marks the call that actually evaluated the node.
	StatusMiss CacheStatus = iota
	// StatusHit marks a call served from the reuse cache.
	StatusHit
	// StatusWait marks a call that blocked on a concurrent in-flight
	// evaluation of the same key and shared its result.
	StatusWait
)

func (s CacheStatus) String() string {
	switch s {
	case StatusMiss:
		return "miss"
	case StatusHit:
		return "hit"
	case StatusWait:
		return "wait"
	}
	return "unknown"
}

// OpKind buckets plan operators for the per-operator time histogram in
// Stats.OpTimeNs.
type OpKind int

const (
	OpScan OpKind = iota
	OpFrom
	OpCross
	OpSimJoin
	OpUnion
	OpProject
	OpAnnotate
	OpConstraint
	OpCompare
	OpFunc
	OpProc
	OpOther
	numOpKinds
)

var opKindNames = [numOpKinds]string{
	"scan", "from", "cross", "simjoin", "union", "project",
	"annotate", "constrain", "compare", "pfunc", "proc", "other",
}

func (k OpKind) String() string {
	if k >= 0 && int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return "other"
}

// kindOf buckets a node by its operator type.
func kindOf(n Node) OpKind {
	switch n.(type) {
	case *scanNode:
		return OpScan
	case *fromNode:
		return OpFrom
	case *crossNode:
		return OpCross
	case *simJoinNode:
		return OpSimJoin
	case *unionNode:
		return OpUnion
	case *projectNode:
		return OpProject
	case *annotateNode:
		return OpAnnotate
	case *constraintNode:
		return OpConstraint
	case *compareNode:
		return OpCompare
	case *funcNode:
		return OpFunc
	case *procNode:
		return OpProc
	}
	return OpOther
}

// EvalTrace is the per-evaluation counter block threaded through one
// node's eval call. Operator loops may run chunks of one evaluation on
// several pool goroutines at once, so updates are atomic. A nil
// *EvalTrace is valid and discards per-eval attribution (the context-wide
// Stats totals are still maintained).
type EvalTrace struct {
	fallbacks   atomic.Int64
	recomputed  atomic.Int64
	quarantined atomic.Int64
}

// quarantine attributes n quarantined per-document units to this
// evaluation (the context-wide totals are counted by quarantineDocs).
// A nil receiver discards the count.
func (ev *EvalTrace) quarantine(n int64) {
	if ev != nil && n != 0 {
		ev.quarantined.Add(n)
	}
}

// recompute attributes n freshly computed input tuples to this evaluation
// (the per-operator counterpart of Stats.TuplesRecomputed, which the
// operators' statBatch maintains). A nil receiver discards the count.
func (ev *EvalTrace) recompute(n int64) {
	if ev != nil && n != 0 {
		ev.recomputed.Add(n)
	}
}

// fallback records n valuation-limit fallbacks — places where an operator
// kept a tuple conservatively instead of enumerating its values — against
// both this evaluation's record and the context-wide total.
func (ev *EvalTrace) fallback(ctx *Context, n int) {
	if n == 0 {
		return
	}
	if ev != nil {
		ev.fallbacks.Add(int64(n))
	}
	statAdd(&ctx.Stats.LimitFallbacks, n)
}

// TraceRecord is one Eval call's measurement.
type TraceRecord struct {
	Op        string
	Signature string
	Key       string // cache key: subset marker + signature
	Status    CacheStatus
	// Wall, output sizes, and Fallbacks are recorded only on the
	// evaluating (StatusMiss) call; hits and waits carry the key alone.
	Wall        time.Duration
	Tuples      int // output compact tuples
	Expanded    int // output expanded tuples
	Assignments int // output assignments
	Fallbacks   int64
	// Reused counts input tuples replayed from a delta-evaluation memo
	// (non-zero only on StatusMiss calls evaluated with a delta prior);
	// Recomputed counts the input tuples the call computed fresh.
	Reused     int64
	Recomputed int64
	// Quarantined counts the per-document units this call dropped into
	// quarantine (such a call's output is discarded and re-evaluated, so
	// the count attributes where faults surfaced, not result contents).
	Quarantined int64
	Goroutine   int64 // id of the goroutine that evaluated the node
}

type traceNode struct {
	rec  TraceRecord
	next *traceNode
}

// tracer accumulates trace records via lock-free pushes. The zero value
// is ready to use; a nil *tracer discards records.
type tracer struct {
	head atomic.Pointer[traceNode]
}

func (t *tracer) push(rec TraceRecord) {
	if t == nil {
		return
	}
	node := &traceNode{rec: rec}
	for {
		old := t.head.Load()
		node.next = old
		if t.head.CompareAndSwap(old, node) {
			return
		}
	}
}

// StartTrace enables per-operator tracing on the context, discarding any
// previously collected records. Tracing is optional and off by default;
// the always-on Stats counters are unaffected.
func (ctx *Context) StartTrace() { ctx.trace.Store(&tracer{}) }

// StopTrace disables tracing and discards the collected records.
func (ctx *Context) StopTrace() { ctx.trace.Store(nil) }

// Tracing reports whether per-operator tracing is enabled.
func (ctx *Context) Tracing() bool { return ctx.trace.Load() != nil }

// OpStats aggregates every traced Eval call of one plan operator
// (identified by its cache key, so subset and full evaluations of the
// same subtree stay separate).
type OpStats struct {
	Key         string
	Op          string
	Signature   string
	Evals       int64         // calls that computed the node
	Hits        int64         // calls served from the reuse cache
	Waits       int64         // calls that blocked on an in-flight evaluation
	Wall        time.Duration // total evaluation time
	Tuples      int           // output compact tuples
	Expanded    int           // output expanded tuples
	Assignments int           // output assignments
	Fallbacks   int64         // valuation-limit fallbacks during evaluation
	Reused      int64         // input tuples replayed from a delta memo
	Recomputed  int64         // input tuples computed fresh
	Quarantined int64         // per-document units dropped into quarantine
	Goroutine   int64         // goroutine id of the (last) evaluating call
}

// TraceOps merges the collected trace into per-operator aggregates,
// sorted by cache key — a deterministic order regardless of the worker
// interleaving that produced the records. Returns nil when tracing is
// off.
func (ctx *Context) TraceOps() []OpStats {
	t := ctx.trace.Load()
	if t == nil {
		return nil
	}
	byKey := map[string]*OpStats{}
	for node := t.head.Load(); node != nil; node = node.next {
		r := &node.rec
		o := byKey[r.Key]
		if o == nil {
			o = &OpStats{Key: r.Key, Op: r.Op, Signature: r.Signature}
			byKey[r.Key] = o
		}
		switch r.Status {
		case StatusMiss:
			o.Evals++
			o.Wall += r.Wall
			o.Tuples = r.Tuples
			o.Expanded = r.Expanded
			o.Assignments = r.Assignments
			o.Fallbacks += r.Fallbacks
			o.Reused += r.Reused
			o.Recomputed += r.Recomputed
			o.Quarantined += r.Quarantined
			o.Goroutine = r.Goroutine
		case StatusHit:
			o.Hits++
		case StatusWait:
			o.Waits++
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]OpStats, len(keys))
	for i, k := range keys {
		out[i] = *byKey[k]
	}
	return out
}

// goid extracts the current goroutine's id from the runtime stack header
// ("goroutine 123 [running]:"). It is called once per traced evaluation —
// node granularity, not tuple granularity — so the ~µs stack capture is
// negligible, and it is never called when tracing is off.
func goid() int64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	var id int64
	for i := len(prefix); i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// StatsSnapshot is the JSON rendering of Stats with derived rates, the
// shape iflex-bench -bench-json emits.
type StatsSnapshot struct {
	NodesEvaluated   int64              `json:"nodes_evaluated"`
	CacheHits        int64              `json:"cache_hits"`
	CacheHitRate     float64            `json:"cache_hit_rate"`
	TuplesBuilt      int64              `json:"tuples_built"`
	ProcCalls        int64              `json:"proc_calls"`
	FuncCalls        int64              `json:"func_calls"`
	VerifyCalls      int64              `json:"verify_calls"`
	RefineCalls      int64              `json:"refine_calls"`
	LimitFallbacks   int64              `json:"limit_fallbacks"`
	PoolSlotsGranted int64              `json:"pool_slots_granted"`
	PoolSlotsDenied  int64              `json:"pool_slots_denied"`
	PoolMaxExtra     int64              `json:"pool_max_extra"`
	PoolUtilization  float64            `json:"pool_utilization"`
	FeatureMemoHits  int64              `json:"feature_memo_hits"`
	FeatureMemoMiss  int64              `json:"feature_memo_misses"`
	FeatureMemoRate  float64            `json:"feature_memo_hit_rate"`
	StatMergeSeconds float64            `json:"stat_merge_seconds"`
	StatMerges       int64              `json:"stat_merges"`
	DeltaEvals       int64              `json:"delta_evals"`
	FullEvals        int64              `json:"full_evals"`
	TuplesReused     int64              `json:"tuples_reused"`
	TuplesRecomputed int64              `json:"tuples_recomputed"`
	DeltaReuseRate   float64            `json:"delta_reuse_rate"`
	TablesAdopted    int64              `json:"tables_adopted"`
	CacheEvictions   int64              `json:"cache_evictions"`
	BlockIdxEvict    int64              `json:"block_idx_evictions"`
	CacheBytes       int64              `json:"cache_bytes"`
	TablesSpilled    int64              `json:"tables_spilled"`
	SpillLoads       int64              `json:"spill_loads"`
	SpillBytes       int64              `json:"spill_bytes"`
	BlockIdxPostings int64              `json:"block_idx_postings"`
	IndexTokenHits   int64              `json:"index_token_hits"`
	QuarantinedDocs  int64              `json:"quarantined_docs"`
	QuarantineEvents int64              `json:"quarantine_events"`
	QuarantineRetry  int64              `json:"quarantine_retries"`
	EvalRestarts     int64              `json:"eval_restarts"`
	DeadlineCuts     int64              `json:"deadline_cuts"`
	CorpusDeltas     int64              `json:"corpus_deltas,omitempty"`
	CorpusPriorHits  int64              `json:"corpus_prior_hits,omitempty"`
	CorpusSpillsDrop int64              `json:"corpus_spills_dropped,omitempty"`
	OpTimeSeconds    map[string]float64 `json:"op_time_seconds,omitempty"`
}

// Snapshot derives the JSON view from the raw counters. Call it only
// after evaluation quiesces (the same contract as reading Stats fields).
func (s *Stats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		NodesEvaluated:   s.NodesEvaluated,
		CacheHits:        s.CacheHits,
		TuplesBuilt:      s.TuplesBuilt,
		ProcCalls:        s.ProcCalls,
		FuncCalls:        s.FuncCalls,
		VerifyCalls:      s.VerifyCalls,
		RefineCalls:      s.RefineCalls,
		LimitFallbacks:   s.LimitFallbacks,
		PoolSlotsGranted: s.PoolSlotsGranted,
		PoolSlotsDenied:  s.PoolSlotsDenied,
		PoolMaxExtra:     s.PoolMaxExtra,
		FeatureMemoHits:  s.FeatureMemoHits,
		FeatureMemoMiss:  s.FeatureMemoMisses,
		StatMergeSeconds: float64(s.StatMergeNs) / 1e9,
		StatMerges:       s.StatMerges,
		DeltaEvals:       s.DeltaEvals,
		FullEvals:        s.NodesEvaluated - s.DeltaEvals,
		TuplesReused:     s.TuplesReused,
		TuplesRecomputed: s.TuplesRecomputed,
		TablesAdopted:    s.TablesAdopted,
		CacheEvictions:   s.CacheEvictions,
		BlockIdxEvict:    s.BlockIdxEvictions,
		CacheBytes:       s.CacheBytes,
		TablesSpilled:    s.TablesSpilled,
		SpillLoads:       s.SpillLoads,
		SpillBytes:       s.SpillBytes,
		BlockIdxPostings: s.BlockIdxPostings,
		IndexTokenHits:   s.IndexTokenHits,
		QuarantinedDocs:  s.QuarantinedDocs,
		QuarantineEvents: s.QuarantineEvents,
		QuarantineRetry:  s.QuarantineRetries,
		EvalRestarts:     s.EvalRestarts,
		DeadlineCuts:     s.DeadlineCuts,
		CorpusDeltas:     s.CorpusDeltas,
		CorpusPriorHits:  s.CorpusPriorHits,
		CorpusSpillsDrop: s.CorpusSpillsDropped,
	}
	if total := s.NodesEvaluated + s.CacheHits; total > 0 {
		snap.CacheHitRate = float64(s.CacheHits) / float64(total)
	}
	if total := s.FeatureMemoHits + s.FeatureMemoMisses; total > 0 {
		snap.FeatureMemoRate = float64(s.FeatureMemoHits) / float64(total)
	}
	if attempts := s.PoolSlotsGranted + s.PoolSlotsDenied; attempts > 0 {
		snap.PoolUtilization = float64(s.PoolSlotsGranted) / float64(attempts)
	}
	if total := s.TuplesReused + s.TuplesRecomputed; total > 0 {
		snap.DeltaReuseRate = float64(s.TuplesReused) / float64(total)
	}
	for k, ns := range s.OpTimeNs {
		if ns > 0 {
			if snap.OpTimeSeconds == nil {
				snap.OpTimeSeconds = map[string]float64{}
			}
			snap.OpTimeSeconds[OpKind(k).String()] = float64(ns) / 1e9
		}
	}
	return snap
}
