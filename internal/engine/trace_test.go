package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"iflex/internal/alog"
)

// TestExplainFreshContext runs the Figure 2 plan with tracing on from the
// start: every operator line must show real evaluation data (miss status,
// row counts, a worker id) plus the signature prefix.
func TestExplainFreshContext(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.StartTrace()
	if _, err := plan.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	out, err := Explain(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scan housePages", "scan schoolPages", "rows", "cache=miss", "w0", "sig=", "ψ[",
		"feature memo:", "stat merges:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "cache=hit ") {
		t.Errorf("fresh traced run should have no hit-only operators:\n%s", out)
	}
}

// TestExplainWarmContext executes first and enables tracing only inside
// Explain — the cmd/iflex -explain=false-then-inspect path. Every node is
// already cached, so the tree must render hit status with no timings.
func TestExplainWarmContext(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	if _, err := plan.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Tracing() {
		t.Fatal("tracing should be off by default")
	}
	out, err := Explain(ctx, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Tracing() {
		t.Error("Explain should have enabled tracing")
	}
	if !strings.Contains(out, "cache=hit") {
		t.Errorf("warm Explain should show cache hits:\n%s", out)
	}
	if strings.Contains(out, "cache=miss") {
		t.Errorf("warm Explain re-evaluated a cached operator:\n%s", out)
	}
}

// traceTotals runs the Figure 2 plan at the given worker count and
// returns the deterministic per-operator aggregates plus the
// deterministic subset of the context stats.
func traceTotals(t *testing.T, workers int) ([]OpStats, Stats) {
	t.Helper()
	env := figure2Env()
	plan, err := Compile(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.Workers = workers
	ctx.StartTrace()
	if _, err := plan.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := SumAssignments(ctx, plan.Root); err != nil {
		t.Fatal(err)
	}
	return ctx.TraceOps(), ctx.Stats
}

// TestTraceTotalsDeterministic is the observability side of the engine's
// determinism guarantee: per-operator trace aggregates (and the
// deterministic stats counters) must be identical for Workers=1 and
// Workers=8. Wall time, worker ids, and the hit/wait split are the only
// fields allowed to differ.
func TestTraceTotalsDeterministic(t *testing.T) {
	serialOps, serialStats := traceTotals(t, 1)
	parOps, parStats := traceTotals(t, 8)
	if len(serialOps) != len(parOps) {
		t.Fatalf("operator counts differ: serial %d, parallel %d", len(serialOps), len(parOps))
	}
	for i, s := range serialOps {
		p := parOps[i]
		if s.Key != p.Key {
			t.Fatalf("operator %d: key %q vs %q", i, s.Key, p.Key)
		}
		if s.Evals != p.Evals || s.Tuples != p.Tuples || s.Expanded != p.Expanded ||
			s.Assignments != p.Assignments || s.Fallbacks != p.Fallbacks {
			t.Errorf("operator %s diverges:\nserial   %+v\nparallel %+v", s.Key, s, p)
		}
		// The hit/wait split depends on timing, but the total number of
		// cache-served requests does not.
		if s.Hits+s.Waits != p.Hits+p.Waits {
			t.Errorf("operator %s: cache-served count %d vs %d", s.Key, s.Hits+s.Waits, p.Hits+p.Waits)
		}
	}
	det := func(s Stats) [8]int64 {
		return [8]int64{s.NodesEvaluated, s.CacheHits, s.TuplesBuilt, s.ProcCalls,
			s.FuncCalls, s.VerifyCalls, s.RefineCalls, s.LimitFallbacks}
	}
	if det(serialStats) != det(parStats) {
		t.Errorf("deterministic stats diverge:\nserial   %+v\nparallel %+v", det(serialStats), det(parStats))
	}
}

// TestConcurrentExplainAndEval hammers a shared traced context with
// simultaneous Explain and Execute calls — run under -race. Explain must
// stay coherent (no error, non-empty output) while evaluation proceeds.
func TestConcurrentExplainAndEval(t *testing.T) {
	env := figure2Env()
	plan, err := Compile(alog.MustParse(figure2Src), env)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(env)
	ctx.StartTrace()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				if (g+r)%2 == 0 {
					if _, err := plan.Execute(ctx); err != nil {
						errs <- err
						return
					}
					continue
				}
				out, err := Explain(ctx, plan.Root)
				if err != nil {
					errs <- err
					return
				}
				if out == "" {
					errs <- fmt.Errorf("goroutine %d: empty Explain output", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// benchSubset builds a DocFilter with n entries, the shape that made the
// per-Eval subset-marker sort expensive.
func benchSubset(n int) map[string]bool {
	f := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		f[fmt.Sprintf("doc-%04d", i)] = true
	}
	return f
}

// BenchmarkCacheKeySubsetMemoised measures cacheKey with the marker
// precomputed by SetDocFilter (the session execution path).
func BenchmarkCacheKeySubsetMemoised(b *testing.B) {
	ctx := NewContext(NewEnv())
	ctx.SetDocFilter(benchSubset(500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.cacheKey("scan(pages->x)")
	}
}

// BenchmarkCacheKeySubsetUnmemoised measures the fallback path taken when
// DocFilter is assigned directly — the pre-memoisation per-Eval cost.
func BenchmarkCacheKeySubsetUnmemoised(b *testing.B) {
	ctx := NewContext(NewEnv())
	ctx.DocFilter = benchSubset(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.cacheKey("scan(pages->x)")
	}
}

// TestCacheKeyMemoisedMatchesUnmemoised pins the two paths to the same
// key, and checks SetDocFilter(nil) restores full-mode keys.
func TestCacheKeyMemoisedMatchesUnmemoised(t *testing.T) {
	filter := benchSubset(5)
	memo := NewContext(NewEnv())
	memo.SetDocFilter(filter)
	direct := NewContext(NewEnv())
	direct.DocFilter = filter
	if got, want := memo.cacheKey("sig"), direct.cacheKey("sig"); got != want {
		t.Errorf("memoised key %q != direct key %q", got, want)
	}
	memo.SetDocFilter(nil)
	if got := memo.cacheKey("sig"); got != "full|sig" {
		t.Errorf("after SetDocFilter(nil): %q", got)
	}
	// Re-assigning a different map directly must not reuse the stale marker.
	memo.SetDocFilter(filter)
	memo.DocFilter = benchSubset(2)
	if got, want := memo.cacheKey("sig"), subsetMarkerFor(memo.DocFilter)+"|sig"; got != want {
		t.Errorf("stale marker used: got %q, want %q", got, want)
	}
}
