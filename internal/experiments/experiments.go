// Package experiments regenerates every table of the paper's evaluation
// (Section 6): corpus characteristics (Table 1), the IE task programs
// (Table 2), developer-time comparison (Table 3), per-iteration behaviour
// of the next-effort assistant (Table 4), question-selection strategies
// (Table 5), and the DBLife case study (Table 6), plus the Section 6.2
// convergence summary. Machine-side quantities come from running the real
// system; human minutes come from the devmodel cost model (see DESIGN.md).
//
// Each harness accepts a Scale factor: 1.0 runs the paper's corpus sizes,
// smaller factors shrink every scenario proportionally (the test-suite
// benches use 0.05; iflex-bench defaults to 0.2).
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/compact"
	"iflex/internal/corpus"
	"iflex/internal/devmodel"
	"iflex/internal/engine"
)

// Options configure a harness run.
type Options struct {
	// Scale multiplies every scenario size (1.0 = paper sizes; 0 = 1.0).
	Scale float64
	// Seed drives corpus generation and subset sampling.
	Seed int64
	// Strategy is the assistant strategy for Tables 3/4 ("sim" default).
	Strategy string
	// Workers bounds the assistant worker pool (0 = one per CPU, 1 =
	// serial). Results are byte-identical across worker counts.
	Workers int
	// Deadline bounds each assistant session in wall-clock time (0 =
	// none); expired sessions report their best partial result and a
	// degradation summary instead of failing the harness.
	Deadline time.Duration
	// DisableOptimizer runs sessions without the cost-based plan
	// optimizer (results are byte-identical either way). The Hotpath and
	// Reuse harnesses pin the optimizer off regardless, so their counters
	// stay comparable across releases.
	DisableOptimizer bool
	// Out receives the rendered table (nil = io.Discard).
	Out io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Strategy == "" {
		o.Strategy = "sim"
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// scale applies the factor with a floor of 10 records.
func (o Options) scale(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 10 {
		v = 10
	}
	return v
}

// Scenario is one (task, records-per-table) evaluation point.
type Scenario struct {
	TaskID  string
	Records int
	// Workers bounds the session's worker pool (0 = one per CPU).
	Workers int
	// Deadline bounds the session in wall-clock time (0 = none).
	Deadline time.Duration
	// DisableOptimizer turns the session's plan optimizer off.
	DisableOptimizer bool
}

// Table3Sizes lists the paper's 27 scenarios: three sizes per task
// (Table 3, second column). Ranges like "242-517" and "2490-5000" are
// represented by their larger bound.
var Table3Sizes = map[string][3]int{
	"T1": {10, 100, 250},
	"T2": {10, 100, 242},
	"T3": {10, 100, 517},
	"T4": {10, 100, 312},
	"T5": {100, 500, 2136},
	"T6": {100, 500, 1798},
	"T7": {100, 500, 5000},
	"T8": {100, 500, 2490},
	"T9": {100, 500, 5000},
}

// paperTable3 holds the paper's reported minutes for side-by-side
// comparison: per task, three scenarios of {manual, xlog, iflex} with -1
// marking "—" (did not finish) entries.
var paperTable3 = map[string][3][3]float64{
	"T1": {{1, 28, 1}, {1, 29, 1}, {3, 29, 1}},
	"T2": {{1, 31, 1}, {1, 31, 1}, {3, 31, 1}},
	"T3": {{1, 58, 1}, {14, 58, 10}, {80, 58, 16}},
	"T4": {{1, 34, 1}, {2, 34, 1}, {5, 34, 1}},
	"T5": {{4, 37, 1}, {19, 37, 1}, {-1, 37, 3}},
	"T6": {{76, 55, 6}, {-1, 56, 8}, {-1, 57, 23}},
	"T7": {{4, 33, 1}, {20, 33, 1}, {-1, 33, 8}},
	"T8": {{4, 42, 3}, {19, 43, 4}, {-1, 43, 5}},
	"T9": {{137, 57, 31}, {-1, 57, 34}, {-1, 97, 73}},
}

// SessionOutcome captures one full assistant session on one scenario.
type SessionOutcome struct {
	Scenario    Scenario
	Strategy    string
	Iterations  []assistant.Iteration
	Questions   int
	FinalTuples int
	TruthSize   int
	Superset    float64 // percent
	Exact       bool    // every result cell is a pinned singleton
	Missing     int     // truth keys absent from the result (must be 0)
	Converged   bool
	ExecSeconds float64
	// Degraded is the session's degradation report: non-nil when a
	// Deadline expired or documents were quarantined.
	Degraded *compact.Degraded
}

// noteDegraded prints a session's degradation summary (deadline cuts,
// quarantined documents) so a bounded harness run says what it skipped;
// clean runs print nothing.
func noteDegraded(out io.Writer, label string, d *compact.Degraded) {
	if d == nil {
		return
	}
	fmt.Fprintf(out, "degraded %s: %s\n", label, d.Summary())
}

// RunScenario executes one task scenario end to end with the given
// strategy name ("seq" or "sim").
func RunScenario(sc Scenario, strategyName string, seed int64) (*SessionOutcome, error) {
	task, err := corpus.TaskByID(sc.TaskID)
	if err != nil {
		return nil, err
	}
	strat, err := assistant.ByName(strategyName)
	if err != nil {
		return nil, err
	}
	c := task.Generate(sc.Records, seed)
	env := task.Env(c)
	prog, err := alog.Parse(task.Program)
	if err != nil {
		return nil, fmt.Errorf("experiments: task %s: %w", sc.TaskID, err)
	}
	truth := task.Truth(c)
	start := time.Now()
	session := assistant.NewSession(env, prog, task.Oracle(), assistant.Config{
		Strategy:         strat,
		SubsetSeed:       uint64(seed),
		Workers:          sc.Workers,
		Deadline:         sc.Deadline,
		DisableOptimizer: sc.DisableOptimizer,
	})
	res, err := session.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: task %s (%d records): %w", sc.TaskID, sc.Records, err)
	}
	_, exact := corpus.ResultKeys(res.Final)
	missing := corpus.UncoveredTruth(res.Final, truth)
	return &SessionOutcome{
		Scenario:    sc,
		Strategy:    strategyName,
		Iterations:  res.Iterations,
		Questions:   res.QuestionsAsked,
		FinalTuples: res.FinalTuples,
		TruthSize:   len(truth),
		Superset:    corpus.SupersetPercent(res.FinalTuples, len(truth)),
		Exact:       exact,
		Missing:     len(missing),
		Converged:   res.Converged,
		ExecSeconds: time.Since(start).Seconds(),
		Degraded:    res.Degraded,
	}, nil
}

// needsCleanup mirrors Section 2.2.4: when declarative refinement
// converges above an acceptable superset, the developer writes one
// procedural cleanup (the parenthesised minutes of Table 3).
func needsCleanup(superset float64) bool { return superset > 110 }

// Table1 prints the corpus characteristics (Table 1) at the given scale.
func Table1(o Options) error {
	o = o.withDefaults()
	corpora := []*corpus.Corpus{
		corpus.Movies(corpus.MoviesConfig{Records: o.scale(250), Seed: o.Seed}),
		corpus.DBLP(corpus.DBLPConfig{Records: o.scale(2136), Seed: o.Seed}),
		corpus.Books(corpus.BooksConfig{
			AmazonRecords: o.scale(2490), BarnesRecords: o.scale(5000), Seed: o.Seed,
		}),
	}
	fmt.Fprintf(o.Out, "Table 1: real-world domains (scale %.2f)\n", o.Scale)
	fmt.Fprintf(o.Out, "%-8s %-14s %-38s %8s %6s\n", "Domain", "Table", "Description", "Records", "Pages")
	for _, c := range corpora {
		for _, t := range c.Stats().Tables {
			fmt.Fprintf(o.Out, "%-8s %-14s %-38s %8d %6d\n", c.Domain, t.Name, t.Description, t.Records, t.Pages)
		}
	}
	return nil
}

// Table2 prints and validates the nine task programs (Table 2).
func Table2(o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(o.Out, "Table 2: IE tasks and initial Alog programs")
	for _, task := range corpus.Tasks() {
		prog, err := alog.Parse(task.Program)
		if err != nil {
			return fmt.Errorf("experiments: task %s does not parse: %w", task.ID, err)
		}
		c := task.Generate(10, o.Seed)
		env := task.Env(c)
		if err := alog.Validate(prog, env.Schema()); err != nil {
			return fmt.Errorf("experiments: task %s does not validate: %w", task.ID, err)
		}
		fmt.Fprintf(o.Out, "\n%s (%s): %s\n%s\n", task.ID, task.Domain, task.Description, prog)
	}
	return nil
}

// Table3Row is one of the 27 rows of Table 3.
type Table3Row struct {
	Task      string
	Records   int
	ManualMin float64
	ManualDNF bool
	XlogMin   float64
	IFlexMin  float64
	Cleanup   float64
	Superset  float64
	// The paper's reported minutes for the same scenario (-1 = DNF).
	PaperManual, PaperXlog, PaperIFlex float64
}

// Table3 reruns all 27 scenarios and models the three methods' minutes.
func Table3(o Options) ([]Table3Row, error) {
	o = o.withDefaults()
	params := devmodel.DefaultParams()
	var rows []Table3Row
	fmt.Fprintf(o.Out, "Table 3: run time (minutes) over 27 scenarios (scale %.2f, strategy %s)\n", o.Scale, o.Strategy)
	fmt.Fprintf(o.Out, "%-4s %8s | %8s %8s %8s | %8s %8s %8s\n",
		"Task", "Records", "Manual", "Xlog", "iFlex", "p.Manual", "p.Xlog", "p.iFlex")
	for _, task := range corpus.Tasks() {
		sizes := Table3Sizes[task.ID]
		shape := devmodel.ShapeOf(alog.MustParse(task.Program))
		for i, full := range sizes {
			n := o.scale(full)
			out, err := RunScenario(Scenario{TaskID: task.ID, Records: n, Workers: o.Workers, Deadline: o.Deadline, DisableOptimizer: o.DisableOptimizer}, o.Strategy, o.Seed)
			if err != nil {
				return nil, err
			}
			noteDegraded(o.Out, fmt.Sprintf("%s/%d", task.ID, n), out.Degraded)
			cleanups := 0
			if needsCleanup(out.Superset) {
				cleanups = 1
			}
			iflexMin, cleanupMin := params.IFlex(shape, out.Questions, len(out.Iterations), out.ExecSeconds, cleanups)
			manualMin, ok := params.Manual(shape, n, n)
			row := Table3Row{
				Task: task.ID, Records: n,
				ManualMin: manualMin, ManualDNF: !ok,
				XlogMin:  params.Xlog(shape, n),
				IFlexMin: iflexMin, Cleanup: cleanupMin,
				Superset:    out.Superset,
				PaperManual: paperTable3[task.ID][i][0],
				PaperXlog:   paperTable3[task.ID][i][1],
				PaperIFlex:  paperTable3[task.ID][i][2],
			}
			rows = append(rows, row)
			manual := fmt.Sprintf("%.1f", row.ManualMin)
			if row.ManualDNF {
				manual = "—"
			}
			pm := fmt.Sprintf("%.0f", row.PaperManual)
			if row.PaperManual < 0 {
				pm = "—"
			}
			fmt.Fprintf(o.Out, "%-4s %8d | %8s %8.1f %8.1f | %8s %8.0f %8.0f\n",
				row.Task, row.Records, manual, row.XlogMin, row.IFlexMin, pm, row.PaperXlog, row.PaperIFlex)
		}
	}
	return rows, nil
}

// Table4 reruns the per-iteration soliciting experiment on one scenario
// per task (the paper's nine randomly selected scenarios) and prints the
// tuple counts per iteration, question totals, and superset size.
func Table4(o Options) ([]*SessionOutcome, error) {
	o = o.withDefaults()
	// The paper's Table 4 scenario sizes.
	sizes := map[string]int{
		"T1": 10, "T2": 100, "T3": 517, "T4": 10, "T5": 500,
		"T6": 500, "T7": 500, "T8": 2490, "T9": 100,
	}
	var outs []*SessionOutcome
	fmt.Fprintf(o.Out, "Table 4: effects of soliciting domain knowledge (scale %.2f, strategy %s)\n", o.Scale, o.Strategy)
	fmt.Fprintf(o.Out, "%-4s %8s %8s  %-40s %6s %8s %9s\n",
		"Task", "Records", "Correct", "TuplesPerIteration(full in [])", "Quest", "Time(s)", "Superset")
	for _, task := range corpus.Tasks() {
		n := o.scale(sizes[task.ID])
		out, err := RunScenario(Scenario{TaskID: task.ID, Records: n, Workers: o.Workers, Deadline: o.Deadline, DisableOptimizer: o.DisableOptimizer}, o.Strategy, o.Seed)
		if err != nil {
			return nil, err
		}
		noteDegraded(o.Out, fmt.Sprintf("%s/%d", task.ID, n), out.Degraded)
		outs = append(outs, out)
		iters := ""
		for _, it := range out.Iterations {
			if it.Mode == "full" {
				iters += fmt.Sprintf("[%d] ", it.Tuples)
			} else {
				iters += fmt.Sprintf("%d ", it.Tuples)
			}
		}
		fmt.Fprintf(o.Out, "%-4s %8d %8d  %-40s %6d %8.2f %8.0f%%\n",
			task.ID, n, out.TruthSize, iters, out.Questions, out.ExecSeconds, out.Superset)
	}
	return outs, nil
}

// Table5Row compares the two question-selection strategies on one scenario.
type Table5Row struct {
	Seq *SessionOutcome
	Sim *SessionOutcome
	// Paper-reported superset sizes in percent.
	PaperSeqSuperset, PaperSimSuperset float64
}

// paperTable5 reports the paper's superset sizes (seq, sim) per task at
// its Table 5 scenario.
var paperTable5 = map[string][2]float64{
	"T1": {100, 100}, "T2": {100, 100}, "T3": {1762, 170},
	"T4": {100, 100}, "T5": {100, 100}, "T6": {4243, 100},
	"T7": {100, 100}, "T8": {233, 100}, "T9": {43299, 100},
}

// Table5 reruns each task's Table 5 scenario under both strategies.
func Table5(o Options) ([]Table5Row, error) {
	o = o.withDefaults()
	sizes := map[string]int{
		"T1": 100, "T2": 100, "T3": 100, "T4": 100, "T5": 500,
		"T6": 500, "T7": 500, "T8": 500, "T9": 500,
	}
	var rows []Table5Row
	fmt.Fprintf(o.Out, "Table 5: question selection strategies (scale %.2f)\n", o.Scale)
	fmt.Fprintf(o.Out, "%-4s %8s | %5s %6s %6s %9s | %5s %6s %6s %9s | %10s %10s\n",
		"Task", "Records", "itS", "qS", "tS(s)", "ssSeq", "itM", "qM", "tM(s)", "ssSim", "p.ssSeq", "p.ssSim")
	for _, task := range corpus.Tasks() {
		n := o.scale(sizes[task.ID])
		seq, err := RunScenario(Scenario{TaskID: task.ID, Records: n, Workers: o.Workers, Deadline: o.Deadline, DisableOptimizer: o.DisableOptimizer}, "seq", o.Seed)
		if err != nil {
			return nil, err
		}
		sim, err := RunScenario(Scenario{TaskID: task.ID, Records: n, Workers: o.Workers, Deadline: o.Deadline, DisableOptimizer: o.DisableOptimizer}, "sim", o.Seed)
		if err != nil {
			return nil, err
		}
		noteDegraded(o.Out, task.ID+" seq", seq.Degraded)
		noteDegraded(o.Out, task.ID+" sim", sim.Degraded)
		row := Table5Row{
			Seq: seq, Sim: sim,
			PaperSeqSuperset: paperTable5[task.ID][0],
			PaperSimSuperset: paperTable5[task.ID][1],
		}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "%-4s %8d | %5d %6d %6.1f %8.0f%% | %5d %6d %6.1f %8.0f%% | %9.0f%% %9.0f%%\n",
			task.ID, n,
			len(seq.Iterations), seq.Questions, seq.ExecSeconds, seq.Superset,
			len(sim.Iterations), sim.Questions, sim.ExecSeconds, sim.Superset,
			row.PaperSeqSuperset, row.PaperSimSuperset)
	}
	return rows, nil
}

// Table6Row is one DBLife task outcome (Table 6 / Section 6.3).
type Table6Row struct {
	Task        string
	DevMinutes  float64
	Cleanup     float64
	ExecSeconds float64
	FinalTuples int
	TruthSize   int
	// Paper-reported developer minutes (total, cleanup portion).
	PaperMinutes, PaperCleanup float64
}

// paperTable6 reports the paper's DBLife developer minutes.
var paperTable6 = map[string][2]float64{
	"Panel": {54, 5}, "Project": {44, 6}, "Chair": {60, 11},
}

// Table6 reruns the three DBLife programs over a generated snapshot
// (paper: 10,007 pages; scaled).
func Table6(o Options) ([]Table6Row, error) {
	o = o.withDefaults()
	params := devmodel.DefaultParams()
	pages := o.scale(10007)
	var rows []Table6Row
	fmt.Fprintf(o.Out, "Table 6: DBLife experiments over %d pages (scale %.2f)\n", pages, o.Scale)
	fmt.Fprintf(o.Out, "%-8s %9s %9s %9s %8s %8s | %9s %9s\n",
		"Task", "Dev(min)", "Cleanup", "Exec(s)", "Result", "Correct", "p.Dev", "p.Clean")
	for _, task := range corpus.DBLifeTasks() {
		c := task.Generate(pages, o.Seed)
		env := task.Env(c)
		prog := alog.MustParse(task.Program)
		truth := task.Truth(c)
		start := time.Now()
		session := assistant.NewSession(env, prog, task.Oracle(), assistant.Config{
			Strategy:         assistant.Simulation{},
			SubsetSeed:       uint64(o.Seed),
			Workers:          o.Workers,
			Deadline:         o.Deadline,
			DisableOptimizer: o.DisableOptimizer,
		})
		res, err := session.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: DBLife %s: %w", task.ID, err)
		}
		noteDegraded(o.Out, task.ID, res.Degraded)
		exec := time.Since(start).Seconds()
		shape := devmodel.ShapeOf(prog)
		cleanups := 0
		if needsCleanup(corpus.SupersetPercent(res.FinalTuples, len(truth))) {
			cleanups = 1
		}
		dev, cleanup := params.IFlex(shape, res.QuestionsAsked, len(res.Iterations), exec, cleanups)
		row := Table6Row{
			Task: task.ID, DevMinutes: dev, Cleanup: cleanup, ExecSeconds: exec,
			FinalTuples: res.FinalTuples, TruthSize: len(truth),
			PaperMinutes: paperTable6[task.ID][0], PaperCleanup: paperTable6[task.ID][1],
		}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "%-8s %9.1f %9.1f %9.2f %8d %8d | %9.0f %9.0f\n",
			row.Task, row.DevMinutes, row.Cleanup, row.ExecSeconds,
			row.FinalTuples, row.TruthSize, row.PaperMinutes, row.PaperCleanup)
	}
	return rows, nil
}

// ScalingRow measures converged-program execution time at one corpus size.
type ScalingRow struct {
	Records     int
	ExecSeconds float64
	Tuples      int
}

// Scaling is an extension experiment in the spirit of Section 6.3's
// execution-time report: it runs one task's *converged* program (all
// oracle answers applied up front) over increasing corpus sizes, isolating
// engine throughput from the interactive loop.
func Scaling(o Options, taskID string, sizes []int) ([]ScalingRow, error) {
	o = o.withDefaults()
	task, err := corpus.TaskByID(taskID)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(o.Out, "Scaling: task %s converged-program execution\n", taskID)
	fmt.Fprintf(o.Out, "%8s %10s %8s\n", "Records", "Exec(s)", "Tuples")
	var rows []ScalingRow
	for _, n := range sizes {
		c := task.Generate(n, o.Seed)
		env := task.Env(c)
		prog := alog.MustParse(task.Program)
		// Apply every known oracle answer as a constraint (the converged
		// program a finished session would hold).
		oracle := task.Oracle()
		for _, attr := range prog.Attrs() {
			if m, ok := oracle.Answers[attr.String()]; ok {
				for f, v := range m {
					if v == "unknown" {
						continue
					}
					if err := prog.AddConstraint(attr, f, v); err != nil {
						return nil, err
					}
				}
			}
		}
		start := time.Now()
		res, err := engineRun(prog, env)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %s n=%d: %w", taskID, n, err)
		}
		row := ScalingRow{Records: n, ExecSeconds: time.Since(start).Seconds(), Tuples: res}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "%8d %10.3f %8d\n", row.Records, row.ExecSeconds, row.Tuples)
	}
	return rows, nil
}

// ParallelResult compares a serial (Workers=1) and a parallel session on
// the same scenario. Identical reports whether the transcripts and final
// tables match byte for byte — the engine's determinism guarantee. The
// stats snapshots carry the engine counters of each run, including the
// reuse-cache hit rate and worker-pool utilization.
type ParallelResult struct {
	Task            string               `json:"task"`
	Records         int                  `json:"records"`
	Workers         int                  `json:"workers"`
	CPUs            int                  `json:"cpus"`
	SerialS         float64              `json:"serial_s"`
	ParallelS       float64              `json:"parallel_s"`
	Speedup         float64              `json:"speedup"`
	Identical       bool                 `json:"identical"`
	CacheHitRate    float64              `json:"cache_hit_rate"`
	PoolUtilization float64              `json:"pool_utilization"`
	SerialStats     engine.StatsSnapshot `json:"serial_stats"`
	ParallelStats   engine.StatsSnapshot `json:"parallel_stats"`
}

// ParallelCompare runs one scenario twice — serial and with the
// configured worker pool — and checks that the transcripts and final
// tables are byte-identical before reporting the speedup.
func ParallelCompare(o Options, taskID string, records int) (*ParallelResult, error) {
	o = o.withDefaults()
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	run := func(w int) (*assistant.Result, float64, error) {
		task, err := corpus.TaskByID(taskID)
		if err != nil {
			return nil, 0, err
		}
		strat, err := assistant.ByName(o.Strategy)
		if err != nil {
			return nil, 0, err
		}
		c := task.Generate(records, o.Seed)
		env := task.Env(c)
		prog := alog.MustParse(task.Program)
		start := time.Now()
		session := assistant.NewSession(env, prog, task.Oracle(), assistant.Config{
			Strategy:         strat,
			SubsetSeed:       uint64(o.Seed),
			Workers:          w,
			Deadline:         o.Deadline,
			DisableOptimizer: o.DisableOptimizer,
		})
		res, err := session.Run()
		if err != nil {
			return nil, 0, fmt.Errorf("experiments: parallel compare %s workers=%d: %w", taskID, w, err)
		}
		noteDegraded(o.Out, fmt.Sprintf("%s workers=%d", taskID, w), res.Degraded)
		return res, time.Since(start).Seconds(), nil
	}
	serial, serialS, err := run(1)
	if err != nil {
		return nil, err
	}
	par, parS, err := run(workers)
	if err != nil {
		return nil, err
	}
	r := &ParallelResult{
		Task: taskID, Records: records, Workers: workers,
		CPUs:    runtime.NumCPU(),
		SerialS: serialS, ParallelS: parS,
		Identical: serial.Transcript() == par.Transcript() &&
			serial.Final.String() == par.Final.String(),
		SerialStats:   serial.Stats.Snapshot(),
		ParallelStats: par.Stats.Snapshot(),
	}
	r.CacheHitRate = r.ParallelStats.CacheHitRate
	r.PoolUtilization = r.ParallelStats.PoolUtilization
	if parS > 0 {
		r.Speedup = serialS / parS
	}
	fmt.Fprintf(o.Out, "Parallel comparison: task %s, %d records, strategy %s, %d CPUs\n",
		taskID, records, o.Strategy, r.CPUs)
	fmt.Fprintf(o.Out, "%8s %10s %10s %8s %10s %9s %9s\n",
		"Workers", "Serial(s)", "Parallel(s)", "Speedup", "Identical", "HitRate", "PoolUtil")
	fmt.Fprintf(o.Out, "%8d %10.3f %10.3f %7.2fx %10v %8.1f%% %8.1f%%\n",
		r.Workers, r.SerialS, r.ParallelS, r.Speedup, r.Identical,
		100*r.CacheHitRate, 100*r.PoolUtilization)
	if !r.Identical {
		return r, fmt.Errorf("experiments: parallel run of %s diverged from serial (workers=%d)", taskID, workers)
	}
	return r, nil
}

// HotpathResult is one serial end-to-end run of a scenario with its full
// counter snapshot — the unit of before/after comparison for hot-path
// work (BENCH_HOTPATH.json pairs a committed baseline with a current run).
type HotpathResult struct {
	Task    string               `json:"task"`
	Records int                  `json:"records"`
	CPUs    int                  `json:"cpus"`
	WallS   float64              `json:"wall_s"`
	Stats   engine.StatsSnapshot `json:"stats"`
}

// Hotpath runs one scenario serially (Workers=1, so the wall time is
// scheduling-free) and reports the time plus every engine counter.
func Hotpath(o Options, taskID string, records int) (*HotpathResult, error) {
	o = o.withDefaults()
	task, err := corpus.TaskByID(taskID)
	if err != nil {
		return nil, err
	}
	strat, err := assistant.ByName(o.Strategy)
	if err != nil {
		return nil, err
	}
	c := task.Generate(records, o.Seed)
	env := task.Env(c)
	prog := alog.MustParse(task.Program)
	start := time.Now()
	// Delta reuse is pinned off: this harness isolates the serial hot path,
	// and replayed tuples would skip the very Verify/Refine/p-function work
	// being measured (the reuse axis has its own harness, Reuse).
	// The optimizer is pinned off too: its rewrites change which plan
	// shape executes, and this harness's counters (func calls, memo hits)
	// are only comparable across releases over a fixed shape. The
	// optimizer axis has its own harness, Optimizer.
	session := assistant.NewSession(env, prog, task.Oracle(), assistant.Config{
		Strategy:          strat,
		SubsetSeed:        uint64(o.Seed),
		Workers:           1,
		DisableDeltaReuse: true,
		DisableOptimizer:  true,
		Deadline:          o.Deadline,
	})
	res, err := session.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: hotpath %s: %w", taskID, err)
	}
	noteDegraded(o.Out, taskID, res.Degraded)
	r := &HotpathResult{
		Task: taskID, Records: records, CPUs: runtime.NumCPU(),
		WallS: time.Since(start).Seconds(),
		Stats: res.Stats.Snapshot(),
	}
	fmt.Fprintf(o.Out, "Hotpath: task %s, %d records, serial\n", taskID, records)
	fmt.Fprintf(o.Out, "%10s %12s %12s %12s %10s %10s\n",
		"Wall(s)", "FuncCalls", "VerifyCalls", "RefineCalls", "Fallbacks", "MemoHit")
	fmt.Fprintf(o.Out, "%10.3f %12d %12d %12d %10d %9.1f%%\n",
		r.WallS, r.Stats.FuncCalls, r.Stats.VerifyCalls, r.Stats.RefineCalls,
		r.Stats.LimitFallbacks, 100*r.Stats.FeatureMemoRate)
	return r, nil
}

// ReuseIteration pairs one session iteration's cost under delta reuse with
// the same iteration of the identical full-recomputation run (transcripts
// are byte-equal, so iterations align one to one).
type ReuseIteration struct {
	N               int     `json:"n"`
	Mode            string  `json:"mode"`
	Tuples          int     `json:"tuples"`
	DeltaWallS      float64 `json:"delta_wall_s"`
	FullWallS       float64 `json:"full_wall_s"`
	DeltaReused     int64   `json:"delta_reused"`
	DeltaRecomputed int64   `json:"delta_recomputed"`
	FullRecomputed  int64   `json:"full_recomputed"`
}

// ReuseResult compares a full-recomputation session (delta reuse disabled)
// with an incremental one on the same scenario: total and post-answer wall
// time, how many operator-input tuples each mode re-evaluated, and the
// byte-identity checks at Workers 1 and 8. The post-answer window starts at
// iteration 2 — every execution from there on follows a program change,
// which is exactly where delta evaluation can win.
type ReuseResult struct {
	Task    string `json:"task"`
	Records int    `json:"records"`
	CPUs    int    `json:"cpus"`
	// Wall-clock seconds for the whole serial session and for its
	// post-answer iterations, in each mode.
	FullS            float64 `json:"full_s"`
	DeltaS           float64 `json:"delta_s"`
	PostAnswerFullS  float64 `json:"post_answer_full_s"`
	PostAnswerDeltaS float64 `json:"post_answer_delta_s"`
	// Re-evaluated operator-input tuples per mode (deterministic), the
	// replayed count, and their ratio — the primary delta-win metric.
	FullRecomputed     int64   `json:"full_recomputed_tuples"`
	DeltaRecomputed    int64   `json:"delta_recomputed_tuples"`
	DeltaReused        int64   `json:"delta_reused_tuples"`
	RecomputeReduction float64 `json:"recompute_reduction"`
	// The same recompute comparison restricted to the post-answer window,
	// where every execution follows a program change.
	PostAnswerFullRecomputed  int64   `json:"post_answer_full_recomputed"`
	PostAnswerDeltaRecomputed int64   `json:"post_answer_delta_recomputed"`
	PostAnswerReduction       float64 `json:"post_answer_reduction"`
	// IdenticalW1/W8: the delta sessions (serial and 8 workers) match the
	// full serial session's transcript and final table byte for byte.
	IdenticalW1 bool                 `json:"identical_w1"`
	IdenticalW8 bool                 `json:"identical_w8"`
	FullStats   engine.StatsSnapshot `json:"full_stats"`
	DeltaStats  engine.StatsSnapshot `json:"delta_stats"`
	Iterations  []ReuseIteration     `json:"iterations"`
}

// Reuse runs one scenario three times — full recomputation (serial),
// delta reuse (serial), and delta reuse with 8 workers — and reports the
// delta win plus the byte-identity checks (BENCH_REUSE.json).
func Reuse(o Options, taskID string, records int) (*ReuseResult, error) {
	o = o.withDefaults()
	task, err := corpus.TaskByID(taskID)
	if err != nil {
		return nil, err
	}
	strat, err := assistant.ByName(o.Strategy)
	if err != nil {
		return nil, err
	}
	run := func(workers int, disable bool) (*assistant.Result, float64, error) {
		c := task.Generate(records, o.Seed)
		env := task.Env(c)
		prog := alog.MustParse(task.Program)
		start := time.Now()
		// Optimizer pinned off (like Hotpath): the delta-reuse counters
		// compared across releases must come from a fixed plan shape.
		session := assistant.NewSession(env, prog, task.Oracle(), assistant.Config{
			Strategy:          strat,
			SubsetSeed:        uint64(o.Seed),
			Workers:           workers,
			DisableDeltaReuse: disable,
			DisableOptimizer:  true,
			Deadline:          o.Deadline,
		})
		res, err := session.Run()
		if err != nil {
			return nil, 0, fmt.Errorf("experiments: reuse %s workers=%d disable=%v: %w", taskID, workers, disable, err)
		}
		noteDegraded(o.Out, fmt.Sprintf("%s workers=%d", taskID, workers), res.Degraded)
		return res, time.Since(start).Seconds(), nil
	}
	full, fullS, err := run(1, true)
	if err != nil {
		return nil, err
	}
	delta, deltaS, err := run(1, false)
	if err != nil {
		return nil, err
	}
	delta8, _, err := run(8, false)
	if err != nil {
		return nil, err
	}
	fs, ds := full.Stats.Snapshot(), delta.Stats.Snapshot()
	r := &ReuseResult{
		Task: taskID, Records: records, CPUs: runtime.NumCPU(),
		FullS: fullS, DeltaS: deltaS,
		FullRecomputed:  fs.TuplesRecomputed,
		DeltaRecomputed: ds.TuplesRecomputed,
		DeltaReused:     ds.TuplesReused,
		IdenticalW1: delta.Transcript() == full.Transcript() &&
			delta.Final.String() == full.Final.String(),
		IdenticalW8: delta8.Transcript() == full.Transcript() &&
			delta8.Final.String() == full.Final.String(),
		FullStats: fs, DeltaStats: ds,
	}
	if r.DeltaRecomputed > 0 {
		r.RecomputeReduction = float64(r.FullRecomputed) / float64(r.DeltaRecomputed)
	}
	for i, it := range delta.Iterations {
		ri := ReuseIteration{
			N: it.N, Mode: it.Mode, Tuples: it.Tuples,
			DeltaWallS:      it.WallS,
			DeltaReused:     it.TuplesReused,
			DeltaRecomputed: it.TuplesRecomputed,
		}
		if i < len(full.Iterations) {
			ri.FullWallS = full.Iterations[i].WallS
			ri.FullRecomputed = full.Iterations[i].TuplesRecomputed
		}
		if i >= 1 {
			r.PostAnswerDeltaS += ri.DeltaWallS
			r.PostAnswerFullS += ri.FullWallS
			r.PostAnswerFullRecomputed += ri.FullRecomputed
			r.PostAnswerDeltaRecomputed += ri.DeltaRecomputed
		}
		r.Iterations = append(r.Iterations, ri)
	}
	if r.PostAnswerDeltaRecomputed > 0 {
		r.PostAnswerReduction = float64(r.PostAnswerFullRecomputed) / float64(r.PostAnswerDeltaRecomputed)
	}
	fmt.Fprintf(o.Out, "Reuse: task %s, %d records, strategy %s\n", taskID, records, o.Strategy)
	fmt.Fprintf(o.Out, "%10s %10s %12s %12s %10s %8s %6s %6s\n",
		"Full(s)", "Delta(s)", "FullRecomp", "DeltaRecomp", "Reused", "Reduce", "IdW1", "IdW8")
	fmt.Fprintf(o.Out, "%10.3f %10.3f %12d %12d %10d %7.2fx %6v %6v\n",
		r.FullS, r.DeltaS, r.FullRecomputed, r.DeltaRecomputed, r.DeltaReused,
		r.RecomputeReduction, r.IdenticalW1, r.IdenticalW8)
	fmt.Fprintf(o.Out, "post-answer iterations: full %.3fs, delta %.3fs; recomputed %d vs %d (%.2fx)\n",
		r.PostAnswerFullS, r.PostAnswerDeltaS,
		r.PostAnswerFullRecomputed, r.PostAnswerDeltaRecomputed, r.PostAnswerReduction)
	if !r.IdenticalW1 || !r.IdenticalW8 {
		return r, fmt.Errorf("experiments: delta run of %s diverged from full recomputation (w1=%v w8=%v)",
			taskID, r.IdenticalW1, r.IdenticalW8)
	}
	return r, nil
}

// ConvergenceSummary reruns all 27 Table 3 scenarios and reports how many
// converge to exactly 100% superset (paper: 23 of 27, outliers 170%,
// 161%, 114%, 102%).
type ConvergenceSummary struct {
	Total    int
	At100    int
	Outliers []float64 // superset sizes of the non-100% scenarios
}

// Convergence runs the Section 6.2 summary.
func Convergence(o Options) (*ConvergenceSummary, error) {
	o = o.withDefaults()
	s := &ConvergenceSummary{}
	fmt.Fprintf(o.Out, "Section 6.2: convergence over 27 scenarios (scale %.2f, strategy %s)\n", o.Scale, o.Strategy)
	for _, task := range corpus.Tasks() {
		for _, full := range Table3Sizes[task.ID] {
			out, err := RunScenario(Scenario{TaskID: task.ID, Records: o.scale(full), Workers: o.Workers, Deadline: o.Deadline, DisableOptimizer: o.DisableOptimizer}, o.Strategy, o.Seed)
			if err != nil {
				return nil, err
			}
			noteDegraded(o.Out, fmt.Sprintf("%s/%d", task.ID, o.scale(full)), out.Degraded)
			s.Total++
			if out.Superset <= 100.5 && out.Missing == 0 {
				s.At100++
			} else {
				s.Outliers = append(s.Outliers, out.Superset)
			}
			fmt.Fprintf(o.Out, "  %s n=%d superset=%.0f%% missing=%d\n",
				task.ID, out.Scenario.Records, out.Superset, out.Missing)
		}
	}
	fmt.Fprintf(o.Out, "converged to 100%% in %d/%d scenarios; outliers: %v\n", s.At100, s.Total, s.Outliers)
	return s, nil
}

// engineRun executes a program and returns its expanded result size.
func engineRun(prog *alog.Program, env *engine.Env) (int, error) {
	res, err := engine.Run(prog, env)
	if err != nil {
		return 0, err
	}
	return res.NumExpandedTuples(), nil
}

// VarianceRow aggregates one task's scenario across several seeds — the
// analogue of the paper averaging each scenario over 1-3 volunteers.
type VarianceRow struct {
	Task                                   string
	Records                                int
	Runs                                   int
	MeanSuperset, MinSuperset, MaxSuperset float64
	MeanQuestions                          float64
	AllCovered                             bool // no seed lost a correct answer
}

// Variance reruns each task's Table 5 scenario under the given seeds and
// reports the spread of superset sizes and question counts.
func Variance(o Options, seeds []int64) ([]VarianceRow, error) {
	o = o.withDefaults()
	sizes := map[string]int{
		"T1": 100, "T2": 100, "T3": 100, "T4": 100, "T5": 500,
		"T6": 500, "T7": 500, "T8": 500, "T9": 500,
	}
	fmt.Fprintf(o.Out, "Variance across %d seeds (scale %.2f, strategy %s)\n", len(seeds), o.Scale, o.Strategy)
	fmt.Fprintf(o.Out, "%-4s %8s | %9s %9s %9s | %8s %8s\n",
		"Task", "Records", "ss.mean", "ss.min", "ss.max", "quest", "covered")
	var rows []VarianceRow
	for _, task := range corpus.Tasks() {
		n := o.scale(sizes[task.ID])
		row := VarianceRow{Task: task.ID, Records: n, Runs: len(seeds),
			MinSuperset: -1, AllCovered: true}
		for _, seed := range seeds {
			out, err := RunScenario(Scenario{TaskID: task.ID, Records: n, Workers: o.Workers, Deadline: o.Deadline, DisableOptimizer: o.DisableOptimizer}, o.Strategy, seed)
			if err != nil {
				return nil, err
			}
			noteDegraded(o.Out, fmt.Sprintf("%s seed=%d", task.ID, seed), out.Degraded)
			row.MeanSuperset += out.Superset
			row.MeanQuestions += float64(out.Questions)
			if row.MinSuperset < 0 || out.Superset < row.MinSuperset {
				row.MinSuperset = out.Superset
			}
			if out.Superset > row.MaxSuperset {
				row.MaxSuperset = out.Superset
			}
			if out.Missing != 0 {
				row.AllCovered = false
			}
		}
		row.MeanSuperset /= float64(len(seeds))
		row.MeanQuestions /= float64(len(seeds))
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "%-4s %8d | %8.0f%% %8.0f%% %8.0f%% | %8.1f %8v\n",
			row.Task, row.Records, row.MeanSuperset, row.MinSuperset,
			row.MaxSuperset, row.MeanQuestions, row.AllCovered)
	}
	return rows, nil
}
