package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Small scale keeps harness tests quick while preserving shapes.
func opts(buf *bytes.Buffer) Options {
	return Options{Scale: 0.05, Seed: 1, Strategy: "sim", Out: buf}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(opts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Movies", "IMDB", "GarciaMolina", "Amazon", "Barnes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestTable2ValidatesAllPrograms(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(opts(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"T1", "T5", "T9"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("Table 2 output missing %s", id)
		}
	}
}

func TestRunScenario(t *testing.T) {
	out, err := RunScenario(Scenario{TaskID: "T1", Records: 20}, "sim", 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Missing != 0 {
		t.Errorf("superset violated: %d missing", out.Missing)
	}
	if out.Superset != 100 {
		t.Errorf("T1 should converge to 100%%, got %.0f%%", out.Superset)
	}
	if _, err := RunScenario(Scenario{TaskID: "T99", Records: 10}, "sim", 1); err == nil {
		t.Error("unknown task should fail")
	}
	if _, err := RunScenario(Scenario{TaskID: "T1", Records: 10}, "bogus", 1); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestTable3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("27 scenarios are slow")
	}
	var buf bytes.Buffer
	rows, err := Table3(opts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("rows = %d, want 27", len(rows))
	}
	for _, r := range rows {
		// The paper's headline: iFlex beats Xlog in every scenario.
		if r.IFlexMin >= r.XlogMin {
			t.Errorf("%s n=%d: iFlex %.1f >= Xlog %.1f", r.Task, r.Records, r.IFlexMin, r.XlogMin)
		}
	}
	// Manual grows with size within each task.
	for i := 0; i+2 < len(rows); i += 3 {
		if !rows[i+2].ManualDNF && rows[i+2].ManualMin < rows[i].ManualMin {
			t.Errorf("%s: Manual not growing: %.1f -> %.1f", rows[i].Task, rows[i].ManualMin, rows[i+2].ManualMin)
		}
	}
}

func TestTable5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("18 sessions are slow")
	}
	var buf bytes.Buffer
	rows, err := Table5(opts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	seqWorseSomewhere := false
	for _, r := range rows {
		if r.Seq.Missing != 0 || r.Sim.Missing != 0 {
			t.Errorf("%s: superset violated (seq %d, sim %d missing)",
				r.Seq.Scenario.TaskID, r.Seq.Missing, r.Sim.Missing)
		}
		// Sequential selection is cheaper per run...
		if r.Seq.ExecSeconds > r.Sim.ExecSeconds*1.5 {
			t.Errorf("%s: seq (%.2fs) should not be much slower than sim (%.2fs)",
				r.Seq.Scenario.TaskID, r.Seq.ExecSeconds, r.Sim.ExecSeconds)
		}
		// ...but may land on much larger supersets (the paper's point).
		if r.Seq.Superset > r.Sim.Superset*2 {
			seqWorseSomewhere = true
		}
	}
	if !seqWorseSomewhere {
		t.Error("expected at least one task where sequential's superset is much larger")
	}
}

func TestTable6(t *testing.T) {
	if testing.Short() {
		t.Skip("DBLife sessions are slow")
	}
	var buf bytes.Buffer
	rows, err := Table6(opts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FinalTuples < r.TruthSize {
			t.Errorf("%s: result %d below truth %d", r.Task, r.FinalTuples, r.TruthSize)
		}
		if r.DevMinutes <= 0 {
			t.Errorf("%s: dev minutes = %v", r.Task, r.DevMinutes)
		}
	}
}

func TestScaleFloor(t *testing.T) {
	o := Options{Scale: 0.0001}.withDefaults()
	if got := o.scale(100); got != 10 {
		t.Errorf("scale floor = %d", got)
	}
	o = Options{Scale: 1}.withDefaults()
	if got := o.scale(100); got != 100 {
		t.Errorf("identity scale = %d", got)
	}
}

func TestScaling(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Scaling(Options{Scale: 1, Seed: 1, Out: &buf}, "T7", []int{20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Tuples <= rows[0].Tuples {
		t.Errorf("result size should grow with corpus: %+v", rows)
	}
	if !strings.Contains(buf.String(), "Scaling") {
		t.Error("output missing header")
	}
	if _, err := Scaling(Options{}, "T99", []int{10}); err == nil {
		t.Error("unknown task should fail")
	}
}

func TestVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sessions are slow")
	}
	var buf bytes.Buffer
	rows, err := Variance(Options{Scale: 0.03, Seed: 1, Strategy: "sim", Out: &buf}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.AllCovered {
			t.Errorf("%s: a seed lost correct answers", r.Task)
		}
		if r.MinSuperset > r.MeanSuperset || r.MeanSuperset > r.MaxSuperset {
			t.Errorf("%s: spread out of order: %+v", r.Task, r)
		}
	}
}

func TestHotpathHarness(t *testing.T) {
	var buf bytes.Buffer
	res, err := Hotpath(Options{Seed: 1, Strategy: "sim", Out: &buf}, "T9", 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallS <= 0 || res.CPUs < 1 {
		t.Errorf("implausible run: %+v", res)
	}
	if res.Stats.FuncCalls == 0 && res.Stats.VerifyCalls == 0 {
		t.Error("hotpath run recorded no predicate work; counters look dead")
	}
	if !strings.Contains(buf.String(), "Hotpath") {
		t.Error("output missing header")
	}
}

func TestReuseHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("reuse harness runs four full sessions")
	}
	var buf bytes.Buffer
	res, err := Reuse(Options{Seed: 1, Strategy: "sim", Out: &buf}, "T9", 40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IdenticalW1 || !res.IdenticalW8 {
		t.Errorf("delta run diverged: w1=%v w8=%v", res.IdenticalW1, res.IdenticalW8)
	}
	if res.DeltaReused == 0 {
		t.Error("delta run replayed no tuples")
	}
	if res.RecomputeReduction <= 1 {
		t.Errorf("delta recomputed as much as full: reduction %.2fx (full %d, delta %d)",
			res.RecomputeReduction, res.FullRecomputed, res.DeltaRecomputed)
	}
	if len(res.Iterations) == 0 || res.FullS <= 0 || res.DeltaS <= 0 {
		t.Errorf("implausible run: %+v", res)
	}
	if !strings.Contains(buf.String(), "Reuse") {
		t.Error("output missing header")
	}
}
