package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/corpus"
	"iflex/internal/engine"
	"iflex/internal/store"
	"iflex/internal/text"
)

// LiveOptions configures the live-corpus incremental harness.
type LiveOptions struct {
	// Pages is the total store size: Pages/2 Books records per table
	// (default 10000 pages).
	Pages int
	// MutatePct is the percentage of live pages updated by the committed
	// mutation (default 1).
	MutatePct float64
	// Dir is where the store is built (default: a temp dir, removed on
	// return). It must not already hold a store: the harness owns the
	// mutation history.
	Dir string
}

// LiveResult is the benchmark record for iflex-bench -table live,
// written to BENCH_LIVE.json. The headline numbers are the two
// reductions: how many fewer operator-input tuples the incremental
// re-evaluation computes, and how much less wall time it takes, than a
// from-scratch run of the same refined program over the same mutated
// corpus.
type LiveResult struct {
	Task        string  `json:"task"`
	Pages       int     `json:"pages"`
	Records     int     `json:"records"`
	MutatePct   float64 `json:"mutate_pct"`
	MutatedDocs int     `json:"mutated_docs"`
	CPUs        int     `json:"cpus"`

	IngestS float64 `json:"ingest_s"`
	// ConvergeS is the primary session's refinement dialogue (subset
	// iterations + final full evaluation) before any mutation.
	ConvergeS      float64 `json:"converge_s"`
	QuestionsAsked int     `json:"questions_asked"`

	// Live: ApplyCorpusDelta + full re-evaluation on the converged
	// session, replaying unchanged tuples from the displaced memos.
	LiveS           float64 `json:"live_s"`
	LiveReused      int64   `json:"live_reused_tuples"`
	LiveRecomputed  int64   `json:"live_recomputed_tuples"`
	CorpusPriorHits int64   `json:"corpus_prior_hits"`

	// Scratch: a fresh session over the mutated corpus running the same
	// refined program — what a system without document-delta
	// invalidation would do after any corpus change.
	ScratchS          float64 `json:"scratch_s"`
	ScratchRecomputed int64   `json:"scratch_recomputed_tuples"`

	// RecomputeReduction = scratch recomputed / live recomputed;
	// WallReduction = scratch wall / live wall (higher is better).
	RecomputeReduction float64 `json:"recompute_reduction"`
	WallReduction      float64 `json:"wall_reduction"`

	// Commit latency for the same mutation against throwaway clones of
	// the pre-mutation store: once durable (temp-file + fsync + rename +
	// directory fsync at every commit point, the default) and once with
	// NoSync. The gap is the price of crash safety (DESIGN.md §17).
	CommitSyncS   float64 `json:"commit_sync_s"`
	CommitNoSyncS float64 `json:"commit_nosync_s"`

	Tuples int `json:"tuples"`
	// IdentityChecked: the incremental result was byte-identical across
	// Workers 1/8 × optimizer on/off and to the from-scratch run.
	IdentityChecked bool                 `json:"identity_checked"`
	LiveStats       engine.StatsSnapshot `json:"live_stats"`
	ScratchStats    engine.StatsSnapshot `json:"scratch_stats"`
}

// liveTask is the workload: T9's approximate title join between the two
// Books tables — extraction chains on both sides feeding a similarity
// join, the paper's heaviest task shape.
const liveTask = "T9"

// Live benches live-corpus incremental evaluation: build a Books store,
// converge T9 on it, commit a mutation updating MutatePct% of the
// pages, fold the delta into the converged sessions, and compare the
// incremental re-evaluation against a from-scratch run of the same
// refined program. Byte-identity of the incremental result is checked
// across Workers 1/8 × optimizer on/off and against the scratch run.
func Live(o Options, lo LiveOptions) (*LiveResult, error) {
	o = o.withDefaults()
	if lo.Pages <= 0 {
		lo.Pages = 10000
	}
	if lo.MutatePct <= 0 {
		lo.MutatePct = 1
	}
	records := lo.Pages / 2
	task, err := corpus.TaskByID(liveTask)
	if err != nil {
		return nil, err
	}
	res := &LiveResult{
		Task: liveTask, Pages: 2 * records, Records: records,
		MutatePct: lo.MutatePct, CPUs: runtime.NumCPU(),
	}

	dir := lo.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "iflex-live-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = filepath.Join(tmp, "store")
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return nil, fmt.Errorf("live: %s already holds a store; the harness owns its mutation history", dir)
	}

	// Ingest the generated corpus, table by table in name order so the
	// store layout is deterministic.
	c := task.Generate(records, o.Seed)
	start := time.Now()
	w, err := store.Create(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	for _, name := range sortedTableNames(c) {
		t := c.Tables[name]
		for i, raw := range t.Raw {
			if err := w.Add(t.Docs[i].ID(), raw); err != nil {
				return nil, err
			}
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	res.IngestS = time.Since(start).Seconds()

	st, err := store.Open(dir, store.OpenOptions{})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	// setTables rebuilds the task's extensional tables from the store's
	// live view (document ids carry the table prefix); newEnv adds the
	// persistent index wiring for token prefilters and join blocking.
	setTables := func(env *engine.Env) {
		var am, bn []*text.Document
		for _, d := range st.Docs() {
			if strings.HasPrefix(d.ID(), "amazon") {
				am = append(am, d)
			} else {
				bn = append(bn, d)
			}
		}
		env.AddDocTable("Amazon", "x", am)
		env.AddDocTable("Barnes", "x", bn)
	}
	newEnv := func() *engine.Env {
		env := engine.NewEnv()
		setTables(env)
		env.DocIndex = st
		env.Postings = st
		return env
	}

	// Converge one session per identity configuration before the
	// mutation. The sequential strategy is pinned so the dialogue (and
	// with it the refined program) is cheap and deterministic — the
	// object here is the delta path, not question selection.
	type liveCfg struct {
		workers int
		opt     bool
	}
	configs := []liveCfg{{1, true}, {1, false}, {8, true}, {8, false}}
	primary := liveCfg{8, !o.DisableOptimizer}
	sessions := map[liveCfg]*assistant.Session{}
	for _, cf := range configs {
		sess := assistant.NewSession(newEnv(), alog.MustParse(task.Program), task.Oracle(), assistant.Config{
			Strategy:         assistant.Sequential{},
			SubsetSeed:       uint64(o.Seed),
			Workers:          cf.workers,
			DisableOptimizer: !cf.opt,
			Deadline:         o.Deadline,
		})
		start := time.Now()
		r, err := sess.Run()
		if err != nil {
			return nil, fmt.Errorf("live: converge workers=%d opt=%t: %w", cf.workers, cf.opt, err)
		}
		noteDegraded(o.Out, fmt.Sprintf("live workers=%d opt=%t", cf.workers, cf.opt), r.Degraded)
		if cf == primary {
			res.ConvergeS = time.Since(start).Seconds()
			res.QuestionsAsked = r.QuestionsAsked
		}
		sessions[cf] = sess
	}

	// Mutate: commit regenerated content (a different seed, so titles
	// and prices actually change) for a deterministic MutatePct% sample
	// of the live pages — the same selection iflex-corpus -mutate makes.
	regen := task.Generate(records, o.Seed+1)
	pages := map[string]string{}
	for _, t := range regen.Tables {
		for i, raw := range t.Raw {
			pages[t.Docs[i].ID()] = raw
		}
	}
	ids := make([]string, 0, st.Len())
	for _, d := range st.Docs() {
		ids = append(ids, d.ID())
	}
	sort.Slice(ids, func(i, j int) bool {
		hi, hj := liveHash(ids[i], o.Seed), liveHash(ids[j], o.Seed)
		if hi != hj {
			return hi < hj
		}
		return ids[i] < ids[j]
	})
	k := int(float64(len(ids))*lo.MutatePct/100 + 0.5)
	if k < 1 {
		k = 1
	}
	// Commit-latency probe: the same mutation committed against
	// throwaway clones of the pre-mutation store, once durable and once
	// NoSync, isolates the fsync cost of the crash-safe commit protocol.
	// Clones are taken now, before the real commit rewrites dir below.
	for _, sync := range []bool{true, false} {
		d, err := commitProbe(dir, ids[:k], pages, sync)
		if err != nil {
			return nil, fmt.Errorf("live: commit probe sync=%t: %w", sync, err)
		}
		if sync {
			res.CommitSyncS = d
		} else {
			res.CommitNoSyncS = d
		}
	}

	m, err := st.BeginMutation()
	if err != nil {
		return nil, err
	}
	for _, id := range ids[:k] {
		if err := m.Put(id, pages[id]); err != nil {
			return nil, err
		}
	}
	delta, err := m.Commit()
	if err != nil {
		return nil, err
	}
	res.MutatedDocs = k
	cd := &engine.CorpusDelta{Added: delta.Added, Updated: delta.Updated, Removed: delta.Removed}

	// Incremental re-evaluation on every converged session.
	canon := map[liveCfg]string{}
	for _, cf := range configs {
		sess := sessions[cf]
		sess.ApplyCorpusDelta(cd, setTables)
		up, err := sess.Reevaluate(o.Deadline)
		if err != nil {
			return nil, fmt.Errorf("live: reevaluate workers=%d opt=%t: %w", cf.workers, cf.opt, err)
		}
		canon[cf] = up.Final.Canonical()
		if cf == primary {
			res.LiveS = up.WallS
			res.LiveReused = up.TuplesReused
			res.LiveRecomputed = up.TuplesRecomputed
			res.CorpusPriorHits = up.CorpusPriorHits
			res.Tuples = up.FinalTuples
			res.LiveStats = sess.StatsSnapshot()
		}
	}
	for _, cf := range configs {
		if canon[cf] != canon[primary] {
			return nil, fmt.Errorf("live: incremental result drifted at workers=%d opt=%t", cf.workers, cf.opt)
		}
	}

	// From-scratch baseline: a fresh session over the mutated store
	// running the refined program the dialogue converged to.
	scratch := assistant.NewSession(newEnv(), sessions[primary].Program().Clone(),
		assistant.NewMapOracle(nil), assistant.Config{
			Strategy:         assistant.Sequential{},
			SubsetSeed:       uint64(o.Seed),
			Workers:          primary.workers,
			DisableOptimizer: !primary.opt,
			Deadline:         o.Deadline,
		})
	start = time.Now()
	sres, err := scratch.Finalize(o.Deadline)
	if err != nil {
		return nil, fmt.Errorf("live: scratch baseline: %w", err)
	}
	res.ScratchS = time.Since(start).Seconds()
	res.ScratchStats = scratch.StatsSnapshot()
	res.ScratchRecomputed = res.ScratchStats.TuplesRecomputed
	if sres.Final.Canonical() != canon[primary] {
		return nil, fmt.Errorf("live: incremental result differs from the from-scratch run")
	}
	res.IdentityChecked = true

	if res.LiveRecomputed > 0 {
		res.RecomputeReduction = float64(res.ScratchRecomputed) / float64(res.LiveRecomputed)
	}
	if res.LiveS > 0 {
		res.WallReduction = res.ScratchS / res.LiveS
	}

	fmt.Fprintf(o.Out, "Live corpus (T9, %d pages, %.2f%% mutated = %d docs, seed %d)\n",
		res.Pages, res.MutatePct, res.MutatedDocs, o.Seed)
	fmt.Fprintf(o.Out, "  ingest %.2fs; converge %.2fs (%d questions)\n",
		res.IngestS, res.ConvergeS, res.QuestionsAsked)
	fmt.Fprintf(o.Out, "  incremental: %.3fs, %d reused / %d recomputed tuples, %d priors picked up\n",
		res.LiveS, res.LiveReused, res.LiveRecomputed, res.CorpusPriorHits)
	fmt.Fprintf(o.Out, "  from-scratch: %.3fs, %d recomputed tuples\n",
		res.ScratchS, res.ScratchRecomputed)
	fmt.Fprintf(o.Out, "  reduction: %.1fx fewer recomputed tuples, %.1fx lower wall time; identity checked: %t\n",
		res.RecomputeReduction, res.WallReduction, res.IdentityChecked)
	fmt.Fprintf(o.Out, "  commit latency (%d docs): %.1fms durable, %.1fms nosync\n",
		res.MutatedDocs, res.CommitSyncS*1000, res.CommitNoSyncS*1000)
	return res, nil
}

// commitProbe copies the store at dir into a temp directory, opens the
// clone with or without fsync, stages the given page updates, and
// returns the Commit wall time in seconds. The clone is removed on
// return, so the caller's store history is untouched.
func commitProbe(dir string, ids []string, pages map[string]string, sync bool) (float64, error) {
	tmp, err := os.MkdirTemp("", "iflex-commit-probe-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(tmp)
	clone := filepath.Join(tmp, "store")
	if err := copyStoreDir(dir, clone); err != nil {
		return 0, err
	}
	st, err := store.Open(clone, store.OpenOptions{NoSync: !sync})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	m, err := st.BeginMutation()
	if err != nil {
		return 0, err
	}
	for _, id := range ids {
		if err := m.Put(id, pages[id]); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	if _, err := m.Commit(); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// copyStoreDir copies the flat store directory src into dst.
func copyStoreDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// sortedTableNames returns a corpus's table names in name order.
func sortedTableNames(c *corpus.Corpus) []string {
	names := make([]string, 0, len(c.Tables))
	for name := range c.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// liveHash is seeded FNV-1a over a document id — the same deterministic
// mutation sample iflex-corpus -mutate draws.
func liveHash(s string, seed int64) uint64 {
	h := uint64(14695981039346656037) ^ (uint64(seed) * 0x9E3779B97F4A7C15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
