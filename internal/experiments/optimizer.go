package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"iflex/internal/alog"
	"iflex/internal/corpus"
	"iflex/internal/engine"
	"iflex/internal/engine/opt"
	"iflex/internal/feature"
)

// optimizerVariant is one benchmark workload: a task corpus plus a
// program — either the task's program as written, or a literal-order
// permutation of it. Permutations matter because the compiler's greedy
// literal placement fuses a similarity join only when the developer
// happened to list the similarity literal adjacent to its join; the
// optimizer's whole job is to make plan quality independent of that.
type optimizerVariant struct {
	Task    string
	Variant string
	Program string
}

// t9SelectionFirst is T9 with the price comparison listed before the
// similarity literal. The compiler then pins the comparison directly
// over the cross product and cannot fuse the similarity into a blocked
// join — the optimizer has to rescue the plan.
const t9SelectionFirst = `
amT(x, <t1>, <np>) :- Amazon(x), extractAmazonT(x, t1, np).
bnT(y, <t2>, <bp>) :- Barnes(y), extractBarnesT(y, t2, bp).
T9(t1) :- amT(x, t1, np), bnT(y, t2, bp), np < bp, similar(t1, t2).
extractAmazonT(x, t, np) :- from(x, t), from(x, np).
extractBarnesT(y, t, bp) :- from(y, t), from(y, bp).
`

// OptimizerQuestion is one (variant, question-count) measurement point.
type OptimizerQuestion struct {
	Task    string `json:"task"`
	Variant string `json:"variant"`
	// Questions is how many oracle constraints are applied (cumulative,
	// deterministic order) — the program a session would hold after that
	// many answered questions.
	Questions int `json:"questions"`
	// UnoptS / OptS are serial fresh-context wall times of the plan as
	// compiled versus optimized.
	UnoptS  float64 `json:"unopt_s"`
	OptS    float64 `json:"opt_s"`
	Speedup float64 `json:"speedup"`
	// WinPct is the optimizer's wall-time win in percent (negative =
	// regression).
	WinPct float64 `json:"win_pct"`
	// RulesFired lists the rewrite rules that fired on this plan.
	RulesFired []string `json:"rules_fired"`
	// Identical reports byte-identity of the optimized result against
	// the unoptimized one across Workers 1/8 × delta on/off.
	Identical bool `json:"identical"`
}

// OptimizerResult is the optimizer benchmark (BENCH_OPTIMIZER.json).
// Top-level *_s fields feed iflex-bench -compare.
type OptimizerResult struct {
	Records      int                 `json:"records"`
	CPUs         int                 `json:"cpus"`
	TotalUnoptS  float64             `json:"total_unopt_s"`
	TotalOptS    float64             `json:"total_opt_s"`
	BestWinPct   float64             `json:"best_win_pct"`
	PlanWins     float64             `json:"plan_wins"` // questions won by ≥20%
	AllIdentical bool                `json:"all_identical"`
	Questions    []OptimizerQuestion `json:"questions"`
}

// oracleConstraints flattens a task's oracle answers into a
// deterministic (attr, feature, value) sequence — the constraints a
// session would accumulate, in sorted order.
func oracleConstraints(task *corpus.Task) [][3]string {
	answers := task.Oracle().Answers
	var attrs []string
	for a := range answers {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	var out [][3]string
	for _, a := range attrs {
		var feats []string
		for f := range answers[a] {
			feats = append(feats, f)
		}
		sort.Strings(feats)
		for _, f := range feats {
			if v := answers[a][f]; v != feature.Unknown {
				out = append(out, [3]string{a, f, v})
			}
		}
	}
	return out
}

// constrainedProgram returns the variant program with the first q
// oracle constraints applied.
func constrainedProgram(src string, cons [][3]string, q int) (*alog.Program, error) {
	prog, err := alog.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, c := range cons[:q] {
		parts := strings.SplitN(c[0], ".", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad attr key %q", c[0])
		}
		attr := alog.AttrRef{Pred: parts[0], Var: parts[1]}
		if err := prog.AddConstraint(attr, c[1], c[2]); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// Optimizer benchmarks the cost-based plan optimizer: for each workload
// variant and each question count it times the compiled plan against
// the optimized plan (serial, fresh context), then sweeps Workers 1/8 ×
// delta on/off asserting the optimized results are byte-identical to
// the unoptimized baseline. Delta arms chain contexts across question
// counts, so rewritten plans are also exercised as lockstep-linked
// predecessors. An identity failure is an error, not a statistic.
func Optimizer(o Options) (*OptimizerResult, error) {
	o = o.withDefaults()
	records := o.scale(5000)
	variants := []optimizerVariant{}
	for _, tid := range []string{"T6", "T9"} {
		task, err := corpus.TaskByID(tid)
		if err != nil {
			return nil, err
		}
		variants = append(variants, optimizerVariant{Task: tid, Variant: "as-written", Program: task.Program})
	}
	variants = append(variants, optimizerVariant{Task: "T9", Variant: "selection-first", Program: t9SelectionFirst})

	res := &OptimizerResult{Records: records, CPUs: runtime.NumCPU(), AllIdentical: true}
	fmt.Fprintf(o.Out, "Optimizer: %d records per table\n", records)
	fmt.Fprintf(o.Out, "%-4s %-15s %2s %10s %10s %8s %6s  %s\n",
		"Task", "Variant", "Q", "Unopt(s)", "Opt(s)", "Win", "Ident", "Rules")

	for _, v := range variants {
		task, err := corpus.TaskByID(v.Task)
		if err != nil {
			return nil, err
		}
		c := task.Generate(records, o.Seed)
		env := task.Env(c)
		cons := oracleConstraints(task)
		// Question counts: none, roughly half, all — the plan a session
		// executes early, mid-refinement, and at convergence.
		qs := []int{0, len(cons) / 2, len(cons)}
		qs = dedupInts(qs)

		model := opt.NewModel()
		// deltaArms chain one context per (optimize, workers) across
		// question counts, delta-linking each plan to its predecessor.
		type armKey struct {
			optimize bool
			workers  int
		}
		type armState struct {
			ctx  *engine.Context
			prev engine.Node
		}
		arms := map[armKey]*armState{}
		for _, ok := range []bool{false, true} {
			for _, w := range []int{1, 8} {
				ctx := engine.NewContext(env)
				ctx.Workers = w
				ctx.EnableDelta()
				arms[armKey{ok, w}] = &armState{ctx: ctx}
			}
		}

		for _, q := range qs {
			prog, err := constrainedProgram(v.Program, cons, q)
			if err != nil {
				return nil, fmt.Errorf("experiments: optimizer %s/%s q=%d: %w", v.Task, v.Variant, q, err)
			}
			compileFresh := func() (*engine.Plan, error) { return engine.Compile(prog, env) }

			// Timed arms: serial, fresh context, delta off — pure plan cost.
			// Interleaved repetitions, keeping the minimum, so allocator and
			// parse-cache warm-up doesn't flatter whichever arm runs later.
			timeArm := func(optimize bool) (*engine.Plan, float64, string, error) {
				plan, err := compileFresh()
				if err != nil {
					return nil, 0, "", err
				}
				if optimize {
					plan = opt.Optimize(plan, env, model, nil)
				}
				ctx := engine.NewContext(env)
				ctx.Workers = 1
				start := time.Now()
				tab, err := plan.Execute(ctx)
				if err != nil {
					return nil, 0, "", err
				}
				if optimize {
					model.AdoptRows(ctx.ObservedRows())
				}
				return plan, time.Since(start).Seconds(), tab.String(), nil
			}
			const reps = 2
			var unoptS, optS float64
			var baseline, optTab string
			var optPlan *engine.Plan
			for r := 0; r < reps; r++ {
				_, uS, uTab, err := timeArm(false)
				if err != nil {
					return nil, fmt.Errorf("experiments: optimizer %s/%s q=%d unopt: %w", v.Task, v.Variant, q, err)
				}
				p, oS, oTab, err := timeArm(true)
				if err != nil {
					return nil, fmt.Errorf("experiments: optimizer %s/%s q=%d opt: %w", v.Task, v.Variant, q, err)
				}
				if r == 0 || uS < unoptS {
					unoptS = uS
				}
				if r == 0 || oS < optS {
					optS = oS
				}
				baseline, optTab, optPlan = uTab, oTab, p
			}

			identical := optTab == baseline
			// Identity sweep with delta on, chained across question counts.
			for key, arm := range arms {
				plan, err := compileFresh()
				if err != nil {
					return nil, err
				}
				if key.optimize {
					plan = opt.Optimize(plan, env, model, nil)
				}
				arm.ctx.ResetDelta()
				if arm.prev != nil {
					arm.ctx.RegisterDelta(arm.prev, plan.Root)
				}
				arm.prev = plan.Root
				tab, err := plan.Execute(arm.ctx)
				if err != nil {
					return nil, fmt.Errorf("experiments: optimizer %s/%s q=%d arm %+v: %w", v.Task, v.Variant, q, key, err)
				}
				if tab.String() != baseline {
					identical = false
				}
			}

			point := OptimizerQuestion{
				Task: v.Task, Variant: v.Variant, Questions: q,
				UnoptS: unoptS, OptS: optS,
				RulesFired: optPlan.Opt.RuleTally(),
				Identical:  identical,
			}
			if optS > 0 {
				point.Speedup = unoptS / optS
			}
			if unoptS > 0 {
				point.WinPct = 100 * (unoptS - optS) / unoptS
			}
			res.Questions = append(res.Questions, point)
			res.TotalUnoptS += unoptS
			res.TotalOptS += optS
			if point.WinPct > res.BestWinPct {
				res.BestWinPct = point.WinPct
			}
			if point.WinPct >= 20 {
				res.PlanWins++
			}
			res.AllIdentical = res.AllIdentical && identical
			fmt.Fprintf(o.Out, "%-4s %-15s %2d %10.3f %10.3f %7.1f%% %6v  %s\n",
				v.Task, v.Variant, q, unoptS, optS, point.WinPct, identical,
				strings.Join(point.RulesFired, ","))
		}
	}
	fmt.Fprintf(o.Out, "total: unopt %.3fs, opt %.3fs; best win %.1f%%; %d question(s) won by ≥20%%\n",
		res.TotalUnoptS, res.TotalOptS, res.BestWinPct, int(res.PlanWins))
	if !res.AllIdentical {
		return res, fmt.Errorf("experiments: optimizer run diverged from the unoptimized baseline")
	}
	return res, nil
}

// dedupInts sorts and deduplicates.
func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
