package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"iflex/internal/alog"
	"iflex/internal/corpus"
	"iflex/internal/engine"
	"iflex/internal/markup"
	"iflex/internal/store"
	"iflex/internal/text"
)

// ScaleOptions configures the corpus-scale storage harness.
type ScaleOptions struct {
	// Pages is the DBLife corpus size (default 100000).
	Pages int
	// Dir is where the store is built (default: a temp dir, removed on
	// return). An existing store at Dir is reused, skipping ingest.
	Dir string
	// ResidentBudget bounds materialized page content in estimated bytes
	// (default 64 MiB) — the knob that keeps resident memory flat while
	// the sweep touches every page.
	ResidentBudget int64
	// Probes is how many corpus pages are replayed as whole-page
	// similarity queries (default 8).
	Probes int
	// IdentityPages caps the byte-identity sweep: when Pages is at or
	// under it, the harness re-runs the probe against an eager in-memory
	// corpus across Workers 1/8 × delta on/off × index on/off and fails
	// on any drift (default 5000; the sweep needs the eager corpus
	// resident, so it is skipped at larger scales).
	IdentityPages int
}

// ScaleResult is the benchmark record for iflex-bench -table scale,
// written to BENCH_SCALE.json. Keys ending in _s are wall times (lower
// is better); keys ending in _per_s are throughputs (higher is better —
// iflex-bench -compare fails on a >10% drop, never on a rise).
type ScaleResult struct {
	Pages  int `json:"pages"`
	Shards int `json:"shards"`
	Vocab  int `json:"vocab"`
	// StoreMB is the on-disk store size (shards + token index).
	StoreMB float64 `json:"store_mb"`
	// EagerEstimateMB estimates what holding every page materialized
	// (text + token/line indexes) would cost resident — the baseline the
	// budget bounds against.
	EagerEstimateMB float64 `json:"eager_estimate_mb"`
	BudgetMB        float64 `json:"budget_mb"`

	IngestS         float64 `json:"ingest_s"`
	IngestPagesPerS float64 `json:"ingest_pages_per_s"`
	// IndexLoadS is store open time: manifest, shard TOCs, vocabulary,
	// posting offsets — everything resident before the first query.
	IndexLoadS float64 `json:"index_load_s"`

	// Sweep: every page's text materialized once, in order, under the
	// resident budget.
	SweepS         float64 `json:"sweep_s"`
	SweepPagesPerS float64 `json:"sweep_pages_per_s"`
	// ResidentMB is the store's materialized-content estimate after the
	// sweep (must stay at or under the budget); Releases counts pages
	// demoted by the budget along the way.
	ResidentMB float64 `json:"resident_mb"`
	Releases   int64   `json:"releases"`
	PeakRSSMB  float64 `json:"peak_rss_mb"`

	// Probe: whole-page similarity queries served by the persistent
	// inverted index (postings-backed join blocking, stored token
	// sequences for the pinned comparisons).
	ProbeS         float64 `json:"probe_s"`
	ProbePagesPerS float64 `json:"probe_pages_per_s"`
	ProbeMatches   int     `json:"probe_matches"`

	IdentityChecked bool                 `json:"identity_checked"`
	Stats           engine.StatsSnapshot `json:"stats"`
}

// scaleProbeSrc finds the stored pages similar to each probe page. The
// docs side is the stored corpus scan, so the fused similarity join's
// blocking runs straight off the persistent inverted index.
const scaleProbeSrc = `S(y, x) :- probe(y), docs(x), similar(y, x).`

// Scale builds (or reuses) a sharded DBLife document store, then
// measures ingest throughput, index load time, a full content sweep
// under the resident budget, and index-served whole-page similarity
// probes. At small Pages it also proves the persistent-index path
// byte-identical to in-memory evaluation.
func Scale(o Options, so ScaleOptions) (*ScaleResult, error) {
	o = o.withDefaults()
	if so.Pages <= 0 {
		so.Pages = 100000
	}
	if so.ResidentBudget <= 0 {
		so.ResidentBudget = 64 << 20
	}
	if so.Probes <= 0 {
		so.Probes = 8
	}
	if so.IdentityPages <= 0 {
		so.IdentityPages = 5000
	}
	dir := so.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "iflex-scale-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = filepath.Join(tmp, "store")
	}
	res := &ScaleResult{Pages: so.Pages, BudgetMB: mb(so.ResidentBudget)}
	cfg := corpus.DBLifeConfig{Pages: so.Pages, Seed: o.Seed}

	// Ingest: stream pages into the store writer; nothing is retained
	// outside the writer's bounded shard/index state.
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		fmt.Fprintf(o.Out, "scale: reusing store at %s\n", dir)
	} else {
		w, err := store.Create(dir, store.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		err = corpus.StreamDBLife(cfg, nil, func(id, src string) error { return w.Add(id, src) })
		if err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		res.IngestS = time.Since(start).Seconds()
		res.IngestPagesPerS = float64(so.Pages) / res.IngestS
	}

	// Open: everything the index needs resident to answer queries.
	start := time.Now()
	s, err := store.Open(dir, store.OpenOptions{ResidentBudget: so.ResidentBudget})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	res.IndexLoadS = time.Since(start).Seconds()
	man := s.Manifest()
	res.Shards = man.Shards
	res.Vocab = man.Vocab
	res.StoreMB = mb(man.RawBytes + man.TextBytes) // shard payloads; TOC/index are small
	if sz, err := dirSize(dir); err == nil {
		res.StoreMB = mb(sz)
	}
	// Same per-page estimate the store's resident budget uses
	// (text + token/line indexes ≈ 14 bytes per text byte + overhead).
	var eagerBytes int64
	for _, d := range s.Docs() {
		eagerBytes += int64(d.Len())*14 + 512
	}
	res.EagerEstimateMB = mb(eagerBytes)

	// Sweep: materialize every page once under the budget.
	start = time.Now()
	for _, d := range s.Docs() {
		_ = d.Text()
	}
	res.SweepS = time.Since(start).Seconds()
	res.SweepPagesPerS = float64(so.Pages) / res.SweepS
	// Trimming is asynchronous; settle it so the resident/release numbers
	// reflect the whole sweep rather than racing the last trim pass.
	s.TrimWait()
	res.ResidentMB = mb(s.ResidentEstimate())
	res.Releases = s.Releases()

	// Probe pages: replay the first Probes pages of the same generator
	// stream as independent query documents.
	probes, err := samplePages(cfg, so.Probes)
	if err != nil {
		return nil, err
	}
	run := func(docs []*text.Document, indexed bool, workers int, delta, optimize bool) (*engine.Context, string, error) {
		env := engine.NewEnv()
		env.AddDocTable("probe", "y", probes)
		env.AddDocTable("docs", "x", docs)
		if indexed {
			env.DocIndex = s
			env.Postings = s
		}
		plan, err := engine.Compile(alog.MustParse(scaleProbeSrc), env)
		if err != nil {
			return nil, "", err
		}
		if optimize {
			plan = engine.OptimizePlan(plan, env, engine.OptOptions{})
		}
		ctx := engine.NewContext(env)
		ctx.Workers = workers
		if delta {
			ctx.EnableDelta()
		}
		t, err := plan.Execute(ctx)
		if err != nil {
			return nil, "", err
		}
		return ctx, t.Canonical(), nil
	}

	start = time.Now()
	ctx, canon, err := run(s.Docs(), true, o.Workers, false, !o.DisableOptimizer)
	if err != nil {
		return nil, err
	}
	res.ProbeS = time.Since(start).Seconds()
	res.ProbePagesPerS = float64(so.Pages) / res.ProbeS
	res.ProbeMatches = strings.Count(canon, "\n")
	res.Stats = ctx.Stats.Snapshot()
	if res.Stats.BlockIdxPostings == 0 {
		return nil, errors.New("scale: probe did not use the persistent postings index")
	}
	if res.ProbeMatches < so.Probes {
		return nil, fmt.Errorf("scale: %d probe matches for %d probes (each probe page is a corpus page)", res.ProbeMatches, so.Probes)
	}

	// Byte-identity: the persistent-index path against eager in-memory
	// evaluation, across workers × delta × index.
	if so.Pages <= so.IdentityPages {
		eager := eagerDocs(cfg)
		_, want, err := run(eager, false, 1, false, false)
		if err != nil {
			return nil, err
		}
		// The stored scan joins the same pages via different document
		// handles, so compare canonical forms (value bytes), not handles.
		if canon != want {
			return nil, errors.New("scale: persistent-index result differs from in-memory evaluation")
		}
		for _, workers := range []int{1, 8} {
			for _, delta := range []bool{false, true} {
				for _, optimize := range []bool{false, true} {
					_, got, err := run(s.Docs(), true, workers, delta, optimize)
					if err != nil {
						return nil, err
					}
					if got != want {
						return nil, fmt.Errorf("scale: drift at workers=%d delta=%t opt=%t", workers, delta, optimize)
					}
				}
			}
		}
		res.IdentityChecked = true
	}

	res.PeakRSSMB = peakRSSMB()
	fmt.Fprintf(o.Out, "Corpus-scale storage (DBLife, %d pages, seed %d)\n", so.Pages, o.Seed)
	fmt.Fprintf(o.Out, "  store: %d shards, %d tokens, %.1f MB on disk (eager estimate %.1f MB, budget %.1f MB)\n",
		res.Shards, res.Vocab, res.StoreMB, res.EagerEstimateMB, res.BudgetMB)
	if res.IngestS > 0 {
		fmt.Fprintf(o.Out, "  ingest: %.2fs (%.0f pages/s)\n", res.IngestS, res.IngestPagesPerS)
	}
	fmt.Fprintf(o.Out, "  index load: %.3fs\n", res.IndexLoadS)
	fmt.Fprintf(o.Out, "  sweep: %.2fs (%.0f pages/s), resident %.1f MB, %d releases\n",
		res.SweepS, res.SweepPagesPerS, res.ResidentMB, res.Releases)
	fmt.Fprintf(o.Out, "  probe: %d queries in %.2fs (%.0f pages/s), %d matches, postings-backed\n",
		so.Probes, res.ProbeS, res.ProbePagesPerS, res.ProbeMatches)
	fmt.Fprintf(o.Out, "  peak RSS %.1f MB; identity checked: %t\n", res.PeakRSSMB, res.IdentityChecked)
	return res, nil
}

// samplePages regenerates the first n pages of the stream as standalone
// probe documents (distinct IDs, so they never alias store handles).
func samplePages(cfg corpus.DBLifeConfig, n int) ([]*text.Document, error) {
	var out []*text.Document
	stop := errors.New("done")
	err := corpus.StreamDBLife(cfg, nil, func(id, src string) error {
		out = append(out, markup.MustParse(fmt.Sprintf("probe-%d", len(out)), src))
		if len(out) >= n {
			return stop
		}
		return nil
	})
	if err != nil && !errors.Is(err, stop) {
		return nil, err
	}
	return out, nil
}

// eagerDocs materializes the whole corpus in memory — the pre-store
// evaluation shape, used as the identity baseline.
func eagerDocs(cfg corpus.DBLifeConfig) []*text.Document {
	var out []*text.Document
	_ = corpus.StreamDBLife(cfg, nil, func(id, src string) error {
		out = append(out, markup.MustParse(id, src))
		return nil
	})
	return out
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// dirSize totals the regular files under dir.
func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.Mode().IsRegular() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// peakRSSMB reads the process peak resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSMB() float64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				return float64(kb) / 1024
			}
		}
	}
	return 0
}
