package experiments

import (
	"io"
	"testing"
)

// TestScaleSmall runs the corpus-scale harness at a size where the
// byte-identity sweep is active: the persistent-index probe must match
// in-memory evaluation across workers × delta × optimizer, serve its
// blocking from the postings index, and keep resident content under the
// budget (forcing releases).
func TestScaleSmall(t *testing.T) {
	res, err := Scale(Options{Seed: 1, Out: io.Discard}, ScaleOptions{
		Pages:          300,
		ResidentBudget: 64 << 10, // ~tens of pages: the sweep must demote
		Probes:         4,
		IdentityPages:  5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IdentityChecked {
		t.Fatal("identity sweep did not run at 300 pages")
	}
	if res.Stats.BlockIdxPostings == 0 {
		t.Fatal("probe join did not use the persistent postings index")
	}
	if res.Releases == 0 {
		t.Fatal("sweep under a tiny budget released no pages")
	}
	if res.ResidentMB > res.EagerEstimateMB {
		t.Fatalf("resident %.2f MB exceeds the eager estimate %.2f MB", res.ResidentMB, res.EagerEstimateMB)
	}
	if res.ProbeMatches < 4 {
		t.Fatalf("got %d probe matches, want >= 4 (each probe page is a corpus page)", res.ProbeMatches)
	}
	if res.IngestPagesPerS <= 0 || res.SweepPagesPerS <= 0 || res.ProbePagesPerS <= 0 {
		t.Fatalf("non-positive throughput: ingest %.0f sweep %.0f probe %.0f",
			res.IngestPagesPerS, res.SweepPagesPerS, res.ProbePagesPerS)
	}
}
