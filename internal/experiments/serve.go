package experiments

import (
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/corpus"
	"iflex/internal/server"
)

// ServeOptions tune the multi-tenant service benchmark.
type ServeOptions struct {
	// Tenants is the number of concurrent tenants (default 8).
	Tenants int
	// SessionsPerTenant is how many sessions each tenant runs back to
	// back (default 2).
	SessionsPerTenant int
	// Addr points at an externally running iflexd ("http://host:port");
	// empty boots an in-process server on a loopback port.
	Addr string
	// StepDeadlineMS bounds each step (0 = none).
	StepDeadlineMS int64
}

func (s ServeOptions) withDefaults() ServeOptions {
	if s.Tenants == 0 {
		s.Tenants = 8
	}
	if s.SessionsPerTenant == 0 {
		s.SessionsPerTenant = 2
	}
	return s
}

// ServeResult is the BENCH_SERVE.json shape: step-latency percentiles and
// session throughput for N concurrent tenants driving the service. The
// _s-suffixed fields are wall times (the -compare gate); counters and
// identity are informational/correctness fields.
type ServeResult struct {
	Task              string  `json:"task"`
	Records           int     `json:"records"`
	CPUs              int     `json:"cpus"`
	Tenants           int     `json:"tenants"`
	SessionsPerTenant int     `json:"sessions_per_tenant"`
	Sessions          int     `json:"sessions"`
	Steps             int     `json:"steps"`
	WallS             float64 `json:"wall_s"`
	StepP50S          float64 `json:"step_p50_s"`
	StepP99S          float64 `json:"step_p99_s"`
	SessionsPerSec    float64 `json:"sessions_per_sec"`
	StepsPerSec       float64 `json:"steps_per_sec"`
	// Identical reports that every session's streamed table was
	// byte-identical to the library-path reference (an error aborts the
	// harness before this is ever false; the field documents the check).
	Identical bool `json:"identical"`
}

// quantile picks the q-th quantile of sorted latencies.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Seconds()
}

// Serve runs the multi-tenant service benchmark: Tenants concurrent
// clients each drive SessionsPerTenant full refinement sessions over
// HTTP — create, step-answer until convergence, stream the result — and
// every streamed table is checked byte-identical to the library path
// before latencies are reported. With o.Addr empty the server runs
// in-process (sharing this process's CPUs with the clients, like a
// loopback deployment); otherwise the harness load-tests the external
// iflexd at that address.
func Serve(o Options, so ServeOptions) (*ServeResult, error) {
	o = o.withDefaults()
	so = so.withDefaults()
	taskID := "T9"
	records := o.scale(250)

	task, err := corpus.TaskByID(taskID)
	if err != nil {
		return nil, err
	}

	// Library-path reference for the byte-identity check: every server
	// session runs the same task/records/seed, so one reference covers all.
	c := task.Generate(records, o.Seed)
	ref, err := assistant.NewSession(task.Env(c), alog.MustParse(task.Program), task.Oracle(), assistant.Config{
		Strategy:         assistant.Sequential{},
		Workers:          o.Workers,
		DisableOptimizer: o.DisableOptimizer,
	}).Run()
	if err != nil {
		return nil, fmt.Errorf("library reference: %w", err)
	}
	wantTable := ref.Final.String()

	base := so.Addr
	if base == "" {
		srv := server.New(server.Config{
			MaxSessions:          so.Tenants*2 + 4,
			MaxSessionsPerTenant: so.SessionsPerTenant + 2,
			TenantWorkers:        o.Workers,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			_ = hs.Close()
			srv.Close()
		}()
		base = "http://" + ln.Addr().String()
	}

	type tenantOut struct {
		lats     []time.Duration
		sessions int
		steps    int
		err      error
	}
	outs := make([]tenantOut, so.Tenants)
	start := time.Now()
	var wg sync.WaitGroup
	for ti := 0; ti < so.Tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			cl := server.NewClient(base)
			// Each tenant gets its own connection pool so 8 tenants are 8
			// real clients, not one throttled Transport.
			cl.HTTP = &http.Client{Transport: &http.Transport{}}
			orc := task.Oracle()
			out := &outs[ti]
			for si := 0; si < so.SessionsPerTenant; si++ {
				created, err := cl.CreateSession(server.CreateSessionRequest{
					Tenant:  fmt.Sprintf("tenant-%d", ti),
					Task:    taskID,
					Records: records,
					Seed:    o.Seed, // same corpus as the library reference
					Workers: o.Workers,
				})
				if err != nil {
					out.err = fmt.Errorf("tenant %d: create: %w", ti, err)
					return
				}
				var answers []server.AnswerJSON
				for n := 0; ; n++ {
					if n > 300 {
						out.err = fmt.Errorf("tenant %d: session %s did not terminate", ti, created.ID)
						return
					}
					t0 := time.Now()
					sr, err := cl.Step(created.ID, server.StepRequest{
						Answers: answers, DeadlineMS: so.StepDeadlineMS,
					})
					out.lats = append(out.lats, time.Since(t0))
					out.steps++
					if err != nil {
						out.err = fmt.Errorf("tenant %d: step: %w", ti, err)
						return
					}
					if sr.Done {
						break
					}
					answers = answers[:0]
					for _, qj := range sr.Questions {
						q, err := server.ParseQuestion(qj)
						if err != nil {
							out.err = err
							return
						}
						ans := orc.Answer(q)
						answers = append(answers, server.AnswerJSON{Value: ans.Value, Known: ans.Known})
					}
				}
				res, err := cl.Result(created.ID, false, 0)
				if err != nil {
					out.err = fmt.Errorf("tenant %d: result: %w", ti, err)
					return
				}
				if got := res.TableString(); got != wantTable {
					out.err = fmt.Errorf("tenant %d session %s: server table differs from library path (%d vs %d bytes)",
						ti, created.ID, len(got), len(wantTable))
					return
				}
				if err := cl.Delete(created.ID); err != nil {
					out.err = fmt.Errorf("tenant %d: delete: %w", ti, err)
					return
				}
				out.sessions++
			}
		}(ti)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &ServeResult{
		Task: taskID, Records: records, CPUs: runtime.GOMAXPROCS(0),
		Tenants: so.Tenants, SessionsPerTenant: so.SessionsPerTenant,
		WallS: wall.Seconds(), Identical: true,
	}
	var lats []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		lats = append(lats, outs[i].lats...)
		res.Sessions += outs[i].sessions
		res.Steps += outs[i].steps
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.StepP50S = quantile(lats, 0.50)
	res.StepP99S = quantile(lats, 0.99)
	if wall > 0 {
		res.SessionsPerSec = float64(res.Sessions) / wall.Seconds()
		res.StepsPerSec = float64(res.Steps) / wall.Seconds()
	}

	fmt.Fprintf(o.Out, "serve: %d tenants x %d sessions (%s, %d records, %d CPUs)\n",
		so.Tenants, so.SessionsPerTenant, taskID, records, res.CPUs)
	fmt.Fprintf(o.Out, "  %d sessions, %d steps in %.2fs\n", res.Sessions, res.Steps, res.WallS)
	fmt.Fprintf(o.Out, "  step latency p50 %.4fs, p99 %.4fs\n", res.StepP50S, res.StepP99S)
	fmt.Fprintf(o.Out, "  %.2f sessions/s, %.2f steps/s\n", res.SessionsPerSec, res.StepsPerSec)
	fmt.Fprintf(o.Out, "  all session tables byte-identical to the library path\n")
	return res, nil
}
