package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestServeHarness boots the in-process server and drives the acceptance
// shape — at least 8 concurrent tenants — at test scale, checking the
// JSON result carries latency percentiles and throughput.
func TestServeHarness(t *testing.T) {
	var buf bytes.Buffer
	res, err := Serve(opts(&buf), ServeOptions{Tenants: 8, SessionsPerTenant: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants != 8 || res.Sessions != 8 {
		t.Errorf("expected 8 tenants x 1 session, got tenants=%d sessions=%d", res.Tenants, res.Sessions)
	}
	if res.Steps < res.Sessions {
		t.Errorf("fewer steps (%d) than sessions (%d)", res.Steps, res.Sessions)
	}
	if res.WallS <= 0 || res.StepP50S <= 0 || res.StepP99S < res.StepP50S {
		t.Errorf("implausible latency stats: wall=%v p50=%v p99=%v", res.WallS, res.StepP50S, res.StepP99S)
	}
	if res.SessionsPerSec <= 0 || res.StepsPerSec <= 0 {
		t.Errorf("implausible throughput: %v sessions/s, %v steps/s", res.SessionsPerSec, res.StepsPerSec)
	}
	if !res.Identical {
		t.Error("Identical should always be true on success")
	}
	for _, want := range []string{"8 tenants", "byte-identical", "p50"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestServeHarnessStepDeadline runs with a generous per-step deadline to
// cover the DeadlineMS plumbing (the deadline must not fire at this size).
func TestServeHarnessStepDeadline(t *testing.T) {
	res, err := Serve(opts(&bytes.Buffer{}), ServeOptions{
		Tenants: 2, SessionsPerTenant: 1,
		StepDeadlineMS: (10 * time.Second).Milliseconds(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 2 {
		t.Errorf("expected 2 sessions, got %d", res.Sessions)
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	lats := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	if q := quantile(lats, 0.0); q != 1 {
		t.Errorf("p0 = %v", q)
	}
	if q := quantile(lats, 1.0); q != 4 {
		t.Errorf("p100 = %v", q)
	}
	if q := quantile(lats, 0.5); q != 2 {
		t.Errorf("p50 = %v", q)
	}
}
