package fault

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"iflex/internal/store"
)

// CrashFS is a recording, write-through implementation of store.FS for
// deterministic crash-injection testing (in the style of ALICE: "All
// File Systems Are Not Created Equal", OSDI '14). The workload runs
// normally — every operation is passed through to the real filesystem —
// while CrashFS logs the exact sequence of durability-relevant
// operations (create, write, sync, close, rename, remove, syncdir) with
// their payloads. Afterwards, States enumerates the disk states a
// power-cut at every operation boundary could legally leave behind,
// under a filesystem model where:
//
//   - Directory operations (create, rename, remove) are journaled and
//     persist in program order — crash point k applies exactly the
//     first k operations' metadata effects. This matches ext4/xfs/btrfs
//     journaling; it does NOT model metadata reordering.
//   - File content persists only up to the last Sync ("strict" mode),
//     or entirely ("flushed" mode — the fs wrote back everything), or
//     anywhere in between for one file at a time ("torn" variants — an
//     unsynced tail survives partially, byte-granular).
//
// Each state can be materialized into a scratch directory and the
// system under test reopened against it. The enumeration is a pure
// function of the recorded log: same workload, same states.
type CrashFS struct {
	root string

	mu   sync.Mutex
	init map[string][]byte
	ops  []fsOp
}

type fsOpKind int

const (
	opCreate fsOpKind = iota
	opWrite
	opSync
	opClose
	opRename
	opRemove
	opSyncDir
)

type fsOp struct {
	kind fsOpKind
	path string // relative to root
	dst  string // rename destination
	data []byte // write payload
}

func (o fsOp) String() string {
	switch o.kind {
	case opCreate:
		return "create " + o.path
	case opWrite:
		return fmt.Sprintf("write %s +%dB", o.path, len(o.data))
	case opSync:
		return "sync " + o.path
	case opClose:
		return "close " + o.path
	case opRename:
		return fmt.Sprintf("rename %s -> %s", o.path, o.dst)
	case opRemove:
		return "remove " + o.path
	case opSyncDir:
		return "syncdir " + o.path
	default:
		return fmt.Sprintf("op(%d) %s", int(o.kind), o.path)
	}
}

// NewCrashFS starts recording operations under root. Files already in
// root are snapshotted as the durable initial state (the workload's
// reads go to the real filesystem, so write-through keeps them
// coherent). root not existing yet is fine — the initial state is empty.
func NewCrashFS(root string) (*CrashFS, error) {
	c := &CrashFS{root: root, init: make(map[string][]byte)}
	ents, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil
		}
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, err
		}
		c.init[e.Name()] = b
	}
	return c, nil
}

func (c *CrashFS) rel(path string) string {
	if r, err := filepath.Rel(c.root, path); err == nil {
		return r
	}
	return path
}

func (c *CrashFS) record(op fsOp) {
	c.mu.Lock()
	c.ops = append(c.ops, op)
	c.mu.Unlock()
}

// NumOps returns the number of operations recorded so far; crash points
// run 0..NumOps inclusive.
func (c *CrashFS) NumOps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ops)
}

// OpLog returns a human-readable trace of the recorded operations, for
// diagnosing a failing crash state.
func (c *CrashFS) OpLog() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.ops))
	for i, op := range c.ops {
		out[i] = op.String()
	}
	return out
}

// Create implements store.FS.
func (c *CrashFS) Create(path string) (store.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	c.record(fsOp{kind: opCreate, path: c.rel(path)})
	return &crashFile{fs: c, rel: c.rel(path), f: f}, nil
}

// Rename implements store.FS.
func (c *CrashFS) Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	c.record(fsOp{kind: opRename, path: c.rel(oldpath), dst: c.rel(newpath)})
	return nil
}

// Remove implements store.FS; missing files are not an error.
func (c *CrashFS) Remove(path string) error {
	err := os.Remove(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	c.record(fsOp{kind: opRemove, path: c.rel(path)})
	return nil
}

// SyncDir implements store.FS. The real directory fsync is skipped (the
// test process is not going to lose power); the op is recorded because
// it is a durability boundary in the model.
func (c *CrashFS) SyncDir(dir string) error {
	c.record(fsOp{kind: opSyncDir, path: c.rel(dir)})
	return nil
}

// ReadDir implements store.FS.
func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

type crashFile struct {
	fs  *CrashFS
	rel string
	f   *os.File
}

func (f *crashFile) Write(p []byte) (int, error) {
	n, err := f.f.Write(p)
	if n > 0 {
		f.fs.record(fsOp{kind: opWrite, path: f.rel, data: append([]byte(nil), p[:n]...)})
	}
	return n, err
}

func (f *crashFile) Sync() error {
	// Recorded, not executed: the model's durability boundary is what
	// matters, and skipping the real fsync keeps enumeration fast.
	f.fs.record(fsOp{kind: opSync, path: f.rel})
	return nil
}

func (f *crashFile) Close() error {
	err := f.f.Close()
	f.fs.record(fsOp{kind: opClose, path: f.rel})
	return err
}

// CrashState is one reachable post-crash disk image.
type CrashState struct {
	// Desc names the crash point and persistence mode, for failure
	// messages: e.g. `op 7/21 (rename delta-0001.idx.tmp -> delta-0001.idx), torn delta-0001.idx.tmp@3/110B`.
	Desc  string
	files map[string][]byte
}

// Files returns the state's file names, sorted.
func (s CrashState) Files() []string {
	out := make([]string, 0, len(s.files))
	for name := range s.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Materialize writes the state into dir (created if missing; dir should
// be empty — existing files with other names are not removed).
func (s CrashState) Materialize(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, data := range s.files {
		path := filepath.Join(dir, name)
		if d := filepath.Dir(path); d != dir {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return err
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func (s CrashState) fingerprint() uint64 {
	names := s.Files()
	h := fnv.New64a()
	for _, name := range names {
		fmt.Fprintf(h, "%s|%d|", name, len(s.files[name]))
		h.Write(s.files[name])
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// simFile tracks one file through the op replay: the bytes written and
// how many of them a Sync has made durable.
type simFile struct {
	buf    []byte
	synced int
}

// States enumerates every distinct post-crash disk state reachable
// under the model. For each crash point k (a power cut between op k and
// op k+1, for k in 0..NumOps): the "strict" state (unsynced content
// lost entirely), the "flushed" state (all written content persisted),
// and for every file with an unsynced tail a set of "torn" variants
// where a prefix of that tail survives — every prefix length when the
// tail is at most maxTornTail bytes (default 64 when <= 0), a
// deterministic sample of lengths when larger. Identical states are
// deduplicated, so the result is typically far smaller than the raw
// product.
func (c *CrashFS) States(maxTornTail int) []CrashState {
	if maxTornTail <= 0 {
		maxTornTail = 64
	}
	c.mu.Lock()
	ops := append([]fsOp(nil), c.ops...)
	init := make(map[string][]byte, len(c.init))
	for k, v := range c.init {
		init[k] = v
	}
	c.mu.Unlock()

	seen := make(map[uint64]bool)
	var out []CrashState
	add := func(st CrashState) {
		fp := st.fingerprint()
		if seen[fp] {
			return
		}
		seen[fp] = true
		out = append(out, st)
	}

	// Replay incrementally: files carries the simulation forward op by
	// op; at each crash point the reachable states are derived from a
	// snapshot of it.
	files := make(map[string]*simFile, len(init))
	for name, data := range init {
		files[name] = &simFile{buf: data, synced: len(data)}
	}
	for k := 0; k <= len(ops); k++ {
		if k > 0 {
			applyOp(files, ops[k-1])
		}
		at := fmt.Sprintf("op %d/%d", k, len(ops))
		if k > 0 {
			at += " (" + ops[k-1].String() + ")"
		}
		add(project(files, at+", strict", nil, 0))
		add(project(files, at+", flushed", nil, -1))
		for name, f := range files {
			tail := len(f.buf) - f.synced
			if tail <= 0 {
				continue
			}
			for _, t := range tornLens(tail, maxTornTail) {
				desc := fmt.Sprintf("%s, torn %s@%d/%dB", at, name, t, tail)
				add(project(files, desc, &name, t))
			}
		}
	}
	return out
}

func applyOp(files map[string]*simFile, op fsOp) {
	switch op.kind {
	case opCreate:
		files[op.path] = &simFile{}
	case opWrite:
		f := files[op.path]
		if f == nil {
			f = &simFile{}
			files[op.path] = f
		}
		f.buf = append(f.buf, op.data...)
	case opSync:
		if f := files[op.path]; f != nil {
			f.synced = len(f.buf)
		}
	case opRename:
		if f := files[op.path]; f != nil {
			files[op.dst] = f
			delete(files, op.path)
		}
	case opRemove:
		delete(files, op.path)
	}
}

// project renders the simulation into concrete file contents. torn, when
// non-nil, names one file whose unsynced tail survives up to tornLen
// bytes; every other file is strict. tornLen -1 (with torn nil) selects
// flushed mode: all content persists.
func project(files map[string]*simFile, desc string, torn *string, tornLen int) CrashState {
	st := CrashState{Desc: desc, files: make(map[string][]byte, len(files))}
	for name, f := range files {
		n := f.synced
		if torn == nil && tornLen < 0 {
			n = len(f.buf)
		} else if torn != nil && name == *torn {
			n = f.synced + tornLen
		}
		st.files[name] = append([]byte(nil), f.buf[:n]...)
	}
	return st
}

// tornLens picks the surviving-tail lengths to enumerate for a tail of
// the given size: every length when the tail fits the cap, otherwise a
// deterministic spread (edges and quarters) — torn-write bugs cluster
// at boundaries, and the strict/flushed projections already cover the
// 0 and tail endpoints.
func tornLens(tail, limit int) []int {
	if tail <= limit {
		out := make([]int, 0, tail-1)
		for t := 1; t < tail; t++ {
			out = append(out, t)
		}
		return out
	}
	cands := []int{1, 2, 3, tail / 8, tail / 4, tail / 2, 3 * tail / 4, tail - 2, tail - 1}
	seen := make(map[int]bool)
	var out []int
	for _, t := range cands {
		if t < 1 || t >= tail || seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
