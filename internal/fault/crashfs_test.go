package fault

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCrashFSStates scripts a tiny workload — create, partial sync,
// more writes, rename — and checks the enumeration produces exactly the
// states the model implies: metadata in order, unsynced content lost,
// torn, or flushed.
func TestCrashFSStates(t *testing.T) {
	root := t.TempDir()
	c, err := NewCrashFS(root)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Create(filepath.Join(root, "a.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("XY")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(filepath.Join(root, "a.tmp"), filepath.Join(root, "a")); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncDir(root); err != nil {
		t.Fatal(err)
	}

	// Write-through: the real directory holds the completed workload.
	if b, err := os.ReadFile(filepath.Join(root, "a")); err != nil || string(b) != "helloXY" {
		t.Fatalf("write-through file = %q, %v", b, err)
	}
	if n := c.NumOps(); n != 7 {
		t.Fatalf("NumOps = %d, want 7 (log: %v)", n, c.OpLog())
	}

	// Index the distinct states by their file contents.
	type img struct{ aTmp, a string }
	seen := map[img]string{}
	for _, st := range c.States(0) {
		var im img
		im.aTmp, im.a = "∅", "∅"
		if err := st.Materialize(t.TempDir()); err != nil {
			t.Fatalf("materialize %q: %v", st.Desc, err)
		}
		for _, name := range st.Files() {
			switch name {
			case "a.tmp":
				im.aTmp = string(stFile(t, st, name))
			case "a":
				im.a = string(stFile(t, st, name))
			default:
				t.Fatalf("state %q: unexpected file %q", st.Desc, name)
			}
		}
		if _, dup := seen[im]; dup {
			t.Fatalf("duplicate state not deduped: %q and %q", seen[im], st.Desc)
		}
		seen[im] = st.Desc
	}
	want := []img{
		{"∅", "∅"},       // before the create
		{"", "∅"},        // created, nothing durable
		{"h", "∅"},       // torn first write ...
		{"he", "∅"},      //
		{"hel", "∅"},     //
		{"hell", "∅"},    //
		{"hello", "∅"},   // synced prefix
		{"helloX", "∅"},  // torn unsynced tail
		{"helloXY", "∅"}, // flushed before rename
		{"∅", "hello"},   // renamed, tail lost
		{"∅", "helloX"},  // renamed, tail torn
		{"∅", "helloXY"}, // renamed, flushed (final)
	}
	for _, w := range want {
		if _, ok := seen[w]; !ok {
			t.Errorf("expected state %+v missing (have %v)", w, seen)
		}
	}
	if len(seen) != len(want) {
		t.Errorf("%d distinct states, want %d: %v", len(seen), len(want), seen)
	}
}

// stFile materializes the single named file's bytes via a scratch dir.
func stFile(t *testing.T, st CrashState, name string) []byte {
	t.Helper()
	dir := t.TempDir()
	if err := st.Materialize(dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}
