// Package fault is a deterministic fault-injection harness for chaos
// testing the engine's best-effort execution paths. An Injector decides
// — purely from a seed and a (site, document) pair — whether a fault
// fires, so a chaos run is exactly reproducible: same seed, same rules,
// same corpus ⇒ same faults, at any worker count and in any schedule.
//
// The injector deliberately knows nothing about the engine. It produces
// two plain closures: a Hook compatible with engine.Env.FaultHook
// (called at p-function, feature, and proc boundaries with the
// documents involved) and a ChunkHook compatible with
// engine.Context.ChunkHook (called at operator chunk boundaries).
// Latency faults sleep; error faults return an error; panic faults
// panic — which is the point: chaos tests assert the engine survives
// all three and quarantines exactly the documents the injector targets.
package fault

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Mode selects what a matching rule does when it fires.
type Mode int

const (
	// ModeError makes the hook return an error.
	ModeError Mode = iota
	// ModePanic makes the hook panic.
	ModePanic
	// ModeLatency makes the hook sleep for the rule's Latency.
	ModeLatency
	// ModeTruncate is only meaningful for Mangle: the rule marks
	// documents whose source bytes should be deterministically
	// corrupted before parsing. Hooks ignore truncate rules.
	ModeTruncate
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeLatency:
		return "latency"
	case ModeTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Rule arms one fault at one site. A rule fires for a given document
// when hash(seed, site, doc) mod Den < Num — i.e. roughly Num/Den of
// all documents fault at that site, but which ones is a pure function
// of the seed, never of timing.
type Rule struct {
	// Site names the injection point: "pfunc", "feature", "proc" for
	// the evaluation hooks, "chunk" for operator chunk boundaries.
	Site string
	// Mode is what happens when the rule fires.
	Mode Mode
	// Num/Den is the firing ratio. Den 0 is treated as 1 (always).
	Num, Den uint64
	// Latency is the sleep duration for ModeLatency rules.
	Latency time.Duration
}

// Injector decides deterministically which (site, document) pairs
// fault. Safe for concurrent use.
type Injector struct {
	seed  uint64
	rules []Rule

	disabled atomic.Bool
	// Injected counts faults actually fired (scheduling-independent
	// for error/panic modes when the engine retries deterministically).
	Injected atomic.Int64
}

// New builds an injector with the given seed and rules.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{seed: seed, rules: append([]Rule(nil), rules...)}
}

// Disable turns the injector off; hooks become no-ops. Used by chaos
// tests to re-run the same context fault-free and compare.
func (in *Injector) Disable() { in.disabled.Store(true) }

// Enable turns the injector back on.
func (in *Injector) Enable() { in.disabled.Store(false) }

// hit reports whether the rule fires for key material s.
func (in *Injector) hit(r Rule, s string) bool {
	den := r.Den
	if den == 0 {
		den = 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", in.seed, r.Site, s)
	return h.Sum64()%den < r.Num
}

// match returns the first armed rule at site that fires for doc, or nil.
func (in *Injector) match(site, doc string) *Rule {
	if in.disabled.Load() {
		return nil
	}
	for i := range in.rules {
		r := &in.rules[i]
		if r.Site != site || r.Mode == ModeTruncate {
			continue
		}
		if in.hit(*r, doc) {
			return r
		}
	}
	return nil
}

// WillFault reports whether any non-truncate rule fires for (site, doc),
// ignoring the disabled flag — it describes the schedule, not the
// current state.
func (in *Injector) WillFault(site, doc string) bool {
	for i := range in.rules {
		r := &in.rules[i]
		if r.Site != site || r.Mode == ModeTruncate {
			continue
		}
		if in.hit(*r, doc) {
			return true
		}
	}
	return false
}

// FaultyDocs returns the sorted subset of ids that fault at site —
// the oracle a chaos test compares the engine's quarantine set against.
func (in *Injector) FaultyDocs(site string, ids []string) []string {
	var out []string
	for _, id := range ids {
		if in.WillFault(site, id) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Hook returns a closure for engine.Env.FaultHook. For each document
// involved in the guarded unit of work, the first matching rule fires:
// latency sleeps (then continues scanning), error returns, panic panics.
func (in *Injector) Hook() func(site string, docs []string) error {
	return func(site string, docs []string) error {
		for _, d := range docs {
			r := in.match(site, d)
			if r == nil {
				continue
			}
			switch r.Mode {
			case ModeLatency:
				in.Injected.Add(1)
				time.Sleep(r.Latency)
			case ModePanic:
				in.Injected.Add(1)
				panic(fmt.Sprintf("fault: injected panic at %s for doc %s", site, d))
			default:
				in.Injected.Add(1)
				return fmt.Errorf("fault: injected error at %s for doc %s", site, d)
			}
		}
		return nil
	}
}

// ChunkHook returns a closure for engine.Context.ChunkHook. Rules with
// Site "chunk" fire keyed on the chunk's start index, so the schedule
// is deterministic for a fixed input size regardless of worker count.
func (in *Injector) ChunkHook() func(start, end int) error {
	return func(start, end int) error {
		if in.disabled.Load() {
			return nil
		}
		key := fmt.Sprintf("c%d", start)
		for i := range in.rules {
			r := &in.rules[i]
			if r.Site != "chunk" {
				continue
			}
			if !in.hit(*r, key) {
				continue
			}
			switch r.Mode {
			case ModeLatency:
				in.Injected.Add(1)
				time.Sleep(r.Latency)
			case ModePanic:
				in.Injected.Add(1)
				panic(fmt.Sprintf("fault: injected panic at chunk [%d,%d)", start, end))
			case ModeError:
				in.Injected.Add(1)
				return fmt.Errorf("fault: injected error at chunk [%d,%d)", start, end)
			}
		}
		return nil
	}
}

// Mangle deterministically corrupts a document's source bytes when a
// ModeTruncate rule fires for (site "truncate", doc). The corruption
// shape is chosen by the same hash, so a given document is always
// mangled the same way:
//
//	0: truncate mid-way (possibly mid-tag)
//	1: inject NUL bytes into the middle
//	2: blow up the first tag with a megabyte-scale attribute
//
// Documents no rule fires for are returned unchanged.
func (in *Injector) Mangle(doc, src string) string {
	var fired *Rule
	for i := range in.rules {
		r := &in.rules[i]
		if r.Mode != ModeTruncate {
			continue
		}
		if in.hit(*r, doc) {
			fired = r
			break
		}
	}
	if fired == nil || len(src) == 0 {
		return src
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|mangle|%s", in.seed, doc)
	hv := h.Sum64()
	switch hv % 3 {
	case 0:
		cut := int(hv % uint64(len(src)))
		if cut == 0 {
			cut = len(src) / 2
		}
		return src[:cut]
	case 1:
		mid := len(src) / 2
		return src[:mid] + "\x00\x00\x00" + src[mid:]
	default:
		i := strings.IndexByte(src, '<')
		j := -1
		if i >= 0 {
			j = strings.IndexByte(src[i:], '>')
		}
		if j <= 0 {
			return src[:len(src)/2] + "\x00" + src[len(src)/2:]
		}
		attr := ` junk="` + strings.Repeat("A", 1<<20) + `"`
		return src[:i+j] + attr + src[i+j:]
	}
}
