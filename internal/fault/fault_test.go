package fault

import (
	"strings"
	"testing"
	"time"
)

// TestChaosInjectorDeterministic: the fault schedule is a pure function
// of (seed, site, doc) — identical across calls and injector instances,
// different across seeds.
func TestChaosInjectorDeterministic(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	r := Rule{Site: "pfunc", Mode: ModeError, Num: 1, Den: 3}
	a := New(1, r)
	b := New(1, r)
	if got, want := strings.Join(a.FaultyDocs("pfunc", ids), ","), strings.Join(b.FaultyDocs("pfunc", ids), ","); got != want {
		t.Errorf("same seed, different schedules: %q vs %q", got, want)
	}
	if len(a.FaultyDocs("pfunc", ids)) == 0 {
		t.Error("1/3 rule over 10 docs fired for none")
	}
	if len(a.FaultyDocs("pfunc", ids)) == len(ids) {
		t.Error("1/3 rule over 10 docs fired for all")
	}
	if a.WillFault("feature", ids[0]) {
		t.Error("rule armed at pfunc fired at feature")
	}
	other := New(2, r)
	if strings.Join(a.FaultyDocs("pfunc", ids), ",") == strings.Join(other.FaultyDocs("pfunc", ids), ",") {
		t.Error("seeds 1 and 2 produced the same schedule (suspicious)")
	}
}

// TestChaosHookModes: error rules return errors, panic rules panic,
// disabled injectors do neither, and the Injected counter tracks fires.
func TestChaosHookModes(t *testing.T) {
	in := New(1, Rule{Site: "pfunc", Mode: ModeError, Num: 1, Den: 1})
	hook := in.Hook()
	if err := hook("pfunc", []string{"doc"}); err == nil {
		t.Error("always-on error rule returned nil")
	}
	if err := hook("feature", []string{"doc"}); err != nil {
		t.Errorf("unarmed site returned %v", err)
	}
	in.Disable()
	if err := hook("pfunc", []string{"doc"}); err != nil {
		t.Errorf("disabled injector returned %v", err)
	}
	in.Enable()
	if got := in.Injected.Load(); got != 1 {
		t.Errorf("Injected = %d, want 1", got)
	}

	pin := New(1, Rule{Site: "proc", Mode: ModePanic, Num: 1, Den: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic rule did not panic")
			}
		}()
		pin.Hook()("proc", []string{"doc"})
	}()

	lin := New(1, Rule{Site: "pfunc", Mode: ModeLatency, Num: 1, Den: 1, Latency: 5 * time.Millisecond})
	start := time.Now()
	if err := lin.Hook()("pfunc", []string{"doc"}); err != nil {
		t.Errorf("latency rule returned %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("latency rule did not sleep")
	}
}

// TestChaosMangle: document corruption is deterministic per (seed, doc),
// changes the bytes of targeted documents, and leaves others alone.
func TestChaosMangle(t *testing.T) {
	in := New(3, Rule{Site: "truncate", Mode: ModeTruncate, Num: 1, Den: 2})
	src := `<b>Title</b><br>Price: 100<br>padding padding padding`
	mangledAny := false
	for _, doc := range []string{"d1", "d2", "d3", "d4", "d5", "d6"} {
		m1 := in.Mangle(doc, src)
		m2 := in.Mangle(doc, src)
		if m1 != m2 {
			t.Errorf("doc %s: mangling not deterministic", doc)
		}
		if m1 != src {
			mangledAny = true
		}
	}
	if !mangledAny {
		t.Error("1/2 truncate rule mangled no document out of 6")
	}
	// Truncate rules never fire through the hooks.
	if err := in.Hook()("truncate", []string{"d1", "d2", "d3"}); err != nil {
		t.Errorf("hook fired on a truncate rule: %v", err)
	}
}
