// Feature memoisation. Verify and Refine are pure functions of
// (document, span, feature, parameter): documents are immutable after
// construction and Feature implementations are stateless by contract. The
// engine re-verifies the same spans across tuples, across operators of
// one plan, and — most expensively — across every trial execution of the
// assistant's question-simulation fan-out, so a process-wide-per-Env memo
// turns that repetition into map lookups. Entries never need invalidation;
// the memo simply grows with the set of distinct (span, constraint) pairs
// the session touches, which the per-document line and case indexes keep
// small and cheap to compute on miss.
package feature

import (
	"hash/maphash"
	"sync"

	"iflex/internal/text"
)

// memoShards bounds lock contention: keys hash onto independent
// RWMutex-guarded shards, so concurrent workers rarely collide.
const memoShards = 64

// memoKey identifies one Verify/Refine invocation. The document is keyed
// by identity (pointer), not ID, so two corpora loaded into one process
// never alias.
type memoKey struct {
	doc        *text.Document
	start, end int
	feat       string
	param      string
}

type memoShard struct {
	mu     sync.RWMutex
	verify map[memoKey]bool
	refine map[memoKey][]text.Assignment
}

// Memo is a sharded, concurrency-safe cache of feature Verify/Refine
// results. The zero value is not usable; construct with NewMemo. A nil
// *Memo is valid and caches nothing (every call goes to the feature).
type Memo struct {
	seed   maphash.Seed
	shards [memoShards]memoShard
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	m := &Memo{seed: maphash.MakeSeed()}
	for i := range m.shards {
		m.shards[i].verify = map[memoKey]bool{}
		m.shards[i].refine = map[memoKey][]text.Assignment{}
	}
	return m
}

func (m *Memo) shard(k memoKey) *memoShard {
	var h maphash.Hash
	h.SetSeed(m.seed)
	h.WriteString(k.doc.ID())
	h.WriteString(k.feat)
	h.WriteString(k.param)
	h.WriteByte(byte(k.start))
	h.WriteByte(byte(k.start >> 8))
	h.WriteByte(byte(k.end))
	h.WriteByte(byte(k.end >> 8))
	return &m.shards[h.Sum64()%memoShards]
}

// Verify answers f(s) = v through the cache. hit reports whether the
// result came from the cache. Errors are never cached (they indicate a
// malformed parameter, and the caller surfaces them immediately).
func (m *Memo) Verify(f Feature, s text.Span, v string) (ok, hit bool, err error) {
	if m == nil {
		ok, err = f.Verify(s, v)
		return ok, false, err
	}
	k := memoKey{doc: s.Doc(), start: s.Start(), end: s.End(), feat: f.Name(), param: v}
	sh := m.shard(k)
	sh.mu.RLock()
	ok, found := sh.verify[k]
	sh.mu.RUnlock()
	if found {
		return ok, true, nil
	}
	ok, err = f.Verify(s, v)
	if err != nil {
		return false, false, err
	}
	sh.mu.Lock()
	sh.verify[k] = ok
	sh.mu.Unlock()
	return ok, false, nil
}

// Refine computes the refinement of s under f = v through the cache. The
// returned slice is shared across callers and must not be mutated. hit
// reports whether the result came from the cache.
func (m *Memo) Refine(f Feature, s text.Span, v string) (as []text.Assignment, hit bool, err error) {
	if m == nil {
		as, err = f.Refine(s, v)
		return as, false, err
	}
	k := memoKey{doc: s.Doc(), start: s.Start(), end: s.End(), feat: f.Name(), param: v}
	sh := m.shard(k)
	sh.mu.RLock()
	as, found := sh.refine[k]
	sh.mu.RUnlock()
	if found {
		return as, true, nil
	}
	as, err = f.Refine(s, v)
	if err != nil {
		return nil, false, err
	}
	sh.mu.Lock()
	sh.refine[k] = as
	sh.mu.Unlock()
	return as, false, nil
}
