package feature

import (
	"fmt"
	"strconv"
	"strings"

	"iflex/internal/text"
)

// normFold normalises whitespace and case for context comparisons.
func normFold(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}

// precededByFeature implements preceded-by(s)="label": the text on s's
// line immediately before s ends with the label (case- and
// whitespace-insensitive). Values are assumed not to cross line boundaries
// (records in the corpora are line-structured).
type precededByFeature struct{}

func (precededByFeature) Name() string { return "preceded-by" }
func (precededByFeature) Kind() Kind   { return KindParametric }

func (precededByFeature) Verify(s text.Span, v string) (bool, error) {
	if v == "" {
		return false, fmt.Errorf("feature: preceded-by needs a non-empty label")
	}
	d := s.Doc()
	pre := d.Text()[d.LineStart(s.Start()):s.Start()]
	return strings.HasSuffix(normFold(pre), normFold(v)), nil
}

// occurrences finds case-insensitive occurrences of label in the
// document's [lo, hi) window, returning (start, end) offsets in document
// coordinates. Overlapping occurrences are all reported ("aa" occurs
// twice in "aaa"). The document's cached lower-cased text is used when
// lowering preserved byte offsets; otherwise (Unicode case mappings that
// change byte length) the window is folded per call.
func occurrences(d *text.Document, label string, lo, hi int) [][2]int {
	var window string
	if lower := d.LowerText(); len(lower) == d.Len() {
		window = lower[lo:hi]
	} else {
		window = strings.ToLower(d.Text()[lo:hi])
	}
	needle := strings.ToLower(label)
	var out [][2]int
	from := 0
	for {
		i := strings.Index(window[from:], needle)
		if i < 0 {
			return out
		}
		start := from + i
		out = append(out, [2]int{lo + start, lo + start + len(needle)})
		from = start + 1
	}
}

func (precededByFeature) Refine(s text.Span, v string) ([]text.Assignment, error) {
	if v == "" {
		return nil, fmt.Errorf("feature: preceded-by needs a non-empty label")
	}
	d := s.Doc()
	// Labels may sit just before s's start, so search a window that begins
	// at the start of the line containing s.
	lo := d.LineStart(s.Start())
	var out []text.Assignment
	for _, occ := range occurrences(d, v, lo, s.End()) {
		regionStart := occ[1]
		regionEnd := d.LineEnd(regionStart)
		if regionEnd > s.End() {
			regionEnd = s.End()
		}
		if regionStart < s.Start() {
			regionStart = s.Start()
		}
		if regionStart >= regionEnd {
			continue
		}
		if sp, ok := s.Doc().Span(regionStart, regionEnd).Shrink(); ok {
			out = append(out, text.ContainOf(sp))
		}
	}
	return text.DedupAssignments(out), nil
}

// followedByFeature implements followed-by(s)="label": the text on s's
// line immediately after s begins with the label.
type followedByFeature struct{}

func (followedByFeature) Name() string { return "followed-by" }
func (followedByFeature) Kind() Kind   { return KindParametric }

func (followedByFeature) Verify(s text.Span, v string) (bool, error) {
	if v == "" {
		return false, fmt.Errorf("feature: followed-by needs a non-empty label")
	}
	d := s.Doc()
	post := d.Text()[s.End():d.LineEnd(s.End())]
	return strings.HasPrefix(normFold(post), normFold(v)), nil
}

func (followedByFeature) Refine(s text.Span, v string) ([]text.Assignment, error) {
	if v == "" {
		return nil, fmt.Errorf("feature: followed-by needs a non-empty label")
	}
	d := s.Doc()
	hi := d.LineEnd(s.End())
	var out []text.Assignment
	for _, occ := range occurrences(d, v, s.Start(), hi) {
		regionEnd := occ[0]
		regionStart := d.LineStart(regionEnd)
		if regionStart < s.Start() {
			regionStart = s.Start()
		}
		if regionEnd > s.End() {
			regionEnd = s.End()
		}
		if regionStart >= regionEnd {
			continue
		}
		if sp, ok := s.Doc().Span(regionStart, regionEnd).Shrink(); ok {
			out = append(out, text.ContainOf(sp))
		}
	}
	return text.DedupAssignments(out), nil
}

// precLabelContains implements prec-label-contains(s)="str": the closest
// section header preceding s contains str (one of the "higher-level"
// features of Section 6.3).
type precLabelContains struct{}

func (precLabelContains) Name() string { return "prec-label-contains" }
func (precLabelContains) Kind() Kind   { return KindParametric }

func (precLabelContains) Verify(s text.Span, v string) (bool, error) {
	if v == "" {
		return false, fmt.Errorf("feature: prec-label-contains needs a non-empty string")
	}
	h, ok := s.Doc().HeaderBefore(s.Start())
	if !ok {
		return false, nil
	}
	label := s.Doc().Text()[h.Start:h.End]
	return strings.Contains(normFold(label), normFold(v)), nil
}

func (precLabelContains) Refine(s text.Span, v string) ([]text.Assignment, error) {
	if v == "" {
		return nil, fmt.Errorf("feature: prec-label-contains needs a non-empty string")
	}
	d := s.Doc()
	body := d.Text()
	headers := d.MarksOf(text.MarkHeader)
	var out []text.Assignment
	for i, h := range headers {
		label := body[h.Start:h.End]
		if !strings.Contains(normFold(label), normFold(v)) {
			continue
		}
		// The section governed by this header runs to the next header.
		regionStart := h.End
		regionEnd := len(body)
		if i+1 < len(headers) {
			regionEnd = headers[i+1].Start
		}
		if regionStart < s.Start() {
			regionStart = s.Start()
		}
		if regionEnd > s.End() {
			regionEnd = s.End()
		}
		if regionStart >= regionEnd {
			continue
		}
		if sp, ok := d.Span(regionStart, regionEnd).Shrink(); ok {
			out = append(out, text.ContainOf(sp))
		}
	}
	return text.DedupAssignments(out), nil
}

// precLabelMaxDist implements prec-label-max-dist(s)=n: the distance in
// bytes from the end of the preceding header to the start of s is <= n.
type precLabelMaxDist struct{}

func (precLabelMaxDist) Name() string { return "prec-label-max-dist" }
func (precLabelMaxDist) Kind() Kind   { return KindParametric }

func (precLabelMaxDist) bound(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("feature: prec-label-max-dist needs a non-negative integer, got %q", v)
	}
	return n, nil
}

func (f precLabelMaxDist) Verify(s text.Span, v string) (bool, error) {
	n, err := f.bound(v)
	if err != nil {
		return false, err
	}
	h, ok := s.Doc().HeaderBefore(s.Start())
	if !ok {
		return false, nil
	}
	return s.Start()-h.End <= n, nil
}

func (f precLabelMaxDist) Refine(s text.Span, v string) ([]text.Assignment, error) {
	n, err := f.bound(v)
	if err != nil {
		return nil, err
	}
	d := s.Doc()
	headers := d.MarksOf(text.MarkHeader)
	var out []text.Assignment
	for i, h := range headers {
		regionStart := h.End
		regionEnd := h.End + n
		if i+1 < len(headers) && headers[i+1].Start < regionEnd {
			regionEnd = headers[i+1].Start
		}
		if regionEnd > len(d.Text()) {
			regionEnd = len(d.Text())
		}
		if regionStart < s.Start() {
			regionStart = s.Start()
		}
		if regionEnd > s.End() {
			regionEnd = s.End()
		}
		if regionStart >= regionEnd {
			continue
		}
		if sp, ok := d.Span(regionStart, regionEnd).Shrink(); ok {
			out = append(out, text.ContainOf(sp))
		}
	}
	return text.DedupAssignments(out), nil
}

// linkToContains implements link-to-contains(s)="str": the span lies
// inside a hyperlink whose target URL contains str (case-insensitive).
// Useful for attributes that always link to a known site section.
type linkToContains struct{}

func (linkToContains) Name() string { return "link-to-contains" }
func (linkToContains) Kind() Kind   { return KindParametric }

func (linkToContains) Verify(s text.Span, v string) (bool, error) {
	if v == "" {
		return false, fmt.Errorf("feature: link-to-contains needs a non-empty string")
	}
	l, ok := s.Doc().LinkAt(s.Start())
	if !ok || s.End() > l.End {
		return false, nil
	}
	return strings.Contains(strings.ToLower(l.Target), strings.ToLower(v)), nil
}

func (linkToContains) Refine(s text.Span, v string) ([]text.Assignment, error) {
	if v == "" {
		return nil, fmt.Errorf("feature: link-to-contains needs a non-empty string")
	}
	var out []text.Assignment
	for _, l := range s.Doc().Links() {
		if !strings.Contains(strings.ToLower(l.Target), strings.ToLower(v)) {
			continue
		}
		lo, hi := l.Start, l.End
		if lo < s.Start() {
			lo = s.Start()
		}
		if hi > s.End() {
			hi = s.End()
		}
		if lo >= hi {
			continue
		}
		if sp, ok := s.Doc().Span(lo, hi).Shrink(); ok {
			out = append(out, text.ContainOf(sp))
		}
	}
	return text.DedupAssignments(out), nil
}

// inFirstHalf implements the location feature of Section 5.1.1: "does this
// attribute lie entirely in the first half of the page?"
type inFirstHalf struct{}

func (inFirstHalf) Name() string { return "in-first-half" }
func (inFirstHalf) Kind() Kind   { return KindBoolean }

func (inFirstHalf) Verify(s text.Span, v string) (bool, error) {
	mid := s.Doc().Len() / 2
	switch v {
	case Yes, DistinctYes:
		return s.End() <= mid, nil
	case No:
		return s.End() > mid, nil
	default:
		return false, errBadValue("in-first-half", v)
	}
}

func (inFirstHalf) Refine(s text.Span, v string) ([]text.Assignment, error) {
	mid := s.Doc().Len() / 2
	var lo, hi int
	switch v {
	case Yes, DistinctYes:
		lo, hi = s.Start(), mid
	case No:
		// Spans ending after the midpoint may start anywhere.
		lo, hi = s.Start(), s.End()
	default:
		return nil, errBadValue("in-first-half", v)
	}
	if hi > s.End() {
		hi = s.End()
	}
	if lo >= hi {
		return nil, nil
	}
	if sp, ok := s.Doc().Span(lo, hi).Shrink(); ok {
		return []text.Assignment{text.ContainOf(sp)}, nil
	}
	return nil, nil
}
