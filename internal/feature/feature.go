// Package feature implements iFlex's library of text-span features and
// their Verify/Refine procedures (Sections 2.2.2 and 4.2 of the paper).
//
// A domain constraint f(a) = v states that feature f of any text span that
// is a value for attribute a takes value v. Each feature implements
//
//	Verify(s, v)  — does f(s) = v hold?
//	Refine(s, v)  — all maximal sub-spans t of s with f(t) = v, each
//	                encoded as contain(t) (value "yes"-like: every
//	                sub-span still satisfies, or superset-safe) or
//	                exact(t) (value "distinct-yes"-like: the span is
//	                pinned exactly).
//
// Refine may over-approximate (return assignments encoding some values
// that do not satisfy the constraint) but must never under-approximate:
// every sub-span of s satisfying f(t)=v must be covered by the returned
// assignments. That is what preserves the paper's superset execution
// semantics. The engine re-checks earlier constraints with Verify whenever
// later refinement narrows an assignment to an exact span (Section 4.2).
package feature

import (
	"fmt"
	"sort"

	"iflex/internal/text"
)

// Common feature values. Parametric features (preceded-by, max-value, ...)
// use the parameter itself as the value string.
const (
	Yes         = "yes"
	No          = "no"
	DistinctYes = "distinct-yes"
	DistinctNo  = "distinct-no"
	Unknown     = "unknown"
)

// Kind classifies a feature's answer domain, which determines how the
// next-effort assistant phrases questions about it.
type Kind int

const (
	// KindBoolean features answer from {yes, distinct-yes, no}.
	KindBoolean Kind = iota
	// KindParametric features take a free-form parameter as their value
	// (a string, pattern, or number), e.g. preceded-by("Price:").
	KindParametric
)

// Feature is a text-span feature with Verify and Refine procedures.
// Implementations must be stateless and safe for concurrent use.
type Feature interface {
	// Name returns the feature's constraint name, e.g. "bold-font".
	Name() string
	// Kind reports the feature's answer domain.
	Kind() Kind
	// Verify reports whether f(s) = v.
	Verify(s text.Span, v string) (bool, error)
	// Refine returns assignments covering every sub-span t of s with
	// f(t) = v (see the package comment for the covering contract).
	Refine(s text.Span, v string) ([]text.Assignment, error)
}

// Constraint is a domain constraint f(attr) = value appearing in a
// description rule body.
type Constraint struct {
	Feature string
	Attr    string
	Value   string
}

// String renders the constraint as it appears in Alog source.
func (c Constraint) String() string {
	return fmt.Sprintf("%s(%s)=%q", c.Feature, c.Attr, c.Value)
}

// Registry maps feature names to implementations. The zero value is empty;
// use NewRegistry for one preloaded with every built-in feature.
type Registry struct {
	byName map[string]Feature
}

// NewRegistry returns a registry containing all built-in features.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]Feature)}
	for _, f := range builtins() {
		r.Register(f)
	}
	return r
}

// Register adds or replaces a feature. This is how a deployment adds
// domain-specific features (done once, not per Alog program).
func (r *Registry) Register(f Feature) {
	if r.byName == nil {
		r.byName = make(map[string]Feature)
	}
	r.byName[f.Name()] = f
}

// Lookup returns the feature with the given name.
func (r *Registry) Lookup(name string) (Feature, error) {
	f, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("feature: unknown feature %q", name)
	}
	return f, nil
}

// Names returns all registered feature names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// builtins lists every built-in feature implementation.
func builtins() []Feature {
	fs := []Feature{
		numericFeature{},
		paramNumFeature{name: "min-value", min: true},
		paramNumFeature{name: "max-value", min: false},
		lengthFeature{name: "max-length", max: true},
		lengthFeature{name: "min-length", max: false},
		tokensFeature{name: "max-tokens", max: true},
		tokensFeature{name: "min-tokens", max: false},
		patternFeature{name: "starts-with", anchor: anchorStart},
		patternFeature{name: "ends-with", anchor: anchorEnd},
		patternFeature{name: "matches", anchor: anchorBoth},
		capitalizedFeature{},
		precededByFeature{},
		followedByFeature{},
		precLabelContains{},
		precLabelMaxDist{},
		inFirstHalf{},
		linkToContains{},
	}
	for kind, name := range map[text.MarkKind]string{
		text.MarkBold:      "bold-font",
		text.MarkItalic:    "italic-font",
		text.MarkUnderline: "underlined",
		text.MarkLink:      "hyperlinked",
		text.MarkListItem:  "in-list",
		text.MarkTitle:     "in-title",
	} {
		fs = append(fs, markFeature{name: name, kind: kind})
	}
	return fs
}

// errBadValue builds the standard error for an unsupported feature value.
func errBadValue(feat, v string) error {
	return fmt.Errorf("feature: %s does not support value %q", feat, v)
}

// mergeRanges merges overlapping or adjacent [start,end) ranges in place.
// Input must be sorted by start. Returns the merged prefix.
type byteRange struct{ start, end int }

func mergeRanges(rs []byteRange) []byteRange {
	if len(rs) == 0 {
		return rs
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.start <= last.end {
			if r.end > last.end {
				last.end = r.end
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// clipRanges intersects sorted ranges with [lo, hi), dropping empties.
func clipRanges(rs []byteRange, lo, hi int) []byteRange {
	var out []byteRange
	for _, r := range rs {
		s, e := r.start, r.end
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if s < e {
			out = append(out, byteRange{s, e})
		}
	}
	return out
}

// complementRanges returns the gaps of sorted, merged ranges within [lo, hi).
func complementRanges(rs []byteRange, lo, hi int) []byteRange {
	var out []byteRange
	cur := lo
	for _, r := range rs {
		if r.start > cur {
			out = append(out, byteRange{cur, r.start})
		}
		if r.end > cur {
			cur = r.end
		}
	}
	if cur < hi {
		out = append(out, byteRange{cur, hi})
	}
	return out
}

// rangesToAssignments converts ranges of s.Doc() into token-trimmed
// assignments with the given mode, dropping ranges holding no whole token.
func rangesToAssignments(d *text.Document, rs []byteRange, mode text.Mode) []text.Assignment {
	var out []text.Assignment
	for _, r := range rs {
		sp, ok := d.Span(r.start, r.end).Shrink()
		if !ok {
			continue
		}
		out = append(out, text.Assignment{Mode: mode, Span: sp})
	}
	return out
}
