package feature

import (
	"strings"
	"testing"

	"iflex/internal/markup"
	"iflex/internal/text"
)

var reg = NewRegistry()

func feat(t *testing.T, name string) Feature {
	t.Helper()
	f, err := reg.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func verify(t *testing.T, name string, s text.Span, v string) bool {
	t.Helper()
	ok, err := feat(t, name).Verify(s, v)
	if err != nil {
		t.Fatalf("Verify(%s, %q): %v", name, v, err)
	}
	return ok
}

func refine(t *testing.T, name string, s text.Span, v string) []text.Assignment {
	t.Helper()
	as, err := feat(t, name).Refine(s, v)
	if err != nil {
		t.Fatalf("Refine(%s, %q): %v", name, v, err)
	}
	return as
}

func assignTexts(as []text.Assignment) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.String())
	}
	return out
}

func TestRegistryContents(t *testing.T) {
	for _, name := range []string{
		"numeric", "bold-font", "italic-font", "underlined", "hyperlinked",
		"in-list", "in-title", "preceded-by", "followed-by", "min-value",
		"max-value", "max-length", "min-length", "max-tokens", "min-tokens",
		"starts-with", "ends-with", "matches", "capitalized",
		"prec-label-contains", "prec-label-max-dist", "in-first-half",
	} {
		if _, err := reg.Lookup(name); err != nil {
			t.Errorf("missing builtin %s: %v", name, err)
		}
	}
	if _, err := reg.Lookup("no-such-feature"); err == nil {
		t.Error("lookup of unknown feature should fail")
	}
	if len(reg.Names()) < 20 {
		t.Errorf("expected >= 20 builtins, got %d", len(reg.Names()))
	}
}

func TestNumericVerify(t *testing.T) {
	d := markup.MustParse("d", "Price: 351000 or $4,700.50 but not words")
	num := d.Span(7, 13)
	if !verify(t, "numeric", num, Yes) {
		t.Error("351000 should verify numeric=yes")
	}
	if verify(t, "numeric", num, No) {
		t.Error("351000 should fail numeric=no")
	}
	word := d.Span(14, 16) // "or"
	if verify(t, "numeric", word, Yes) || !verify(t, "numeric", word, No) {
		t.Error("word numeric values wrong")
	}
}

func TestNumericRefine(t *testing.T) {
	d := markup.MustParse("d", "Sqft: 2750 price 351000 nice")
	as := refine(t, "numeric", d.WholeSpan(), Yes)
	if len(as) != 2 {
		t.Fatalf("numeric refine = %v", assignTexts(as))
	}
	for _, a := range as {
		if a.Mode != text.Exact {
			t.Errorf("numeric refine should be exact: %v", a)
		}
	}
	if as[0].Span.Text() != "2750" || as[1].Span.Text() != "351000" {
		t.Errorf("numeric tokens = %v", assignTexts(as))
	}
}

func TestNumericRefineNo(t *testing.T) {
	d := markup.MustParse("d", "alpha 42 beta gamma")
	as := refine(t, "numeric", d.WholeSpan(), No)
	// Two gaps: "alpha" and "beta gamma".
	if len(as) != 2 || as[0].Span.Text() != "alpha" || as[1].Span.Text() != "beta gamma" {
		t.Fatalf("numeric=no refine = %v", assignTexts(as))
	}
}

func TestMinMaxValue(t *testing.T) {
	d := markup.MustParse("d", "351000 619000 4700")
	whole := d.WholeSpan()
	as := refine(t, "min-value", whole, "500000")
	if len(as) != 1 || as[0].Span.Text() != "619000" {
		t.Fatalf("min-value refine = %v", assignTexts(as))
	}
	as = refine(t, "max-value", whole, "5000")
	if len(as) != 1 || as[0].Span.Text() != "4700" {
		t.Fatalf("max-value refine = %v", assignTexts(as))
	}
	if !verify(t, "min-value", d.Span(7, 13), "500000") {
		t.Error("619000 >= 500000 should verify")
	}
	if verify(t, "min-value", d.Span(0, 6), "500000") {
		t.Error("351000 >= 500000 should fail")
	}
	if _, err := feat(t, "min-value").Verify(whole, "not-a-number"); err == nil {
		t.Error("non-numeric bound should error")
	}
}

func TestBoldVerifyAndRefine(t *testing.T) {
	d := markup.MustParse("d", "plain <b>Basktall HS</b> plain <b>Franklin</b> end")
	boldSpans := d.MarksOf(text.MarkBold)
	if len(boldSpans) != 2 {
		t.Fatalf("setup: %d bold marks", len(boldSpans))
	}
	b0 := d.Span(boldSpans[0].Start, boldSpans[0].End)
	if !verify(t, "bold-font", b0, Yes) {
		t.Error("bold span should verify bold=yes")
	}
	if !verify(t, "bold-font", b0, DistinctYes) {
		t.Error("maximal bold span should verify distinct-yes")
	}
	sub := b0.Sub(b0.Start(), b0.Start()+8) // "Basktall"
	if !verify(t, "bold-font", sub, Yes) {
		t.Error("sub-span of bold should verify yes")
	}
	if verify(t, "bold-font", sub, DistinctYes) {
		t.Error("non-maximal bold span should fail distinct-yes")
	}
	plain := d.Span(0, 5)
	if !verify(t, "bold-font", plain, No) || verify(t, "bold-font", plain, Yes) {
		t.Error("plain span bold values wrong")
	}

	as := refine(t, "bold-font", d.WholeSpan(), Yes)
	if len(as) != 2 || as[0].Mode != text.Contain {
		t.Fatalf("bold refine yes = %v", assignTexts(as))
	}
	as = refine(t, "bold-font", d.WholeSpan(), DistinctYes)
	if len(as) != 2 || as[0].Mode != text.Exact || as[0].Span.Text() != "Basktall HS" {
		t.Fatalf("bold refine distinct-yes = %v", assignTexts(as))
	}
	as = refine(t, "bold-font", d.WholeSpan(), No)
	joined := strings.Join(assignTexts(as), " ")
	if strings.Contains(joined, "Basktall") || !strings.Contains(joined, "plain") {
		t.Fatalf("bold refine no = %v", assignTexts(as))
	}
}

// The paper's italics example (Section 4.2): "Price: 35.99. Only two left."
// with price italic. italics=yes refines to contain("Price: 35.99."); with
// only 35.99 italic, italics=distinct-yes refines to exact("35.99.").
func TestPaperItalicsExample(t *testing.T) {
	d1 := markup.MustParse("p1", "<i>Price: 35.99.</i> Only two left.")
	as := refine(t, "italic-font", d1.WholeSpan(), Yes)
	if len(as) != 1 || as[0].Mode != text.Contain || as[0].Span.Text() != "Price: 35.99." {
		t.Fatalf("refine yes = %v", assignTexts(as))
	}
	d2 := markup.MustParse("p2", "Price: <i>35.99.</i> Only two left.")
	as = refine(t, "italic-font", d2.WholeSpan(), DistinctYes)
	if len(as) != 1 || as[0].Mode != text.Exact || as[0].Span.Text() != "35.99." {
		t.Fatalf("refine distinct-yes = %v", assignTexts(as))
	}
}

func TestMarkFeatureMergesAdjacentMarks(t *testing.T) {
	d := markup.MustParse("d", "<b>one</b><b> two</b> rest")
	as := refine(t, "bold-font", d.WholeSpan(), Yes)
	if len(as) != 1 || as[0].Span.NormText() != "one two" {
		t.Fatalf("adjacent bold marks not merged: %v", assignTexts(as))
	}
}

func TestInListAndTitle(t *testing.T) {
	d := markup.MustParse("d", "<title>Top Movies</title><ul><li>The Godfather</li><li>Casablanca</li></ul>")
	as := refine(t, "in-list", d.WholeSpan(), Yes)
	if len(as) != 2 {
		t.Fatalf("in-list refine = %v", assignTexts(as))
	}
	as = refine(t, "in-title", d.WholeSpan(), Yes)
	if len(as) != 1 || as[0].Span.NormText() != "Top Movies" {
		t.Fatalf("in-title refine = %v", assignTexts(as))
	}
}

func TestPrecededBy(t *testing.T) {
	d := markup.MustParse("d", "<p>Sqft: 2750</p><p>High school: Vanhise High</p>")
	body := d.Text()
	start := strings.Index(body, "Vanhise")
	vh := d.Span(start, start+len("Vanhise High"))
	if !verify(t, "preceded-by", vh, "High school:") {
		t.Error("Vanhise High should be preceded by 'High school:'")
	}
	if verify(t, "preceded-by", vh, "Sqft:") {
		t.Error("wrong label accepted")
	}
	as := refine(t, "preceded-by", d.WholeSpan(), "High school:")
	if len(as) != 1 || as[0].Span.NormText() != "Vanhise High" {
		t.Fatalf("preceded-by refine = %v", assignTexts(as))
	}
}

func TestFollowedBy(t *testing.T) {
	d := markup.MustParse("d", "<p>4700 sqft total</p>")
	body := d.Text()
	start := strings.Index(body, "4700")
	sp := d.Span(start, start+4)
	if !verify(t, "followed-by", sp, "sqft") {
		t.Error("4700 should be followed by 'sqft'")
	}
	as := refine(t, "followed-by", d.WholeSpan(), "sqft")
	if len(as) != 1 || as[0].Span.NormText() != "4700" {
		t.Fatalf("followed-by refine = %v", assignTexts(as))
	}
}

func TestMaxLength(t *testing.T) {
	d := markup.MustParse("d", "aa bb cc ddddddddddd")
	whole := d.WholeSpan()
	if !verify(t, "max-length", d.Span(0, 5), "5") || verify(t, "max-length", whole, "5") {
		t.Error("max-length verify wrong")
	}
	as := refine(t, "max-length", whole, "5")
	// Maximal runs of length <= 5: "aa bb" and "bb cc"; the long token is excluded.
	joined := strings.Join(assignTexts(as), " ")
	if strings.Contains(joined, "ddd") {
		t.Fatalf("max-length refine includes long token: %v", assignTexts(as))
	}
	if len(as) == 0 {
		t.Fatal("max-length refine empty")
	}
	// Coverage: every token-aligned sub-span of length <= 5 is covered.
	whole.SubSpans(func(s text.Span) bool {
		if s.Len() <= 5 {
			covered := false
			for _, a := range as {
				if a.Covers(s) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("sub-span %q (len %d) not covered", s.Text(), s.Len())
			}
		}
		return true
	})
}

func TestMinLengthAndTokens(t *testing.T) {
	d := markup.MustParse("d", "one two three")
	whole := d.WholeSpan()
	if !verify(t, "min-length", whole, "10") || verify(t, "min-length", d.Span(0, 3), "10") {
		t.Error("min-length verify wrong")
	}
	if !verify(t, "min-tokens", whole, "3") || verify(t, "min-tokens", whole, "4") {
		t.Error("min-tokens verify wrong")
	}
	as := refine(t, "max-tokens", whole, "2")
	if len(as) != 2 { // windows "one two" and "two three"
		t.Fatalf("max-tokens refine = %v", assignTexts(as))
	}
	as = refine(t, "max-tokens", whole, "5")
	if len(as) != 1 || as[0].Span.NormText() != "one two three" {
		t.Fatalf("max-tokens(5) refine = %v", assignTexts(as))
	}
}

func TestPatternFeatures(t *testing.T) {
	d := markup.MustParse("d", "SIGMOD 2005 was in Baltimore")
	conf := d.Span(0, 11) // "SIGMOD 2005"
	if !verify(t, "starts-with", conf, "[A-Z][A-Z]+") {
		t.Error("starts-with failed")
	}
	if !verify(t, "ends-with", conf, `19\d\d|20\d\d`) {
		t.Error("ends-with failed")
	}
	if !verify(t, "matches", d.Span(7, 11), `\d{4}`) {
		t.Error("matches failed")
	}
	if verify(t, "matches", conf, `\d{4}`) {
		t.Error("matches should require full match")
	}
	as := refine(t, "matches", d.WholeSpan(), `\d{4}`)
	if len(as) != 1 || as[0].Span.Text() != "2005" {
		t.Fatalf("matches refine = %v", assignTexts(as))
	}
	if _, err := feat(t, "matches").Verify(conf, "("); err == nil {
		t.Error("bad pattern should error")
	}
}

func TestStartsWithRefineCoverage(t *testing.T) {
	d := markup.MustParse("d", "noise VLDB 2001 proceedings")
	whole := d.WholeSpan()
	as := refine(t, "starts-with", whole, "[A-Z]{3,}")
	// Every sub-span verifying starts-with must be covered.
	whole.SubSpans(func(s text.Span) bool {
		ok, _ := feat(t, "starts-with").Verify(s, "[A-Z]{3,}")
		if ok {
			covered := false
			for _, a := range as {
				if a.Covers(s) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("verifying sub-span %q not covered by %v", s.Text(), assignTexts(as))
			}
		}
		return true
	})
}

func TestCapitalized(t *testing.T) {
	d := markup.MustParse("d", "The Godfather is great")
	if !verify(t, "capitalized", d.Span(0, 13), Yes) {
		t.Error("The Godfather should be capitalized")
	}
	if verify(t, "capitalized", d.WholeSpan(), Yes) {
		t.Error("whole span is not all capitalized")
	}
	as := refine(t, "capitalized", d.WholeSpan(), Yes)
	if len(as) != 1 || as[0].Span.Text() != "The Godfather" {
		t.Fatalf("capitalized refine = %v", assignTexts(as))
	}
	as = refine(t, "capitalized", d.WholeSpan(), No)
	if len(as) != 1 || as[0].Mode != text.Contain {
		t.Fatalf("capitalized=no refine = %v", assignTexts(as))
	}
}

func TestPrecLabel(t *testing.T) {
	d := markup.MustParse("d", "<h2>Panel Members</h2><p>Alice Smith</p><p>Bob Jones</p><h2>Program</h2><p>Carol White</p>")
	body := d.Text()
	alice := d.Span(strings.Index(body, "Alice"), strings.Index(body, "Alice")+len("Alice Smith"))
	carol := d.Span(strings.Index(body, "Carol"), strings.Index(body, "Carol")+len("Carol White"))
	if !verify(t, "prec-label-contains", alice, "panel") {
		t.Error("Alice should be under the Panel header")
	}
	if verify(t, "prec-label-contains", carol, "panel") {
		t.Error("Carol is under Program, not Panel")
	}
	as := refine(t, "prec-label-contains", d.WholeSpan(), "panel")
	if len(as) != 1 {
		t.Fatalf("prec-label-contains refine = %v", assignTexts(as))
	}
	if got := as[0].Span.NormText(); !strings.Contains(got, "Alice") || strings.Contains(got, "Carol") {
		t.Fatalf("panel section = %q", got)
	}
	if !verify(t, "prec-label-max-dist", alice, "700") {
		t.Error("Alice within 700 bytes of header")
	}
	if verify(t, "prec-label-max-dist", alice, "0") {
		t.Error("distance 0 should fail")
	}
}

func TestInFirstHalf(t *testing.T) {
	d := markup.MustParse("d", "early words come first and then later words come last here")
	first := d.Span(0, 5)
	last := d.Span(d.Len()-4, d.Len())
	if !verify(t, "in-first-half", first, Yes) || verify(t, "in-first-half", last, Yes) {
		t.Error("in-first-half verify wrong")
	}
	as := refine(t, "in-first-half", d.WholeSpan(), Yes)
	if len(as) != 1 || as[0].Span.End() > d.Len()/2 {
		t.Fatalf("in-first-half refine = %v", assignTexts(as))
	}
}

func TestBadValuesError(t *testing.T) {
	d := markup.MustParse("d", "word")
	s := d.WholeSpan()
	for _, name := range []string{"numeric", "bold-font", "capitalized", "in-first-half"} {
		if _, err := feat(t, name).Verify(s, "sideways"); err == nil {
			t.Errorf("%s.Verify with bad value should error", name)
		}
		if _, err := feat(t, name).Refine(s, "sideways"); err == nil {
			t.Errorf("%s.Refine with bad value should error", name)
		}
	}
	if _, err := feat(t, "preceded-by").Verify(s, ""); err == nil {
		t.Error("empty preceded-by label should error")
	}
	if _, err := feat(t, "max-length").Verify(s, "-3"); err == nil {
		t.Error("negative max-length should error")
	}
}

func TestCustomFeatureRegistration(t *testing.T) {
	r := NewRegistry()
	r.Register(markFeature{name: "shouty", kind: text.MarkBold})
	if _, err := r.Lookup("shouty"); err != nil {
		t.Fatal(err)
	}
}

// Property-style check: for the mark features and a generated doc, Refine
// output covers exactly the sub-spans Verify accepts for value "yes".
func TestRefineVerifyConsistencyBold(t *testing.T) {
	d := markup.MustParse("d", "aa <b>bb cc</b> dd <b>ee</b> ff gg")
	whole := d.WholeSpan()
	as := refine(t, "bold-font", whole, Yes)
	whole.SubSpans(func(s text.Span) bool {
		ok, _ := feat(t, "bold-font").Verify(s, Yes)
		covered := false
		for _, a := range as {
			if a.Covers(s) {
				covered = true
				break
			}
		}
		if ok != covered {
			t.Errorf("span %q: verify=%v covered=%v", s.Text(), ok, covered)
		}
		return true
	})
}

func TestLinkToContains(t *testing.T) {
	d := markup.MustParse("d", `See <a href="http://imdb.com/title/tt1">The Godfather</a> and <a href="http://example.org/x">other</a> text`)
	body := d.Text()
	g := d.Span(strings.Index(body, "The Godfather"), strings.Index(body, "The Godfather")+len("The Godfather"))
	if !verify(t, "link-to-contains", g, "imdb.com") {
		t.Error("linked span should verify its target")
	}
	if verify(t, "link-to-contains", g, "example.org") {
		t.Error("wrong target accepted")
	}
	plain := d.Span(0, 3)
	if verify(t, "link-to-contains", plain, "imdb.com") {
		t.Error("unlinked span accepted")
	}
	as := refine(t, "link-to-contains", d.WholeSpan(), "imdb")
	if len(as) != 1 || as[0].Span.NormText() != "The Godfather" {
		t.Fatalf("refine = %v", assignTexts(as))
	}
	if _, err := feat(t, "link-to-contains").Verify(g, ""); err == nil {
		t.Error("empty parameter should error")
	}
}

func TestMarkupHrefVariants(t *testing.T) {
	cases := map[string]string{
		`<a href="http://x/y">t</a>`:  "http://x/y",
		`<a href='http://q'>t</a>`:    "http://q",
		`<a href=http://bare>t</a>`:   "http://bare",
		`<a class="c" href="u">t</a>`: "u",
		`<a>t</a>`:                    "",
	}
	for src, want := range cases {
		d := markup.MustParse("d", src)
		links := d.Links()
		if want == "" {
			if len(links) != 0 {
				t.Errorf("%s: links = %v", src, links)
			}
			continue
		}
		if len(links) != 1 || links[0].Target != want {
			t.Errorf("%s: links = %v, want target %q", src, links, want)
		}
	}
}

func TestHyperlinkedAndUnderlined(t *testing.T) {
	d := markup.MustParse("d", `plain <u>low line</u> and <a href="u">anchor text</a> tail`)
	as := refine(t, "underlined", d.WholeSpan(), Yes)
	if len(as) != 1 || as[0].Span.NormText() != "low line" {
		t.Fatalf("underlined refine = %v", assignTexts(as))
	}
	as = refine(t, "hyperlinked", d.WholeSpan(), DistinctYes)
	if len(as) != 1 || as[0].Mode != text.Exact || as[0].Span.NormText() != "anchor text" {
		t.Fatalf("hyperlinked refine = %v", assignTexts(as))
	}
}

func TestEndsWithRefineCoverage(t *testing.T) {
	d := markup.MustParse("d", "proceedings of VLDB 2001 in Rome")
	whole := d.WholeSpan()
	pat := `19\d\d|20\d\d`
	as := refine(t, "ends-with", whole, pat)
	whole.SubSpans(func(s text.Span) bool {
		ok, _ := feat(t, "ends-with").Verify(s, pat)
		if ok {
			covered := false
			for _, a := range as {
				if a.Covers(s) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("verifying sub-span %q not covered", s.Text())
			}
		}
		return true
	})
}

func TestMinLengthRefine(t *testing.T) {
	d := markup.MustParse("d", "tiny but quite long run of words")
	as := refine(t, "min-length", d.WholeSpan(), "10")
	if len(as) != 1 || as[0].Mode != text.Contain {
		t.Fatalf("min-length refine = %v", assignTexts(as))
	}
	// A span shorter than the bound refines to nothing.
	as = refine(t, "min-length", d.Span(0, 4), "10")
	if len(as) != 0 {
		t.Fatalf("short span refine = %v", assignTexts(as))
	}
}

func TestMinTokensRefine(t *testing.T) {
	d := markup.MustParse("d", "one two three")
	as := refine(t, "min-tokens", d.WholeSpan(), "2")
	if len(as) != 1 {
		t.Fatalf("min-tokens refine = %v", assignTexts(as))
	}
	as = refine(t, "min-tokens", d.Span(0, 3), "2")
	if len(as) != 0 {
		t.Fatalf("min-tokens on 1 token = %v", assignTexts(as))
	}
}

func TestNumericDistinctYes(t *testing.T) {
	d := markup.MustParse("d", "42 fish")
	if !verify(t, "numeric", d.Span(0, 2), DistinctYes) {
		t.Error("distinct-yes should behave like yes for numeric")
	}
	as := refine(t, "numeric", d.WholeSpan(), DistinctYes)
	if len(as) != 1 || as[0].Span.Text() != "42" {
		t.Fatalf("refine = %v", assignTexts(as))
	}
}

func TestPrecLabelMaxDistRefine(t *testing.T) {
	d := markup.MustParse("d", "<h2>Panel</h2><p>Alice Smith and later on more names beyond</p>")
	as := refine(t, "prec-label-max-dist", d.WholeSpan(), "15")
	if len(as) != 1 {
		t.Fatalf("refine = %v", assignTexts(as))
	}
	if got := as[0].Span.NormText(); !strings.HasPrefix(got, "Alice") || strings.Contains(got, "beyond") {
		t.Errorf("region = %q", got)
	}
	if _, err := feat(t, "prec-label-max-dist").Refine(d.WholeSpan(), "x"); err == nil {
		t.Error("non-numeric distance should error")
	}
}

func TestInFirstHalfRefineNo(t *testing.T) {
	d := markup.MustParse("d", "front words here and back words there")
	as := refine(t, "in-first-half", d.WholeSpan(), No)
	if len(as) != 1 {
		t.Fatalf("refine(no) = %v", assignTexts(as))
	}
}

func TestFollowedByVerifyMiss(t *testing.T) {
	d := markup.MustParse("d", "100 units")
	if verify(t, "followed-by", d.Span(0, 3), "dollars") {
		t.Error("wrong following label accepted")
	}
}

func TestOccurrencesSelfOverlap(t *testing.T) {
	// Overlapping occurrences must all be reported: "aa" occurs at 0 and 1
	// in "aaa". A scanner that resumes past the end of each match would
	// find only the first.
	d := markup.MustParse("d", "aaa")
	occs := occurrences(d, "aa", 0, 3)
	want := [][2]int{{0, 2}, {1, 3}}
	if len(occs) != len(want) {
		t.Fatalf("occurrences(aa, aaa) = %v, want %v", occs, want)
	}
	for i := range want {
		if occs[i] != want[i] {
			t.Errorf("occurrence %d = %v, want %v", i, occs[i], want[i])
		}
	}
}

func TestOccurrencesCaseAndWindow(t *testing.T) {
	d := markup.MustParse("d", "Beds: 3\nBEDS: 4")
	// Case-insensitive across the whole document...
	if got := occurrences(d, "beds", 0, d.Len()); len(got) != 2 {
		t.Fatalf("occurrences(beds) = %v, want 2 matches", got)
	}
	// ...and offsets stay in document coordinates inside a sub-window.
	got := occurrences(d, "beds", 8, d.Len())
	if len(got) != 1 || got[0] != [2]int{8, 12} {
		t.Fatalf("windowed occurrences = %v, want [[8 12]]", got)
	}
}
