package feature

import (
	"iflex/internal/text"
)

// markFeature implements the appearance features backed by document marks:
// bold-font, italic-font, underlined, hyperlinked, in-list, in-title.
//
// Semantics for a span s and mark kind k:
//
//	f(s) = yes           s lies entirely inside a (merged) k-region
//	f(s) = distinct-yes  s is exactly a maximal k-region (token-trimmed):
//	                     it is k, and its surrounding text is not
//	f(s) = no            s does not intersect any k-region
type markFeature struct {
	name string
	kind text.MarkKind
}

func (f markFeature) Name() string { return f.name }
func (f markFeature) Kind() Kind   { return KindBoolean }

// regions returns the merged k-regions of s's document clipped to s,
// sorted by start.
func (f markFeature) regions(s text.Span) []byteRange {
	marks := s.Doc().MarksOf(f.kind)
	rs := make([]byteRange, 0, len(marks))
	for _, m := range marks {
		rs = append(rs, byteRange{m.Start, m.End})
	}
	rs = mergeRanges(rs)
	return clipRanges(rs, s.Start(), s.End())
}

// maximalRegions returns the merged k-regions of the whole document
// (token-trimmed spans), used for distinct-yes.
func (f markFeature) maximalRegions(d *text.Document) []text.Span {
	marks := d.MarksOf(f.kind)
	rs := make([]byteRange, 0, len(marks))
	for _, m := range marks {
		rs = append(rs, byteRange{m.Start, m.End})
	}
	rs = mergeRanges(rs)
	var out []text.Span
	for _, r := range rs {
		if sp, ok := d.Span(r.start, r.end).Shrink(); ok {
			out = append(out, sp)
		}
	}
	return out
}

func (f markFeature) Verify(s text.Span, v string) (bool, error) {
	switch v {
	case Yes:
		for _, r := range f.regions(s) {
			if r.start <= s.Start() && s.End() <= r.end {
				return true, nil
			}
		}
		return false, nil
	case DistinctYes:
		for _, max := range f.maximalRegions(s.Doc()) {
			if max.Equal(s) {
				return true, nil
			}
		}
		return false, nil
	case No:
		return len(f.regions(s)) == 0, nil
	default:
		return false, errBadValue(f.name, v)
	}
}

func (f markFeature) Refine(s text.Span, v string) ([]text.Assignment, error) {
	d := s.Doc()
	switch v {
	case Yes:
		// Every sub-span of a maximal k-region is still k: contain.
		return rangesToAssignments(d, f.regions(s), text.Contain), nil
	case DistinctYes:
		// Only the maximal region itself qualifies: exact.
		var out []text.Assignment
		for _, max := range f.maximalRegions(d) {
			if s.Contains(max) {
				out = append(out, text.ExactOf(max))
			}
		}
		return out, nil
	case No:
		// The gaps between k-regions; every sub-span of a gap avoids k.
		gaps := complementRanges(f.regions(s), s.Start(), s.End())
		return rangesToAssignments(d, gaps, text.Contain), nil
	default:
		return nil, errBadValue(f.name, v)
	}
}
