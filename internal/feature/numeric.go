package feature

import (
	"fmt"
	"strconv"

	"iflex/internal/text"
)

// numericFeature implements numeric(s) ∈ {yes, no}: whether the span text
// is a single numeric value (tolerating $, commas, and a decimal point).
type numericFeature struct{}

func (numericFeature) Name() string { return "numeric" }
func (numericFeature) Kind() Kind   { return KindBoolean }

func (numericFeature) Verify(s text.Span, v string) (bool, error) {
	_, isNum := s.Numeric()
	switch v {
	case Yes, DistinctYes:
		return isNum, nil
	case No:
		return !isNum, nil
	default:
		return false, errBadValue("numeric", v)
	}
}

// numericTokens returns the token spans of s that parse as numbers.
func numericTokens(s text.Span) []text.Span {
	var out []text.Span
	lo, hi := s.TokenBounds()
	toks := s.Doc().Tokens()
	for i := lo; i < hi; i++ {
		sp := s.Doc().Span(toks[i].Start, toks[i].End)
		if _, ok := sp.Numeric(); ok {
			out = append(out, sp)
		}
	}
	return out
}

func (numericFeature) Refine(s text.Span, v string) ([]text.Assignment, error) {
	switch v {
	case Yes, DistinctYes:
		// A numeric value is a single token; multi-token spans never parse.
		// The maximal verifying sub-spans are therefore the numeric tokens,
		// pinned exactly.
		var out []text.Assignment
		for _, sp := range numericTokens(s) {
			out = append(out, text.ExactOf(sp))
		}
		return out, nil
	case No:
		// Complement of the numeric tokens.
		var rs []byteRange
		for _, sp := range numericTokens(s) {
			rs = append(rs, byteRange{sp.Start(), sp.End()})
		}
		gaps := complementRanges(rs, s.Start(), s.End())
		return rangesToAssignments(s.Doc(), gaps, text.Contain), nil
	default:
		return nil, errBadValue("numeric", v)
	}
}

// paramNumFeature implements min-value(s)=n and max-value(s)=n: the span is
// numeric and its value is >= n (min) or <= n (max). These are the
// "semantics" questions of Section 5.1.1 ("what is a maximal value for
// price?").
type paramNumFeature struct {
	name string
	min  bool
}

func (f paramNumFeature) Name() string { return f.name }
func (f paramNumFeature) Kind() Kind   { return KindParametric }

func (f paramNumFeature) bound(v string) (float64, error) {
	b, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("feature: %s needs a numeric value, got %q", f.name, v)
	}
	return b, nil
}

func (f paramNumFeature) holds(n, bound float64) bool {
	if f.min {
		return n >= bound
	}
	return n <= bound
}

func (f paramNumFeature) Verify(s text.Span, v string) (bool, error) {
	b, err := f.bound(v)
	if err != nil {
		return false, err
	}
	n, ok := s.Numeric()
	return ok && f.holds(n, b), nil
}

func (f paramNumFeature) Refine(s text.Span, v string) ([]text.Assignment, error) {
	b, err := f.bound(v)
	if err != nil {
		return nil, err
	}
	var out []text.Assignment
	for _, sp := range numericTokens(s) {
		if n, _ := sp.Numeric(); f.holds(n, b) {
			out = append(out, text.ExactOf(sp))
		}
	}
	return out, nil
}
