package feature

import (
	"fmt"
	"regexp"
	"strconv"
	"sync"
	"unicode"

	"iflex/internal/text"
)

// lengthFeature implements max-length(s)=n / min-length(s)=n over the
// span's byte length.
type lengthFeature struct {
	name string
	max  bool
}

func (f lengthFeature) Name() string { return f.name }
func (f lengthFeature) Kind() Kind   { return KindParametric }

func (f lengthFeature) bound(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("feature: %s needs a non-negative integer, got %q", f.name, v)
	}
	return n, nil
}

func (f lengthFeature) Verify(s text.Span, v string) (bool, error) {
	n, err := f.bound(v)
	if err != nil {
		return false, err
	}
	if f.max {
		return s.Len() <= n, nil
	}
	return s.Len() >= n, nil
}

func (f lengthFeature) Refine(s text.Span, v string) ([]text.Assignment, error) {
	n, err := f.bound(v)
	if err != nil {
		return nil, err
	}
	if !f.max {
		// min-length cannot shrink contain assignments usefully (short
		// sub-spans of a long region fail the constraint, but long ones
		// pass); return contain(s) unchanged. Superset-safe; exact spans
		// are filtered precisely by Verify in the engine's Case 1.
		if sp, ok := s.Shrink(); ok && sp.Len() >= n {
			return []text.Assignment{text.ContainOf(sp)}, nil
		}
		return nil, nil
	}
	// max-length: maximal token runs whose byte length stays <= n.
	// Every sub-span of such a run is itself <= n, so contain is precise,
	// and every short sub-span extends to some maximal run: covering.
	lo, hi := s.TokenBounds()
	toks := s.Doc().Tokens()
	var out []text.Assignment
	i := lo
	for i < hi {
		if toks[i].End-toks[i].Start > n {
			i++
			continue
		}
		j := i
		for j+1 < hi && toks[j+1].End-toks[i].Start <= n {
			j++
		}
		sp := s.Doc().Span(toks[i].Start, toks[j].End)
		// Only emit maximal runs: skip if the previous emitted run already
		// ends at or beyond this one's end.
		if len(out) == 0 || out[len(out)-1].Span.End() < sp.End() {
			out = append(out, text.ContainOf(sp))
		}
		i++
	}
	return out, nil
}

// tokensFeature implements max-tokens(s)=n / min-tokens(s)=n over the
// span's whole-token count.
type tokensFeature struct {
	name string
	max  bool
}

func (f tokensFeature) Name() string { return f.name }
func (f tokensFeature) Kind() Kind   { return KindParametric }

func (f tokensFeature) bound(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("feature: %s needs a non-negative integer, got %q", f.name, v)
	}
	return n, nil
}

func (f tokensFeature) Verify(s text.Span, v string) (bool, error) {
	n, err := f.bound(v)
	if err != nil {
		return false, err
	}
	if f.max {
		return s.NumTokens() <= n, nil
	}
	return s.NumTokens() >= n, nil
}

func (f tokensFeature) Refine(s text.Span, v string) ([]text.Assignment, error) {
	n, err := f.bound(v)
	if err != nil {
		return nil, err
	}
	sp, ok := s.Shrink()
	if !ok {
		return nil, nil
	}
	if !f.max {
		if sp.NumTokens() >= n {
			return []text.Assignment{text.ContainOf(sp)}, nil
		}
		return nil, nil
	}
	// max-tokens: sliding windows of n tokens are the maximal runs.
	total := sp.NumTokens()
	if total <= n {
		return []text.Assignment{text.ContainOf(sp)}, nil
	}
	var out []text.Assignment
	for i := 0; i+n <= total; i++ {
		out = append(out, text.ContainOf(sp.TokenSpan(i, i+n)))
	}
	return out, nil
}

// anchorMode controls where patternFeature anchors its regular expression.
type anchorMode int

const (
	anchorStart anchorMode = iota // starts-with
	anchorEnd                     // ends-with
	anchorBoth                    // matches (full match)
)

// patternFeature implements starts-with(s)=re, ends-with(s)=re and
// matches(s)=re with Go regular expressions over the span's normalised
// text. Refine over-approximates (contain assignments anchored at pattern
// occurrences), which is superset-safe; exact spans are later filtered
// precisely by Verify.
type patternFeature struct {
	name   string
	anchor anchorMode
}

var (
	reCacheMu sync.RWMutex
	reCache   = map[string]*regexp.Regexp{}
)

// compilePattern compiles and caches the pattern anchored as requested.
// Verify/Refine call it on every span, concurrently once evaluation is
// parallel, so the steady-state hit takes only a read lock; compilation
// happens outside any lock and the write path re-checks (keeping the
// first-stored regexp) in case of a racing miss.
func compilePattern(pat string, anchor anchorMode) (*regexp.Regexp, error) {
	key := pat
	switch anchor {
	case anchorStart:
		key = "\\A(?:" + pat + ")"
	case anchorEnd:
		key = "(?:" + pat + ")\\z"
	case anchorBoth:
		key = "\\A(?:" + pat + ")\\z"
	}
	reCacheMu.RLock()
	re, ok := reCache[key]
	reCacheMu.RUnlock()
	if ok {
		return re, nil
	}
	re, err := regexp.Compile(key)
	if err != nil {
		return nil, fmt.Errorf("feature: bad pattern %q: %w", pat, err)
	}
	reCacheMu.Lock()
	if prev, ok := reCache[key]; ok {
		re = prev
	} else {
		reCache[key] = re
	}
	reCacheMu.Unlock()
	return re, nil
}

func (f patternFeature) Name() string { return f.name }
func (f patternFeature) Kind() Kind   { return KindParametric }

func (f patternFeature) Verify(s text.Span, v string) (bool, error) {
	re, err := compilePattern(v, f.anchor)
	if err != nil {
		return false, err
	}
	return re.MatchString(s.NormText()), nil
}

func (f patternFeature) Refine(s text.Span, v string) ([]text.Assignment, error) {
	// Find unanchored occurrences to locate candidate anchor points.
	re, err := compilePattern(v, anchorMode(-1))
	if err != nil {
		return nil, err
	}
	sp, ok := s.Shrink()
	if !ok {
		return nil, nil
	}
	body := sp.Text()
	locs := re.FindAllStringIndex(body, -1)
	if len(locs) == 0 {
		return nil, nil
	}
	var out []text.Assignment
	emit := func(start, end int) {
		if r, ok2 := s.Doc().Span(start, end).Shrink(); ok2 {
			out = append(out, text.ContainOf(r))
		}
	}
	switch f.anchor {
	case anchorStart:
		// Sub-spans starting at a match may extend to the end of s.
		for _, l := range locs {
			emit(sp.Start()+l[0], sp.End())
		}
	case anchorEnd:
		for _, l := range locs {
			emit(sp.Start(), sp.Start()+l[1])
		}
	default: // matches: the match region itself
		for _, l := range locs {
			emit(sp.Start()+l[0], sp.Start()+l[1])
		}
	}
	return text.DedupAssignments(out), nil
}

// capitalizedFeature: every token of the span starts with an upper-case
// letter (yes) or not (no). Useful for names and titles.
type capitalizedFeature struct{}

func (capitalizedFeature) Name() string { return "capitalized" }
func (capitalizedFeature) Kind() Kind   { return KindBoolean }

func tokenCapitalized(tok string) bool {
	for _, r := range tok {
		if unicode.IsLetter(r) {
			return unicode.IsUpper(r)
		}
		if unicode.IsDigit(r) {
			return true // numeric tokens don't break capitalisation
		}
	}
	return false
}

func allCapitalized(s text.Span) bool {
	lo, hi := s.TokenBounds()
	if lo >= hi {
		return false
	}
	toks := s.Doc().Tokens()
	for i := lo; i < hi; i++ {
		if !tokenCapitalized(s.Doc().Text()[toks[i].Start:toks[i].End]) {
			return false
		}
	}
	return true
}

func (capitalizedFeature) Verify(s text.Span, v string) (bool, error) {
	switch v {
	case Yes, DistinctYes:
		return allCapitalized(s), nil
	case No:
		return !allCapitalized(s), nil
	default:
		return false, errBadValue("capitalized", v)
	}
}

func (capitalizedFeature) Refine(s text.Span, v string) ([]text.Assignment, error) {
	if v != Yes && v != DistinctYes && v != No {
		return nil, errBadValue("capitalized", v)
	}
	if v == No {
		// Any sub-span containing at least one non-capitalised token
		// satisfies "no"; such spans are not confined to runs, so the only
		// covering refinement is s itself (when it verifies).
		sp, ok := s.Shrink()
		if !ok || allCapitalized(sp) {
			return nil, nil
		}
		return []text.Assignment{text.ContainOf(sp)}, nil
	}
	// Maximal runs of capitalised tokens; every sub-span of a run verifies.
	const wantCap = true
	lo, hi := s.TokenBounds()
	toks := s.Doc().Tokens()
	var out []text.Assignment
	i := lo
	for i < hi {
		ok := tokenCapitalized(s.Doc().Text()[toks[i].Start:toks[i].End])
		if ok != wantCap {
			i++
			continue
		}
		j := i
		for j+1 < hi {
			nxt := tokenCapitalized(s.Doc().Text()[toks[j+1].Start:toks[j+1].End])
			if nxt != wantCap {
				break
			}
			j++
		}
		out = append(out, text.ContainOf(s.Doc().Span(toks[i].Start, toks[j].End)))
		i = j + 1
	}
	return out, nil
}
