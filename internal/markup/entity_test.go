package markup

import (
	"testing"

	"iflex/internal/text"
)

// Order-of-operations detail: the entity map is iterated per occurrence;
// make sure overlapping prefixes resolve deterministically.
func TestEntityDisambiguation(t *testing.T) {
	d := MustParse("e", "a&amp;&lt;b&gt;&nbsp;c & d")
	if got := d.Text(); got != "a&<b> c & d" {
		t.Fatalf("text = %q", got)
	}
}

func TestUnknownEntityLiteral(t *testing.T) {
	d := MustParse("e", "R&D and x&y")
	if got := d.Text(); got != "R&D and x&y" {
		t.Fatalf("text = %q", got)
	}
}

func TestNestedListsAndHeaders(t *testing.T) {
	d := MustParse("n", "<h2>Outer</h2><ul><li>one<ul><li>inner</li></ul></li></ul>")
	items := d.MarksOf(text.MarkListItem)
	// Both the outer and the nested item produce marks.
	if len(items) != 2 {
		t.Fatalf("list marks = %+v", items)
	}
	hdrs := d.MarksOf(text.MarkHeader)
	if len(hdrs) != 1 {
		t.Fatalf("header marks = %+v", hdrs)
	}
}
