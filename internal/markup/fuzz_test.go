package markup

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: Parse never panics on arbitrary input, and when it succeeds,
// the document text contains no markup delimiters from recognised tags.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		d, err := Parse("fuzz", src)
		if err != nil {
			return true // errors are fine; panics are not
		}
		_ = d.Text()
		_ = d.Marks()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for tag-free input without special characters, Parse is the
// identity on text.
func TestQuickPlainTextIdentity(t *testing.T) {
	f := func(words []uint8) bool {
		var parts []string
		for _, w := range words {
			parts = append(parts, string(rune('a'+w%26)))
		}
		src := strings.Join(parts, " ")
		d, err := Parse("p", src)
		if err != nil {
			return false
		}
		return d.Text() == src && len(d.Marks()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Mark invariants: every mark is in range and non-empty; marks of the same
// kind produced by the parser never overlap improperly after merge.
func TestMarkInvariants(t *testing.T) {
	srcs := []string{
		"<b>a</b><i>b</i><u>c</u>",
		"<ul><li><b>x</b> and <i>y</i></li><li>z</li></ul>",
		"<h1>Head</h1><p>body <a href='u'>link</a></p><h2>Next</h2>",
		"<b><b>nested same</b></b>",
		"text <b>open <i>both</b> closed</i> after",
	}
	for _, src := range srcs {
		d := MustParse("inv", src)
		for _, m := range d.Marks() {
			if m.Start < 0 || m.End > len(d.Text()) || m.Start >= m.End {
				t.Errorf("%q: bad mark %+v", src, m)
			}
		}
	}
}
