// Package markup parses the small HTML-like page format used by the iFlex
// corpora into a text.Document: plain text plus style marks.
//
// The paper's domain constraints refer to appearance features of Web pages
// (bold-font, italic-font, underlined, hyperlinked, in-list, in-title,
// preceding section label). This package provides exactly the markup needed
// to carry those features, with a handwritten parser (no html package, per
// the from-scratch substrate rule):
//
//	<b> <i> <u>          bold / italic / underline
//	<a href="...">       hyperlink
//	<ul> <ol> <li>       lists (only <li> produces a mark)
//	<title>              page title
//	<h1> <h2> <h3>       section headers ("preceding labels")
//	<p> <div> <br>       structure; contribute whitespace only
//
// Entities &amp; &lt; &gt; &quot; &#39; are decoded. Unknown tags are
// skipped but their content is kept. Close tags that do not match an open
// tag are ignored; unclosed tags are closed at end of input.
package markup

import (
	"fmt"
	"strings"

	"iflex/internal/text"
)

// Parse converts markup source into a document with the given id.
// Hyperlink targets (href attributes) are preserved on the document.
func Parse(id, src string) (*text.Document, error) {
	c, err := ParseContent(id, src)
	if err != nil {
		return nil, err
	}
	d := text.NewDocument(id, c.Text, c.Marks)
	d.SetLinks(c.Links)
	return d, nil
}

// ParseContent converts markup source into raw document content without
// constructing a Document. The document store's lazy load path uses it to
// re-materialize pages from their stored markup on demand.
func ParseContent(id, src string) (text.DocContent, error) {
	p := parser{src: src}
	if err := p.run(); err != nil {
		return text.DocContent{}, fmt.Errorf("markup: parsing %s: %w", id, err)
	}
	return text.DocContent{Text: p.out.String(), Marks: p.marks, Links: p.links}, nil
}

// MustParse is Parse but panics on error; for tests and generators whose
// input is program-constructed.
func MustParse(id, src string) *text.Document {
	d, err := Parse(id, src)
	if err != nil {
		panic(err)
	}
	return d
}

type openTag struct {
	name   string
	kind   text.MarkKind
	start  int // offset in output text
	mark   bool
	target string // href for <a> tags
}

type parser struct {
	src   string
	pos   int
	out   strings.Builder
	marks []text.Mark
	links []text.Link
	stack []openTag
}

// tagKinds maps tag names to mark kinds. Tags present with mark=false are
// structural: recognised but produce no mark.
var tagKinds = map[string]struct {
	kind text.MarkKind
	mark bool
}{
	"b":      {text.MarkBold, true},
	"strong": {text.MarkBold, true},
	"i":      {text.MarkItalic, true},
	"em":     {text.MarkItalic, true},
	"u":      {text.MarkUnderline, true},
	"a":      {text.MarkLink, true},
	"li":     {text.MarkListItem, true},
	"title":  {text.MarkTitle, true},
	"h1":     {text.MarkHeader, true},
	"h2":     {text.MarkHeader, true},
	"h3":     {text.MarkHeader, true},
	"p":      {0, false},
	"div":    {0, false},
	"span":   {0, false},
	"ul":     {0, false},
	"ol":     {0, false},
	"table":  {0, false},
	"tr":     {0, false},
	"td":     {0, false},
	"body":   {0, false},
	"html":   {0, false},
	"head":   {0, false},
}

// blockTags separate their content from surroundings with newlines so that
// tokenization does not merge across structural boundaries.
var blockTags = map[string]bool{
	"li": true, "p": true, "div": true, "h1": true, "h2": true, "h3": true,
	"title": true, "tr": true, "table": true, "ul": true, "ol": true,
}

func (p *parser) run() error {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '<' {
			if err := p.tag(); err != nil {
				return err
			}
			continue
		}
		if c == '&' {
			p.entity()
			continue
		}
		p.out.WriteByte(c)
		p.pos++
	}
	// Close any tags left open at EOF.
	for len(p.stack) > 0 {
		p.close(p.stack[len(p.stack)-1].name)
	}
	return nil
}

// entity decodes an HTML entity at p.pos, or emits '&' literally.
func (p *parser) entity() {
	rest := p.src[p.pos:]
	for ent, r := range map[string]string{
		"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": `"`, "&#39;": "'", "&nbsp;": " ",
	} {
		if strings.HasPrefix(rest, ent) {
			p.out.WriteString(r)
			p.pos += len(ent)
			return
		}
	}
	p.out.WriteByte('&')
	p.pos++
}

// tag parses one <...> construct starting at p.pos.
func (p *parser) tag() error {
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return fmt.Errorf("unterminated tag at offset %d", p.pos)
	}
	inner := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1

	if strings.HasPrefix(inner, "!--") { // comment: skip to -->
		if i := strings.Index(p.src[p.pos:], "-->"); strings.HasSuffix(inner, "--") {
			// complete comment within one <...>; nothing to do
		} else if i >= 0 {
			p.pos += i + len("-->")
		} else {
			p.pos = len(p.src)
		}
		return nil
	}

	closing := strings.HasPrefix(inner, "/")
	name := inner
	if closing {
		name = inner[1:]
	}
	selfClose := strings.HasSuffix(name, "/")
	name = strings.TrimSuffix(name, "/")
	attrs := ""
	if i := strings.IndexAny(name, " \t\n"); i >= 0 {
		attrs = name[i+1:]
		name = name[:i]
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return nil
	}
	if name == "br" {
		p.out.WriteByte('\n')
		return nil
	}
	info, known := tagKinds[name]
	if closing {
		if known {
			p.close(name)
		}
		if blockTags[name] {
			p.out.WriteByte('\n')
		}
		return nil
	}
	if blockTags[name] {
		p.out.WriteByte('\n')
	}
	if !known || selfClose {
		return nil
	}
	p.stack = append(p.stack, openTag{
		name:   name,
		kind:   info.kind,
		start:  p.out.Len(),
		mark:   info.mark,
		target: hrefAttr(attrs),
	})
	return nil
}

// hrefAttr extracts a quoted href="..." value from a tag's attribute text.
func hrefAttr(attrs string) string {
	i := strings.Index(strings.ToLower(attrs), "href=")
	if i < 0 {
		return ""
	}
	rest := attrs[i+len("href="):]
	if len(rest) == 0 {
		return ""
	}
	quote := rest[0]
	if quote != '"' && quote != '\'' {
		// Unquoted value: up to whitespace.
		if j := strings.IndexAny(rest, " \t\n"); j >= 0 {
			return rest[:j]
		}
		return rest
	}
	rest = rest[1:]
	if j := strings.IndexByte(rest, quote); j >= 0 {
		return rest[:j]
	}
	return ""
}

// close pops the innermost open tag with the given name, emitting its mark.
// Tags opened after it are closed (and marked) too, tolerating overlap like
// <b><i></b></i>.
func (p *parser) close(name string) {
	idx := -1
	for i := len(p.stack) - 1; i >= 0; i-- {
		if p.stack[i].name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // stray close tag
	}
	for i := len(p.stack) - 1; i >= idx; i-- {
		t := p.stack[i]
		if t.mark && p.out.Len() > t.start {
			p.marks = append(p.marks, text.Mark{Kind: t.kind, Start: t.start, End: p.out.Len()})
			if t.kind == text.MarkLink && t.target != "" {
				p.links = append(p.links, text.Link{Start: t.start, End: p.out.Len(), Target: t.target})
			}
		}
	}
	p.stack = p.stack[:idx]
}
