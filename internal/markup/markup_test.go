package markup

import (
	"strings"
	"testing"

	"iflex/internal/text"
)

func markTexts(d *text.Document, k text.MarkKind) []string {
	var out []string
	for _, m := range d.MarksOf(k) {
		out = append(out, strings.Join(strings.Fields(d.Text()[m.Start:m.End]), " "))
	}
	return out
}

func TestParseBold(t *testing.T) {
	d := MustParse("p1", "Price: <b>$351,000</b> firm")
	if got := d.Text(); got != "Price: $351,000 firm" {
		t.Fatalf("text = %q", got)
	}
	bold := markTexts(d, text.MarkBold)
	if len(bold) != 1 || bold[0] != "$351,000" {
		t.Fatalf("bold marks = %v", bold)
	}
}

func TestParseNested(t *testing.T) {
	d := MustParse("p", "<b>bold <i>both</i></b> plain")
	if got := markTexts(d, text.MarkBold); len(got) != 1 || got[0] != "bold both" {
		t.Fatalf("bold = %v", got)
	}
	if got := markTexts(d, text.MarkItalic); len(got) != 1 || got[0] != "both" {
		t.Fatalf("italic = %v", got)
	}
}

func TestParseOverlappingClose(t *testing.T) {
	// <b>x <i>y</b> z</i>: closing b also closes i at that point.
	d := MustParse("p", "<b>x <i>y</i></b> z")
	if len(d.MarksOf(text.MarkBold)) != 1 || len(d.MarksOf(text.MarkItalic)) != 1 {
		t.Fatalf("marks = %+v", d.Marks())
	}
}

func TestParseListAndHeaders(t *testing.T) {
	src := `<h2>Top High Schools</h2><ul><li>Basktall, Cherry Hills</li><li>Franklin, Robeson</li></ul>`
	d := MustParse("y1", src)
	items := markTexts(d, text.MarkListItem)
	if len(items) != 2 || items[0] != "Basktall, Cherry Hills" {
		t.Fatalf("list items = %v", items)
	}
	hdrs := markTexts(d, text.MarkHeader)
	if len(hdrs) != 1 || hdrs[0] != "Top High Schools" {
		t.Fatalf("headers = %v", hdrs)
	}
	// Block tags must keep tokens from merging.
	if strings.Contains(d.Text(), "HillsFranklin") {
		t.Errorf("block boundary lost: %q", d.Text())
	}
}

func TestParseTitleAndLink(t *testing.T) {
	d := MustParse("p", `<title>IMDB Top 250</title><a href="http://x">The Godfather</a> (1972)`)
	if got := markTexts(d, text.MarkTitle); len(got) != 1 || got[0] != "IMDB Top 250" {
		t.Fatalf("title = %v", got)
	}
	if got := markTexts(d, text.MarkLink); len(got) != 1 || got[0] != "The Godfather" {
		t.Fatalf("link = %v", got)
	}
}

func TestParseEntities(t *testing.T) {
	d := MustParse("p", "Barnes &amp; Noble &lt;query&gt; &quot;db&quot; &#39;x&#39;&nbsp;end")
	want := `Barnes & Noble <query> "db" 'x' end`
	if d.Text() != want {
		t.Fatalf("text = %q, want %q", d.Text(), want)
	}
}

func TestParseUnknownTagsKept(t *testing.T) {
	d := MustParse("p", "<font color=red>hello</font> <blink>world</blink>")
	if !strings.Contains(d.Text(), "hello") || !strings.Contains(d.Text(), "world") {
		t.Fatalf("unknown-tag content lost: %q", d.Text())
	}
}

func TestParseStrayCloseIgnored(t *testing.T) {
	d := MustParse("p", "a</b>b</i>c")
	if d.Text() != "abc" {
		t.Fatalf("text = %q", d.Text())
	}
	if len(d.Marks()) != 0 {
		t.Fatalf("stray closes produced marks: %+v", d.Marks())
	}
}

func TestParseUnclosedAtEOF(t *testing.T) {
	d := MustParse("p", "start <b>never closed")
	bold := markTexts(d, text.MarkBold)
	if len(bold) != 1 || bold[0] != "never closed" {
		t.Fatalf("bold = %v", bold)
	}
}

func TestParseSelfClosingAndBr(t *testing.T) {
	d := MustParse("p", "line1<br>line2<br/>line3")
	if d.Text() != "line1\nline2\nline3" {
		t.Fatalf("text = %q", d.Text())
	}
}

func TestParseComment(t *testing.T) {
	d := MustParse("p", "keep <!-- drop this --> keep2")
	if strings.Contains(d.Text(), "drop") || !strings.Contains(d.Text(), "keep2") {
		t.Fatalf("comment handling: %q", d.Text())
	}
}

func TestParseUnterminatedTagErrors(t *testing.T) {
	if _, err := Parse("p", "hello <b world"); err == nil {
		t.Fatal("expected error for unterminated tag")
	}
}

func TestParseEmptyElementNoMark(t *testing.T) {
	d := MustParse("p", "a<b></b>c")
	if len(d.MarksOf(text.MarkBold)) != 0 {
		t.Fatalf("empty element should not produce a mark: %+v", d.Marks())
	}
}

func TestParseAttributesIgnored(t *testing.T) {
	d := MustParse("p", `<a href="http://example.com" target="_blank">link text</a>`)
	if got := markTexts(d, text.MarkLink); len(got) != 1 || got[0] != "link text" {
		t.Fatalf("link = %v", got)
	}
}

func TestParseCaseInsensitiveTags(t *testing.T) {
	d := MustParse("p", "<B>loud</B> quiet")
	if got := markTexts(d, text.MarkBold); len(got) != 1 || got[0] != "loud" {
		t.Fatalf("bold = %v", got)
	}
}
