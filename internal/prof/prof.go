// Package prof wires the standard Go profiling hooks into the CLIs: CPU
// profiles and runtime execution traces start immediately, and a heap
// profile is captured at stop time. All hooks are optional — empty paths
// produce a no-op stop function — so the flags cost nothing when unused.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins profiling for every non-empty path and returns a stop
// function that flushes and closes the outputs (call it exactly once,
// typically via defer). cpuPath receives a pprof CPU profile, tracePath a
// runtime/trace execution trace, and memPath a heap profile written at
// stop time after a final GC.
func Start(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var stops []func() error
	fail := func(err error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		return nil, err
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fail(err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if memPath != "" {
		stops = append(stops, func() error {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialise up-to-date allocation statistics
			return pprof.WriteHeapProfile(f)
		})
	}
	return func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
