// Package server implements iflexd's multi-tenant extraction service: a
// long-running HTTP/JSON surface over the library's session API. Tenants
// create refinement sessions, step them by answering next-effort
// questions, and stream the finalized result table with its degradation
// report and EXPLAIN trace. Sessions are evicted after idling past a TTL,
// per-tenant quotas map onto the engine's existing seams (worker-pool
// share, reuse-cache byte budget, per-step deadlines), and a drain mode
// lets in-flight steps finish while new work is refused — see DESIGN.md
// §14.
package server

import (
	"fmt"
	"strings"
	"time"

	"iflex/internal/alog"
	"iflex/internal/assistant"
	"iflex/internal/compact"
	"iflex/internal/engine"
	"iflex/internal/feature"
)

// Doc is one inline extensional document in a create request.
type Doc struct {
	ID   string `json:"id"`
	HTML string `json:"html"`
}

// CreateSessionRequest opens a refinement session. Exactly one corpus is
// given: a built-in task (Task/Records/Seed — the benchmark corpora),
// inline documents (Docs + Program), or a server-mounted document store
// (Store + Program). Task-backed sessions default Program to the task's
// and draw simulation candidates from the task's ground-truth oracle;
// inline and store-backed sessions supply Candidates themselves when
// they want the simulation strategy to score parametric features.
type CreateSessionRequest struct {
	Tenant string `json:"tenant"`

	Task    string `json:"task,omitempty"`
	Records int    `json:"records,omitempty"`
	Seed    int64  `json:"seed,omitempty"`

	Docs    map[string][]Doc `json:"docs,omitempty"`
	Program string           `json:"program,omitempty"`
	// Store names a document store mounted on the server (iflexd -store
	// name=dir): the session evaluates over the store's pages — shared,
	// lazily materialized, with token prefilters and join blocking served
	// by its persistent inverted index — instead of an inline corpus.
	// Program is required; StorePred is the extensional predicate the
	// pages bind to (default "docs").
	Store     string `json:"store,omitempty"`
	StorePred string `json:"store_pred,omitempty"`
	// Candidates maps attribute key ("pred.var") -> feature -> candidate
	// values for the simulation strategy's parametric questions.
	Candidates map[string]map[string][]string `json:"candidates,omitempty"`

	Strategy string `json:"strategy,omitempty"` // "seq" (default) or "sim"
	// Workers requests a worker-pool share; the server clamps it to the
	// tenant's quota (0 = the full quota).
	Workers int `json:"workers,omitempty"`
	// CacheBudgetBytes requests reuse-cache memory, allocated from the
	// tenant's byte pool (0 = an equal share of the pool).
	CacheBudgetBytes      int64   `json:"cache_budget_bytes,omitempty"`
	SubsetSeed            uint64  `json:"subset_seed,omitempty"`
	Alpha                 float64 `json:"alpha,omitempty"`
	MaxIterations         int     `json:"max_iterations,omitempty"`
	QuestionsPerIteration int     `json:"questions_per_iteration,omitempty"`
	ConvergenceWindow     int     `json:"convergence_window,omitempty"`
	// Trace enables per-operator tracing so the result stream can include
	// an EXPLAIN ANALYZE tree.
	Trace bool `json:"trace,omitempty"`
}

// CreateSessionResponse reports the granted resources.
type CreateSessionResponse struct {
	ID               string `json:"id"`
	Tenant           string `json:"tenant"`
	Workers          int    `json:"workers"`
	CacheBudgetBytes int64  `json:"cache_budget_bytes"`
}

// QuestionJSON is a next-effort question on the wire. Attr is the
// attribute key "pred.var"; Kind is "boolean" or "parametric"; Prompt is
// the human phrasing ("is extractHouses.p bold-font?").
type QuestionJSON struct {
	Attr    string `json:"attr"`
	Feature string `json:"feature"`
	Kind    string `json:"kind"`
	Prompt  string `json:"prompt"`
}

// AnswerJSON is a developer's reply: known=false is "I do not know".
type AnswerJSON struct {
	Value string `json:"value"`
	Known bool   `json:"known"`
}

// StepRequest answers the previous step's questions (positionally; fewer
// answers than questions treats the rest as "I do not know") and runs one
// more iteration under a per-step deadline.
type StepRequest struct {
	Answers []AnswerJSON `json:"answers,omitempty"`
	// DeadlineMS bounds this step in milliseconds (0 = the server's
	// default; clamped to the server's maximum).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CorpusRequest is the watch/ingest path (POST
// /v1/sessions/{id}/corpus): it commits one mutation to the addressed
// session's mounted store — Put adds a page or supersedes the live page
// with the same id; Remove drops a live page — then folds the delta
// into every session backed by that store and incrementally
// re-evaluates the addressed session over the full mutated corpus.
type CorpusRequest struct {
	Put    []Doc    `json:"put,omitempty"`
	Remove []string `json:"remove,omitempty"`
	// DeadlineMS bounds the re-evaluation (0 = the server's default;
	// clamped to the server's maximum).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CorpusResponse reports the committed delta and the incremental
// re-evaluation: the reused/recomputed split is the live-update win
// over a from-scratch run. The updated result table is streamed by GET
// result as usual.
type CorpusResponse struct {
	Added      []string `json:"added,omitempty"`
	Updated    []string `json:"updated,omitempty"`
	Removed    []string `json:"removed,omitempty"`
	Generation int      `json:"generation"`
	// SessionsRefreshed counts the sessions (including the addressed
	// one) whose engine state the delta was folded into.
	SessionsRefreshed int     `json:"sessions_refreshed"`
	Tuples            int     `json:"tuples"`
	TuplesReused      int64   `json:"tuples_reused"`
	TuplesRecomputed  int64   `json:"tuples_recomputed"`
	CorpusPriorHits   int64   `json:"corpus_prior_hits"`
	WallS             float64 `json:"wall_s"`
}

// IterationJSON mirrors assistant.Iteration's deterministic fields.
type IterationJSON struct {
	N           int    `json:"n"`
	Tuples      int    `json:"tuples"`
	Assignments int    `json:"assignments"`
	Mode        string `json:"mode"`
	Evals       int64  `json:"evals"`
	CacheHits   int64  `json:"cache_hits"`
	WallS       float64 `json:"wall_s"`
}

// StepResponse reports one step: the executed iteration, the next
// questions, and the loop state.
type StepResponse struct {
	Iteration IterationJSON     `json:"iteration"`
	Questions []QuestionJSON    `json:"questions,omitempty"`
	Converged bool              `json:"converged"`
	Done      bool              `json:"done"`
	Degraded  *compact.Degraded `json:"degraded,omitempty"`
}

// SessionInfo is the GET view of a session.
type SessionInfo struct {
	ID               string    `json:"id"`
	Tenant           string    `json:"tenant"`
	State            string    `json:"state"` // "active", "done", "finalized"
	Iterations       int       `json:"iterations"`
	QuestionsAsked   int       `json:"questions_asked"`
	Workers          int       `json:"workers"`
	CacheBudgetBytes int64     `json:"cache_budget_bytes"`
	Created          time.Time `json:"created"`
	LastUsed         time.Time `json:"last_used"`
}

// Stream line types for GET /v1/sessions/{id}/result (NDJSON: one JSON
// object per line). The header carries the column list; each row line
// carries one compact tuple rendered exactly as compact.Table.String()
// renders it, so a client can reassemble the byte-identical table text.
type StreamLine struct {
	Type string `json:"type"` // "header", "row", "degraded", "stats", "explain", "end"

	// header
	Cols           []string `json:"cols,omitempty"`
	CompactTuples  int      `json:"compact_tuples,omitempty"`
	ExpandedTuples int      `json:"expanded_tuples,omitempty"`
	Converged      *bool    `json:"converged,omitempty"`
	QuestionsAsked int      `json:"questions_asked,omitempty"`
	Iterations     int      `json:"iterations,omitempty"`

	// row
	Row string `json:"row,omitempty"`

	// degraded
	Degraded *compact.Degraded `json:"degraded,omitempty"`
	Summary  string            `json:"summary,omitempty"`

	// stats
	Stats *engine.StatsSnapshot `json:"stats,omitempty"`

	// explain
	Text string `json:"text,omitempty"`
}

// TenantStats aggregates a tenant's resource usage for GET /v1/stats.
type TenantStats struct {
	Sessions        int     `json:"sessions"`
	CacheBytes      int64   `json:"cache_bytes_allocated"`
	Steps           int64   `json:"steps"`
	StepSeconds     float64 `json:"step_seconds"`
	NodesEvaluated  int64   `json:"nodes_evaluated"`
	PoolMaxExtra    int64   `json:"pool_max_extra"`
	SessionsCreated int64   `json:"sessions_created"`
	SessionsEvicted int64   `json:"sessions_evicted"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Draining bool                   `json:"draining"`
	Sessions int                    `json:"sessions"`
	InFlight int64                  `json:"in_flight"`
	Tenants  map[string]TenantStats `json:"tenants"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// questionJSON converts a library question to its wire form.
func questionJSON(q assistant.Question) QuestionJSON {
	kind := "boolean"
	if q.Kind == feature.KindParametric {
		kind = "parametric"
	}
	return QuestionJSON{Attr: q.Attr.String(), Feature: q.Feature, Kind: kind, Prompt: q.String()}
}

// ParseQuestion reconstructs a library question from its wire form (the
// client side of questionJSON): the attribute key splits at the last dot.
func ParseQuestion(q QuestionJSON) (assistant.Question, error) {
	i := strings.LastIndex(q.Attr, ".")
	if i <= 0 || i == len(q.Attr)-1 {
		return assistant.Question{}, fmt.Errorf("server: malformed attribute key %q", q.Attr)
	}
	kind := feature.KindBoolean
	if q.Kind == "parametric" {
		kind = feature.KindParametric
	}
	return assistant.Question{
		Attr:    alog.AttrRef{Pred: q.Attr[:i], Var: q.Attr[i+1:]},
		Feature: q.Feature,
		Kind:    kind,
	}, nil
}

// iterationJSON converts an iteration log line to its wire form.
func iterationJSON(it assistant.Iteration) IterationJSON {
	return IterationJSON{
		N: it.N, Tuples: it.Tuples, Assignments: it.Assignments, Mode: it.Mode,
		Evals: it.Evals, CacheHits: it.CacheHits, WallS: it.WallS,
	}
}
